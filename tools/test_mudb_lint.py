#!/usr/bin/env python3
"""Tests for tools/mudb_lint.py (ctest target: lint_fixtures).

Drives the linter over the miniature tree in tests/lint_fixtures/ — one
positive and one negative fixture per rule plus pragma/stale-pragma cases —
and compares the `--json` output against `// expect-lint: <rule>`
annotations embedded in the fixtures, exactly: a missed violation, a
spurious violation, a wrong line, or a wrong rule name all fail. A rule
regression in the linter therefore fails tier-1 (ctest runs this file).

Also covers the scanner primitives directly (comment/string/raw-string
stripping, include-path preservation, pragma parsing) and the end-to-end
properties CI relies on: deterministic output, exit status contract, and
the real repository linting clean.
"""

import json
import os
import re
import subprocess
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINTER = os.path.join(TOOLS_DIR, "mudb_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

sys.path.insert(0, TOOLS_DIR)
import mudb_lint  # noqa: E402

EXPECT_RE = re.compile(r"expect-lint:\s*([a-z][a-z0-9-]*(?:\s*,\s*[a-z][a-z0-9-]*)*)")


def run_linter(*args):
    proc = subprocess.run(
        [sys.executable, LINTER] + list(args),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc


def collect_expectations(root):
    """All (relpath, line, rule) triples annotated in fixture files."""
    expected = set()
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if not name.endswith((".cc", ".h")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for lineno, text in enumerate(f, start=1):
                    m = EXPECT_RE.search(text)
                    if not m:
                        continue
                    for rule in m.group(1).split(","):
                        expected.add((rel, lineno, rule.strip()))
    return expected


class FixtureTreeTest(unittest.TestCase):
    """The annotated fixture tree is the ground truth for every rule."""

    @classmethod
    def setUpClass(cls):
        cls.proc = run_linter("--root", FIXTURES, "--json")
        cls.doc = json.loads(cls.proc.stdout)
        cls.got = {(v["file"], v["line"], v["rule"])
                   for v in cls.doc["violations"]}
        cls.expected = collect_expectations(FIXTURES)

    def test_violations_match_annotations_exactly(self):
        missed = self.expected - self.got
        spurious = self.got - self.expected
        self.assertFalse(
            missed or spurious,
            "missed: %s\nspurious: %s" % (sorted(missed), sorted(spurious)))

    def test_expectations_are_nonempty_and_cover_every_rule(self):
        # A broken annotation scraper must not vacuously pass the test
        # above; every contract rule needs at least one positive fixture.
        rules_seen = {rule for _, _, rule in self.expected}
        for rule in sorted(mudb_lint.RULE_DOCS):
            self.assertIn(rule, rules_seen,
                          "no positive fixture for rule %s" % rule)
        self.assertIn("stale-pragma", rules_seen)
        self.assertIn("bad-pragma", rules_seen)

    def test_exit_status_one_on_violations(self):
        self.assertEqual(self.proc.returncode, 1)

    def test_output_is_deterministic(self):
        again = run_linter("--root", FIXTURES, "--json")
        self.assertEqual(self.proc.stdout, again.stdout)

    def test_acceptance_steady_clock_in_service_fails(self):
        # The acceptance criterion's canonical example: reintroducing a
        # banned steady_clock::now() under src/service/ fails the lint.
        self.assertIn(
            ("src/service/raw_clock_bad.cc", 10, "no-raw-clock"), self.got)

    def test_negative_fixtures_are_clean(self):
        flagged_files = {f for f, _, _ in self.got}
        for clean in ("src/obs/clock.cc", "src/geom/geometry.cc",
                      "src/util/thread_pool.cc", "src/convex/grid_ok.cc",
                      "src/engine/unordered_ok.cc",
                      "src/obs/unordered_obs_ok.cc", "src/sql/pragma_ok.cc",
                      "tests/entropy_ok.cc"):
            self.assertNotIn(clean, flagged_files, clean)


class RealTreeTest(unittest.TestCase):
    def test_repository_lints_clean(self):
        proc = run_linter()
        self.assertEqual(
            proc.returncode, 0,
            "the real tree must lint clean:\n%s" % proc.stdout)

    def test_list_rules(self):
        proc = run_linter("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in mudb_lint.RULE_DOCS:
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_linter("no/such/dir")
        self.assertEqual(proc.returncode, 2)


class StripCodeTest(unittest.TestCase):
    def test_line_comment_blanked_newlines_kept(self):
        code, comments = mudb_lint.strip_code("int a; // rand()\nint b;\n")
        self.assertNotIn("rand", code)
        self.assertEqual(code.count("\n"), 2)
        self.assertEqual(comments, [(1, "// rand()")])

    def test_block_comment_line_numbers(self):
        code, comments = mudb_lint.strip_code("/* a\nb */ int x;\nint y;\n")
        self.assertEqual(comments, [(1, "/* a\nb */")])
        self.assertEqual(mudb_lint.line_of(code, code.index("y")), 3)

    def test_string_and_char_literals_blanked(self):
        code, _ = mudb_lint.strip_code('auto s = "rand()"; char c = \'r\';\n')
        self.assertNotIn("rand", code)

    def test_raw_string_blanked(self):
        code, _ = mudb_lint.strip_code('auto s = R"(rand() // not a comment)";\nint z;\n')
        self.assertNotIn("rand", code)
        self.assertIn("int z;", code)

    def test_include_path_preserved(self):
        code, _ = mudb_lint.strip_code('#include "src/util/rng.h"\n')
        self.assertIn("src/util/rng.h", code)

    def test_digit_separator_is_not_char_literal(self):
        code, _ = mudb_lint.strip_code("int n = 1'000'000; int rand_like = rand();\n")
        self.assertIn("rand();", code)

    def test_comment_inside_string_not_a_comment(self):
        code, comments = mudb_lint.strip_code('auto s = "// no"; int k;\n')
        self.assertEqual(comments, [])
        self.assertIn("int k;", code)


class PragmaParseTest(unittest.TestCase):
    def parse(self, text):
        code, comments = mudb_lint.strip_code(text)
        violations = []
        pragmas = mudb_lint.parse_pragmas(
            "f.cc", comments, code, set(mudb_lint.RULE_DOCS), violations)
        return pragmas, violations

    def test_well_formed(self):
        pragmas, violations = self.parse(
            "// mudb-lint: allow(no-raw-clock) -- a reason\nint x;\n")
        self.assertEqual(violations, [])
        self.assertEqual(len(pragmas), 1)
        self.assertEqual(pragmas[0].rules, ["no-raw-clock"])
        self.assertEqual(pragmas[0].target, 2)

    def test_same_line_targets_itself(self):
        pragmas, _ = self.parse(
            "int x;  // mudb-lint: allow(no-raw-clock) -- same line\n")
        self.assertEqual(pragmas[0].target, 1)

    def test_missing_reason_is_bad(self):
        pragmas, violations = self.parse("// mudb-lint: allow(no-raw-clock)\n")
        self.assertEqual(pragmas, [])
        self.assertEqual([v.rule for v in violations], ["bad-pragma"])

    def test_unknown_rule_is_bad(self):
        pragmas, violations = self.parse(
            "// mudb-lint: allow(bogus) -- reason\n")
        self.assertEqual(pragmas, [])
        self.assertEqual([v.rule for v in violations], ["bad-pragma"])

    def test_multi_rule_pragma(self):
        pragmas, violations = self.parse(
            "// mudb-lint: allow(no-raw-clock, no-raw-thread) -- reason\nint x;\n")
        self.assertEqual(violations, [])
        self.assertEqual(pragmas[0].rules, ["no-raw-clock", "no-raw-thread"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
