#!/usr/bin/env python3
"""mudb-lint: machine-enforcement of the mudb determinism contract.

Every estimate this repo produces must be bit-identical for any thread
count, shard count, fault schedule, or tracing mode (ARCHITECTURE.md,
"Determinism contract"). The contract used to live in prose and in runtime
tests that catch violations after the fact; this linter encodes it as named,
token-level rules that run on every push with no compiler dependency.

Rules (see BUILDING.md "Static analysis" for the policy):

  no-raw-clock        std::chrono::{steady,system,high_resolution}_clock::now()
                      anywhere outside src/obs/clock.cc. All timers and
                      deadlines go through obs::Clock so tests can fake time
                      and so no result-producing path can observe wall time.
  no-ambient-entropy  std::random_device, rand(), srand(), time(nullptr),
                      getenv() in src/. All randomness flows from the caller
                      seed via util::Rng substreams; configuration flows
                      through options structs, never the environment.
  no-signgam-lgamma   lgamma / lgamma_r / signgam outside the reentrant
                      wrapper in src/geom/geometry.cc. glibc's lgamma()
                      writes the process-global `signgam` (the PR 8 data
                      race); the wrapper uses lgamma_r and is the one
                      audited call site.
  no-raw-thread       std::thread storage or construction, std::jthread,
                      std::async, pthread_create, hardware_concurrency()
                      in src/ outside util::ThreadPool. Ad-hoc threads
                      bypass the pool's substream/grid discipline; the two
                      documented service dispatcher/router sites carry
                      inline allow-pragmas with reasons.
  no-threadcount-grid A thread-count value (num_threads, NumThreads(),
                      ResolveThreadCount(), hardware_concurrency()) linked
                      by arithmetic or assignment to a chunk/grid/lane-
                      shaped identifier. Work grids must be derived from
                      the workload, never the thread count (the PR 2 rule);
                      passing both as separate arguments to the audited
                      seam (util::ReduceSampleChunks) is the sanctioned
                      pattern and is not flagged.
  no-unordered-iteration-in-results
                      Range-for over a std::unordered_{map,set} (including
                      via typedefs and functions returning one) in result-
                      producing modules (src/ minus src/obs, src/util).
                      Hash-table iteration order is not part of the
                      contract; iterate a sorted copy or annotate why the
                      loop is order-insensitive.
  obs-purity          util::Rng use (or rng.h / parallel.h includes) inside
                      src/obs/. The observability layer must not draw RNG
                      or feed work grids: tracing on/off/compiled-out
                      leaves every estimate bit-identical.

Suppression: only via an inline pragma

    // mudb-lint: allow(<rule>[, <rule>...]) -- <reason>

placed either at the end of the offending line or on a comment line above
it (it then applies to the next line that holds code, so it may close an
explanatory comment block). The reason is mandatory. A pragma that suppresses nothing is itself an
error (stale-pragma), so the allowlist can never rot; an unknown rule name
or a missing reason is a bad-pragma error.

Usage:
    tools/mudb_lint.py [--root DIR] [--json] [--list-rules] [paths...]

With no paths, scans src/ bench/ examples/ tests/ under --root (default:
the repository root containing this script), excluding tests/lint_fixtures
(deliberate violations used by the linter's own test suite). Output is
deterministic: violations sorted by (path, line, rule). Exit status: 0
clean, 1 violations found, 2 usage or internal error.
"""

import argparse
import json
import os
import re
import sys

SCAN_DIRS = ("src", "bench", "examples", "tests")
SCAN_EXTS = (".cc", ".h")
EXCLUDE_PREFIXES = ("tests/lint_fixtures/",)

# ---------------------------------------------------------------------------
# Source scanning: blank out comments and string/char literals so rule
# regexes only ever see code, while collecting comments for pragma parsing.
# ---------------------------------------------------------------------------


def strip_code(text):
    """Return (code, comments): `code` is `text` with comments, string
    literals, and char literals replaced by spaces (newlines preserved, so
    offsets and line numbers survive); `comments` is a list of
    (line_number, comment_text) with line numbers 1-based at the comment
    start. Handles //, /* */, "...", '...', and R"delim(...)delim"."""
    out = []
    comments = []
    i, n = 0, len(text)
    line = 1

    def blank(segment):
        return "".join(c if c == "\n" else " " for c in segment)

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comments.append((line, text[i:j]))
            out.append(blank(text[i:j]))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append((line, text[i:j]))
            seg = text[i:j]
            out.append(blank(seg))
            line += seg.count("\n")
            i = j
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                seg = text[i:j]
                out.append(blank(seg))
                line += seg.count("\n")
                i = j
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            # Don't treat digit separators / apostrophes in numbers as char
            # literals: 1'000'000.
            if c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                out.append(" ")
                i += 1
                continue
            # Keep #include "..." paths visible: rules match on them.
            if c == '"':
                line_start = text.rfind("\n", 0, i) + 1
                if re.match(r'\s*#\s*include\s*$', text[line_start:i]):
                    j = text.find('"', i + 1)
                    j = n if j == -1 else j + 1
                    out.append(text[i:j])
                    i = j
                    continue
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            seg = text[i:j]
            out.append(quote + blank(seg[1:-1]) + (seg[-1] if len(seg) > 1 else ""))
            line += seg.count("\n")
            i = j
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), comments


def line_of(code, pos):
    return code.count("\n", 0, pos) + 1


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

PRAGMA_RE = re.compile(r"mudb-lint:\s*allow\(([^)]*)\)\s*(?:--\s*(\S.*))?")


class Pragma:
    def __init__(self, path, pragma_line, target_line, rules, reason):
        self.path = path
        self.line = pragma_line    # line the pragma comment starts on
        self.target = target_line  # line whose violations it suppresses
        self.rules = rules
        self.reason = reason
        self.used = {r: False for r in rules}


def pragma_target(code_lines, pragma_line):
    """A pragma on a line that also holds code suppresses that line; a
    pragma on a comment-only line suppresses the next line holding code
    (so it can sit on top of an explanatory comment block)."""
    idx = pragma_line - 1
    if idx < len(code_lines) and code_lines[idx].strip():
        return pragma_line
    for i in range(idx + 1, min(idx + 11, len(code_lines))):
        if code_lines[i].strip():
            return i + 1
    return pragma_line


def parse_pragmas(path, comments, code, known_rules, violations):
    pragmas = []
    code_lines = code.split("\n")
    for line, text in comments:
        if "mudb-lint" not in text:
            continue
        m = PRAGMA_RE.search(text)
        if not m:
            violations.append(
                Violation(path, line, "bad-pragma",
                          "malformed mudb-lint pragma; expected "
                          "`mudb-lint: allow(<rule>) -- <reason>`"))
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        reason = (m.group(2) or "").strip()
        bad = [r for r in rules if r not in known_rules]
        if bad:
            violations.append(
                Violation(path, line, "bad-pragma",
                          "unknown rule(s) in pragma: " + ", ".join(sorted(bad))))
            continue
        if not rules:
            violations.append(
                Violation(path, line, "bad-pragma", "pragma allows no rules"))
            continue
        if not reason:
            violations.append(
                Violation(path, line, "bad-pragma",
                          "pragma missing reason (`-- <reason>` is mandatory)"))
            continue
        pragmas.append(Pragma(path, line, pragma_target(code_lines, line),
                              rules, reason))
    return pragmas


# ---------------------------------------------------------------------------
# Violations
# ---------------------------------------------------------------------------


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule, self.message)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def in_scope(relpath, dirs, exempt):
    rel = relpath.replace(os.sep, "/")
    if rel in exempt:
        return False
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


class RegexRule:
    """Flags every match of any pattern in the blanked code."""

    def __init__(self, name, message, patterns, dirs, exempt=()):
        self.name = name
        self.message = message
        self.patterns = [re.compile(p) for p in patterns]
        self.dirs = dirs
        self.exempt = set(exempt)

    def check(self, relpath, code, out):
        if not in_scope(relpath, self.dirs, self.exempt):
            return
        for pat in self.patterns:
            for m in pat.finditer(code):
                out.append(Violation(relpath, line_of(code, m.start()),
                                     self.name, self.message))


IDENT_RE = re.compile(r"[A-Za-z_]\w*")

THREAD_TOKENS = {
    "num_threads", "n_threads", "nthreads", "thread_count", "NumThreads",
    "ResolveThreadCount", "hardware_concurrency", "router_threads",
}
GRID_SUBSTRINGS = ("chunk", "grid", "lane", "work_item")
# The audited transfer seams: passing a thread count *and* a grid shape to
# these as separate arguments is the sanctioned pattern.
GRID_IDENT_EXEMPT = {"ReduceSampleChunks", "RunGrid", "PartitionChainGrid"}
LINK_OPS = set("=*/%+-<>?")


class ThreadcountGridRule:
    """no-threadcount-grid: a thread-count token linked by arithmetic or
    assignment (with no intervening argument-separating comma) to a
    chunk/grid/lane-shaped identifier within one statement."""

    name = "no-threadcount-grid"
    message = ("thread count flows into chunk/grid-size arithmetic; work "
               "grids must be derived from the workload, never the thread "
               "count (ARCHITECTURE.md determinism contract)")

    def __init__(self, dirs, exempt=()):
        self.dirs = dirs
        self.exempt = set(exempt)

    def check(self, relpath, code, out):
        if not in_scope(relpath, self.dirs, self.exempt):
            return
        # Statement boundaries: ';', '{', '}' at any depth is close enough
        # for a token-level pass (for(;;) headers over-split, which only
        # narrows the window and can't create false positives).
        start = 0
        for m in re.finditer(r"[;{}]", code):
            self._check_stmt(relpath, code, start, m.start(), out)
            start = m.end()
        self._check_stmt(relpath, code, start, len(code), out)

    def _check_stmt(self, relpath, code, lo, hi, out):
        stmt = code[lo:hi]
        idents = [(m.start(), m.group(0)) for m in IDENT_RE.finditer(stmt)]
        threads = [(p, t) for p, t in idents if t in THREAD_TOKENS]
        if not threads:
            return
        grids = [
            (p, t) for p, t in idents
            if t not in GRID_IDENT_EXEMPT and t not in THREAD_TOKENS
            and any(s in t.lower() for s in GRID_SUBSTRINGS)
        ]
        if not grids:
            return
        flagged = set()
        for tp, _ in threads:
            for gp, _ in grids:
                a, b = min(tp, gp), max(tp, gp)
                between = stmt[a:b]
                if "," in between:
                    continue  # separate arguments, not an expression link
                if any(op in between for op in LINK_OPS):
                    line = line_of(code, lo + b)
                    if line not in flagged:
                        flagged.add(line)
                        out.append(Violation(relpath, line, self.name,
                                             self.message))


UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def matching_angle(code, pos):
    """pos points just past '<'; return index just past the matching '>',
    or -1. Treats '>>' as two closes (template context)."""
    depth = 1
    i = pos
    while i < len(code):
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1  # gave up: operator< in an expression, not a template
        i += 1
    return -1


class UnorderedIterationRule:
    """no-unordered-iteration-in-results: range-for over a name declared as
    an unordered container (or a typedef of one) in the same translation
    unit (own file + sibling .h/.cc with the same stem — generic variable
    names like `base` must not alias across unrelated files), or a call to
    a function declared *anywhere in the scanned tree* as returning one
    (accessors like base_map() are declared in headers and iterated
    elsewhere)."""

    name = "no-unordered-iteration-in-results"
    message = ("range-for over an unordered container in a result-producing "
               "module; hash-table iteration order is outside the "
               "determinism contract — iterate a sorted copy or annotate "
               "why the loop is order-insensitive")

    def __init__(self, dirs, exempt=()):
        self.dirs = dirs
        self.exempt = set(exempt)
        self.vars_by_file = {}   # relpath -> set of variable names
        self.fn_names = set()    # global: functions returning unordered

    def collect(self, relpath, code):
        """Pass 1 over every scanned file."""
        local = set()
        aliases = {m.group(1) for m in USING_ALIAS_RE.finditer(code)}
        for m in UNORDERED_DECL_RE.finditer(code):
            end = matching_angle(code, m.end())
            if end == -1:
                continue
            tail = code[end:end + 200]
            dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*([;({=])?", tail)
            if dm and dm.group(1):
                if dm.group(2) == "(":
                    self.fn_names.add(dm.group(1))
                else:
                    local.add(dm.group(1))
        for alias in aliases:
            local.add(alias)
            for dm in re.finditer(r"\b%s\s*&?\s+([A-Za-z_]\w*)" % re.escape(alias),
                                  code):
                local.add(dm.group(1))
        self.vars_by_file[relpath] = local

    def _local_names(self, relpath):
        names = set(self.vars_by_file.get(relpath, ()))
        stem, ext = os.path.splitext(relpath)
        for sibling_ext in (".h", ".cc"):
            if sibling_ext != ext:
                names |= self.vars_by_file.get(stem + sibling_ext, set())
        return names

    def check(self, relpath, code, out):
        if not in_scope(relpath, self.dirs, self.exempt):
            return
        local_names = self._local_names(relpath)
        for m in RANGE_FOR_RE.finditer(code):
            # Find the matching close paren of the for(...) header.
            depth = 0
            i = m.end() - 1
            colon = -1
            while i < len(code):
                c = code[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif c == ":" and depth == 1:
                    # Skip '::' scope operators.
                    if code[i + 1 : i + 2] == ":":
                        i += 2
                        continue
                    if code[i - 1 : i] == ":":
                        i += 1
                        continue
                    colon = i
                i += 1
            if colon == -1 or i >= len(code):
                continue
            range_expr = code[colon + 1 : i]
            names = IDENT_RE.findall(range_expr)
            if not names:
                continue
            last = names[-1]
            is_call = re.search(r"\b%s\s*\([^()]*\)\s*$" % re.escape(last),
                                range_expr) is not None
            hit = (last in self.fn_names) if is_call else (last in local_names)
            if hit:
                out.append(Violation(relpath, line_of(code, colon), self.name,
                                     self.message))


def build_rules():
    src = ("src",)
    everywhere = ("src", "bench", "examples", "tests")
    results = tuple(
        "src/" + d for d in (
            "constraints", "convex", "datagen", "engine", "geom", "io",
            "logic", "lp", "measure", "model", "poly", "service", "sql",
            "translate", "volume"))
    return [
        RegexRule(
            "no-raw-clock",
            "raw std::chrono clock read; all timers/deadlines must go "
            "through obs::Clock (src/obs/clock.h) so time is fakeable and "
            "result paths can never observe it",
            [r"\b(?:steady_clock|system_clock|high_resolution_clock)"
             r"\s*::\s*now\b"],
            everywhere,
            exempt=("src/obs/clock.cc",)),
        RegexRule(
            "no-ambient-entropy",
            "ambient entropy source; all randomness must flow from the "
            "caller's seed via util::Rng substreams and configuration "
            "through options structs, never the environment",
            [r"\brandom_device\b",
             r"(?<![\w:])s?rand\s*\(",
             r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)",
             r"(?<![\w:])getenv\s*\(",
             r"\bstd\s*::\s*getenv\b"],
            src),
        RegexRule(
            "no-signgam-lgamma",
            "lgamma/signgam outside the reentrant wrapper; glibc lgamma() "
            "writes the process-global `signgam` (data race under "
            "concurrent shards) — call mudb::geom's wrapper instead",
            [r"\b(?:lgamma_r|lgammaf_r|lgammaf|lgammal|lgamma|signgam)\b"],
            everywhere,
            exempt=("src/geom/geometry.cc",)),
        RegexRule(
            "no-raw-thread",
            "raw thread storage/construction outside util::ThreadPool; "
            "ad-hoc threads bypass the pool's substream and work-grid "
            "discipline",
            [r"\bstd\s*::\s*thread\b(?!\s*&)",
             r"\bstd\s*::\s*jthread\b",
             r"\bstd\s*::\s*async\s*[(<]",
             r"\bpthread_create\b",
             r"\bhardware_concurrency\b"],
            src,
            exempt=("src/util/thread_pool.h", "src/util/thread_pool.cc")),
        ThreadcountGridRule(src),
        UnorderedIterationRule(results),
        RegexRule(
            "obs-purity",
            "util::Rng (or a sampling-runtime include) inside src/obs/; "
            "the observability layer must draw no RNG and feed no work "
            "grid so tracing can never perturb results",
            [r"\bRng\b",
             r"src/util/rng\.h",
             r"src/util/parallel\.h",
             r"\bReduceSampleChunks\b"],
            ("src/obs",)),
    ]


RULE_DOCS = {
    "no-raw-clock": "raw std::chrono *_clock::now() outside src/obs/clock.cc",
    "no-ambient-entropy": "random_device/rand/srand/time(nullptr)/getenv in src/",
    "no-signgam-lgamma": "lgamma/signgam outside src/geom/geometry.cc",
    "no-raw-thread": "std::thread et al. outside util::ThreadPool (+2 "
                     "pragma'd service sites)",
    "no-threadcount-grid": "thread count linked into chunk/grid arithmetic",
    "no-unordered-iteration-in-results": "range-for over unordered containers "
                                         "in result modules",
    "obs-purity": "util::Rng use inside src/obs/",
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(root, paths):
    files = []
    if paths:
        for p in paths:
            ap = os.path.join(root, p) if not os.path.isabs(p) else p
            if os.path.isdir(ap):
                for dirpath, _, names in os.walk(ap):
                    for name in sorted(names):
                        if name.endswith(SCAN_EXTS):
                            files.append(os.path.join(dirpath, name))
            elif os.path.isfile(ap):
                files.append(ap)
            else:
                raise FileNotFoundError(p)
    else:
        for d in SCAN_DIRS:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, names in os.walk(base):
                for name in sorted(names):
                    if name.endswith(SCAN_EXTS):
                        files.append(os.path.join(dirpath, name))
    rels = sorted(os.path.relpath(f, root).replace(os.sep, "/") for f in files)
    return [r for r in rels
            if not any(r.startswith(e) for e in EXCLUDE_PREFIXES)]


def apply_pragmas(violations, pragmas):
    """Suppress violations on a pragma's target line; return surviving
    violations. Marks pragma rules used."""
    by_loc = {}
    for p in pragmas:
        for r in p.rules:
            by_loc.setdefault((p.path, p.target, r), []).append(p)
    survivors = []
    for v in violations:
        hits = by_loc.get((v.path, v.line, v.rule), ())
        if hits:
            hits[0].used[v.rule] = True
        else:
            survivors.append(v)
    return survivors


def main(argv):
    ap = argparse.ArgumentParser(
        prog="mudb_lint.py",
        description="token-level determinism-contract linter for mudb")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON on stdout")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="files or directories relative to --root "
                         "(default: src bench examples tests)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULE_DOCS):
            print("%-36s %s" % (name, RULE_DOCS[name]))
        return 0

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        files = collect_files(root, args.paths)
    except FileNotFoundError as e:
        print("mudb-lint: no such file or directory: %s" % e, file=sys.stderr)
        return 2

    rules = build_rules()
    known = set(RULE_DOCS)
    unordered_rule = next(r for r in rules
                          if isinstance(r, UnorderedIterationRule))

    stripped = {}
    violations = []
    pragmas = []
    for rel in files:
        try:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        except OSError as e:
            print("mudb-lint: cannot read %s: %s" % (rel, e), file=sys.stderr)
            return 2
        code, comments = strip_code(text)
        stripped[rel] = code
        pragmas.extend(parse_pragmas(rel, comments, code, known, violations))
        unordered_rule.collect(rel, code)

    for rel in files:
        for rule in rules:
            rule.check(rel, stripped[rel], violations)

    violations = apply_pragmas(violations, pragmas)
    for p in pragmas:
        for rule_name, used in sorted(p.used.items()):
            if not used:
                violations.append(Violation(
                    p.path, p.line, "stale-pragma",
                    "pragma allows `%s` but suppresses nothing; delete it "
                    "(the allowlist must not rot)" % rule_name))

    # Deterministic order; collapse duplicate (file, line, rule) hits (e.g.
    # std::thread::hardware_concurrency() trips two patterns of one rule).
    violations.sort(key=Violation.key)
    deduped = []
    for v in violations:
        if not deduped or (v.path, v.line, v.rule) != \
                (deduped[-1].path, deduped[-1].line, deduped[-1].rule):
            deduped.append(v)
    violations = deduped

    if args.json:
        doc = {
            "schema_version": 1,
            "files_scanned": len(files),
            "pragmas": len(pragmas),
            "violations": [
                {"file": v.path, "line": v.line, "rule": v.rule,
                 "message": v.message}
                for v in violations
            ],
        }
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for v in violations:
            print("%s:%d: [%s] %s" % (v.path, v.line, v.rule, v.message))
        print("mudb-lint: %d file(s), %d pragma(s), %d violation(s)"
              % (len(files), len(pragmas), len(violations)))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
