#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over every
# first-party translation unit in compile_commands.json.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args...]
#
# The build dir defaults to ./build and must contain compile_commands.json
# (every CMake configure now exports one: CMAKE_EXPORT_COMPILE_COMMANDS is
# ON in the root CMakeLists.txt). Exit status is non-zero if any TU
# produces a diagnostic — the profile sets WarningsAsErrors: '*'.
set -u -o pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then tidy="$cand"; break; fi
  done
fi
if [ -z "$tidy" ]; then
  echo "run_clang_tidy.sh: no clang-tidy binary found on PATH." >&2
  echo "Install clang-tidy (>= 14) or set CLANG_TIDY=/path/to/clang-tidy." >&2
  exit 2
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy.sh: $db not found." >&2
  echo "Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

# First-party TUs only: sources under src/, bench/, examples/, tests/ —
# excluding tests/lint_fixtures/ (deliberately-broken snippets for
# tools/mudb_lint.py) and anything FetchContent pulled into the build tree.
mapfile -t files < <(
  python3 - "$db" "$repo_root" <<'EOF'
import json, os, sys
db, root = sys.argv[1], sys.argv[2]
keep = ("src/", "bench/", "examples/", "tests/")
out = set()
for entry in json.load(open(db)):
    path = os.path.normpath(
        os.path.join(entry.get("directory", ""), entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith("..") or rel.startswith("tests/lint_fixtures/"):
        continue
    if rel.startswith(keep):
        out.add(path)
print("\n".join(sorted(out)))
EOF
)

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_clang_tidy.sh: no first-party TUs in $db" >&2
  exit 2
fi

echo "run_clang_tidy.sh: $tidy over ${#files[@]} TUs ($db)"
jobs="$(nproc 2>/dev/null || echo 4)"
status=0
printf '%s\0' "${files[@]}" |
  xargs -0 -n 8 -P "$jobs" "$tidy" -p "$build_dir" --quiet "$@" || status=$?

if [ "$status" -eq 0 ]; then
  echo "run_clang_tidy.sh: clean"
fi
exit "$status"
