#!/usr/bin/env python3
"""Pretty-prints a mudb metrics snapshot (src/obs/metrics.h, --metrics=).

Reads the schema_version-1 JSON document the MetricsRegistry emits and
renders three aligned tables — counters, gauges, histograms with their
count/sum/mean and the p50/p90/p99/p999 bucket-bound quantiles. With
--buckets, each histogram also dumps its sparse bucket rows as
[2^(h/2), 2^((h+1)/2)) ranges with counts.

Usage: tools/metrics_summary.py <metrics.json> [--buckets]
Exit status: 0 on success, 1 on a missing/invalid document.
"""

import json
import sys


def fmt(v):
    """Compact numeric rendering: integers plain, floats to 6 significant."""
    if isinstance(v, int):
        return str(v)
    if v == 0:
        return "0"
    return f"{v:.6g}"


def bucket_bound(h):
    """Upper bound of half-exponent bucket h: 2^((h+1)/2)."""
    return 2.0 ** ((h + 1) / 2.0)


def table(rows, headers):
    widths = [
        max(len(headers[c]), max((len(r[c]) for r in rows), default=0))
        for c in range(len(headers))
    ]
    out = ["  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    for r in rows:
        # Right-align everything but the name column.
        cells = [r[0].ljust(widths[0])]
        cells += [c.rjust(w) for c, w in zip(r[1:], widths[1:])]
        out.append("  " + "  ".join(cells).rstrip())
    return "\n".join(out)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    show_buckets = "--buckets" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"metrics_summary: cannot read {args[0]}: {e}", file=sys.stderr)
        return 1
    if doc.get("schema_version") != 1:
        print(
            f"metrics_summary: unsupported schema_version "
            f"{doc.get('schema_version')!r}",
            file=sys.stderr,
        )
        return 1

    counters = doc.get("counters", [])
    gauges = doc.get("gauges", [])
    hists = doc.get("histograms", [])

    if counters:
        print("counters")
        print(
            table(
                [[c["name"], fmt(c["value"])] for c in counters],
                ["name", "value"],
            )
        )
    if gauges:
        print("\ngauges" if counters else "gauges")
        print(
            table(
                [[g["name"], fmt(g["value"])] for g in gauges],
                ["name", "value"],
            )
        )
    if hists:
        if counters or gauges:
            print()
        print("histograms")
        rows = []
        for h in hists:
            count = h["count"]
            mean = h["sum"] / count if count else 0.0
            rows.append(
                [
                    h["name"],
                    fmt(count),
                    fmt(h["sum"]),
                    fmt(mean),
                    fmt(h["p50"]),
                    fmt(h["p90"]),
                    fmt(h["p99"]),
                    fmt(h["p999"]),
                ]
            )
        print(
            table(
                rows,
                ["name", "count", "sum", "mean", "p50", "p90", "p99",
                 "p999"],
            )
        )
        if show_buckets:
            for h in hists:
                if not h.get("buckets"):
                    continue
                print(f"\n{h['name']} buckets")
                for half_exp, n in h["buckets"]:
                    lo, hi = bucket_bound(half_exp - 1), bucket_bound(half_exp)
                    print(f"  [{fmt(lo)}, {fmt(hi)})  {n}")
    if not (counters or gauges or hists):
        print("(empty snapshot)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
