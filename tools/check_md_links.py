#!/usr/bin/env python3
"""Fails when an intra-repo markdown link points at a missing file.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, resolves relative targets against
the linking file's directory, and reports targets that do not exist in the
working tree. External links (a URL scheme or protocol-relative `//`),
pure in-page anchors (`#...`), and `mailto:` are out of scope — this is a
docs-hygiene check for the repo's own cross-references (README/BUILDING/
ARCHITECTURE/ROADMAP and friends), not a web crawler.

Usage: tools/check_md_links.py [root]   (root defaults to the repo root)
Exit status: 0 when every intra-repo link resolves, 1 otherwise.
"""

import os
import re
import subprocess
import sys

# Inline links and images: [text](target "optional title"). Nested brackets
# in the text (e.g. badges) are rare in this repo; the non-greedy text match
# with a lazy target is enough for the markdown we write.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Reference-style definitions at line start: [label]: target
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$")
# Fenced code blocks — links inside them are examples, not references.
FENCE = re.compile(r"^\s*(```|~~~)")

SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def external(target: str) -> bool:
    return target.startswith("//") or bool(SCHEME.match(target))


def iter_links(text: str):
    """Yields (line_number, target) for every link target in `text`."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = REF_DEF.match(line)
        if m:
            yield lineno, m.group(1)
            continue
        for m in INLINE_LINK.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), os.pardir))
    files = subprocess.run(
        ["git", "ls-files", "*.md"], cwd=root, check=True,
        capture_output=True, text=True).stdout.split()

    broken = []
    checked = 0
    for rel in files:
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        base = os.path.dirname(path)
        for lineno, target in iter_links(text):
            if external(target) or target.startswith("#"):
                continue
            # Strip an in-page anchor; an empty remainder is self-referential.
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            # Targets that climb out of the repo are GitHub-web-relative
            # (e.g. ../../actions/... badge links), not file references.
            if os.path.commonpath([resolved, root]) != root:
                continue
            checked += 1
            if not os.path.exists(resolved):
                broken.append(f"{rel}:{lineno}: broken link -> {target}")

    for line in broken:
        print(line)
    print(f"checked {checked} intra-repo links across {len(files)} markdown "
          f"files: {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
