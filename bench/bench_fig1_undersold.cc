// Figure 1(b): "Never Knowingly Undersold" — time vs ε (see fig1_common.h).
// Reconstruction notes (division multiplied out, O linked to P, M.rrp for
// the garbled "M.id") are in EXPERIMENTS.md.

#include "bench/fig1_common.h"

int main(int argc, char** argv) {
  return mudb::bench::RunFig1(
      "Never Knowingly Undersold",
      "SELECT P.id FROM Products P, Orders O, Market M "
      "WHERE P.seg = M.seg AND P.id = O.pr AND "
      "P.rrp * P.dis * O.q <= 0.5 * M.rrp * M.dis * O.dis LIMIT 25",
      argc, argv);
}
