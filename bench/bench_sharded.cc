// Sharded-serving overhead and fault tolerance: the same candidate-sweep
// workload as bench_service (64 FPRAS requests, 16 distinct formulas, each
// repeated 4×, shared cone across the batch) pushed through
// ShardedMeasureService, clean and under a 20% injected fault rate.
//
// Legs (BUILDING.md, "Profiling & benchmarks"):
//   unsharded_batch64     — one MeasureService, the single-node baseline.
//   sharded_cold_batch64  — a fresh 4-shard router, clean transport: the
//                           cost of routing + delivery on cold caches.
//   sharded_warm_batch64  — the identical batch again on the warm fabric:
//                           per-shard memo replay through the router.
//   sharded_fault20_batch64 — a fresh 4-shard router whose transport fails
//                           20% of deliveries (seeded schedule, retries +
//                           local-recompute degradation): the fault-
//                           tolerance leg.
//
// Hard assertions before anything is reported: every leg completes every
// request, every result is bit-identical to the unsharded baseline (the
// determinism-under-faults contract), and the fault leg finishes within 2×
// the clean cold leg's wall time.
//
// Rows (bench_json.h schema): samples_per_sec carries requests/sec;
// estimate is the Σ of measure values (a determinism fingerprint) except
// the *_retries / *_ratio rows, which carry that diagnostic instead.
//
// Flags: --json=<path>, --quick (one round, CI-sized), --trace=<path>,
// --metrics=<path> (bench_obs.h — a 20%-fault trace shows the retries,
// backoff delays, and degradation decisions with their parentage).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_obs.h"
#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/sharded_service.h"
#include "src/util/timer.h"

namespace {

using namespace mudb;  // NOLINT: bench brevity

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

constexpr int kBatch = 64;
constexpr int kDistinct = 16;
constexpr double kEpsilon = 0.35;
constexpr int kShards = 4;
constexpr double kFaultRate = 0.2;

// Distinct request d: (shared positive orthant) ∨ (private cone d) — the
// bench_service workload, so the sharded numbers are comparable to the
// single-node ones.
RealFormula Workload(int d) {
  std::vector<RealFormula> shared;
  for (int i = 0; i < 3; ++i) {
    shared.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  std::vector<RealFormula> priv;
  priv.push_back(RealFormula::Cmp(Z(0) + C(1.0 + d) * Z(1), CmpOp::kLt));
  priv.push_back(RealFormula::Cmp(Z(1) + C(0.5 + d) * Z(2), CmpOp::kLt));
  priv.push_back(RealFormula::Cmp(Z(2), CmpOp::kLt));
  std::vector<RealFormula> ors{RealFormula::And(std::move(shared)),
                               RealFormula::And(std::move(priv))};
  return RealFormula::Or(std::move(ors));
}

measure::MeasureOptions RequestOptions() {
  measure::MeasureOptions opts;
  opts.method = measure::Method::kFpras;
  opts.epsilon = kEpsilon;
  return opts;
}

std::vector<service::MeasureRequest> MakeBatch() {
  std::vector<service::MeasureRequest> reqs;
  reqs.reserve(kBatch);
  for (int r = 0; r < kBatch; ++r) {
    reqs.push_back(service::MeasureRequest::Nu(Workload(r % kDistinct),
                                               RequestOptions()));
  }
  return reqs;
}

service::ShardedServiceOptions ShardedOptions(bool faults, uint64_t seed) {
  service::ShardedServiceOptions opts;
  opts.num_shards = kShards;
  opts.retry.max_attempts = 4;
  opts.retry.backoff.initial_ms = 0.01;
  opts.retry.backoff.max_ms = 0.1;
  opts.degrade = service::DegradeMode::kLocalRecompute;
  if (faults) {
    service::FaultInjectorOptions injected;
    injected.seed = seed;
    injected.unavailable_rate = kFaultRate;
    opts.faults = injected;
  }
  return opts;
}

struct LegResult {
  double wall_ms = 0.0;
  std::vector<double> values;
  int64_t retries = 0;
  int64_t degraded = 0;
};

LegResult RunUnsharded() {
  LegResult leg;
  service::MeasureService svc;
  auto outcome = svc.RunBatch(MakeBatch());
  for (const auto& result : outcome.results) {
    if (!result.ok()) {
      std::fprintf(stderr, "unsharded request failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    leg.values.push_back(result->value);
  }
  leg.wall_ms = outcome.stats.wall_ms;
  return leg;
}

LegResult RunSharded(service::ShardedMeasureService& svc, const char* name) {
  LegResult leg;
  auto outcome = svc.RunBatch(MakeBatch());
  for (const auto& result : outcome.results) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s request failed: %s\n", name,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    leg.values.push_back(result->result.value);
  }
  leg.wall_ms = outcome.stats.wall_ms;
  leg.retries = outcome.stats.retries;
  leg.degraded = outcome.stats.degraded;
  return leg;
}

void AssertBitIdentical(const LegResult& leg, const LegResult& baseline,
                        const char* name) {
  for (size_t i = 0; i < baseline.values.size(); ++i) {
    if (leg.values.size() <= i || leg.values[i] != baseline.values[i]) {
      std::fprintf(stderr,
                   "FATAL: %s diverges from the unsharded baseline at "
                   "request %zu\n",
                   name, i);
      std::exit(1);
    }
  }
}

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonFlagPath(argc, argv);
  const bench::ObsFlags obs_flags = bench::ParseObsFlags(argc, argv);
  const bool quick = bench::QuickFlag(argc, argv);
  const int rounds = quick ? 1 : 3;

  double base_ms = 0.0, cold_ms = 0.0, warm_ms = 0.0, fault_ms = 0.0;
  double value_sum = 0.0;
  int64_t fault_retries = 0, fault_degraded = 0;
  for (int round = 0; round < rounds; ++round) {
    LegResult baseline = RunUnsharded();

    service::ShardedMeasureService clean(
        ShardedOptions(/*faults=*/false, 0));
    LegResult cold = RunSharded(clean, "sharded_cold");
    LegResult warm = RunSharded(clean, "sharded_warm");

    service::ShardedMeasureService faulty(ShardedOptions(
        /*faults=*/true, /*seed=*/static_cast<uint64_t>(round + 1)));
    LegResult fault = RunSharded(faulty, "sharded_fault20");

    // The contract the fabric exists to keep: sharding, retries, and the
    // fault schedule never change a single result bit.
    AssertBitIdentical(cold, baseline, "sharded_cold");
    AssertBitIdentical(warm, baseline, "sharded_warm");
    AssertBitIdentical(fault, baseline, "sharded_fault20");

    base_ms += baseline.wall_ms;
    cold_ms += cold.wall_ms;
    warm_ms += warm.wall_ms;
    fault_ms += fault.wall_ms;
    value_sum = Sum(baseline.values);
    fault_retries += fault.retries;
    fault_degraded += fault.degraded;
  }
  base_ms /= rounds;
  cold_ms /= rounds;
  warm_ms /= rounds;
  fault_ms /= rounds;
  const double fault_ratio = fault_ms / cold_ms;
  if (fault_ratio > 2.0) {
    std::fprintf(stderr,
                 "FATAL: 20%%-fault leg took %.2fx the fault-free leg "
                 "(budget: 2x)\n",
                 fault_ratio);
    return 1;
  }

  auto req_per_sec = [](double ms) { return kBatch / (ms / 1e3); };
  std::printf("%-24s %10s %12s\n", "leg", "wall_ms", "req/s");
  std::printf("%-24s %10.1f %12.1f\n", "unsharded_batch64", base_ms,
              req_per_sec(base_ms));
  std::printf("%-24s %10.1f %12.1f\n", "sharded_cold_batch64", cold_ms,
              req_per_sec(cold_ms));
  std::printf("%-24s %10.1f %12.1f\n", "sharded_warm_batch64", warm_ms,
              req_per_sec(warm_ms));
  std::printf("%-24s %10.1f %12.1f\n", "sharded_fault20_batch64", fault_ms,
              req_per_sec(fault_ms));
  std::printf(
      "fault leg: %.2fx fault-free wall, %lld retries, %lld degraded "
      "(per %d rounds)\n",
      fault_ratio, static_cast<long long>(fault_retries),
      static_cast<long long>(fault_degraded), rounds);

  bench::BenchJson json("sharded");
  json.Add({"unsharded_batch64", 1, base_ms, req_per_sec(base_ms),
            value_sum});
  json.Add({"sharded_cold_batch64", kShards, cold_ms, req_per_sec(cold_ms),
            value_sum});
  json.Add({"sharded_warm_batch64", kShards, warm_ms, req_per_sec(warm_ms),
            value_sum});
  json.Add({"sharded_fault20_batch64", kShards, fault_ms,
            req_per_sec(fault_ms), value_sum});
  json.Add({"sharded_fault20_retries", kShards, fault_ms, 0.0,
            static_cast<double>(fault_retries) / rounds});
  json.Add({"sharded_fault20_over_cold_ratio", kShards, fault_ms, 0.0,
            fault_ratio});
  if (!json.WriteTo(json_path)) return 1;
  if (!bench::WriteObsOutputs(obs_flags)) return 1;
  return 0;
}
