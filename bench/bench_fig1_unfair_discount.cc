// Figure 1(c): "Unfair Discount" — time vs ε (see fig1_common.h).
// Reconstruction notes are in EXPERIMENTS.md.

#include "bench/fig1_common.h"

int main(int argc, char** argv) {
  return mudb::bench::RunFig1(
      "Unfair Discount",
      "SELECT O.id FROM Products P, Orders O "
      "WHERE P.id = O.pr AND O.dis >= 1.6 * P.dis * O.q LIMIT 25",
      argc, argv);
}
