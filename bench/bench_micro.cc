// Micro-benchmarks of the library's hot kernels (google-benchmark):
// direction sampling, asymptotic atom evaluation, polynomial restriction,
// grounding, and the order-exact enumeration.

#include <benchmark/benchmark.h>

#include "src/constraints/real_formula.h"
#include "src/geom/geometry.h"
#include "src/measure/afpras.h"
#include "src/measure/nu_exact.h"
#include "src/poly/polynomial.h"
#include "src/util/rng.h"

namespace {

using mudb::constraints::CmpOp;
using mudb::constraints::RealFormula;
using mudb::poly::Polynomial;

RealFormula MakeConeFormula(int n, int atoms) {
  mudb::util::Rng rng(n * 97 + atoms);
  std::vector<RealFormula> parts;
  for (int i = 0; i < atoms; ++i) {
    Polynomial p;
    for (int v = 0; v < n; ++v) {
      p = p + Polynomial::Constant(rng.Uniform(-1, 1)) *
                  Polynomial::Variable(v);
    }
    parts.push_back(RealFormula::Cmp(p, CmpOp::kLe));
  }
  return RealFormula::And(std::move(parts));
}

void BM_SampleUnitSphere(benchmark::State& state) {
  mudb::util::Rng rng(1);
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mudb::geom::SampleUnitSphere(n, rng));
  }
}
BENCHMARK(BM_SampleUnitSphere)->Arg(2)->Arg(8)->Arg(64);

void BM_AsymptoticTruth(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RealFormula f = MakeConeFormula(n, 2 * n);
  mudb::util::Rng rng(2);
  mudb::geom::Vec dir = mudb::geom::SampleUnitSphere(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.AsymptoticTruth(dir));
  }
}
BENCHMARK(BM_AsymptoticTruth)->Arg(2)->Arg(8)->Arg(32);

void BM_RestrictToDirection(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  mudb::util::Rng rng(3);
  Polynomial p;
  for (int v = 0; v < n; ++v) {
    p = p + Polynomial::Constant(rng.Uniform(-1, 1)) *
                Polynomial::Variable(v) * Polynomial::Variable((v + 1) % n);
  }
  mudb::geom::Vec dir = mudb::geom::SampleUnitSphere(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.RestrictToDirection(dir));
  }
}
BENCHMARK(BM_RestrictToDirection)->Arg(4)->Arg(16);

void BM_AfprasFullRun(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RealFormula f = MakeConeFormula(n, n);
  mudb::measure::AfprasOptions opts;
  opts.epsilon = 0.05;
  for (auto _ : state) {
    mudb::util::Rng rng(4);
    auto r = mudb::measure::Afpras(f, opts, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AfprasFullRun)->Arg(2)->Arg(6)->Arg(12);

void BM_NuExactOrder(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::vector<RealFormula> parts;
  for (int i = 0; i + 1 < k; ++i) {
    parts.push_back(RealFormula::Cmp(
        Polynomial::Variable(i) - Polynomial::Variable(i + 1), CmpOp::kLt));
  }
  RealFormula f = RealFormula::And(std::move(parts));
  for (auto _ : state) {
    auto r = mudb::measure::NuExactOrder(f);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NuExactOrder)->Arg(3)->Arg(5)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
