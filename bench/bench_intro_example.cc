// The §1/§5 worked example: reproduces the paper's ν ≈ 0.097 (0.388 of the
// positive quadrant) for constraint (1), and the measure of the full query
// over the campaign database, comparing the exact 2-D engine against the
// AFPRAS at several ε.

#include <cmath>
#include <cstdio>

#include "src/datagen/datagen.h"
#include "src/logic/formula.h"
#include "src/measure/measure.h"
#include "src/util/timer.h"

namespace {

using namespace mudb;  // NOLINT: bench brevity
using logic::AtomArg;
using logic::CmpOp;
using logic::Formula;
using logic::Term;
using logic::TypedVar;

Formula CampaignQuery() {
  Formula antecedent = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Rel("Products",
                             {AtomArg::BaseVar("i"), AtomArg::BaseVar("s"),
                              AtomArg::NumVar("r"), AtomArg::NumVar("d")}));
    v.push_back(Formula::Not(Formula::Rel(
        "Excluded", {AtomArg::BaseVar("i"), AtomArg::BaseVar("s")})));
    v.push_back(Formula::Rel("Competition",
                             {AtomArg::BaseVar("ip"), AtomArg::BaseVar("s"),
                              AtomArg::NumVar("p")}));
    return v;
  }());
  Formula consequent = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Cmp(Term::Var("r") * Term::Var("d"), CmpOp::kLe,
                             Term::Var("p")));
    v.push_back(Formula::Cmp(Term::Var("r"), CmpOp::kGe, Term::Const(0)));
    v.push_back(Formula::Cmp(Term::Var("d"), CmpOp::kGe, Term::Const(0)));
    v.push_back(Formula::Cmp(Term::Var("p"), CmpOp::kGe, Term::Const(0)));
    return v;
  }());
  return Formula::ForallMany(
      {TypedVar{"i", model::Sort::kBase}, TypedVar{"r", model::Sort::kNum},
       TypedVar{"d", model::Sort::kNum}, TypedVar{"ip", model::Sort::kBase},
       TypedVar{"p", model::Sort::kNum}},
      Formula::Implies(std::move(antecedent), std::move(consequent)));
}

}  // namespace

int main() {
  std::printf("# Introduction / Section 5 worked example\n");

  // Part 1: constraint (1) as printed: (α'>=0) && (α>=8) && (0.7α' >= α).
  using poly::Polynomial;
  Polynomial alpha = Polynomial::Variable(0);
  Polynomial alpha_prime = Polynomial::Variable(1);
  constraints::RealFormula printed = constraints::RealFormula::And([&] {
    std::vector<constraints::RealFormula> v;
    v.push_back(constraints::RealFormula::Cmp(-alpha_prime,
                                              constraints::CmpOp::kLe));
    v.push_back(constraints::RealFormula::Cmp(
        Polynomial::Constant(8) - alpha, constraints::CmpOp::kLe));
    v.push_back(constraints::RealFormula::Cmp(alpha - alpha_prime.Scale(0.7),
                                              constraints::CmpOp::kLe));
    return v;
  }());

  measure::MeasureOptions exact_opts;
  exact_opts.method = measure::Method::kExact2D;
  auto exact = measure::ComputeNu(printed, exact_opts);
  MUDB_CHECK(exact.ok());
  double closed = (M_PI / 2 - std::atan(10.0 / 7.0)) / (2 * M_PI);
  std::printf(
      "# constraint (1): exact-2d %.6f, closed form %.6f, paper ~0.097\n",
      exact->value, closed);
  std::printf("# share of positive quadrant: %.4f (paper ~0.388)\n#\n",
              exact->value * 4);

  // Part 2: the measure of the full query, exact vs AFPRAS per ε.
  auto campaign = datagen::MakeCampaignDatabase();
  MUDB_CHECK(campaign.ok());
  auto q = logic::Query::MakeWithOutput(
      CampaignQuery(), {TypedVar{"s", model::Sort::kBase}}, campaign->db);
  MUDB_CHECK(q.ok());
  auto mu_exact = measure::ComputeMeasure(
      *q, campaign->db, {model::Value::BaseConst("s")}, exact_opts);
  MUDB_CHECK(mu_exact.ok());
  std::printf("# full query: exact mu = %.6f (= atan(10/7)/2pi %.6f)\n#\n",
              mu_exact->value, std::atan(10.0 / 7.0) / (2 * M_PI));

  std::printf("# %8s %12s %12s %12s\n", "eps*1e3", "afpras_mu", "abs_err",
              "time_ms");
  for (int eps_milli : {100, 50, 20, 10, 5}) {
    measure::MeasureOptions opts;
    opts.method = measure::Method::kAfpras;
    opts.epsilon = eps_milli / 1000.0;
    util::WallTimer timer;
    auto mu = measure::ComputeMeasure(*q, campaign->db,
                                      {model::Value::BaseConst("s")}, opts);
    MUDB_CHECK(mu.ok());
    std::printf("  %8d %12.6f %12.6f %12.3f\n", eps_milli, mu->value,
                std::fabs(mu->value - mu_exact->value),
                timer.ElapsedMillis());
  }
  return 0;
}
