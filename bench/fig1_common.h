// Shared harness for the three Figure 1 benchmarks (Section 9).
//
// Regenerates one subplot of Figure 1: for ε from 0.10 down to 0.01 in steps
// of 0.005 (19 points, the paper's grid), the time of the Monte-Carlo
// confidence phase over the LIMIT-25 candidate set of one decision-support
// query on the synthetic sales database.
//
// Expected shape (what the paper's figure shows): time grows as ε^{-2} as ε
// decreases, sub-linear-in-ε elsewhere; absolute numbers differ from the
// paper's Python/NumPy prototype (this is native code), but the curve's
// shape and the "seconds, not minutes, even at ε = 0.01" conclusion carry
// over. See EXPERIMENTS.md.

#ifndef MUDB_BENCH_FIG1_COMMON_H_
#define MUDB_BENCH_FIG1_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/datagen/datagen.h"
#include "src/engine/eval.h"
#include "src/measure/measure.h"
#include "src/sql/parser.h"
#include "src/util/timer.h"

namespace mudb::bench {

inline int RunFig1(const char* name, const char* sql, int argc, char** argv) {
  datagen::SalesConfig config;
  // Paper scale is ~200K tuples total (100000 60000 500); the default keeps
  // the default `ctest && bench/*` loop fast. Override via argv.
  config.num_products = argc > 1 ? std::atoll(argv[1]) : 40000;
  config.num_orders = argc > 2 ? std::atoll(argv[2]) : 24000;
  config.num_segments = argc > 3 ? std::atoll(argv[3]) : 400;
  config.null_rate = 0.08;

  std::printf("# Figure 1 — %s\n", name);
  std::printf("# %s\n", sql);
  util::WallTimer setup;
  auto db = datagen::MakeSalesDatabase(config);
  MUDB_CHECK(db.ok());
  auto cq = sql::ParseSqlQuery(sql, *db);
  if (!cq.ok()) {
    std::fprintf(stderr, "parse error: %s\n", cq.status().ToString().c_str());
    return 1;
  }
  util::WallTimer join_timer;
  auto result = engine::EvaluateCq(*db, *cq);
  if (!result.ok()) {
    std::fprintf(stderr, "eval error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "# db: %zu tuples (%zu numeric nulls), setup %.2fs; naive evaluation: "
      "%zu candidates from %zu witnesses in %.3fs\n",
      db->TotalTuples(), db->CollectNumNullIds().size(),
      setup.ElapsedSeconds() - join_timer.ElapsedSeconds(),
      result->candidates.size(), result->witnesses_enumerated,
      join_timer.ElapsedSeconds());
  std::printf("#\n# %8s %10s %14s %14s\n", "eps*1e3", "samples",
              "mc_time_ms", "ms_per_tuple");

  // The paper's x axis: ε·10³ from 100 down to 10 in steps of 5.
  for (int eps_milli = 100; eps_milli >= 10; eps_milli -= 5) {
    double eps = eps_milli / 1000.0;
    measure::MeasureOptions opts;
    opts.method = measure::Method::kAfpras;  // the §8 algorithm, as in §9
    opts.epsilon = eps;
    opts.delta = 0.25;  // the paper's 3/4-confidence setting
    util::WallTimer timer;
    int64_t samples = 0;
    for (const engine::Candidate& c : result->candidates) {
      auto mu = measure::ComputeNu(c.constraint, opts);
      MUDB_CHECK(mu.ok());
      samples += mu->samples;
    }
    double ms = timer.ElapsedMillis();
    std::printf("  %8d %10lld %14.3f %14.4f\n", eps_milli,
                static_cast<long long>(samples), ms,
                result->candidates.empty()
                    ? 0.0
                    : ms / static_cast<double>(result->candidates.size()));
  }
  std::printf("\n");
  return 0;
}

}  // namespace mudb::bench

#endif  // MUDB_BENCH_FIG1_COMMON_H_
