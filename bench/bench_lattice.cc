// §10 extension study — the integer lattice measure and its Gauss-circle
// convergence to the real measure: μ_Z ratios at growing radii against the
// exact real ν for three 2-D regions.

#include <cmath>
#include <cstdio>

#include "src/measure/lattice.h"
#include "src/measure/nu_exact.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  using constraints::CmpOp;
  using constraints::RealFormula;
  using poly::Polynomial;

  auto Z = [](int i) { return Polynomial::Variable(i); };

  struct Region {
    const char* name;
    RealFormula formula;
  };
  std::vector<Region> regions;
  regions.push_back({"halfplane z0<0", RealFormula::Cmp(Z(0), CmpOp::kLt)});
  {
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
    parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
    regions.push_back({"open quadrant", RealFormula::And(std::move(parts))});
  }
  {
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(Z(1) - Z(0).Scale(2.0), CmpOp::kLe));
    parts.push_back(RealFormula::Cmp(Z(0).Scale(-1) - Z(1), CmpOp::kLt));
    regions.push_back({"sector -x<y<=2x", RealFormula::And(std::move(parts))});
  }

  std::printf("# Integer lattice measure vs real measure (Gauss circle)\n");
  std::printf("# %-18s %8s %12s %12s %12s %10s\n", "region", "radius",
              "lattice_mu", "real_nu", "abs_err", "time_ms");
  for (const Region& region : regions) {
    auto exact = measure::NuExact2D(region.formula);
    MUDB_CHECK(exact.ok());
    for (int radius : {10, 30, 100, 300}) {
      util::WallTimer timer;
      auto ratio = measure::NuLatticeRatio(region.formula, radius);
      MUDB_CHECK(ratio.ok());
      std::printf("  %-18s %8d %12.6f %12.6f %12.6f %10.2f\n", region.name,
                  radius, ratio->ratio(), *exact,
                  std::fabs(ratio->ratio() - *exact), timer.ElapsedMillis());
    }
  }
  std::printf("# expected: abs_err shrinks ~1/r — the o(Vol(B_r^n)) lattice\n"
              "# discrepancy the paper cites (Gauss circle problem, [23]).\n");
  return 0;
}
