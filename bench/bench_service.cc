// Serving-layer throughput: MeasureService batches vs. sequential
// ComputeNu on a candidate-sweep workload with shared constraint geometry —
// the paper's μ(q, D, (a,s)) evaluated for many candidate tuples over one
// database, modeled as 64 FPRAS requests drawn from 16 distinct formulas
// (each repeated 4×, i.e. repeated candidates), every formula sharing one
// cone with the whole batch (≥ 50% of bodies shared).
//
// Legs, interleaved A/B per round (BUILDING.md, "Profiling & benchmarks"):
//   sequential_batch64 — one ComputeNu per request, fresh engine state: the
//                        direct-API baseline.
//   service_batch64    — the same requests through a fresh MeasureService
//                        (canonical dedup + estimate cache + result memo).
//   service_repeat64   — the identical batch again on the warm service:
//                        pure cache-replay throughput.
//
// The bench asserts the service results are bit-identical to the sequential
// leg before reporting. Rows (bench_json.h schema): samples_per_sec carries
// requests/sec; estimate is the Σ of measure values (a determinism
// fingerprint) except for the *_hit_rate rows, where it is the cache hit
// rate of that leg.
//
// The bench also locks in the tracing contract (ISSUE: observability must
// be free and invisible): a fourth leg runs the same batch with span
// recording enabled and hard-asserts bit-identity against the untraced
// legs, and a microbenchmark-derived overhead bound — per-span cost ×
// spans actually recorded — must stay within 2% of the untraced batch
// wall time (derived, not wall A/B, so host timing noise cannot flake it;
// the wall ratio is still printed for reference).
//
// Flags: --json=<path>, --quick (one round, CI-sized), --trace=<path>,
// --metrics=<path> (bench_obs.h).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_obs.h"
#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/util/timer.h"

namespace {

using namespace mudb;  // NOLINT: bench brevity

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

constexpr int kBatch = 64;
constexpr int kDistinct = 16;
constexpr double kEpsilon = 0.35;

// Distinct request d: (shared positive orthant) ∨ (private cone d). The
// shared disjunct grounds to the same canonical body in every request.
RealFormula Workload(int d) {
  std::vector<RealFormula> shared;
  for (int i = 0; i < 3; ++i) {
    shared.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  std::vector<RealFormula> priv;
  // A rotated cone: z0 < d-dependent mix of the others, all negated.
  priv.push_back(RealFormula::Cmp(Z(0) + C(1.0 + d) * Z(1), CmpOp::kLt));
  priv.push_back(RealFormula::Cmp(Z(1) + C(0.5 + d) * Z(2), CmpOp::kLt));
  priv.push_back(RealFormula::Cmp(Z(2), CmpOp::kLt));
  std::vector<RealFormula> ors{RealFormula::And(std::move(shared)),
                               RealFormula::And(std::move(priv))};
  return RealFormula::Or(std::move(ors));
}

measure::MeasureOptions RequestOptions(int d) {
  (void)d;
  measure::MeasureOptions opts;
  opts.method = measure::Method::kFpras;
  opts.epsilon = kEpsilon;
  // One service-wide seed policy (the MeasureOptions default): repeated
  // candidates hit the result memo, and the shared cone is deduplicated
  // across *distinct* requests through the body cache — estimates only
  // share between requests with equal seeds, by design.
  return opts;
}

std::vector<service::MeasureRequest> MakeBatch() {
  std::vector<service::MeasureRequest> reqs;
  reqs.reserve(kBatch);
  for (int r = 0; r < kBatch; ++r) {
    int d = r % kDistinct;
    reqs.push_back(
        service::MeasureRequest::Nu(Workload(d), RequestOptions(d)));
  }
  return reqs;
}

struct LegResult {
  double wall_ms = 0.0;
  double value_sum = 0.0;
  double hit_rate = 0.0;
  double body_hit_rate = 0.0;
};

LegResult RunSequential() {
  LegResult leg;
  util::WallTimer timer;
  for (int r = 0; r < kBatch; ++r) {
    int d = r % kDistinct;
    auto result = measure::ComputeNu(Workload(d), RequestOptions(d));
    if (!result.ok()) {
      std::fprintf(stderr, "sequential request failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    leg.value_sum += result->value;
  }
  leg.wall_ms = timer.ElapsedMillis();
  return leg;
}

LegResult RunService(service::MeasureService& svc) {
  LegResult leg;
  auto outcome = svc.RunBatch(MakeBatch());
  for (const auto& result : outcome.results) {
    if (!result.ok()) {
      std::fprintf(stderr, "service request failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    leg.value_sum += result->value;
  }
  leg.wall_ms = outcome.stats.wall_ms;
  int64_t lookups = outcome.stats.requests;
  leg.hit_rate = lookups > 0 ? static_cast<double>(
                                   outcome.stats.request_cache_hits) /
                                   static_cast<double>(lookups)
                             : 0.0;
  // Fraction of unique-body estimations the executed requests served from
  // the estimate cache (cross-request geometry sharing).
  int64_t unique = outcome.stats.unique_bodies;
  leg.body_hit_rate =
      unique > 0 ? static_cast<double>(outcome.stats.body_cache_hits) /
                       static_cast<double>(unique)
                 : 0.0;
  return leg;
}

// Per-span cost with recording enabled, measured directly: construct /
// destroy plus two annotations — the instrumentation's worst case. Probe
// spans are cleared afterwards, so call this before any real work records.
double MeasureSpanCostMs() {
  const bool was_on = obs::TracingEnabled();
  if (!was_on) obs::EnableTracing();
  constexpr int kProbe = 50000;
  util::WallTimer timer;
  for (int i = 0; i < kProbe; ++i) {
    obs::Span span("bench.overhead_probe");
    span.Annotate("a", 1.0);
    span.Annotate("b", "x");
  }
  double per_span_ms = timer.ElapsedMillis() / kProbe;
  if (!was_on) obs::DisableTracing();
  obs::ClearTraces();
  return per_span_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonFlagPath(argc, argv);
  const bench::ObsFlags obs_flags = bench::ParseObsFlags(argc, argv);
  const double per_span_ms = MeasureSpanCostMs();
  const bool quick = bench::QuickFlag(argc, argv);
  const int rounds = quick ? 1 : 3;

  // Interleaved A/B rounds: host timing noise hits both legs equally.
  double seq_ms = 0.0, svc_ms = 0.0, rep_ms = 0.0;
  double seq_sum = 0.0, svc_sum = 0.0, rep_sum = 0.0;
  double svc_hits = 0.0, rep_hits = 0.0, svc_body_hits = 0.0;
  for (int round = 0; round < rounds; ++round) {
    LegResult seq = RunSequential();
    service::MeasureService svc;  // fresh caches per round
    LegResult first = RunService(svc);
    LegResult repeat = RunService(svc);
    if (first.value_sum != seq.value_sum ||
        repeat.value_sum != seq.value_sum) {
      std::fprintf(stderr,
                   "FATAL: service results diverge from sequential "
                   "(seq %.17g, service %.17g, repeat %.17g)\n",
                   seq.value_sum, first.value_sum, repeat.value_sum);
      return 1;
    }
    seq_ms += seq.wall_ms;
    svc_ms += first.wall_ms;
    rep_ms += repeat.wall_ms;
    seq_sum = seq.value_sum;
    svc_sum = first.value_sum;
    rep_sum = repeat.value_sum;
    svc_hits += first.hit_rate;
    rep_hits += repeat.hit_rate;
    svc_body_hits += first.body_hit_rate;
  }
  seq_ms /= rounds;
  svc_ms /= rounds;
  rep_ms /= rounds;

  // Tracing contract leg: the same batch with span recording on must be
  // bit-identical to the untraced legs, and the derived overhead (per-span
  // cost × spans recorded) must fit the 2% budget.
  const bool tracing_already_on = obs::TracingEnabled();
  if (!tracing_already_on) obs::EnableTracing();
  const size_t spans_before = obs::CollectSpans().size();
  service::MeasureService traced_svc;  // fresh caches, like each round
  LegResult traced = RunService(traced_svc);
  const size_t spans_recorded = obs::CollectSpans().size() - spans_before;
  if (!tracing_already_on) obs::DisableTracing();
  if (traced.value_sum != seq_sum) {
    std::fprintf(stderr,
                 "FATAL: traced batch diverges from untraced "
                 "(untraced %.17g, traced %.17g)\n",
                 seq_sum, traced.value_sum);
    return 1;
  }
  if (spans_recorded == 0) {
    std::fprintf(stderr, "FATAL: traced batch recorded no spans\n");
    return 1;
  }
  const double overhead_ms = per_span_ms * static_cast<double>(spans_recorded);
  const double budget_ms = 0.02 * svc_ms;
  if (overhead_ms > budget_ms) {
    std::fprintf(stderr,
                 "FATAL: tracing overhead %.3f ms exceeds 2%% budget %.3f ms "
                 "(%zu spans at %.0f ns each)\n",
                 overhead_ms, budget_ms, spans_recorded, per_span_ms * 1e6);
    return 1;
  }
  double svc_hit_rate = svc_hits / rounds;
  double rep_hit_rate = rep_hits / rounds;
  double svc_body_hit_rate = svc_body_hits / rounds;

  auto req_per_sec = [](double ms) { return kBatch / (ms / 1e3); };
  std::printf("%-22s %10s %12s %10s\n", "leg", "wall_ms", "req/s",
              "hit_rate");
  std::printf("%-22s %10.1f %12.1f %10s\n", "sequential_batch64", seq_ms,
              req_per_sec(seq_ms), "-");
  std::printf("%-22s %10.1f %12.1f %10.2f\n", "service_batch64", svc_ms,
              req_per_sec(svc_ms), svc_hit_rate);
  std::printf("%-22s %10.1f %12.1f %10.2f\n", "service_repeat64", rep_ms,
              req_per_sec(rep_ms), rep_hit_rate);
  std::printf(
      "body-cache hit rate (first batch): %.2f\n"
      "service speedup over sequential: %.2fx (repeat: %.2fx)\n",
      svc_body_hit_rate, seq_ms / svc_ms, seq_ms / rep_ms);
  std::printf(
      "tracing: %zu spans/batch, %.0f ns/span, derived overhead %.3f ms "
      "(budget %.3f ms, traced/untraced wall %.2fx), bit-identical: yes\n",
      spans_recorded, per_span_ms * 1e6, overhead_ms, budget_ms,
      traced.wall_ms / svc_ms);

  bench::BenchJson json("service");
  json.Add({"sequential_batch64", 1, seq_ms, req_per_sec(seq_ms), seq_sum});
  json.Add({"service_batch64", 1, svc_ms, req_per_sec(svc_ms), svc_sum});
  json.Add({"service_repeat64", 1, rep_ms, req_per_sec(rep_ms), rep_sum});
  json.Add({"service_batch64_hit_rate", 1, svc_ms, 0.0, svc_hit_rate});
  json.Add({"service_repeat64_hit_rate", 1, rep_ms, 0.0, rep_hit_rate});
  json.Add({"service_batch64_body_hit_rate", 1, svc_ms, 0.0,
            svc_body_hit_rate});
  json.Add({"service_traced_batch64", 1, traced.wall_ms,
            req_per_sec(traced.wall_ms), traced.value_sum});
  json.Add({"service_tracing_overhead_ms", 1, traced.wall_ms, 0.0,
            overhead_ms});
  if (!json.WriteTo(json_path)) return 1;
  if (!bench::WriteObsOutputs(obs_flags)) return 1;
  return 0;
}
