// §10 extension study — conditional and probabilistic measures.
//
// The paper's future-work section proposes (a) range constraints on numeric
// columns ("price is positive, discount lies in [0,1]") added to numerator
// and denominator of the measure, and (b) per-column probability
// distributions replacing the uniform-direction semantics. This bench
// evaluates the campaign example's constraint under progressively more
// informative priors and reports how the confidence moves, plus timings.

#include <cmath>
#include <cstdio>

#include "src/measure/conditional.h"
#include "src/measure/probabilistic.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  using constraints::CmpOp;
  using constraints::RealFormula;
  using measure::Distribution;
  using measure::VarRange;
  using poly::Polynomial;

  // Constraint (1): (α' >= 0) && (α >= 8) && (0.7·α' >= α); z0 = α is the
  // competitor's price, z1 = α' the product's recommended retail price.
  Polynomial alpha = Polynomial::Variable(0);
  Polynomial alpha_prime = Polynomial::Variable(1);
  RealFormula f = RealFormula::And([&] {
    std::vector<RealFormula> v;
    v.push_back(RealFormula::Cmp(-alpha_prime, CmpOp::kLe));
    v.push_back(RealFormula::Cmp(Polynomial::Constant(8) - alpha, CmpOp::kLe));
    v.push_back(RealFormula::Cmp(alpha - alpha_prime.Scale(0.7), CmpOp::kLe));
    return v;
  }());

  measure::AfprasOptions opts;
  opts.num_samples = 2000000;

  struct Scenario {
    const char* name;
    measure::VarRanges ranges;
  };
  const Scenario scenarios[] = {
      {"agnostic (paper default)", {}},
      {"prices nonnegative", {VarRange::AtLeast(0), VarRange::AtLeast(0)}},
      {"alpha' rrp in [5, 500]",
       {VarRange::AtLeast(0), VarRange::Between(5, 500)}},
      {"both bounded: alpha in [0,100], rrp in [5,500]",
       {VarRange::Between(0, 100), VarRange::Between(5, 500)}},
  };

  std::printf("# Conditional measures of the campaign constraint (1)\n");
  std::printf("# %-46s %10s %10s\n", "prior", "mu_C", "time_ms");
  for (const Scenario& s : scenarios) {
    util::Rng rng(99);
    util::WallTimer timer;
    auto r = measure::ConditionalAfpras(f, s.ranges, opts, rng);
    MUDB_CHECK(r.ok());
    std::printf("  %-46s %10.4f %10.1f\n", s.name, r->estimate,
                timer.ElapsedMillis());
  }
  std::printf(
      "# agnostic ~0.0972 (paper's 0.097); nonneg prior ~0.3888 (paper's\n"
      "# 0.388 'of the positive quadrant'); bounded priors give honest\n"
      "# finite-volume probabilities.\n#\n");

  // Probabilistic semantics: distributions matching the §9 generator.
  std::printf("# Probabilistic measures (per-column distributions)\n");
  std::printf("# %-46s %10s %10s\n", "distributions", "P(phi)", "time_ms");
  struct PScenario {
    const char* name;
    std::vector<Distribution> dists;
  };
  const PScenario pscenarios[] = {
      {"alpha~U[0,100], rrp~U[5,500]",
       {Distribution::Uniform(0, 100), Distribution::Uniform(5, 500)}},
      {"alpha~Exp(0.02), rrp~U[5,500]",
       {Distribution::Exponential(0.02), Distribution::Uniform(5, 500)}},
      {"alpha~N(50,20), rrp~N(100,50)",
       {Distribution::Gaussian(50, 20), Distribution::Gaussian(100, 50)}},
      {"imputation: alpha=50, rrp=100",
       {Distribution::Point(50), Distribution::Point(100)}},
  };
  for (const PScenario& s : pscenarios) {
    util::Rng rng(99);
    util::WallTimer timer;
    auto r = measure::ProbabilisticMeasure(f, s.dists, opts, rng);
    MUDB_CHECK(r.ok());
    std::printf("  %-46s %10.4f %10.1f\n", s.name, r->estimate,
                timer.ElapsedMillis());
  }
  std::printf(
      "# note how point-mass imputation collapses the confidence to 0/1 —\n"
      "# the information the paper's framework is designed to preserve.\n");
  return 0;
}
