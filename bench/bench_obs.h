// --trace=<path> / --metrics=<path> support for the bench binaries
// (bench_service, bench_ranking, bench_rerank, bench_sharded).
//
// --trace=<path>   enables span recording for the whole run and writes the
//                  Chrome trace_event JSON on exit (open in
//                  chrome://tracing or Perfetto).
// --metrics=<path> writes the global MetricsRegistry snapshot on exit
//                  (tools/metrics_summary.py pretty-prints it).
//
// Tracing never perturbs results — the benches' bit-identity asserts run
// with these flags active, so a traced run is also a determinism check.

#ifndef MUDB_BENCH_BENCH_OBS_H_
#define MUDB_BENCH_BENCH_OBS_H_

#include <cstring>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mudb::bench {

struct ObsFlags {
  std::string trace_path;
  std::string metrics_path;
};

/// Parses --trace= / --metrics= and enables tracing when a trace path was
/// given. Call once at the top of main().
inline ObsFlags ParseObsFlags(int argc, char** argv) {
  ObsFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      flags.trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      flags.metrics_path = argv[i] + 10;
    }
  }
  if (!flags.trace_path.empty()) obs::EnableTracing();
  return flags;
}

/// Writes whichever outputs were requested; returns false (with a note on
/// stderr, from the writers) if any write failed. Call once before exit.
inline bool WriteObsOutputs(const ObsFlags& flags) {
  bool ok = true;
  if (!flags.trace_path.empty()) {
    obs::DisableTracing();
    ok = obs::WriteChromeTrace(flags.trace_path) && ok;
  }
  if (!flags.metrics_path.empty()) {
    ok = obs::MetricsRegistry::Global().WriteJsonFile(flags.metrics_path) &&
         ok;
  }
  return ok;
}

}  // namespace mudb::bench

#endif  // MUDB_BENCH_BENCH_OBS_H_
