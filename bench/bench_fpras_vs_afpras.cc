// Thm. 7.1 vs Thm. 8.1 ablation: on CQ(+,<)-shaped formulas both engines
// apply; the FPRAS gives a multiplicative guarantee via convex-geometry
// machinery (LP seeding + hit-and-run + annealing + Karp–Luby), the AFPRAS an
// additive one via direction sampling. This bench compares their time and
// accuracy on random cone DNFs of growing dimension, against exact ground
// truth in 2-D (arc measure) and high-precision sampling otherwise.

#include <cmath>
#include <cstdio>

#include "src/measure/afpras.h"
#include "src/measure/fpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  using constraints::CmpOp;
  using constraints::RealFormula;
  using poly::Polynomial;

  std::printf("# FPRAS (Thm 7.1) vs AFPRAS (Thm 8.1) on linear cone DNFs\n");
  std::printf("# %3s %10s %12s %12s %12s %12s %12s\n", "n", "truth",
              "fpras_mu", "fpras_ms", "afpras_mu", "afpras_ms", "rel_err");

  util::Rng formula_rng(7);
  for (int n = 2; n <= 5; ++n) {
    // A disjunction of two random cones, each cut by n halfspaces through
    // the origin (plus a positivity constraint to keep volumes moderate).
    auto random_cone = [&]() {
      std::vector<RealFormula> parts;
      for (int i = 0; i < n; ++i) {
        Polynomial p;
        for (int v = 0; v < n; ++v) {
          p = p + Polynomial::Constant(formula_rng.Uniform(-1, 1)) *
                      Polynomial::Variable(v);
        }
        parts.push_back(RealFormula::Cmp(p, CmpOp::kLe));
      }
      return RealFormula::And(std::move(parts));
    };
    std::vector<RealFormula> ors{random_cone(), random_cone()};
    RealFormula f = RealFormula::Or(std::move(ors));

    // Ground truth: exact in 2-D, very-high-precision AFPRAS otherwise.
    double truth;
    if (n == 2) {
      auto exact = measure::NuExact2D(f);
      MUDB_CHECK(exact.ok());
      truth = *exact;
    } else {
      measure::AfprasOptions ref;
      ref.num_samples = 4000000;
      util::Rng rng(42);
      auto r = measure::Afpras(f, ref, rng);
      MUDB_CHECK(r.ok());
      truth = r->estimate;
    }

    measure::FprasOptions fopts;
    fopts.epsilon = 0.1;
    util::Rng frng(n);
    util::WallTimer ftimer;
    auto fpras = measure::FprasConjunctive(f, fopts, frng);
    MUDB_CHECK(fpras.ok());
    double fpras_ms = ftimer.ElapsedMillis();

    measure::AfprasOptions aopts;
    aopts.epsilon = 0.01;
    util::Rng arng(n);
    util::WallTimer atimer;
    auto afpras = measure::Afpras(f, aopts, arng);
    MUDB_CHECK(afpras.ok());
    double afpras_ms = atimer.ElapsedMillis();

    double rel = truth > 1e-9 ? std::fabs(fpras->estimate / truth - 1.0)
                              : std::fabs(fpras->estimate - truth);
    std::printf("  %3d %10.4f %12.4f %12.2f %12.4f %12.2f %12.3f\n", n, truth,
                fpras->estimate, fpras_ms, afpras->estimate, afpras_ms, rel);
  }
  std::printf("# expected: both track truth; FPRAS cost grows quickly with n "
              "(annealing phases), AFPRAS stays cheap — why §9 implements "
              "the AFPRAS.\n");
  return 0;
}
