// Thm. 7.1 vs Thm. 8.1 ablation: on CQ(+,<)-shaped formulas both engines
// apply; the FPRAS gives a multiplicative guarantee via convex-geometry
// machinery (LP seeding + hit-and-run + annealing + Karp–Luby), the AFPRAS an
// additive one via direction sampling. This bench compares their time and
// accuracy on random cone DNFs of growing dimension, against exact ground
// truth in 2-D (arc measure) and high-precision sampling otherwise.
//
// The threads axis sweeps the FPRAS over num_threads ∈ {1, 2, 4} and checks
// the parallel-runtime contract: wall-clock drops with more workers (on
// hardware that has them) while the estimate stays bit-identical.
//
// Flags:
//   --json=<path>  emit the schema documented in bench_json.h; the
//                  hnr_kernel_* rows are the raw single-chain hit-and-run
//                  steps/sec tracked by the checked-in BENCH_sampling.json.
//   --quick        CI-sized run (fewer dimensions, shorter kernel loops).

#include <cmath>
#include <cstdio>
#include <thread>

#include "bench/bench_json.h"
#include "src/convex/batch_sampler.h"
#include "src/convex/body.h"
#include "src/convex/sampler.h"
#include "src/measure/afpras.h"
#include "src/measure/fpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

// The representative kernel body: a random cone of n halfspaces through the
// origin, the unit ball, and one annealing-style inner ball — the constraint
// mix every FPRAS chain walks on.
mudb::convex::ConvexBody MakeKernelBody(int n) {
  using namespace mudb;  // NOLINT: bench brevity
  util::Rng cone_rng(7 + n);
  convex::ConvexBody body(n);
  for (int i = 0; i < n; ++i) {
    geom::Vec a(n);
    for (int j = 0; j < n; ++j) a[j] = cone_rng.Uniform(-1, 1);
    // Keep the negative diagonal so the origin stays interior-adjacent.
    if (a[i] > 0) a[i] = -a[i];
    body.AddHalfspace(a, 0.0);
  }
  body.AddBall(geom::Vec(n, 0.0), 1.0);
  body.AddBall(geom::Vec(n, 0.0), 0.7);
  return body;
}

// Raw scalar sampler throughput (single chain, single thread).
mudb::bench::BenchResult HnrKernelThroughput(int n, int64_t steps) {
  using namespace mudb;  // NOLINT: bench brevity
  convex::ConvexBody body = MakeKernelBody(n);
  convex::HitAndRunSampler sampler(&body, geom::Vec(n, 0.0));
  util::Rng rng(42);
  sampler.Walk(1000, rng);  // warm-up
  util::WallTimer timer;
  sampler.Walk(static_cast<int>(steps), rng);
  double ms = timer.ElapsedMillis();
  mudb::bench::BenchResult r;
  r.workload = "hnr_kernel_n" + std::to_string(n);
  r.threads = 1;
  r.wall_ms = ms;
  r.samples_per_sec = steps / (ms / 1e3);
  r.estimate = sampler.current()[0];  // determinism fingerprint
  return r;
}

// Batched K-chain kernel throughput on the same body and step schedule.
// Lane 0 runs the scalar row's exact substream (seed 42, same warm-up), so
// its fingerprint must equal the scalar row's — the bench hard-asserts the
// lane ≡ scalar bit-identity contract before reporting any speedup.
mudb::bench::BenchResult HnrBatchThroughput(int n, int lanes,
                                            int64_t steps_per_lane,
                                            double scalar_fingerprint) {
  using namespace mudb;  // NOLINT: bench brevity
  convex::ConvexBody body = MakeKernelBody(n);
  convex::BatchedHitAndRunSampler batched(&body, lanes);
  std::vector<util::Rng> rngs;
  for (int l = 0; l < lanes; ++l) {
    rngs.push_back(util::Rng(l == 0 ? 42 : 4200 + l));
    batched.ResetLane(l, geom::Vec(n, 0.0));
  }
  batched.WalkAll(1000, rngs.data());  // warm-up, matching the scalar row
  util::WallTimer timer;
  batched.WalkAll(static_cast<int>(steps_per_lane), rngs.data());
  double ms = timer.ElapsedMillis();
  geom::Vec lane0;
  batched.GetCurrent(0, &lane0);
  MUDB_CHECK(lane0[0] == scalar_fingerprint);
  mudb::bench::BenchResult r;
  r.workload =
      "hnr_kernel_n" + std::to_string(n) + "_k" + std::to_string(lanes);
  r.threads = 1;
  r.wall_ms = ms;
  // Aggregate chain steps per second: K lanes each advanced steps_per_lane.
  r.samples_per_sec = lanes * steps_per_lane / (ms / 1e3);
  r.estimate = lane0[0];  // determinism fingerprint (≡ scalar row)
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mudb;  // NOLINT: bench brevity
  using constraints::CmpOp;
  using constraints::RealFormula;
  using poly::Polynomial;

  const std::string json_path = bench::JsonFlagPath(argc, argv);
  const bool quick = bench::QuickFlag(argc, argv);
  bench::BenchJson json("fpras_vs_afpras");

  std::printf("# FPRAS (Thm 7.1) vs AFPRAS (Thm 8.1) on linear cone DNFs\n");
  std::printf("# hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("# %3s %10s %12s %12s %12s %12s %12s %12s %12s %9s %4s\n", "n",
              "truth", "fpras_mu", "fpras_1t_ms", "fpras_2t_ms", "fpras_4t_ms",
              "afpras_mu", "afpras_ms", "rel_err", "speedup4", "det");
  bool all_deterministic = true;
  double sum_speedup = 0.0;
  int rows = 0;

  const int max_n = quick ? 3 : 5;
  const int64_t kernel_steps = quick ? 200000 : 2000000;
  util::Rng formula_rng(7);
  for (int n = 2; n <= max_n; ++n) {
    // A disjunction of two random cones, each cut by n halfspaces through
    // the origin (plus a positivity constraint to keep volumes moderate).
    auto random_cone = [&]() {
      std::vector<RealFormula> parts;
      for (int i = 0; i < n; ++i) {
        Polynomial p;
        for (int v = 0; v < n; ++v) {
          p = p + Polynomial::Constant(formula_rng.Uniform(-1, 1)) *
                      Polynomial::Variable(v);
        }
        parts.push_back(RealFormula::Cmp(p, CmpOp::kLe));
      }
      return RealFormula::And(std::move(parts));
    };
    std::vector<RealFormula> ors{random_cone(), random_cone()};
    RealFormula f = RealFormula::Or(std::move(ors));

    // Ground truth: exact in 2-D, very-high-precision AFPRAS otherwise.
    double truth;
    if (n == 2) {
      auto exact = measure::NuExact2D(f);
      MUDB_CHECK(exact.ok());
      truth = *exact;
    } else {
      measure::AfprasOptions ref;
      ref.num_samples = 4000000;
      util::Rng rng(42);
      auto r = measure::Afpras(f, ref, rng);
      MUDB_CHECK(r.ok());
      truth = r->estimate;
    }

    // The FPRAS across the threads axis: same seed, so every run must
    // return the identical estimate — only the wall-clock may move.
    double fpras_ms[3] = {0, 0, 0};
    double fpras_mu = 0.0;
    bool deterministic = true;
    const int thread_axis[3] = {1, 2, 4};
    for (int t = 0; t < 3; ++t) {
      measure::FprasOptions fopts;
      fopts.epsilon = 0.1;
      fopts.num_threads = thread_axis[t];
      util::Rng frng(n);
      util::WallTimer ftimer;
      auto fpras = measure::FprasConjunctive(f, fopts, frng);
      MUDB_CHECK(fpras.ok());
      fpras_ms[t] = ftimer.ElapsedMillis();
      if (t == 0) {
        fpras_mu = fpras->estimate;
      } else if (fpras->estimate != fpras_mu) {
        deterministic = false;
      }
      bench::BenchResult row;
      row.workload = "fpras_cone_dnf_n" + std::to_string(n);
      row.threads = thread_axis[t];
      row.wall_ms = fpras_ms[t];
      // Hit-and-run steps/sec: the sampling pipeline's throughput.
      row.samples_per_sec =
          static_cast<double>(fpras->sampling_steps) / (fpras_ms[t] / 1e3);
      row.estimate = fpras->estimate;
      json.Add(row);
    }
    all_deterministic = all_deterministic && deterministic;
    sum_speedup += fpras_ms[0] / fpras_ms[2];
    ++rows;

    measure::AfprasOptions aopts;
    aopts.epsilon = 0.01;
    util::Rng arng(n);
    util::WallTimer atimer;
    auto afpras = measure::Afpras(f, aopts, arng);
    MUDB_CHECK(afpras.ok());
    double afpras_ms = atimer.ElapsedMillis();
    {
      bench::BenchResult row;
      row.workload = "afpras_cone_dnf_n" + std::to_string(n);
      row.threads = 1;
      row.wall_ms = afpras_ms;
      row.samples_per_sec =
          static_cast<double>(afpras->samples) / (afpras_ms / 1e3);
      row.estimate = afpras->estimate;
      json.Add(row);
    }

    double rel = truth > 1e-9 ? std::fabs(fpras_mu / truth - 1.0)
                              : std::fabs(fpras_mu - truth);
    std::printf(
        "  %3d %10.4f %12.4f %12.2f %12.2f %12.2f %12.4f %12.2f %12.3f "
        "%9.2f %4s\n",
        n, truth, fpras_mu, fpras_ms[0], fpras_ms[1], fpras_ms[2],
        afpras->estimate, afpras_ms, rel, fpras_ms[0] / fpras_ms[2],
        deterministic ? "ok" : "DIFF");
  }

  // Raw kernel throughput: the steps/sec trajectory metric. The scalar row
  // first, then the K-sweep of the batched lockstep kernel on the same body
  // (aggregate lane-steps/s; lane 0 re-runs the scalar substream and the
  // bench aborts unless it lands bit-identically).
  std::printf("# raw hit-and-run kernel (scalar chain, then batched K-sweep):\n");
  for (int n : {2, 3, 4, 5, 8}) {
    bench::BenchResult row = HnrKernelThroughput(n, kernel_steps);
    std::printf("#   n=%d: scalar %8.3f Msteps/s", n,
                row.samples_per_sec / 1e6);
    json.Add(row);
    for (int lanes : {1, 2, 4, 8, 16}) {
      bench::BenchResult batch =
          HnrBatchThroughput(n, lanes, kernel_steps, row.estimate);
      std::printf("  K%d %8.3f", lanes, batch.samples_per_sec / 1e6);
      json.Add(batch);
    }
    std::printf("\n");
  }

  std::printf("# mean 4-thread speedup: %.2fx; estimates %s across thread "
              "counts\n",
              sum_speedup / rows,
              all_deterministic ? "bit-identical" : "DIVERGED");
  std::printf("# expected: both track truth; FPRAS cost grows quickly with n "
              "(annealing phases), AFPRAS stays cheap — why §9 implements "
              "the AFPRAS. With >= 4 hardware threads the 4t column should "
              "run >= 2x faster than 1t.\n");
  if (!json.WriteTo(json_path)) return 1;
  return all_deterministic ? 0 : 1;
}
