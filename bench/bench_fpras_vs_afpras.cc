// Thm. 7.1 vs Thm. 8.1 ablation: on CQ(+,<)-shaped formulas both engines
// apply; the FPRAS gives a multiplicative guarantee via convex-geometry
// machinery (LP seeding + hit-and-run + annealing + Karp–Luby), the AFPRAS an
// additive one via direction sampling. This bench compares their time and
// accuracy on random cone DNFs of growing dimension, against exact ground
// truth in 2-D (arc measure) and high-precision sampling otherwise.
//
// The threads axis sweeps the FPRAS over num_threads ∈ {1, 2, 4} and checks
// the parallel-runtime contract: wall-clock drops with more workers (on
// hardware that has them) while the estimate stays bit-identical.

#include <cmath>
#include <cstdio>
#include <thread>

#include "src/measure/afpras.h"
#include "src/measure/fpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  using constraints::CmpOp;
  using constraints::RealFormula;
  using poly::Polynomial;

  std::printf("# FPRAS (Thm 7.1) vs AFPRAS (Thm 8.1) on linear cone DNFs\n");
  std::printf("# hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("# %3s %10s %12s %12s %12s %12s %12s %12s %12s %9s %4s\n", "n",
              "truth", "fpras_mu", "fpras_1t_ms", "fpras_2t_ms", "fpras_4t_ms",
              "afpras_mu", "afpras_ms", "rel_err", "speedup4", "det");
  bool all_deterministic = true;
  double sum_speedup = 0.0;
  int rows = 0;

  util::Rng formula_rng(7);
  for (int n = 2; n <= 5; ++n) {
    // A disjunction of two random cones, each cut by n halfspaces through
    // the origin (plus a positivity constraint to keep volumes moderate).
    auto random_cone = [&]() {
      std::vector<RealFormula> parts;
      for (int i = 0; i < n; ++i) {
        Polynomial p;
        for (int v = 0; v < n; ++v) {
          p = p + Polynomial::Constant(formula_rng.Uniform(-1, 1)) *
                      Polynomial::Variable(v);
        }
        parts.push_back(RealFormula::Cmp(p, CmpOp::kLe));
      }
      return RealFormula::And(std::move(parts));
    };
    std::vector<RealFormula> ors{random_cone(), random_cone()};
    RealFormula f = RealFormula::Or(std::move(ors));

    // Ground truth: exact in 2-D, very-high-precision AFPRAS otherwise.
    double truth;
    if (n == 2) {
      auto exact = measure::NuExact2D(f);
      MUDB_CHECK(exact.ok());
      truth = *exact;
    } else {
      measure::AfprasOptions ref;
      ref.num_samples = 4000000;
      util::Rng rng(42);
      auto r = measure::Afpras(f, ref, rng);
      MUDB_CHECK(r.ok());
      truth = r->estimate;
    }

    // The FPRAS across the threads axis: same seed, so every run must
    // return the identical estimate — only the wall-clock may move.
    double fpras_ms[3] = {0, 0, 0};
    double fpras_mu = 0.0;
    bool deterministic = true;
    const int thread_axis[3] = {1, 2, 4};
    for (int t = 0; t < 3; ++t) {
      measure::FprasOptions fopts;
      fopts.epsilon = 0.1;
      fopts.num_threads = thread_axis[t];
      util::Rng frng(n);
      util::WallTimer ftimer;
      auto fpras = measure::FprasConjunctive(f, fopts, frng);
      MUDB_CHECK(fpras.ok());
      fpras_ms[t] = ftimer.ElapsedMillis();
      if (t == 0) {
        fpras_mu = fpras->estimate;
      } else if (fpras->estimate != fpras_mu) {
        deterministic = false;
      }
    }
    all_deterministic = all_deterministic && deterministic;
    sum_speedup += fpras_ms[0] / fpras_ms[2];
    ++rows;

    measure::AfprasOptions aopts;
    aopts.epsilon = 0.01;
    util::Rng arng(n);
    util::WallTimer atimer;
    auto afpras = measure::Afpras(f, aopts, arng);
    MUDB_CHECK(afpras.ok());
    double afpras_ms = atimer.ElapsedMillis();

    double rel = truth > 1e-9 ? std::fabs(fpras_mu / truth - 1.0)
                              : std::fabs(fpras_mu - truth);
    std::printf(
        "  %3d %10.4f %12.4f %12.2f %12.2f %12.2f %12.4f %12.2f %12.3f "
        "%9.2f %4s\n",
        n, truth, fpras_mu, fpras_ms[0], fpras_ms[1], fpras_ms[2],
        afpras->estimate, afpras_ms, rel, fpras_ms[0] / fpras_ms[2],
        deterministic ? "ok" : "DIFF");
  }
  std::printf("# mean 4-thread speedup: %.2fx; estimates %s across thread "
              "counts\n",
              sum_speedup / rows,
              all_deterministic ? "bit-identical" : "DIVERGED");
  std::printf("# expected: both track truth; FPRAS cost grows quickly with n "
              "(annealing phases), AFPRAS stays cheap — why §9 implements "
              "the AFPRAS. With >= 4 hardware threads the 4t column should "
              "run >= 2x faster than 1t.\n");
  return all_deterministic ? 0 : 1;
}
