// Figure 1(a): "Competitive Advantage" — time vs ε (see fig1_common.h).

#include "bench/fig1_common.h"

int main(int argc, char** argv) {
  return mudb::bench::RunFig1(
      "Competitive Advantage",
      "SELECT P.seg FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25",
      argc, argv);
}
