// Proposition 6.1: the query q = ∃x,y R(x,y) && x >= 0 && y <= α·x on
// R = {(⊤, ⊤')} has μ(q, D) = arctan(α)/2π + 1/4 (rational only for
// α ∈ {0, ±1} up to the additive constant — the irrationality carrier is the
// arctan term). This bench sweeps α and reports the exact 2-D value, the
// closed form, and an AFPRAS estimate.
//
// Note: the paper states the offset as 1/2; the direct angle calculation for
// the literal formula {x >= 0, y <= αx} gives 1/4 (see EXPERIMENTS.md). The
// proposition's content — irrationality of μ for α ∉ {0, ±1} — is unchanged.

#include <cmath>
#include <cstdio>

#include "src/logic/formula.h"
#include "src/measure/measure.h"
#include "src/model/database.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  std::printf("# Proposition 6.1 — mu = arctan(alpha)/2pi + 1/4\n");
  std::printf("# %8s %12s %12s %12s %12s %10s\n", "alpha", "exact2d",
              "closed", "afpras(1e-2)", "abs_err", "time_ms");

  for (double alpha : {-5.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 5.0}) {
    model::Database db;
    MUDB_CHECK(db.CreateRelation(model::RelationSchema(
                   "R", {{"x", model::Sort::kNum}, {"y", model::Sort::kNum}}))
                   .ok());
    MUDB_CHECK(db.Insert("R", {db.MakeNumNull(), db.MakeNumNull()}).ok());

    logic::Formula f = logic::Formula::ExistsMany(
        {logic::TypedVar{"x", model::Sort::kNum},
         logic::TypedVar{"y", model::Sort::kNum}},
        logic::Formula::And([&] {
          std::vector<logic::Formula> v;
          v.push_back(logic::Formula::Rel("R", {logic::AtomArg::NumVar("x"),
                                                logic::AtomArg::NumVar("y")}));
          v.push_back(logic::Formula::Cmp(logic::Term::Var("x"),
                                          logic::CmpOp::kGe,
                                          logic::Term::Const(0)));
          v.push_back(logic::Formula::Cmp(
              logic::Term::Var("y"), logic::CmpOp::kLe,
              logic::Term::Const(alpha) * logic::Term::Var("x")));
          return v;
        }()));
    auto q = logic::Query::Make(std::move(f), db);
    MUDB_CHECK(q.ok());

    measure::MeasureOptions exact_opts;
    exact_opts.method = measure::Method::kExact2D;
    auto exact = measure::ComputeMeasure(*q, db, {}, exact_opts);
    MUDB_CHECK(exact.ok());

    double closed = std::atan(alpha) / (2 * M_PI) + 0.25;

    measure::MeasureOptions approx_opts;
    approx_opts.method = measure::Method::kAfpras;
    approx_opts.epsilon = 0.01;
    util::WallTimer timer;
    auto approx = measure::ComputeMeasure(*q, db, {}, approx_opts);
    MUDB_CHECK(approx.ok());
    std::printf("  %8.2f %12.6f %12.6f %12.6f %12.6f %10.3f\n", alpha,
                exact->value, closed, approx->value,
                std::fabs(approx->value - exact->value),
                timer.ElapsedMillis());
  }
  return 0;
}
