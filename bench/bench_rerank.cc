// Incremental re-ranking vs. cold ranking: the 64-candidate / top-8 wedge
// workload of bench_ranking, driven through a RankingSession. One session
// ranks the candidates cold, then absorbs two single-candidate mutations —
// a tail candidate far from the cut (#5) and a top-8 member (#60) — and
// re-ranks after each. Content-keyed invalidation must keep every untouched
// candidate's warm tiers, so a delta re-rank pays a small fraction of the
// cold schedule.
//
// Legs:
//   rerank_cold64 — fresh session, insert all 64: identical work (and
//                   bit-identical outcome, asserted) to RunTopK.
//   rerank_tail   — mutate non-contender #5, Rerank.
//   rerank_top    — mutate top-8 member #60, Rerank (session now carries
//                   both mutations).
//
// Hard gates before any reporting:
//   * each re-rank outcome is bit-identical to a COLD ranking of the same
//     final candidate state, on fresh services with 1 and 4 threads (the
//     rerank determinism contract, ranking_session.h);
//   * the cold session leg is bit-identical to MeasureService::RunTopK;
//   * each delta re-rank costs <= 25% of the cold leg's sampling steps
//     (the acceptance bar).
// Rows (bench_json.h schema): samples_per_sec carries hit-and-run
// steps/sec; estimate is the Σ of the top-8 measure values as a determinism
// fingerprint, except the *_steps rows (step count), the *_ratio rows
// (rerank steps / cold steps), and the *_warm rows (memo hits).
//
// Flags: --json=<path>, --quick (one round instead of three),
// --trace=<path>, --metrics=<path> (bench_obs.h).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_obs.h"
#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/ranking_service.h"
#include "src/service/ranking_session.h"
#include "src/util/timer.h"

namespace {

using namespace mudb;  // NOLINT: bench brevity

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

constexpr int kCandidates = 64;
constexpr int kTopK = 8;
constexpr double kFinalEpsilon = 0.05;
constexpr int kTailMutant = 5;   // far below the cut: ν ≈ 0.06
constexpr int kTopMutant = 60;   // solid top-8 member: ν ≈ 0.44
constexpr double kMaxDeltaRatio = 0.25;  // acceptance bar

// The planar wedge of polar angles (0, α): ν = α / (2π).
RealFormula Wedge(double alpha) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(
      C(std::cos(alpha)) * Z(1) - C(std::sin(alpha)) * Z(0), CmpOp::kLt));
  return RealFormula::And(std::move(parts));
}

double WedgeAngle(int d) {
  return 0.15 + (2.75 / (kCandidates - 1)) * d;
}

service::RankingOptions Ranking() {
  service::RankingOptions opts;
  opts.k = kTopK;
  return opts;  // default ladder 0.2 → 0.1 → 0.05 → ε, default δ budget
}

service::MeasureRequest Candidate(int d, double angle_shift = 0.0) {
  measure::MeasureOptions opts;
  opts.method = measure::Method::kFpras;
  opts.epsilon = kFinalEpsilon;
  opts.delta = 0.25;  // overridden by the tier δ split
  opts.seed = 0xC0FFEE + d;
  return service::MeasureRequest::Nu(Wedge(WedgeAngle(d) + angle_shift),
                                     opts);
}

// The workload after `stage` mutations: 0 = pristine, 1 = #5 mutated,
// 2 = #5 and #60 mutated.
std::vector<service::MeasureRequest> Workload(int stage) {
  std::vector<service::MeasureRequest> reqs;
  reqs.reserve(kCandidates);
  for (int d = 0; d < kCandidates; ++d) {
    double shift = 0.0;
    if (stage >= 1 && d == kTailMutant) shift = 0.015;
    if (stage >= 2 && d == kTopMutant) shift = 0.02;
    reqs.push_back(Candidate(d, shift));
  }
  return reqs;
}

double TopSum(const service::RerankOutcome& outcome) {
  double sum = 0.0;
  for (service::CandidateId id : outcome.top_k) {
    sum += outcome.candidates[id].result.value;
  }
  return sum;
}

// Bit-level equality of the determinism-contract fields; dies loudly on the
// first divergence.
void AssertSameRanking(const service::RerankOutcome& a,
                       const service::RerankOutcome& b, const char* what) {
  bool same = a.top_k == b.top_k && a.candidates.size() == b.candidates.size();
  for (size_t i = 0; same && i < a.candidates.size(); ++i) {
    const service::SessionCandidate& ca = a.candidates[i];
    const service::SessionCandidate& cb = b.candidates[i];
    same = ca.id == cb.id && ca.result.value == cb.result.value &&
           ca.result.ci_lo == cb.result.ci_lo &&
           ca.result.ci_hi == cb.result.ci_hi &&
           ca.result.tier == cb.result.tier && ca.pruned == cb.pruned &&
           ca.frozen == cb.frozen;
  }
  if (!same) {
    std::fprintf(stderr, "FATAL: %s diverges from its cold reference\n",
                 what);
    std::exit(1);
  }
}

// A cold ranking of `reqs` on a fresh service with `threads` workers.
service::RerankOutcome ColdRank(std::vector<service::MeasureRequest> reqs,
                                int threads) {
  service::ServiceOptions sopts;
  sopts.num_threads = threads;
  service::MeasureService svc(sopts);
  service::RankingSession session(&svc, Ranking());
  service::RankingDelta delta;
  delta.inserts = std::move(reqs);
  auto outcome = session.Rerank(std::move(delta));
  if (!outcome.ok()) {
    std::fprintf(stderr, "cold rank failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  return *outcome;
}

struct Leg {
  double wall_ms = 0.0;
  int64_t steps = 0;
  int64_t warm_hits = 0;
  double top_sum = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonFlagPath(argc, argv);
  const bench::ObsFlags obs_flags = bench::ParseObsFlags(argc, argv);
  const bool quick = bench::QuickFlag(argc, argv);
  const int rounds = quick ? 1 : 3;

  Leg cold_leg, tail_leg, top_leg;
  for (int round = 0; round < rounds; ++round) {
    service::MeasureService svc;
    service::RankingSession session(&svc, Ranking());

    util::WallTimer cold_timer;
    service::RankingDelta insert_all;
    insert_all.inserts = Workload(0);
    auto cold = session.Rerank(std::move(insert_all));
    if (!cold.ok()) {
      std::fprintf(stderr, "cold leg failed: %s\n",
                   cold.status().ToString().c_str());
      return 1;
    }
    cold_leg.wall_ms += cold_timer.ElapsedMillis();
    cold_leg.steps = cold->total_sampling_steps;
    cold_leg.top_sum = TopSum(*cold);

    util::WallTimer tail_timer;
    service::RankingDelta mutate_tail;
    mutate_tail.updates.emplace_back(kTailMutant, Candidate(kTailMutant,
                                                            0.015));
    auto tail = session.Rerank(std::move(mutate_tail));
    if (!tail.ok()) {
      std::fprintf(stderr, "tail rerank failed: %s\n",
                   tail.status().ToString().c_str());
      return 1;
    }
    tail_leg.wall_ms += tail_timer.ElapsedMillis();
    tail_leg.steps = tail->total_sampling_steps;
    tail_leg.warm_hits = tail->warm_hits;
    tail_leg.top_sum = TopSum(*tail);

    util::WallTimer top_timer;
    service::RankingDelta mutate_top;
    mutate_top.updates.emplace_back(kTopMutant, Candidate(kTopMutant, 0.02));
    auto top = session.Rerank(std::move(mutate_top));
    if (!top.ok()) {
      std::fprintf(stderr, "top rerank failed: %s\n",
                   top.status().ToString().c_str());
      return 1;
    }
    top_leg.wall_ms += top_timer.ElapsedMillis();
    top_leg.steps = top->total_sampling_steps;
    top_leg.warm_hits = top->warm_hits;
    top_leg.top_sum = TopSum(*top);

    if (round == 0) {
      // Determinism gates: every outcome must be bit-identical to a cold
      // ranking of the same final state, independent of thread count —
      // and the cold session leg must match the one-shot scheduler.
      for (int threads : {1, 4}) {
        AssertSameRanking(ColdRank(Workload(0), threads), *cold,
                          "cold session leg");
        AssertSameRanking(ColdRank(Workload(1), threads), *tail,
                          "tail rerank");
        AssertSameRanking(ColdRank(Workload(2), threads), *top,
                          "top rerank");
      }
      service::MeasureService oneshot;
      auto via_topk = oneshot.RunTopK(Workload(0), Ranking());
      if (!via_topk.ok()) {
        std::fprintf(stderr, "RunTopK reference failed: %s\n",
                     via_topk.status().ToString().c_str());
        return 1;
      }
      bool same = via_topk->top_k.size() == cold->top_k.size();
      for (size_t r = 0; same && r < cold->top_k.size(); ++r) {
        same = static_cast<size_t>(cold->top_k[r]) == via_topk->top_k[r];
      }
      for (size_t i = 0; same && i < cold->candidates.size(); ++i) {
        same = cold->candidates[i].result.value ==
               via_topk->candidates[i].result.value;
      }
      if (!same || cold->total_sampling_steps !=
                       via_topk->total_sampling_steps) {
        std::fprintf(stderr,
                     "FATAL: cold session diverges from RunTopK\n");
        return 1;
      }
    }
  }
  cold_leg.wall_ms /= rounds;
  tail_leg.wall_ms /= rounds;
  top_leg.wall_ms /= rounds;

  const double tail_ratio = static_cast<double>(tail_leg.steps) /
                            static_cast<double>(cold_leg.steps);
  const double top_ratio = static_cast<double>(top_leg.steps) /
                           static_cast<double>(cold_leg.steps);
  auto steps_per_sec = [](int64_t steps, double ms) {
    return ms > 0 ? static_cast<double>(steps) / (ms / 1e3) : 0.0;
  };

  std::printf("%-16s %12s %14s %10s %10s\n", "leg", "wall_ms", "steps",
              "warm", "top8");
  std::printf("%-16s %12.1f %14lld %10s %10.4f\n", "rerank_cold64",
              cold_leg.wall_ms, static_cast<long long>(cold_leg.steps), "-",
              cold_leg.top_sum);
  std::printf("%-16s %12.1f %14lld %10lld %10.4f\n", "rerank_tail",
              tail_leg.wall_ms, static_cast<long long>(tail_leg.steps),
              static_cast<long long>(tail_leg.warm_hits), tail_leg.top_sum);
  std::printf("%-16s %12.1f %14lld %10lld %10.4f\n", "rerank_top",
              top_leg.wall_ms, static_cast<long long>(top_leg.steps),
              static_cast<long long>(top_leg.warm_hits), top_leg.top_sum);
  std::printf("delta / cold sampling steps: tail %.4f, top %.4f "
              "(bar: <= %.2f)\n",
              tail_ratio, top_ratio, kMaxDeltaRatio);

  if (tail_ratio > kMaxDeltaRatio || top_ratio > kMaxDeltaRatio) {
    std::fprintf(stderr,
                 "FATAL: a delta rerank spent more than %.0f%% of the cold "
                 "schedule (tail %.4f, top %.4f)\n",
                 kMaxDeltaRatio * 100, tail_ratio, top_ratio);
    return 1;
  }

  bench::BenchJson json("rerank");
  json.Add({"rerank_cold64", 1, cold_leg.wall_ms,
            steps_per_sec(cold_leg.steps, cold_leg.wall_ms),
            cold_leg.top_sum});
  json.Add({"rerank_tail", 1, tail_leg.wall_ms,
            steps_per_sec(tail_leg.steps, tail_leg.wall_ms),
            tail_leg.top_sum});
  json.Add({"rerank_top", 1, top_leg.wall_ms,
            steps_per_sec(top_leg.steps, top_leg.wall_ms), top_leg.top_sum});
  json.Add({"rerank_cold64_steps", 1, cold_leg.wall_ms, 0.0,
            static_cast<double>(cold_leg.steps)});
  json.Add({"rerank_tail_steps", 1, tail_leg.wall_ms, 0.0,
            static_cast<double>(tail_leg.steps)});
  json.Add({"rerank_top_steps", 1, top_leg.wall_ms, 0.0,
            static_cast<double>(top_leg.steps)});
  json.Add({"rerank_tail_ratio", 1, 0.0, 0.0, tail_ratio});
  json.Add({"rerank_top_ratio", 1, 0.0, 0.0, top_ratio});
  json.Add({"rerank_tail_warm", 1, 0.0, 0.0,
            static_cast<double>(tail_leg.warm_hits)});
  json.Add({"rerank_top_warm", 1, 0.0, 0.0,
            static_cast<double>(top_leg.warm_hits)});
  if (!json.WriteTo(json_path)) return 1;
  if (!bench::WriteObsOutputs(obs_flags)) return 1;
  return 0;
}
