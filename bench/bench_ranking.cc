// Adaptive-precision top-k ranking vs. fixed-precision full-batch ranking:
// the 64-candidate / top-8 certainty-ranking workload of the ROADMAP's
// "compare candidate answers" scenario. Candidates are planar wedge cones
// with a linear spread of ground-truth certainty (ν = α/2π ∈ ~0.02 … 0.46),
// method kFpras, so pruning has real tails to cut.
//
// Legs, interleaved A/B per round (BUILDING.md, "Profiling & benchmarks"):
//   ranking_fixed64    — all 64 candidates straight at the final ε through
//                        a fresh MeasureService batch, top-8 by estimate:
//                        what ranking cost before the ε-ladder existed.
//   ranking_adaptive64 — MeasureService::RunTopK on a fresh service: the
//                        ε-ladder refines survivors only.
//
// Both legs run the final tier at the identical (ε, δ) requests, so the
// bench asserts the two top-8 *sets* are identical (and the survivors'
// estimates bit-equal) before reporting; it then requires the adaptive
// schedule to spend at most half the sampling steps (the acceptance bar).
// Rows (bench_json.h schema): samples_per_sec carries hit-and-run
// steps/sec; estimate is the Σ of the top-8 measure values (a determinism
// fingerprint), except the *_steps rows, where it is the step count, and
// the tier rows, where it is that tier's request count.
//
// Flags: --json=<path>, --quick (one round instead of three),
// --trace=<path>, --metrics=<path> (bench_obs.h).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_obs.h"
#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/ranking_service.h"
#include "src/util/timer.h"

namespace {

using namespace mudb;  // NOLINT: bench brevity

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

constexpr int kCandidates = 64;
constexpr int kTopK = 8;
constexpr double kFinalEpsilon = 0.05;

// The planar wedge of polar angles (0, α): ν = α / (2π).
RealFormula Wedge(double alpha) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(
      C(std::cos(alpha)) * Z(1) - C(std::sin(alpha)) * Z(0), CmpOp::kLt));
  return RealFormula::And(std::move(parts));
}

double WedgeAngle(int d) {
  return 0.15 + (2.75 / (kCandidates - 1)) * d;
}

service::RankingOptions Ranking() {
  service::RankingOptions opts;
  opts.k = kTopK;
  return opts;  // default ladder 0.2 → 0.1 → 0.05 → ε, default δ budget
}

std::vector<service::MeasureRequest> MakeCandidates(double delta) {
  std::vector<service::MeasureRequest> reqs;
  reqs.reserve(kCandidates);
  for (int d = 0; d < kCandidates; ++d) {
    measure::MeasureOptions opts;
    opts.method = measure::Method::kFpras;
    opts.epsilon = kFinalEpsilon;
    opts.delta = delta;
    opts.seed = 0xC0FFEE + d;
    reqs.push_back(service::MeasureRequest::Nu(Wedge(WedgeAngle(d)), opts));
  }
  return reqs;
}

struct LegResult {
  double wall_ms = 0.0;
  int64_t steps = 0;
  std::vector<size_t> top_k;           // most certain first
  std::vector<double> top_estimates;   // aligned with top_k
  std::vector<int64_t> tier_requests;  // adaptive leg only
  std::vector<double> tier_wall_ms;
  std::vector<int64_t> tier_steps;
};

LegResult RunFixed() {
  // The same per-estimate δ the ladder's final tier uses, so the two legs'
  // final evaluations are bit-identical requests.
  const double tier_delta = service::RankingTierDelta(Ranking(), kCandidates);
  service::MeasureService svc;
  auto outcome = svc.RunBatch(MakeCandidates(tier_delta));
  LegResult leg;
  leg.wall_ms = outcome.stats.wall_ms;
  leg.steps = outcome.stats.sampling_steps;
  std::vector<double> value(kCandidates);
  for (int i = 0; i < kCandidates; ++i) {
    if (!outcome.results[i].ok()) {
      std::fprintf(stderr, "fixed leg request %d failed: %s\n", i,
                   outcome.results[i].status().ToString().c_str());
      std::exit(1);
    }
    value[i] = outcome.results[i]->value;
  }
  std::vector<size_t> order(kCandidates);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (value[a] != value[b]) return value[a] > value[b];
    return a < b;
  });
  order.resize(kTopK);
  leg.top_k = order;
  for (size_t i : order) leg.top_estimates.push_back(value[i]);
  return leg;
}

LegResult RunAdaptive() {
  service::MeasureService svc;
  util::WallTimer timer;
  auto outcome = svc.RunTopK(MakeCandidates(/*delta=*/0.25), Ranking());
  if (!outcome.ok()) {
    std::fprintf(stderr, "adaptive leg failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  LegResult leg;
  leg.wall_ms = timer.ElapsedMillis();
  leg.steps = outcome->total_sampling_steps;
  leg.top_k = outcome->top_k;
  for (size_t i : leg.top_k) {
    leg.top_estimates.push_back(outcome->candidates[i].result.value);
  }
  for (const service::BatchStats& stats : outcome->tier_stats) {
    leg.tier_requests.push_back(stats.requests);
    leg.tier_wall_ms.push_back(stats.wall_ms);
    leg.tier_steps.push_back(stats.sampling_steps);
  }
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonFlagPath(argc, argv);
  const bench::ObsFlags obs_flags = bench::ParseObsFlags(argc, argv);
  const bool quick = bench::QuickFlag(argc, argv);
  const int rounds = quick ? 1 : 3;

  // Interleaved A/B rounds: host timing noise hits both legs equally.
  double fixed_ms = 0.0, adaptive_ms = 0.0;
  int64_t fixed_steps = 0, adaptive_steps = 0;
  double fixed_sum = 0.0, adaptive_sum = 0.0;
  LegResult adaptive_last;
  for (int round = 0; round < rounds; ++round) {
    LegResult fixed = RunFixed();
    LegResult adaptive = RunAdaptive();

    // Hard determinism gate before any reporting: identical top-8 set, and
    // bit-identical final estimates on it.
    std::vector<size_t> fixed_set = fixed.top_k;
    std::vector<size_t> adaptive_set = adaptive.top_k;
    std::sort(fixed_set.begin(), fixed_set.end());
    std::sort(adaptive_set.begin(), adaptive_set.end());
    if (fixed_set != adaptive_set) {
      std::fprintf(stderr,
                   "FATAL: adaptive top-%d set diverges from fixed-precision "
                   "ranking\n",
                   kTopK);
      return 1;
    }
    for (int r = 0; r < kTopK; ++r) {
      if (fixed.top_k[r] != adaptive.top_k[r] ||
          fixed.top_estimates[r] != adaptive.top_estimates[r]) {
        std::fprintf(stderr,
                     "FATAL: rank %d diverges (fixed #%zu %.17g, adaptive "
                     "#%zu %.17g)\n",
                     r, fixed.top_k[r], fixed.top_estimates[r],
                     adaptive.top_k[r], adaptive.top_estimates[r]);
        return 1;
      }
    }

    fixed_ms += fixed.wall_ms;
    adaptive_ms += adaptive.wall_ms;
    fixed_steps += fixed.steps;
    adaptive_steps += adaptive.steps;
    fixed_sum = 0.0;
    adaptive_sum = 0.0;
    for (double v : fixed.top_estimates) fixed_sum += v;
    for (double v : adaptive.top_estimates) adaptive_sum += v;
    adaptive_last = adaptive;
  }
  fixed_ms /= rounds;
  adaptive_ms /= rounds;
  fixed_steps /= rounds;
  adaptive_steps /= rounds;

  const double step_ratio =
      static_cast<double>(fixed_steps) / static_cast<double>(adaptive_steps);
  auto steps_per_sec = [](int64_t steps, double ms) {
    return ms > 0 ? static_cast<double>(steps) / (ms / 1e3) : 0.0;
  };

  std::printf("%-22s %12s %14s %10s\n", "leg", "wall_ms", "steps", "top8");
  std::printf("%-22s %12.1f %14lld %10.4f\n", "ranking_fixed64", fixed_ms,
              static_cast<long long>(fixed_steps), fixed_sum);
  std::printf("%-22s %12.1f %14lld %10.4f\n", "ranking_adaptive64",
              adaptive_ms, static_cast<long long>(adaptive_steps),
              adaptive_sum);
  for (size_t t = 0; t < adaptive_last.tier_requests.size(); ++t) {
    std::printf("  tier %zu: %3lld requests, %10lld steps, %8.1f ms\n", t,
                static_cast<long long>(adaptive_last.tier_requests[t]),
                static_cast<long long>(adaptive_last.tier_steps[t]),
                adaptive_last.tier_wall_ms[t]);
  }
  std::printf("sampling-step reduction: %.2fx (wall %.2fx)\n", step_ratio,
              fixed_ms / adaptive_ms);

  if (step_ratio < 2.0) {
    std::fprintf(stderr,
                 "FATAL: adaptive ranking saved only %.2fx sampling steps "
                 "(acceptance bar: >= 2x)\n",
                 step_ratio);
    return 1;
  }

  bench::BenchJson json("ranking");
  json.Add({"ranking_fixed64", 1, fixed_ms,
            steps_per_sec(fixed_steps, fixed_ms), fixed_sum});
  json.Add({"ranking_adaptive64", 1, adaptive_ms,
            steps_per_sec(adaptive_steps, adaptive_ms), adaptive_sum});
  json.Add({"ranking_fixed64_steps", 1, fixed_ms, 0.0,
            static_cast<double>(fixed_steps)});
  json.Add({"ranking_adaptive64_steps", 1, adaptive_ms, 0.0,
            static_cast<double>(adaptive_steps)});
  json.Add({"ranking_steps_ratio", 1, 0.0, 0.0, step_ratio});
  for (size_t t = 0; t < adaptive_last.tier_requests.size(); ++t) {
    json.Add({"ranking_tier" + std::to_string(t), 1,
              adaptive_last.tier_wall_ms[t],
              steps_per_sec(adaptive_last.tier_steps[t],
                            adaptive_last.tier_wall_ms[t]),
              static_cast<double>(adaptive_last.tier_requests[t])});
  }
  if (!json.WriteTo(json_path)) return 1;
  if (!bench::WriteObsOutputs(obs_flags)) return 1;
  return 0;
}
