// Minimal JSON emitter for the bench binaries' --json=<path> flag, plus the
// flag parsing itself. No third-party deps; the schema is deliberately tiny
// and stable so checked-in BENCH_*.json baselines and CI artifacts stay
// comparable across PRs (see BUILDING.md, "Profiling & benchmarks").
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<bench binary name>",
//     "results": [
//       {
//         "workload": "<workload id, stable across runs>",
//         "threads": <int>,
//         "wall_ms": <number>,
//         "samples_per_sec": <number>,   // hit-and-run steps/s for the
//                                        // sampling benches, estimator
//                                        // samples/s otherwise
//         "estimate": <number>           // the value computed, as a
//                                        // determinism fingerprint
//       }, ...
//     ]
//   }

#ifndef MUDB_BENCH_BENCH_JSON_H_
#define MUDB_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace mudb::bench {

struct BenchResult {
  std::string workload;
  int threads = 1;
  double wall_ms = 0.0;
  double samples_per_sec = 0.0;
  double estimate = 0.0;
};

/// Returns the path given via --json=<path>, or "" when the flag is absent.
inline std::string JsonFlagPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "";
}

/// True when --quick was passed (CI-sized workloads).
inline bool QuickFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(BenchResult result) { results_.push_back(std::move(result)); }

  /// Writes the document; returns false (with a note on stderr) on IO
  /// failure. No-op and true when `path` is empty.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"bench\": \"%s\",\n",
                 bench_name_.c_str());
    std::fprintf(f, "  \"results\": [");
    for (size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      std::fprintf(f,
                   "%s\n    {\"workload\": \"%s\", \"threads\": %d, "
                   "\"wall_ms\": %s, \"samples_per_sec\": %s, "
                   "\"estimate\": %s}",
                   i == 0 ? "" : ",", r.workload.c_str(), r.threads,
                   Num(r.wall_ms, 9).c_str(),
                   Num(r.samples_per_sec, 9).c_str(),
                   // 17 significant digits round-trip a double exactly: the
                   // fingerprint must expose last-bit nondeterminism.
                   Num(r.estimate, 17).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    bool ok = std::fclose(f) == 0;
    if (!ok) {
      std::fprintf(stderr, "bench_json: write to %s failed\n", path.c_str());
    }
    return ok;
  }

 private:
  // JSON has no inf/nan literals; a degenerate measurement becomes 0.
  static std::string Num(double v, int digits) {
    if (!std::isfinite(v)) return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
    return buf;
  }

  std::string bench_name_;
  std::vector<BenchResult> results_;
};

}  // namespace mudb::bench

#endif  // MUDB_BENCH_BENCH_JSON_H_
