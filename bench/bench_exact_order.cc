// Proposition 6.2: for FO(<) the measure is always rational, but computing
// it exactly is FP^{#P}-hard. Our exact order engine enumerates (k+1)!
// signed interleavings — exponential in the number of nulls k — while the
// AFPRAS stays flat in k at fixed ε. This bench makes the contrast concrete
// and doubles as an accuracy check (|afpras − exact| per instance).

#include <cmath>
#include <cstdio>

#include "src/measure/afpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  using constraints::CmpOp;
  using constraints::RealFormula;
  using poly::Polynomial;

  std::printf("# Prop 6.2 — exact rational FO(<) vs AFPRAS, random order "
              "formulas\n");
  std::printf("# %4s %14s %14s %12s %12s\n", "k", "exact_ms", "afpras_ms",
              "max_abs_err", "example_mu");

  util::Rng formula_rng(2024);
  for (int k = 2; k <= 8; ++k) {
    double exact_ms = 0, afpras_ms = 0, max_err = 0, example = 0;
    const int instances = 5;
    for (int inst = 0; inst < instances; ++inst) {
      // Random conjunction/disjunction of sign and order atoms on k vars.
      std::vector<RealFormula> parts;
      for (int i = 0; i < k + 1; ++i) {
        int a = static_cast<int>(formula_rng.UniformInt(0, k - 1));
        int b = static_cast<int>(formula_rng.UniformInt(0, k - 1));
        RealFormula atom =
            (a == b)
                ? RealFormula::Cmp(Polynomial::Variable(a), CmpOp::kGt)
                : RealFormula::Cmp(
                      Polynomial::Variable(a) - Polynomial::Variable(b),
                      CmpOp::kLt);
        if (formula_rng.Bernoulli(0.3)) atom = RealFormula::Not(atom);
        parts.push_back(std::move(atom));
      }
      RealFormula f = formula_rng.Bernoulli(0.5)
                          ? RealFormula::And(parts)
                          : RealFormula::Or(parts);
      if (f.is_constant()) continue;

      util::WallTimer exact_timer;
      auto exact = measure::NuExactOrder(f, /*max_vars=*/10);
      MUDB_CHECK(exact.ok());
      exact_ms += exact_timer.ElapsedMillis();

      measure::AfprasOptions opts;
      opts.epsilon = 0.02;
      opts.delta = 0.05;
      util::Rng rng(k * 100 + inst);
      util::WallTimer afpras_timer;
      auto approx = measure::Afpras(f, opts, rng);
      MUDB_CHECK(approx.ok());
      afpras_ms += afpras_timer.ElapsedMillis();
      max_err = std::max(max_err,
                         std::fabs(approx->estimate - exact->ToDouble()));
      example = exact->ToDouble();
    }
    std::printf("  %4d %14.3f %14.3f %12.4f %12.4f\n", k,
                exact_ms / instances, afpras_ms / instances, max_err,
                example);
  }
  std::printf("# expected shape: exact_ms grows ~(k+1)!, afpras_ms flat.\n");
  return 0;
}
