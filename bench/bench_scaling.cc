// Scaling study extending Figure 1 along two axes the paper discusses:
//   (a) database size (candidate enumeration + confidence time),
//   (b) the §9 partial-sampling optimization (restrict sampling to nulls
//       occurring in a candidate's constraints) — on vs off.

#include <cstdio>

#include "src/datagen/datagen.h"
#include "src/engine/eval.h"
#include "src/measure/measure.h"
#include "src/sql/parser.h"
#include "src/util/timer.h"

int main() {
  using namespace mudb;  // NOLINT: bench brevity
  const char* sql =
      "SELECT P.seg FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25";

  std::printf("# Scaling: Competitive Advantage, eps = 0.02\n");
  std::printf("# %9s %9s %10s %12s %16s %16s\n", "products", "tuples",
              "nulls", "join_ms", "mc_restrict_ms", "mc_full_ms");
  for (int64_t products : {10000, 20000, 40000, 80000}) {
    datagen::SalesConfig config;
    config.num_products = products;
    config.num_orders = products * 3 / 5;
    config.num_segments = 400;
    config.null_rate = 0.08;
    auto db = datagen::MakeSalesDatabase(config);
    MUDB_CHECK(db.ok());
    auto cq = sql::ParseSqlQuery(sql, *db);
    MUDB_CHECK(cq.ok());

    util::WallTimer join_timer;
    auto result = engine::EvaluateCq(*db, *cq);
    MUDB_CHECK(result.ok());
    double join_ms = join_timer.ElapsedMillis();

    double restricted_ms = 0, full_ms = 0;
    for (bool restrict_vars : {true, false}) {
      measure::MeasureOptions opts;
      opts.method = measure::Method::kAfpras;
      opts.epsilon = 0.02;
      opts.restrict_to_used_vars = restrict_vars;
      util::WallTimer timer;
      for (const engine::Candidate& c : result->candidates) {
        auto mu = measure::ComputeNu(c.constraint, opts);
        MUDB_CHECK(mu.ok());
      }
      (restrict_vars ? restricted_ms : full_ms) = timer.ElapsedMillis();
    }
    std::printf("  %9lld %9zu %10zu %12.2f %16.2f %16.2f\n",
                static_cast<long long>(products), db->TotalTuples(),
                db->CollectNumNullIds().size(), join_ms, restricted_ms,
                full_ms);
  }
  std::printf(
      "# expected: join_ms linear in size; mc_full_ms grows with the total\n"
      "# null count while mc_restrict_ms stays flat — the paper's §9\n"
      "# optimization ('saves a considerable amount of calls to the sampling\n"
      "# routine').\n");
  return 0;
}
