// Scaling study extending Figure 1 along three axes the paper discusses:
//   (a) database size (candidate enumeration + confidence time),
//   (b) the §9 partial-sampling optimization (restrict sampling to nulls
//       occurring in a candidate's constraints) — on vs off,
//   (c) worker threads for the sampling loops (the parallel runtime of
//       util/thread_pool.h) — per-candidate estimates are bit-identical
//       across thread counts, only the wall-clock moves.
//
// Flags:
//   --json=<path>  emit the schema documented in bench_json.h (one row per
//                  database size × sampling leg).
//   --quick        CI-sized run (smaller databases).

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/datagen/datagen.h"
#include "src/engine/eval.h"
#include "src/measure/measure.h"
#include "src/sql/parser.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace mudb;  // NOLINT: bench brevity
  const char* sql =
      "SELECT P.seg FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25";

  const std::string json_path = bench::JsonFlagPath(argc, argv);
  const bool quick = bench::QuickFlag(argc, argv);
  bench::BenchJson json("scaling");

  std::printf("# Scaling: Competitive Advantage, eps = 0.02\n");
  std::printf("# hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("# %9s %9s %10s %12s %16s %16s %16s\n", "products", "tuples",
              "nulls", "join_ms", "mc_restrict_ms", "mc_full_ms", "mc_4t_ms");
  std::vector<int64_t> sizes{10000, 20000, 40000, 80000};
  if (quick) sizes = {10000, 20000};
  for (int64_t products : sizes) {
    datagen::SalesConfig config;
    config.num_products = products;
    config.num_orders = products * 3 / 5;
    config.num_segments = 400;
    config.null_rate = 0.08;
    auto db = datagen::MakeSalesDatabase(config);
    MUDB_CHECK(db.ok());
    auto cq = sql::ParseSqlQuery(sql, *db);
    MUDB_CHECK(cq.ok());

    util::WallTimer join_timer;
    auto result = engine::EvaluateCq(*db, *cq);
    MUDB_CHECK(result.ok());
    double join_ms = join_timer.ElapsedMillis();

    // (b) restrict on/off at 1 thread, (c) restrict on at 4 threads.
    struct Leg {
      const char* name;
      bool restrict_vars;
      int num_threads;
      double ms;
    } legs[] = {{"restrict", true, 1, 0},
                {"full", false, 1, 0},
                {"restrict_4t", true, 4, 0}};
    for (Leg& leg : legs) {
      measure::MeasureOptions opts;
      opts.method = measure::Method::kAfpras;
      opts.epsilon = 0.02;
      opts.restrict_to_used_vars = leg.restrict_vars;
      opts.num_threads = leg.num_threads;
      // One long-lived pool across the candidate loop: per-candidate sample
      // budgets are small, so per-call worker spawn would eat the speedup.
      std::optional<util::ThreadPool> pool;
      if (leg.num_threads > 1) {
        pool.emplace(leg.num_threads);
        opts.pool = &*pool;
      }
      util::WallTimer timer;
      int64_t samples = 0;
      double mu_sum = 0.0;
      for (const engine::Candidate& c : result->candidates) {
        auto mu = measure::ComputeNu(c.constraint, opts);
        MUDB_CHECK(mu.ok());
        samples += mu->samples;
        mu_sum += mu->value;
      }
      leg.ms = timer.ElapsedMillis();
      bench::BenchResult row;
      row.workload = "sales_products" + std::to_string(products) + "_" +
                     leg.name;
      row.threads = leg.num_threads;
      row.wall_ms = leg.ms;
      row.samples_per_sec = static_cast<double>(samples) / (leg.ms / 1e3);
      // Sum of per-candidate μ values: a determinism fingerprint for the
      // whole candidate loop.
      row.estimate = mu_sum;
      json.Add(row);
    }
    std::printf("  %9lld %9zu %10zu %12.2f %16.2f %16.2f %16.2f\n",
                static_cast<long long>(products), db->TotalTuples(),
                db->CollectNumNullIds().size(), join_ms, legs[0].ms,
                legs[1].ms, legs[2].ms);
  }
  std::printf(
      "# expected: join_ms linear in size; mc_full_ms grows with the total\n"
      "# null count while mc_restrict_ms stays flat — the paper's §9\n"
      "# optimization ('saves a considerable amount of calls to the sampling\n"
      "# routine'). mc_4t_ms tracks mc_restrict_ms divided by the worker\n"
      "# count once per-candidate sample counts amortize the pool.\n");
  return json.WriteTo(json_path) ? 0 : 1;
}
