// Tests for the SQL front-end.

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"
#include "src/engine/eval.h"
#include "src/sql/parser.h"
#include "src/util/rng.h"

namespace mudb::sql {
namespace {

using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Value;

Database SalesSchemaDb() {
  Database db;
  MUDB_CHECK(db.CreateRelation(RelationSchema(
                   "Products", {{"id", Sort::kBase},
                                {"seg", Sort::kBase},
                                {"rrp", Sort::kNum},
                                {"dis", Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.CreateRelation(RelationSchema(
                   "Orders", {{"id", Sort::kBase},
                              {"pr", Sort::kBase},
                              {"q", Sort::kNum},
                              {"dis", Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.CreateRelation(RelationSchema(
                   "Market", {{"seg", Sort::kBase},
                              {"rrp", Sort::kNum},
                              {"dis", Sort::kNum}}))
                 .ok());
  return db;
}

TEST(SqlParserTest, CompetitiveAdvantageQuery) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT P.seg FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25",
      db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->atoms.size(), 2u);
  EXPECT_EQ(cq->base_equalities.size(), 1u);
  EXPECT_EQ(cq->comparisons.size(), 1u);
  ASSERT_TRUE(cq->limit.has_value());
  EXPECT_EQ(*cq->limit, 25u);
  ASSERT_EQ(cq->output.size(), 1u);
  EXPECT_EQ(cq->output[0].name, "P.seg");
  EXPECT_EQ(cq->output[0].sort, Sort::kBase);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "select P.id from Products P where P.rrp < 10 limit 5", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->comparisons.size(), 1u);
}

TEST(SqlParserTest, BareColumnResolvedUnambiguously) {
  Database db = SalesSchemaDb();
  // "q" exists only in Orders.
  auto cq = ParseSqlQuery("SELECT q FROM Orders WHERE q > 3", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->output[0].name, "Orders.q");
}

TEST(SqlParserTest, TrailingGarbageInNumberLiteralRejected) {
  Database db = SalesSchemaDb();
  // "1.2.3" must not silently evaluate as 1.2.
  auto cq = ParseSqlQuery("SELECT q FROM Orders WHERE q < 1.2.3", db);
  EXPECT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(cq.status().message().find("1.2.3"), std::string::npos)
      << cq.status();

  auto dots = ParseSqlQuery("SELECT q FROM Orders WHERE q < 1..2", db);
  EXPECT_FALSE(dots.ok());
  EXPECT_EQ(dots.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SqlParserTest, ScientificNotationLiterals) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT q FROM Orders WHERE q < 1e-3 AND q > 2.5E+4 AND q <> 3e2",
      db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  ASSERT_EQ(cq->comparisons.size(), 3u);
  using logic::Term;
  ASSERT_EQ(cq->comparisons[0].rhs.kind(), Term::Kind::kConst);
  EXPECT_DOUBLE_EQ(cq->comparisons[0].rhs.const_value(), 1e-3);
  ASSERT_EQ(cq->comparisons[1].rhs.kind(), Term::Kind::kConst);
  EXPECT_DOUBLE_EQ(cq->comparisons[1].rhs.const_value(), 2.5e4);
  ASSERT_EQ(cq->comparisons[2].rhs.kind(), Term::Kind::kConst);
  EXPECT_DOUBLE_EQ(cq->comparisons[2].rhs.const_value(), 300.0);
}

TEST(SqlParserTest, ExponentWithoutDigitsIsNotConsumed) {
  Database db = SalesSchemaDb();
  // "2e" lexes as the number 2 followed by the identifier e — a parse
  // error downstream, never a silently mangled literal.
  auto cq = ParseSqlQuery("SELECT q FROM Orders WHERE q < 2e", db);
  EXPECT_FALSE(cq.ok());
  // An alias named like an exponent head keeps working.
  auto ok = ParseSqlQuery("SELECT e.q FROM Orders e WHERE e.q < 1e1", db);
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->comparisons.size(), 1u);
  EXPECT_DOUBLE_EQ(ok->comparisons[0].rhs.const_value(), 10.0);
}

TEST(SqlParserTest, OverflowingNumberLiteralRejected) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery("SELECT q FROM Orders WHERE q < 1e999", db);
  EXPECT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(cq.status().message().find("1e999"), std::string::npos)
      << cq.status();
}

TEST(SqlParserTest, AmbiguousBareColumnRejected) {
  Database db = SalesSchemaDb();
  // "dis" is in Products, Orders and Market.
  auto cq = ParseSqlQuery("SELECT dis FROM Products, Orders", db);
  EXPECT_FALSE(cq.ok());
  EXPECT_NE(cq.status().message().find("ambiguous"), std::string::npos);
}

TEST(SqlParserTest, ArithmeticPrecedence) {
  Database db = SalesSchemaDb();
  // rrp + dis * 2 must parse as rrp + (dis * 2).
  auto cq = ParseSqlQuery(
      "SELECT P.id FROM Products P WHERE P.rrp + P.dis * 2 < 10", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  const logic::Term& lhs = cq->comparisons[0].lhs;
  EXPECT_EQ(lhs.kind(), logic::Term::Kind::kAdd);
  EXPECT_EQ(lhs.children()[1].kind(), logic::Term::Kind::kMul);
}

TEST(SqlParserTest, ParenthesesAndUnaryMinus) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT P.id FROM Products P WHERE (P.rrp + P.dis) * -2 < 10", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->comparisons[0].lhs.kind(), logic::Term::Kind::kMul);
}

TEST(SqlParserTest, DivisionByLiteralFolded) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT O.id FROM Orders O WHERE O.dis / 2 < 1", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  // dis / 2 becomes dis * 0.5.
  EXPECT_EQ(cq->comparisons[0].lhs.kind(), logic::Term::Kind::kMul);
}

TEST(SqlParserTest, DivisionByColumnRejectedWithGuidance) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT O.id FROM Orders O WHERE O.dis / O.q < 1", db);
  EXPECT_FALSE(cq.ok());
  EXPECT_NE(cq.status().message().find("multiply"), std::string::npos);
}

TEST(SqlParserTest, StringLiteralBaseEquality) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT P.id FROM Products P WHERE P.seg = 'seg7'", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  ASSERT_EQ(cq->base_equalities.size(), 1u);
  EXPECT_FALSE(cq->base_equalities[0].rhs.is_var());
  EXPECT_EQ(cq->base_equalities[0].rhs.text(), "seg7");
}

TEST(SqlParserTest, MixedSortComparisonRejected) {
  Database db = SalesSchemaDb();
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.id FROM Products P WHERE P.seg < P.rrp", db)
          .ok());
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.id FROM Products P WHERE P.seg + 1 < 2", db)
          .ok());
}

TEST(SqlParserTest, BaseInequalityRejected) {
  Database db = SalesSchemaDb();
  auto cq = ParseSqlQuery(
      "SELECT P.id FROM Products P, Market M WHERE P.seg <> M.seg", db);
  EXPECT_FALSE(cq.ok());
}

TEST(SqlParserTest, ErrorsCarryContext) {
  Database db = SalesSchemaDb();
  EXPECT_FALSE(ParseSqlQuery("", db).ok());
  EXPECT_FALSE(ParseSqlQuery("SELECT FROM Products", db).ok());
  EXPECT_FALSE(ParseSqlQuery("SELECT P.id Products P", db).ok());
  EXPECT_FALSE(ParseSqlQuery("SELECT P.id FROM Nope P", db).ok());
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.nope FROM Products P", db).ok());
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.id FROM Products P WHERE", db).ok());
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.id FROM Products P LIMIT x", db).ok());
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.id FROM Products P trailing", db).ok());
  EXPECT_FALSE(ParseSqlQuery(
                   "SELECT P.id FROM Products P WHERE P.rrp < 'abc", db)
                   .ok());  // unterminated string
}

TEST(SqlParserTest, DuplicateAliasRejected) {
  Database db = SalesSchemaDb();
  EXPECT_FALSE(
      ParseSqlQuery("SELECT P.id FROM Products P, Market P", db).ok());
}

TEST(SqlUnionTest, ParsesTwoBranches) {
  Database db = SalesSchemaDb();
  auto uq = ParseSqlUnionQuery(
      "SELECT P.id FROM Products P WHERE P.rrp < 10 "
      "UNION SELECT O.pr FROM Orders O WHERE O.q > 5 LIMIT 7",
      db);
  ASSERT_TRUE(uq.ok()) << uq.status();
  ASSERT_EQ(uq->branches.size(), 2u);
  ASSERT_TRUE(uq->limit.has_value());
  EXPECT_EQ(*uq->limit, 7u);
  EXPECT_FALSE(uq->branches[0].limit.has_value());
  EXPECT_FALSE(uq->branches[1].limit.has_value());
}

TEST(SqlUnionTest, SingleBranchAccepted) {
  Database db = SalesSchemaDb();
  auto uq = ParseSqlUnionQuery(
      "SELECT P.id FROM Products P WHERE P.rrp < 10", db);
  ASSERT_TRUE(uq.ok()) << uq.status();
  EXPECT_EQ(uq->branches.size(), 1u);
  EXPECT_FALSE(uq->limit.has_value());
}

TEST(SqlUnionTest, RejectsLimitBeforeUnion) {
  Database db = SalesSchemaDb();
  auto uq = ParseSqlUnionQuery(
      "SELECT P.id FROM Products P LIMIT 3 "
      "UNION SELECT O.pr FROM Orders O",
      db);
  EXPECT_FALSE(uq.ok());
  EXPECT_NE(uq.status().message().find("final UNION branch"),
            std::string::npos);
}

TEST(SqlUnionTest, RejectsMismatchedBranches) {
  Database db = SalesSchemaDb();
  // Different arities.
  EXPECT_FALSE(ParseSqlUnionQuery(
                   "SELECT P.id FROM Products P "
                   "UNION SELECT O.pr, O.q FROM Orders O",
                   db)
                   .ok());
  // Different sorts at the same position.
  EXPECT_FALSE(ParseSqlUnionQuery(
                   "SELECT P.id FROM Products P "
                   "UNION SELECT O.q FROM Orders O",
                   db)
                   .ok());
  // Broken second branch.
  EXPECT_FALSE(ParseSqlUnionQuery(
                   "SELECT P.id FROM Products P UNION SELECT", db)
                   .ok());
}

TEST(SqlParserTest, ParsedQueryExecutes) {
  Database db = SalesSchemaDb();
  ASSERT_TRUE(db.Insert("Products",
                        {Value::BaseConst("p1"), Value::BaseConst("s1"),
                         Value::NumConst(10), Value::NumConst(0.8)})
                  .ok());
  ASSERT_TRUE(db.Insert("Market", {Value::BaseConst("s1"),
                                   Value::NumConst(20), Value::NumConst(0.9)})
                  .ok());
  auto cq = ParseSqlQuery(
      "SELECT P.seg FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis",
      db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  auto result = engine::EvaluateCq(db, *cq);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_TRUE(result->candidates[0].certain);  // 8 <= 18, no nulls involved
}

// Robustness: mutated inputs must produce a Status, never a crash, and
// accepted queries must still validate against the schema.
class SqlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlFuzzTest, MutatedQueriesNeverCrash) {
  Database db = SalesSchemaDb();
  const std::string base =
      "SELECT P.seg FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25";
  util::Rng rng(GetParam());
  const std::string alphabet = "abPOM.,*<>=()'+-/0123456789 ";
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.UniformInt(1, 6));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // replace
          mutated[pos] = alphabet[rng.UniformInt(
              0, static_cast<int64_t>(alphabet.size()) - 1)];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // insert
          mutated.insert(pos, 1,
                         alphabet[rng.UniformInt(
                             0, static_cast<int64_t>(alphabet.size()) - 1)]);
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto cq = ParseSqlQuery(mutated, db);
    if (cq.ok()) {
      EXPECT_TRUE(cq->Validate(db).ok()) << mutated;
    }
    auto uq = ParseSqlUnionQuery(mutated, db);
    if (uq.ok()) {
      EXPECT_TRUE(uq->Validate(db).ok()) << mutated;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mudb::sql
