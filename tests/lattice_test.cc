// Tests for the §10 integer lattice measure (Gauss-circle convergence).

#include <cmath>

#include <gtest/gtest.h>

#include "src/measure/lattice.h"
#include "src/measure/nu_exact.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

TEST(LatticeTest, ValidatesInput) {
  RealFormula f = RealFormula::Cmp(Z(0), CmpOp::kLt);
  EXPECT_FALSE(NuLatticeRatio(f, 0).ok());
  std::vector<RealFormula> parts;
  for (int i = 0; i < 4; ++i) {
    parts.push_back(RealFormula::Cmp(Z(i), CmpOp::kLt));
  }
  EXPECT_FALSE(NuLatticeRatio(RealFormula::And(parts), 5).ok());
  // Oversized enumeration.
  std::vector<RealFormula> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(RealFormula::Cmp(Z(i), CmpOp::kLt));
  }
  auto too_big = NuLatticeRatio(RealFormula::And(three), 1000);
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(LatticeTest, TotalMatchesGaussCircleIn2D) {
  // #lattice points in B_r^2 ≈ πr².
  RealFormula f = RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt);
  auto r = NuLatticeRatio(f, 100);
  ASSERT_TRUE(r.ok());
  double expected = M_PI * 100.0 * 100.0;
  EXPECT_NEAR(static_cast<double>(r->total), expected, 0.01 * expected);
}

TEST(LatticeTest, HalfPlaneConvergesToHalf) {
  RealFormula f = RealFormula::Cmp(Z(0), CmpOp::kLt);  // z0 < 0 (1-D)
  auto sweep = LatticeSweep(f, {10, 40, 160});
  ASSERT_TRUE(sweep.ok());
  double prev_err = 1.0;
  for (const LatticeRatio& p : *sweep) {
    double err = std::fabs(p.ratio() - 0.5);
    EXPECT_LE(err, prev_err + 1e-12);  // error shrinks with the radius
    prev_err = err;
  }
  EXPECT_NEAR(sweep->back().ratio(), 0.5, 0.01);
}

TEST(LatticeTest, QuadrantConvergesToQuarter) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  RealFormula f = RealFormula::And(parts);
  auto r = NuLatticeRatio(f, 150);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->ratio(), 0.25, 0.01);
}

TEST(LatticeTest, OrthantIn3D) {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  auto r = NuLatticeRatio(RealFormula::And(parts), 30);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->ratio(), 0.125, 0.02);
}

TEST(LatticeTest, AgreesWithRealMeasureOnSectors) {
  // ν and μ_Z agree asymptotically (the §10 Gauss-circle argument); check a
  // non-axis-aligned sector against the exact 2-D real measure.
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(1) - C(2) * Z(0), CmpOp::kLe));
  parts.push_back(RealFormula::Cmp(-Z(1) - Z(0), CmpOp::kLt));
  RealFormula f = RealFormula::And(parts);
  auto exact = NuExact2D(f);
  ASSERT_TRUE(exact.ok());
  auto lattice = NuLatticeRatio(f, 200);
  ASSERT_TRUE(lattice.ok());
  EXPECT_NEAR(lattice->ratio(), *exact, 0.01);
}

TEST(LatticeTest, BoundedRegionsVanishAsymptotically) {
  // {|z| <= 5} has measure 0 in the limit; at finite r the ratio is small
  // and decreasing.
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0) - C(5), CmpOp::kLe));
  parts.push_back(RealFormula::Cmp(-Z(0) - C(5), CmpOp::kLe));
  RealFormula f = RealFormula::And(parts);
  auto sweep = LatticeSweep(f, {10, 100, 1000});
  ASSERT_TRUE(sweep.ok());
  EXPECT_GT((*sweep)[0].ratio(), (*sweep)[1].ratio());
  EXPECT_GT((*sweep)[1].ratio(), (*sweep)[2].ratio());
  EXPECT_NEAR((*sweep)[2].ratio(), 11.0 / 2001.0, 1e-9);
}

}  // namespace
}  // namespace mudb::measure
