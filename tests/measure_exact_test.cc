// Tests for the exact measure engines: NuExactOrder (Prop. 6.2's rational
// values) and NuExact2D (Prop. 6.1's arctan closed forms).

#include <cmath>

#include <gtest/gtest.h>

#include "src/measure/afpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;
using util::Rational;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

RealFormula Lt(Polynomial p) {
  return RealFormula::Cmp(std::move(p), CmpOp::kLt);
}
RealFormula Gt(Polynomial p) {
  return RealFormula::Cmp(std::move(p), CmpOp::kGt);
}

TEST(OrderDetectionTest, RecognizesOrderAtoms) {
  EXPECT_TRUE(IsOrderFormula(Lt(Z(0) - Z(1))));
  EXPECT_TRUE(IsOrderFormula(Lt(Z(0) - C(5))));
  EXPECT_TRUE(IsOrderFormula(Lt(C(2) * Z(0) - C(2) * Z(1) + C(1))));
  EXPECT_FALSE(IsOrderFormula(Lt(Z(0) - C(2) * Z(1))));  // scaled difference
  EXPECT_FALSE(IsOrderFormula(Lt(Z(0) + Z(1))));         // a sum, not an order
  EXPECT_FALSE(IsOrderFormula(Lt(Z(0) * Z(1))));         // nonlinear
}

TEST(NuExactOrderTest, SingleSignConstraint) {
  auto v = NuExactOrder(Gt(Z(0)));  // z > 0
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Rational(1, 2));
}

TEST(NuExactOrderTest, TwoVariableChain) {
  // z0 < z1: half of all orderings.
  auto v = NuExactOrder(Lt(Z(0) - Z(1)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Rational(1, 2));
}

TEST(NuExactOrderTest, ThreeChainIsOneSixth) {
  std::vector<RealFormula> parts;
  parts.push_back(Lt(Z(0) - Z(1)));
  parts.push_back(Lt(Z(1) - Z(2)));
  auto v = NuExactOrder(RealFormula::And(parts));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Rational(1, 6));
}

TEST(NuExactOrderTest, PositivityOfKVariables) {
  for (int k = 1; k <= 5; ++k) {
    std::vector<RealFormula> parts;
    for (int i = 0; i < k; ++i) parts.push_back(Gt(Z(i)));
    auto v = NuExactOrder(RealFormula::And(parts));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, Rational(1, int64_t{1} << k)) << "k=" << k;
  }
}

TEST(NuExactOrderTest, SignAndOrderCombined) {
  // 0 < z0 < z1: a quarter of sign space, half of the orders given both
  // positive: 1/8.
  std::vector<RealFormula> parts;
  parts.push_back(Gt(Z(0)));
  parts.push_back(Gt(Z(1)));
  parts.push_back(Lt(Z(0) - Z(1)));
  auto v = NuExactOrder(RealFormula::And(parts));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Rational(1, 8));
}

TEST(NuExactOrderTest, ComplementSumsToOne) {
  std::vector<RealFormula> parts;
  parts.push_back(Gt(Z(0)));
  parts.push_back(Lt(Z(1) - Z(2)));
  RealFormula f = RealFormula::And(parts);
  auto v = NuExactOrder(f);
  auto nv = NuExactOrder(RealFormula::Not(f).ToNnf());
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(nv.ok());
  EXPECT_EQ(*v + *nv, Rational(1));
}

TEST(NuExactOrderTest, EqualityAtomsHaveMeasureZero) {
  auto v = NuExactOrder(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kEq));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Rational(0));
  auto nv = NuExactOrder(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kNeq));
  ASSERT_TRUE(nv.ok());
  EXPECT_EQ(*nv, Rational(1));
}

TEST(NuExactOrderTest, ConstantOffsetsDoNotMatterAsymptotically) {
  // z0 < z1 + 100 has the same asymptotic measure as z0 < z1.
  auto v = NuExactOrder(Lt(Z(0) - Z(1) - C(100)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Rational(1, 2));
}

TEST(NuExactOrderTest, RejectsNonOrderFormulas) {
  EXPECT_FALSE(NuExactOrder(Lt(Z(0) + Z(1))).ok());
  EXPECT_FALSE(NuExactOrder(Lt(Z(0) * Z(1))).ok());
}

TEST(NuExactOrderTest, VariableLimitGuard) {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 12; ++i) parts.push_back(Gt(Z(i)));
  auto v = NuExactOrder(RealFormula::And(parts), /*max_vars=*/8);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(NuExactOrderTest, AgreesWithSamplingOnRandomOrderFormulas) {
  util::Rng rng(77);
  for (int iter = 0; iter < 10; ++iter) {
    // Random order formula on 4 variables.
    std::vector<RealFormula> parts;
    for (int i = 0; i < 4; ++i) {
      int a = static_cast<int>(rng.UniformInt(0, 3));
      int b = static_cast<int>(rng.UniformInt(0, 3));
      RealFormula atom = (a == b) ? Gt(Z(a)) : Lt(Z(a) - Z(b));
      if (rng.Bernoulli(0.3)) atom = RealFormula::Not(atom);
      parts.push_back(atom);
    }
    RealFormula f = rng.Bernoulli(0.5) ? RealFormula::And(parts)
                                       : RealFormula::Or(parts);
    auto exact = NuExactOrder(f);
    ASSERT_TRUE(exact.ok());
    AfprasOptions opts;
    opts.num_samples = 200000;
    util::Rng sample_rng(iter);
    auto approx = Afpras(f, opts, sample_rng);
    ASSERT_TRUE(approx.ok());
    EXPECT_NEAR(exact->ToDouble(), approx->estimate, 0.01) << "iter " << iter;
  }
}

// ---- NuExact2D --------------------------------------------------------------

TEST(NuExact2DTest, ConstantsAndHalfplane) {
  auto t = NuExact2D(RealFormula::True());
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(*t, 1.0);
  auto h = NuExact2D(Lt(Z(0)));
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, 0.5, 1e-9);
}

TEST(NuExact2DTest, OneVariableCases) {
  auto v = NuExact2D(Gt(Z(0)));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.5, 1e-12);
  // z0 != 0 is asymptotically true in both directions.
  auto nz = NuExact2D(RealFormula::Cmp(Z(0), CmpOp::kNeq));
  ASSERT_TRUE(nz.ok());
  EXPECT_NEAR(*nz, 1.0, 1e-12);
}

TEST(NuExact2DTest, QuadrantIsQuarter) {
  std::vector<RealFormula> parts;
  parts.push_back(Gt(Z(0)));
  parts.push_back(Gt(Z(1)));
  auto v = NuExact2D(RealFormula::And(parts));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.25, 1e-9);
}

TEST(NuExact2DTest, Proposition61ArctanFormula) {
  // q = ∃x,y R(x,y) && x >= 0 && y <= α·x grounds to
  // z0 >= 0 && z1 - α z0 <= 0 with μ = arctan(α)/2π + 1/4 + ... —
  // the paper's closed form is arctan(α)/2π + 1/2 for the full formula
  // including the region x >= 0; verify against direct angle integration:
  // directions with cos θ >= 0 and sin θ <= α cos θ.
  for (double alpha : {-2.0, -1.0, -0.3, 0.0, 0.5, 1.0, 3.0}) {
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLe));          // x >= 0
    parts.push_back(RealFormula::Cmp(Z(1) - C(alpha) * Z(0),
                                     CmpOp::kLe));                 // y <= αx
    auto v = NuExact2D(RealFormula::And(parts));
    ASSERT_TRUE(v.ok());
    // Angle range: θ ∈ [-π/2, arctan(α)]: length arctan(α) + π/2.
    double expected = (std::atan(alpha) + M_PI / 2) / (2 * M_PI);
    EXPECT_NEAR(*v, expected, 1e-9) << "alpha=" << alpha;
  }
}

TEST(NuExact2DTest, NonlinearParabolaHasMeasureZeroAbove) {
  // z1 > z0^2: only the direction (0, +1) survives asymptotically.
  auto v = NuExact2D(Gt(Z(1) - Z(0) * Z(0)));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.0, 1e-9);
  // The complement has full measure.
  auto nv = NuExact2D(RealFormula::Cmp(Z(1) - Z(0) * Z(0), CmpOp::kLe));
  ASSERT_TRUE(nv.ok());
  EXPECT_NEAR(*nv, 1.0, 1e-9);
}

TEST(NuExact2DTest, ProductPositiveIsHalf) {
  // z0 · z1 > 0: quadrants 1 and 3.
  auto v = NuExact2D(Gt(Z(0) * Z(1)));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.5, 1e-9);
}

TEST(NuExact2DTest, CubicSectorBoundaries) {
  // z1^3 < z0^3 ⟺ z1 < z0: half the circle, with a degree-3 boundary.
  auto v = NuExact2D(
      Lt(Z(1) * Z(1) * Z(1) - Z(0) * Z(0) * Z(0)));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.5, 1e-9);
}

TEST(NuExact2DTest, RejectsThreeUsedVariables) {
  std::vector<RealFormula> parts;
  parts.push_back(Gt(Z(0)));
  parts.push_back(Gt(Z(1)));
  parts.push_back(Gt(Z(2)));
  auto v = NuExact2D(RealFormula::And(parts));
  EXPECT_FALSE(v.ok());
}

TEST(NuExact2DTest, SparseVariableIndicesAreCompacted) {
  // Two *used* variables with sparse indices are fine.
  std::vector<RealFormula> parts;
  parts.push_back(Gt(Z(0)));
  parts.push_back(Gt(Z(5)));
  auto v = NuExact2D(RealFormula::And(parts));
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.25, 1e-9);
}

TEST(NuExact2DTest, AgreesWithOrderEngineOnOrderFormulas) {
  util::Rng rng(31);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<RealFormula> parts;
    for (int i = 0; i < 3; ++i) {
      RealFormula atom = rng.Bernoulli(0.5) ? Gt(Z(rng.UniformInt(0, 1)))
                                            : Lt(Z(0) - Z(1));
      if (rng.Bernoulli(0.4)) atom = RealFormula::Not(atom);
      parts.push_back(atom);
    }
    RealFormula f = rng.Bernoulli(0.5) ? RealFormula::And(parts)
                                       : RealFormula::Or(parts);
    auto via_order = NuExactOrder(f);
    auto via_2d = NuExact2D(f);
    if (f.is_constant()) continue;
    ASSERT_TRUE(via_order.ok());
    ASSERT_TRUE(via_2d.ok());
    EXPECT_NEAR(via_order->ToDouble(), *via_2d, 1e-9) << "iter " << iter;
  }
}

}  // namespace
}  // namespace mudb::measure
