// Tests for the adaptive-precision top-k ranking scheduler
// (src/service/ranking_service.h): bit-identical outcomes across thread
// counts and shuffled candidate orders, top-k agreement with fixed-precision
// full-batch ranking, exact-engine freezing, pruning accounting, and option
// validation.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/ranking_service.h"

namespace mudb::service {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using measure::MeasureOptions;
using measure::MeasureResult;
using measure::Method;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

// The planar wedge of polar angles (0, alpha), alpha < π: z1 > 0 together
// with cos(alpha)·z1 − sin(alpha)·z0 < 0. ν = alpha / (2π), so a spread of
// angles is a spread of certainties with known ground truth.
RealFormula Wedge(double alpha) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(
      C(std::cos(alpha)) * Z(1) - C(std::sin(alpha)) * Z(0), CmpOp::kLt));
  return RealFormula::And(std::move(parts));
}

MeasureOptions Opts(Method method, double epsilon, uint64_t seed) {
  MeasureOptions o;
  o.method = method;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

constexpr int kWedges = 16;

double WedgeAngle(int d) { return 0.2 + 0.16 * d; }

// 16 FPRAS wedges with ν spread ≈ 0.03 … 0.41, distinct seeds.
std::vector<MeasureRequest> WedgeBattery(double epsilon) {
  std::vector<MeasureRequest> reqs;
  reqs.reserve(kWedges);
  for (int d = 0; d < kWedges; ++d) {
    reqs.push_back(MeasureRequest::Nu(
        Wedge(WedgeAngle(d)), Opts(Method::kFpras, epsilon, 100 + d)));
  }
  return reqs;
}

RankingOptions WedgeRanking() {
  RankingOptions opts;
  opts.k = 4;
  opts.ladder = {0.5, 0.3};
  opts.delta = 0.1;
  return opts;
}

void ExpectSameOutcome(const RankingOutcome& a, const RankingOutcome& b) {
  EXPECT_EQ(a.top_k, b.top_k);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].result.value, b.candidates[i].result.value) << i;
    EXPECT_EQ(a.candidates[i].result.ci_lo, b.candidates[i].result.ci_lo) << i;
    EXPECT_EQ(a.candidates[i].result.ci_hi, b.candidates[i].result.ci_hi) << i;
    EXPECT_EQ(a.candidates[i].result.tier, b.candidates[i].result.tier) << i;
    EXPECT_EQ(a.candidates[i].pruned, b.candidates[i].pruned) << i;
  }
  EXPECT_EQ(a.tier_stats.size(), b.tier_stats.size());
  EXPECT_EQ(a.total_sampling_steps, b.total_sampling_steps);
}

TEST(RankingTest, BitIdenticalAcrossThreadCounts) {
  ServiceOptions base;
  base.num_threads = 1;
  MeasureService reference_service(base);
  auto reference =
      reference_service.RunTopK(WedgeBattery(0.2), WedgeRanking());
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference->top_k.size(), 4u);

  for (int threads : {2, 8}) {
    ServiceOptions sopts;
    sopts.num_threads = threads;
    MeasureService service(sopts);
    auto outcome = service.RunTopK(WedgeBattery(0.2), WedgeRanking());
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ExpectSameOutcome(*reference, *outcome);
  }
}

TEST(RankingTest, ShuffledCandidateOrderPermutesTheOutcome) {
  MeasureService reference_service;
  auto reference =
      reference_service.RunTopK(WedgeBattery(0.2), WedgeRanking());
  ASSERT_TRUE(reference.ok()) << reference.status();

  std::mt19937_64 gen(13);
  for (int round = 0; round < 3; ++round) {
    std::vector<size_t> perm(kWedges);
    std::iota(perm.begin(), perm.end(), 0u);
    std::shuffle(perm.begin(), perm.end(), gen);

    std::vector<MeasureRequest> original = WedgeBattery(0.2);
    std::vector<MeasureRequest> shuffled;
    for (size_t i : perm) shuffled.push_back(std::move(original[i]));

    MeasureService service;
    auto outcome = service.RunTopK(std::move(shuffled), WedgeRanking());
    ASSERT_TRUE(outcome.ok()) << outcome.status();

    // Map the shuffled outcome back: position j held original perm[j].
    ASSERT_EQ(outcome->top_k.size(), reference->top_k.size());
    for (size_t r = 0; r < outcome->top_k.size(); ++r) {
      EXPECT_EQ(perm[outcome->top_k[r]], reference->top_k[r])
          << "rank " << r << ", round " << round;
    }
    for (size_t j = 0; j < perm.size(); ++j) {
      const RankedCandidate& got = outcome->candidates[j];
      const RankedCandidate& want = reference->candidates[perm[j]];
      EXPECT_EQ(got.result.value, want.result.value) << j;
      EXPECT_EQ(got.result.ci_lo, want.result.ci_lo) << j;
      EXPECT_EQ(got.result.ci_hi, want.result.ci_hi) << j;
      EXPECT_EQ(got.result.tier, want.result.tier) << j;
      EXPECT_EQ(got.pruned, want.pruned) << j;
    }
    EXPECT_EQ(outcome->total_sampling_steps,
              reference->total_sampling_steps);
  }
}

TEST(RankingTest, TopKSetMatchesFixedPrecisionFullBatch) {
  RankingOptions ropts = WedgeRanking();

  // Fixed-precision baseline: every candidate straight at its final ε,
  // with the same per-estimate δ the ladder's final tier uses, so the
  // surviving candidates' final evaluations are bit-identical requests.
  std::vector<MeasureRequest> fixed = WedgeBattery(0.2);
  const double tier_delta = RankingTierDelta(ropts, fixed.size());
  for (MeasureRequest& req : fixed) req.options.delta = tier_delta;
  MeasureService fixed_service;
  auto fixed_outcome = fixed_service.RunBatch(std::move(fixed));
  std::vector<size_t> fixed_order(kWedges);
  std::iota(fixed_order.begin(), fixed_order.end(), 0u);
  std::vector<double> fixed_value(kWedges);
  for (int i = 0; i < kWedges; ++i) {
    ASSERT_TRUE(fixed_outcome.results[i].ok());
    fixed_value[i] = fixed_outcome.results[i]->value;
  }
  std::sort(fixed_order.begin(), fixed_order.end(),
            [&](size_t a, size_t b) {
              if (fixed_value[a] != fixed_value[b]) {
                return fixed_value[a] > fixed_value[b];
              }
              return a < b;
            });
  fixed_order.resize(ropts.k);

  MeasureService adaptive_service;
  auto adaptive = adaptive_service.RunTopK(WedgeBattery(0.2), ropts);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();

  // Identical top-k set, and for its members the adaptive final estimates
  // are bit-identical to the fixed-precision run.
  std::vector<size_t> adaptive_sorted = adaptive->top_k;
  std::vector<size_t> fixed_sorted = fixed_order;
  std::sort(adaptive_sorted.begin(), adaptive_sorted.end());
  std::sort(fixed_sorted.begin(), fixed_sorted.end());
  EXPECT_EQ(adaptive_sorted, fixed_sorted);
  for (size_t i : adaptive->top_k) {
    EXPECT_EQ(adaptive->candidates[i].result.value, fixed_value[i]) << i;
  }

  // The schedule refined strictly fewer steps than the full-precision
  // batch paid (the 2× bar is bench_ranking's, on the 64-candidate
  // workload).
  EXPECT_LT(adaptive->total_sampling_steps,
            fixed_outcome.stats.sampling_steps);
}

TEST(RankingTest, PruningRefinesOnlySurvivors) {
  MeasureService service;
  auto outcome = service.RunTopK(WedgeBattery(0.2), WedgeRanking());
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  // All three tiers executed, with monotonically shrinking batches and
  // real pruning before the final tier.
  ASSERT_EQ(outcome->tier_stats.size(), 3u);
  EXPECT_EQ(outcome->tier_stats[0].requests, kWedges);
  EXPECT_GE(outcome->tier_stats[0].requests,
            outcome->tier_stats[1].requests);
  EXPECT_GE(outcome->tier_stats[1].requests,
            outcome->tier_stats[2].requests);
  EXPECT_LT(outcome->tier_stats[2].requests, kWedges);

  int pruned = 0;
  for (const RankedCandidate& cand : outcome->candidates) {
    if (cand.pruned) {
      ++pruned;
      // A pruned candidate never reached the final tier.
      EXPECT_LT(cand.result.tier, 2);
      EXPECT_EQ(std::count(outcome->top_k.begin(), outcome->top_k.end(),
                           cand.index),
                0);
    } else {
      EXPECT_GE(cand.result.ci_lo, 0.0);
      EXPECT_LE(cand.result.ci_lo, cand.result.value);
      EXPECT_GE(cand.result.ci_hi, cand.result.value);
    }
  }
  EXPECT_GT(pruned, 0);

  // The wedges have strictly increasing ground truth with a wide spread,
  // so the top-4 *set* is the four widest ones (order within the set
  // follows the ε-level estimates, which may swap near-ties).
  std::vector<size_t> top = outcome->top_k;
  std::sort(top.begin(), top.end());
  std::vector<size_t> expected = {12, 13, 14, 15};
  EXPECT_EQ(top, expected);
}

TEST(RankingTest, ExactCandidatesFreezeAtTierZero) {
  // kAuto on two-variable wedges dispatches to the exact 2-D engine: point
  // intervals at tier 0, zero sampling anywhere, true top-k.
  std::vector<MeasureRequest> reqs;
  for (int d = 0; d < 8; ++d) {
    reqs.push_back(MeasureRequest::Nu(Wedge(WedgeAngle(d)),
                                      Opts(Method::kAuto, 0.1, 7)));
  }
  RankingOptions ropts;
  ropts.k = 3;
  MeasureService service;
  auto outcome = service.RunTopK(std::move(reqs), ropts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  std::vector<size_t> expected = {7, 6, 5};
  EXPECT_EQ(outcome->top_k, expected);
  EXPECT_EQ(outcome->total_sampling_steps, 0);
  ASSERT_EQ(outcome->tier_stats.size(), 1u);
  for (const RankedCandidate& cand : outcome->candidates) {
    EXPECT_EQ(cand.result.tier, 0);
    EXPECT_EQ(cand.result.ci_lo, cand.result.value);
    EXPECT_EQ(cand.result.ci_hi, cand.result.value);
    EXPECT_NEAR(cand.result.value,
                WedgeAngle(static_cast<int>(cand.index)) / (2 * M_PI),
                1e-9);
  }
}

TEST(RankingTest, RunTopKMatchesRankingServiceComposition) {
  MeasureService via_member;
  auto member = via_member.RunTopK(WedgeBattery(0.25), WedgeRanking());
  ASSERT_TRUE(member.ok()) << member.status();

  MeasureService via_class;
  RankingService ranking(&via_class);
  auto composed = ranking.RankTopK(WedgeBattery(0.25), WedgeRanking());
  ASSERT_TRUE(composed.ok()) << composed.status();
  ExpectSameOutcome(*member, *composed);
}

TEST(RankingTest, ValidationRejectsBadOptions) {
  MeasureService service;

  RankingOptions bad_k;
  bad_k.k = 0;
  EXPECT_EQ(service.RunTopK(WedgeBattery(0.2), bad_k).status().code(),
            util::StatusCode::kInvalidArgument);

  RankingOptions bad_delta;
  bad_delta.delta = 1.0;
  EXPECT_EQ(service.RunTopK(WedgeBattery(0.2), bad_delta).status().code(),
            util::StatusCode::kInvalidArgument);

  RankingOptions flat_ladder;
  flat_ladder.ladder = {0.2, 0.2};
  EXPECT_EQ(
      service.RunTopK(WedgeBattery(0.1), flat_ladder).status().code(),
      util::StatusCode::kInvalidArgument);

  RankingOptions wide_ladder;
  wide_ladder.ladder = {1.5, 0.2};
  EXPECT_EQ(
      service.RunTopK(WedgeBattery(0.1), wide_ladder).status().code(),
      util::StatusCode::kInvalidArgument);

  // A candidate with degenerate (ε, δ) fails up front — no tier runs.
  std::vector<MeasureRequest> reqs = WedgeBattery(0.2);
  reqs[3].options.delta = 2.0;
  auto outcome = service.RunTopK(std::move(reqs), WedgeRanking());
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.lifetime_stats().requests, 0);
}

TEST(RankingTest, ValidationRejectsBadSessionKnobs) {
  MeasureService service;

  RankingOptions bad_per_estimate;
  bad_per_estimate.per_estimate_delta = 1.0;
  EXPECT_EQ(
      service.RunTopK(WedgeBattery(0.2), bad_per_estimate).status().code(),
      util::StatusCode::kInvalidArgument);

  RankingOptions negative_per_estimate;
  negative_per_estimate.per_estimate_delta = -0.1;
  EXPECT_EQ(service.RunTopK(WedgeBattery(0.2), negative_per_estimate)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);

  RankingOptions small_budget;
  small_budget.adaptive_ladder = true;
  small_budget.max_tiers = 1;
  EXPECT_EQ(service.RunTopK(WedgeBattery(0.2), small_budget).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.lifetime_stats().requests, 0);
}

TEST(RankingTest, NegativeKIsRejectedBeforeAnyWork) {
  MeasureService service;
  RankingOptions negative_k;
  negative_k.k = -3;
  auto outcome = service.RunTopK(WedgeBattery(0.2), negative_k);
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kInvalidArgument);
  // k = 0 and k < 0 both fail the same validation, with zero requests
  // executed — the nth_element path must never see a degenerate k.
  negative_k.k = 0;
  EXPECT_EQ(service.RunTopK(WedgeBattery(0.2), negative_k).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.lifetime_stats().requests, 0);
}

TEST(RankingTest, KLargerThanNRanksEveryCandidate) {
  // k > N is a trivial outcome, not an error: nobody can be pruned (the
  // threshold needs more than k active lower bounds), everyone refines to
  // final precision, and top_k holds all N candidates in certainty order.
  RankingOptions ropts = WedgeRanking();
  ropts.k = kWedges + 20;
  MeasureService service;
  auto outcome = service.RunTopK(WedgeBattery(0.2), ropts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->top_k.size(), static_cast<size_t>(kWedges));
  for (const RankedCandidate& cand : outcome->candidates) {
    EXPECT_FALSE(cand.pruned) << cand.index;
  }
  for (size_t r = 1; r < outcome->top_k.size(); ++r) {
    const double prev = outcome->candidates[outcome->top_k[r - 1]].result.value;
    const double cur = outcome->candidates[outcome->top_k[r]].result.value;
    EXPECT_GE(prev, cur) << "rank " << r;
  }
}

TEST(RankingTest, EmptyCandidateListWithLargeKIsStillEmpty) {
  MeasureService service;
  RankingOptions ropts;
  ropts.k = 5;
  auto outcome = service.RunTopK({}, ropts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->top_k.empty());
  EXPECT_TRUE(outcome->candidates.empty());
  EXPECT_TRUE(outcome->tier_stats.empty());
  EXPECT_EQ(outcome->total_sampling_steps, 0);
}

TEST(RankingTest, PruningCascadeNeverShrinksActiveSetBelowK) {
  // Aggressive setup: a long ladder over a wide certainty spread with a
  // tiny k, so pruning cascades hard at every tier. The k holders of the
  // top lower bounds always satisfy ci_hi >= ci_lo >= threshold, and the
  // prune comparison is strict, so the active set can never fall below
  // min(n, k) — this test locks that invariant against threshold rework.
  RankingOptions ropts;
  ropts.k = 2;
  ropts.ladder = {0.8, 0.5, 0.3, 0.15};
  ropts.delta = 0.1;
  MeasureService service;
  auto outcome = service.RunTopK(WedgeBattery(0.1), ropts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  int survivors = 0;
  for (const RankedCandidate& cand : outcome->candidates) {
    if (!cand.pruned) ++survivors;
  }
  EXPECT_GE(survivors, ropts.k);
  ASSERT_EQ(outcome->top_k.size(), 2u);
  std::vector<size_t> top = outcome->top_k;
  std::sort(top.begin(), top.end());
  std::vector<size_t> expected = {14, 15};
  EXPECT_EQ(top, expected);
  // Batches shrink monotonically; the cascade pruned someone early.
  for (size_t t = 1; t < outcome->tier_stats.size(); ++t) {
    EXPECT_GE(outcome->tier_stats[t - 1].requests,
              outcome->tier_stats[t].requests)
        << t;
  }
  EXPECT_LT(outcome->tier_stats.back().requests, kWedges);
}

TEST(RankingTest, DuplicateCandidatesGetBitIdenticalIntervalsAndTieOrder) {
  // Each wedge twice, identical formula / ε / seed: the request signatures
  // collide, so both copies must report bit-identical results, and the
  // final sort must break their exact value ties by ascending input index.
  std::vector<MeasureRequest> reqs;
  for (int d = 0; d < 8; ++d) {
    for (int copy = 0; copy < 2; ++copy) {
      reqs.push_back(MeasureRequest::Nu(
          Wedge(WedgeAngle(d)), Opts(Method::kFpras, 0.2, 100 + d)));
    }
  }
  RankingOptions ropts = WedgeRanking();
  MeasureService service;
  auto outcome = service.RunTopK(std::move(reqs), ropts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  for (size_t pair = 0; pair < 8; ++pair) {
    const MeasureResult& a = outcome->candidates[2 * pair].result;
    const MeasureResult& b = outcome->candidates[2 * pair + 1].result;
    EXPECT_EQ(a.value, b.value) << pair;
    EXPECT_EQ(a.ci_lo, b.ci_lo) << pair;
    EXPECT_EQ(a.ci_hi, b.ci_hi) << pair;
    EXPECT_EQ(outcome->candidates[2 * pair].pruned,
              outcome->candidates[2 * pair + 1].pruned)
        << pair;
  }
  // Top-4: both copies of the two widest wedges (which of the two pairs
  // leads follows the ε-level estimates), each pair adjacent and in
  // ascending input order — exact value ties break by index.
  ASSERT_EQ(outcome->top_k.size(), 4u);
  std::vector<size_t> top = outcome->top_k;
  std::sort(top.begin(), top.end());
  std::vector<size_t> expected = {12, 13, 14, 15};
  EXPECT_EQ(top, expected);
  EXPECT_EQ(outcome->top_k[0] + 1, outcome->top_k[1]);
  EXPECT_EQ(outcome->top_k[2] + 1, outcome->top_k[3]);
  // The memo actually deduplicated: the second copy of every executed
  // request was a cache hit.
  int64_t hits = 0;
  for (const BatchStats& stats : outcome->tier_stats) {
    hits += stats.request_cache_hits;
  }
  EXPECT_GT(hits, 0);
}

TEST(RankingTest, RequestErrorsPropagate) {
  // A nonlinear formula forced onto the FPRAS fails; the ranking surfaces
  // that status instead of a partial ranking.
  std::vector<MeasureRequest> reqs = WedgeBattery(0.2);
  reqs[5] = MeasureRequest::Nu(
      RealFormula::Cmp(Z(0) * Z(1) - C(1), CmpOp::kLt),
      Opts(Method::kFpras, 0.2, 42));
  MeasureService service;
  auto outcome = service.RunTopK(std::move(reqs), WedgeRanking());
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RankingTest, EmptyCandidateListYieldsEmptyOutcome) {
  MeasureService service;
  auto outcome = service.RunTopK({}, RankingOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->top_k.empty());
  EXPECT_TRUE(outcome->candidates.empty());
  EXPECT_TRUE(outcome->tier_stats.empty());
}

}  // namespace
}  // namespace mudb::service
