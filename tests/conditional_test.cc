// Tests for the §10 conditional-measure extension (range-constrained nulls).

#include <cmath>

#include <gtest/gtest.h>

#include "src/measure/conditional.h"
#include "src/measure/measure.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

AfprasOptions ManySamples() {
  AfprasOptions opts;
  opts.num_samples = 200000;
  return opts;
}

TEST(ConditionalTest, EmptyRangesMatchUnconditional) {
  RealFormula f = RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt);
  util::Rng rng(1);
  auto cond = ConditionalAfpras(f, {}, ManySamples(), rng);
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(cond->estimate, 0.5, 0.01);
}

TEST(ConditionalTest, RejectsEmptyInterval) {
  RealFormula f = RealFormula::Cmp(Z(0), CmpOp::kLt);
  util::Rng rng(1);
  auto cond = ConditionalAfpras(f, {VarRange::Between(2, 1)}, ManySamples(),
                                rng);
  EXPECT_FALSE(cond.ok());
}

TEST(ConditionalTest, FullyBoundedBoxIsPointwiseProbability) {
  util::Rng rng(2);
  // z0 <= 0.3 on [0, 1]: exactly 0.3.
  auto a = ConditionalAfpras(RealFormula::Cmp(Z(0) - C(0.3), CmpOp::kLe),
                             {VarRange::Between(0, 1)}, ManySamples(), rng);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->estimate, 0.3, 0.01);
  // z0 + z1 <= 1 on [0,1]^2: the lower triangle, 1/2.
  auto b = ConditionalAfpras(
      RealFormula::Cmp(Z(0) + Z(1) - C(1), CmpOp::kLe),
      {VarRange::Between(0, 1), VarRange::Between(0, 1)}, ManySamples(), rng);
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->estimate, 0.5, 0.01);
}

TEST(ConditionalTest, NonlinearBoundedRegion) {
  // Area of {x·y <= 1/4} on the unit square is 1/4 + (1/4)·ln 4.
  util::Rng rng(3);
  auto r = ConditionalAfpras(
      RealFormula::Cmp(Z(0) * Z(1) - C(0.25), CmpOp::kLe),
      {VarRange::Between(0, 1), VarRange::Between(0, 1)}, ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.25 + 0.25 * std::log(4.0), 0.01);
}

TEST(ConditionalTest, HalfLinePriorAbsorbsFiniteThresholds) {
  // Under z >= 0, the constraint z >= 5 holds asymptotically always:
  // lim |[5, r]| / |[0, r]| = 1.
  util::Rng rng(4);
  auto r = ConditionalAfpras(RealFormula::Cmp(C(5) - Z(0), CmpOp::kLe),
                             {VarRange::AtLeast(0)}, ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 1.0, 1e-9);
  // While z <= 5 has conditional measure 0.
  auto r2 = ConditionalAfpras(RealFormula::Cmp(Z(0) - C(5), CmpOp::kLe),
                              {VarRange::AtLeast(0)}, ManySamples(), rng);
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(r2->estimate, 0.0, 1e-9);
}

TEST(ConditionalTest, UpperHalfLineFlipsSigns) {
  util::Rng rng(5);
  // Under z <= 0, z <= -1 is asymptotically certain.
  auto r = ConditionalAfpras(RealFormula::Cmp(Z(0) + C(1), CmpOp::kLe),
                             {VarRange::AtMost(0)}, ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 1.0, 1e-9);
}

TEST(ConditionalTest, MixedBoundedAndDirectional) {
  util::Rng rng(6);
  // z0 ~ [0,1] bounded, z1 free: φ = (z0 <= 0.25) && (z1 > 0): 0.25 · 0.5.
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0) - C(0.25), CmpOp::kLe));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  auto r = ConditionalAfpras(RealFormula::And(parts),
                             {VarRange::Between(0, 1), VarRange::Free()},
                             ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.125, 0.01);
}

TEST(ConditionalTest, BoundedValueScalesAgainstDirectionalVariable) {
  util::Rng rng(7);
  // z0 ∈ [1, 2] bounded, z1 >= 0: z1 >= z0 holds asymptotically always
  // (z1 outgrows any bounded z0); z1 <= z0 never.
  auto ge = ConditionalAfpras(
      RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLe),
      {VarRange::Between(1, 2), VarRange::AtLeast(0)}, ManySamples(), rng);
  ASSERT_TRUE(ge.ok());
  EXPECT_NEAR(ge->estimate, 1.0, 1e-9);
  auto le = ConditionalAfpras(
      RealFormula::Cmp(Z(1) - Z(0), CmpOp::kLe),
      {VarRange::Between(1, 2), VarRange::AtLeast(0)}, ManySamples(), rng);
  ASSERT_TRUE(le.ok());
  EXPECT_NEAR(le->estimate, 0.0, 1e-9);
}

TEST(ConditionalTest, IntroExampleQuadrantShare) {
  // The paper's "≈0.388 of the positive quadrant": conditioning constraint
  // (1) on α, α' >= 0 gives the quadrant-relative value directly.
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(C(8) - Z(0), CmpOp::kLe));        // α >= 8
  parts.push_back(RealFormula::Cmp(Z(0) - Z(1).Scale(0.7), CmpOp::kLe));
  RealFormula f = RealFormula::And(parts);
  util::Rng rng(8);
  auto r = ConditionalAfpras(
      f, {VarRange::AtLeast(0), VarRange::AtLeast(0)}, ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  double expected = 4 * (M_PI / 2 - std::atan(10.0 / 7.0)) / (2 * M_PI);
  EXPECT_NEAR(r->estimate, expected, 0.01);  // ≈ 0.3888
}

TEST(ConditionalTest, RangesOnUnusedVariablesMarginalizeOut) {
  RealFormula f = RealFormula::Cmp(-Z(0), CmpOp::kLt);  // z0 > 0
  util::Rng rng(9);
  VarRanges ranges{VarRange::Free(), VarRange::Between(0, 1),
                   VarRange::AtLeast(3)};
  auto r = ConditionalAfpras(f, ranges, ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.01);
}

TEST(ConditionalTest, EndToEndThroughGrounding) {
  // R(num) = {(⊤)}, q = ∃x R(x) && x >= 3.
  model::Database db;
  ASSERT_TRUE(db.CreateRelation(model::RelationSchema(
                   "R", {{"x", model::Sort::kNum}}))
                  .ok());
  model::Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("R", {top}).ok());
  logic::Formula f = logic::Formula::Exists(
      logic::TypedVar{"x", model::Sort::kNum},
      logic::Formula::And([] {
        std::vector<logic::Formula> v;
        v.push_back(logic::Formula::Rel("R", {logic::AtomArg::NumVar("x")}));
        v.push_back(logic::Formula::Cmp(logic::Term::Var("x"), CmpOp::kGe,
                                        logic::Term::Const(3)));
        return v;
      }()));
  auto q = logic::Query::Make(std::move(f), db);
  ASSERT_TRUE(q.ok());

  MeasureOptions opts;
  opts.epsilon = 0.01;
  opts.delta = 0.001;
  // Agnostic: 1/2.
  auto free = ComputeConditionalMeasure(*q, db, {}, {}, opts);
  ASSERT_TRUE(free.ok()) << free.status();
  EXPECT_NEAR(free->value, 0.5, 0.01);
  // ⊤ ∈ [0, 10]: P(x >= 3) = 0.7.
  NullRanges bounded{{top.null_id(), VarRange::Between(0, 10)}};
  auto b = ComputeConditionalMeasure(*q, db, {}, bounded, opts);
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(b->value, 0.7, 0.01);
  // ⊤ >= 0: asymptotically certain.
  NullRanges nonneg{{top.null_id(), VarRange::AtLeast(0)}};
  auto h = ComputeConditionalMeasure(*q, db, {}, nonneg, opts);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->value, 1.0, 1e-9);
}

// Property: with all-free ranges the conditional estimator agrees with the
// exact 2-D engine on random sector formulas.
class ConditionalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConditionalPropertyTest, FreeRangesMatchExact2D) {
  util::Rng formula_rng(GetParam());
  for (int iter = 0; iter < 4; ++iter) {
    std::vector<RealFormula> parts;
    for (int i = 0; i < 2; ++i) {
      Polynomial p = C(formula_rng.Uniform(-1, 1)) * Z(0) +
                     C(formula_rng.Uniform(-1, 1)) * Z(1);
      parts.push_back(RealFormula::Cmp(p, CmpOp::kLe));
    }
    RealFormula f = RealFormula::And(parts);
    if (f.is_constant()) continue;
    auto exact = NuExact2D(f);
    ASSERT_TRUE(exact.ok());
    util::Rng rng(GetParam() * 31 + iter);
    auto cond = ConditionalAfpras(f, {}, ManySamples(), rng);
    ASSERT_TRUE(cond.ok());
    EXPECT_NEAR(cond->estimate, *exact, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionalPropertyTest,
                         ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace mudb::measure
