// Positive fixture: raw clock reads in src/service/ (the acceptance
// criterion's example) must fail the lint. Comment and string occurrences
// must NOT be flagged: steady_clock::now() right here is fine.
#include <chrono>
#include <string>

namespace mudb::service {

long RawClockReads() {
  auto a = std::chrono::steady_clock::now();              // expect-lint: no-raw-clock
  auto b = std::chrono::system_clock::now();              // expect-lint: no-raw-clock
  auto c = std::chrono::high_resolution_clock::now();     // expect-lint: no-raw-clock
  const std::string doc = "call steady_clock::now() for time";  // in string: ok
  return doc.size() + (a < b ? 1 : 0) + (c.time_since_epoch().count() > 0);
}

}  // namespace mudb::service
