// Negative fixture: the sanctioned patterns around thread counts.
#include <cstdint>

namespace mudb::convex {

constexpr int64_t kChunkSamples = 1 << 12;

template <typename Fn>
double ReduceSampleChunks(void* pool, int num_threads, int64_t total,
                          int64_t chunk_size, Fn&& fn);

double SanctionedUses(void* pool, int num_threads, int64_t total) {
  // Passing a thread count AND a grid shape as separate arguments to the
  // audited seam is fine — the grid inside derives from (total,
  // chunk_size) only. Spans multiple lines like the real call sites.
  double a = ReduceSampleChunks(pool, num_threads, total, kChunkSamples,
                                [](int64_t) { return 0.0; });
  // Sizing a pool from the thread count is fine: no grid identifier.
  int workers = num_threads > 0 ? num_threads : 1;
  // Deriving the grid from the workload is the whole point:
  int64_t num_chunks = (total + kChunkSamples - 1) / kChunkSamples;
  return a + workers + static_cast<double>(num_chunks);
}

}  // namespace mudb::convex
