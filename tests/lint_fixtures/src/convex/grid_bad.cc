// Positive fixture: deriving a work-grid shape from the thread count is
// the original PR 2 sin — estimates would differ across num_threads.
#include <cstdint>

namespace mudb::convex {

int64_t ThreadShapedGrid(int64_t total, int num_threads) {
  int64_t chunk_size = total / num_threads;  // expect-lint: no-threadcount-grid
  int64_t num_chunks = num_threads * 2;      // expect-lint: no-threadcount-grid
  // Multi-line statements are still one statement to the linter:
  int64_t lane_count =                       // expect-lint is on the use line
      num_threads +                          // expect-lint: no-threadcount-grid
      1;
  return chunk_size + num_chunks + lane_count;
}

}  // namespace mudb::convex
