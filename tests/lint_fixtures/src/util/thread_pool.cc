// Negative fixture: util::ThreadPool itself is the sanctioned home of raw
// threads and the hardware_concurrency() probe.
#include <thread>
#include <vector>

namespace mudb::util {

struct FixturePool {
  std::vector<std::thread> workers;
};

unsigned ResolveWorkers(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace mudb::util
