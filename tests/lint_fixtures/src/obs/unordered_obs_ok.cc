// Negative fixture: src/obs is outside the result-producing scope of
// no-unordered-iteration-in-results — snapshots carry no result bits (and
// the real registry uses std::map so output is name-sorted anyway).
#include <string>
#include <unordered_map>

namespace mudb::obs {

int DrainFixture() {
  std::unordered_map<std::string, int> counters;
  int total = 0;
  for (const auto& [name, v] : counters) total += v + name.empty();
  return total;
}

}  // namespace mudb::obs
