// Negative fixture: src/obs/clock.cc is the one sanctioned raw-clock
// read site; the identical call that fails everywhere else is clean here.
#include <chrono>

namespace mudb::obs {

long Ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace mudb::obs
