// Positive fixture: the observability layer must stay RNG-free — tracing
// on/off/compiled-out leaves every estimate bit-identical.
#include "src/util/rng.h"  // expect-lint: obs-purity

namespace mudb::obs {

double JitteredSample(mudb::util::Rng& rng) {  // expect-lint: obs-purity
  return rng.Uniform01();
}

}  // namespace mudb::obs
