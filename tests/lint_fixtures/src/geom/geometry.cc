// Negative fixture: src/geom/geometry.cc is the audited reentrant
// wrapper — lgamma_r (and the lgamma fallback) are sanctioned here.
#include <cmath>

namespace mudb::geom {

double LogGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace mudb::geom
