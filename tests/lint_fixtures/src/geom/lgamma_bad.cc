// Positive fixture: lgamma/signgam anywhere but the geometry.cc wrapper —
// even elsewhere in src/geom/ — is the PR 8 signgam data race reborn.
#include <cmath>

namespace mudb::geom {

double LogGammaRace(double x) {
  double v = std::lgamma(x);  // expect-lint: no-signgam-lgamma
  int sign_copy = signgam;    // expect-lint: no-signgam-lgamma
  return v + sign_copy;
}

}  // namespace mudb::geom
