// Support header for the unordered-iteration fixtures: declares an
// accessor returning an unordered container, mirroring
// model::Valuation::base_map(). Collected globally by the linter so a
// range-for over the_map() in ANOTHER file is flagged.
#ifndef MUDB_TESTS_LINT_FIXTURES_SRC_MODEL_UNORDERED_DECL_H_
#define MUDB_TESTS_LINT_FIXTURES_SRC_MODEL_UNORDERED_DECL_H_

#include <unordered_map>

namespace mudb::model {

class FixtureValuation {
 public:
  const std::unordered_map<int, int>& the_map() const { return map_; }

 private:
  std::unordered_map<int, int> map_;
};

}  // namespace mudb::model

#endif  // MUDB_TESTS_LINT_FIXTURES_SRC_MODEL_UNORDERED_DECL_H_
