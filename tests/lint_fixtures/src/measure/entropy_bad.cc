// Positive fixture: every ambient entropy source banned in src/.
#include <cstdlib>
#include <ctime>
#include <random>

namespace mudb::measure {

unsigned AmbientEntropy() {
  std::random_device rd;                    // expect-lint: no-ambient-entropy
  srand(42);                                // expect-lint: no-ambient-entropy
  unsigned a = rand();                      // expect-lint: no-ambient-entropy
  long b = time(nullptr);                   // expect-lint: no-ambient-entropy
  const char* env = std::getenv("THREADS");  // expect-lint: no-ambient-entropy
  return rd() + a + static_cast<unsigned>(b) + (env != nullptr);
}

}  // namespace mudb::measure
