// Positive fixture: ad-hoc thread construction/storage and
// hardware_concurrency() outside util::ThreadPool.
#include <future>
#include <thread>
#include <vector>

namespace mudb::volume {

int AdHocThreads() {
  std::thread worker([] {});                          // expect-lint: no-raw-thread
  std::vector<std::thread> pool;                      // expect-lint: no-raw-thread
  unsigned hw = std::thread::hardware_concurrency();  // expect-lint: no-raw-thread
  auto f = std::async([] { return 1; });              // expect-lint: no-raw-thread
  worker.join();
  // A reference to an existing thread is fine (join loops):
  for (std::thread& t : pool) t.join();
  return static_cast<int>(hw) + f.get();
}

}  // namespace mudb::volume
