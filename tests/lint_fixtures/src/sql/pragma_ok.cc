// Negative fixture: correctly-formed allow pragmas with reasons suppress
// their violations — same-line form and comment-block form — and a used
// pragma is not stale.
#include <chrono>

namespace mudb::sql {

long SanctionedClockReads() {
  auto a = std::chrono::steady_clock::now();  // mudb-lint: allow(no-raw-clock) -- fixture: same-line form
  // The block form applies to the next line holding code, so a pragma can
  // close an explanatory comment like this one.
  // mudb-lint: allow(no-raw-clock) -- fixture: comment-block form
  auto b = std::chrono::steady_clock::now();
  return (b - a).count();
}

}  // namespace mudb::sql
