// Positive fixture: a pragma that suppresses nothing is itself an error —
// the allowlist must not rot when the code it excused goes away.
#include <cstdint>

namespace mudb::sql {

int64_t NothingToExcuse() {
  // mudb-lint: allow(no-raw-clock) -- the clock read was removed  (expect-lint: stale-pragma)
  int64_t t = 0;
  return t;
}

}  // namespace mudb::sql
