// Positive fixture: malformed pragmas — a missing reason or an unknown
// rule name is an error, never a silent no-op.
#include <chrono>

namespace mudb::sql {

long MalformedPragmas() {
  auto a = std::chrono::steady_clock::now();  // mudb-lint: allow(no-raw-clock)  (expect-lint: bad-pragma, no-raw-clock)
  // mudb-lint: allow(no-such-rule) -- reason present  (expect-lint: bad-pragma)
  auto b = std::chrono::steady_clock::now();  // expect-lint: no-raw-clock
  return (b - a).count();
}

}  // namespace mudb::sql
