// Positive fixture: hash-order iteration in a result-producing module,
// over a local, a typedef alias, and a cross-file accessor.
#include <unordered_map>
#include <unordered_set>

#include "src/model/unordered_decl.h"

namespace mudb::engine {

using SeenSet = std::unordered_set<int>;

int HashOrderLeaks(const model::FixtureValuation& v) {
  std::unordered_map<int, int> weights;
  SeenSet seen;
  int acc = 0;
  for (const auto& [key, w] : weights) acc += key * w;  // expect-lint: no-unordered-iteration-in-results
  for (int s : seen) acc += s;                          // expect-lint: no-unordered-iteration-in-results
  for (const auto& [a, b] : v.the_map()) acc += a - b;  // expect-lint: no-unordered-iteration-in-results
  return acc;
}

}  // namespace mudb::engine
