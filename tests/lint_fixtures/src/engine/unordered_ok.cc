// Negative fixture: ordered containers iterate freely; unordered
// containers used for lookup only are fine; a variable named like one in
// ANOTHER unrelated file (ground.cc's `base`) must not alias here.
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace mudb::engine {

int OrderSafeUses() {
  std::map<std::string, int> ordered;
  std::vector<std::string> base;  // same name as an unordered member elsewhere
  std::unordered_set<int> lookup;
  lookup.insert(7);
  int acc = 0;
  for (const auto& [k, val] : ordered) acc += static_cast<int>(k.size()) + val;
  for (const std::string& c : base) acc += static_cast<int>(c.size());
  if (lookup.count(acc) > 0) ++acc;
  return acc;
}

}  // namespace mudb::engine
