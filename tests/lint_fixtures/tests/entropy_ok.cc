// Negative fixture: no-ambient-entropy is scoped to src/ — test code may
// read the environment (e.g. to detect a sanitizer run).
#include <cstdlib>

namespace {

bool UnderTsan() { return std::getenv("TSAN_OPTIONS") != nullptr; }

}  // namespace

int FixtureMain() { return UnderTsan() ? 1 : 0; }
