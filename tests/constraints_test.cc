// Tests for src/constraints: atoms, formula folding, NNF/DNF, homogenization,
// and the asymptotic truth evaluation of Lemmas 8.2/8.4.

#include <gtest/gtest.h>

#include "src/constraints/real_formula.h"
#include "src/util/rng.h"

namespace mudb::constraints {
namespace {

using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

TEST(CmpOpTest, NegationIsInvolutionOnTruth) {
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq, CmpOp::kNeq,
                   CmpOp::kGe, CmpOp::kGt}) {
    for (int sign : {-1, 0, 1}) {
      EXPECT_NE(CmpTruthFromSign(op, sign),
                CmpTruthFromSign(NegateCmpOp(op), sign));
    }
  }
}

TEST(CmpOpTest, TruthTable) {
  EXPECT_TRUE(CmpTruthFromSign(CmpOp::kLt, -1));
  EXPECT_FALSE(CmpTruthFromSign(CmpOp::kLt, 0));
  EXPECT_TRUE(CmpTruthFromSign(CmpOp::kLe, 0));
  EXPECT_TRUE(CmpTruthFromSign(CmpOp::kEq, 0));
  EXPECT_FALSE(CmpTruthFromSign(CmpOp::kEq, 1));
  EXPECT_TRUE(CmpTruthFromSign(CmpOp::kNeq, 1));
  EXPECT_TRUE(CmpTruthFromSign(CmpOp::kGe, 0));
  EXPECT_TRUE(CmpTruthFromSign(CmpOp::kGt, 1));
}

TEST(RealFormulaTest, ConstantAtomsFold) {
  EXPECT_EQ(RealFormula::Cmp(C(-1), CmpOp::kLt).kind(),
            RealFormula::Kind::kTrue);
  EXPECT_EQ(RealFormula::Cmp(C(1), CmpOp::kLt).kind(),
            RealFormula::Kind::kFalse);
  EXPECT_EQ(RealFormula::Cmp(C(0), CmpOp::kEq).kind(),
            RealFormula::Kind::kTrue);
  EXPECT_EQ(RealFormula::Cmp(Polynomial(), CmpOp::kNeq).kind(),
            RealFormula::Kind::kFalse);
}

TEST(RealFormulaTest, AndOrFolding) {
  RealFormula atom = RealFormula::Cmp(Z(0), CmpOp::kLt);
  std::vector<RealFormula> v1;
  v1.push_back(RealFormula::True());
  v1.push_back(atom);
  EXPECT_EQ(RealFormula::And(v1).kind(), RealFormula::Kind::kAtom);

  std::vector<RealFormula> v2;
  v2.push_back(RealFormula::False());
  v2.push_back(atom);
  EXPECT_EQ(RealFormula::And(v2).kind(), RealFormula::Kind::kFalse);
  EXPECT_EQ(RealFormula::Or(v2).kind(), RealFormula::Kind::kAtom);

  std::vector<RealFormula> v3;
  v3.push_back(RealFormula::True());
  EXPECT_EQ(RealFormula::Or(v3).kind(), RealFormula::Kind::kTrue);
  EXPECT_EQ(RealFormula::And({}).kind(), RealFormula::Kind::kTrue);
  EXPECT_EQ(RealFormula::Or({}).kind(), RealFormula::Kind::kFalse);
}

TEST(RealFormulaTest, NestedAndOrFlatten) {
  RealFormula a = RealFormula::Cmp(Z(0), CmpOp::kLt);
  RealFormula b = RealFormula::Cmp(Z(1), CmpOp::kGt);
  RealFormula c = RealFormula::Cmp(Z(2), CmpOp::kLe);
  std::vector<RealFormula> inner;
  inner.push_back(a);
  inner.push_back(b);
  std::vector<RealFormula> outer;
  outer.push_back(RealFormula::And(inner));
  outer.push_back(c);
  RealFormula f = RealFormula::And(outer);
  EXPECT_EQ(f.children().size(), 3u);
}

TEST(RealFormulaTest, NotOnConstantsAndAtoms) {
  EXPECT_EQ(RealFormula::Not(RealFormula::True()).kind(),
            RealFormula::Kind::kFalse);
  RealFormula a = RealFormula::Cmp(Z(0), CmpOp::kLt);
  RealFormula na = RealFormula::Not(a);
  ASSERT_EQ(na.kind(), RealFormula::Kind::kAtom);
  EXPECT_EQ(na.atom().op, CmpOp::kGe);
  // Double negation restores the original op.
  EXPECT_EQ(RealFormula::Not(na).atom().op, CmpOp::kLt);
}

TEST(RealFormulaTest, EvaluateAtPoint) {
  // (z0 < 0 || z1 > 0) && z0 + z1 <= 1
  std::vector<RealFormula> disj;
  disj.push_back(RealFormula::Cmp(Z(0), CmpOp::kLt));
  disj.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  std::vector<RealFormula> conj;
  conj.push_back(RealFormula::Or(disj));
  conj.push_back(RealFormula::Cmp(Z(0) + Z(1) - C(1), CmpOp::kLe));
  RealFormula f = RealFormula::And(conj);
  EXPECT_TRUE(f.EvaluateAt({-1.0, 0.0}));
  EXPECT_TRUE(f.EvaluateAt({0.5, 0.5}));
  EXPECT_FALSE(f.EvaluateAt({0.5, -0.5}));
  EXPECT_FALSE(f.EvaluateAt({2.0, 3.0}));
}

TEST(RealFormulaTest, StructureQueries) {
  RealFormula f = RealFormula::And([] {
    std::vector<RealFormula> v;
    v.push_back(RealFormula::Cmp(Z(0) * Z(1), CmpOp::kLt));
    v.push_back(RealFormula::Cmp(Z(3), CmpOp::kGe));
    return v;
  }());
  EXPECT_EQ(f.AtomCount(), 2u);
  EXPECT_EQ(f.NumVariables(), 4);
  EXPECT_FALSE(f.IsLinear());
  EXPECT_EQ(f.UsedVariables(), (std::set<int>{0, 1, 3}));
}

TEST(RealFormulaTest, RemapVariables) {
  RealFormula f = RealFormula::Cmp(Z(2) - Z(5), CmpOp::kLt);
  std::vector<int> remap(6, -1);
  remap[2] = 0;
  remap[5] = 1;
  RealFormula g = f.RemapVariables(remap);
  EXPECT_EQ(g.UsedVariables(), (std::set<int>{0, 1}));
  EXPECT_TRUE(g.EvaluateAt({1.0, 2.0}));
  EXPECT_FALSE(g.EvaluateAt({2.0, 1.0}));
}

// ---- Asymptotic truth -------------------------------------------------------

TEST(AsymptoticTest, LinearAtomUsesLeadingCoefficient) {
  // z0 - 5 < 0 along direction +1 is eventually false, along -1 true.
  RealFormula f = RealFormula::Cmp(Z(0) - C(5), CmpOp::kLt);
  EXPECT_FALSE(f.AsymptoticTruth({1.0}));
  EXPECT_TRUE(f.AsymptoticTruth({-1.0}));
}

TEST(AsymptoticTest, ConstantTermBreaksTiesWhenLeadingVanishes) {
  // z0 - z1 + 1 > 0 along the diagonal (1,1): leading coefficient cancels,
  // the constant +1 decides.
  RealFormula f = RealFormula::Cmp(Z(0) - Z(1) + C(1), CmpOp::kGt);
  EXPECT_TRUE(f.AsymptoticTruth({1.0, 1.0}));
  EXPECT_FALSE(f.AsymptoticTruth({0.0, 1.0}));
}

TEST(AsymptoticTest, EqualityRequiresIdenticalVanishing) {
  RealFormula eq = RealFormula::Cmp(Z(0) - Z(1), CmpOp::kEq);
  EXPECT_TRUE(eq.AsymptoticTruth({1.0, 1.0}));
  EXPECT_FALSE(eq.AsymptoticTruth({1.0, 2.0}));
  // z0 - z1 + 3 = 0 fails even on the diagonal (constant survives).
  RealFormula eq2 = RealFormula::Cmp(Z(0) - Z(1) + C(3), CmpOp::kEq);
  EXPECT_FALSE(eq2.AsymptoticTruth({1.0, 1.0}));
}

TEST(AsymptoticTest, HigherDegreeDominates) {
  // -z0^2 + 100 z1 < 0: along any direction with a0 != 0 eventually true.
  RealFormula f =
      RealFormula::Cmp(-(Z(0) * Z(0)) + C(100) * Z(1), CmpOp::kLt);
  EXPECT_TRUE(f.AsymptoticTruth({0.1, 1.0}));
  EXPECT_FALSE(f.AsymptoticTruth({0.0, 1.0}));
}

// Property (Lemma 8.2): the asymptotic value matches evaluation at large k.
class AsymptoticPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AsymptoticPropertyTest, MatchesEvaluationFarOut) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    // Random conjunction/disjunction of random linear+quadratic atoms.
    std::vector<RealFormula> atoms;
    int n = 3;
    for (int i = 0; i < 4; ++i) {
      Polynomial p = C(rng.Uniform(-2, 2));
      for (int v = 0; v < n; ++v) {
        p = p + C(rng.Uniform(-2, 2)) * Z(v);
        if (rng.Bernoulli(0.3)) {
          p = p + C(rng.Uniform(-1, 1)) * Z(v) * Z(v);
        }
      }
      CmpOp op = rng.Bernoulli(0.5) ? CmpOp::kLt : CmpOp::kGe;
      atoms.push_back(RealFormula::Cmp(p, op));
    }
    std::vector<RealFormula> lhs{atoms[0], atoms[1]};
    std::vector<RealFormula> rhs{atoms[2], RealFormula::Not(atoms[3])};
    std::vector<RealFormula> both{RealFormula::And(lhs),
                                  RealFormula::Or(rhs)};
    RealFormula f = RealFormula::Or(both);

    std::vector<double> a(n);
    for (int v = 0; v < n; ++v) a[v] = rng.Uniform(-1, 1);
    bool asym = f.AsymptoticTruth(a, 1e-9);
    // Evaluate at a very large multiple of the direction.
    double k = 1e8;
    std::vector<double> far(n);
    for (int v = 0; v < n; ++v) far[v] = k * a[v];
    bool eval = f.EvaluateAt(far);
    EXPECT_EQ(asym, eval) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsymptoticPropertyTest,
                         ::testing::Values(5, 6, 7, 8));

// ---- NNF / DNF --------------------------------------------------------------

TEST(NnfTest, PushesNegationsOntoAtoms) {
  RealFormula a = RealFormula::Cmp(Z(0), CmpOp::kLt);
  RealFormula b = RealFormula::Cmp(Z(1), CmpOp::kGt);
  std::vector<RealFormula> v{a, b};
  RealFormula f = RealFormula::Not(RealFormula::And(v));
  RealFormula nnf = f.ToNnf();
  EXPECT_EQ(nnf.kind(), RealFormula::Kind::kOr);
  for (const RealFormula& c : nnf.children()) {
    EXPECT_EQ(c.kind(), RealFormula::Kind::kAtom);
  }
}

TEST(DnfTest, SimpleDistribution) {
  // (a || b) && c -> (a && c) || (b && c): 2 disjuncts of 2 atoms.
  RealFormula a = RealFormula::Cmp(Z(0), CmpOp::kLt);
  RealFormula b = RealFormula::Cmp(Z(1), CmpOp::kLt);
  RealFormula c = RealFormula::Cmp(Z(2), CmpOp::kLt);
  std::vector<RealFormula> ors{a, b};
  std::vector<RealFormula> ands{RealFormula::Or(ors), c};
  RealFormula f = RealFormula::And(ands);
  auto dnf = f.ToDnf();
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 2u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
  EXPECT_EQ((*dnf)[1].size(), 2u);
}

TEST(DnfTest, RespectsLimit) {
  // (a1 || b1) && ... && (a12 || b12) has 2^12 disjuncts.
  std::vector<RealFormula> clauses;
  for (int i = 0; i < 12; ++i) {
    std::vector<RealFormula> ors;
    ors.push_back(RealFormula::Cmp(Z(2 * i), CmpOp::kLt));
    ors.push_back(RealFormula::Cmp(Z(2 * i + 1), CmpOp::kLt));
    clauses.push_back(RealFormula::Or(ors));
  }
  RealFormula f = RealFormula::And(clauses);
  auto too_small = f.ToDnf(100);
  EXPECT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), util::StatusCode::kResourceExhausted);
  auto big_enough = f.ToDnf(5000);
  ASSERT_TRUE(big_enough.ok());
  EXPECT_EQ(big_enough->size(), 4096u);
}

TEST(DnfTest, ConstantsHandled) {
  auto dnf_true = RealFormula::True().ToDnf();
  ASSERT_TRUE(dnf_true.ok());
  ASSERT_EQ(dnf_true->size(), 1u);
  EXPECT_TRUE((*dnf_true)[0].empty());
  auto dnf_false = RealFormula::False().ToDnf();
  ASSERT_TRUE(dnf_false.ok());
  EXPECT_TRUE(dnf_false->empty());
}

// Property: DNF is logically equivalent to the original formula.
class DnfPropertyTest : public ::testing::TestWithParam<int> {};

RealFormula RandomLinearFormula(util::Rng& rng, int vars, int depth) {
  if (depth == 0 || rng.Bernoulli(0.3)) {
    Polynomial p = C(rng.Uniform(-1, 1));
    for (int v = 0; v < vars; ++v) {
      p = p + C(rng.Uniform(-2, 2)) * Z(v);
    }
    static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                                 CmpOp::kGe};
    return RealFormula::Cmp(p, kOps[rng.UniformInt(0, 3)]);
  }
  int arity = static_cast<int>(rng.UniformInt(2, 3));
  std::vector<RealFormula> children;
  for (int i = 0; i < arity; ++i) {
    children.push_back(RandomLinearFormula(rng, vars, depth - 1));
  }
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return RealFormula::And(std::move(children));
    case 1:
      return RealFormula::Or(std::move(children));
    default:
      return RealFormula::Not(std::move(children[0]));
  }
}

TEST_P(DnfPropertyTest, DnfEquivalentOnRandomPoints) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    RealFormula f = RandomLinearFormula(rng, 3, 3);
    auto dnf = f.ToDnf();
    ASSERT_TRUE(dnf.ok());
    for (int pt = 0; pt < 50; ++pt) {
      std::vector<double> x{rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                            rng.Uniform(-3, 3)};
      bool orig = f.EvaluateAt(x);
      bool via_dnf = false;
      for (const Conjunction& conj : *dnf) {
        bool all = true;
        for (const RealAtom& atom : conj) {
          if (!atom.EvaluateAt(x)) {
            all = false;
            break;
          }
        }
        if (all) {
          via_dnf = true;
          break;
        }
      }
      EXPECT_EQ(orig, via_dnf);
    }
  }
}

TEST_P(DnfPropertyTest, NnfEquivalentOnRandomPoints) {
  util::Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 30; ++iter) {
    RealFormula f = RandomLinearFormula(rng, 3, 3);
    RealFormula nnf = f.ToNnf();
    for (int pt = 0; pt < 50; ++pt) {
      std::vector<double> x{rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                            rng.Uniform(-3, 3)};
      EXPECT_EQ(f.EvaluateAt(x), nnf.EvaluateAt(x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfPropertyTest, ::testing::Values(1, 2, 3));

TEST(FormatFormulaTest, UsesSuppliedVariableNames) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(Z(0) * Z(0) - C(4), CmpOp::kGe));
  RealFormula f = RealFormula::And(parts);
  std::string text = FormatFormula(f, [](int i) {
    return "\xE2\x8A\xA4" + std::to_string(10 + i);  // ⊤10, ⊤11
  });
  EXPECT_NE(text.find("\xE2\x8A\xA4" "10"), std::string::npos);
  EXPECT_NE(text.find("\xE2\x8A\xA4" "11"), std::string::npos);
  EXPECT_EQ(text.find("z0"), std::string::npos);
  // Default naming matches ToString.
  EXPECT_EQ(FormatFormula(f, [](int i) { return "z" + std::to_string(i); }),
            f.ToString());
}

TEST(HomogenizeTest, DropsConstants) {
  Conjunction conj{{Z(0) - C(5), CmpOp::kLt}, {Z(1) + C(2), CmpOp::kGe}};
  Conjunction hom = HomogenizeLinear(conj);
  ASSERT_EQ(hom.size(), 2u);
  EXPECT_DOUBLE_EQ(hom[0].poly.ConstantTerm(), 0.0);
  EXPECT_DOUBLE_EQ(hom[1].poly.ConstantTerm(), 0.0);
  EXPECT_EQ(hom[0].op, CmpOp::kLt);
}

}  // namespace
}  // namespace mudb::constraints
