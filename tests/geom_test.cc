// Tests for src/geom: vector helpers, ball volumes, sampling, arc sets.

#include <cmath>

#include <gtest/gtest.h>

#include "src/geom/arcs.h"
#include "src/geom/geometry.h"

namespace mudb::geom {
namespace {

TEST(VectorTest, NormDotAddScaled) {
  Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
  Vec b{1.0, -1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), -1.0);
  Vec c = AddScaled(a, 2.0, b);
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(VectorTest, AddScaledInPlaceMatchesAllocating) {
  Vec a{3.0, 4.0};
  Vec b{1.0, -1.0};
  Vec expected = AddScaled(a, 2.0, b);
  AddScaledInPlace(a, 2.0, b);
  EXPECT_EQ(a, expected);
}

TEST(SamplingTest, InPlaceSphereSamplingMatchesAllocating) {
  // Same seed ⇒ identical draws: the overloads must consume the rng the
  // same way and produce the same bits.
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  Vec scratch;
  for (int n : {1, 3, 7}) {
    for (int i = 0; i < 50; ++i) {
      Vec fresh = SampleUnitSphere(n, rng_a);
      SampleUnitSphere(n, rng_b, scratch);
      ASSERT_EQ(fresh, scratch) << "n " << n << " draw " << i;
    }
  }
}

TEST(BallVolumeTest, KnownClosedForms) {
  EXPECT_NEAR(BallVolume(0), 1.0, 1e-12);              // Vol(R^0) = 1 (§4)
  EXPECT_NEAR(BallVolume(1), 2.0, 1e-12);              // [-1, 1]
  EXPECT_NEAR(BallVolume(2), M_PI, 1e-12);
  EXPECT_NEAR(BallVolume(3), 4.0 / 3.0 * M_PI, 1e-12);
  EXPECT_NEAR(BallVolume(2, 2.0), 4 * M_PI, 1e-12);    // scales as r^n
  EXPECT_NEAR(BallVolume(3, 0.5), BallVolume(3) / 8, 1e-12);
}

TEST(SamplingTest, SphereSamplesHaveUnitNorm) {
  util::Rng rng(1);
  for (int n : {1, 2, 3, 7}) {
    for (int i = 0; i < 100; ++i) {
      Vec v = SampleUnitSphere(n, rng);
      ASSERT_EQ(static_cast<int>(v.size()), n);
      EXPECT_NEAR(Norm(v), 1.0, 1e-12);
    }
  }
}

TEST(SamplingTest, SphereIsotropy) {
  // Each coordinate's sign should be a fair coin; covariance ~ I/n.
  util::Rng rng(2);
  const int n = 3, m = 60000;
  Vec mean(n, 0.0);
  for (int i = 0; i < m; ++i) {
    Vec v = SampleUnitSphere(n, rng);
    for (int j = 0; j < n; ++j) mean[j] += v[j];
  }
  for (int j = 0; j < n; ++j) {
    EXPECT_NEAR(mean[j] / m, 0.0, 0.01);
  }
}

TEST(SamplingTest, BallSamplesInsideAndRadiusDistribution) {
  util::Rng rng(3);
  const int n = 2, m = 50000;
  int inside_half = 0;
  for (int i = 0; i < m; ++i) {
    Vec v = SampleUnitBall(n, rng);
    double r = Norm(v);
    EXPECT_LE(r, 1.0 + 1e-12);
    if (r <= 0.5) ++inside_half;
  }
  // P(||x|| <= 1/2) = (1/2)^n = 1/4 in 2D.
  EXPECT_NEAR(static_cast<double>(inside_half) / m, 0.25, 0.01);
}

// ---- ArcSet -----------------------------------------------------------------

TEST(ArcSetTest, EmptyAndFull) {
  ArcSet empty;
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_DOUBLE_EQ(empty.Measure(), 0.0);
  ArcSet full = ArcSet::FullCircle();
  EXPECT_NEAR(full.Measure(), 2 * M_PI, 1e-12);
  EXPECT_NEAR(full.Fraction(), 1.0, 1e-12);
}

TEST(ArcSetTest, AddSimpleInterval) {
  ArcSet s;
  s.AddInterval(0.0, 1.0);
  EXPECT_NEAR(s.Measure(), 1.0, 1e-12);
  s.AddInterval(0.5, 1.5);  // overlapping: union is [0, 1.5)
  EXPECT_NEAR(s.Measure(), 1.5, 1e-12);
  s.AddInterval(2.0, 2.5);  // disjoint
  EXPECT_NEAR(s.Measure(), 2.0, 1e-12);
  EXPECT_EQ(s.arcs().size(), 2u);
}

TEST(ArcSetTest, WrapAroundSplit) {
  ArcSet s;
  s.AddInterval(M_PI - 0.5, M_PI + 0.5);  // crosses the ±π cut
  EXPECT_NEAR(s.Measure(), 1.0, 1e-12);
  EXPECT_EQ(s.arcs().size(), 2u);
}

TEST(ArcSetTest, FullFromOversizedInterval) {
  ArcSet s;
  s.AddInterval(0.0, 10.0);  // width > 2π
  EXPECT_NEAR(s.Fraction(), 1.0, 1e-12);
}

TEST(ArcSetTest, IntersectAndUnion) {
  ArcSet a, b;
  a.AddInterval(0.0, 2.0);
  b.AddInterval(1.0, 3.0);
  EXPECT_NEAR(a.Intersect(b).Measure(), 1.0, 1e-12);
  EXPECT_NEAR(a.Union(b).Measure(), 3.0, 1e-12);
  ArcSet c;
  c.AddInterval(-3.0, -2.5);
  EXPECT_NEAR(a.Intersect(c).Measure(), 0.0, 1e-12);
}

TEST(ArcSetTest, ComplementMeasure) {
  ArcSet a;
  a.AddInterval(0.5, 1.25);
  a.AddInterval(2.0, 2.25);
  ArcSet comp = a.Complement();
  EXPECT_NEAR(a.Measure() + comp.Measure(), 2 * M_PI, 1e-12);
  EXPECT_NEAR(a.Intersect(comp).Measure(), 0.0, 1e-12);
}

class ArcPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArcPropertyTest, SetAlgebraInvariants) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    ArcSet a, b;
    for (int i = 0; i < 3; ++i) {
      double lo = rng.Uniform(-8, 8);
      a.AddInterval(lo, lo + rng.Uniform(0, 2.5));
      double lo2 = rng.Uniform(-8, 8);
      b.AddInterval(lo2, lo2 + rng.Uniform(0, 2.5));
    }
    // Inclusion-exclusion.
    EXPECT_NEAR(a.Union(b).Measure() + a.Intersect(b).Measure(),
                a.Measure() + b.Measure(), 1e-9);
    // De Morgan.
    EXPECT_NEAR(a.Union(b).Complement().Measure(),
                a.Complement().Intersect(b.Complement()).Measure(), 1e-9);
    // Idempotence.
    EXPECT_NEAR(a.Union(a).Measure(), a.Measure(), 1e-12);
    EXPECT_NEAR(a.Intersect(a).Measure(), a.Measure(), 1e-12);
    // Bounds.
    EXPECT_LE(a.Measure(), 2 * M_PI + 1e-12);
    EXPECT_GE(a.Measure(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mudb::geom
