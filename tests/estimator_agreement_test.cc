// Differential test harness for the randomized estimators: on small linear
// formulae where an exact engine applies (NuExact2D for ≤ 2 variables,
// NuExactOrder for order formulae), the FPRAS and the AFPRAS must agree with
// the exact ν within their respective (ε, δ) guarantees across a fixed
// battery of seeds. This is the safety net under the parallel sampling
// runtime: a substream or reduction bug shows up here as a systematic bias
// long before it is visible in any single-seed unit test.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/measure/afpras.h"
#include "src/measure/fpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

constexpr int kSeedBattery[] = {101, 202, 303, 404, 505};

// A fixed battery of 2-variable linear formulae with nontrivial exact ν.
std::vector<RealFormula> TwoVarBattery() {
  std::vector<RealFormula> battery;
  {
    // Halfplane: ν = 1/2.
    battery.push_back(RealFormula::Cmp(Z(0) + C(2) * Z(1), CmpOp::kLt));
  }
  {
    // Quadrant: ν = 1/4.
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
    parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
    battery.push_back(RealFormula::And(std::move(parts)));
  }
  {
    // Union of two sectors.
    std::vector<RealFormula> left;
    left.push_back(RealFormula::Cmp(Z(0), CmpOp::kLt));
    left.push_back(RealFormula::Cmp(Z(1) - Z(0), CmpOp::kLt));
    std::vector<RealFormula> right;
    right.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
    right.push_back(RealFormula::Cmp(Z(0) - C(3) * Z(1), CmpOp::kLt));
    std::vector<RealFormula> ors{RealFormula::And(std::move(left)),
                                 RealFormula::And(std::move(right))};
    battery.push_back(RealFormula::Or(std::move(ors)));
  }
  {
    // Oblique sector with constant offsets (vanish under homogenization).
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(Z(0) - Z(1) + C(5), CmpOp::kLe));
    parts.push_back(RealFormula::Cmp(-Z(0) - C(2) * Z(1) - C(7), CmpOp::kLe));
    battery.push_back(RealFormula::And(std::move(parts)));
  }
  return battery;
}

// Order formulae over > 2 variables: NuExactOrder provides the ground truth
// (rational), the AFPRAS must match additively. (The FPRAS leg runs on the
// 2-variable battery; order formulae in higher dimension produce thin cones
// whose relative-error constants make the test needlessly slow.)
std::vector<RealFormula> OrderBattery() {
  std::vector<RealFormula> battery;
  {
    // z0 < z1 < z2: ν = 1/6.
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt));
    parts.push_back(RealFormula::Cmp(Z(1) - Z(2), CmpOp::kLt));
    battery.push_back(RealFormula::And(std::move(parts)));
  }
  {
    // Positive and sorted: z0 > 0 ∧ z0 < z1: ν = 1/8.
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
    parts.push_back(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt));
    battery.push_back(RealFormula::And(std::move(parts)));
  }
  {
    // Max of three: z0 > z1 ∧ z0 > z2 ∨ z1 < 0.
    std::vector<RealFormula> max_parts;
    max_parts.push_back(RealFormula::Cmp(Z(1) - Z(0), CmpOp::kLt));
    max_parts.push_back(RealFormula::Cmp(Z(2) - Z(0), CmpOp::kLt));
    std::vector<RealFormula> ors{RealFormula::And(std::move(max_parts)),
                                 RealFormula::Cmp(Z(1), CmpOp::kLt)};
    battery.push_back(RealFormula::Or(std::move(ors)));
  }
  return battery;
}

TEST(EstimatorAgreementTest, FprasMatchesExact2DAcrossSeeds) {
  const double eps = 0.05;
  for (const RealFormula& f : TwoVarBattery()) {
    auto exact = NuExact2D(f);
    ASSERT_TRUE(exact.ok());
    ASSERT_GT(*exact, 0.05);  // battery avoids the vacuous near-0 regime
    for (int seed : kSeedBattery) {
      FprasOptions opts;
      opts.epsilon = eps;
      util::Rng rng(seed);
      auto approx = FprasConjunctive(f, opts, rng);
      ASSERT_TRUE(approx.ok());
      // 4× the target ε absorbs the constant-probability failure mode of
      // the Karp–Luby analysis while still catching systematic bias.
      EXPECT_LT(std::fabs(approx->estimate / *exact - 1.0), 4 * eps)
          << "seed " << seed << " exact " << *exact << " approx "
          << approx->estimate;
    }
  }
}

TEST(EstimatorAgreementTest, AfprasMatchesExact2DAcrossSeeds) {
  const double eps = 0.02;
  for (const RealFormula& f : TwoVarBattery()) {
    auto exact = NuExact2D(f);
    ASSERT_TRUE(exact.ok());
    for (int seed : kSeedBattery) {
      AfprasOptions opts;
      opts.epsilon = eps;
      opts.delta = 0.001;  // high confidence keeps the battery stable
      util::Rng rng(seed);
      auto approx = Afpras(f, opts, rng);
      ASSERT_TRUE(approx.ok());
      EXPECT_LT(std::fabs(approx->estimate - *exact), eps)
          << "seed " << seed << " exact " << *exact;
    }
  }
}

TEST(EstimatorAgreementTest, AfprasMatchesExactOrderAcrossSeeds) {
  const double eps = 0.02;
  for (const RealFormula& f : OrderBattery()) {
    ASSERT_TRUE(IsOrderFormula(f));
    auto exact = NuExactOrder(f);
    ASSERT_TRUE(exact.ok());
    double truth = exact->ToDouble();
    for (int seed : kSeedBattery) {
      AfprasOptions opts;
      opts.epsilon = eps;
      opts.delta = 0.001;
      util::Rng rng(seed);
      auto approx = Afpras(f, opts, rng);
      ASSERT_TRUE(approx.ok());
      EXPECT_LT(std::fabs(approx->estimate - truth), eps)
          << "seed " << seed << " exact " << truth;
    }
  }
}

TEST(EstimatorAgreementTest, FprasAndAfprasAgreeOnOrderFormulae) {
  // Both engines apply to linear order formulae: their estimates must agree
  // with each other within the sum of their guarantees, on every seed.
  for (const RealFormula& f : OrderBattery()) {
    auto exact = NuExactOrder(f);
    ASSERT_TRUE(exact.ok());
    double truth = exact->ToDouble();
    for (int seed : kSeedBattery) {
      FprasOptions fopts;
      fopts.epsilon = 0.1;
      util::Rng frng(seed);
      auto fpras = FprasConjunctive(f, fopts, frng);
      ASSERT_TRUE(fpras.ok());
      AfprasOptions aopts;
      aopts.epsilon = 0.02;
      aopts.delta = 0.001;
      util::Rng arng(seed);
      auto afpras = Afpras(f, aopts, arng);
      ASSERT_TRUE(afpras.ok());
      double band = 4 * fopts.epsilon * truth + aopts.epsilon;
      EXPECT_LT(std::fabs(fpras->estimate - afpras->estimate), band)
          << "seed " << seed << " fpras " << fpras->estimate << " afpras "
          << afpras->estimate << " truth " << truth;
    }
  }
}

}  // namespace
}  // namespace mudb::measure
