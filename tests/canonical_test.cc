// Tests for convex/canonical.h: the content-addressed body keys the dedup
// and caching layers are built on. Invariance uses exactly representable
// inputs (integer coefficients, integer / power-of-two scales), where the
// canonical division is bit-exact; collision freedom sweeps 10k random
// systems.

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/convex/canonical.h"

namespace mudb::convex {
namespace {

struct Row {
  geom::Vec a;
  double b;
};

ConvexBody BodyFromRows(int dim, const std::vector<Row>& rows,
                        const std::vector<BallConstraint>& balls) {
  ConvexBody body(dim);
  for (const Row& row : rows) body.AddHalfspace(row.a, row.b);
  for (const BallConstraint& ball : balls) body.AddBall(ball.center, ball.radius);
  return body;
}

TEST(CanonicalTest, RowPermutationInvariance) {
  std::mt19937_64 gen(1);
  std::uniform_int_distribution<int> coeff(-5, 5);
  for (int trial = 0; trial < 50; ++trial) {
    int dim = 2 + trial % 4;
    std::vector<Row> rows;
    for (int i = 0; i < 6; ++i) {
      geom::Vec a(dim);
      for (int j = 0; j < dim; ++j) a[j] = coeff(gen);
      if (std::all_of(a.begin(), a.end(), [](double v) { return v == 0; })) {
        a[0] = 1;
      }
      rows.push_back({a, static_cast<double>(coeff(gen))});
    }
    std::vector<BallConstraint> balls{{geom::Vec(dim, 0.0), 1.0},
                                      {geom::Vec(dim, 0.5), 2.0}};
    CanonicalBodyKey base = CanonicalizeBody(BodyFromRows(dim, rows, balls));
    std::shuffle(rows.begin(), rows.end(), gen);
    std::shuffle(balls.begin(), balls.end(), gen);
    CanonicalBodyKey shuffled =
        CanonicalizeBody(BodyFromRows(dim, rows, balls));
    EXPECT_EQ(base, shuffled) << "trial " << trial;
  }
}

TEST(CanonicalTest, RowScalingInvariance) {
  // Positive rescaling of (a, b) is representation noise. With integer
  // coefficients and integer or power-of-two scales, the products are exact
  // and the canonical division cancels them bit-for-bit.
  std::mt19937_64 gen(2);
  std::uniform_int_distribution<int> coeff(-7, 7);
  const double scales[] = {2.0, 0.5, 4.0, 3.0, 7.0, 0.25, 5.0};
  for (int trial = 0; trial < 50; ++trial) {
    int dim = 1 + trial % 5;
    std::vector<Row> rows;
    for (int i = 0; i < 5; ++i) {
      geom::Vec a(dim);
      for (int j = 0; j < dim; ++j) a[j] = coeff(gen);
      if (std::all_of(a.begin(), a.end(), [](double v) { return v == 0; })) {
        a[trial % dim] = -3;
      }
      rows.push_back({a, static_cast<double>(coeff(gen))});
    }
    CanonicalBodyKey base = CanonicalizeBody(BodyFromRows(dim, rows, {}));
    std::vector<Row> scaled = rows;
    for (size_t i = 0; i < scaled.size(); ++i) {
      double c = scales[(trial + i) % (sizeof(scales) / sizeof(scales[0]))];
      for (double& v : scaled[i].a) v *= c;
      scaled[i].b *= c;
    }
    CanonicalBodyKey rescaled = CanonicalizeBody(BodyFromRows(dim, scaled, {}));
    EXPECT_EQ(base, rescaled) << "trial " << trial;
  }
}

TEST(CanonicalTest, DuplicatedConstraintsCollapse) {
  geom::Vec a{1.0, -2.0};
  std::vector<Row> once{{a, 3.0}};
  std::vector<Row> thrice{{a, 3.0}, {a, 3.0}, {a, 3.0}};
  // A scaled duplicate is still the same constraint.
  std::vector<Row> scaled_dup{{a, 3.0}, {geom::Vec{2.0, -4.0}, 6.0}};
  CanonicalBodyKey k1 = CanonicalizeBody(BodyFromRows(2, once, {}));
  EXPECT_EQ(k1, CanonicalizeBody(BodyFromRows(2, thrice, {})));
  EXPECT_EQ(k1, CanonicalizeBody(BodyFromRows(2, scaled_dup, {})));

  // Duplicate balls collapse too.
  BallConstraint ball{geom::Vec{0.0, 0.0}, 1.0};
  EXPECT_EQ(CanonicalizeBody(BodyFromRows(2, once, {ball})),
            CanonicalizeBody(BodyFromRows(2, once, {ball, ball})));
}

TEST(CanonicalTest, TrivialAndInfeasibleZeroRows) {
  // An all-zero row with b >= 0 carries no geometry; with b < 0 it empties
  // the body, which must be visible in the key.
  std::vector<Row> base{{geom::Vec{1.0, 0.0}, 1.0}};
  std::vector<Row> with_trivial = base;
  with_trivial.push_back({geom::Vec{0.0, 0.0}, 2.0});
  std::vector<Row> with_empty = base;
  with_empty.push_back({geom::Vec{0.0, 0.0}, -1.0});
  CanonicalBodyKey k = CanonicalizeBody(BodyFromRows(2, base, {}));
  EXPECT_EQ(k, CanonicalizeBody(BodyFromRows(2, with_trivial, {})));
  EXPECT_NE(k, CanonicalizeBody(BodyFromRows(2, with_empty, {})));
}

TEST(CanonicalTest, NegativeZeroCoefficientsAreCanonical) {
  std::vector<Row> pos{{geom::Vec{1.0, 0.0}, 0.0}};
  std::vector<Row> neg{{geom::Vec{1.0, -0.0}, -0.0}};
  EXPECT_EQ(CanonicalizeBody(BodyFromRows(2, pos, {})),
            CanonicalizeBody(BodyFromRows(2, neg, {})));
}

TEST(CanonicalTest, DistinctBodiesCollideFreeAcross10kSystems) {
  // 10k structurally distinct random systems must produce 10k distinct
  // keys. Coefficients are drawn from a wide integer range; a collision
  // here means either the hash or the canonicalization conflates distinct
  // geometry.
  std::mt19937_64 gen(3);
  std::uniform_int_distribution<int> coeff(-1000, 1000);
  std::uniform_int_distribution<int> dim_dist(1, 6);
  std::uniform_int_distribution<int> rows_dist(1, 8);
  std::set<CanonicalBodyKey> keys;
  std::set<std::vector<double>> seen_systems;
  int made = 0;
  while (made < 10000) {
    int dim = dim_dist(gen);
    int num_rows = rows_dist(gen);
    std::vector<Row> rows;
    for (int i = 0; i < num_rows; ++i) {
      geom::Vec a(dim);
      bool any = false;
      for (int j = 0; j < dim; ++j) {
        a[j] = coeff(gen);
        if (a[j] != 0) any = true;
      }
      if (!any) a[0] = 1;
      rows.push_back({a, static_cast<double>(coeff(gen))});
    }
    // Skip systems that are *canonically* equal to one already accepted
    // (row order, rescaling, duplicates) via an independent reference
    // normalization, so every accepted system is pairwise distinct
    // geometry and every key must be unique.
    std::vector<std::vector<double>> ref_rows;
    for (const Row& row : rows) {
      std::vector<double> r(row.a.begin(), row.a.end());
      r.push_back(row.b);
      double pivot = 0.0;
      for (double v : r) {
        if (v != 0.0) {
          pivot = std::fabs(v);
          break;
        }
      }
      if (pivot > 0.0) {
        for (double& v : r) v /= pivot;
      }
      ref_rows.push_back(std::move(r));
    }
    std::sort(ref_rows.begin(), ref_rows.end());
    ref_rows.erase(std::unique(ref_rows.begin(), ref_rows.end()),
                   ref_rows.end());
    std::vector<double> probe{static_cast<double>(dim)};
    for (const auto& r : ref_rows) {
      probe.insert(probe.end(), r.begin(), r.end());
    }
    if (!seen_systems.insert(probe).second) continue;
    ++made;
    keys.insert(CanonicalizeBody(BodyFromRows(dim, rows, {})));
  }
  EXPECT_EQ(keys.size(), 10000u);
}

TEST(CanonicalTest, TierRawAndSaltSeparateKeys) {
  ConvexBody body(2);
  body.AddHalfspace({1.0, 1.0}, 0.0);
  body.AddBall({0.0, 0.0}, 1.0);
  CanonicalBodyKey k = CanonicalizeBody(body);
  util::Fingerprint128 raw =
      RawBodyFingerprint(body, geom::Vec{0.0, 0.0}, 0.25, 1.5);
  CanonicalBodyKey t1 = CombineKeyWithParams(k, raw, 0.1, 0, 0, 42);
  CanonicalBodyKey t2 = CombineKeyWithParams(k, raw, 0.2, 0, 0, 42);
  CanonicalBodyKey t3 = CombineKeyWithParams(k, raw, 0.1, 0, 0, 43);
  EXPECT_NE(t1, t2);  // different ε tier
  EXPECT_NE(t1, t3);  // different rng salt
  EXPECT_EQ(t1, CombineKeyWithParams(k, raw, 0.1, 0, 0, 42));
  EXPECT_NE(t1, k);  // domain-separated from body keys

  // The raw form separates too: a rescaled representation of the same
  // canonical body (and likewise a perturbed inner seed) owns its own
  // estimate stream.
  ConvexBody scaled(2);
  scaled.AddHalfspace({2.0, 2.0}, 0.0);
  scaled.AddBall({0.0, 0.0}, 1.0);
  EXPECT_EQ(k, CanonicalizeBody(scaled));
  util::Fingerprint128 raw_scaled =
      RawBodyFingerprint(scaled, geom::Vec{0.0, 0.0}, 0.25, 1.5);
  EXPECT_NE(CombineKeyWithParams(k, raw_scaled, 0.1, 0, 0, 42), t1);
  util::Fingerprint128 raw_moved =
      RawBodyFingerprint(body, geom::Vec{0.1, 0.0}, 0.25, 1.5);
  EXPECT_NE(CombineKeyWithParams(k, raw_moved, 0.1, 0, 0, 42), t1);
}

TEST(CanonicalTest, RngForKeyIsAPureFunction) {
  ConvexBody body(3);
  body.AddHalfspace({1.0, 2.0, 3.0}, 1.0);
  body.AddBall({0.0, 0.0, 0.0}, 1.0);
  CanonicalBodyKey k = CanonicalizeBody(body);
  util::Rng r1 = RngForKey(k);
  util::Rng r2 = RngForKey(k);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(r1.Uniform01(), r2.Uniform01());
  }
  // A different key owns a different stream.
  body.AddHalfspace({1.0, 0.0, 0.0}, 0.0);
  util::Rng r3 = RngForKey(CanonicalizeBody(body));
  EXPECT_NE(RngForKey(k).Uniform01(), r3.Uniform01());
}

}  // namespace
}  // namespace mudb::convex
