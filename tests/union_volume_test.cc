// Tests for the Karp–Luby union-volume estimator.

#include <cmath>
#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "src/volume/union_volume.h"

namespace mudb::volume {
namespace {

// Quadrant cone of the unit ball selected by sign pattern (sx, sy):
// {x : sx·x >= 0, sy·y >= 0} ∩ B_1.
SeededBody Quadrant(int sx, int sy) {
  convex::ConvexBody body(2);
  body.AddHalfspace({static_cast<double>(-sx), 0.0}, 0.0);
  body.AddHalfspace({0.0, static_cast<double>(-sy)}, 0.0);
  body.AddBall({0.0, 0.0}, 1.0);
  std::vector<std::pair<geom::Vec, double>> hs = {
      {{static_cast<double>(-sx), 0.0}, 0.0},
      {{0.0, static_cast<double>(-sy)}, 0.0}};
  auto inner = convex::FindInnerBall(hs, 2, 1.0);
  MUDB_CHECK(inner.has_value());
  return SeededBody{std::move(body), *inner,
                    1.0 + geom::Norm(inner->center)};
}

TEST(UnionVolumeTest, EmptyInputIsZero) {
  util::Rng rng(1);
  auto r = EstimateUnionVolume({}, {}, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->volume, 0.0);
}

TEST(UnionVolumeTest, SingleQuadrant) {
  util::Rng rng(2);
  std::vector<SeededBody> bodies;
  bodies.push_back(Quadrant(1, 1));
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  auto r = EstimateUnionVolume(bodies, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->volume, M_PI / 4, 0.15 * M_PI / 4);
}

TEST(UnionVolumeTest, DisjointQuadrantsAdd) {
  util::Rng rng(3);
  std::vector<SeededBody> bodies;
  bodies.push_back(Quadrant(1, 1));
  bodies.push_back(Quadrant(-1, -1));
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  auto r = EstimateUnionVolume(bodies, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->volume, M_PI / 2, 0.15 * M_PI / 2);
}

TEST(UnionVolumeTest, DuplicateBodiesDoNotDoubleCount) {
  util::Rng rng(4);
  std::vector<SeededBody> bodies;
  bodies.push_back(Quadrant(1, 1));
  bodies.push_back(Quadrant(1, 1));
  bodies.push_back(Quadrant(1, 1));
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  auto r = EstimateUnionVolume(bodies, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->volume, M_PI / 4, 0.15 * M_PI / 4);
}

TEST(UnionVolumeTest, FourQuadrantsCoverTheBall) {
  util::Rng rng(5);
  std::vector<SeededBody> bodies;
  for (int sx : {-1, 1}) {
    for (int sy : {-1, 1}) {
      bodies.push_back(Quadrant(sx, sy));
    }
  }
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  auto r = EstimateUnionVolume(bodies, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->volume, M_PI, 0.12 * M_PI);
  EXPECT_EQ(r->body_volumes.size(), 4u);
  for (double v : r->body_volumes) {
    EXPECT_NEAR(v, M_PI / 4, 0.15 * M_PI / 4);
  }
}

TEST(UnionVolumeTest, OverlappingHalfBalls) {
  // {x >= 0} and {x + y >= 0}: union is 3/4 of the ball... actually the
  // union of two half-planes through the origin at angle π/4 covers
  // 2π − π/4 overlap complement: Vol = (2π − (π − π/4))/2π · πr² ... compute
  // directly: union of halfplanes with normals at angle θ covers fraction
  // (π + θ)/(2π) of the circle; here θ = π/4.
  util::Rng rng(6);
  auto make_half = [](double nx, double ny) {
    convex::ConvexBody body(2);
    double norm = std::sqrt(nx * nx + ny * ny);
    body.AddHalfspace({-nx / norm, -ny / norm}, 0.0);  // n·x >= 0
    body.AddBall({0.0, 0.0}, 1.0);
    auto inner = convex::FindInnerBall({{{-nx / norm, -ny / norm}, 0.0}}, 2,
                                       1.0);
    MUDB_CHECK(inner.has_value());
    return SeededBody{std::move(body), *inner,
                      1.0 + geom::Norm(inner->center)};
  };
  std::vector<SeededBody> bodies;
  bodies.push_back(make_half(1.0, 0.0));
  bodies.push_back(make_half(1.0, 1.0));
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  auto r = EstimateUnionVolume(bodies, opts, rng);
  ASSERT_TRUE(r.ok());
  double expected = (M_PI + M_PI / 4) / (2 * M_PI) * M_PI;
  EXPECT_NEAR(r->volume, expected, 0.12 * expected);
}

TEST(UnionVolumeTest, DuplicatesAreSampledOnce) {
  // {X, X, X} must collapse to {X}: same steps as the singleton call, the
  // singleton's exact estimate, and per-input volumes that share the unique
  // body's estimate.
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng_single(11), rng_dup(11);
  std::vector<SeededBody> single;
  single.push_back(Quadrant(1, 1));
  auto alone = EstimateUnionVolume(single, opts, rng_single);
  ASSERT_TRUE(alone.ok());

  std::vector<SeededBody> tripled;
  for (int i = 0; i < 3; ++i) tripled.push_back(Quadrant(1, 1));
  auto together = EstimateUnionVolume(tripled, opts, rng_dup);
  ASSERT_TRUE(together.ok());

  EXPECT_EQ(together->unique_bodies, 1);
  EXPECT_EQ(together->volume, alone->volume);  // bitwise: same sample path
  EXPECT_EQ(together->steps, alone->steps);
  ASSERT_EQ(together->body_volumes.size(), 3u);
  for (double v : together->body_volumes) {
    EXPECT_EQ(v, alone->body_volumes[0]);
  }
}

TEST(UnionVolumeTest, UniqueBodiesCountsDistinctGeometry) {
  std::vector<SeededBody> bodies;
  bodies.push_back(Quadrant(1, 1));
  bodies.push_back(Quadrant(-1, -1));
  bodies.push_back(Quadrant(1, 1));  // duplicate of the first
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(12);
  auto r = EstimateUnionVolume(bodies, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->unique_bodies, 2);
  EXPECT_NEAR(r->volume, M_PI / 2, 0.15 * M_PI / 2);
  EXPECT_EQ(r->body_volumes[0], r->body_volumes[2]);
}

// A tiny in-test cache: the volume layer only sees the interface.
class MapCache : public BodyEstimateCache {
 public:
  std::optional<CachedBodyEstimate> Lookup(
      const convex::CanonicalBodyKey& key) override {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  void Insert(const convex::CanonicalBodyKey& key,
              const CachedBodyEstimate& estimate) override {
    map_[key] = estimate;
  }

 private:
  std::map<convex::CanonicalBodyKey, CachedBodyEstimate> map_;
};

TEST(UnionVolumeTest, CacheHitsAreBitIdenticalAndSkipSampling) {
  MapCache cache;
  UnionVolumeOptions opts;
  opts.epsilon = 0.05;
  opts.body_cache = &cache;
  std::vector<SeededBody> bodies;
  bodies.push_back(Quadrant(1, 1));
  bodies.push_back(Quadrant(-1, -1));

  util::Rng rng1(13), rng2(13), rng3(13);
  auto cold = EstimateUnionVolume(bodies, opts, rng1);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->body_cache_hits, 0);
  EXPECT_GT(cold->steps, 0);

  // Same seed, warm cache: both body estimates replay from the cache; the
  // only sampling left is the Karp–Luby stage, and the result is identical.
  auto warm = EstimateUnionVolume(bodies, opts, rng2);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->body_cache_hits, 2);
  EXPECT_EQ(warm->volume, cold->volume);
  EXPECT_LT(warm->steps, cold->steps);

  // No cache at all: still the identical estimate — the cache cannot
  // change results, only skip work.
  UnionVolumeOptions no_cache = opts;
  no_cache.body_cache = nullptr;
  auto plain = EstimateUnionVolume(bodies, no_cache, rng3);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->volume, cold->volume);
}

}  // namespace
}  // namespace mudb::volume
