// Tests for CSV import/export of incomplete relations.

#include <sstream>

#include <gtest/gtest.h>

#include "src/engine/eval.h"
#include "src/io/csv.h"
#include "src/measure/measure.h"
#include "src/sql/parser.h"

namespace mudb::io {
namespace {

using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Value;

RelationSchema ItemsSchema() {
  return RelationSchema("Items", {{"name", Sort::kBase},
                                  {"price", Sort::kNum}});
}

TEST(CsvLoadTest, BasicRowsWithHeader) {
  Database db;
  auto rows = LoadCsvRelation(&db, ItemsSchema(),
                              "name,price\n"
                              "apple,1.5\n"
                              "pear,2\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(*rows, 2u);
  const model::Relation* rel = db.GetRelation("Items").value();
  EXPECT_EQ(rel->tuples()[0][0], Value::BaseConst("apple"));
  EXPECT_EQ(rel->tuples()[0][1], Value::NumConst(1.5));
}

TEST(CsvLoadTest, NullTokensBecomeFreshMarkedNulls) {
  Database db;
  auto rows = LoadCsvRelation(&db, ItemsSchema(),
                              "name,price\n"
                              "apple,NULL\n"
                              "NULL,3\n"
                              "pear,NULL\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(db.CollectNumNullIds().size(), 2u);  // two distinct ⊤
  EXPECT_EQ(db.CollectBaseNullIds().size(), 1u);
  const auto& tuples = db.GetRelation("Items").value()->tuples();
  EXPECT_NE(tuples[0][1], tuples[2][1]);  // fresh marks are distinct
}

TEST(CsvLoadTest, TaggedNullsShareIdentityAcrossRelations) {
  Database db;
  ASSERT_TRUE(LoadCsvRelation(&db, ItemsSchema(),
                              "name,price\napple,NULL:p1\n")
                  .ok());
  // A second relation referencing the same tag must reuse the same ⊤... the
  // registry is per-load, so within one load identity is shared:
  Database db2;
  auto rows = LoadCsvRelation(&db2, ItemsSchema(),
                              "name,price\n"
                              "apple,NULL:x\n"
                              "pear,NULL:x\n"
                              "plum,NULL:y\n");
  ASSERT_TRUE(rows.ok());
  const auto& tuples = db2.GetRelation("Items").value()->tuples();
  EXPECT_EQ(tuples[0][1], tuples[1][1]);
  EXPECT_NE(tuples[0][1], tuples[2][1]);
}

TEST(CsvLoadTest, QuotedFieldsAndEscapes) {
  Database db;
  auto rows = LoadCsvRelation(&db, ItemsSchema(),
                              "name,price\n"
                              "\"a,b\",1\n"
                              "\"say \"\"hi\"\"\",2\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  const auto& tuples = db.GetRelation("Items").value()->tuples();
  EXPECT_EQ(tuples[0][0], Value::BaseConst("a,b"));
  EXPECT_EQ(tuples[1][0], Value::BaseConst("say \"hi\""));
}

TEST(CsvLoadTest, HeaderValidation) {
  Database db;
  EXPECT_FALSE(LoadCsvRelation(&db, ItemsSchema(),
                               "name,cost\napple,1\n")
                   .ok());
  Database db2;
  EXPECT_FALSE(LoadCsvRelation(&db2, ItemsSchema(), "name\napple\n").ok());
  // Header can be skipped.
  Database db3;
  CsvOptions no_header;
  no_header.has_header = false;
  EXPECT_TRUE(LoadCsvRelation(&db3, ItemsSchema(), "apple,1\n", no_header)
                  .ok());
}

TEST(CsvLoadTest, RejectsBadRows) {
  Database db;
  EXPECT_FALSE(LoadCsvRelation(&db, ItemsSchema(),
                               "name,price\napple\n")
                   .ok());  // wrong arity
  Database db2;
  EXPECT_FALSE(LoadCsvRelation(&db2, ItemsSchema(),
                               "name,price\napple,cheap\n")
                   .ok());  // non-numeric
  Database db3;
  EXPECT_FALSE(LoadCsvRelation(&db3, ItemsSchema(),
                               "name,price\n\"open,1\n")
                   .ok());  // unterminated quote
  Database db4;
  EXPECT_FALSE(LoadCsvRelation(&db4, ItemsSchema(),
                               "name,price\napple,1.5x\n")
                   .ok());  // trailing junk in number
}

TEST(CsvLoadTest, TagSortConflictRejected) {
  Database db;
  RelationSchema schema("T", {{"a", Sort::kBase}, {"x", Sort::kNum}});
  EXPECT_FALSE(LoadCsvRelation(&db, schema,
                               "a,x\nNULL:k,NULL:k\n")
                   .ok());
}

TEST(CsvRoundTripTest, PreservesConstantsAndMarks) {
  Database db;
  ASSERT_TRUE(LoadCsvRelation(&db, ItemsSchema(),
                              "name,price\n"
                              "apple,1.25\n"
                              "NULL:b1,NULL:n1\n"
                              "pear,NULL:n1\n")
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(
      WriteCsvRelation(*db.GetRelation("Items").value(), out).ok());

  Database db2;
  auto rows = LoadCsvRelation(&db2, ItemsSchema(), out.str());
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(*rows, 3u);
  const auto& t1 = db.GetRelation("Items").value()->tuples();
  const auto& t2 = db2.GetRelation("Items").value()->tuples();
  // Constants identical; null identity structure preserved (same/different).
  EXPECT_EQ(t1[0], t2[0]);
  EXPECT_EQ(t2[1][1], t2[2][1]);  // shared ⊤ stays shared
  EXPECT_TRUE(t2[1][0].is_null());
}

TEST(CsvLoadTest, QuotedFieldSpansInputLines) {
  // RFC 4180: a quoted field may contain embedded newlines. The record
  // scanner must not tear it apart at the line break.
  Database db;
  auto rows = LoadCsvRelation(&db, ItemsSchema(),
                              "name,price\n"
                              "\"two\nlines\",1\n"
                              "pear,2\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(*rows, 2u);
  const auto& tuples = db.GetRelation("Items").value()->tuples();
  EXPECT_EQ(tuples[0][0], Value::BaseConst("two\nlines"));
  EXPECT_EQ(tuples[1][0], Value::BaseConst("pear"));
}

TEST(CsvRoundTripTest, QuotedDelimiterNewlineCellsSurvive) {
  // Write → load is an identity even for cells that exercise every quoting
  // rule at once: embedded delimiters, doubled quotes, newlines, carriage
  // returns, plus numeric and marked-null columns alongside.
  Database db;
  ASSERT_TRUE(db.CreateRelation(ItemsSchema()).ok());
  ASSERT_TRUE(db.Insert("Items", {Value::BaseConst("a,b"),
                                  Value::NumConst(1.25)})
                  .ok());
  ASSERT_TRUE(db.Insert("Items", {Value::BaseConst("two\nlines"),
                                  Value::NumConst(-3)})
                  .ok());
  ASSERT_TRUE(db.Insert("Items", {Value::BaseConst("say \"hi\",\n\"bye\""),
                                  db.MakeNumNull()})
                  .ok());
  ASSERT_TRUE(db.Insert("Items", {Value::BaseConst("cr\rcell"),
                                  Value::NumConst(2.5e-4)})
                  .ok());

  std::ostringstream out;
  ASSERT_TRUE(
      WriteCsvRelation(*db.GetRelation("Items").value(), out).ok());

  Database db2;
  auto rows = LoadCsvRelation(&db2, ItemsSchema(), out.str());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(*rows, 4u);
  const auto& t1 = db.GetRelation("Items").value()->tuples();
  const auto& t2 = db2.GetRelation("Items").value()->tuples();
  for (size_t r = 0; r < t1.size(); ++r) {
    EXPECT_EQ(t1[r][0], t2[r][0]) << "row " << r;
    if (!t1[r][1].is_null()) {
      EXPECT_EQ(t1[r][1], t2[r][1]) << "row " << r;
    } else {
      EXPECT_TRUE(t2[r][1].is_null()) << "row " << r;
    }
  }
}

TEST(CsvEndToEndTest, LoadedDataFlowsThroughTheMeasurePipeline) {
  Database db;
  ASSERT_TRUE(LoadCsvRelation(
                  &db,
                  RelationSchema("Products", {{"id", Sort::kBase},
                                              {"seg", Sort::kBase},
                                              {"rrp", Sort::kNum}}),
                  "id,seg,rrp\n"
                  "p1,s1,10\n"
                  "p2,s1,NULL\n")
                  .ok());
  ASSERT_TRUE(LoadCsvRelation(&db,
                              RelationSchema("Market", {{"seg", Sort::kBase},
                                                        {"price", Sort::kNum}}),
                              "seg,price\ns1,20\n")
                  .ok());
  auto cq = sql::ParseSqlQuery(
      "SELECT P.id FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp <= M.price",
      db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  auto result = engine::EvaluateCq(db, *cq);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 2u);
  EXPECT_TRUE(result->candidates[0].certain);  // 10 <= 20
  measure::MeasureOptions opts;
  auto mu = measure::ComputeNu(result->candidates[1].constraint, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(mu->value, 0.5, 1e-9);  // ⊤ <= 20
}

}  // namespace
}  // namespace mudb::io
