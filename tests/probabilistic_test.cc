// Tests for the §10 probabilistic-measure extension (distributions on nulls).

#include <cmath>

#include <gtest/gtest.h>

#include "src/measure/probabilistic.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

AfprasOptions ManySamples() {
  AfprasOptions opts;
  opts.num_samples = 300000;
  return opts;
}

TEST(DistributionTest, SampleStatistics) {
  util::Rng rng(1);
  const int n = 100000;
  double usum = 0, gsum = 0, gsum2 = 0, esum = 0;
  Distribution uni = Distribution::Uniform(2, 4);
  Distribution gauss = Distribution::Gaussian(5, 2);
  Distribution expo = Distribution::Exponential(0.5);
  for (int i = 0; i < n; ++i) {
    double u = uni.Sample(rng);
    EXPECT_GE(u, 2.0);
    EXPECT_LE(u, 4.0);
    usum += u;
    double g = gauss.Sample(rng);
    gsum += g;
    gsum2 += g * g;
    double e = expo.Sample(rng);
    EXPECT_GE(e, 0.0);
    esum += e;
  }
  EXPECT_NEAR(usum / n, 3.0, 0.02);
  EXPECT_NEAR(gsum / n, 5.0, 0.03);
  EXPECT_NEAR(gsum2 / n - 25.0, 4.0, 0.15);  // variance 4
  EXPECT_NEAR(esum / n, 2.0, 0.05);          // mean 1/rate
}

TEST(DistributionTest, PointMassIsDeterministic) {
  util::Rng rng(2);
  Distribution p = Distribution::Point(7.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(p.Sample(rng), 7.5);
  }
}

TEST(DistributionTest, ToStringMentionsParameters) {
  EXPECT_NE(Distribution::Uniform(0, 1).ToString().find("Uniform"),
            std::string::npos);
  EXPECT_NE(Distribution::Exponential(2).ToString().find("Exp"),
            std::string::npos);
}

TEST(ProbabilisticTest, RejectsBadDelta) {
  // δ was previously forwarded unchecked into AfprasSampleCount.
  for (double bad : {0.0, 1.0, 2.0}) {
    AfprasOptions opts;
    opts.delta = bad;
    util::Rng rng(1);
    auto r = ProbabilisticMeasure(RealFormula::Cmp(Z(0), CmpOp::kLt),
                                  {Distribution::Gaussian(0, 1)}, opts, rng);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(ProbabilisticTest, RequiresDistributionsForUsedVariables) {
  RealFormula f = RealFormula::Cmp(Z(1), CmpOp::kLt);
  util::Rng rng(3);
  auto r = ProbabilisticMeasure(f, {Distribution::Point(0)}, ManySamples(),
                                rng);
  EXPECT_FALSE(r.ok());
}

TEST(ProbabilisticTest, IidGaussiansAreExchangeable) {
  // P(z0 < z1) = 1/2 for iid normals.
  RealFormula f = RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt);
  util::Rng rng(4);
  auto r = ProbabilisticMeasure(
      f, {Distribution::Gaussian(3, 2), Distribution::Gaussian(3, 2)},
      ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.01);
}

TEST(ProbabilisticTest, UniformThreshold) {
  RealFormula f = RealFormula::Cmp(Z(0) - C(0.3), CmpOp::kLe);
  util::Rng rng(5);
  auto r = ProbabilisticMeasure(f, {Distribution::Uniform(0, 1)},
                                ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.3, 0.01);
}

TEST(ProbabilisticTest, ExponentialTail) {
  // P(z > 1) = e^{-rate} for Exp(rate).
  RealFormula f = RealFormula::Cmp(C(1) - Z(0), CmpOp::kLt);
  util::Rng rng(6);
  auto r = ProbabilisticMeasure(f, {Distribution::Exponential(1.0)},
                                ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, std::exp(-1.0), 0.01);
}

TEST(ProbabilisticTest, GaussianDifferenceClosedForm) {
  // z0 ~ N(0,1), z1 ~ N(1,1): P(z0 > z1) = Φ(-1/√2).
  RealFormula f = RealFormula::Cmp(Z(1) - Z(0), CmpOp::kLt);
  util::Rng rng(7);
  auto r = ProbabilisticMeasure(
      f, {Distribution::Gaussian(0, 1), Distribution::Gaussian(1, 1)},
      ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  double expected = 0.5 * std::erfc(1.0 / (std::sqrt(2.0) * std::sqrt(2.0)));
  EXPECT_NEAR(r->estimate, expected, 0.01);
}

TEST(ProbabilisticTest, PointMassesActAsImputation) {
  // All nulls imputed: the measure collapses to 0/1.
  RealFormula f = RealFormula::Cmp(Z(0) * Z(1) - C(5), CmpOp::kGt);
  util::Rng rng(8);
  auto yes = ProbabilisticMeasure(
      f, {Distribution::Point(3), Distribution::Point(2)}, ManySamples(),
      rng);
  ASSERT_TRUE(yes.ok());
  EXPECT_DOUBLE_EQ(yes->estimate, 1.0);
  auto no = ProbabilisticMeasure(
      f, {Distribution::Point(1), Distribution::Point(2)}, ManySamples(),
      rng);
  ASSERT_TRUE(no.ok());
  EXPECT_DOUBLE_EQ(no->estimate, 0.0);
}

TEST(ProbabilisticTest, NonlinearRegionUnderUniforms) {
  // P(x·y <= 1/4) on Uniform[0,1]^2 = 1/4 + (1/4)ln 4 (same region as the
  // conditional-measure test: uniform box ≡ bounded ranges).
  RealFormula f = RealFormula::Cmp(Z(0) * Z(1) - C(0.25), CmpOp::kLe);
  util::Rng rng(9);
  auto r = ProbabilisticMeasure(
      f, {Distribution::Uniform(0, 1), Distribution::Uniform(0, 1)},
      ManySamples(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.25 + 0.25 * std::log(4.0), 0.01);
}

}  // namespace
}  // namespace mudb::measure
