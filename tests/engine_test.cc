// Tests for the CQ engine: IR validation, candidate enumeration, constraint
// collection, LIMIT, and agreement with the general grounding pipeline.

#include <cmath>

#include <gtest/gtest.h>

#include "src/engine/cq.h"
#include "src/engine/eval.h"
#include "src/measure/measure.h"
#include "src/translate/ground.h"

namespace mudb::engine {
namespace {

using logic::AtomArg;
using logic::CmpOp;
using logic::Term;
using logic::TypedVar;
using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Value;

Database TinySalesDb() {
  Database db;
  MUDB_CHECK(db.CreateRelation(RelationSchema("P", {{"id", Sort::kBase},
                                                    {"seg", Sort::kBase},
                                                    {"rrp", Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.CreateRelation(RelationSchema("M", {{"seg", Sort::kBase},
                                                    {"price", Sort::kNum}}))
                 .ok());
  return db;
}

ConjunctiveQuery AdvantageQuery() {
  // SELECT P.id FROM P, M WHERE P.seg = M.seg AND P.rrp <= M.price.
  ConjunctiveQuery cq;
  cq.atoms.push_back(CqAtom{"P", {AtomArg::BaseVar("id"),
                                  AtomArg::BaseVar("seg"),
                                  AtomArg::NumVar("rrp")}});
  cq.atoms.push_back(
      CqAtom{"M", {AtomArg::BaseVar("seg"), AtomArg::NumVar("price")}});
  cq.comparisons.push_back(
      CqComparison{Term::Var("rrp"), CmpOp::kLe, Term::Var("price")});
  cq.output.push_back(TypedVar{"id", Sort::kBase});
  return cq;
}

TEST(CqValidationTest, AcceptsWellFormed) {
  Database db = TinySalesDb();
  EXPECT_TRUE(AdvantageQuery().Validate(db).ok());
}

TEST(CqValidationTest, RejectsUnknownRelationAndArity) {
  Database db = TinySalesDb();
  ConjunctiveQuery cq = AdvantageQuery();
  cq.atoms[0].relation = "Nope";
  EXPECT_FALSE(cq.Validate(db).ok());
  cq = AdvantageQuery();
  cq.atoms[0].args.pop_back();
  EXPECT_FALSE(cq.Validate(db).ok());
}

TEST(CqValidationTest, RejectsCompoundNumericAtomArg) {
  Database db = TinySalesDb();
  ConjunctiveQuery cq = AdvantageQuery();
  cq.atoms[0].args[2] =
      AtomArg::Num(Term::Var("x") + Term::Const(1));
  EXPECT_FALSE(cq.Validate(db).ok());
}

TEST(CqValidationTest, RejectsUnboundComparisonAndOutput) {
  Database db = TinySalesDb();
  ConjunctiveQuery cq = AdvantageQuery();
  cq.comparisons.push_back(
      CqComparison{Term::Var("ghost"), CmpOp::kLt, Term::Const(0)});
  EXPECT_FALSE(cq.Validate(db).ok());
  cq = AdvantageQuery();
  cq.output.push_back(TypedVar{"ghost", Sort::kNum});
  EXPECT_FALSE(cq.Validate(db).ok());
}

TEST(CqToQueryTest, RoundTripsThroughLogic) {
  Database db = TinySalesDb();
  auto q = AdvantageQuery().ToQuery(db);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->output.size(), 1u);
  EXPECT_EQ(q->output[0].name, "id");
  EXPECT_TRUE(q->formula.IsConjunctive());
}

TEST(EvalTest, CompleteWitnessIsCertain) {
  Database db = TinySalesDb();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), Value::BaseConst("s1"),
                              Value::NumConst(10)})
                  .ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(20)}).ok());
  auto result = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->candidates.size(), 1u);
  const Candidate& c = result->candidates[0];
  EXPECT_EQ(c.output[0], Value::BaseConst("p1"));
  EXPECT_TRUE(c.certain);
  EXPECT_EQ(c.constraint.kind(), constraints::RealFormula::Kind::kTrue);
}

TEST(EvalTest, FailingCompleteWitnessProducesNoCandidate) {
  Database db = TinySalesDb();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), Value::BaseConst("s1"),
                              Value::NumConst(30)})
                  .ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(20)}).ok());
  auto result = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->candidates.empty());
}

TEST(EvalTest, NullWitnessCollectsConstraint) {
  Database db = TinySalesDb();
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), Value::BaseConst("s1"),
                              top})
                  .ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(20)}).ok());
  auto result = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  const Candidate& c = result->candidates[0];
  EXPECT_FALSE(c.certain);
  EXPECT_EQ(c.witnesses, 1u);
  // Constraint should be z <= 20, i.e. ν = 1/2.
  measure::MeasureOptions opts;
  auto mu = measure::ComputeNu(c.constraint, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(mu->value, 0.5, 1e-9);
}

TEST(EvalTest, BaseNullsJoinOnlyWithThemselves) {
  Database db = TinySalesDb();
  Value seg_null = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), seg_null,
                              Value::NumConst(10)})
                  .ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(20)}).ok());
  // ⊥ != "s1" under the naive semantics: no candidates.
  auto r1 = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->candidates.empty());
  // A market row with the *same* null joins.
  ASSERT_TRUE(db.Insert("M", {seg_null, Value::NumConst(30)}).ok());
  auto r2 = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->candidates.size(), 1u);
  EXPECT_TRUE(r2->candidates[0].certain);
}

TEST(EvalTest, NullOutputValueSurvivesRoundTrip) {
  // Output a base null: it should come back as the original ⊥, not as the
  // internal fresh-constant encoding.
  Database db = TinySalesDb();
  Value id_null = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("P", {id_null, Value::BaseConst("s1"),
                              Value::NumConst(10)})
                  .ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(20)}).ok());
  auto result = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0].output[0], id_null);
}

TEST(EvalTest, MultipleWitnessesDisjoin) {
  // Two market rows for the same segment: candidate constraint is the OR of
  // the per-witness constraints: z <= 10 || z <= 30 ⟺ z <= 30: ν = 1/2.
  Database db = TinySalesDb();
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), Value::BaseConst("s1"),
                              top})
                  .ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(10)}).ok());
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(30)}).ok());
  auto result = EvaluateCq(db, AdvantageQuery());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0].witnesses, 2u);
  measure::MeasureOptions opts;
  auto mu = measure::ComputeNu(result->candidates[0].constraint, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(mu->value, 0.5, 1e-9);
}

TEST(EvalTest, LimitKeepsFirstDistinctOutputs) {
  Database db = TinySalesDb();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p" + std::to_string(i)),
                                Value::BaseConst("s1"), Value::NumConst(5)})
                    .ok());
  }
  ASSERT_TRUE(
      db.Insert("M", {Value::BaseConst("s1"), Value::NumConst(10)}).ok());
  ConjunctiveQuery cq = AdvantageQuery();
  cq.limit = 3;
  auto result = EvaluateCq(db, cq);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 3u);
}

TEST(EvalTest, MeasureZeroEqualityPruned) {
  // Join on a numeric column via a shared variable: P2(x) ⋈ Q2(x) with a
  // null on one side forces z = c: pruned by default.
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("P2", {{"x", Sort::kNum}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema("Q2", {{"x", Sort::kNum}}))
                  .ok());
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("P2", {top}).ok());
  ASSERT_TRUE(db.Insert("Q2", {Value::NumConst(5)}).ok());
  ConjunctiveQuery cq;
  cq.atoms.push_back(CqAtom{"P2", {AtomArg::NumVar("x")}});
  cq.atoms.push_back(CqAtom{"Q2", {AtomArg::NumVar("x")}});
  cq.output.push_back(TypedVar{"x", Sort::kNum});
  auto pruned = EvaluateCq(db, cq);
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned->candidates.empty());

  EvalOptions keep;
  keep.prune_measure_zero = false;
  auto kept = EvaluateCq(db, cq, keep);
  ASSERT_TRUE(kept.ok());
  ASSERT_EQ(kept->candidates.size(), 1u);
  // The kept constraint z = 5 has measure zero.
  measure::MeasureOptions opts;
  auto mu = measure::ComputeNu(kept->candidates[0].constraint, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(mu->value, 0.0, 1e-9);
}

TEST(EvalTest, IdenticalNullJoinsWithItself) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("P2", {{"x", Sort::kNum}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema("Q2", {{"x", Sort::kNum}}))
                  .ok());
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("P2", {top}).ok());
  ASSERT_TRUE(db.Insert("Q2", {top}).ok());
  ConjunctiveQuery cq;
  cq.atoms.push_back(CqAtom{"P2", {AtomArg::NumVar("x")}});
  cq.atoms.push_back(CqAtom{"Q2", {AtomArg::NumVar("x")}});
  cq.output.push_back(TypedVar{"x", Sort::kNum});
  auto result = EvaluateCq(db, cq);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_TRUE(result->candidates[0].certain);
  EXPECT_EQ(result->candidates[0].output[0], top);
}

// ---- Unions of conjunctive queries ----------------------------------------

TEST(UnionTest, MergesBranchesAndOrsConstraints) {
  // Two branches over the same relation: id selected when its rrp is below
  // 10 (branch 1) or above 20 (branch 2); for a null rrp the constraint is
  // the OR: z < 10 || z > 20, ν = 1.
  Database db = TinySalesDb();
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), Value::BaseConst("s1"),
                              top})
                  .ok());
  auto branch = [](logic::CmpOp op, double bound) {
    ConjunctiveQuery cq;
    cq.atoms.push_back(CqAtom{"P", {AtomArg::BaseVar("id"),
                                    AtomArg::BaseVar("seg"),
                                    AtomArg::NumVar("rrp")}});
    cq.comparisons.push_back(
        CqComparison{Term::Var("rrp"), op, Term::Const(bound)});
    cq.output.push_back(TypedVar{"id", Sort::kBase});
    return cq;
  };
  UnionQuery uq;
  uq.branches.push_back(branch(logic::CmpOp::kLt, 10));
  uq.branches.push_back(branch(logic::CmpOp::kGt, 20));
  auto result = EvaluateUnion(db, uq);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->candidates.size(), 1u);
  const Candidate& c = result->candidates[0];
  EXPECT_EQ(c.witnesses, 2u);
  measure::MeasureOptions opts;
  auto mu = measure::ComputeNu(c.constraint, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(mu->value, 1.0, 1e-9);  // z<10 || z>20 asymptotically certain
}

TEST(UnionTest, CertainInOneBranchWins) {
  Database db = TinySalesDb();
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p1"), Value::BaseConst("s1"),
                              top})
                  .ok());
  ConjunctiveQuery uncertain;
  uncertain.atoms.push_back(CqAtom{"P", {AtomArg::BaseVar("id"),
                                         AtomArg::BaseVar("seg"),
                                         AtomArg::NumVar("rrp")}});
  uncertain.comparisons.push_back(
      CqComparison{Term::Var("rrp"), logic::CmpOp::kLt, Term::Const(0)});
  uncertain.output.push_back(TypedVar{"id", Sort::kBase});
  ConjunctiveQuery certain = uncertain;
  certain.comparisons.clear();  // bare projection: always true
  UnionQuery uq;
  uq.branches.push_back(uncertain);
  uq.branches.push_back(certain);
  auto result = EvaluateUnion(db, uq);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_TRUE(result->candidates[0].certain);
}

TEST(UnionTest, LimitAppliesToMergedResult) {
  Database db = TinySalesDb();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p" + std::to_string(i)),
                                Value::BaseConst("s1"), Value::NumConst(i)})
                    .ok());
  }
  ConjunctiveQuery all;
  all.atoms.push_back(CqAtom{"P", {AtomArg::BaseVar("id"),
                                   AtomArg::BaseVar("seg"),
                                   AtomArg::NumVar("rrp")}});
  all.output.push_back(TypedVar{"id", Sort::kBase});
  UnionQuery uq;
  uq.branches.push_back(all);
  uq.branches.push_back(all);
  uq.limit = 4;
  auto result = EvaluateUnion(db, uq);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 4u);
}

TEST(UnionTest, ValidationCatchesMismatches) {
  Database db = TinySalesDb();
  UnionQuery empty;
  EXPECT_FALSE(EvaluateUnion(db, empty).ok());
}

// Differential: for candidates produced by the CQ engine, ν of the engine's
// constraint equals ν of the general Prop. 5.3 grounding.
TEST(EvalVsGroundTest, MeasuresAgree) {
  Database db = TinySalesDb();
  util::Rng rng(17);
  // Keep the total null count <= 8 so the order-exact engine stays usable on
  // the general-grounding side.
  for (int i = 0; i < 6; ++i) {
    Value rrp = rng.Bernoulli(0.5)
                    ? db.MakeNumNull()
                    : Value::NumConst(rng.UniformInt(5, 25));
    ASSERT_TRUE(db.Insert("P", {Value::BaseConst("p" + std::to_string(i)),
                                Value::BaseConst("s" + std::to_string(i % 3)),
                                rrp})
                    .ok());
  }
  for (int s = 0; s < 3; ++s) {
    Value price = s == 0 ? db.MakeNumNull()
                         : Value::NumConst(rng.UniformInt(5, 25));
    ASSERT_TRUE(
        db.Insert("M", {Value::BaseConst("s" + std::to_string(s)), price})
            .ok());
  }
  ConjunctiveQuery cq = AdvantageQuery();
  auto result = EvaluateCq(db, cq);
  ASSERT_TRUE(result.ok());
  auto q = cq.ToQuery(db);
  ASSERT_TRUE(q.ok());
  ASSERT_FALSE(result->candidates.empty());
  for (const Candidate& c : result->candidates) {
    measure::MeasureOptions opts;
    auto mu_engine = measure::ComputeNu(c.constraint, opts);
    ASSERT_TRUE(mu_engine.ok());
    auto mu_ground = measure::ComputeMeasure(*q, db, c.output, opts);
    ASSERT_TRUE(mu_ground.ok()) << mu_ground.status();
    EXPECT_NEAR(mu_engine->value, mu_ground->value, 1e-9)
        << "candidate " << c.output[0].ToString();
  }
}

}  // namespace
}  // namespace mudb::engine
