// Unit tests for src/util: Status/StatusOr, Deadline, Backoff, Rational,
// Rng, ThreadPool.

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/backoff.h"
#include "src/util/deadline.h"
#include "src/util/parallel.h"
#include "src/util/rational.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace mudb::util {
namespace {

// ---- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes{
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::OutOfRange("").code(),      Status::Unimplemented("").code(),
      Status::Internal("").code(),        Status::FailedPrecondition("").code(),
      Status::ResourceExhausted("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
}

TEST(StatusTest, EveryCodeHasAName) {
  // Iterates the whole enum via kNumStatusCodes: adding a StatusCode
  // without a StatusCodeToString entry (or without bumping the sentinel)
  // fails here instead of silently printing "Unknown".
  std::set<std::string> names;
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const char* name = StatusCodeToString(static_cast<StatusCode>(c));
    EXPECT_STRNE(name, "Unknown") << "code " << c;
    names.insert(name);
  }
  // Names are distinct, so messages never alias two codes.
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumStatusCodes));
}

TEST(StatusTest, RetryableClassification) {
  // The layered taxonomy: transient codes retry, permanent codes do not.
  EXPECT_TRUE(Status::Unavailable("").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("").IsRetryable());
  EXPECT_TRUE(Status::Aborted("").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("").IsRetryable());
  EXPECT_FALSE(Status::NotFound("").IsRetryable());
  EXPECT_FALSE(Status::OutOfRange("").IsRetryable());
  EXPECT_FALSE(Status::Unimplemented("").IsRetryable());
  EXPECT_FALSE(Status::Internal("").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("").IsRetryable());
}

TEST(StatusTest, ContextPayloadRoundTrips) {
  Status s = Status::Unavailable("shard hop failed").WithShard(3)
                 .WithAttempts(2);
  EXPECT_EQ(s.context().shard_id, 3);
  EXPECT_EQ(s.context().attempts, 2);
  EXPECT_FALSE(s.context().empty());
  EXPECT_EQ(s.ToString(), "Unavailable: shard hop failed [shard 3, attempt 2]");

  // Context survives copies (batch callers stash statuses in vectors).
  Status copy = s;
  EXPECT_EQ(copy.context().shard_id, 3);
  EXPECT_EQ(copy.context().attempts, 2);

  Status plain = Status::NotFound("x");
  EXPECT_TRUE(plain.context().empty());
  EXPECT_EQ(plain.ToString(), "NotFound: x");

  Status shard_only = Status::Aborted("y").WithShard(0);
  EXPECT_EQ(shard_only.ToString(), "Aborted: y [shard 0]");
  Status attempts_only = Status::Aborted("y").WithAttempts(4);
  EXPECT_EQ(attempts_only.ToString(), "Aborted: y [attempt 4]");
}

// ---- Deadline --------------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
  EXPECT_FALSE(Deadline::Infinite().expired());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(0).expired());
  EXPECT_TRUE(Deadline::After(-5).expired());
}

TEST(DeadlineTest, FutureDeadlineHasBudgetThenExpires) {
  Deadline d = Deadline::After(1e7);  // ~3 hours: never expires in-test
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);

  Deadline soon = Deadline::After(1.0);
  WallTimer timer;
  while (!soon.expired() && timer.ElapsedMillis() < 1000.0) {
  }
  EXPECT_TRUE(soon.expired());
  EXPECT_LE(soon.remaining_ms(), 0.0);
}

// ---- Backoff ---------------------------------------------------------------

TEST(BackoffTest, DelaysGrowGeometricallyAndCap) {
  BackoffPolicy policy;
  policy.initial_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_ms = 8.0;
  policy.jitter = 0.0;
  Rng rng(7);
  EXPECT_DOUBLE_EQ(policy.DelayMs(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(2, rng), 4.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(3, rng), 8.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(9, rng), 8.0);  // capped, no overflow
}

TEST(BackoffTest, JitterIsDeterministicPerStream) {
  BackoffPolicy policy;
  policy.initial_ms = 1.0;
  policy.jitter = 0.5;
  // Same request seed → identical delay schedule; distinct seeds diverge.
  Rng a = BackoffRng(42);
  Rng b = BackoffRng(42);
  Rng c = BackoffRng(43);
  bool diverged = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    double da = policy.DelayMs(attempt, a);
    double db = policy.DelayMs(attempt, b);
    double dc = policy.DelayMs(attempt, c);
    EXPECT_EQ(da, db) << "attempt " << attempt;
    // Jittered delays stay within [1 - jitter, 1] × the base delay.
    double base = std::min(policy.initial_ms *
                               std::pow(policy.multiplier, attempt),
                           policy.max_ms);
    EXPECT_LE(da, base);
    EXPECT_GE(da, base * (1.0 - policy.jitter));
    diverged = diverged || da != dc;
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, JitterStreamIsDisjointFromEstimatorStreams) {
  // The backoff substream tag sits far outside the positional indices the
  // estimators use, so the jitter draws never replay a sampling substream.
  Rng request_rng(42);
  Rng jitter = BackoffRng(42);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_NE(request_rng.Split(i).seed(), jitter.seed());
  }
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(v.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Doubled(int x) {
  MUDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

Status CheckBoth(int a, int b) {
  MUDB_RETURN_IF_ERROR(ParsePositive(a).status());
  MUDB_RETURN_IF_ERROR(ParsePositive(b).status());
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

// ---- Rational ---------------------------------------------------------------

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.numerator(), -3);
  EXPECT_EQ(r.denominator(), 2);
  EXPECT_EQ(Rational(0, 17), Rational(0));
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(3, 4));
  EXPECT_GE(Rational(-1, 2), Rational(-2, 3));
  EXPECT_NE(Rational(1, 3), Rational(1, 2));
}

TEST(RationalTest, ToDoubleAndString) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_EQ(Rational(3, 7).ToString(), "3/7");
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-2, 6).ToString(), "-1/3");
}

TEST(RationalTest, FactorialAndPowers) {
  EXPECT_EQ(Rational::Factorial(0), Rational(1));
  EXPECT_EQ(Rational::Factorial(5), Rational(120));
  EXPECT_EQ(Rational::Factorial(10), Rational(3628800));
  EXPECT_EQ(Rational::PowerOfTwo(10), Rational(1024));
  EXPECT_EQ(Rational::PowerOfTwo(-3), Rational(1, 8));
}

// Property sweep: field axioms on a grid of small rationals.
class RationalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RationalPropertyTest, FieldAxiomsOnGrid) {
  int seed = GetParam();
  Rng rng(seed);
  for (int iter = 0; iter < 200; ++iter) {
    Rational a(rng.UniformInt(-20, 20), rng.UniformInt(1, 12));
    Rational b(rng.UniformInt(-20, 20), rng.UniformInt(1, 12));
    Rational c(rng.UniformInt(-20, 20), rng.UniformInt(1, 12));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.IsZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, EngineEmitsExactStdMt19937_64Sequence) {
  // The block-buffered engine is a drop-in std::mt19937_64: the raw bit
  // stream must match word for word. 2000 draws crosses several 312-word
  // refill blocks, so the twist's wrap-around segments are all exercised.
  for (uint64_t seed : {uint64_t{1}, uint64_t{42}, uint64_t{0x9E3779B97F4A7C15ull}}) {
    Rng rng(seed);
    std::mt19937_64 ref(seed);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(rng.engine()(), ref()) << "seed " << seed << " draw " << i;
    }
  }
}

TEST(RngTest, DistributionsMatchStdMt19937_64) {
  // Uniform01 / UniformInt route std:: distributions over the buffered
  // engine; with the identical bit stream underneath they must reproduce
  // the distributions-over-std::mt19937_64 values exactly.
  Rng rng(314159);
  std::mt19937_64 ref(314159);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(rng.Uniform01(), unit(ref)) << "draw " << i;
  }
  std::uniform_int_distribution<int64_t> dice(0, 5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(rng.UniformInt(0, 5), dice(ref)) << "draw " << i;
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform01() != b.Uniform01()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(99);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, GaussianTailMassesMatchNormal) {
  // Pins the ziggurat sampler to N(0, 1) beyond the first two moments: an
  // off-by-one in the layer tables or acceptance bound (the classic
  // ziggurat failure mode) shifts these masses while barely moving the
  // variance. 1e6 draws put the binomial sigma of each mass well below the
  // asserted tolerances.
  Rng rng(1234);
  const int n = 1000000;
  int above_half = 0, above_one = 0, above_two = 0, above_three = 0;
  int positive = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    double a = std::fabs(g);
    if (g > 0) ++positive;
    if (a > 0.5) ++above_half;
    if (a > 1.0) ++above_one;
    if (a > 2.0) ++above_two;
    if (a > 3.0) ++above_three;
  }
  auto frac = [n](int count) { return static_cast<double>(count) / n; };
  EXPECT_NEAR(frac(positive), 0.5, 0.002);
  EXPECT_NEAR(frac(above_half), 0.617075, 0.003);   // 2·(1 − Φ(0.5))
  EXPECT_NEAR(frac(above_one), 0.317311, 0.003);    // 2·(1 − Φ(1))
  EXPECT_NEAR(frac(above_two), 0.045500, 0.0015);   // 2·(1 − Φ(2))
  EXPECT_NEAR(frac(above_three), 0.002700, 0.0004);  // 2·(1 − Φ(3))
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianFillMatchesScalarDraws) {
  // The strided fill is the scalar stream in panel layout, not a different
  // generator: every written slot must be bit-identical to the corresponding
  // Gaussian() call, and untouched slots must stay untouched.
  for (int stride : {1, 3, 8}) {
    Rng fill_rng(77), scalar_rng(77);
    const int n = 257;  // enough draws to hit ziggurat slow paths
    std::vector<double> out(static_cast<size_t>(n) * stride, -1.0);
    fill_rng.GaussianFill(n, out.data(), stride);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(out[static_cast<size_t>(i) * stride], scalar_rng.Gaussian())
          << "stride " << stride << " draw " << i;
      for (int pad = 1; pad < stride && i * stride + pad < n * stride; ++pad) {
        EXPECT_EQ(out[static_cast<size_t>(i) * stride + pad], -1.0);
      }
    }
  }
}

TEST(RngTest, GaussianFillLanesBitIdenticalPerSubstream) {
  // Lane i of the K-wide panel fill must reproduce scalar Gaussian() draws
  // on substream i exactly — the contract that lets the batched sampling
  // kernel share the scalar sampler's per-chain trajectories.
  Rng base(2026);
  const int lanes = 8, n = 513;
  std::vector<Rng> lane_rngs;
  for (int l = 0; l < lanes; ++l) lane_rngs.push_back(base.Split(l));
  std::vector<double> panel(static_cast<size_t>(lanes) * n);
  GaussianFillLanes(lane_rngs.data(), lanes, n, panel.data());
  for (int l = 0; l < lanes; ++l) {
    Rng scalar = base.Split(l);
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(panel[static_cast<size_t>(j) * lanes + l], scalar.Gaussian())
          << "lane " << l << " draw " << j;
    }
  }
}

TEST(RngSplitTest, SubstreamsAreAPureFunctionOfSeedAndIndex) {
  Rng a(42), b(42);
  // Drawing from a parent must not perturb its substreams.
  for (int i = 0; i < 100; ++i) a.Uniform01();
  Rng sub_a = a.Split(3), sub_b = b.Split(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(sub_a.Uniform01(), sub_b.Uniform01());
  }
}

TEST(RngSplitTest, DistinctStreamsAndSeedsDiverge) {
  Rng rng(42);
  Rng s0 = rng.Split(0), s1 = rng.Split(1);
  EXPECT_NE(s0.seed(), s1.seed());
  EXPECT_NE(s0.Uniform01(), s1.Uniform01());
  // Same stream index under a different parent seed is a different stream.
  Rng other(43);
  EXPECT_NE(rng.Split(0).seed(), other.Split(0).seed());
  // The child stream differs from the parent stream.
  Rng parent(42), child = parent.Split(0);
  EXPECT_NE(parent.Uniform01(), child.Uniform01());
}

TEST(RngSplitTest, SplittingComposes) {
  Rng rng(7);
  Rng grandchild = rng.Split(2).Split(5);
  Rng again = rng.Split(2).Split(5);
  EXPECT_EQ(grandchild.seed(), again.seed());
  EXPECT_NE(grandchild.seed(), rng.Split(2).Split(6).seed());
  EXPECT_NE(grandchild.seed(), rng.Split(5).Split(2).seed());
}

TEST(RngSplitTest, SubstreamUniformityIsPreserved) {
  // Aggregating across many substreams must still look uniform — a weak but
  // cheap guard against degenerate SplitMix64 wiring.
  Rng rng(1);
  double sum = 0.0;
  const int streams = 1000, per_stream = 100;
  for (int s = 0; s < streams; ++s) {
    Rng sub = rng.Split(s);
    for (int i = 0; i < per_stream; ++i) sum += sub.Uniform01();
  }
  EXPECT_NEAR(sum / (streams * per_stream), 0.5, 0.01);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const int64_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    pool.ParallelFor(n, [&](int64_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, PerSlotResultsReduceDeterministically) {
  // The intended usage pattern: task i writes slot i, reduction in index
  // order afterwards — identical on any pool size.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> slots(257);
    pool.ParallelFor(static_cast<int64_t>(slots.size()), [&](int64_t i) {
      Rng sub = Rng(9).Split(i);
      slots[i] = sub.Uniform01();
    });
    return std::accumulate(slots.begin(), slots.end(), 0.0);
  };
  double baseline = run(1);
  EXPECT_EQ(run(2), baseline);
  EXPECT_EQ(run(8), baseline);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    const int64_t n = 100 + round;
    pool.ParallelFor(n, [&](int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonGrids) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ReduceSampleChunksTest, InvariantAcrossPoolAndThreadChoices) {
  auto fn = [](int64_t count, Rng& rng) {
    int64_t hits = 0;
    for (int64_t i = 0; i < count; ++i) hits += rng.Bernoulli(0.5) ? 1 : 0;
    return hits;
  };
  const Rng base(3);
  int64_t inline_hits =
      ReduceSampleChunks<int64_t>(nullptr, 1, 10001, 256, base, 0, fn);
  EXPECT_GT(inline_hits, 4000);
  EXPECT_LT(inline_hits, 6000);
  // Same grid, same substreams: a shared pool, a per-call pool, and the
  // inline path all reduce to the identical value (tail chunk included).
  ThreadPool pool(4);
  EXPECT_EQ(ReduceSampleChunks<int64_t>(&pool, 1, 10001, 256, base, 0, fn),
            inline_hits);
  EXPECT_EQ(ReduceSampleChunks<int64_t>(nullptr, 8, 10001, 256, base, 0, fn),
            inline_hits);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(TimerTest, MeasuresNonNegativeElapsed) {
  WallTimer t;
  double e1 = t.ElapsedSeconds();
  EXPECT_GE(e1, 0.0);
  t.Restart();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace mudb::util
