// Tests for src/translate: the Prop. 5.3 grounding, differentially checked
// against naive evaluation on complete databases, plus the paper's worked
// example from the introduction.

#include <cmath>

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"
#include "src/engine/naive.h"
#include "src/measure/measure.h"
#include "src/translate/ground.h"
#include "src/util/rng.h"

namespace mudb::translate {
namespace {

using constraints::RealFormula;
using logic::AtomArg;
using logic::CmpOp;
using logic::Formula;
using logic::Query;
using logic::Term;
using logic::TypedVar;
using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Tuple;
using model::Value;

TEST(GroundTest, SingleNullPositivityQuery) {
  // R(num) with one tuple (⊤). q = ∃x R(x) && x > 0  ⇒  φ = z0 > 0.
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"x", Sort::kNum}}))
                  .ok());
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("R", {top}).ok());
  Formula f = Formula::Exists(
      TypedVar{"x", Sort::kNum},
      Formula::And([] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("R", {AtomArg::NumVar("x")}));
        v.push_back(Formula::Cmp(Term::Var("x"), CmpOp::kGt, Term::Const(0)));
        return v;
      }()));
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  auto ground = GroundQuery(*q, db, {});
  ASSERT_TRUE(ground.ok()) << ground.status();
  ASSERT_EQ(ground->null_order.size(), 1u);
  EXPECT_EQ(ground->null_order[0], top.null_id());
  // φ should be exactly "z0 > 0": true along +, false along −.
  EXPECT_TRUE(ground->formula.AsymptoticTruth({1.0}));
  EXPECT_FALSE(ground->formula.AsymptoticTruth({-1.0}));
  EXPECT_TRUE(ground->formula.EvaluateAt({0.5}));
  EXPECT_FALSE(ground->formula.EvaluateAt({-0.5}));
}

TEST(GroundTest, CandidateWithBaseNull) {
  // R(base) with one tuple (⊥). Candidate ⊥ is certain; candidate "other"
  // never matches.
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"a", Sort::kBase}}))
                  .ok());
  Value bot = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("R", {bot}).ok());
  Formula f = Formula::Rel("R", {AtomArg::BaseVar("a")});
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());

  auto g1 = GroundQuery(*q, db, {bot});
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1->formula.kind(), RealFormula::Kind::kTrue);

  auto g2 = GroundQuery(*q, db, {Value::BaseConst("other")});
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->formula.kind(), RealFormula::Kind::kFalse);
}

TEST(GroundTest, NumericConstantCandidate) {
  // R(num) = {(5)}. q(y) = R(y). Candidate 5 certain, 6 false, ⊤ gives z = 5
  // (measure zero but satisfiable).
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"x", Sort::kNum}}))
                  .ok());
  ASSERT_TRUE(db.Insert("R", {Value::NumConst(5)}).ok());
  Formula f = Formula::Rel("R", {AtomArg::NumVar("y")});
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  auto g_yes = GroundQuery(*q, db, {Value::NumConst(5)});
  ASSERT_TRUE(g_yes.ok());
  EXPECT_EQ(g_yes->formula.kind(), RealFormula::Kind::kTrue);
  auto g_no = GroundQuery(*q, db, {Value::NumConst(6)});
  ASSERT_TRUE(g_no.ok());
  EXPECT_EQ(g_no->formula.kind(), RealFormula::Kind::kFalse);
}

TEST(GroundTest, CandidateArityAndSortValidation) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"x", Sort::kNum}}))
                  .ok());
  ASSERT_TRUE(db.Insert("R", {Value::NumConst(1)}).ok());
  Formula f = Formula::Rel("R", {AtomArg::NumVar("y")});
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(GroundQuery(*q, db, {}).ok());
  EXPECT_FALSE(GroundQuery(*q, db, {Value::BaseConst("a")}).ok());
}

TEST(GroundTest, MaxAtomsGuard) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"x", Sort::kNum}}))
                  .ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("R", {db.MakeNumNull()}).ok());
  }
  // ∃x∃y R(x) && R(y) && x < y: quadratic expansion.
  Formula f = Formula::ExistsMany(
      {TypedVar{"x", Sort::kNum}, TypedVar{"y", Sort::kNum}},
      Formula::And([] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("R", {AtomArg::NumVar("x")}));
        v.push_back(Formula::Rel("R", {AtomArg::NumVar("y")}));
        v.push_back(Formula::Cmp(Term::Var("x"), CmpOp::kLt, Term::Var("y")));
        return v;
      }()));
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  GroundOptions opts;
  opts.max_atoms = 100;
  auto ground = GroundQuery(*q, db, {}, opts);
  EXPECT_FALSE(ground.ok());
  EXPECT_EQ(ground.status().code(), util::StatusCode::kResourceExhausted);
}

// ---- Differential testing against naive evaluation on complete DBs --------

Database RandomCompleteDb(util::Rng& rng) {
  Database db;
  MUDB_CHECK(db.CreateRelation(RelationSchema("R", {{"a", Sort::kBase},
                                                    {"x", Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.CreateRelation(RelationSchema("S", {{"x", Sort::kNum},
                                                    {"y", Sort::kNum}}))
                 .ok());
  int nr = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < nr; ++i) {
    MUDB_CHECK(db.Insert("R", {Value::BaseConst(
                                   "b" + std::to_string(rng.UniformInt(0, 2))),
                               Value::NumConst(rng.UniformInt(-3, 3))})
                   .ok());
  }
  int ns = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < ns; ++i) {
    MUDB_CHECK(db.Insert("S", {Value::NumConst(rng.UniformInt(-3, 3)),
                               Value::NumConst(rng.UniformInt(-3, 3))})
                   .ok());
  }
  return db;
}

std::vector<Formula> TestFormulas() {
  std::vector<Formula> out;
  // ∃x∃y S(x,y) && x < y
  out.push_back(Formula::ExistsMany(
      {TypedVar{"x", Sort::kNum}, TypedVar{"y", Sort::kNum}},
      Formula::And([] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("S", {AtomArg::NumVar("x"),
                                       AtomArg::NumVar("y")}));
        v.push_back(Formula::Cmp(Term::Var("x"), CmpOp::kLt, Term::Var("y")));
        return v;
      }())));
  // ∀x∀y S(x,y) -> x + y > 0
  out.push_back(Formula::ForallMany(
      {TypedVar{"x", Sort::kNum}, TypedVar{"y", Sort::kNum}},
      Formula::Implies(
          Formula::Rel("S", {AtomArg::NumVar("x"), AtomArg::NumVar("y")}),
          Formula::Cmp(Term::Var("x") + Term::Var("y"), CmpOp::kGt,
                       Term::Const(0)))));
  // ∃a∃x R(a,x) && ¬∃y S(x,y)
  out.push_back(Formula::ExistsMany(
      {TypedVar{"a", Sort::kBase}, TypedVar{"x", Sort::kNum}},
      Formula::And([] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("R", {AtomArg::BaseVar("a"),
                                       AtomArg::NumVar("x")}));
        v.push_back(Formula::Not(Formula::Exists(
            TypedVar{"y", Sort::kNum},
            Formula::Rel("S", {AtomArg::NumVar("x"), AtomArg::NumVar("y")}))));
        return v;
      }())));
  // ∃x S(x, x·x)   (multiplication)
  out.push_back(Formula::Exists(
      TypedVar{"x", Sort::kNum},
      Formula::Rel("S", {AtomArg::NumVar("x"),
                         AtomArg::Num(Term::Var("x") * Term::Var("x"))})));
  // ∀a (∃x R(a,x)) -> ∃x R(a,x) && x >= 0    (trivially restricted)
  out.push_back(Formula::Forall(
      TypedVar{"a", Sort::kBase},
      Formula::Implies(
          Formula::Exists(TypedVar{"x", Sort::kNum},
                          Formula::Rel("R", {AtomArg::BaseVar("a"),
                                             AtomArg::NumVar("x")})),
          Formula::Exists(
              TypedVar{"x", Sort::kNum},
              Formula::And([] {
                std::vector<Formula> v;
                v.push_back(Formula::Rel("R", {AtomArg::BaseVar("a"),
                                               AtomArg::NumVar("x")}));
                v.push_back(Formula::Cmp(Term::Var("x"), CmpOp::kGe,
                                         Term::Const(0)));
                return v;
              }())))));
  return out;
}

class GroundVsNaiveTest : public ::testing::TestWithParam<int> {};

TEST_P(GroundVsNaiveTest, BooleanQueriesOnCompleteDatabases) {
  util::Rng rng(GetParam());
  std::vector<Formula> formulas = TestFormulas();
  for (int iter = 0; iter < 20; ++iter) {
    Database db = RandomCompleteDb(rng);
    for (const Formula& f : formulas) {
      auto q = Query::Make(f, db);
      ASSERT_TRUE(q.ok()) << q.status();
      ASSERT_TRUE(q->IsBoolean());
      auto ground = GroundQuery(*q, db, {});
      ASSERT_TRUE(ground.ok()) << ground.status();
      // Complete database: the grounded formula must be a constant.
      ASSERT_TRUE(ground->formula.is_constant());
      bool mu_one = ground->formula.kind() == RealFormula::Kind::kTrue;
      auto naive = engine::NaiveHolds(*q, db, {});
      ASSERT_TRUE(naive.ok()) << naive.status();
      EXPECT_EQ(mu_one, *naive) << "iter=" << iter << " q=" << q->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundVsNaiveTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- The paper's introduction example --------------------------------------

Formula IntroQueryFormula() {
  // ∀ i, r, d, i', p: (P(i,s,r,d) && ¬E(i,s) && C(i',s,p))
  //                   -> (r·d <= p && r >= 0 && d >= 0 && p >= 0)
  Formula antecedent = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Rel(
        "Products", {AtomArg::BaseVar("i"), AtomArg::BaseVar("s"),
                     AtomArg::NumVar("r"), AtomArg::NumVar("d")}));
    v.push_back(Formula::Not(
        Formula::Rel("Excluded", {AtomArg::BaseVar("i"),
                                  AtomArg::BaseVar("s")})));
    v.push_back(Formula::Rel("Competition", {AtomArg::BaseVar("ip"),
                                             AtomArg::BaseVar("s"),
                                             AtomArg::NumVar("p")}));
    return v;
  }());
  Formula consequent = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Cmp(Term::Var("r") * Term::Var("d"), CmpOp::kLe,
                             Term::Var("p")));
    v.push_back(Formula::Cmp(Term::Var("r"), CmpOp::kGe, Term::Const(0)));
    v.push_back(Formula::Cmp(Term::Var("d"), CmpOp::kGe, Term::Const(0)));
    v.push_back(Formula::Cmp(Term::Var("p"), CmpOp::kGe, Term::Const(0)));
    return v;
  }());
  return Formula::ForallMany(
      {TypedVar{"i", Sort::kBase}, TypedVar{"r", Sort::kNum},
       TypedVar{"d", Sort::kNum}, TypedVar{"ip", Sort::kBase},
       TypedVar{"p", Sort::kNum}},
      Formula::Implies(std::move(antecedent), std::move(consequent)));
}

TEST(IntroExampleTest, GroundedMeasureMatchesClosedForm) {
  auto campaign = datagen::MakeCampaignDatabase();
  ASSERT_TRUE(campaign.ok());
  const Database& db = campaign->db;
  auto q = Query::MakeWithOutput(IntroQueryFormula(),
                                 {TypedVar{"s", Sort::kBase}}, db);
  ASSERT_TRUE(q.ok()) << q.status();
  auto ground = GroundQuery(*q, db, {Value::BaseConst("s")});
  ASSERT_TRUE(ground.ok()) << ground.status();

  measure::MeasureOptions opts;
  auto result = measure::ComputeNu(ground->formula, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  // The literal reading of the query (r·d <= p) constrains the two nulls to
  // {α >= 8, α' >= 0, 0.7·α' <= α}: exactly atan(10/7)/2π of the plane.
  double expected = std::atan(10.0 / 7.0) / (2 * M_PI);
  EXPECT_TRUE(result->is_exact);
  EXPECT_NEAR(result->value, expected, 1e-9);
}

TEST(IntroExampleTest, PaperConstraintOneMatchesPrintedValue) {
  // Constraint (1) exactly as printed in the paper:
  // (α' >= 0) && (α >= 8) && (0.7·α' >= α), with ν ≈ 0.097 and 0.388 of the
  // positive quadrant (the paper's comparison is flipped relative to the
  // query; see EXPERIMENTS.md).
  using poly::Polynomial;
  Polynomial alpha = Polynomial::Variable(0);
  Polynomial alpha_prime = Polynomial::Variable(1);
  RealFormula f = RealFormula::And([&] {
    std::vector<RealFormula> v;
    v.push_back(RealFormula::Cmp(-alpha_prime, constraints::CmpOp::kLe));
    v.push_back(RealFormula::Cmp(Polynomial::Constant(8) - alpha,
                                 constraints::CmpOp::kLe));
    v.push_back(RealFormula::Cmp(
        alpha - alpha_prime.Scale(0.7), constraints::CmpOp::kLe));
    return v;
  }());
  measure::MeasureOptions opts;
  auto result = measure::ComputeNu(f, opts);
  ASSERT_TRUE(result.ok());
  double expected = (M_PI / 2 - std::atan(10.0 / 7.0)) / (2 * M_PI);
  EXPECT_NEAR(result->value, expected, 1e-9);
  EXPECT_NEAR(result->value, 0.097, 5e-4);        // the paper's ≈0.097
  EXPECT_NEAR(result->value * 4, 0.388, 2e-3);    // ≈0.388 of the quadrant
}

}  // namespace
}  // namespace mudb::translate
