// Tests for the AFPRAS of Thm. 8.1.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/measure/afpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

TEST(SampleCountTest, MatchesHoeffdingBound) {
  // m = ln(2/δ) / (2 ε²).
  EXPECT_EQ(AfprasSampleCount(0.1, 0.25),
            static_cast<int64_t>(std::ceil(std::log(8.0) / 0.02)));
  // Smaller ε or δ needs more samples.
  EXPECT_GT(AfprasSampleCount(0.01, 0.25), AfprasSampleCount(0.1, 0.25));
  EXPECT_GT(AfprasSampleCount(0.1, 0.01), AfprasSampleCount(0.1, 0.25));
  // The paper's m >= ε^{-2} for δ = 1/4 is within a small constant.
  EXPECT_GE(AfprasSampleCount(0.05, 0.25), 400);
}

TEST(AfprasTest, ConstantFormulaExact) {
  AfprasOptions opts;
  util::Rng rng(1);
  auto t = Afpras(RealFormula::True(), opts, rng);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->estimate, 1.0);
  EXPECT_EQ(t->samples, 0);
  auto f = Afpras(RealFormula::False(), opts, rng);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->estimate, 0.0);
}

TEST(AfprasTest, RejectsBadEpsilon) {
  AfprasOptions opts;
  opts.epsilon = 0.0;
  util::Rng rng(1);
  EXPECT_FALSE(Afpras(RealFormula::Cmp(Z(0), CmpOp::kLt), opts, rng).ok());
  opts.epsilon = 1.5;
  EXPECT_FALSE(Afpras(RealFormula::Cmp(Z(0), CmpOp::kLt), opts, rng).ok());
}

TEST(AfprasTest, RejectsBadDelta) {
  // δ was previously forwarded unchecked into AfprasSampleCount.
  for (double bad : {0.0, 1.0, 2.0}) {
    AfprasOptions opts;
    opts.delta = bad;
    util::Rng rng(1);
    auto r = Afpras(RealFormula::Cmp(Z(0), CmpOp::kLt), opts, rng);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(AfprasTest, ReportsAdditiveConfidenceInterval) {
  AfprasOptions opts;
  opts.epsilon = 0.08;
  util::Rng rng(3);
  auto r = Afpras(RealFormula::Cmp(Z(0) + Z(1), CmpOp::kLt), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->ci_lo, std::max(0.0, r->estimate - 0.08));
  EXPECT_DOUBLE_EQ(r->ci_hi, std::min(1.0, r->estimate + 0.08));

  // Exact answers collapse to a point.
  util::Rng rng2(3);
  auto t = Afpras(RealFormula::True(), opts, rng2);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->exact);
  EXPECT_EQ(t->ci_lo, 1.0);
  EXPECT_EQ(t->ci_hi, 1.0);
}

TEST(AfprasTest, HalfspaceConvergesToHalf) {
  AfprasOptions opts;
  opts.num_samples = 100000;
  util::Rng rng(2);
  auto r = Afpras(RealFormula::Cmp(Z(0) + Z(1) - Z(2), CmpOp::kLt), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.01);
  EXPECT_EQ(r->sampled_dimension, 3);
}

TEST(AfprasTest, OrthantIn4D) {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 4; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  AfprasOptions opts;
  opts.num_samples = 200000;
  util::Rng rng(3);
  auto r = Afpras(RealFormula::And(parts), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 1.0 / 16, 0.005);
}

TEST(AfprasTest, NonlinearFormula) {
  // z0² + z1² > 2 z0 z1 ⟺ (z0-z1)² > 0: true except on the diagonal: ν = 1.
  RealFormula f = RealFormula::Cmp(
      Z(0) * Z(0) + Z(1) * Z(1) - C(2) * Z(0) * Z(1), CmpOp::kGt);
  AfprasOptions opts;
  opts.num_samples = 20000;
  util::Rng rng(4);
  auto r = Afpras(f, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 1.0, 1e-9);
}

TEST(AfprasTest, DeterministicGivenSeed) {
  RealFormula f = RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt);
  AfprasOptions opts;
  opts.num_samples = 5000;
  util::Rng rng1(9), rng2(9);
  auto a = Afpras(f, opts, rng1);
  auto b = Afpras(f, opts, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
}

TEST(AfprasTest, RestrictToUsedVarsGivesSameDistribution) {
  // Formula on variables {0, 7} embedded in a 8-dim space: restricting to the
  // used coordinates must not change the measure (the §9 optimization).
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(7), CmpOp::kLt));
  RealFormula f = RealFormula::And(parts);
  AfprasOptions fast;
  fast.num_samples = 150000;
  fast.restrict_to_used_vars = true;
  AfprasOptions slow = fast;
  slow.restrict_to_used_vars = false;
  util::Rng rng1(5), rng2(6);
  auto a = Afpras(f, fast, rng1);
  auto b = Afpras(f, slow, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sampled_dimension, 2);
  EXPECT_EQ(b->sampled_dimension, 8);
  EXPECT_NEAR(a->estimate, 0.25, 0.01);
  EXPECT_NEAR(b->estimate, 0.25, 0.01);
}

TEST(AfprasTest, ParallelSamplingIsDeterministicAndAccurate) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  RealFormula f = RealFormula::And(parts);  // quadrant: ν = 1/4
  AfprasOptions opts;
  opts.num_samples = 200000;
  opts.num_threads = 4;
  util::Rng rng1(77), rng2(77);
  auto a = Afpras(f, opts, rng1);
  auto b = Afpras(f, opts, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);  // scheduling-independent
  EXPECT_NEAR(a->estimate, 0.25, 0.01);
  // Substreams are carved by the sample budget, not the thread count, so a
  // different thread count gives the bit-identical estimate.
  opts.num_threads = 3;
  util::Rng rng3(77);
  auto c = Afpras(f, opts, rng3);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->estimate, a->estimate);
}

// Property: the additive guarantee |estimate − ν| < ε holds with margin on
// formulas whose exact value the 2-D engine provides.
class AfprasAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(AfprasAccuracyTest, WithinEpsilonOfExact2D) {
  util::Rng formula_rng(GetParam());
  for (int iter = 0; iter < 5; ++iter) {
    // Random sector formula over 2 variables.
    std::vector<RealFormula> parts;
    for (int i = 0; i < 3; ++i) {
      Polynomial p = C(formula_rng.Uniform(-1, 1)) * Z(0) +
                     C(formula_rng.Uniform(-1, 1)) * Z(1) +
                     C(formula_rng.Uniform(-1, 1));
      parts.push_back(RealFormula::Cmp(p, CmpOp::kLt));
    }
    RealFormula f = formula_rng.Bernoulli(0.5) ? RealFormula::And(parts)
                                               : RealFormula::Or(parts);
    if (f.is_constant()) continue;
    auto exact = NuExact2D(f);
    ASSERT_TRUE(exact.ok());
    AfprasOptions opts;
    opts.epsilon = 0.02;
    opts.delta = 0.001;  // high confidence so the test is stable
    util::Rng rng(GetParam() * 100 + iter);
    auto approx = Afpras(f, opts, rng);
    ASSERT_TRUE(approx.ok());
    EXPECT_LT(std::fabs(approx->estimate - *exact), 0.02)
        << "iter " << iter << " exact " << *exact;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AfprasAccuracyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mudb::measure
