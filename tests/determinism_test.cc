// Guards the parallel sampling runtime's determinism contract: every
// randomized estimator returns bit-identical results for any num_threads
// given the same seed (work is carved into RNG substreams by the workload,
// never by the thread count), and distinct seeds produce distinct sample
// paths (the substreams really are a function of the seed).

#include <vector>

#include <gtest/gtest.h>

#include "src/measure/afpras.h"
#include "src/measure/conditional.h"
#include "src/measure/fpras.h"
#include "src/measure/measure.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }

constexpr int kThreadAxis[] = {1, 2, 8};

// A 3-D disjunction of two cones: exercises the full FPRAS pipeline (two
// bodies, several annealing phases, the Karp–Luby loop).
RealFormula ConeUnion() {
  std::vector<RealFormula> pos;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  std::vector<RealFormula> neg;
  for (int i = 0; i < 3; ++i) {
    neg.push_back(RealFormula::Cmp(Z(i), CmpOp::kLt));
  }
  std::vector<RealFormula> ors{RealFormula::And(std::move(pos)),
                               RealFormula::And(std::move(neg))};
  return RealFormula::Or(std::move(ors));
}

TEST(DeterminismTest, FprasIsThreadCountInvariant) {
  RealFormula f = ConeUnion();
  double baseline = 0.0;
  for (int threads : kThreadAxis) {
    FprasOptions opts;
    opts.epsilon = 0.2;  // keep the battery fast; determinism is exact anyway
    opts.num_threads = threads;
    util::Rng rng(1234);
    auto r = FprasConjunctive(f, opts, rng);
    ASSERT_TRUE(r.ok());
    if (threads == kThreadAxis[0]) {
      baseline = r->estimate;
      EXPECT_GT(baseline, 0.0);
    } else {
      EXPECT_EQ(r->estimate, baseline) << "threads " << threads;
    }
  }
}

TEST(DeterminismTest, AfprasIsThreadCountInvariant) {
  RealFormula f = ConeUnion();
  double baseline = 0.0;
  for (int threads : kThreadAxis) {
    AfprasOptions opts;
    opts.num_samples = 50000;  // > 1 chunk, uneven tail chunk
    opts.num_threads = threads;
    util::Rng rng(99);
    auto r = Afpras(f, opts, rng);
    ASSERT_TRUE(r.ok());
    if (threads == kThreadAxis[0]) {
      baseline = r->estimate;
      EXPECT_GT(baseline, 0.0);
    } else {
      EXPECT_EQ(r->estimate, baseline) << "threads " << threads;
    }
  }
}

TEST(DeterminismTest, ConditionalAfprasIsThreadCountInvariant) {
  RealFormula f = ConeUnion();
  VarRanges ranges(3);
  ranges[0] = VarRange::Between(-1.0, 2.0);
  double baseline = 0.0;
  for (int threads : kThreadAxis) {
    AfprasOptions opts;
    opts.num_samples = 30000;
    opts.num_threads = threads;
    util::Rng rng(7);
    auto r = ConditionalAfpras(f, ranges, opts, rng);
    ASSERT_TRUE(r.ok());
    if (threads == kThreadAxis[0]) {
      baseline = r->estimate;
    } else {
      EXPECT_EQ(r->estimate, baseline) << "threads " << threads;
    }
  }
}

TEST(DeterminismTest, ComputeNuThreadsThreadCountThrough) {
  // End-to-end through the dispatch layer: kFpras and kAfpras both reach
  // the pool, and the MeasureOptions seed pins the result.
  RealFormula f = ConeUnion();
  for (Method method : {Method::kFpras, Method::kAfpras}) {
    MeasureOptions one;
    one.method = method;
    one.epsilon = method == Method::kFpras ? 0.2 : 0.02;
    one.num_threads = 1;
    MeasureOptions eight = one;
    eight.num_threads = 8;
    auto a = ComputeNu(f, one);
    auto b = ComputeNu(f, eight);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->value, b->value) << MethodToString(method);
  }
}

TEST(DeterminismTest, DistinctSeedsProduceDistinctSamplePaths) {
  // With continuous estimators, distinct substreams collide on the same
  // float with probability ~0; equality across several seeds would mean the
  // seed is being ignored somewhere in the substream plumbing.
  RealFormula f = ConeUnion();
  std::vector<double> fpras_estimates, afpras_estimates;
  for (uint64_t seed : {1u, 2u, 3u}) {
    FprasOptions fopts;
    fopts.epsilon = 0.2;
    fopts.num_threads = 2;
    util::Rng frng(seed);
    auto fr = FprasConjunctive(f, fopts, frng);
    ASSERT_TRUE(fr.ok());
    fpras_estimates.push_back(fr->estimate);

    AfprasOptions aopts;
    aopts.num_samples = 50000;
    aopts.num_threads = 2;
    util::Rng arng(seed);
    auto ar = Afpras(f, aopts, arng);
    ASSERT_TRUE(ar.ok());
    afpras_estimates.push_back(ar->estimate);
  }
  EXPECT_NE(fpras_estimates[0], fpras_estimates[1]);
  EXPECT_NE(fpras_estimates[1], fpras_estimates[2]);
  EXPECT_NE(afpras_estimates[0], afpras_estimates[1]);
  EXPECT_NE(afpras_estimates[1], afpras_estimates[2]);
}

TEST(DeterminismTest, RepeatedCallsWithOneRngConsumeRandomness) {
  // The estimators fork the caller's Rng once per call, so averaging repeats
  // over a single Rng object draws genuinely fresh sample paths.
  RealFormula f = ConeUnion();
  util::Rng rng(13);
  AfprasOptions opts;
  opts.num_samples = 50000;
  auto a = Afpras(f, opts, rng);
  auto b = Afpras(f, opts, rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->estimate, b->estimate);

  util::Rng frng(13);
  FprasOptions fopts;
  fopts.epsilon = 0.2;
  auto fa = FprasConjunctive(f, fopts, frng);
  auto fb = FprasConjunctive(f, fopts, frng);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_NE(fa->estimate, fb->estimate);
}

TEST(DeterminismTest, SameSeedSameResultAcrossRepeats) {
  // The pool is stateful (persistent workers); repeated runs on one process
  // must not leak state between calls.
  RealFormula f = ConeUnion();
  FprasOptions opts;
  opts.epsilon = 0.2;
  opts.num_threads = 4;
  util::Rng rng1(5), rng2(5);
  auto a = FprasConjunctive(f, opts, rng1);
  auto b = FprasConjunctive(f, opts, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->estimate, b->estimate);
}

}  // namespace
}  // namespace mudb::measure
