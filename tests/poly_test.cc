// Unit and property tests for src/poly: multivariate polynomials, univariate
// tools, Sturm-sequence root isolation.

#include <cmath>

#include <gtest/gtest.h>

#include "src/poly/polynomial.h"
#include "src/poly/univariate.h"
#include "src/util/rng.h"

namespace mudb::poly {
namespace {

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

TEST(PolynomialTest, ZeroAndConstants) {
  Polynomial zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(zero.IsConstant());
  EXPECT_EQ(zero.Degree(), -1);
  EXPECT_EQ(C(0).Degree(), -1);  // 0 coefficient dropped
  EXPECT_EQ(C(3).Degree(), 0);
  EXPECT_DOUBLE_EQ(C(3).ConstantTerm(), 3.0);
  EXPECT_EQ(C(3).NumVariables(), 0);
}

TEST(PolynomialTest, VariableBasics) {
  Polynomial z2 = Z(2);
  EXPECT_EQ(z2.Degree(), 1);
  EXPECT_EQ(z2.NumVariables(), 3);
  EXPECT_DOUBLE_EQ(z2.LinearCoefficient(2), 1.0);
  EXPECT_DOUBLE_EQ(z2.LinearCoefficient(0), 0.0);
  EXPECT_TRUE(z2.IsLinear());
}

TEST(PolynomialTest, ArithmeticAndEvaluate) {
  // p = (z0 + 2)(z1 - 3) = z0 z1 - 3 z0 + 2 z1 - 6.
  Polynomial p = (Z(0) + C(2)) * (Z(1) - C(3));
  EXPECT_EQ(p.Degree(), 2);
  EXPECT_FALSE(p.IsLinear());
  EXPECT_DOUBLE_EQ(p.Evaluate({1.0, 4.0}), (1 + 2) * (4 - 3));
  EXPECT_DOUBLE_EQ(p.Evaluate({-2.0, 100.0}), 0.0);
  // Missing coordinates are zero.
  EXPECT_DOUBLE_EQ(p.Evaluate({}), -6.0);
}

TEST(PolynomialTest, CancellationDropsTerms) {
  Polynomial p = Z(0) * Z(1) - Z(1) * Z(0);
  EXPECT_TRUE(p.IsZero());
  Polynomial q = (Z(0) + C(1)) - Z(0);
  EXPECT_TRUE(q.IsConstant());
  EXPECT_DOUBLE_EQ(q.ConstantTerm(), 1.0);
}

TEST(PolynomialTest, SubstituteVariable) {
  // p = z0^2 + z1; substitute z0 := z1 + 1 -> z1^2 + 3 z1 + 1.
  Polynomial p = Z(0) * Z(0) + Z(1);
  Polynomial s = p.Substitute(0, Z(1) + C(1));
  EXPECT_DOUBLE_EQ(s.Evaluate({0.0, 2.0}), 2 * 2 + 3 * 2 + 1);
}

TEST(PolynomialTest, RestrictToDirectionGroupsByDegree) {
  // p = 2 z0^2 - z1 + 5. Along a = (a0, a1):
  // k^2 coeff = 2 a0^2; k coeff = -a1; const = 5.
  Polynomial p = C(2) * Z(0) * Z(0) - Z(1) + C(5);
  std::vector<double> r = p.RestrictToDirection({3.0, 4.0});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], -4.0);
  EXPECT_DOUBLE_EQ(r[2], 18.0);
}

TEST(PolynomialTest, LeadingFormAndDropConstant) {
  Polynomial p = Z(0) * Z(1) + Z(0) + C(7);
  Polynomial lead = p.LeadingForm();
  EXPECT_EQ(lead, Z(0) * Z(1));
  Polynomial hom = p.DropConstant();
  EXPECT_DOUBLE_EQ(hom.ConstantTerm(), 0.0);
  EXPECT_EQ(hom, Z(0) * Z(1) + Z(0));
}

TEST(PolynomialTest, CollectAndRemapVariables) {
  Polynomial p = Z(0) * Z(3) + Z(3);
  std::set<int> used;
  p.CollectVariableIndices(&used);
  EXPECT_EQ(used, (std::set<int>{0, 3}));
  std::vector<int> remap{0, -1, -1, 1};
  Polynomial q = p.RemapVariables(remap);
  EXPECT_DOUBLE_EQ(q.Evaluate({2.0, 5.0}), 2 * 5 + 5);
  EXPECT_EQ(q.NumVariables(), 2);
}

TEST(PolynomialTest, ToStringReadable) {
  Polynomial p = C(2) * Z(0) * Z(0) - Z(1) + C(3);
  std::string s = p.ToString();
  EXPECT_NE(s.find("z0^2"), std::string::npos);
  EXPECT_NE(s.find("z1"), std::string::npos);
  EXPECT_EQ(Polynomial().ToString(), "0");
}

// Property: ring identities checked on random points.
class PolyPropertyTest : public ::testing::TestWithParam<int> {};

Polynomial RandomPoly(util::Rng& rng, int vars, int max_terms) {
  Polynomial p;
  int terms = static_cast<int>(rng.UniformInt(1, max_terms));
  for (int t = 0; t < terms; ++t) {
    Monomial m(vars, 0);
    for (int v = 0; v < vars; ++v) {
      m[v] = static_cast<uint32_t>(rng.UniformInt(0, 2));
    }
    p = p + Polynomial::FromMonomial(m, rng.Uniform(-3, 3));
  }
  return p;
}

TEST_P(PolyPropertyTest, RingIdentitiesAtRandomPoints) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    Polynomial a = RandomPoly(rng, 3, 4);
    Polynomial b = RandomPoly(rng, 3, 4);
    Polynomial c = RandomPoly(rng, 3, 4);
    std::vector<double> x{rng.Uniform(-2, 2), rng.Uniform(-2, 2),
                          rng.Uniform(-2, 2)};
    double ax = a.Evaluate(x), bx = b.Evaluate(x), cx = c.Evaluate(x);
    EXPECT_NEAR((a + b).Evaluate(x), ax + bx, 1e-9);
    EXPECT_NEAR((a - b).Evaluate(x), ax - bx, 1e-9);
    EXPECT_NEAR((a * b).Evaluate(x), ax * bx, 1e-6);
    EXPECT_NEAR(((a + b) * c).Evaluate(x), (ax + bx) * cx, 1e-6);
    EXPECT_NEAR((-a).Evaluate(x), -ax, 1e-9);
  }
}

TEST_P(PolyPropertyTest, RestrictToDirectionMatchesEvaluation) {
  util::Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 50; ++iter) {
    Polynomial p = RandomPoly(rng, 3, 5);
    std::vector<double> a{rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                          rng.Uniform(-1, 1)};
    std::vector<double> restricted = p.RestrictToDirection(a);
    for (double k : {0.5, 1.0, 2.0, 7.0}) {
      std::vector<double> ka{k * a[0], k * a[1], k * a[2]};
      EXPECT_NEAR(EvaluateUni(restricted, k), p.Evaluate(ka), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyPropertyTest, ::testing::Values(1, 2, 3));

// ---- Univariate tools -------------------------------------------------------

TEST(UnivariateTest, TrimAndEvaluate) {
  UniPoly p{1.0, 2.0, 0.0, 0.0};
  EXPECT_EQ(TrimLeading(p).size(), 2u);
  EXPECT_DOUBLE_EQ(EvaluateUni(p, 3.0), 1 + 2 * 3);
  EXPECT_DOUBLE_EQ(EvaluateUni({}, 5.0), 0.0);
}

TEST(UnivariateTest, Derivative) {
  // d/dx (1 + 2x + 3x^2) = 2 + 6x.
  UniPoly d = DerivativeUni({1.0, 2.0, 3.0});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  EXPECT_TRUE(DerivativeUni({5.0}).empty());
}

TEST(UnivariateTest, AsymptoticSign) {
  EXPECT_EQ(AsymptoticSign({0.0, 0.0, 3.0}), 1);    // 3k^2
  EXPECT_EQ(AsymptoticSign({5.0, -1.0}), -1);       // -k + 5
  EXPECT_EQ(AsymptoticSign({-2.0}), -1);            // constant
  EXPECT_EQ(AsymptoticSign({}), 0);                 // zero polynomial
  EXPECT_EQ(AsymptoticSign({0.0, 1e-15}, 1e-12), 0);  // below tolerance
}

TEST(SturmTest, QuadraticRoots) {
  // (x-1)(x-3) = x^2 - 4x + 3.
  std::vector<double> roots = IsolateRealRoots({3.0, -4.0, 1.0}, -10, 10);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 1.0, 1e-9);
  EXPECT_NEAR(roots[1], 3.0, 1e-9);
}

TEST(SturmTest, NoRealRoots) {
  // x^2 + 1.
  EXPECT_TRUE(IsolateRealRoots({1.0, 0.0, 1.0}, -100, 100).empty());
}

TEST(SturmTest, RepeatedRootFoundOnce) {
  // (x-2)^2 = x^2 - 4x + 4.
  std::vector<double> roots = IsolateRealRoots({4.0, -4.0, 1.0}, -10, 10);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 2.0, 1e-6);
}

TEST(SturmTest, CubicWithThreeRoots) {
  // (x+2)(x)(x-5) = x^3 - 3x^2 - 10x.
  std::vector<double> roots =
      IsolateRealRoots({0.0, -10.0, -3.0, 1.0}, -10, 10);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], -2.0, 1e-8);
  EXPECT_NEAR(roots[1], 0.0, 1e-8);
  EXPECT_NEAR(roots[2], 5.0, 1e-8);
}

TEST(SturmTest, RespectsInterval) {
  // Roots at 1 and 3; search only (2, 10).
  std::vector<double> roots = IsolateRealRoots({3.0, -4.0, 1.0}, 2, 10);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 3.0, 1e-9);
}

TEST(SturmTest, DegenerateInputs) {
  EXPECT_TRUE(IsolateRealRoots({}, -1, 1).empty());
  EXPECT_TRUE(IsolateRealRoots({4.0}, -1, 1).empty());
  EXPECT_TRUE(IsolateRealRoots({0.0, 1.0}, 5, 2).empty());  // empty interval
}

class SturmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SturmPropertyTest, RecoversPlantedRoots) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    // Build p = Π (x - r_i) with distinct planted roots.
    int n = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<double> planted;
    for (int i = 0; i < n; ++i) {
      double r;
      bool ok;
      do {
        r = rng.Uniform(-5, 5);
        ok = true;
        for (double p : planted) {
          if (std::fabs(p - r) < 0.2) ok = false;
        }
      } while (!ok);
      planted.push_back(r);
    }
    std::sort(planted.begin(), planted.end());
    UniPoly p{1.0};
    for (double r : planted) {
      UniPoly next(p.size() + 1, 0.0);
      for (size_t i = 0; i < p.size(); ++i) {
        next[i + 1] += p[i];
        next[i] -= r * p[i];
      }
      p = next;
    }
    std::vector<double> roots = IsolateRealRoots(p, -6, 6, 1e-10);
    ASSERT_EQ(roots.size(), planted.size());
    for (size_t i = 0; i < roots.size(); ++i) {
      EXPECT_NEAR(roots[i], planted[i], 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SturmPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mudb::poly
