// Compiled with MUDB_OBS_DISABLED: the entire tracing API must collapse to
// inline no-ops — no symbols from the obs library, no recording, no state.
// This TU deliberately links *nothing* from mudb::obs (the disabled branch
// is header-only), which is itself the test: any accidental reference to an
// out-of-line obs symbol fails at link time here. Instrumented call sites
// compile against this exact surface, so the whole stack builds with the
// flag — bit-identity compiled-out is then vacuous (spans do literally
// nothing), and obs_test covers the on/off halves of the contract.

#ifndef MUDB_OBS_DISABLED
#error "obs_disabled_test must be compiled with -DMUDB_OBS_DISABLED"
#endif

#include <string>

#include <gtest/gtest.h>

#include "src/obs/trace.h"

namespace mudb::obs {
namespace {

TEST(ObsDisabledTest, TracingCannotBeEnabled) {
  EnableTracing();
  EXPECT_FALSE(TracingEnabled());
  DisableTracing();
  EXPECT_FALSE(TracingEnabled());
}

TEST(ObsDisabledTest, SpansAreInertAndRecordNothing) {
  EnableTracing();
  {
    Span span("anything");
    EXPECT_FALSE(span.recording());
    EXPECT_FALSE(span.context().valid());
    EXPECT_EQ(span.context().trace_id, 0u);
    // Annotations accept every overload and do nothing.
    span.Annotate("num", 1.0);
    span.Annotate("cstr", "x");
    span.Annotate("str", std::string("y"));
    Span inner("nested");
    EXPECT_FALSE(inner.context().valid());
  }
  EXPECT_TRUE(CollectSpans().empty());
  EXPECT_TRUE(CollectTrace(123).empty());
  EXPECT_EQ(DroppedSpanCount(), 0);
  ClearTraces();
}

TEST(ObsDisabledTest, ContextPropagationIsInert) {
  EXPECT_FALSE(CurrentContext().valid());
  SpanContext ctx;
  ctx.trace_id = 7;
  ctx.span_id = 8;
  ScopedContext adopt(ctx);
  // Adoption is a no-op: nothing to restore, nothing observable.
  EXPECT_FALSE(CurrentContext().valid());
}

TEST(ObsDisabledTest, ExportersEmitTheEmptyDocument) {
  EXPECT_EQ(ChromeTraceJson({}), "{\"traceEvents\": []}\n");
  std::string path = ::testing::TempDir() + "/obs_disabled_trace.json";
  EXPECT_TRUE(WriteChromeTrace(path));
}

}  // namespace
}  // namespace mudb::obs
