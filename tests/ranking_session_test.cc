// Tests for the incremental re-ranking session
// (src/service/ranking_session.h): cold-session equivalence with RunTopK,
// the rerank determinism contract (rerank outcome ≡ cold rank of the same
// final state, at any thread count, for any delta sequence), content-keyed
// invalidation (identical-content updates keep every warm tier), streaming
// inserts/removals under per_estimate_delta, the adaptive ladder, engine
// routing, all-or-nothing delta failures, and introspection.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/ranking_service.h"
#include "src/service/ranking_session.h"

namespace mudb::service {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using measure::MeasureOptions;
using measure::MeasureResult;
using measure::Method;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

// The planar wedge of polar angles (0, alpha), alpha < π: ν = alpha / (2π).
RealFormula Wedge(double alpha) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(
      C(std::cos(alpha)) * Z(1) - C(std::sin(alpha)) * Z(0), CmpOp::kLt));
  return RealFormula::And(std::move(parts));
}

MeasureOptions Opts(Method method, double epsilon, uint64_t seed) {
  MeasureOptions o;
  o.method = method;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

constexpr int kWedges = 16;

double WedgeAngle(int d) { return 0.2 + 0.16 * d; }

MeasureRequest WedgeRequest(int d, double epsilon = 0.2) {
  return MeasureRequest::Nu(Wedge(WedgeAngle(d)),
                            Opts(Method::kFpras, epsilon, 100 + d));
}

std::vector<MeasureRequest> WedgeBattery(double epsilon = 0.2) {
  std::vector<MeasureRequest> reqs;
  reqs.reserve(kWedges);
  for (int d = 0; d < kWedges; ++d) reqs.push_back(WedgeRequest(d, epsilon));
  return reqs;
}

RankingOptions WedgeRanking() {
  RankingOptions opts;
  opts.k = 4;
  opts.ladder = {0.5, 0.3};
  opts.delta = 0.1;
  return opts;
}

// Streaming variant: per-estimate δ so signatures survive N changes.
RankingOptions StreamingRanking() {
  RankingOptions opts = WedgeRanking();
  opts.per_estimate_delta = 0.01;
  return opts;
}

RankingDelta InsertAll(std::vector<MeasureRequest> reqs) {
  RankingDelta delta;
  delta.inserts = std::move(reqs);
  return delta;
}

// The determinism-contract fields: everything except accounting.
void ExpectSameRanking(const RerankOutcome& a, const RerankOutcome& b,
                       bool compare_ids = true) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  if (compare_ids) {
    EXPECT_EQ(a.top_k, b.top_k);
  }
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const SessionCandidate& ca = a.candidates[i];
    const SessionCandidate& cb = b.candidates[i];
    EXPECT_EQ(ca.result.value, cb.result.value) << i;
    EXPECT_EQ(ca.result.ci_lo, cb.result.ci_lo) << i;
    EXPECT_EQ(ca.result.ci_hi, cb.result.ci_hi) << i;
    EXPECT_EQ(ca.result.tier, cb.result.tier) << i;
    EXPECT_EQ(ca.result.epsilon_used, cb.result.epsilon_used) << i;
    EXPECT_EQ(ca.pruned, cb.pruned) << i;
    EXPECT_EQ(ca.frozen, cb.frozen) << i;
  }
}

TEST(RankingSessionTest, ColdSessionMatchesRunTopK) {
  MeasureService session_service;
  RankingSession session(&session_service, WedgeRanking());
  auto cold = session.Rerank(InsertAll(WedgeBattery()));
  ASSERT_TRUE(cold.ok()) << cold.status();

  MeasureService oneshot_service;
  auto oneshot = oneshot_service.RunTopK(WedgeBattery(), WedgeRanking());
  ASSERT_TRUE(oneshot.ok()) << oneshot.status();

  // Ids of a fresh session are dense input indices, so the outcomes align
  // positionally — and a cold session pays exactly what RunTopK pays.
  ASSERT_EQ(cold->candidates.size(), oneshot->candidates.size());
  ASSERT_EQ(cold->top_k.size(), oneshot->top_k.size());
  for (size_t r = 0; r < cold->top_k.size(); ++r) {
    EXPECT_EQ(cold->top_k[r], static_cast<CandidateId>(oneshot->top_k[r]));
  }
  for (size_t i = 0; i < cold->candidates.size(); ++i) {
    EXPECT_EQ(cold->candidates[i].id, static_cast<CandidateId>(i));
    EXPECT_EQ(cold->candidates[i].result.value,
              oneshot->candidates[i].result.value)
        << i;
    EXPECT_EQ(cold->candidates[i].result.ci_lo,
              oneshot->candidates[i].result.ci_lo)
        << i;
    EXPECT_EQ(cold->candidates[i].result.ci_hi,
              oneshot->candidates[i].result.ci_hi)
        << i;
    EXPECT_EQ(cold->candidates[i].result.tier,
              oneshot->candidates[i].result.tier)
        << i;
    EXPECT_EQ(cold->candidates[i].pruned, oneshot->candidates[i].pruned) << i;
  }
  ASSERT_EQ(cold->tier_stats.size(), oneshot->tier_stats.size());
  for (size_t t = 0; t < cold->tier_stats.size(); ++t) {
    EXPECT_EQ(cold->tier_stats[t].requests, oneshot->tier_stats[t].requests)
        << t;
  }
  EXPECT_EQ(cold->total_sampling_steps, oneshot->total_sampling_steps);
  EXPECT_EQ(cold->warm_hits, 0);
  EXPECT_EQ(cold->invalidated, 0);
  ASSERT_EQ(cold->inserted_ids.size(), static_cast<size_t>(kWedges));
}

TEST(RankingSessionTest, EmptyRerankReplaysEntirelyWarm) {
  MeasureService service;
  RankingSession session(&service, WedgeRanking());
  auto cold = session.Rerank(InsertAll(WedgeBattery()));
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_GT(cold->total_sampling_steps, 0);

  auto replay = session.Rerank();
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectSameRanking(*cold, *replay);
  EXPECT_EQ(replay->total_sampling_steps, 0);
  EXPECT_EQ(replay->warm_hits, replay->evaluations);
  EXPECT_EQ(replay->invalidated, 0);
  // The replay walks the same tiers; it just never touches the service.
  ASSERT_EQ(replay->tier_stats.size(), cold->tier_stats.size());
  for (const BatchStats& stats : replay->tier_stats) {
    EXPECT_EQ(stats.requests, 0);
    EXPECT_EQ(stats.sampling_steps, 0);
  }
}

TEST(RankingSessionTest, IdenticalContentUpdateIsANoOp) {
  MeasureService service;
  RankingSession session(&service, WedgeRanking());
  auto cold = session.Rerank(InsertAll(WedgeBattery()));
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Re-send candidate 5's exact content: same grounded formula, same
  // options. Content-keyed invalidation must keep every warm tier.
  RankingDelta delta;
  delta.updates.emplace_back(5, WedgeRequest(5));
  auto rerank = session.Rerank(std::move(delta));
  ASSERT_TRUE(rerank.ok()) << rerank.status();
  EXPECT_EQ(rerank->invalidated, 0);
  EXPECT_EQ(rerank->total_sampling_steps, 0);
  EXPECT_EQ(rerank->warm_hits, rerank->evaluations);
  ExpectSameRanking(*cold, *rerank);
}

TEST(RankingSessionTest, MutationRerankIsBitIdenticalToColdRankOfFinalState) {
  MeasureService service;
  RankingSession session(&service, WedgeRanking());
  auto cold = session.Rerank(InsertAll(WedgeBattery()));
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Mutate candidate 5 to a different wedge (content change).
  MeasureRequest mutated = MeasureRequest::Nu(
      Wedge(WedgeAngle(5) + 0.07), Opts(Method::kFpras, 0.2, 100 + 5));
  RankingDelta delta;
  delta.updates.emplace_back(5, mutated);
  auto rerank = session.Rerank(std::move(delta));
  ASSERT_TRUE(rerank.ok()) << rerank.status();
  EXPECT_EQ(rerank->invalidated, 1);
  EXPECT_GT(rerank->warm_hits, 0);
  EXPECT_LT(rerank->total_sampling_steps, cold->total_sampling_steps);

  // A cold ranking of the same final state must agree bit-for-bit — on a
  // single-threaded service and on a wide pool alike.
  for (int threads : {1, 8}) {
    ServiceOptions sopts;
    sopts.num_threads = threads;
    MeasureService cold_service(sopts);
    RankingSession cold_session(&cold_service, WedgeRanking());
    std::vector<MeasureRequest> final_state = WedgeBattery();
    final_state[5] = mutated;
    auto reference = cold_session.Rerank(InsertAll(std::move(final_state)));
    ASSERT_TRUE(reference.ok()) << reference.status();
    ExpectSameRanking(*reference, *rerank);
  }
}

TEST(RankingSessionTest, DeltaSequenceDoesNotChangeTheOutcome) {
  // Two sessions reach the same final (id → content) map along different
  // delta sequences; the contract says the rankings agree bit-for-bit.
  RankingOptions ropts = StreamingRanking();
  MeasureRequest mutated = MeasureRequest::Nu(
      Wedge(WedgeAngle(7) + 0.05), Opts(Method::kFpras, 0.2, 100 + 7));

  // Session A: insert all, then remove id 3, then mutate id 7.
  MeasureService service_a;
  RankingSession a(&service_a, ropts);
  ASSERT_TRUE(a.Rerank(InsertAll(WedgeBattery())).ok());
  RankingDelta remove3;
  remove3.removals.push_back(3);
  ASSERT_TRUE(a.Rerank(std::move(remove3)).ok());
  RankingDelta mutate7;
  mutate7.updates.emplace_back(7, mutated);
  auto outcome_a = a.Rerank(std::move(mutate7));
  ASSERT_TRUE(outcome_a.ok()) << outcome_a.status();

  // Session B: insert all, then one combined delta (remove 3, mutate 7).
  MeasureService service_b;
  RankingSession b(&service_b, ropts);
  ASSERT_TRUE(b.Rerank(InsertAll(WedgeBattery())).ok());
  RankingDelta combined;
  combined.removals.push_back(3);
  combined.updates.emplace_back(7, mutated);
  auto outcome_b = b.Rerank(std::move(combined));
  ASSERT_TRUE(outcome_b.ok()) << outcome_b.status();

  ExpectSameRanking(*outcome_a, *outcome_b);
}

TEST(RankingSessionTest, PerEstimateDeltaKeepsWarmStateAcrossInserts) {
  // With per_estimate_delta, signatures are independent of N: streaming
  // inserts/removals keep every untouched candidate's warm tiers.
  MeasureService service;
  RankingSession session(&service, StreamingRanking());
  std::vector<MeasureRequest> initial;
  for (int d = 0; d < 12; ++d) initial.push_back(WedgeRequest(d));
  auto cold = session.Rerank(InsertAll(std::move(initial)));
  ASSERT_TRUE(cold.ok()) << cold.status();

  RankingDelta delta;
  for (int d = 12; d < kWedges; ++d) delta.inserts.push_back(WedgeRequest(d));
  delta.removals.push_back(2);
  auto rerank = session.Rerank(std::move(delta));
  ASSERT_TRUE(rerank.ok()) << rerank.status();
  EXPECT_EQ(session.num_candidates(), 15u);
  EXPECT_GT(rerank->warm_hits, 0);
  EXPECT_LT(rerank->total_sampling_steps, cold->total_sampling_steps);

  // Contract check: a cold session over the same final state agrees.
  MeasureService cold_service;
  RankingSession cold_session(&cold_service, StreamingRanking());
  std::vector<MeasureRequest> final_state;
  for (int d = 0; d < kWedges; ++d) {
    if (d != 2) final_state.push_back(WedgeRequest(d));
  }
  auto reference = cold_session.Rerank(InsertAll(std::move(final_state)));
  ASSERT_TRUE(reference.ok()) << reference.status();
  // Ids differ (the session skips 2 and appends 12..15 later), so compare
  // positionally: both outcomes list candidates in ascending id order,
  // which is insertion order here.
  ExpectSameRanking(*reference, *rerank, /*compare_ids=*/false);
}

TEST(RankingSessionTest, DefaultDeltaSplitInvalidatesOnCardinalityChange) {
  // The documented caveat: with the δ/(N·T) split an insert re-budgets
  // every request's δ, so no signature survives — correct, but fully cold.
  MeasureService service;
  RankingSession session(&service, WedgeRanking());
  std::vector<MeasureRequest> initial;
  for (int d = 0; d < 8; ++d) initial.push_back(WedgeRequest(d));
  ASSERT_TRUE(session.Rerank(InsertAll(std::move(initial))).ok());

  RankingDelta delta;
  delta.inserts.push_back(WedgeRequest(8));
  auto rerank = session.Rerank(std::move(delta));
  ASSERT_TRUE(rerank.ok()) << rerank.status();
  EXPECT_EQ(rerank->warm_hits, 0);
  EXPECT_GT(rerank->total_sampling_steps, 0);
}

TEST(RankingSessionTest, AdaptiveLadderIsDeterministicAndSeparatesTopK) {
  RankingOptions ropts;
  ropts.k = 4;
  ropts.ladder = {0.5};
  ropts.delta = 0.1;
  ropts.adaptive_ladder = true;
  ropts.max_tiers = 5;

  RerankOutcome reference;
  for (int threads : {1, 8}) {
    ServiceOptions sopts;
    sopts.num_threads = threads;
    MeasureService service(sopts);
    RankingSession session(&service, ropts);
    auto outcome = session.Rerank(InsertAll(WedgeBattery(0.1)));
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_LE(outcome->tier_stats.size(), 5u);
    if (threads == 1) {
      reference = *outcome;
    } else {
      ExpectSameRanking(reference, *outcome);
      EXPECT_EQ(reference.total_sampling_steps,
                outcome->total_sampling_steps);
    }
  }

  // The wide wedge spread separates the true top-4; survivors reached their
  // own final ε and a survivor's final evaluation is the same bit-identical
  // request a fixed ladder would have issued (same ε, same tier δ when the
  // budgets agree).
  std::vector<CandidateId> top = reference.top_k;
  std::sort(top.begin(), top.end());
  std::vector<CandidateId> expected = {12, 13, 14, 15};
  EXPECT_EQ(top, expected);
  for (CandidateId id : reference.top_k) {
    const SessionCandidate& cand = reference.candidates[id];
    EXPECT_TRUE(cand.frozen) << id;
    EXPECT_EQ(cand.result.epsilon_used, 0.1) << id;
  }
}

TEST(RankingSessionTest, EngineRoutingKeepsFinalTierOnRequestMethod) {
  RankingOptions ropts;
  ropts.k = 4;
  ropts.ladder = {0.5, 0.3, 0.15};
  ropts.delta = 0.1;
  ropts.route_engines = true;

  // Deterministic across runs and thread counts, like every other mode.
  RerankOutcome reference;
  for (int threads : {1, 8}) {
    ServiceOptions sopts;
    sopts.num_threads = threads;
    MeasureService service(sopts);
    RankingSession session(&service, ropts);
    auto outcome = session.Rerank(InsertAll(WedgeBattery(0.1)));
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    if (threads == 1) {
      reference = *outcome;
    } else {
      ExpectSameRanking(reference, *outcome);
    }
  }

  // Routing only ever touches intermediate tiers: every unpruned candidate
  // finished on its own requested engine at its own ε.
  std::vector<CandidateId> top = reference.top_k;
  std::sort(top.begin(), top.end());
  std::vector<CandidateId> expected = {12, 13, 14, 15};
  EXPECT_EQ(top, expected);
  for (const SessionCandidate& cand : reference.candidates) {
    if (!cand.pruned) {
      EXPECT_EQ(cand.result.method_used, Method::kFpras) << cand.id;
      EXPECT_EQ(cand.result.epsilon_used, 0.1) << cand.id;
    }
  }
}

TEST(RankingSessionTest, BadDeltasAreAllOrNothing) {
  MeasureService service;
  RankingSession session(&service, WedgeRanking());
  auto cold = session.Rerank(InsertAll(WedgeBattery()));
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Unknown removal id.
  RankingDelta unknown_removal;
  unknown_removal.removals.push_back(999);
  EXPECT_EQ(session.Rerank(std::move(unknown_removal)).status().code(),
            util::StatusCode::kNotFound);

  // Unknown update id.
  RankingDelta unknown_update;
  unknown_update.updates.emplace_back(999, WedgeRequest(0));
  EXPECT_EQ(session.Rerank(std::move(unknown_update)).status().code(),
            util::StatusCode::kNotFound);

  // A valid removal bundled with an invalid insert must not be applied.
  RankingDelta mixed;
  mixed.removals.push_back(3);
  MeasureRequest bad = WedgeRequest(0);
  bad.options.delta = 2.0;
  mixed.inserts.push_back(std::move(bad));
  auto mixed_outcome = session.Rerank(std::move(mixed));
  EXPECT_EQ(mixed_outcome.status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(session.num_candidates(), static_cast<size_t>(kWedges));
  EXPECT_TRUE(session.Candidate(3).has_value());

  // The session is untouched: an empty rerank replays entirely warm.
  auto replay = session.Rerank();
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectSameRanking(*cold, *replay);
  EXPECT_EQ(replay->total_sampling_steps, 0);
}

TEST(RankingSessionTest, EvaluationFailureLeavesTheSessionRecoverable) {
  MeasureService service;
  RankingSession session(&service, WedgeRanking());
  ASSERT_TRUE(session.Rerank(InsertAll(WedgeBattery())).ok());

  // A nonlinear formula forced onto the FPRAS fails during evaluation:
  // the delta is applied (validation passed), the rerank errors out.
  RankingDelta delta;
  delta.inserts.push_back(MeasureRequest::Nu(
      RealFormula::Cmp(Z(0) * Z(1) - C(1), CmpOp::kLt),
      Opts(Method::kFpras, 0.2, 42)));
  auto broken = session.Rerank(std::move(delta));
  EXPECT_EQ(broken.status().code(), util::StatusCode::kInvalidArgument);
  ASSERT_EQ(session.num_candidates(), static_cast<size_t>(kWedges) + 1);

  // Removing the offender restores a working session, and the earlier
  // candidates' tiers are still warm.
  RankingDelta repair;
  repair.removals.push_back(static_cast<CandidateId>(kWedges));
  auto repaired = session.Rerank(std::move(repair));
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_GT(repaired->warm_hits, 0);
}

TEST(RankingSessionTest, IntrospectionTracksSlotsAndMemo) {
  // Streaming options so the removal below does not re-budget δ (which
  // would mint fresh signatures and grow the memo right back).
  MeasureService service;
  RankingSession session(&service, StreamingRanking());
  EXPECT_EQ(session.num_candidates(), 0u);
  EXPECT_EQ(session.memo_size(), 0u);
  EXPECT_FALSE(session.Candidate(0).has_value());

  auto cold = session.Rerank(InsertAll(WedgeBattery()));
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(session.num_candidates(), static_cast<size_t>(kWedges));
  EXPECT_GT(session.memo_size(), 0u);

  auto snapshot = session.Candidate(7);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->id, 7u);
  EXPECT_EQ(snapshot->result.value, cold->candidates[7].result.value);
  EXPECT_EQ(snapshot->pruned, cold->candidates[7].pruned);

  // Removal releases the slot, its snapshot, and its memo references.
  size_t memo_before = session.memo_size();
  RankingDelta remove7;
  remove7.removals.push_back(7);
  ASSERT_TRUE(session.Rerank(std::move(remove7)).ok());
  EXPECT_EQ(session.num_candidates(), static_cast<size_t>(kWedges) - 1);
  EXPECT_FALSE(session.Candidate(7).has_value());
  EXPECT_LT(session.memo_size(), memo_before);

  // Ids are never reused: the next insert continues the counter.
  RankingDelta insert;
  insert.inserts.push_back(WedgeRequest(7));
  auto rerank = session.Rerank(std::move(insert));
  ASSERT_TRUE(rerank.ok()) << rerank.status();
  ASSERT_EQ(rerank->inserted_ids.size(), 1u);
  EXPECT_EQ(rerank->inserted_ids[0], static_cast<CandidateId>(kWedges));
}

TEST(RankingSessionTest, DuplicateCandidatesStayBitIdenticalThroughRerank) {
  // Two copies of every wedge, streaming options; mutate ONE copy of
  // wedge 5 and check the other copy keeps its warm, bit-identical result.
  MeasureService service;
  RankingSession session(&service, StreamingRanking());
  std::vector<MeasureRequest> reqs;
  for (int d = 0; d < 8; ++d) {
    reqs.push_back(WedgeRequest(d));
    reqs.push_back(WedgeRequest(d));
  }
  auto cold = session.Rerank(InsertAll(std::move(reqs)));
  ASSERT_TRUE(cold.ok()) << cold.status();
  for (size_t pair = 0; pair < 8; ++pair) {
    const MeasureResult& a = cold->candidates[2 * pair].result;
    const MeasureResult& b = cold->candidates[2 * pair + 1].result;
    EXPECT_EQ(a.value, b.value) << pair;
    EXPECT_EQ(a.ci_lo, b.ci_lo) << pair;
    EXPECT_EQ(a.ci_hi, b.ci_hi) << pair;
  }

  RankingDelta delta;
  delta.updates.emplace_back(
      10, MeasureRequest::Nu(Wedge(WedgeAngle(5) + 0.3),
                             Opts(Method::kFpras, 0.2, 100 + 5)));
  auto rerank = session.Rerank(std::move(delta));
  ASSERT_TRUE(rerank.ok()) << rerank.status();
  EXPECT_EQ(rerank->invalidated, 1);
  // The untouched twin (id 11) kept its bits.
  EXPECT_EQ(rerank->candidates[11].result.value,
            cold->candidates[11].result.value);
  EXPECT_EQ(rerank->candidates[11].result.ci_lo,
            cold->candidates[11].result.ci_lo);
  EXPECT_EQ(rerank->candidates[11].result.ci_hi,
            cold->candidates[11].result.ci_hi);
  // And the whole rerank matches a cold rank of the final state.
  MeasureService cold_service;
  RankingSession cold_session(&cold_service, StreamingRanking());
  std::vector<MeasureRequest> final_state;
  for (int d = 0; d < 8; ++d) {
    for (int copy = 0; copy < 2; ++copy) {
      if (d == 5 && copy == 0) {
        final_state.push_back(
            MeasureRequest::Nu(Wedge(WedgeAngle(5) + 0.3),
                               Opts(Method::kFpras, 0.2, 100 + 5)));
      } else {
        final_state.push_back(WedgeRequest(d));
      }
    }
  }
  auto reference = cold_session.Rerank(InsertAll(std::move(final_state)));
  ASSERT_TRUE(reference.ok()) << reference.status();
  ExpectSameRanking(*reference, *rerank);
}

}  // namespace
}  // namespace mudb::service
