// Tests for the synthetic data generator.

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"

namespace mudb::datagen {
namespace {

using model::Sort;
using model::Value;

TEST(GenerateRelationTest, RespectsSpecs) {
  model::Database db;
  util::Rng rng(1);
  std::vector<ColumnSpec> cols(2);
  cols[0].name = "k";
  cols[0].sort = Sort::kBase;
  cols[0].prefix = "k";
  cols[0].cardinality = 4;
  cols[1].name = "v";
  cols[1].sort = Sort::kNum;
  cols[1].lo = 10;
  cols[1].hi = 20;
  cols[1].decimals = 1;
  ASSERT_TRUE(GenerateRelation(&db, "T", cols, 500, rng).ok());
  const model::Relation* rel = db.GetRelation("T").value();
  EXPECT_EQ(rel->size(), 500u);
  for (const model::Tuple& t : rel->tuples()) {
    EXPECT_EQ(t[0].sort(), Sort::kBase);
    EXPECT_EQ(t[0].base_const().substr(0, 1), "k");
    double v = t[1].num_const();
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(GenerateRelationTest, NullRateApproximatelyRespected) {
  model::Database db;
  util::Rng rng(2);
  std::vector<ColumnSpec> cols(1);
  cols[0].name = "v";
  cols[0].sort = Sort::kNum;
  cols[0].null_rate = 0.2;
  ASSERT_TRUE(GenerateRelation(&db, "T", cols, 5000, rng).ok());
  size_t nulls = db.CollectNumNullIds().size();
  EXPECT_NEAR(static_cast<double>(nulls) / 5000.0, 0.2, 0.03);
}

TEST(SalesDatabaseTest, SizesAndSchema) {
  SalesConfig config;
  config.num_products = 1000;
  config.num_orders = 600;
  config.num_segments = 20;
  config.null_rate = 0.1;
  auto db = MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->GetRelation("Products").value()->size(), 1000u);
  EXPECT_EQ(db->GetRelation("Orders").value()->size(), 600u);
  EXPECT_EQ(db->GetRelation("Market").value()->size(), 20u);
  EXPECT_EQ(db->TotalTuples(), 1620u);
}

TEST(SalesDatabaseTest, DeterministicGivenSeed) {
  SalesConfig config;
  config.num_products = 200;
  config.num_orders = 100;
  config.num_segments = 5;
  config.seed = 99;
  auto a = MakeSalesDatabase(config);
  auto b = MakeSalesDatabase(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
  config.seed = 100;
  auto c = MakeSalesDatabase(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->ToString(), c->ToString());
}

TEST(SalesDatabaseTest, NullRateInExpectedBand) {
  SalesConfig config;
  config.num_products = 3000;
  config.num_orders = 2000;
  config.num_segments = 50;
  config.null_rate = 0.05;
  auto db = MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  // Numeric cells: 2 per product + 2 per order + 2 per market row.
  double cells = 2.0 * (3000 + 2000 + 50);
  double rate = db->CollectNumNullIds().size() / cells;
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(SalesDatabaseTest, OrdersReferenceExistingProducts) {
  SalesConfig config;
  config.num_products = 50;
  config.num_orders = 200;
  config.num_segments = 5;
  auto db = MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  for (const model::Tuple& t : db->GetRelation("Orders").value()->tuples()) {
    const std::string& pr = t[1].base_const();
    ASSERT_EQ(pr[0], 'p');
    int idx = std::stoi(pr.substr(1));
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 50);
  }
}

TEST(CampaignDatabaseTest, MatchesThePaperExample) {
  auto campaign = MakeCampaignDatabase();
  ASSERT_TRUE(campaign.ok());
  const model::Database& db = campaign->db;
  EXPECT_EQ(db.GetRelation("Products").value()->size(), 2u);
  EXPECT_EQ(db.GetRelation("Competition").value()->size(), 1u);
  EXPECT_EQ(db.GetRelation("Excluded").value()->size(), 1u);
  // Exactly two numeric nulls (α and α') and one base null (⊥'').
  EXPECT_EQ(db.CollectNumNullIds().size(), 2u);
  EXPECT_EQ(db.CollectBaseNullIds().size(), 1u);
  EXPECT_NE(campaign->alpha, campaign->alpha_prime);
}

}  // namespace
}  // namespace mudb::datagen
