// Tests for src/convex: bodies, chords, inner balls, hit-and-run, annealed
// volume estimation.

#include <cmath>

#include <gtest/gtest.h>

#include "src/convex/body.h"
#include "src/convex/sampler.h"
#include "src/convex/volume.h"
#include "src/geom/geometry.h"

namespace mudb::convex {
namespace {

ConvexBody UnitBallBody(int n) {
  ConvexBody body(n);
  body.AddBall(geom::Vec(n, 0.0), 1.0);
  return body;
}

// The positive-orthant cone intersected with the unit ball.
ConvexBody OrthantCone(int n) {
  ConvexBody body(n);
  for (int j = 0; j < n; ++j) {
    geom::Vec a(n, 0.0);
    a[j] = -1.0;  // -x_j <= 0, i.e. x_j >= 0
    body.AddHalfspace(a, 0.0);
  }
  body.AddBall(geom::Vec(n, 0.0), 1.0);
  return body;
}

TEST(BodyTest, ContainsRespectsHalfspacesAndBalls) {
  ConvexBody body = OrthantCone(2);
  EXPECT_TRUE(body.Contains({0.3, 0.3}));
  EXPECT_FALSE(body.Contains({-0.3, 0.3}));
  EXPECT_FALSE(body.Contains({0.9, 0.9}));  // outside the ball
  EXPECT_TRUE(body.Contains({0.0, 0.0}));
}

TEST(BodyTest, ChordAgainstBall) {
  ConvexBody body = UnitBallBody(2);
  auto chord = body.Chord({0.0, 0.0}, {1.0, 0.0});
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(chord->first, -1.0, 1e-12);
  EXPECT_NEAR(chord->second, 1.0, 1e-12);
}

TEST(BodyTest, ChordAgainstHalfspace) {
  ConvexBody body = OrthantCone(2);
  auto chord = body.Chord({0.2, 0.2}, {1.0, 0.0});
  ASSERT_TRUE(chord.has_value());
  EXPECT_NEAR(chord->first, -0.2, 1e-12);  // x >= 0 wall
  // Right end on the unit circle: 0.04 + (0.2+t)^2 = 1.
  EXPECT_NEAR(chord->second, std::sqrt(1 - 0.04) - 0.2, 1e-12);
}

TEST(BodyTest, ChordParallelToHalfspaceOutside) {
  ConvexBody body(2);
  body.AddHalfspace({0.0, 1.0}, 0.0);  // y <= 0
  body.AddBall({0.0, 0.0}, 1.0);
  // Point above the halfspace, direction parallel to it: no chord.
  EXPECT_FALSE(body.Chord({0.0, 0.5}, {1.0, 0.0}).has_value());
}

TEST(InnerBallTest, OrthantConeHasInteriorBall) {
  std::vector<std::pair<geom::Vec, double>> hs;
  for (int j = 0; j < 3; ++j) {
    geom::Vec a(3, 0.0);
    a[j] = -1.0;
    hs.emplace_back(a, 0.0);
  }
  auto inner = FindInnerBall(hs, 3, 1.0);
  ASSERT_TRUE(inner.has_value());
  EXPECT_GT(inner->radius, 0.05);
  // The ball must sit inside the cone and the unit ball.
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(inner->center[j], inner->radius - 1e-9);
  }
  EXPECT_LE(geom::Norm(inner->center) + inner->radius, 1.0 + 1e-9);
}

TEST(InnerBallTest, EmptyConeReturnsNothing) {
  // x <= 0 and -x <= 0 and then y <= -x ... make an actually empty interior:
  // x >= 0 and x <= 0 pins x = 0 (lower-dimensional).
  std::vector<std::pair<geom::Vec, double>> hs;
  hs.push_back({{1.0, 0.0}, 0.0});   // x <= 0
  hs.push_back({{-1.0, 0.0}, 0.0});  // x >= 0
  auto inner = FindInnerBall(hs, 2, 1.0);
  EXPECT_FALSE(inner.has_value());
}

TEST(InnerBallTest, TrivialAndInfeasibleZeroRows) {
  std::vector<std::pair<geom::Vec, double>> trivial;
  trivial.push_back({{0.0, 0.0}, 1.0});  // 0 <= 1
  EXPECT_TRUE(FindInnerBall(trivial, 2, 1.0).has_value());
  std::vector<std::pair<geom::Vec, double>> impossible;
  impossible.push_back({{0.0, 0.0}, -1.0});  // 0 <= -1
  EXPECT_FALSE(FindInnerBall(impossible, 2, 1.0).has_value());
}

TEST(InnerBallTest, FinderReuseIsPure) {
  // A reused InnerBallFinder must return bit-identical inner balls to
  // one-shot FindInnerBall calls for every cone, in any order — the
  // guarantee that lets the FPRAS chunk cones across a finder without
  // perturbing the estimate.
  util::Rng rng(77);
  std::vector<std::vector<std::pair<geom::Vec, double>>> cones;
  for (int c = 0; c < 8; ++c) {
    int dim = 2 + c % 3;
    std::vector<std::pair<geom::Vec, double>> hs;
    for (int i = 0; i < dim; ++i) {
      geom::Vec a(dim);
      for (int j = 0; j < dim; ++j) a[j] = rng.Uniform(-1, 1);
      hs.emplace_back(std::move(a), 0.0);
    }
    cones.push_back(std::move(hs));
  }
  for (int dim : {2, 3, 4}) {
    InnerBallFinder finder(dim, 1.0);
    for (const auto& cone : cones) {
      if (static_cast<int>(cone[0].first.size()) != dim) continue;
      auto one_shot = FindInnerBall(cone, dim, 1.0);
      auto reused = finder.Find(cone);
      ASSERT_EQ(one_shot.has_value(), reused.has_value());
      if (!one_shot) continue;
      EXPECT_EQ(one_shot->center, reused->center);
      EXPECT_EQ(one_shot->radius, reused->radius);
    }
  }
}

TEST(BodyTest, SetBallRadiusMatchesFreshlyBuiltBody) {
  // The annealing estimator mutates one ball's radius in place; the mutated
  // body must behave bit-identically to a body built with that radius.
  ConvexBody mutated = OrthantCone(3);
  mutated.SetBallRadius(0, 0.6);
  ConvexBody fresh(3);
  for (int j = 0; j < 3; ++j) {
    geom::Vec a(3, 0.0);
    a[j] = -1.0;
    fresh.AddHalfspace(a, 0.0);
  }
  fresh.AddBall(geom::Vec(3, 0.0), 0.6);
  util::Rng rng(13);
  for (int rep = 0; rep < 100; ++rep) {
    geom::Vec x(3), d = geom::SampleUnitSphere(3, rng);
    for (int j = 0; j < 3; ++j) x[j] = rng.Uniform(0.0, 0.3);
    EXPECT_EQ(mutated.Contains(x), fresh.Contains(x));
    auto a = mutated.Chord(x, d);
    auto b = fresh.Chord(x, d);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->first, b->first);
      EXPECT_EQ(a->second, b->second);
    }
  }
  EXPECT_EQ(mutated.balls()[0].radius, 0.6);
  EXPECT_EQ(mutated.ball_radius2()[0], 0.36);
}

TEST(SamplerTest, StaysInsideBody) {
  ConvexBody body = OrthantCone(3);
  util::Rng rng(5);
  HitAndRunSampler sampler(&body, {0.1, 0.1, 0.1});
  for (int i = 0; i < 2000; ++i) {
    sampler.Step(rng);
    EXPECT_TRUE(body.Contains(sampler.current()));
  }
}

TEST(SamplerTest, BallSamplingIsApproximatelyUniform) {
  // In the unit ball, P(||x|| <= 2^{-1/n}) should be 1/2.
  const int n = 2;
  ConvexBody body = UnitBallBody(n);
  util::Rng rng(6);
  HitAndRunSampler sampler(&body, geom::Vec(n, 0.0));
  sampler.Walk(200, rng);
  int inside = 0;
  const int m = 20000;
  double threshold = std::pow(0.5, 1.0 / n);
  for (int i = 0; i < m; ++i) {
    sampler.Walk(8, rng);
    if (geom::Norm(sampler.current()) <= threshold) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / m, 0.5, 0.03);
}

TEST(VolumeTest, UnitBall2D) {
  ConvexBody body = UnitBallBody(2);
  InnerBall inner{geom::Vec(2, 0.0), 0.9};
  VolumeOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(7);
  VolumeEstimate est = EstimateVolume(body, inner, 1.01, opts, rng);
  EXPECT_NEAR(est.volume, M_PI, 0.12 * M_PI);
}

TEST(VolumeTest, HalfBall2D) {
  ConvexBody body(2);
  body.AddHalfspace({0.0, 1.0}, 0.0);  // y <= 0
  body.AddBall({0.0, 0.0}, 1.0);
  auto inner = FindInnerBall({{{0.0, 1.0}, 0.0}}, 2, 1.0);
  ASSERT_TRUE(inner.has_value());
  VolumeOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(8);
  VolumeEstimate est =
      EstimateVolume(body, *inner, 1.0 + geom::Norm(inner->center), opts, rng);
  EXPECT_NEAR(est.volume, M_PI / 2, 0.12 * M_PI / 2);
}

TEST(SamplerTest, ThinBodyStaysInsideAndMoves) {
  // A nearly degenerate slab: |y| <= 1e-6 inside the unit disc. Almost every
  // chord is tiny (long moves need near-tangent directions — the known slow
  // mixing of hit-and-run on thin bodies), so the test asserts containment
  // under rounding pressure plus movement relative to the slab scale, not
  // full mixing.
  const double half_width = 1e-6;
  ConvexBody body(2);
  body.AddHalfspace({0.0, 1.0}, half_width);   // y <= 1e-6
  body.AddHalfspace({0.0, -1.0}, half_width);  // y >= -1e-6
  body.AddBall({0.0, 0.0}, 1.0);
  util::Rng rng(17);
  HitAndRunSampler sampler(&body, {0.0, 0.0});
  double max_abs_x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    sampler.Step(rng);
    ASSERT_TRUE(body.Contains(sampler.current()));
    max_abs_x = std::max(max_abs_x, std::fabs(sampler.current()[0]));
  }
  // The chain is not stuck: it travels orders of magnitude beyond the short
  // axis along the long one.
  EXPECT_GT(max_abs_x, 100 * half_width);
}

TEST(SamplerTest, OneDimensionalBody) {
  // 1-D body: the segment [-1, 0.5]. Directions are ±1; chords are the whole
  // segment, so a few steps must mix over it.
  ConvexBody body(1);
  body.AddHalfspace({1.0}, 0.5);  // x <= 0.5
  body.AddBall({0.0}, 1.0);       // x >= -1
  util::Rng rng(21);
  HitAndRunSampler sampler(&body, {0.0});
  int below = 0;
  const int m = 20000;
  for (int i = 0; i < m; ++i) {
    sampler.Step(rng);
    ASSERT_TRUE(body.Contains(sampler.current()));
    if (sampler.current()[0] < -0.25) ++below;
  }
  // [-1, -0.25) is half of [-1, 0.5].
  EXPECT_NEAR(static_cast<double>(below) / m, 0.5, 0.03);
}

TEST(InnerBallTest, ThinConeHasEmptyInterior) {
  // Opposing halfspaces pin y = 0: the cone degenerates to a half-line, the
  // LP margin stays below threshold, and the cone is dropped (volume 0) —
  // how the FPRAS pipeline discards measure-zero disjuncts.
  std::vector<std::pair<geom::Vec, double>> hs;
  hs.push_back({{0.0, 1.0}, 0.0});   // y <= 0
  hs.push_back({{0.0, -1.0}, 0.0});  // y >= 0
  hs.push_back({{-1.0, 0.0}, 0.0});  // x >= 0
  EXPECT_FALSE(FindInnerBall(hs, 2, 1.0).has_value());
}

TEST(InnerBallTest, OneDimensionalHalfLine) {
  // In 1-D the cone x >= 0 inside [-1, 1] has inner "ball" an interval.
  std::vector<std::pair<geom::Vec, double>> hs;
  hs.push_back({{-1.0}, 0.0});  // x >= 0
  auto inner = FindInnerBall(hs, 1, 1.0);
  ASSERT_TRUE(inner.has_value());
  EXPECT_GT(inner->radius, 0.1);
  EXPECT_GE(inner->center[0], inner->radius - 1e-9);
}

TEST(VolumeTest, OneDimensionalSegment) {
  // Vol([-1, 0.5]) = 1.5, via the full annealing pipeline in n = 1.
  ConvexBody body(1);
  body.AddHalfspace({1.0}, 0.5);
  body.AddBall({0.0}, 1.0);
  InnerBall inner{{-0.25}, 0.2};
  VolumeOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(23);
  VolumeEstimate est = EstimateVolume(body, inner, 1.5, opts, rng);
  EXPECT_NEAR(est.volume, 1.5, 0.15);
}

TEST(VolumeTest, EstimateIsPoolInvariant) {
  // The same seed must give the identical estimate inline and on pools of
  // different sizes (the chunk grid is a function of the budget alone).
  ConvexBody body = OrthantCone(3);
  std::vector<std::pair<geom::Vec, double>> hs;
  for (int j = 0; j < 3; ++j) {
    geom::Vec a(3, 0.0);
    a[j] = -1.0;
    hs.emplace_back(a, 0.0);
  }
  auto inner = FindInnerBall(hs, 3, 1.0);
  ASSERT_TRUE(inner.has_value());
  VolumeOptions opts;
  opts.epsilon = 0.1;
  util::Rng rng_inline(31);
  double baseline =
      EstimateVolume(body, *inner, 2.0, opts, rng_inline).volume;
  for (int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    VolumeOptions pooled = opts;
    pooled.pool = &pool;
    util::Rng rng(31);
    EXPECT_EQ(EstimateVolume(body, *inner, 2.0, pooled, rng).volume, baseline)
        << "threads " << threads;
  }
}

TEST(VolumeTest, OrthantCone3DIsEighthBall) {
  ConvexBody body = OrthantCone(3);
  std::vector<std::pair<geom::Vec, double>> hs;
  for (int j = 0; j < 3; ++j) {
    geom::Vec a(3, 0.0);
    a[j] = -1.0;
    hs.emplace_back(a, 0.0);
  }
  auto inner = FindInnerBall(hs, 3, 1.0);
  ASSERT_TRUE(inner.has_value());
  VolumeOptions opts;
  opts.epsilon = 0.08;
  util::Rng rng(9);
  VolumeEstimate est =
      EstimateVolume(body, *inner, 1.0 + geom::Norm(inner->center), opts, rng);
  double expected = geom::BallVolume(3) / 8.0;
  EXPECT_NEAR(est.volume, expected, 0.2 * expected);
}

}  // namespace
}  // namespace mudb::convex
