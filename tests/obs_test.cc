// Tests for src/obs: histogram bucket determinism, quantiles against exact
// references, snapshot-vs-concurrent-writers exactness (this suite runs
// under TSan in CI), span parentage within a thread and across the
// ThreadPool and ShardTransport seams, the observability determinism
// contract (tracing on/off leaves every result bit-identical), and
// fake-clock-driven durations.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/constraints/real_formula.h"
#include "src/measure/measure.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/poly/polynomial.h"
#include "src/service/measure_service.h"
#include "src/service/sharded_service.h"
#include "src/util/deadline.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace mudb::obs {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }

// 3-D positive orthant: a cheap single-body FPRAS workload.
RealFormula Orthant3D() {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  return RealFormula::And(std::move(parts));
}

measure::MeasureOptions FprasOpts(uint64_t seed) {
  measure::MeasureOptions opts;
  opts.method = measure::Method::kFpras;
  opts.epsilon = 0.5;
  opts.seed = seed;
  return opts;
}

// Restores the tracing default (off, no recorded spans) around each test
// that toggles it, so suites do not observe each other's spans.
struct ScopedTracing {
  ScopedTracing() {
    ClearTraces();
    EnableTracing();
  }
  ~ScopedTracing() {
    DisableTracing();
    ClearTraces();
  }
};

// ---- Histogram bucketing ----------------------------------------------------

TEST(HistogramBucketTest, IndexIsExactHalfExponent) {
  // v = 1: v^2 = 1, ilogb = 0 -> half-exponent 0.
  EXPECT_EQ(HistogramBucketIndex(1.0), -kHistogramMinHalfExp + 1);
  // v = 2: v^2 = 4, ilogb = 2 -> half-exponent 2.
  EXPECT_EQ(HistogramBucketIndex(2.0), 2 - kHistogramMinHalfExp + 1);
  // Just below sqrt(2): still half-exponent 0.
  EXPECT_EQ(HistogramBucketIndex(1.414), -kHistogramMinHalfExp + 1);
  // Just above sqrt(2): half-exponent 1.
  EXPECT_EQ(HistogramBucketIndex(1.415), 1 - kHistogramMinHalfExp + 1);
}

TEST(HistogramBucketTest, DegenerateValuesLandInUnderflowBucket) {
  EXPECT_EQ(HistogramBucketIndex(0.0), 0);
  EXPECT_EQ(HistogramBucketIndex(-3.5), 0);
  EXPECT_EQ(HistogramBucketIndex(std::nan("")), 0);
  // Below the finite range.
  EXPECT_EQ(HistogramBucketIndex(1e-12), 0);
}

TEST(HistogramBucketTest, HugeValuesClampIntoTopBucket) {
  EXPECT_EQ(HistogramBucketIndex(1e30), kHistogramBuckets - 1);
  // v*v overflows to +inf; still the top bucket, no UB.
  EXPECT_EQ(HistogramBucketIndex(1e300), kHistogramBuckets - 1);
}

TEST(HistogramBucketTest, BucketBoundsBracketTheirValues) {
  for (double v : {1e-8, 0.003, 0.5, 1.0, 7.3, 1000.0, 3.7e9}) {
    int idx = HistogramBucketIndex(v);
    ASSERT_GT(idx, 0) << v;
    EXPECT_LT(v, HistogramBucketUpperBound(idx)) << v;
    // The bound below grows by sqrt(2) per bucket, so the lower edge is the
    // previous bucket's upper bound.
    EXPECT_GE(v, HistogramBucketUpperBound(idx - 1) * (1.0 - 1e-12)) << v;
  }
}

TEST(HistogramBucketTest, BucketingIsDeterministicAcrossRuns) {
  // The multiset of observations decides the bucket array, byte for byte.
  MetricsRegistry reg_a, reg_b;
  Histogram* a = reg_a.histogram("h");
  Histogram* b = reg_b.histogram("h");
  for (int i = 1; i <= 5000; ++i) {
    double v = 0.001 * i * i;
    a->Observe(v);
    b->Observe(v);
  }
  MetricsSnapshot sa = reg_a.Snapshot();
  MetricsSnapshot sb = reg_b.Snapshot();
  ASSERT_EQ(sa.histograms.size(), 1u);
  EXPECT_EQ(sa.histograms[0].buckets, sb.histograms[0].buckets);
  EXPECT_EQ(sa.ToJson(), sb.ToJson());
}

// ---- Quantiles --------------------------------------------------------------

TEST(HistogramQuantileTest, QuantileIsWithinSqrt2OfExact) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("latency");
  // 1..10000: exact p-quantile (nearest-rank) is ceil(p * 10000).
  for (int i = 1; i <= 10000; ++i) h->Observe(static_cast<double>(i));
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.count, 10000);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    double exact = std::ceil(p * 10000);
    double q = hs.Quantile(p);
    // The reported quantile is the upper bound of the bucket holding the
    // rank value: an over-estimate by at most the bucket ratio sqrt(2).
    EXPECT_GE(q, exact) << p;
    EXPECT_LE(q, exact * std::sqrt(2.0) * (1.0 + 1e-12)) << p;
  }
}

TEST(HistogramQuantileTest, EmptyHistogramQuantileIsZero) {
  HistogramSnapshot hs;
  EXPECT_EQ(hs.Quantile(0.5), 0.0);
}

// ---- Registry semantics -----------------------------------------------------

TEST(MetricsRegistryTest, SnapshotsAreCumulativeAndDrainExactlyOnce) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  c->Inc(5);
  EXPECT_EQ(registry.Snapshot().counters[0].value, 5);
  c->Inc(3);
  EXPECT_EQ(registry.Snapshot().counters[0].value, 8);
  // No writes since: cumulative view unchanged.
  EXPECT_EQ(registry.Snapshot().counters[0].value, 8);
  EXPECT_EQ(c->Value(), 8);
}

TEST(MetricsRegistryTest, HandlesAreStableAndKindChecked) {
  MetricsRegistry registry;
  Counter* c = registry.counter("x");
  EXPECT_EQ(registry.counter("x"), c);
  // One name, two kinds: the first kind wins, the mismatch is null.
  EXPECT_EQ(registry.gauge("x"), nullptr);
  EXPECT_EQ(registry.histogram("x"), nullptr);
  EXPECT_NE(registry.gauge("y"), nullptr);
}

TEST(MetricsRegistryTest, JsonSnapshotIsStableAndSorted) {
  MetricsRegistry registry;
  registry.counter("z.last")->Inc(2);
  registry.counter("a.first")->Inc(1);
  registry.gauge("m.gauge")->Set(0.5);
  registry.histogram("m.hist")->Observe(3.0);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  // Name-sorted: a.first precedes z.last.
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  // Quiescent: a second snapshot emits the identical document.
  EXPECT_EQ(registry.ToJson(), json);
}

TEST(MetricsRegistryTest, ConcurrentWritersLoseNothing) {
  MetricsRegistry registry;
  Counter* c = registry.counter("hits");
  Histogram* h = registry.histogram("obs");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  // A snapshot thread races the writers: draining must never double-count
  // or drop an increment.
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.Snapshot();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters[0].value, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.histograms[0].count, int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, ResetStartsAFreshEpochKeepingHandles) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  c->Inc(7);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0);
  c->Inc(2);  // the old handle still works
  EXPECT_EQ(registry.Snapshot().counters[0].value, 2);
}

// ---- Span parentage ---------------------------------------------------------

TEST(SpanTest, NestedSpansFormATreeOnOneThread) {
  ScopedTracing tracing;
  uint64_t outer_id = 0, trace_id = 0;
  {
    Span outer("outer");
    outer_id = outer.context().span_id;
    trace_id = outer.context().trace_id;
    Span inner("inner");
    EXPECT_EQ(inner.context().trace_id, trace_id);
  }
  std::vector<SpanRecord> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::string, SpanRecord> by_name;
  for (SpanRecord& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name["outer"].parent_id, 0u);
  EXPECT_EQ(by_name["outer"].span_id, outer_id);
  EXPECT_EQ(by_name["inner"].parent_id, outer_id);
  EXPECT_EQ(by_name["inner"].trace_id, trace_id);
  // Off again: new spans do not record.
  DisableTracing();
  { Span after("after"); }
  EXPECT_EQ(CollectSpans().size(), 2u);
}

TEST(SpanTest, ParentCrossesTheThreadPoolSeam) {
  ScopedTracing tracing;
  util::ThreadPool pool(4);
  uint64_t outer_id = 0, trace_id = 0;
  {
    Span outer("batch");
    outer_id = outer.context().span_id;
    trace_id = outer.context().trace_id;
    pool.ParallelFor(16, [](int64_t) { Span task("task"); });
  }
  std::vector<SpanRecord> spans = CollectSpans();
  int tasks = 0;
  for (const SpanRecord& s : spans) {
    if (s.name != "task") continue;
    ++tasks;
    // Every task span, whichever worker ran it, parents under the
    // submitting span and shares its trace.
    EXPECT_EQ(s.parent_id, outer_id);
    EXPECT_EQ(s.trace_id, trace_id);
  }
  EXPECT_EQ(tasks, 16);
}

TEST(SpanTest, ParentCrossesTheShardTransportSeam) {
  ScopedTracing tracing;
  service::ShardedServiceOptions opts;
  opts.num_shards = 2;
  opts.router_threads = 2;
  opts.retry.max_attempts = 3;
  opts.retry.backoff.initial_ms = 0.01;
  opts.retry.backoff.max_ms = 0.05;
  service::FaultInjectorOptions faults;
  faults.seed = 7;
  faults.unavailable_rate = 0.5;  // aggressive: retries are certain
  opts.faults = faults;

  service::ShardedMeasureService service(opts);
  std::vector<service::MeasureRequest> reqs;
  for (uint64_t s = 0; s < 8; ++s) {
    reqs.push_back(service::MeasureRequest::Nu(Orthant3D(), FprasOpts(31 + s)));
  }
  auto outcome = service.RunBatch(std::move(reqs));
  for (const auto& r : outcome.results) ASSERT_TRUE(r.ok()) << r.status();

  std::vector<SpanRecord> spans = CollectSpans();
  std::map<uint64_t, const SpanRecord*> by_id;
  const SpanRecord* batch = nullptr;
  for (const SpanRecord& s : spans) {
    by_id[s.span_id] = &s;
    if (s.name == "shard.batch") batch = &s;
  }
  ASSERT_NE(batch, nullptr);
  int requests = 0, attempts = 0, backoffs = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "shard.request") {
      ++requests;
      // The router worker adopted the submitter's context.
      EXPECT_EQ(s.parent_id, batch->span_id);
      EXPECT_EQ(s.trace_id, batch->trace_id);
    } else if (s.name == "shard.attempt" || s.name == "shard.backoff") {
      (s.name == "shard.attempt" ? attempts : backoffs) += 1;
      // Attempts and backoff sleeps parent under their request's span.
      auto parent = by_id.find(s.parent_id);
      ASSERT_NE(parent, by_id.end()) << s.name;
      EXPECT_EQ(parent->second->name, "shard.request") << s.name;
    }
  }
  EXPECT_EQ(requests, 8);
  // The 50% fault schedule forces retries: more attempts than requests, and
  // each retry sleeps a backoff first.
  EXPECT_GT(attempts, requests);
  EXPECT_GT(backoffs, 0);
  // The per-response flight-recorder handle fetches exactly that tree.
  for (const auto& r : outcome.results) {
    ASSERT_NE(r->trace_id, 0u);
    std::vector<SpanRecord> tree = CollectTrace(r->trace_id);
    EXPECT_FALSE(tree.empty());
    for (const SpanRecord& s : tree) EXPECT_EQ(s.trace_id, r->trace_id);
  }
}

// ---- The determinism contract -----------------------------------------------

TEST(ObsDeterminismTest, TracingOnOffLeavesResultsBitIdentical) {
  auto run = [] {
    service::MeasureService svc;
    std::vector<service::MeasureRequest> reqs;
    for (uint64_t s = 0; s < 4; ++s) {
      reqs.push_back(
          service::MeasureRequest::Nu(Orthant3D(), FprasOpts(41 + s)));
    }
    auto outcome = svc.RunBatch(std::move(reqs));
    std::vector<double> values;
    for (const auto& r : outcome.results) {
      EXPECT_TRUE(r.ok()) << r.status();
      values.push_back(r->value);
      values.push_back(r->ci_lo);
      values.push_back(r->ci_hi);
    }
    return values;
  };

  DisableTracing();
  std::vector<double> untraced = run();
  std::vector<double> traced;
  {
    ScopedTracing tracing;
    traced = run();
    EXPECT_FALSE(CollectSpans().empty());
  }
  // memcmp-strength equality: the doubles must match bit for bit.
  ASSERT_EQ(traced.size(), untraced.size());
  for (size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i], untraced[i]) << i;
  }

  // Direct engine path too, and the flight-recorder handle behaves: 0 when
  // off, a collectible tree when on.
  auto direct = measure::ComputeNu(Orthant3D(), FprasOpts(99));
  ASSERT_TRUE(direct.ok());
  {
    ScopedTracing tracing;
    auto traced_direct = measure::ComputeNu(Orthant3D(), FprasOpts(99));
    ASSERT_TRUE(traced_direct.ok());
    EXPECT_EQ(traced_direct->value, direct->value);
    EXPECT_EQ(traced_direct->ci_lo, direct->ci_lo);
    EXPECT_EQ(traced_direct->ci_hi, direct->ci_hi);
  }
}

TEST(ObsDeterminismTest, BatchOutcomeCarriesTraceIdOnlyWhenTracing) {
  service::MeasureService svc;
  std::vector<service::MeasureRequest> reqs;
  reqs.push_back(service::MeasureRequest::Nu(Orthant3D(), FprasOpts(51)));
  auto untraced = svc.RunBatch(std::move(reqs));
  EXPECT_EQ(untraced.trace_id, 0u);

  ScopedTracing tracing;
  std::vector<service::MeasureRequest> reqs2;
  reqs2.push_back(service::MeasureRequest::Nu(Orthant3D(), FprasOpts(51)));
  auto traced = svc.RunBatch(std::move(reqs2));
  ASSERT_NE(traced.trace_id, 0u);
  std::vector<SpanRecord> tree = CollectTrace(traced.trace_id);
  ASSERT_FALSE(tree.empty());
  bool has_batch = false;
  for (const SpanRecord& s : tree) has_batch |= s.name == "service.batch";
  EXPECT_TRUE(has_batch);
}

// ---- Fake clock -------------------------------------------------------------

TEST(FakeClockTest, SpanDurationsAreExactUnderTheFakeClock) {
  ScopedFakeClock clock(int64_t{1000});
  ScopedTracing tracing;
  {
    Span span("timed");
    clock.AdvanceMillis(2.0);
  }
  std::vector<SpanRecord> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_nanos, 1000);
  EXPECT_EQ(spans[0].end_nanos, 1000 + 2000000);
  EXPECT_EQ(spans[0].DurationMillis(), 2.0);
}

TEST(FakeClockTest, WallTimerAndDeadlineFollowTheFakeClock) {
  ScopedFakeClock clock(int64_t{0});
  util::WallTimer timer;
  clock.AdvanceMillis(5.0);
  EXPECT_EQ(timer.ElapsedMillis(), 5.0);

  util::Deadline deadline = util::Deadline::After(10.0);
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 10.0);
  clock.AdvanceMillis(10.0);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 0.0);
}

}  // namespace
}  // namespace mudb::obs
