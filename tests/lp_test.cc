// Tests for the simplex LP solver.

#include <cmath>

#include <gtest/gtest.h>

#include "src/lp/simplex.h"
#include "src/util/rng.h"

namespace mudb::lp {
namespace {

TEST(SimplexTest, SimpleTwoVariableMax) {
  // max x + y s.t. x <= 2, y <= 3, x + y <= 4.
  LpResult r = SolveLp({{1, 0}, {0, 1}, {1, 1}}, {2, 3, 4}, {1, 1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);
}

TEST(SimplexTest, FreeVariablesGoNegative) {
  // max -x s.t. -x <= 5  ⇒ x = -5, objective 5.
  LpResult r = SolveLp({{-1}}, {5}, {-1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -5.0, 1e-9);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x s.t. -x <= 0  (x >= 0, unbounded above).
  LpResult r = SolveLp({{-1}}, {0}, {1});
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= -1 and -x <= -1 (x >= 1): empty.
  LpResult r = SolveLp({{1}, {-1}}, {-1, -1}, {0});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsNeedsPhaseOne) {
  // max -x - y s.t. -x <= -2 (x >= 2), -y <= -1 (y >= 1).
  LpResult r = SolveLp({{-1, 0}, {0, -1}}, {-2, -1}, {-1, -1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
}

TEST(SimplexTest, EqualityViaTwoInequalities) {
  // x + y = 1 encoded as <= and >=; max x s.t. additionally x <= 0.25.
  LpResult r = SolveLp({{1, 1}, {-1, -1}, {1, 0}}, {1, -1, 0.25}, {1, 0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.25, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-9);
}

TEST(SimplexTest, DegenerateConstraintsTerminate) {
  // Redundant constraints around the same vertex (degeneracy): Bland's rule
  // must still terminate.
  LpResult r = SolveLp({{1, 0}, {1, 0}, {0, 1}, {1, 1}, {1, 1}},
                       {1, 1, 1, 2, 2}, {1, 1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(SimplexTest, IsFeasibleHelper) {
  EXPECT_TRUE(IsFeasible({{1}, {-1}}, {1, 1}, 1));        // -1 <= x <= 1
  EXPECT_FALSE(IsFeasible({{1}, {-1}}, {-2, 1}, 1));      // x <= -2, x >= -1
}

TEST(SimplexTest, ZeroConstraintsIsFeasibleOrigin) {
  LpResult r = SolveLp({}, {}, {0.0, 0.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(SimplexTest, SolverReuseIsPure) {
  // A reused SimplexSolver must return bit-identical results to one-shot
  // solves, in any interleaving: buffer reuse cannot leak state between
  // solves. Mix optimal/infeasible/unbounded problems to cross the phase-1
  // and phase-2 exits.
  struct Problem {
    std::vector<std::vector<double>> a;
    std::vector<double> b;
    std::vector<double> c;
  };
  std::vector<Problem> problems = {
      {{{1, 0}, {0, 1}, {1, 1}}, {2, 3, 4}, {1, 1}},
      {{{1}, {-1}}, {-1, -1}, {0}},            // infeasible
      {{{-1}}, {0}, {1}},                      // unbounded
      {{{-1, 0}, {0, -1}}, {-2, -1}, {-1, -1}},
      {{{1, 1}, {-1, -1}, {1, 0}}, {1, -1, 0.25}, {1, 0}},
  };
  SimplexSolver solver;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < problems.size(); ++i) {
      LpResult fresh = SolveLp(problems[i].a, problems[i].b, problems[i].c);
      LpResult reused =
          solver.Solve(problems[i].a, problems[i].b, problems[i].c);
      ASSERT_EQ(fresh.status, reused.status) << "problem " << i;
      EXPECT_EQ(fresh.x, reused.x) << "problem " << i;
      EXPECT_EQ(fresh.objective, reused.objective) << "problem " << i;
    }
  }
}

// Property: random LPs with a planted feasible point are feasible, the
// returned optimum satisfies all constraints, and is at least as good as the
// planted point.
class SimplexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPropertyTest, RandomFeasibleLps) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    int n = static_cast<int>(rng.UniformInt(1, 4));
    int m = static_cast<int>(rng.UniformInt(1, 6));
    std::vector<double> planted(n);
    for (double& v : planted) v = rng.Uniform(-2, 2);
    std::vector<std::vector<double>> a(m, std::vector<double>(n));
    std::vector<double> b(m);
    for (int i = 0; i < m; ++i) {
      double ax = 0;
      for (int j = 0; j < n; ++j) {
        a[i][j] = rng.Uniform(-1, 1);
        ax += a[i][j] * planted[j];
      }
      b[i] = ax + rng.Uniform(0, 1);  // slack keeps planted feasible
    }
    // Bound the feasible region so the LP cannot be unbounded.
    for (int j = 0; j < n; ++j) {
      std::vector<double> up(n, 0.0), down(n, 0.0);
      up[j] = 1;
      down[j] = -1;
      a.push_back(up);
      b.push_back(10.0);
      a.push_back(down);
      b.push_back(10.0);
    }
    std::vector<double> c(n);
    for (double& v : c) v = rng.Uniform(-1, 1);

    LpResult r = SolveLp(a, b, c);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "iter " << iter;
    for (size_t i = 0; i < a.size(); ++i) {
      double ax = 0;
      for (int j = 0; j < n; ++j) ax += a[i][j] * r.x[j];
      EXPECT_LE(ax, b[i] + 1e-6) << "constraint " << i;
    }
    double planted_obj = 0;
    for (int j = 0; j < n; ++j) planted_obj += c[j] * planted[j];
    EXPECT_GE(r.objective, planted_obj - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace mudb::lp
