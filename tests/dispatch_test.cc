// Tests for the measure-dispatch layer (ComputeNu / ComputeMeasure): engine
// selection, exactness reporting, option validation, and the zero-one law of
// [27] recovered for queries without numeric comparisons.

#include <algorithm>

#include <gtest/gtest.h>

#include "src/engine/naive.h"
#include "src/measure/measure.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using logic::AtomArg;
using logic::Formula;
using logic::TypedVar;
using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Value;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }

TEST(DispatchTest, ConstantsAreExactUnderEveryMethod) {
  for (Method m : {Method::kAuto, Method::kExactOrder, Method::kExact2D,
                   Method::kAfpras, Method::kFpras}) {
    MeasureOptions opts;
    opts.method = m;
    auto one = ComputeNu(RealFormula::True(), opts);
    ASSERT_TRUE(one.ok());
    EXPECT_TRUE(one->is_exact);
    EXPECT_DOUBLE_EQ(one->value, 1.0);
    auto zero = ComputeNu(RealFormula::False(), opts);
    ASSERT_TRUE(zero.ok());
    EXPECT_DOUBLE_EQ(zero->value, 0.0);
  }
}

TEST(DispatchTest, DegenerateOptionsRejectedAtTheBoundary) {
  // ε and δ are validated once at the API boundary, for every method —
  // δ = 0 or δ = 2 must not flow into AfprasSampleCount (the ranking
  // ladder splits δ, so a degenerate budget is a correctness bug there).
  RealFormula f = RealFormula::Cmp(Z(0), CmpOp::kLt);
  for (Method m : {Method::kAuto, Method::kExact2D, Method::kAfpras,
                   Method::kFpras}) {
    for (double bad_delta : {0.0, 1.0, 2.0, -0.5}) {
      MeasureOptions opts;
      opts.method = m;
      opts.delta = bad_delta;
      auto r = ComputeNu(f, opts);
      EXPECT_FALSE(r.ok()) << MethodToString(m) << " delta " << bad_delta;
      EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
    }
    for (double bad_eps : {0.0, 1.5, -0.1}) {
      MeasureOptions opts;
      opts.method = m;
      opts.epsilon = bad_eps;
      auto r = ComputeNu(f, opts);
      EXPECT_FALSE(r.ok()) << MethodToString(m) << " eps " << bad_eps;
      EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
    }
  }
  EXPECT_TRUE(ValidateMeasureOptions(MeasureOptions{}).ok());
}

TEST(DispatchTest, ResultsCarryConfidenceIntervals) {
  // Exact paths report point intervals; sampled paths bracket the value.
  MeasureOptions exact;
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  auto e = ComputeNu(RealFormula::And(parts), exact);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->is_exact);
  EXPECT_EQ(e->ci_lo, e->value);
  EXPECT_EQ(e->ci_hi, e->value);
  EXPECT_EQ(e->tier, 0);

  MeasureOptions afpras;
  afpras.method = Method::kAfpras;
  afpras.epsilon = 0.1;
  auto a = ComputeNu(RealFormula::Cmp(Z(0) + Z(1) + Z(2), CmpOp::kLt),
                     afpras);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->ci_lo, std::max(0.0, a->value - 0.1));
  EXPECT_DOUBLE_EQ(a->ci_hi, std::min(1.0, a->value + 0.1));
}

TEST(DispatchTest, AutoPrefersExact2DForTwoVariables) {
  MeasureOptions opts;
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  auto r = ComputeNu(RealFormula::And(parts), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method_used, Method::kExact2D);
  EXPECT_TRUE(r->is_exact);
  EXPECT_NEAR(r->value, 0.25, 1e-9);
}

TEST(DispatchTest, AutoPrefersOrderEngineForOrderFormulas) {
  MeasureOptions opts;
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(Z(1) - Z(2), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(Z(2) - Z(3), CmpOp::kLt));
  auto r = ComputeNu(RealFormula::And(parts), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method_used, Method::kExactOrder);
  ASSERT_TRUE(r->exact_rational.has_value());
  EXPECT_EQ(*r->exact_rational, util::Rational(1, 24));
}

TEST(DispatchTest, AutoFallsBackToAfprasForWideNonlinearFormulas) {
  MeasureOptions opts;
  opts.epsilon = 0.05;
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(Z(i) * Z(i + 1), CmpOp::kLt));
  }
  auto r = ComputeNu(RealFormula::And(parts), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method_used, Method::kAfpras);
  EXPECT_FALSE(r->is_exact);
  EXPECT_GT(r->samples, 0);
}

TEST(DispatchTest, ForcedMethodRejectsOutOfScopeFormulas) {
  // 4-variable nonlinear formula cannot run on the 2-D or order engines.
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(Z(i) * Z(i + 1), CmpOp::kLt));
  }
  RealFormula f = RealFormula::And(parts);
  MeasureOptions opts;
  opts.method = Method::kExact2D;
  EXPECT_FALSE(ComputeNu(f, opts).ok());
  opts.method = Method::kExactOrder;
  EXPECT_FALSE(ComputeNu(f, opts).ok());
  opts.method = Method::kFpras;  // nonlinear
  EXPECT_FALSE(ComputeNu(f, opts).ok());
}

TEST(DispatchTest, NumThreadsPlumbedThrough) {
  MeasureOptions opts;
  opts.method = Method::kAfpras;
  opts.epsilon = 0.01;
  opts.num_threads = 4;
  auto r = ComputeNu(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kLt), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->value, 0.5, 0.02);
}

TEST(DispatchTest, AutoFallsBackToAfprasBeyondExactOrderBudget) {
  // A 4-variable order chain with the order engine budget pulled below it:
  // kAuto must degrade to the AFPRAS instead of erroring, and the estimate
  // must agree with the exact rational value the order engine would give.
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(Z(i) - Z(i + 1), CmpOp::kLt));
  }
  RealFormula chain = RealFormula::And(std::move(parts));
  auto exact = NuExactOrder(chain, 8);
  ASSERT_TRUE(exact.ok());

  MeasureOptions opts;  // kAuto
  opts.exact_order_max_vars = 3;  // below the 4 variables used
  opts.epsilon = 0.02;
  auto r = ComputeNu(chain, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->method_used, Method::kAfpras);
  EXPECT_FALSE(r->is_exact);
  EXPECT_NEAR(r->value, exact->ToDouble(), 0.05);
}

TEST(DispatchTest, AutoFallbackHonorsCallerPool) {
  // The kAuto exact→AFPRAS fallback passes the caller's options through
  // whole — in particular a supplied long-lived pool and thread count. The
  // determinism contract then demands a bit-identical estimate with and
  // without the pool.
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(Z(i) - Z(i + 1), CmpOp::kLt));
  }
  RealFormula chain = RealFormula::And(std::move(parts));
  MeasureOptions plain;
  plain.exact_order_max_vars = 3;
  plain.epsilon = 0.02;
  auto without = ComputeNu(chain, plain);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->method_used, Method::kAfpras);

  util::ThreadPool pool(3);
  MeasureOptions opts = plain;
  opts.pool = &pool;
  opts.num_threads = 3;
  auto with_pool = ComputeNu(chain, opts);
  ASSERT_TRUE(with_pool.ok());
  EXPECT_EQ(with_pool->method_used, Method::kAfpras);
  EXPECT_EQ(with_pool->value, without->value);
}

// ---- The zero-one law of [27], recovered ------------------------------------
//
// For queries whose arithmetic never touches a null (in particular queries
// with no numeric comparisons at all), μ ∈ {0, 1}, and μ = 1 iff naive
// evaluation returns the tuple — the base-only framework the paper
// generalizes (§2 and the Remark in §4).

TEST(ZeroOneLawTest, BaseOnlyQueriesAreZeroOne) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"a", Sort::kBase},
                                                     {"b", Sort::kBase}}))
                  .ok());
  Value bot1 = db.MakeBaseNull();
  Value bot2 = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("R", {bot1, bot2}).ok());
  ASSERT_TRUE(db.Insert("R", {Value::BaseConst("c"), bot1}).ok());

  // q(x) = ∃y R(x, y).
  Formula f = Formula::Exists(
      TypedVar{"y", Sort::kBase},
      Formula::Rel("R", {AtomArg::BaseVar("x"), AtomArg::BaseVar("y")}));
  auto q = logic::Query::MakeWithOutput(f, {TypedVar{"x", Sort::kBase}}, db);
  ASSERT_TRUE(q.ok());

  MeasureOptions opts;
  // Candidates returned by naive evaluation (nulls as fresh constants) get
  // μ = 1; others 0.
  for (const auto& [cand, expected] :
       std::vector<std::pair<Value, double>>{{bot1, 1.0},
                                             {Value::BaseConst("c"), 1.0},
                                             {bot2, 0.0},
                                             {Value::BaseConst("z"), 0.0}}) {
    auto mu = ComputeMeasure(*q, db, {cand}, opts);
    ASSERT_TRUE(mu.ok()) << mu.status();
    EXPECT_TRUE(mu->is_exact);
    EXPECT_DOUBLE_EQ(mu->value, expected) << cand.ToString();
  }
}

TEST(ZeroOneLawTest, MatchesNaiveEvaluationUnderBijectiveValuation) {
  // Randomized: base-only databases with nulls; μ of each candidate equals
  // membership in the naive evaluation of the valuated (complete) database.
  util::Rng rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    Database db;
    ASSERT_TRUE(db.CreateRelation(RelationSchema("R", {{"a", Sort::kBase},
                                                       {"b", Sort::kBase}}))
                    .ok());
    ASSERT_TRUE(db.CreateRelation(RelationSchema("S", {{"b", Sort::kBase}}))
                    .ok());
    std::vector<Value> pool{Value::BaseConst("u"), Value::BaseConst("v"),
                            db.MakeBaseNull(), db.MakeBaseNull()};
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(db.Insert("R", {pool[rng.UniformInt(0, 3)],
                                  pool[rng.UniformInt(0, 3)]})
                      .ok());
    }
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(db.Insert("S", {pool[rng.UniformInt(0, 3)]}).ok());
    }
    // q(x) = ∃y R(x, y) && ¬S(y)   (an FO query, not a CQ).
    Formula f = Formula::Exists(
        TypedVar{"y", Sort::kBase},
        Formula::And([] {
          std::vector<Formula> v;
          v.push_back(Formula::Rel("R", {AtomArg::BaseVar("x"),
                                         AtomArg::BaseVar("y")}));
          v.push_back(Formula::Not(
              Formula::Rel("S", {AtomArg::BaseVar("y")})));
          return v;
        }()));
    auto q = logic::Query::MakeWithOutput(f, {TypedVar{"x", Sort::kBase}},
                                          db);
    ASSERT_TRUE(q.ok());

    // Extend the valuation over pool nulls that never made it into the
    // database, mirroring what the grounding does for candidates.
    std::vector<model::NullId> extra;
    for (const Value& v : pool) {
      if (v.is_null()) extra.push_back(v.null_id());
    }
    model::Valuation vbase =
        model::MakeBijectiveBaseValuation(db, "@null_", extra);
    Database complete = vbase.Apply(db);
    MeasureOptions opts;
    for (const Value& cand : pool) {
      auto mu = ComputeMeasure(*q, db, {cand}, opts);
      ASSERT_TRUE(mu.ok());
      auto naive =
          engine::NaiveHolds(*q, complete, {vbase.Apply(cand)});
      ASSERT_TRUE(naive.ok()) << naive.status();
      EXPECT_DOUBLE_EQ(mu->value, *naive ? 1.0 : 0.0)
          << "iter " << iter << " cand " << cand.ToString();
    }
  }
}

TEST(DispatchTest, NumericNullCandidateValue) {
  // Candidates may carry numeric nulls (the permissive semantics of [28]):
  // q(y) = R(y) with R = {(⊤)} and candidate ⊤ itself is certain.
  Database db;
  ASSERT_TRUE(
      db.CreateRelation(RelationSchema("R", {{"x", Sort::kNum}})).ok());
  Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("R", {top}).ok());
  Formula f = Formula::Rel("R", {AtomArg::NumVar("y")});
  auto q = logic::Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  MeasureOptions opts;
  auto mu = ComputeMeasure(*q, db, {top}, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_DOUBLE_EQ(mu->value, 1.0);
  // A *different* null (not in the database) only matches on a measure-zero
  // set.
  auto other = ComputeMeasure(*q, db, {Value::NumNull(999)}, opts);
  ASSERT_TRUE(other.ok());
  EXPECT_DOUBLE_EQ(other->value, 0.0);
}

}  // namespace
}  // namespace mudb::measure
