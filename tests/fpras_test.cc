// Tests for the FPRAS of Thm. 7.1 (CQ(+,<) images: linear constraint DNFs).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/measure/fpras.h"
#include "src/measure/nu_exact.h"
#include "src/util/rng.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

TEST(FprasTest, ConstantsAreTrivial) {
  FprasOptions opts;
  util::Rng rng(1);
  auto t = FprasConjunctive(RealFormula::True(), opts, rng);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->trivial);
  EXPECT_DOUBLE_EQ(t->estimate, 1.0);
  auto f = FprasConjunctive(RealFormula::False(), opts, rng);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->estimate, 0.0);
}

TEST(FprasTest, ReportsMultiplicativeConfidenceInterval) {
  FprasOptions opts;
  opts.epsilon = 0.2;
  util::Rng rng(4);
  auto r = FprasConjunctive(
      RealFormula::Cmp(Z(0) + Z(1) - C(1), CmpOp::kLt), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->ci_lo, r->estimate / 1.2);
  EXPECT_DOUBLE_EQ(r->ci_hi, std::min(1.0, r->estimate / 0.8));

  // Trivial answers collapse to a point.
  util::Rng rng2(4);
  auto t = FprasConjunctive(RealFormula::True(), opts, rng2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ci_lo, 1.0);
  EXPECT_EQ(t->ci_hi, 1.0);
}

TEST(FprasTest, RejectsNonlinear) {
  FprasOptions opts;
  util::Rng rng(1);
  auto r = FprasConjunctive(RealFormula::Cmp(Z(0) * Z(1), CmpOp::kLt), opts,
                            rng);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(FprasTest, HalfspaceIsHalf) {
  FprasOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(2);
  auto r = FprasConjunctive(
      RealFormula::Cmp(Z(0) + Z(1) - C(3), CmpOp::kLt), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.05);
  EXPECT_EQ(r->active_disjuncts, 1);
}

TEST(FprasTest, QuadrantIn2D) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  FprasOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(3);
  auto r = FprasConjunctive(RealFormula::And(parts), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.25, 0.03);
}

TEST(FprasTest, OrthantIn3D) {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  FprasOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(4);
  auto r = FprasConjunctive(RealFormula::And(parts), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.125, 0.02);
}

TEST(FprasTest, DisjunctionOfOppositeQuadrants) {
  auto quad = [](int s) {
    std::vector<RealFormula> parts;
    parts.push_back(RealFormula::Cmp(C(-s) * Z(0), CmpOp::kLt));
    parts.push_back(RealFormula::Cmp(C(-s) * Z(1), CmpOp::kLt));
    return RealFormula::And(std::move(parts));
  };
  std::vector<RealFormula> ors{quad(1), quad(-1)};
  FprasOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(5);
  auto r = FprasConjunctive(RealFormula::Or(ors), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.05);
  EXPECT_EQ(r->active_disjuncts, 2);
}

TEST(FprasTest, EqualityDisjunctHasMeasureZero) {
  auto eq = RealFormula::Cmp(Z(0) - Z(1), CmpOp::kEq);
  FprasOptions opts;
  util::Rng rng(6);
  auto r = FprasConjunctive(eq, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 0.0);
  EXPECT_EQ(r->active_disjuncts, 0);
}

TEST(FprasTest, DisequalityIgnored) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(Z(0) - Z(1), CmpOp::kNeq));
  FprasOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(7);
  auto r = FprasConjunctive(RealFormula::And(parts), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.05);
}

TEST(FprasTest, InfeasibleConjunction) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0), CmpOp::kLt));   // z0 < 0
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));  // z0 > 0
  FprasOptions opts;
  util::Rng rng(8);
  auto r = FprasConjunctive(RealFormula::And(parts), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimate, 0.0);
}

TEST(FprasTest, ConstantOffsetsVanishUnderHomogenization) {
  // z0 < 1000 is asymptotically the halfspace z0 < 0.
  FprasOptions opts;
  opts.epsilon = 0.05;
  util::Rng rng(9);
  auto r = FprasConjunctive(
      RealFormula::Cmp(Z(0) - C(1000), CmpOp::kLt), opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate, 0.5, 0.08);
}

// Property: FPRAS agrees with the exact 2-D engine on random linear sector
// formulas (multiplicative error within a generous band).
class FprasAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(FprasAccuracyTest, AgreesWithExact2D) {
  util::Rng formula_rng(GetParam());
  for (int iter = 0; iter < 4; ++iter) {
    std::vector<RealFormula> parts;
    for (int i = 0; i < 2; ++i) {
      Polynomial p = C(formula_rng.Uniform(-1, 1)) * Z(0) +
                     C(formula_rng.Uniform(-1, 1)) * Z(1);
      parts.push_back(RealFormula::Cmp(p, CmpOp::kLe));
    }
    RealFormula f = RealFormula::And(parts);
    if (f.is_constant()) continue;
    auto exact = NuExact2D(f);
    ASSERT_TRUE(exact.ok());
    if (*exact < 0.02) continue;  // relative guarantee is vacuous near 0
    FprasOptions opts;
    opts.epsilon = 0.05;
    util::Rng rng(GetParam() * 37 + iter);
    auto approx = FprasConjunctive(f, opts, rng);
    ASSERT_TRUE(approx.ok());
    EXPECT_LT(std::fabs(approx->estimate / *exact - 1.0), 0.2)
        << "exact " << *exact << " approx " << approx->estimate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FprasAccuracyTest,
                         ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace mudb::measure
