// Tests for the measurement serving layer (src/service/): batch results
// bit-identical to sequential ComputeMeasure/ComputeNu for any thread count
// and submission order, request-level memoization (a repeated batch samples
// nothing), cross-request body sharing through the estimate cache, and the
// async Submit/Wait surface.

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/convex/canonical.h"
#include "src/measure/fpras.h"
#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/request_key.h"
#include "src/translate/ground.h"
#include "src/util/rng.h"

namespace mudb::service {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using measure::MeasureOptions;
using measure::MeasureResult;
using measure::Method;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

// A 3-D union of two opposite orthant cones: multi-body FPRAS with an
// active Karp–Luby stage.
RealFormula ConeUnion() {
  std::vector<RealFormula> pos, neg;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
    neg.push_back(RealFormula::Cmp(Z(i), CmpOp::kLt));
  }
  std::vector<RealFormula> ors{RealFormula::And(std::move(pos)),
                               RealFormula::And(std::move(neg))};
  return RealFormula::Or(std::move(ors));
}

// A single halfspace through the origin-ish: one FPRAS body, no Karp–Luby.
RealFormula Halfspace3D(double c0, double c1, double c2) {
  return RealFormula::Cmp(C(c0) * Z(0) + C(c1) * Z(1) + C(c2) * Z(2) - C(1),
                          CmpOp::kLt);
}

// Nonlinear, three variables: forced onto the AFPRAS.
RealFormula Nonlinear3D() {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0) * Z(1) - Z(2), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(0) - Z(1) - Z(2), CmpOp::kLt));
  return RealFormula::And(std::move(parts));
}

MeasureOptions Opts(Method method, double epsilon, uint64_t seed) {
  MeasureOptions o;
  o.method = method;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

// The mixed battery used by the parity tests: FPRAS multi-body, FPRAS
// single-body, AFPRAS, exact-2d via kAuto, and repeated entries.
std::vector<MeasureRequest> MixedBattery() {
  std::vector<MeasureRequest> reqs;
  reqs.push_back(
      MeasureRequest::Nu(ConeUnion(), Opts(Method::kFpras, 0.3, 11)));
  reqs.push_back(
      MeasureRequest::Nu(Halfspace3D(1, 1, 1), Opts(Method::kFpras, 0.3, 12)));
  reqs.push_back(
      MeasureRequest::Nu(Nonlinear3D(), Opts(Method::kAfpras, 0.05, 13)));
  std::vector<RealFormula> two;
  two.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  two.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  reqs.push_back(
      MeasureRequest::Nu(RealFormula::And(std::move(two)),
                         Opts(Method::kAuto, 0.1, 14)));
  // Same formula as request 0, same seed: the service may memoize, and the
  // result must still equal a standalone sequential call.
  reqs.push_back(
      MeasureRequest::Nu(ConeUnion(), Opts(Method::kFpras, 0.3, 11)));
  // Same formula, different seed: must NOT be conflated with request 0.
  reqs.push_back(
      MeasureRequest::Nu(ConeUnion(), Opts(Method::kFpras, 0.3, 99)));
  return reqs;
}

std::vector<MeasureResult> SequentialBaseline(
    const std::vector<MeasureRequest>& reqs) {
  std::vector<MeasureResult> out;
  for (const MeasureRequest& req : reqs) {
    auto r = measure::ComputeNu(*req.formula, req.options);
    EXPECT_TRUE(r.ok()) << r.status();
    out.push_back(*r);
  }
  return out;
}

TEST(ServiceTest, BatchBitIdenticalToSequentialAcrossThreadCounts) {
  std::vector<MeasureRequest> reqs = MixedBattery();
  std::vector<MeasureResult> baseline = SequentialBaseline(reqs);
  for (int threads : {1, 2, 8}) {
    ServiceOptions sopts;
    sopts.num_threads = threads;
    MeasureService service(sopts);
    auto outcome = service.RunBatch(MixedBattery());
    ASSERT_EQ(outcome.results.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_TRUE(outcome.results[i].ok()) << outcome.results[i].status();
      EXPECT_EQ(outcome.results[i]->value, baseline[i].value)
          << "request " << i << ", threads " << threads;
      EXPECT_EQ(outcome.results[i]->method_used, baseline[i].method_used);
    }
    EXPECT_EQ(outcome.stats.requests,
              static_cast<int64_t>(baseline.size()));
  }
}

TEST(ServiceTest, BatchBitIdenticalUnderShuffledSubmissionOrder) {
  std::vector<MeasureRequest> reqs = MixedBattery();
  std::vector<MeasureResult> baseline = SequentialBaseline(reqs);
  std::mt19937_64 gen(7);
  for (int round = 0; round < 3; ++round) {
    std::vector<size_t> order(reqs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), gen);

    MeasureService service;
    std::vector<MeasureService::Ticket> tickets(reqs.size());
    std::vector<MeasureRequest> copy = MixedBattery();
    for (size_t pos : order) {
      tickets[pos] = service.Submit(std::move(copy[pos]));
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      auto r = MeasureService::Wait(tickets[i]);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->value, baseline[i].value)
          << "request " << i << ", round " << round;
    }
  }
}

TEST(ServiceTest, SecondIdenticalBatchPerformsZeroSampling) {
  MeasureService service;
  auto first = service.RunBatch(MixedBattery());
  // The battery contains one exact duplicate, so even the first batch
  // memoizes once; everything else executes and samples.
  EXPECT_EQ(first.stats.request_cache_hits, 1);
  EXPECT_GT(first.stats.sampling_steps, 0);
  EXPECT_GT(first.stats.samples, 0);

  auto second = service.RunBatch(MixedBattery());
  EXPECT_EQ(second.stats.request_cache_hits, second.stats.requests);
  EXPECT_EQ(second.stats.sampling_steps, 0);
  EXPECT_EQ(second.stats.samples, 0);
  ASSERT_EQ(second.results.size(), first.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    ASSERT_TRUE(second.results[i].ok());
    EXPECT_EQ(second.results[i]->value, first.results[i]->value);
  }
}

// The shared orthant cone as its own formula (the conjunction disjunct of
// ConeUnion-style unions).
RealFormula SharedCone() {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  return RealFormula::And(std::move(parts));
}

TEST(ServiceTest, CrossRequestBodySharingHitsTheEstimateCache) {
  // Two *different* requests whose groundings share one byte-identical
  // convex body — F1 is a single shared cone, F2 is (shared cone) ∨
  // (private cone) — with the same seed: the request memo misses, the body
  // cache serves the shared estimate, and both results stay bit-identical
  // to standalone evaluation.
  RealFormula f1 = SharedCone();
  std::vector<RealFormula> ors{SharedCone(),
                               RealFormula::And([] {
                                 std::vector<RealFormula> v;
                                 v.push_back(RealFormula::Cmp(
                                     Z(0) + C(2) * Z(1), CmpOp::kLt));
                                 v.push_back(RealFormula::Cmp(
                                     Z(1) + Z(2), CmpOp::kLt));
                                 v.push_back(RealFormula::Cmp(Z(2),
                                                              CmpOp::kLt));
                                 return v;
                               }())};
  RealFormula f2 = RealFormula::Or(std::move(ors));
  MeasureOptions opts = Opts(Method::kFpras, 0.3, 21);

  // The exposed front half proves the premise: the two requests really do
  // produce one byte-identical body (equal canonical keys AND equal raw
  // fingerprints, inner seeding included) — without paying for sampling.
  measure::FprasOptions fopts;
  auto set1 = measure::BuildFprasBodies(f1, fopts);
  auto set2 = measure::BuildFprasBodies(f2, fopts);
  ASSERT_TRUE(set1.ok());
  ASSERT_TRUE(set2.ok());
  ASSERT_EQ(set1->bodies.size(), 1u);
  ASSERT_EQ(set2->bodies.size(), 2u);
  const volume::SeededBody& shared1 = set1->bodies[0];
  const volume::SeededBody& shared2 = set2->bodies[0];
  EXPECT_EQ(convex::CanonicalizeBody(shared1.body),
            convex::CanonicalizeBody(shared2.body));
  EXPECT_EQ(convex::RawBodyFingerprint(shared1.body, shared1.inner.center,
                                       shared1.inner.radius,
                                       shared1.outer_radius_bound),
            convex::RawBodyFingerprint(shared2.body, shared2.inner.center,
                                       shared2.inner.radius,
                                       shared2.outer_radius_bound));

  auto direct1 = measure::ComputeNu(f1, opts);
  auto direct2 = measure::ComputeNu(f2, opts);
  ASSERT_TRUE(direct1.ok());
  ASSERT_TRUE(direct2.ok());

  MeasureService service;
  auto outcome = service.RunBatch(
      {MeasureRequest::Nu(f1, opts), MeasureRequest::Nu(f2, opts)});
  ASSERT_TRUE(outcome.results[0].ok());
  ASSERT_TRUE(outcome.results[1].ok());
  EXPECT_EQ(outcome.results[0]->value, direct1->value);
  EXPECT_EQ(outcome.results[1]->value, direct2->value);
  EXPECT_EQ(outcome.stats.request_cache_hits, 0);
  EXPECT_EQ(outcome.stats.body_cache_hits, 1);
  EXPECT_EQ(service.body_cache_stats().hits, 1);
  EXPECT_GT(service.body_cache_steps_saved(), 0);
}

TEST(ServiceTest, CanonicallyEqualButRawDifferentBodiesDoNotShare) {
  // Rescaled constraint rows are the same body *canonically*, but a volume
  // estimate is a bitwise-pure function of the raw representation walked
  // (LP seeding, chord arithmetic), so the cache deliberately keys on the
  // raw form too: no sharing here, and each request stays bit-identical to
  // its own standalone evaluation.
  RealFormula f1 = Halfspace3D(1, 2, 3);
  RealFormula f2 = RealFormula::Cmp(
      C(2) * Z(0) + C(4) * Z(1) + C(6) * Z(2) - C(2), CmpOp::kLt);
  measure::FprasOptions fopts;
  auto set1 = measure::BuildFprasBodies(f1, fopts);
  auto set2 = measure::BuildFprasBodies(f2, fopts);
  ASSERT_TRUE(set1.ok());
  ASSERT_TRUE(set2.ok());
  EXPECT_EQ(convex::CanonicalizeBody(set1->bodies[0].body),
            convex::CanonicalizeBody(set2->bodies[0].body));

  MeasureOptions opts = Opts(Method::kFpras, 0.3, 22);
  auto direct1 = measure::ComputeNu(f1, opts);
  auto direct2 = measure::ComputeNu(f2, opts);
  ASSERT_TRUE(direct1.ok());
  ASSERT_TRUE(direct2.ok());

  MeasureService service;
  auto outcome = service.RunBatch(
      {MeasureRequest::Nu(f1, opts), MeasureRequest::Nu(f2, opts)});
  ASSERT_TRUE(outcome.results[0].ok());
  ASSERT_TRUE(outcome.results[1].ok());
  EXPECT_EQ(outcome.results[0]->value, direct1->value);
  EXPECT_EQ(outcome.results[1]->value, direct2->value);
  EXPECT_EQ(outcome.stats.body_cache_hits, 0);
}

TEST(ServiceTest, RequestSignatureSeparatesOptionsAndFormulas) {
  RealFormula f = ConeUnion();
  MeasureOptions base = Opts(Method::kFpras, 0.3, 1);
  convex::CanonicalBodyKey k = RequestSignature(f, base);
  EXPECT_EQ(k, RequestSignature(f, base));

  MeasureOptions other_seed = base;
  other_seed.seed = 2;
  EXPECT_NE(k, RequestSignature(f, other_seed));

  MeasureOptions other_eps = base;
  other_eps.epsilon = 0.2;
  EXPECT_NE(k, RequestSignature(f, other_eps));

  MeasureOptions other_method = base;
  other_method.method = Method::kAfpras;
  EXPECT_NE(k, RequestSignature(f, other_method));

  // num_threads cannot change a result, so it must not fragment the memo.
  MeasureOptions other_threads = base;
  other_threads.num_threads = 8;
  EXPECT_EQ(k, RequestSignature(f, other_threads));

  EXPECT_NE(k, RequestSignature(Halfspace3D(1, 1, 1), base));
}

TEST(ServiceTest, AsyncSubmitWaitOutOfOrder) {
  MeasureService service;
  std::vector<MeasureRequest> reqs = MixedBattery();
  std::vector<MeasureResult> baseline = SequentialBaseline(reqs);
  std::vector<MeasureService::Ticket> tickets;
  for (MeasureRequest& req : reqs) {
    tickets.push_back(service.Submit(std::move(req)));
  }
  // Wait in reverse: completion order must not matter to the results.
  for (size_t i = tickets.size(); i-- > 0;) {
    auto r = MeasureService::Wait(tickets[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, baseline[i].value) << "request " << i;
  }
}

TEST(ServiceTest, QueryPathMatchesComputeMeasure) {
  // R(num) with one numeric null; q = ∃x R(x) ∧ x > 0  ⇒  μ = ν(z0 > 0).
  model::Database db;
  ASSERT_TRUE(
      db.CreateRelation(model::RelationSchema("R", {{"x", model::Sort::kNum}}))
          .ok());
  model::Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("R", {top}).ok());
  logic::Formula f = logic::Formula::Exists(
      logic::TypedVar{"x", model::Sort::kNum}, logic::Formula::And([] {
        std::vector<logic::Formula> v;
        v.push_back(logic::Formula::Rel("R", {logic::AtomArg::NumVar("x")}));
        v.push_back(logic::Formula::Cmp(logic::Term::Var("x"),
                                        logic::CmpOp::kGt,
                                        logic::Term::Const(0)));
        return v;
      }()));
  auto q = logic::Query::Make(std::move(f), db);
  ASSERT_TRUE(q.ok());

  MeasureOptions opts;  // kAuto: one variable ⇒ exact 2-D engine
  auto direct = measure::ComputeMeasure(*q, db, {}, opts);
  ASSERT_TRUE(direct.ok());

  MeasureService service;
  auto ticket = service.Submit(MeasureRequest::Mu(&*q, &db, {}, opts));
  auto served = MeasureService::Wait(ticket);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->value, direct->value);
  EXPECT_EQ(served->is_exact, direct->is_exact);
  EXPECT_NEAR(served->value, 0.5, 1e-9);

  // The per-request grounding cap bounds what one request may cost: an
  // absurdly small budget fails with ResourceExhausted on both paths.
  MeasureOptions capped = opts;
  capped.max_ground_atoms = 0;
  auto direct_capped = measure::ComputeMeasure(*q, db, {}, capped);
  EXPECT_FALSE(direct_capped.ok());
  EXPECT_EQ(direct_capped.status().code(),
            util::StatusCode::kResourceExhausted);
  auto capped_ticket = service.Submit(MeasureRequest::Mu(&*q, &db, {}, capped));
  auto capped_served = MeasureService::Wait(capped_ticket);
  EXPECT_FALSE(capped_served.ok());
  EXPECT_EQ(capped_served.status().code(),
            util::StatusCode::kResourceExhausted);
}

TEST(ServiceTest, MalformedAndFailingRequestsSurfaceTheirStatus) {
  MeasureService service;
  // Neither form set.
  auto empty_ticket = service.Submit(MeasureRequest{});
  auto empty = MeasureService::Wait(empty_ticket);
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), util::StatusCode::kInvalidArgument);

  // Nonlinear formula forced onto the FPRAS: the engine error propagates.
  auto bad_ticket = service.Submit(
      MeasureRequest::Nu(Nonlinear3D(), Opts(Method::kFpras, 0.3, 1)));
  auto bad = MeasureService::Wait(bad_ticket);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);

  // Errors are not memoized: a failing request followed by an identical one
  // fails identically (and nothing cached a half-result).
  auto again_ticket = service.Submit(
      MeasureRequest::Nu(Nonlinear3D(), Opts(Method::kFpras, 0.3, 1)));
  EXPECT_FALSE(MeasureService::Wait(again_ticket).ok());
  EXPECT_EQ(service.result_cache_stats().entries, 0);
}

TEST(ServiceTest, DegenerateOptionsFailIdenticallyOnBothPaths) {
  // δ/ε validation happens once at the boundary: the direct API and the
  // service reject the same degenerate options with the same code, and
  // nothing is executed or memoized.
  RealFormula f = ConeUnion();
  for (auto [eps, delta] : std::vector<std::pair<double, double>>{
           {0.3, 0.0}, {0.3, 2.0}, {0.0, 0.25}, {1.5, 0.25}}) {
    MeasureOptions bad = Opts(Method::kFpras, eps, 5);
    bad.delta = delta;
    auto direct = measure::ComputeNu(f, bad);
    EXPECT_FALSE(direct.ok());
    EXPECT_EQ(direct.status().code(), util::StatusCode::kInvalidArgument);

    MeasureService service;
    auto ticket = service.Submit(MeasureRequest::Nu(f, bad));
    auto served = MeasureService::Wait(ticket);
    EXPECT_FALSE(served.ok());
    EXPECT_EQ(served.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_EQ(served.status().message(), direct.status().message());
    EXPECT_EQ(service.result_cache_stats().entries, 0);
    EXPECT_EQ(service.lifetime_stats().sampling_steps, 0);
  }
}

TEST(ServiceTest, ExternalPoolIsHonored) {
  util::ThreadPool pool(2);
  ServiceOptions sopts;
  sopts.pool = &pool;
  MeasureService service(sopts);
  auto outcome = service.RunBatch(MixedBattery());
  std::vector<MeasureResult> baseline = SequentialBaseline(MixedBattery());
  for (size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_TRUE(outcome.results[i].ok());
    EXPECT_EQ(outcome.results[i]->value, baseline[i].value);
  }
}

}  // namespace
}  // namespace mudb::service
