// Tests for the deterministic fault-injection seam (src/service/): the
// seeded FaultInjector schedule (reproducible per seed, independent per
// shard, unshifted by explicit controls), the FaultInjectingTransport
// decorator (retryable classification, shard attribution, pass-through on
// clean calls), and the router's retry/degradation behavior driven through
// targeted FailNext / SetDown faults.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/constraints/real_formula.h"
#include "src/measure/measure.h"
#include "src/poly/polynomial.h"
#include "src/service/fault_injector.h"
#include "src/service/measure_service.h"
#include "src/service/shard_transport.h"
#include "src/service/sharded_service.h"
#include "src/util/status.h"

namespace mudb::service {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using measure::MeasureOptions;
using measure::MeasureResult;
using measure::Method;
using poly::Polynomial;

// ---- FaultInjector schedule ------------------------------------------------

std::vector<FaultInjector::Decision> Drain(FaultInjector& injector, int shard,
                                           int n) {
  std::vector<FaultInjector::Decision> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(injector.Decide(shard));
  return out;
}

TEST(FaultInjectorTest, ScheduleIsAPureFunctionOfTheSeed) {
  FaultInjectorOptions opts;
  opts.seed = 7;
  opts.unavailable_rate = 0.3;
  opts.latency_rate = 0.2;
  opts.latency_spike_ms = 0.5;
  FaultInjector a(2, opts);
  FaultInjector b(2, opts);
  for (int shard = 0; shard < 2; ++shard) {
    std::vector<FaultInjector::Decision> da = Drain(a, shard, 64);
    std::vector<FaultInjector::Decision> db = Drain(b, shard, 64);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(da[static_cast<size_t>(i)].fail,
                db[static_cast<size_t>(i)].fail)
          << "shard " << shard << " call " << i;
      EXPECT_EQ(da[static_cast<size_t>(i)].latency_ms,
                db[static_cast<size_t>(i)].latency_ms);
    }
  }

  FaultInjectorOptions other = opts;
  other.seed = 8;
  FaultInjector c(2, opts);
  FaultInjector d(2, other);
  std::vector<FaultInjector::Decision> dc = Drain(c, 0, 64);
  std::vector<FaultInjector::Decision> dd = Drain(d, 0, 64);
  bool diverged = false;
  for (size_t i = 0; i < dc.size(); ++i) {
    diverged = diverged || dc[i].fail != dd[i].fail;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, ShardsHaveIndependentSchedules) {
  FaultInjectorOptions opts;
  opts.seed = 11;
  opts.unavailable_rate = 0.5;
  FaultInjector injector(2, opts);
  std::vector<FaultInjector::Decision> s0 = Drain(injector, 0, 64);
  std::vector<FaultInjector::Decision> s1 = Drain(injector, 1, 64);
  bool diverged = false;
  for (size_t i = 0; i < s0.size(); ++i) {
    diverged = diverged || s0[i].fail != s1[i].fail;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, ZeroRatesNeverFault) {
  FaultInjector injector(1, FaultInjectorOptions{});
  for (int i = 0; i < 100; ++i) {
    FaultInjector::Decision d = injector.Decide(0);
    EXPECT_FALSE(d.fail);
    EXPECT_EQ(d.latency_ms, 0.0);
  }
  EXPECT_EQ(injector.injected_failures(), 0);
  EXPECT_EQ(injector.injected_latency_spikes(), 0);
}

TEST(FaultInjectorTest, RateOneAlwaysFaults) {
  FaultInjectorOptions opts;
  opts.unavailable_rate = 1.0;
  opts.latency_rate = 1.0;
  opts.latency_spike_ms = 0.25;
  FaultInjector injector(1, opts);
  for (int i = 0; i < 10; ++i) {
    FaultInjector::Decision d = injector.Decide(0);
    EXPECT_TRUE(d.fail);
    EXPECT_EQ(d.latency_ms, 0.25);
  }
  EXPECT_EQ(injector.injected_failures(), 10);
  EXPECT_EQ(injector.injected_latency_spikes(), 10);
}

TEST(FaultInjectorTest, FailNextFailsExactlyK) {
  FaultInjector injector(2, FaultInjectorOptions{});
  injector.FailNext(0, 3);
  EXPECT_TRUE(injector.Decide(0).fail);
  EXPECT_TRUE(injector.Decide(0).fail);
  // The other shard is unaffected.
  EXPECT_FALSE(injector.Decide(1).fail);
  EXPECT_TRUE(injector.Decide(0).fail);
  EXPECT_FALSE(injector.Decide(0).fail);
  EXPECT_EQ(injector.injected_failures(), 3);
}

TEST(FaultInjectorTest, SetDownFailsUntilRecovery) {
  FaultInjector injector(1, FaultInjectorOptions{});
  injector.SetDown(0, true);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(injector.Decide(0).fail);
  injector.SetDown(0, false);
  EXPECT_FALSE(injector.Decide(0).fail);
}

TEST(FaultInjectorTest, ExplicitControlsDoNotShiftTheRandomSchedule) {
  FaultInjectorOptions opts;
  opts.seed = 19;
  opts.unavailable_rate = 0.4;
  opts.latency_rate = 0.4;
  opts.latency_spike_ms = 0.5;
  FaultInjector clean(1, opts);
  FaultInjector forced(1, opts);
  forced.FailNext(0, 5);
  std::vector<FaultInjector::Decision> a = Drain(clean, 0, 32);
  std::vector<FaultInjector::Decision> b = Drain(forced, 0, 32);
  for (size_t i = 0; i < a.size(); ++i) {
    // Latency draws are never overridden; fail decisions realign as soon as
    // the explicit faults are exhausted because every Decide consumes
    // exactly two draws.
    EXPECT_EQ(a[i].latency_ms, b[i].latency_ms) << "call " << i;
    if (i >= 5) {
      EXPECT_EQ(a[i].fail, b[i].fail) << "call " << i;
    } else {
      EXPECT_TRUE(b[i].fail);
    }
  }
}

// ---- FaultInjectingTransport -----------------------------------------------

/// Fake downstream transport: returns a recognizable fixed result and
/// counts deliveries, so tests can tell injected failures from delivered
/// calls without running an estimator.
class RecordingTransport : public ShardTransport {
 public:
  explicit RecordingTransport(int num_shards) : num_shards_(num_shards) {}

  util::StatusOr<measure::MeasureResult> Call(
      int shard, const MeasureRequest& request) override {
    (void)request;
    ++calls_;
    last_shard_ = shard;
    MeasureResult result;
    result.value = 0.625;
    result.is_exact = true;
    return result;
  }

  int num_shards() const override { return num_shards_; }
  int calls() const { return calls_; }
  int last_shard() const { return last_shard_; }

 private:
  int num_shards_;
  int calls_ = 0;
  int last_shard_ = -1;
};

TEST(FaultInjectingTransportTest, InjectedFailureIsRetryableAndAttributed) {
  RecordingTransport downstream(2);
  FaultInjector injector(2, FaultInjectorOptions{});
  FaultInjectingTransport transport(&downstream, &injector);
  injector.SetDown(1, true);

  MeasureRequest request;  // never delivered, content irrelevant
  util::StatusOr<MeasureResult> failed = transport.Call(1, request);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(failed.status().IsRetryable());
  EXPECT_EQ(failed.status().context().shard_id, 1);
  EXPECT_EQ(downstream.calls(), 0);  // the fault struck before delivery

  util::StatusOr<MeasureResult> delivered = transport.Call(0, request);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(delivered->value, 0.625);
  EXPECT_EQ(downstream.calls(), 1);
  EXPECT_EQ(downstream.last_shard(), 0);
}

// ---- Router retry / degradation under targeted faults ----------------------

Polynomial Z(int i) { return Polynomial::Variable(i); }

// A 3-D positive orthant cone: cheap single-run FPRAS work.
RealFormula Orthant3D() {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  return RealFormula::And(std::move(parts));
}

MeasureOptions CheapOpts(uint64_t seed) {
  MeasureOptions o;
  o.method = Method::kFpras;
  o.epsilon = 0.5;
  o.seed = seed;
  return o;
}

ShardedServiceOptions SingleShardOptions() {
  ShardedServiceOptions opts;
  opts.num_shards = 1;
  opts.retry.max_attempts = 3;
  opts.retry.backoff.initial_ms = 0.01;
  opts.retry.backoff.max_ms = 0.05;
  opts.faults = FaultInjectorOptions{};  // zero rates: targeted faults only
  return opts;
}

TEST(FaultRetryTest, TransientFaultsAreRetriedToABitIdenticalResult) {
  auto baseline = measure::ComputeNu(Orthant3D(), CheapOpts(21));
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ShardedMeasureService service(SingleShardOptions());
  ASSERT_NE(service.fault_injector(), nullptr);
  service.fault_injector()->FailNext(0, 2);  // two failures, third try lands

  auto ticket = service.Submit(MeasureRequest::Nu(Orthant3D(), CheapOpts(21)));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->attempts, 3);
  EXPECT_EQ(response->shard, 0);
  EXPECT_FALSE(response->degraded);
  EXPECT_EQ(response->result.value, baseline->value);
  EXPECT_EQ(response->result.ci_lo, baseline->ci_lo);
  EXPECT_EQ(response->result.ci_hi, baseline->ci_hi);

  ShardedStats stats = service.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.transient_failures, 2);
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(stats.failures, 0);
}

TEST(FaultRetryTest, DownShardDegradesToLocalBitIdenticalRecompute) {
  auto baseline = measure::ComputeNu(Orthant3D(), CheapOpts(22));
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ShardedServiceOptions opts = SingleShardOptions();
  opts.degrade = DegradeMode::kLocalRecompute;
  ShardedMeasureService service(opts);
  service.fault_injector()->SetDown(0, true);

  auto ticket = service.Submit(MeasureRequest::Nu(Orthant3D(), CheapOpts(22)));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->shard, -1);
  EXPECT_EQ(response->attempts, opts.retry.max_attempts);
  EXPECT_EQ(response->degraded_epsilon, 0.0);
  EXPECT_EQ(response->result.value, baseline->value);
  EXPECT_EQ(response->result.ci_lo, baseline->ci_lo);
  EXPECT_EQ(response->result.ci_hi, baseline->ci_hi);
  EXPECT_EQ(service.stats().degraded, 1);
  EXPECT_EQ(service.stats().failures, 0);
}

TEST(FaultRetryTest, CoarsenEpsilonDegradationStampsTheServedEpsilon) {
  MeasureOptions request_opts = CheapOpts(23);
  ShardedServiceOptions opts = SingleShardOptions();
  opts.degrade = DegradeMode::kCoarsenEpsilon;
  opts.coarsen_factor = 1.5;

  MeasureOptions coarse = request_opts;
  coarse.epsilon = request_opts.epsilon * opts.coarsen_factor;
  auto baseline = measure::ComputeNu(Orthant3D(), coarse);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ShardedMeasureService service(opts);
  service.fault_injector()->SetDown(0, true);
  auto ticket = service.Submit(MeasureRequest::Nu(Orthant3D(), request_opts));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->degraded_epsilon, coarse.epsilon);
  EXPECT_EQ(response->result.value, baseline->value);
  EXPECT_EQ(response->result.ci_lo, baseline->ci_lo);
  EXPECT_EQ(response->result.ci_hi, baseline->ci_hi);
  EXPECT_EQ(response->result.epsilon_used, baseline->epsilon_used);
}

TEST(FaultRetryTest, NoDegradationSurfacesTheRetryableErrorWithContext) {
  ShardedServiceOptions opts = SingleShardOptions();
  opts.degrade = DegradeMode::kNone;
  ShardedMeasureService service(opts);
  service.fault_injector()->SetDown(0, true);

  auto ticket = service.Submit(MeasureRequest::Nu(Orthant3D(), CheapOpts(24)));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(response.status().IsRetryable());
  EXPECT_EQ(response.status().context().shard_id, 0);
  EXPECT_EQ(response.status().context().attempts, opts.retry.max_attempts);
  // The terminal message names the request and the shard.
  EXPECT_NE(response.status().message().find("req:"), std::string::npos);
  EXPECT_NE(response.status().message().find("shard 0"), std::string::npos);

  ShardedStats stats = service.stats();
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.transient_failures,
            static_cast<int64_t>(opts.retry.max_attempts));
}

}  // namespace
}  // namespace mudb::service
