// The batched K-chain kernel against the scalar sampler: every lane of
// BatchedHitAndRunSampler must be bit-identical to a scalar HitAndRunSampler
// walking the same (body, start, rng substream), for any K, any lane subset
// schedule, and across the fixed 1024-step cache-refresh boundary — the
// contract that lets the estimator chain grids route through the batched
// kernel without perturbing any estimate.

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/convex/batch_sampler.h"
#include "src/convex/body.h"
#include "src/convex/sampler.h"
#include "src/geom/geometry.h"
#include "src/util/rng.h"

namespace mudb::convex {
namespace {

// A random bounded body with a known interior point: `inside` is interior by
// construction (positive margin against every constraint).
struct RandomBody {
  ConvexBody body;
  geom::Vec inside;
};

RandomBody MakeRandomBody(int dim, util::Rng& rng) {
  RandomBody out{ConvexBody(dim), geom::Vec(dim)};
  for (int j = 0; j < dim; ++j) out.inside[j] = rng.Uniform(-0.3, 0.3);
  int num_halfspaces = static_cast<int>(rng.UniformInt(0, 2 * dim + 2));
  for (int i = 0; i < num_halfspaces; ++i) {
    geom::Vec a(dim);
    for (int j = 0; j < dim; ++j) a[j] = rng.Uniform(-1, 1);
    double margin = rng.Uniform(0.05, 1.0);
    out.body.AddHalfspace(a, geom::Dot(a, out.inside) + margin);
  }
  // At least one ball so every chord is bounded.
  int num_balls = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < num_balls; ++i) {
    geom::Vec c(dim);
    for (int j = 0; j < dim; ++j) c[j] = rng.Uniform(-0.4, 0.4);
    geom::Vec diff = geom::AddScaled(out.inside, -1.0, c);
    double radius = geom::Norm(diff) + rng.Uniform(0.3, 1.5);
    out.body.AddBall(std::move(c), radius);
  }
  return out;
}

// Walks K batched lanes and K scalar chains on the same substreams and
// asserts positions agree after every block. Block boundaries are chosen so
// comparisons straddle the kSamplerRefreshInterval exact-refresh schedule.
void ExpectLanesMatchScalar(const RandomBody& rb, int lanes, uint64_t seed) {
  BatchedHitAndRunSampler batched(&rb.body, lanes);
  std::vector<util::Rng> lane_rngs;
  std::vector<util::Rng> scalar_rngs;
  std::vector<HitAndRunSampler> scalars;
  util::Rng base(seed);
  for (int l = 0; l < lanes; ++l) {
    lane_rngs.push_back(base.Split(l));
    scalar_rngs.push_back(base.Split(l));
    scalars.emplace_back(&rb.body, rb.inside);
    batched.ResetLane(l, rb.inside);
  }
  // 5 × 300 = 1500 steps: crosses the 1024-step refresh boundary mid-walk.
  geom::Vec got;
  for (int block = 0; block < 5; ++block) {
    batched.WalkAll(300, lane_rngs.data());
    for (int l = 0; l < lanes; ++l) {
      scalars[l].Walk(300, scalar_rngs[l]);
      batched.GetCurrent(l, &got);
      ASSERT_EQ(got, scalars[l].current())
          << "lanes " << lanes << " lane " << l << " block " << block;
    }
  }
  // The rng streams must also be in lockstep (same number of draws), or the
  // position match above would diverge on the very next use.
  for (int l = 0; l < lanes; ++l) {
    ASSERT_EQ(lane_rngs[l].Uniform01(), scalar_rngs[l].Uniform01());
  }
}

TEST(BatchSamplerTest, LanesBitIdenticalToScalarAcrossK) {
  util::Rng body_rng(1234);
  for (int dim : {1, 2, 3, 5}) {
    RandomBody rb = MakeRandomBody(dim, body_rng);
    for (int lanes : {1, 2, 4, 8, 16}) {
      ExpectLanesMatchScalar(rb, lanes, 9000 + dim);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(BatchSamplerTest, SubsetWalksMatchScalarSchedules) {
  // Lanes walked through arbitrary subset schedules (the Karp–Luby loop's
  // access pattern: different lanes advance by different step counts at
  // different times) must still match scalar chains walking the same
  // per-lane totals.
  util::Rng body_rng(77);
  RandomBody rb = MakeRandomBody(3, body_rng);
  const int lanes = 4;
  BatchedHitAndRunSampler batched(&rb.body, lanes);
  std::vector<util::Rng> lane_rngs;
  std::vector<util::Rng> scalar_rngs;
  std::vector<HitAndRunSampler> scalars;
  util::Rng base(4321);
  for (int l = 0; l < lanes; ++l) {
    lane_rngs.push_back(base.Split(l));
    scalar_rngs.push_back(base.Split(l));
    scalars.emplace_back(&rb.body, rb.inside);
    batched.ResetLane(l, rb.inside);
  }
  // Schedule: (lane subset, steps). Non-contiguous, unordered-looking lane
  // sets; lane 0 never rests, lane 3 mostly rests.
  const std::vector<std::pair<std::vector<int>, int>> schedule = {
      {{0, 2}, 37},  {{0, 1, 3}, 11}, {{0}, 301},      {{1, 2}, 64},
      {{0, 1, 2, 3}, 129}, {{2, 0}, 40}, {{0, 1, 2}, 257},
  };
  std::vector<int> scalar_steps(lanes, 0);
  for (const auto& [lane_set, steps] : schedule) {
    std::vector<util::Rng*> rngs;
    for (int l : lane_set) rngs.push_back(&lane_rngs[l]);
    batched.WalkLanes(steps, lane_set.data(),
                      static_cast<int>(lane_set.size()), rngs.data());
    for (int l : lane_set) {
      scalars[l].Walk(steps, scalar_rngs[l]);
      scalar_steps[l] += steps;
    }
    geom::Vec got;
    for (int l = 0; l < lanes; ++l) {
      batched.GetCurrent(l, &got);
      ASSERT_EQ(got, scalars[l].current()) << "lane " << l << " after "
                                           << scalar_steps[l] << " steps";
    }
  }
}

TEST(BatchSamplerTest, LazyLaneInitAndReset) {
  // Lanes initialize independently (the Karp–Luby loop only pays burn-in for
  // chains a chunk actually picks), and ResetLane mid-walk resyncs a lane
  // exactly like the scalar set_current.
  util::Rng body_rng(55);
  RandomBody rb = MakeRandomBody(2, body_rng);
  const int lanes = 3;
  BatchedHitAndRunSampler batched(&rb.body, lanes);
  EXPECT_FALSE(batched.lane_initialized(0));
  batched.ResetLane(1, rb.inside);
  EXPECT_FALSE(batched.lane_initialized(0));
  EXPECT_TRUE(batched.lane_initialized(1));

  util::Rng walk_rng(808), scalar_walk_rng(808);
  const int list[] = {1};
  util::Rng* rngs[] = {&walk_rng};
  batched.WalkLanes(100, list, 1, rngs);

  HitAndRunSampler scalar(&rb.body, rb.inside);
  scalar.Walk(100, scalar_walk_rng);
  geom::Vec got;
  batched.GetCurrent(1, &got);
  EXPECT_EQ(got, scalar.current());

  // Teleport the lane back to the seed point: the next walk must match a
  // fresh chain bit for bit (caches resynced, no stale state).
  batched.ResetLane(1, rb.inside);
  scalar.set_current(rb.inside);
  util::Rng rng_a(909), rng_b(909);
  util::Rng* rngs_a[] = {&rng_a};
  batched.WalkLanes(80, list, 1, rngs_a);
  scalar.Walk(80, rng_b);
  batched.GetCurrent(1, &got);
  EXPECT_EQ(got, scalar.current());
}

TEST(BatchSamplerTest, SetBallRadiusThenResetMatchesFreshScalar) {
  // The annealing estimator's reuse pattern: one body per schedule, radius
  // swapped between phases, every lane restarted. Lane trajectories must
  // match scalar samplers constructed after the radius change.
  util::Rng body_rng(66);
  RandomBody rb = MakeRandomBody(3, body_rng);
  const int ball = 0;  // MakeRandomBody adds at least one ball
  const int lanes = 4;
  BatchedHitAndRunSampler batched(&rb.body, lanes);
  std::vector<util::Rng> lane_rngs;
  for (int l = 0; l < lanes; ++l) {
    lane_rngs.push_back(util::Rng(500 + l));
    batched.ResetLane(l, rb.inside);
  }
  batched.WalkAll(64, lane_rngs.data());

  const double grown = rb.body.balls()[ball].radius * 1.5;
  rb.body.SetBallRadius(ball, grown);
  for (int l = 0; l < lanes; ++l) {
    lane_rngs[l] = util::Rng(700 + l);
    batched.ResetLane(l, rb.inside);
  }
  batched.WalkAll(200, lane_rngs.data());
  geom::Vec got;
  for (int l = 0; l < lanes; ++l) {
    util::Rng scalar_rng(700 + l);
    HitAndRunSampler scalar(&rb.body, rb.inside);
    scalar.Walk(200, scalar_rng);
    batched.GetCurrent(l, &got);
    ASSERT_EQ(got, scalar.current()) << "lane " << l;
  }
}

}  // namespace
}  // namespace mudb::convex
