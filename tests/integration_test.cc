// End-to-end integration tests: the paper's introduction example and the §9
// experimental pipeline (SQL → candidate enumeration → measures) at a small
// scale.

#include <cmath>

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"
#include "src/engine/eval.h"
#include "src/measure/measure.h"
#include "src/sql/parser.h"
#include "src/translate/ground.h"

namespace mudb {
namespace {

using engine::EvaluateCq;
using logic::CmpOp;
using measure::ComputeNu;
using measure::MeasureOptions;
using model::Value;

// The three §9 queries, with the reconstructions documented in
// EXPERIMENTS.md (divisions multiplied out; Orders linked to Products in the
// undersold query; M.rrp for the garbled "M.id").
constexpr const char* kCompetitiveAdvantage =
    "SELECT P.seg FROM Products P, Market M "
    "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25";
constexpr const char* kUndersold =
    "SELECT P.id FROM Products P, Orders O, Market M "
    "WHERE P.seg = M.seg AND P.id = O.pr AND "
    "P.rrp * P.dis * O.q <= 0.5 * M.rrp * M.dis * O.dis LIMIT 25";
constexpr const char* kUnfairDiscount =
    "SELECT O.id FROM Products P, Orders O "
    "WHERE P.id = O.pr AND O.dis >= 1.6 * P.dis * O.q LIMIT 25";

TEST(IntegrationTest, SalesPipelineEndToEnd) {
  datagen::SalesConfig config;
  config.num_products = 2000;
  config.num_orders = 1200;
  config.num_segments = 40;
  config.null_rate = 0.08;
  config.seed = 7;
  auto db = datagen::MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());

  for (const char* sql :
       {kCompetitiveAdvantage, kUndersold, kUnfairDiscount}) {
    auto cq = sql::ParseSqlQuery(sql, *db);
    ASSERT_TRUE(cq.ok()) << cq.status() << "\n" << sql;
    auto result = EvaluateCq(*db, *cq);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_LE(result->candidates.size(), 25u);
    EXPECT_FALSE(result->candidates.empty()) << sql;
    for (const engine::Candidate& c : result->candidates) {
      MeasureOptions opts;
      opts.epsilon = 0.05;
      auto mu = ComputeNu(c.constraint, opts);
      ASSERT_TRUE(mu.ok()) << mu.status();
      EXPECT_GE(mu->value, 0.0);
      EXPECT_LE(mu->value, 1.0);
      if (c.certain) {
        EXPECT_DOUBLE_EQ(mu->value, 1.0);
      }
    }
  }
}

TEST(IntegrationTest, UncertainCandidatesExist) {
  // With a meaningful null rate some candidates must be genuinely uncertain
  // (0 < μ < 1), otherwise the whole framework is pointless.
  datagen::SalesConfig config;
  config.num_products = 2000;
  config.num_orders = 1000;
  config.num_segments = 30;
  config.null_rate = 0.3;
  config.seed = 11;
  auto db = datagen::MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  auto cq = sql::ParseSqlQuery(kCompetitiveAdvantage, *db);
  ASSERT_TRUE(cq.ok());
  auto result = EvaluateCq(*db, *cq);
  ASSERT_TRUE(result.ok());
  int uncertain = 0;
  for (const engine::Candidate& c : result->candidates) {
    MeasureOptions opts;
    auto mu = ComputeNu(c.constraint, opts);
    ASSERT_TRUE(mu.ok());
    if (mu->value > 1e-6 && mu->value < 1.0 - 1e-6) ++uncertain;
  }
  EXPECT_GT(uncertain, 0);
}

TEST(IntegrationTest, MeasuresAreSeedStable) {
  datagen::SalesConfig config;
  config.num_products = 500;
  config.num_orders = 300;
  config.num_segments = 10;
  config.null_rate = 0.2;
  auto db = datagen::MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  auto cq = sql::ParseSqlQuery(kCompetitiveAdvantage, *db);
  ASSERT_TRUE(cq.ok());
  auto result = EvaluateCq(*db, *cq);
  ASSERT_TRUE(result.ok());
  for (const engine::Candidate& c : result->candidates) {
    MeasureOptions opts;
    opts.method = measure::Method::kAfpras;
    opts.epsilon = 0.05;
    opts.seed = 1234;
    auto a = ComputeNu(c.constraint, opts);
    auto b = ComputeNu(c.constraint, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a->value, b->value);
  }
}

TEST(IntegrationTest, AfprasVersusExactOnPipelineConstraints) {
  // For candidates whose constraints touch <= 2 nulls, the exact 2-D engine
  // provides ground truth for the AFPRAS estimate.
  datagen::SalesConfig config;
  config.num_products = 800;
  config.num_orders = 500;
  config.num_segments = 20;
  config.null_rate = 0.15;
  config.seed = 3;
  auto db = datagen::MakeSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  // Per-product candidates keep each constraint on a couple of nulls, so the
  // exact 2-D engine applies to many of them.
  auto cq = sql::ParseSqlQuery(
      "SELECT P.id FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 100",
      *db);
  ASSERT_TRUE(cq.ok());
  auto result = EvaluateCq(*db, *cq);
  ASSERT_TRUE(result.ok());
  int checked = 0;
  for (const engine::Candidate& c : result->candidates) {
    if (c.certain || c.constraint.UsedVariables().size() > 2) continue;
    MeasureOptions exact_opts;
    exact_opts.method = measure::Method::kExact2D;
    auto exact = ComputeNu(c.constraint, exact_opts);
    ASSERT_TRUE(exact.ok()) << exact.status();
    MeasureOptions approx_opts;
    approx_opts.method = measure::Method::kAfpras;
    approx_opts.epsilon = 0.02;
    approx_opts.delta = 0.001;
    auto approx = ComputeNu(c.constraint, approx_opts);
    ASSERT_TRUE(approx.ok());
    EXPECT_NEAR(approx->value, exact->value, 0.02);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(IntegrationTest, CampaignExampleViaFullQuery) {
  // End-to-end μ for the introduction's query over the campaign database.
  auto campaign = datagen::MakeCampaignDatabase();
  ASSERT_TRUE(campaign.ok());
  const model::Database& db = campaign->db;

  logic::Formula antecedent = logic::Formula::And([] {
    std::vector<logic::Formula> v;
    v.push_back(logic::Formula::Rel(
        "Products",
        {logic::AtomArg::BaseVar("i"), logic::AtomArg::BaseVar("s"),
         logic::AtomArg::NumVar("r"), logic::AtomArg::NumVar("d")}));
    v.push_back(logic::Formula::Not(logic::Formula::Rel(
        "Excluded",
        {logic::AtomArg::BaseVar("i"), logic::AtomArg::BaseVar("s")})));
    v.push_back(logic::Formula::Rel(
        "Competition", {logic::AtomArg::BaseVar("ip"),
                        logic::AtomArg::BaseVar("s"),
                        logic::AtomArg::NumVar("p")}));
    return v;
  }());
  logic::Formula consequent = logic::Formula::And([] {
    std::vector<logic::Formula> v;
    v.push_back(logic::Formula::Cmp(
        logic::Term::Var("r") * logic::Term::Var("d"), CmpOp::kLe,
        logic::Term::Var("p")));
    v.push_back(logic::Formula::Cmp(logic::Term::Var("r"), CmpOp::kGe,
                                    logic::Term::Const(0)));
    v.push_back(logic::Formula::Cmp(logic::Term::Var("d"), CmpOp::kGe,
                                    logic::Term::Const(0)));
    v.push_back(logic::Formula::Cmp(logic::Term::Var("p"), CmpOp::kGe,
                                    logic::Term::Const(0)));
    return v;
  }());
  logic::Formula f = logic::Formula::ForallMany(
      {logic::TypedVar{"i", model::Sort::kBase},
       logic::TypedVar{"r", model::Sort::kNum},
       logic::TypedVar{"d", model::Sort::kNum},
       logic::TypedVar{"ip", model::Sort::kBase},
       logic::TypedVar{"p", model::Sort::kNum}},
      logic::Formula::Implies(antecedent, consequent));
  auto q = logic::Query::MakeWithOutput(
      f, {logic::TypedVar{"s", model::Sort::kBase}}, db);
  ASSERT_TRUE(q.ok()) << q.status();

  MeasureOptions opts;
  auto mu = measure::ComputeMeasure(*q, db, {Value::BaseConst("s")}, opts);
  ASSERT_TRUE(mu.ok()) << mu.status();
  EXPECT_TRUE(mu->is_exact);
  EXPECT_NEAR(mu->value, std::atan(10.0 / 7.0) / (2 * M_PI), 1e-9);

  // Restricted to the positive quadrant, the conditional measure matches the
  // intro's 0.611-style reasoning for the literal query; the printed paper
  // values (0.097 / 0.388) correspond to the flipped comparison — covered in
  // translate_test and EXPERIMENTS.md.
  MeasureOptions afpras_opts;
  afpras_opts.method = measure::Method::kAfpras;
  afpras_opts.epsilon = 0.02;
  afpras_opts.delta = 0.001;
  auto approx = measure::ComputeMeasure(*q, db, {Value::BaseConst("s")},
                                        afpras_opts);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->value, mu->value, 0.02);
}

TEST(IntegrationTest, CertainAnswerHasMeasureOneAcrossPipelines) {
  // A query with no arithmetic on nulls: candidates are certain in both the
  // CQ pipeline and the general grounding.
  model::Database db;
  ASSERT_TRUE(db.CreateRelation(model::RelationSchema(
                   "R", {{"a", model::Sort::kBase},
                         {"x", model::Sort::kNum}}))
                  .ok());
  ASSERT_TRUE(
      db.Insert("R", {Value::BaseConst("k"), db.MakeNumNull()}).ok());
  auto cq = sql::ParseSqlQuery("SELECT R.a FROM R", db);
  ASSERT_TRUE(cq.ok()) << cq.status();
  auto result = EvaluateCq(db, *cq);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_TRUE(result->candidates[0].certain);

  auto q = cq->ToQuery(db);
  ASSERT_TRUE(q.ok());
  MeasureOptions opts;
  auto mu = measure::ComputeMeasure(*q, db, {Value::BaseConst("k")}, opts);
  ASSERT_TRUE(mu.ok());
  EXPECT_DOUBLE_EQ(mu->value, 1.0);
}

}  // namespace
}  // namespace mudb
