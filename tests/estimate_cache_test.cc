// Tests for service/estimate_cache.h: LRU semantics, size bounds, counters,
// and concurrent access of the sharded cache the serving layer shares
// across requests.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/estimate_cache.h"

namespace mudb::service {
namespace {

convex::CanonicalBodyKey Key(uint64_t hi, uint64_t lo) {
  return convex::CanonicalBodyKey{util::Fingerprint128{hi, lo}};
}

volume::CachedBodyEstimate Estimate(double volume, int64_t steps) {
  return volume::CachedBodyEstimate{volume, steps, /*phases=*/3};
}

TEST(EstimateCacheTest, LookupAfterInsertRoundTrips) {
  EstimateCache cache;
  EXPECT_FALSE(cache.Lookup(Key(1, 2)).has_value());
  cache.Insert(Key(1, 2), Estimate(0.5, 1000));
  auto hit = cache.Lookup(Key(1, 2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->volume, 0.5);
  EXPECT_EQ(hit->steps, 1000);
  EXPECT_EQ(hit->phases, 3);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_EQ(cache.steps_saved(), 1000);
}

TEST(EstimateCacheTest, CapacityBoundEvictsLeastRecentlyUsed) {
  EstimateCache::Options options;
  options.capacity = 4;
  options.shards = 1;  // single shard: eviction order is globally observable
  EstimateCache cache(options);
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(Key(10, i), Estimate(static_cast<double>(i), 1));
  }
  // Touch key 0 so key 1 becomes the LRU entry.
  EXPECT_TRUE(cache.Lookup(Key(10, 0)).has_value());
  cache.Insert(Key(10, 99), Estimate(99.0, 1));

  EXPECT_TRUE(cache.Lookup(Key(10, 0)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(10, 1)).has_value());  // evicted
  EXPECT_TRUE(cache.Lookup(Key(10, 2)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(10, 3)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(10, 99)).has_value());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 4);
}

TEST(EstimateCacheTest, ReinsertUpdatesInPlace) {
  EstimateCache::Options options;
  options.capacity = 4;
  options.shards = 1;
  EstimateCache cache(options);
  cache.Insert(Key(1, 1), Estimate(1.0, 10));
  cache.Insert(Key(1, 1), Estimate(2.0, 20));
  auto hit = cache.Lookup(Key(1, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->volume, 2.0);
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(EstimateCacheTest, ClearEmptiesEveryShard) {
  EstimateCache cache;
  for (uint64_t i = 0; i < 64; ++i) {
    // Spread across shards via the high bits the router uses.
    cache.Insert(Key(i << 32, i), Estimate(1.0, 1));
  }
  EXPECT_EQ(cache.stats().entries, 64);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_FALSE(cache.Lookup(Key(0, 0)).has_value());
}

TEST(EstimateCacheTest, ClearResetsEveryCounterCoherently) {
  // Clear() starts a fresh stats epoch: hit/miss/insertion/eviction totals
  // and steps_saved reset together with the entries. Mixing pre-clear
  // counters with a zeroed entry count produced incoherent post-clear
  // reporting (hit rates no post-clear workload could have generated).
  EstimateCache::Options options;
  options.capacity = 4;
  options.shards = 2;
  EstimateCache cache(options);
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Insert(Key(i << 32, i), Estimate(1.0, 50));
    cache.Lookup(Key(i << 32, i));
    cache.Lookup(Key(i << 32, ~i));  // miss
  }
  CacheStats before = cache.stats();
  EXPECT_GT(before.hits + before.misses, 0);
  EXPECT_GT(before.insertions, 0);
  EXPECT_GT(cache.steps_saved(), 0);

  cache.Clear();
  CacheStats after = cache.stats();
  EXPECT_EQ(after.hits, 0);
  EXPECT_EQ(after.misses, 0);
  EXPECT_EQ(after.insertions, 0);
  EXPECT_EQ(after.evictions, 0);
  EXPECT_EQ(after.entries, 0);
  EXPECT_DOUBLE_EQ(after.HitRate(), 0.0);
  EXPECT_EQ(cache.steps_saved(), 0);

  // The next epoch counts from zero.
  cache.Insert(Key(1, 1), Estimate(2.0, 10));
  EXPECT_TRUE(cache.Lookup(Key(1, 1)).has_value());
  CacheStats epoch = cache.stats();
  EXPECT_EQ(epoch.hits, 1);
  EXPECT_EQ(epoch.misses, 0);
  EXPECT_EQ(epoch.insertions, 1);
  EXPECT_EQ(epoch.entries, 1);
  EXPECT_EQ(cache.steps_saved(), 10);
}

TEST(EstimateCacheTest, ConcurrentClearVersusGetKeepsStatsCoherent) {
  // Clear holds every shard lock across purge + counter reset, so a racing
  // Lookup/Insert epoch lands entirely before or after it. Under the race
  // the observable invariants are: HitRate stays in [0, 1], no counter goes
  // negative, and entries never exceeds capacity.
  EstimateCache::Options options;
  options.capacity = 128;
  options.shards = 4;
  EstimateCache cache(options);
  constexpr int kWorkers = 3;
  constexpr int kOpsPerWorker = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerWorker; ++i) {
        uint64_t id = static_cast<uint64_t>((t * kOpsPerWorker + i) % 64);
        convex::CanonicalBodyKey key = Key(id << 32, id);
        if (!cache.Lookup(key).has_value()) {
          cache.Insert(key, Estimate(static_cast<double>(id), 5));
        }
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int round = 0; round < 50; ++round) {
      cache.Clear();
      CacheStats snapshot = cache.stats();
      EXPECT_GE(snapshot.hits, 0);
      EXPECT_GE(snapshot.misses, 0);
      EXPECT_GE(snapshot.insertions, 0);
      EXPECT_GE(snapshot.evictions, 0);
      EXPECT_GE(snapshot.entries, 0);
      double rate = snapshot.HitRate();
      EXPECT_GE(rate, 0.0);
      EXPECT_LE(rate, 1.0);
      EXPECT_GE(cache.steps_saved(), 0);
    }
  });
  for (std::thread& thread : threads) thread.join();
  CacheStats final_stats = cache.stats();
  EXPECT_GE(final_stats.entries, 0);
  EXPECT_LE(final_stats.entries, 128);
  EXPECT_GE(final_stats.hits, 0);
  EXPECT_GE(final_stats.misses, 0);
}

TEST(EstimateCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EstimateCache::Options options;
  options.capacity = 64;
  options.shards = 5;
  EstimateCache cache(options);
  // 5 → 8 shards, 64 / 8 = 8 per shard.
  EXPECT_EQ(cache.capacity(), 64u);
}

TEST(EstimateCacheTest, GenericCacheStoresArbitraryValues) {
  ShardedLruCache<std::vector<int>> cache(8, 2);
  cache.Insert(Key(5, 5), {1, 2, 3});
  auto hit = cache.Lookup(Key(5, 5));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cache.num_shards(), 2);
}

TEST(EstimateCacheTest, ConcurrentLookupInsertIsSafe) {
  // Hammer one cache from several threads; TSan (CI) checks the locking,
  // this test checks nothing is lost or double-counted in the totals.
  EstimateCache::Options options;
  options.capacity = 256;
  options.shards = 4;
  EstimateCache cache(options);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Working set smaller than the capacity: revisits must hit.
        uint64_t id = static_cast<uint64_t>((t * kOpsPerThread + i) % 128);
        convex::CanonicalBodyKey key = Key(id << 32, id);
        if (!cache.Lookup(key).has_value()) {
          cache.Insert(key, Estimate(static_cast<double>(id), 1));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_LE(stats.entries, 256);
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace mudb::service
