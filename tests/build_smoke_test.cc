// Calls one out-of-line function from EVERY subsystem library in one binary.
// With static archives the linker drops libraries that contribute no
// referenced symbol, so each call below forces its module (and the module's
// declared dependency edges) to actually resolve at link time. An ODR clash,
// a missing link edge, or an include cycle introduced by a later refactor
// fails this suite even if the per-subsystem suites (which link narrower
// sets of libraries) still pass.

#include <gtest/gtest.h>

#include "src/constraints/real_formula.h"
#include "src/convex/body.h"
#include "src/datagen/datagen.h"
#include "src/engine/naive.h"
#include "src/geom/geometry.h"
#include "src/io/csv.h"
#include "src/logic/formula.h"
#include "src/lp/simplex.h"
#include "src/measure/measure.h"
#include "src/model/database.h"
#include "src/poly/polynomial.h"
#include "src/service/measure_service.h"
#include "src/sql/parser.h"
#include "src/translate/ground.h"
#include "src/util/rational.h"
#include "src/util/status.h"
#include "src/volume/union_volume.h"

namespace mudb {
namespace {

TEST(BuildSmokeTest, EverySubsystemLinks) {
  // util
  EXPECT_EQ(util::Rational(2, 4), util::Rational(1, 2));

  // poly
  poly::Polynomial p = poly::Polynomial::Variable(0);
  EXPECT_FALSE(p.IsConstant());

  // constraints
  constraints::RealFormula f =
      constraints::RealFormula::Cmp(p, constraints::CmpOp::kLe);
  EXPECT_FALSE(f.ToString().empty());

  // geom
  util::Rng rng(7);
  geom::Vec dir = geom::SampleUnitSphere(3, rng);
  EXPECT_EQ(dir.size(), 3u);

  // lp
  EXPECT_TRUE(lp::IsFeasible({{1.0}}, {1.0}, 1));

  // convex: the nonnegative quadrant clipped to the unit ball has an
  // inner ball.
  auto ball = convex::FindInnerBall(
      {{geom::Vec{-1.0, 0.0}, 0.0}, {geom::Vec{0.0, -1.0}, 0.0}}, 2, 1.0);
  EXPECT_TRUE(ball.has_value());

  // volume: empty union has volume 0.
  auto vol =
      volume::EstimateUnionVolume({}, volume::UnionVolumeOptions{}, rng);
  ASSERT_TRUE(vol.ok());

  // measure
  auto nu = measure::ComputeNu(constraints::RealFormula::True(),
                               measure::MeasureOptions{});
  ASSERT_TRUE(nu.ok());
  EXPECT_DOUBLE_EQ(nu->value, 1.0);

  // service: a one-request batch answers like ComputeNu.
  service::MeasureService svc;
  auto batch = svc.RunBatch({service::MeasureRequest::Nu(
      constraints::RealFormula::True(), measure::MeasureOptions{})});
  ASSERT_EQ(batch.results.size(), 1u);
  ASSERT_TRUE(batch.results[0].ok());
  EXPECT_DOUBLE_EQ(batch.results[0]->value, 1.0);

  // model
  model::Database db;
  ASSERT_TRUE(
      db.CreateRelation(
            model::RelationSchema("R", {{"x", model::Sort::kNum}}))
          .ok());
  ASSERT_TRUE(db.Insert("R", {model::Value::NumConst(1.0)}).ok());

  // logic
  logic::Formula rel =
      logic::Formula::Rel("R", {logic::AtomArg::NumVar("x")});
  logic::Formula closed = logic::Formula::Exists(
      logic::TypedVar{"x", model::Sort::kNum}, std::move(rel));
  auto q = logic::Query::Make(std::move(closed), db);
  ASSERT_TRUE(q.ok());

  // engine
  auto holds = engine::NaiveHolds(*q, db, {});
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);

  // translate
  auto ground = translate::GroundQuery(*q, db, {});
  ASSERT_TRUE(ground.ok());

  // sql: a parse error still exercises the parser end to end.
  auto bad = sql::ParseSqlQuery("not sql", db);
  EXPECT_FALSE(bad.ok());

  // io
  model::Database db2;
  auto rows = io::LoadCsvRelation(
      &db2, model::RelationSchema("S", {{"x", model::Sort::kNum}}),
      "x\n1.0\n2.0\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 2u);

  // datagen
  auto campaign = datagen::MakeCampaignDatabase();
  ASSERT_TRUE(campaign.ok());
}

}  // namespace
}  // namespace mudb
