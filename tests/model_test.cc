// Unit tests for src/model: values, schemas, relations, databases, valuations.

#include <gtest/gtest.h>

#include "src/model/database.h"
#include "src/model/schema.h"
#include "src/model/value.h"

namespace mudb::model {
namespace {

TEST(ValueTest, KindsAndSorts) {
  Value b = Value::BaseConst("x");
  Value n = Value::NumConst(2.5);
  Value bn = Value::BaseNull(3);
  Value nn = Value::NumNull(4);
  EXPECT_EQ(b.sort(), Sort::kBase);
  EXPECT_EQ(n.sort(), Sort::kNum);
  EXPECT_EQ(bn.sort(), Sort::kBase);
  EXPECT_EQ(nn.sort(), Sort::kNum);
  EXPECT_FALSE(b.is_null());
  EXPECT_TRUE(bn.is_null());
  EXPECT_TRUE(nn.is_null());
  EXPECT_EQ(b.base_const(), "x");
  EXPECT_DOUBLE_EQ(n.num_const(), 2.5);
  EXPECT_EQ(bn.null_id(), 3u);
  EXPECT_EQ(nn.null_id(), 4u);
}

TEST(ValueTest, SyntacticEquality) {
  EXPECT_EQ(Value::BaseConst("a"), Value::BaseConst("a"));
  EXPECT_NE(Value::BaseConst("a"), Value::BaseConst("b"));
  EXPECT_EQ(Value::NumNull(1), Value::NumNull(1));
  EXPECT_NE(Value::NumNull(1), Value::NumNull(2));
  // Same id in different sorts is a different null.
  EXPECT_NE(Value::BaseNull(1), Value::NumNull(1));
  EXPECT_NE(Value::NumConst(1.0), Value::BaseConst("1"));
}

TEST(ValueTest, OrderingIsTotalOnMixedKinds) {
  std::vector<Value> values{Value::NumNull(2), Value::BaseConst("z"),
                            Value::NumConst(-1), Value::BaseNull(0)};
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_TRUE(values[i - 1] < values[i] || values[i - 1] == values[i]);
  }
}

TEST(ValueTest, ToStringRendersNullMarks) {
  EXPECT_EQ(Value::BaseNull(2).ToString(), "\xE2\x8A\xA5" "2");
  EXPECT_EQ(Value::NumNull(7).ToString(), "\xE2\x8A\xA4" "7");
  EXPECT_EQ(Value::BaseConst("abc").ToString(), "abc");
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value::BaseNull(1).Hash(), Value::NumNull(1).Hash());
  EXPECT_EQ(Value::NumConst(3.5).Hash(), Value::NumConst(3.5).Hash());
}

RelationSchema ProductsSchema() {
  return RelationSchema("Products", {{"id", Sort::kBase},
                                     {"seg", Sort::kBase},
                                     {"rrp", Sort::kNum},
                                     {"dis", Sort::kNum}});
}

TEST(SchemaTest, BasicAccessors) {
  RelationSchema s = ProductsSchema();
  EXPECT_EQ(s.name(), "Products");
  EXPECT_EQ(s.arity(), 4u);
  EXPECT_EQ(s.num_base_columns(), 2u);
  EXPECT_EQ(s.num_numeric_columns(), 2u);
  EXPECT_EQ(*s.ColumnIndex("rrp"), 2u);
  EXPECT_FALSE(s.ColumnIndex("nope").has_value());
  EXPECT_EQ(s.ToString(),
            "Products(id:base, seg:base, rrp:num, dis:num)");
}

TEST(SchemaTest, ValidateTupleAcceptsMatching) {
  RelationSchema s = ProductsSchema();
  EXPECT_TRUE(s.ValidateTuple({Value::BaseConst("p1"), Value::BaseNull(0),
                               Value::NumConst(10), Value::NumNull(1)})
                  .ok());
}

TEST(SchemaTest, ValidateTupleRejectsArity) {
  RelationSchema s = ProductsSchema();
  EXPECT_FALSE(s.ValidateTuple({Value::BaseConst("p1")}).ok());
}

TEST(SchemaTest, ValidateTupleRejectsSortMismatch) {
  RelationSchema s = ProductsSchema();
  // A numeric value in a base column and vice versa.
  EXPECT_FALSE(s.ValidateTuple({Value::NumConst(1), Value::BaseConst("s"),
                                Value::NumConst(1), Value::NumConst(1)})
                   .ok());
  EXPECT_FALSE(s.ValidateTuple({Value::BaseConst("p"), Value::BaseConst("s"),
                                Value::BaseNull(0), Value::NumConst(1)})
                   .ok());
}

TEST(RelationTest, InsertValidatesAndStores) {
  Relation r(ProductsSchema());
  EXPECT_TRUE(r.Insert({Value::BaseConst("p"), Value::BaseConst("s"),
                        Value::NumConst(1), Value::NumConst(2)})
                  .ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Insert({Value::BaseConst("p")}).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertDistinctDeduplicates) {
  Relation r(ProductsSchema());
  Tuple t{Value::BaseConst("p"), Value::BaseConst("s"), Value::NumConst(1),
          Value::NumConst(2)};
  EXPECT_TRUE(r.InsertDistinct(t).ok());
  EXPECT_TRUE(r.InsertDistinct(t).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  EXPECT_TRUE(db.CreateRelation(ProductsSchema()).ok());
  EXPECT_FALSE(db.CreateRelation(ProductsSchema()).ok());  // duplicate
  EXPECT_TRUE(db.GetRelation("Products").ok());
  EXPECT_FALSE(db.GetRelation("Nope").ok());
  EXPECT_EQ(db.GetRelation("Nope").status().code(),
            util::StatusCode::kNotFound);
}

TEST(DatabaseTest, FreshNullsHaveDistinctIds) {
  Database db;
  Value a = db.MakeNumNull();
  Value b = db.MakeNumNull();
  Value c = db.MakeBaseNull();
  Value d = db.MakeBaseNull();
  EXPECT_NE(a.null_id(), b.null_id());
  EXPECT_NE(c.null_id(), d.null_id());
}

TEST(DatabaseTest, CollectNumNullIdsInFirstAppearanceOrder) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(ProductsSchema()).ok());
  Value n1 = db.MakeNumNull();
  Value n2 = db.MakeNumNull();
  // Insert n2 before n1 so appearance order differs from id order.
  ASSERT_TRUE(db.Insert("Products", {Value::BaseConst("a"),
                                     Value::BaseConst("s"), n2, n1})
                  .ok());
  std::vector<NullId> ids = db.CollectNumNullIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], n2.null_id());
  EXPECT_EQ(ids[1], n1.null_id());
}

TEST(DatabaseTest, TotalTuplesAndToString) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(ProductsSchema()).ok());
  ASSERT_TRUE(db.Insert("Products", {Value::BaseConst("a"),
                                     Value::BaseConst("s"),
                                     Value::NumConst(1), Value::NumConst(2)})
                  .ok());
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_NE(db.ToString().find("Products"), std::string::npos);
}

TEST(ValuationTest, AppliesToValuesAndTuples) {
  Valuation v;
  v.SetBase(0, "hello");
  v.SetNum(1, 3.5);
  EXPECT_EQ(v.Apply(Value::BaseNull(0)), Value::BaseConst("hello"));
  EXPECT_EQ(v.Apply(Value::NumNull(1)), Value::NumConst(3.5));
  // Unassigned nulls survive.
  EXPECT_EQ(v.Apply(Value::NumNull(9)), Value::NumNull(9));
  Tuple t{Value::BaseNull(0), Value::NumNull(1), Value::NumConst(7)};
  Tuple applied = v.Apply(t);
  EXPECT_EQ(applied[0], Value::BaseConst("hello"));
  EXPECT_EQ(applied[1], Value::NumConst(3.5));
  EXPECT_EQ(applied[2], Value::NumConst(7));
}

TEST(ValuationTest, AppliesToWholeDatabase) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(ProductsSchema()).ok());
  Value n = db.MakeNumNull();
  Value b = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("Products",
                        {b, Value::BaseConst("s"), n, Value::NumConst(2)})
                  .ok());
  Valuation v;
  v.SetBase(b.null_id(), "bound");
  v.SetNum(n.null_id(), 1.25);
  Database applied = v.Apply(db);
  const Tuple& t = applied.GetRelation("Products").value()->tuples()[0];
  EXPECT_EQ(t[0], Value::BaseConst("bound"));
  EXPECT_EQ(t[2], Value::NumConst(1.25));
}

TEST(BijectiveValuationTest, MapsAllBaseNullsInjectively) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
      "R", {{"a", Sort::kBase}, {"b", Sort::kBase}})).ok());
  Value n1 = db.MakeBaseNull();
  Value n2 = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("R", {n1, n2}).ok());
  ASSERT_TRUE(db.Insert("R", {n1, Value::BaseConst("c")}).ok());
  Valuation v = MakeBijectiveBaseValuation(db);
  ASSERT_EQ(v.base_map().size(), 2u);
  EXPECT_NE(v.base_map().at(n1.null_id()), v.base_map().at(n2.null_id()));
  // Range disjoint from the database's constants.
  EXPECT_NE(v.base_map().at(n1.null_id()), "c");
}

TEST(BijectiveValuationTest, AvoidsPrefixCollisions) {
  Database db;
  ASSERT_TRUE(
      db.CreateRelation(RelationSchema("R", {{"a", Sort::kBase}})).ok());
  // A constant that looks like a default-mapped null.
  ASSERT_TRUE(db.Insert("R", {Value::BaseConst("@null_0")}).ok());
  Value n = db.MakeBaseNull();
  ASSERT_TRUE(db.Insert("R", {n}).ok());
  Valuation v = MakeBijectiveBaseValuation(db);
  EXPECT_NE(v.base_map().at(n.null_id()), "@null_0");
}

}  // namespace
}  // namespace mudb::model
