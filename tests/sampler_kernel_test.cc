// The fused hit-and-run kernel against a straightforward reference
// implementation (the pre-fusion Chord + Contains + AddScaled step), across
// randomized polytope/ball bodies and dimensions, plus an allocation-count
// smoke proving the step loop is allocation-free (run under ASan in CI).

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/convex/batch_sampler.h"
#include "src/convex/body.h"
#include "src/convex/sampler.h"
#include "src/geom/geometry.h"
#include "src/util/rng.h"

// Global allocation counter for the no-allocation smoke. Routed through
// malloc/free so sanitizer interposition keeps working underneath; noinline
// keeps gcc from pairing an inlined free() with a visible new-expression
// and raising -Wmismatched-new-delete.
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace mudb::convex {
namespace {

// The straightforward chord oracle the fused kernel must reproduce: full
// A·x and A·d dot products per call, quadratic per ball.
std::optional<std::pair<double, double>> ReferenceChord(const ConvexBody& body,
                                                        const geom::Vec& x,
                                                        const geom::Vec& d) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (const auto& [a, b] : body.halfspaces()) {
    double ad = geom::Dot(a, d);
    double ax = geom::Dot(a, x);
    if (std::fabs(ad) < 1e-14) {
      if (ax > b + 1e-9) return std::nullopt;
      continue;
    }
    double t = (b - ax) / ad;
    if (ad > 0) {
      hi = std::min(hi, t);
    } else {
      lo = std::max(lo, t);
    }
  }
  for (const BallConstraint& ball : body.balls()) {
    geom::Vec xc(body.dim());
    for (int i = 0; i < body.dim(); ++i) xc[i] = x[i] - ball.center[i];
    double bq = geom::Dot(xc, d);
    double cq = geom::Dot(xc, xc) - ball.radius * ball.radius;
    double disc = bq * bq - cq;
    if (disc <= 0) return std::nullopt;
    double sq = std::sqrt(disc);
    lo = std::max(lo, -bq - sq);
    hi = std::min(hi, -bq + sq);
  }
  if (!(lo < hi)) return std::nullopt;
  if (!std::isfinite(lo) || !std::isfinite(hi)) return std::nullopt;
  return std::make_pair(lo, hi);
}

// One reference hit-and-run step (the pre-fusion implementation), consuming
// the rng exactly like HitAndRunSampler::Step.
geom::Vec ReferenceStep(const ConvexBody& body, const geom::Vec& x,
                        util::Rng& rng) {
  geom::Vec d = geom::SampleUnitSphere(body.dim(), rng);
  auto chord = ReferenceChord(body, x, d);
  if (!chord) return x;
  double t = rng.Uniform(chord->first, chord->second);
  geom::Vec next = geom::AddScaled(x, t, d);
  if (!body.Contains(next)) {
    next = geom::AddScaled(next, 0.5 * (chord->first + chord->second) - t, d);
  }
  return next;
}

// A random bounded body with a known interior point: `inside` is interior by
// construction (positive margin against every constraint).
struct RandomBody {
  ConvexBody body;
  geom::Vec inside;
};

RandomBody MakeRandomBody(int dim, util::Rng& rng) {
  RandomBody out{ConvexBody(dim), geom::Vec(dim)};
  for (int j = 0; j < dim; ++j) out.inside[j] = rng.Uniform(-0.3, 0.3);
  int num_halfspaces = static_cast<int>(rng.UniformInt(0, 2 * dim + 2));
  for (int i = 0; i < num_halfspaces; ++i) {
    geom::Vec a(dim);
    for (int j = 0; j < dim; ++j) a[j] = rng.Uniform(-1, 1);
    double margin = rng.Uniform(0.05, 1.0);
    out.body.AddHalfspace(a, geom::Dot(a, out.inside) + margin);
  }
  // At least one ball so every chord is bounded.
  int num_balls = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < num_balls; ++i) {
    geom::Vec c(dim);
    for (int j = 0; j < dim; ++j) c[j] = rng.Uniform(-0.4, 0.4);
    geom::Vec diff = geom::AddScaled(out.inside, -1.0, c);
    double radius = geom::Norm(diff) + rng.Uniform(0.3, 1.5);
    out.body.AddBall(std::move(c), radius);
  }
  return out;
}

TEST(FusedKernelTest, ChordMatchesReferenceOnRandomBodies) {
  util::Rng rng(101);
  for (int dim = 1; dim <= 6; ++dim) {
    for (int rep = 0; rep < 200; ++rep) {
      RandomBody rb = MakeRandomBody(dim, rng);
      geom::Vec d = geom::SampleUnitSphere(dim, rng);
      auto fast = rb.body.Chord(rb.inside, d);
      auto ref = ReferenceChord(rb.body, rb.inside, d);
      ASSERT_EQ(fast.has_value(), ref.has_value())
          << "dim " << dim << " rep " << rep;
      if (!fast) continue;
      EXPECT_NEAR(fast->first, ref->first, 1e-9);
      EXPECT_NEAR(fast->second, ref->second, 1e-9);
    }
  }
}

TEST(FusedKernelTest, StepMatchesReferenceStepwise) {
  // Per-step comparison from the same point with cloned rngs: the fused
  // incremental step must land where the two-pass reference lands, up to
  // the bounded cache drift (refreshed on a fixed schedule).
  util::Rng body_rng(202);
  for (int dim : {1, 2, 3, 5}) {
    RandomBody rb = MakeRandomBody(dim, body_rng);
    HitAndRunSampler sampler(&rb.body, rb.inside);
    util::Rng rng(303);
    for (int step = 0; step < 400; ++step) {
      geom::Vec from = sampler.current();
      util::Rng ref_rng = rng;  // clone: identical draws for both paths
      geom::Vec expected = ReferenceStep(rb.body, from, ref_rng);
      sampler.Step(rng);
      for (int j = 0; j < dim; ++j) {
        ASSERT_NEAR(sampler.current()[j], expected[j], 1e-9)
            << "dim " << dim << " step " << step;
      }
    }
  }
}

TEST(FusedKernelTest, LongWalkStaysInsideAcrossCacheRefreshes) {
  // 5000 steps crosses several refresh intervals; containment throughout
  // bounds the incremental drift below the guard tolerances.
  util::Rng body_rng(404);
  RandomBody rb = MakeRandomBody(4, body_rng);
  HitAndRunSampler sampler(&rb.body, rb.inside);
  util::Rng rng(505);
  for (int step = 0; step < 5000; ++step) {
    sampler.Step(rng);
    ASSERT_TRUE(rb.body.Contains(sampler.current())) << "step " << step;
  }
}

TEST(FusedKernelTest, SetCurrentResyncsCaches) {
  util::Rng body_rng(606);
  RandomBody rb = MakeRandomBody(3, body_rng);
  HitAndRunSampler sampler(&rb.body, rb.inside);
  util::Rng rng(707);
  sampler.Walk(50, rng);
  // Teleport back to the seed point; the next steps must match a fresh
  // sampler bit for bit (caches resynced, no stale state).
  sampler.set_current(rb.inside);
  HitAndRunSampler fresh(&rb.body, rb.inside);
  util::Rng rng_a(808);
  util::Rng rng_b(808);
  sampler.Walk(50, rng_a);
  fresh.Walk(50, rng_b);
  EXPECT_EQ(sampler.current(), fresh.current());
}

TEST(FusedKernelTest, BatchedLanesEquivalentToScalarAtEveryK) {
  // Reference-equivalence for the K-chain lockstep kernel: at every
  // dense-specialized K,
  // every lane must track a scalar HitAndRunSampler on the same (body,
  // start, substream) exactly, across the 1024-step refresh boundary (1500
  // steps total, compared mid-walk so a drifting cache cannot re-converge).
  util::Rng body_rng(321);
  for (int dim : {2, 4}) {
    RandomBody rb = MakeRandomBody(dim, body_rng);
    for (int lanes : {1, 2, 4, 8, 16}) {
      BatchedHitAndRunSampler batched(&rb.body, lanes);
      std::vector<util::Rng> lane_rngs;
      util::Rng base(1000 + dim);
      for (int l = 0; l < lanes; ++l) {
        lane_rngs.push_back(base.Split(l));
        batched.ResetLane(l, rb.inside);
      }
      geom::Vec got;
      for (int block = 0; block < 3; ++block) {
        batched.WalkAll(500, lane_rngs.data());
        for (int l = 0; l < lanes; ++l) {
          util::Rng scalar_rng = base.Split(l);
          HitAndRunSampler scalar(&rb.body, rb.inside);
          scalar.Walk(500 * (block + 1), scalar_rng);
          batched.GetCurrent(l, &got);
          ASSERT_EQ(got, scalar.current())
              << "dim " << dim << " K " << lanes << " lane " << l
              << " after " << 500 * (block + 1) << " steps";
        }
      }
    }
  }
}

TEST(FusedKernelTest, BatchedWalkLoopIsAllocationFree) {
  // Same contract as the scalar loop: after warm-up, lockstep walking must
  // not allocate, and the count must not scale with steps.
  util::Rng body_rng(909);
  RandomBody rb = MakeRandomBody(5, body_rng);
  const int lanes = 8;
  BatchedHitAndRunSampler batched(&rb.body, lanes);
  std::vector<util::Rng> lane_rngs;
  for (int l = 0; l < lanes; ++l) {
    lane_rngs.push_back(util::Rng(111 + l));
    batched.ResetLane(l, rb.inside);
  }
  batched.WalkAll(100, lane_rngs.data());  // warm-up
  auto count_allocs = [&](int steps) {
    int64_t before = g_allocations.load(std::memory_order_relaxed);
    batched.WalkAll(steps, lane_rngs.data());
    return g_allocations.load(std::memory_order_relaxed) - before;
  };
  int64_t allocs_small = count_allocs(500);
  int64_t allocs_large = count_allocs(5000);
  EXPECT_EQ(allocs_small, allocs_large);
  EXPECT_EQ(allocs_small, 0);
}

TEST(FusedKernelTest, StepLoopIsAllocationFree) {
  util::Rng body_rng(909);
  RandomBody rb = MakeRandomBody(5, body_rng);
  HitAndRunSampler sampler(&rb.body, rb.inside);
  util::Rng rng(111);
  sampler.Walk(100, rng);  // warm-up: scratch sized, caches built
  auto count_allocs = [&](int steps) {
    int64_t before = g_allocations.load(std::memory_order_relaxed);
    sampler.Walk(steps, rng);
    return g_allocations.load(std::memory_order_relaxed) - before;
  };
  int64_t allocs_small = count_allocs(500);
  int64_t allocs_large = count_allocs(5000);
  // Allocation count must not scale with the step count — and is in fact 0.
  EXPECT_EQ(allocs_small, allocs_large);
  EXPECT_EQ(allocs_small, 0);
}

}  // namespace
}  // namespace mudb::convex
