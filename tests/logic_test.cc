// Tests for src/logic: terms, formulae, typechecking, fragments, queries.

#include <gtest/gtest.h>

#include "src/logic/formula.h"
#include "src/logic/term.h"
#include "src/model/database.h"

namespace mudb::logic {
namespace {

using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Value;

Database SalesDb() {
  Database db;
  MUDB_CHECK(db.CreateRelation(RelationSchema("R", {{"a", Sort::kBase},
                                                    {"x", Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.CreateRelation(RelationSchema("S", {{"x", Sort::kNum},
                                                    {"y", Sort::kNum}}))
                 .ok());
  return db;
}

TEST(TermTest, BuildAndPrint) {
  Term t = Term::Add(Term::Mul(Term::Var("x"), Term::Const(2)),
                     Term::Neg(Term::Var("y")));
  EXPECT_EQ(t.kind(), Term::Kind::kAdd);
  std::set<std::string> vars;
  t.CollectVariables(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"x", "y"}));
  EXPECT_EQ(t.ToString(), "((x * 2) + -(y))");
}

TEST(TermTest, OperatorSugar) {
  Term t = Term::Var("x") + Term::Var("y") * Term::Const(3) - Term::Var("z");
  std::set<std::string> vars;
  t.CollectVariables(&vars);
  EXPECT_EQ(vars.size(), 3u);
}

TEST(FormulaTest, FreeVariablesRespectQuantifiers) {
  // ∃y:num. R(a, y) && y < x   — free: a (base), x (num).
  Formula f = Formula::Exists(
      TypedVar{"y", Sort::kNum},
      Formula::And([] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("R", {AtomArg::BaseVar("a"),
                                       AtomArg::NumVar("y")}));
        v.push_back(Formula::Cmp(Term::Var("y"), CmpOp::kLt, Term::Var("x")));
        return v;
      }()));
  auto free = f.FreeVariables();
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free.at("a"), Sort::kBase);
  EXPECT_EQ(free.at("x"), Sort::kNum);
}

TEST(FormulaTest, ShadowingInNestedQuantifiers) {
  // ∃x. (R(a, x) && ∃x. S(x, x)) — all x bound.
  Formula inner = Formula::Exists(
      TypedVar{"x", Sort::kNum},
      Formula::Rel("S", {AtomArg::NumVar("x"), AtomArg::NumVar("x")}));
  Formula f = Formula::Exists(
      TypedVar{"x", Sort::kNum},
      Formula::And([&] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("R", {AtomArg::BaseVar("a"),
                                       AtomArg::NumVar("x")}));
        v.push_back(inner);
        return v;
      }()));
  auto free = f.FreeVariables();
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free.begin()->first, "a");
}

TEST(FormulaTest, TypecheckAcceptsWellFormed) {
  Database db = SalesDb();
  Formula f = Formula::Exists(
      TypedVar{"y", Sort::kNum},
      Formula::Rel("S", {AtomArg::NumVar("y"), AtomArg::NumConst(1.0)}));
  EXPECT_TRUE(f.Typecheck(db).ok());
}

TEST(FormulaTest, TypecheckRejectsUnknownRelation) {
  Database db = SalesDb();
  Formula f = Formula::Rel("Nope", {AtomArg::NumVar("y")});
  EXPECT_FALSE(f.Typecheck(db).ok());
}

TEST(FormulaTest, TypecheckRejectsArityMismatch) {
  Database db = SalesDb();
  Formula f = Formula::Rel("S", {AtomArg::NumVar("y")});
  EXPECT_FALSE(f.Typecheck(db).ok());
}

TEST(FormulaTest, TypecheckRejectsSortMismatch) {
  Database db = SalesDb();
  // First column of R is base, passing a numeric term.
  Formula f = Formula::Rel("R", {AtomArg::NumVar("y"), AtomArg::NumVar("z")});
  EXPECT_FALSE(f.Typecheck(db).ok());
}

TEST(FormulaTest, TypecheckRejectsVariableUsedWithTwoSorts) {
  Database db = SalesDb();
  // v used as base in R and numeric in a comparison.
  Formula f = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Rel("R", {AtomArg::BaseVar("v"),
                                   AtomArg::NumVar("x")}));
    v.push_back(Formula::Cmp(Term::Var("v"), CmpOp::kLt, Term::Const(1)));
    return v;
  }());
  EXPECT_FALSE(f.Typecheck(db).ok());
}

TEST(FormulaTest, TypecheckAllowsShadowedSortChange) {
  Database db = SalesDb();
  // x is numeric outside, base inside a quantifier that shadows it.
  Formula f = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Cmp(Term::Var("x"), CmpOp::kLt, Term::Const(0)));
    v.push_back(Formula::Exists(
        TypedVar{"x", Sort::kBase},
        Formula::Rel("R", {AtomArg::BaseVar("x"), AtomArg::NumConst(0)})));
    return v;
  }());
  EXPECT_TRUE(f.Typecheck(db).ok());
}

TEST(FormulaTest, ConjunctiveDetection) {
  Formula cq = Formula::Exists(
      TypedVar{"y", Sort::kNum},
      Formula::And([] {
        std::vector<Formula> v;
        v.push_back(Formula::Rel("S", {AtomArg::NumVar("y"),
                                       AtomArg::NumVar("z")}));
        v.push_back(Formula::Cmp(Term::Var("y"), CmpOp::kLt, Term::Var("z")));
        return v;
      }()));
  EXPECT_TRUE(cq.IsConjunctive());
  EXPECT_FALSE(Formula::Not(cq).IsConjunctive());
  EXPECT_FALSE(Formula::Forall(TypedVar{"y", Sort::kNum}, cq).IsConjunctive());
  std::vector<Formula> two{cq, cq};
  EXPECT_FALSE(Formula::Or(two).IsConjunctive());
}

TEST(FormulaTest, FragmentNames) {
  Formula order = Formula::Cmp(Term::Var("x"), CmpOp::kLt, Term::Var("y"));
  EXPECT_EQ(order.FragmentName(), "CQ(<)");
  Formula linear =
      Formula::Cmp(Term::Var("x") + Term::Var("y"), CmpOp::kLt,
                   Term::Const(1));
  EXPECT_EQ(linear.FragmentName(), "CQ(+,<)");
  Formula poly = Formula::Cmp(Term::Var("x") * Term::Var("y"), CmpOp::kLt,
                              Term::Const(1));
  EXPECT_EQ(poly.FragmentName(), "CQ(+,\xC2\xB7,<)");
  EXPECT_EQ(Formula::Not(order).FragmentName(), "FO(<)");
}

TEST(FormulaTest, ImpliesDesugarsToOrNot) {
  Formula a = Formula::Cmp(Term::Var("x"), CmpOp::kLt, Term::Const(0));
  Formula b = Formula::Cmp(Term::Var("y"), CmpOp::kGt, Term::Const(0));
  Formula f = Formula::Implies(a, b);
  EXPECT_EQ(f.kind(), Formula::Kind::kOr);
  EXPECT_EQ(f.children()[0].kind(), Formula::Kind::kNot);
}

TEST(FormulaTest, ExistsManyOrdering) {
  Formula body = Formula::Cmp(Term::Var("a"), CmpOp::kLt, Term::Var("b"));
  Formula f = Formula::ExistsMany(
      {TypedVar{"a", Sort::kNum}, TypedVar{"b", Sort::kNum}}, body);
  ASSERT_EQ(f.kind(), Formula::Kind::kExists);
  EXPECT_EQ(f.quantified_var().name, "a");
  EXPECT_EQ(f.children()[0].quantified_var().name, "b");
  EXPECT_TRUE(f.FreeVariables().empty());
}

TEST(QueryTest, MakeCollectsOutputsInNameOrder) {
  Database db = SalesDb();
  Formula f = Formula::Rel("S", {AtomArg::NumVar("y"), AtomArg::NumVar("x")});
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->output.size(), 2u);
  EXPECT_EQ(q->output[0].name, "x");
  EXPECT_EQ(q->output[1].name, "y");
  EXPECT_FALSE(q->IsBoolean());
}

TEST(QueryTest, MakeWithOutputValidates) {
  Database db = SalesDb();
  Formula f = Formula::Rel("S", {AtomArg::NumVar("y"), AtomArg::NumVar("x")});
  auto ok = Query::MakeWithOutput(
      f, {TypedVar{"y", Sort::kNum}, TypedVar{"x", Sort::kNum}}, db);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->output[0].name, "y");
  // Missing variable.
  EXPECT_FALSE(
      Query::MakeWithOutput(f, {TypedVar{"y", Sort::kNum}}, db).ok());
  // Not a free variable.
  EXPECT_FALSE(Query::MakeWithOutput(
                   f, {TypedVar{"y", Sort::kNum}, TypedVar{"z", Sort::kNum}},
                   db)
                   .ok());
  // Wrong sort.
  EXPECT_FALSE(Query::MakeWithOutput(
                   f, {TypedVar{"y", Sort::kBase}, TypedVar{"x", Sort::kNum}},
                   db)
                   .ok());
}

TEST(QueryTest, BooleanQueryToString) {
  Database db = SalesDb();
  Formula f = Formula::ExistsMany(
      {TypedVar{"x", Sort::kNum}, TypedVar{"y", Sort::kNum}},
      Formula::Rel("S", {AtomArg::NumVar("x"), AtomArg::NumVar("y")}));
  auto q = Query::Make(f, db);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsBoolean());
  EXPECT_EQ(q->ToString().substr(0, 4), "q() ");
}

}  // namespace
}  // namespace mudb::logic
