// Tests for the Z3-backed exactness oracle and the μ=0/μ=1 shortcuts.

#include <gtest/gtest.h>

#include "src/measure/measure.h"
#include "src/measure/oracle.h"

namespace mudb::measure {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }

#if MUDB_HAVE_Z3

Polynomial C(double c) { return Polynomial::Constant(c); }

TEST(OracleTest, IsAvailable) { EXPECT_TRUE(OracleAvailable()); }

TEST(OracleTest, SatisfiableLinear) {
  auto sat = OracleIsSatisfiable(RealFormula::Cmp(Z(0) - C(5), CmpOp::kLt));
  ASSERT_TRUE(sat.ok()) << sat.status();
  EXPECT_TRUE(*sat);
}

TEST(OracleTest, UnsatisfiableConjunction) {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  auto sat = OracleIsSatisfiable(RealFormula::And(parts));
  ASSERT_TRUE(sat.ok()) << sat.status();
  EXPECT_FALSE(*sat);
}

TEST(OracleTest, NonlinearUnsat) {
  // z0² < 0 has no real solution.
  auto sat = OracleIsSatisfiable(RealFormula::Cmp(Z(0) * Z(0), CmpOp::kLt));
  ASSERT_TRUE(sat.ok()) << sat.status();
  EXPECT_FALSE(*sat);
}

TEST(OracleTest, ValidityOfSquareNonNegative) {
  // z0² >= 0 is valid over R.
  auto valid = OracleIsValid(RealFormula::Cmp(Z(0) * Z(0), CmpOp::kGe));
  ASSERT_TRUE(valid.ok()) << valid.status();
  EXPECT_TRUE(*valid);
  // z0 >= 0 is not valid.
  auto not_valid = OracleIsValid(RealFormula::Cmp(Z(0), CmpOp::kGe));
  ASSERT_TRUE(not_valid.ok());
  EXPECT_FALSE(*not_valid);
}

TEST(OracleTest, ShortcutsFeedComputeNu) {
  MeasureOptions opts;
  opts.use_z3_shortcuts = true;
  // Unsatisfiable: μ = 0 exactly, no sampling.
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  auto zero = ComputeNu(RealFormula::And(parts), opts);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->is_exact);
  EXPECT_DOUBLE_EQ(zero->value, 0.0);
  // Valid: μ = 1 exactly.
  auto one = ComputeNu(RealFormula::Cmp(Z(0) * Z(0) + C(1), CmpOp::kGt), opts);
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(one->is_exact);
  EXPECT_DOUBLE_EQ(one->value, 1.0);
}

TEST(OracleTest, CertainAndPossibleAnswers) {
  model::Database db;
  ASSERT_TRUE(db.CreateRelation(model::RelationSchema(
                   "R", {{"x", model::Sort::kNum}}))
                  .ok());
  model::Value top = db.MakeNumNull();
  ASSERT_TRUE(db.Insert("R", {top}).ok());
  // q = ∃x R(x) && x·x >= 0 — certain (true under every valuation).
  logic::Formula certain = logic::Formula::Exists(
      logic::TypedVar{"x", model::Sort::kNum},
      logic::Formula::And([] {
        std::vector<logic::Formula> v;
        v.push_back(logic::Formula::Rel("R", {logic::AtomArg::NumVar("x")}));
        v.push_back(logic::Formula::Cmp(
            logic::Term::Var("x") * logic::Term::Var("x"), CmpOp::kGe,
            logic::Term::Const(0)));
        return v;
      }()));
  auto q1 = logic::Query::Make(certain, db);
  ASSERT_TRUE(q1.ok());
  auto is_certain = IsCertainAnswer(*q1, db, {});
  ASSERT_TRUE(is_certain.ok()) << is_certain.status();
  EXPECT_TRUE(*is_certain);

  // q = ∃x R(x) && x > 0 — possible but not certain.
  logic::Formula positive = logic::Formula::Exists(
      logic::TypedVar{"x", model::Sort::kNum},
      logic::Formula::And([] {
        std::vector<logic::Formula> v;
        v.push_back(logic::Formula::Rel("R", {logic::AtomArg::NumVar("x")}));
        v.push_back(logic::Formula::Cmp(logic::Term::Var("x"), CmpOp::kGt,
                                        logic::Term::Const(0)));
        return v;
      }()));
  auto q2 = logic::Query::Make(positive, db);
  ASSERT_TRUE(q2.ok());
  auto is_certain2 = IsCertainAnswer(*q2, db, {});
  ASSERT_TRUE(is_certain2.ok());
  EXPECT_FALSE(*is_certain2);
  auto is_possible = IsPossibleAnswer(*q2, db, {});
  ASSERT_TRUE(is_possible.ok());
  EXPECT_TRUE(*is_possible);
}

#else  // !MUDB_HAVE_Z3

TEST(OracleTest, UnavailableReturnsUnimplemented) {
  EXPECT_FALSE(OracleAvailable());
  auto sat = OracleIsSatisfiable(RealFormula::Cmp(Z(0), CmpOp::kLt));
  EXPECT_FALSE(sat.ok());
  EXPECT_EQ(sat.status().code(), util::StatusCode::kUnimplemented);
}

#endif  // MUDB_HAVE_Z3

}  // namespace
}  // namespace mudb::measure
