// Chaos and concurrency tests for ShardedMeasureService: the determinism
// contract under faults (every successful estimate is bit-identical to the
// unsharded service across fault schedules × router thread counts × shard
// counts), terminal-failure classification under the retryable/permanent
// taxonomy, deadline expiry (kDeadlineExceeded, never a hang), content-pure
// routing, and per-shard memo hygiene (a mid-batch fault never poisons a
// sibling's memoization; errors are never memoized).
//
// This suite runs under TSan in CI; the chaos matrix shrinks its seed count
// there to keep the run bounded while every matrix cell stays covered.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/constraints/real_formula.h"
#include "src/measure/measure.h"
#include "src/poly/polynomial.h"
#include "src/service/fault_injector.h"
#include "src/service/measure_service.h"
#include "src/service/request_key.h"
#include "src/service/sharded_service.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MUDB_TSAN 1
#endif
#endif
#if !defined(MUDB_TSAN) && defined(__SANITIZE_THREAD__)
#define MUDB_TSAN 1
#endif

namespace mudb::service {
namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using measure::MeasureOptions;
using measure::MeasureResult;
using measure::Method;
using poly::Polynomial;

Polynomial Z(int i) { return Polynomial::Variable(i); }
Polynomial C(double c) { return Polynomial::Constant(c); }

// 3-D positive orthant: cheap single-body FPRAS.
RealFormula Orthant3D() {
  std::vector<RealFormula> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(RealFormula::Cmp(-Z(i), CmpOp::kLt));
  }
  return RealFormula::And(std::move(parts));
}

// Tilted halfspace: one body, distinct content per (c0, c1, c2).
RealFormula Halfspace3D(double c0, double c1, double c2) {
  return RealFormula::Cmp(C(c0) * Z(0) + C(c1) * Z(1) + C(c2) * Z(2) - C(1),
                          CmpOp::kLt);
}

// 2-D orthant: exact path under kAuto, no sampling at all.
RealFormula Orthant2D() {
  std::vector<RealFormula> parts;
  parts.push_back(RealFormula::Cmp(-Z(0), CmpOp::kLt));
  parts.push_back(RealFormula::Cmp(-Z(1), CmpOp::kLt));
  return RealFormula::And(std::move(parts));
}

MeasureOptions Opts(Method method, double epsilon, uint64_t seed) {
  MeasureOptions o;
  o.method = method;
  o.epsilon = epsilon;
  o.seed = seed;
  return o;
}

// The chaos battery: cheap but heterogeneous (sampling + exact paths,
// repeated content, distinct seeds) so requests spread across shards and a
// repeated entry exercises the shard memo.
std::vector<MeasureRequest> ChaosBattery() {
  std::vector<MeasureRequest> reqs;
  reqs.push_back(MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras, 0.5, 31)));
  reqs.push_back(
      MeasureRequest::Nu(Halfspace3D(1, 1, 1), Opts(Method::kFpras, 0.5, 32)));
  reqs.push_back(
      MeasureRequest::Nu(Halfspace3D(2, 1, 1), Opts(Method::kFpras, 0.5, 33)));
  reqs.push_back(MeasureRequest::Nu(Orthant2D(), Opts(Method::kAuto, 0.1, 34)));
  // Same content as request 0: must land on the same shard and may memoize.
  reqs.push_back(MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras, 0.5, 31)));
  // Same formula, different seed: distinct content, never conflated.
  reqs.push_back(MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras, 0.5, 35)));
  return reqs;
}

std::vector<MeasureResult> UnshardedBaseline(
    const std::vector<MeasureRequest>& reqs) {
  std::vector<MeasureResult> out;
  for (const MeasureRequest& req : reqs) {
    auto r = measure::ComputeNu(*req.formula, req.options);
    EXPECT_TRUE(r.ok()) << r.status();
    out.push_back(*r);
  }
  return out;
}

void ExpectBitIdentical(const MeasureResult& got, const MeasureResult& want,
                        const std::string& label) {
  EXPECT_EQ(got.value, want.value) << label;
  EXPECT_EQ(got.ci_lo, want.ci_lo) << label;
  EXPECT_EQ(got.ci_hi, want.ci_hi) << label;
  EXPECT_EQ(got.method_used, want.method_used) << label;
  EXPECT_EQ(got.is_exact, want.is_exact) << label;
}

// ---- Routing ---------------------------------------------------------------

TEST(ShardedServiceTest, RoutingIsAPureFunctionOfRequestContent) {
  ShardedServiceOptions opts;
  opts.num_shards = 4;
  ShardedMeasureService a(opts);
  ShardedMeasureService b(opts);
  std::vector<MeasureRequest> reqs = ChaosBattery();
  bool spread = false;
  int first = -1;
  for (const MeasureRequest& req : reqs) {
    convex::CanonicalBodyKey signature =
        RequestSignature(*req.formula, req.options);
    int shard = a.ShardFor(signature);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    // Routing depends on the service only through num_shards.
    EXPECT_EQ(shard, b.ShardFor(signature));
    if (first < 0) first = shard;
    spread = spread || shard != first;
  }
  // Identical content routes identically (requests 0 and 4 share content).
  EXPECT_EQ(a.ShardFor(RequestSignature(*reqs[0].formula, reqs[0].options)),
            a.ShardFor(RequestSignature(*reqs[4].formula, reqs[4].options)));
  // The battery reaches more than one shard, so the matrix below actually
  // exercises cross-shard traffic.
  EXPECT_TRUE(spread);
}

// ---- The chaos matrix ------------------------------------------------------

// Fault schedules × router threads × shard counts, with degradation on:
// every request must succeed, and every result must be bit-identical to the
// unsharded baseline no matter which shard served it, how many retries it
// took, or whether the router degraded to a local recompute.
TEST(ShardedServiceTest, ChaosMatrixPreservesBitIdentityOfSuccesses) {
#ifdef MUDB_TSAN
  constexpr uint64_t kSchedules = 5;
#else
  constexpr uint64_t kSchedules = 20;
#endif
  std::vector<MeasureRequest> reqs = ChaosBattery();
  std::vector<MeasureResult> baseline = UnshardedBaseline(reqs);

  for (int threads : {1, 2, 8}) {
    for (int shards : {1, 2, 4}) {
      for (uint64_t schedule = 1; schedule <= kSchedules; ++schedule) {
        ShardedServiceOptions opts;
        opts.num_shards = shards;
        opts.router_threads = threads;
        opts.retry.max_attempts = 3;
        opts.retry.backoff.initial_ms = 0.01;
        opts.retry.backoff.max_ms = 0.05;
        opts.degrade = DegradeMode::kLocalRecompute;
        FaultInjectorOptions faults;
        faults.seed = schedule;
        faults.unavailable_rate = 0.2;
        faults.latency_rate = 0.1;
        faults.latency_spike_ms = 0.01;
        opts.faults = faults;

        ShardedMeasureService service(opts);
        auto outcome = service.RunBatch(ChaosBattery());
        ASSERT_EQ(outcome.results.size(), baseline.size());
        const std::string cell = "threads=" + std::to_string(threads) +
                                 " shards=" + std::to_string(shards) +
                                 " schedule=" + std::to_string(schedule);
        for (size_t i = 0; i < baseline.size(); ++i) {
          ASSERT_TRUE(outcome.results[i].ok())
              << cell << " request " << i << ": "
              << outcome.results[i].status();
          ExpectBitIdentical(outcome.results[i]->result, baseline[i],
                             cell + " request " + std::to_string(i));
        }
        EXPECT_EQ(outcome.stats.requests,
                  static_cast<int64_t>(baseline.size()));
        EXPECT_EQ(outcome.stats.failures, 0) << cell;
        // Every request is accounted to exactly one shard.
        int64_t routed = 0;
        for (int64_t n : outcome.stats.per_shard_requests) routed += n;
        EXPECT_EQ(routed, outcome.stats.requests) << cell;
      }
    }
  }
}

// With degradation off and an aggressive schedule, requests may fail — and
// every failure must classify correctly: transient kUnavailable, retryable,
// with the attempt budget recorded. Successes stay bit-identical.
TEST(ShardedServiceTest, ChaosFailuresClassifyAsRetryableTransients) {
#ifdef MUDB_TSAN
  constexpr uint64_t kSchedules = 5;
#else
  constexpr uint64_t kSchedules = 20;
#endif
  std::vector<MeasureRequest> reqs = ChaosBattery();
  std::vector<MeasureResult> baseline = UnshardedBaseline(reqs);

  int64_t failures_seen = 0;
  for (uint64_t schedule = 1; schedule <= kSchedules; ++schedule) {
    ShardedServiceOptions opts;
    opts.num_shards = 2;
    opts.router_threads = 4;
    opts.retry.max_attempts = 2;
    opts.retry.backoff.initial_ms = 0.01;
    opts.retry.backoff.max_ms = 0.05;
    opts.degrade = DegradeMode::kNone;
    FaultInjectorOptions faults;
    faults.seed = schedule;
    faults.unavailable_rate = 0.6;
    opts.faults = faults;

    ShardedMeasureService service(opts);
    auto outcome = service.RunBatch(ChaosBattery());
    for (size_t i = 0; i < outcome.results.size(); ++i) {
      if (outcome.results[i].ok()) {
        ExpectBitIdentical(outcome.results[i]->result, baseline[i],
                           "schedule " + std::to_string(schedule) +
                               " request " + std::to_string(i));
        continue;
      }
      ++failures_seen;
      const util::Status& status = outcome.results[i].status();
      EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
      EXPECT_TRUE(status.IsRetryable());
      EXPECT_EQ(status.context().attempts, 2);
      EXPECT_GE(status.context().shard_id, 0);
      EXPECT_NE(status.message().find("req:"), std::string::npos);
    }
  }
  // At 60% per-call fault rate and 2 attempts, P(fail) = 0.36 per request:
  // the matrix cannot plausibly complete without terminal failures.
  EXPECT_GT(failures_seen, 0);
}

// ---- Deadlines -------------------------------------------------------------

TEST(ShardedServiceTest, ExpiredDeadlineReturnsDeadlineExceededNotAHang) {
  ShardedMeasureService service(ShardedServiceOptions{});
  auto ticket =
      service.Submit(MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras,
                                                          0.5, 41)),
                     util::Deadline::After(0));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.status().context().attempts, 0);
  EXPECT_EQ(service.stats().deadline_expired, 1);
}

TEST(ShardedServiceTest, DeadlineExpiryDuringRetriesCompletesWait) {
  // A permanently down shard with an effectively unbounded retry budget:
  // only the deadline can end the request, and Wait must still return.
  ShardedServiceOptions opts;
  opts.num_shards = 1;
  opts.retry.max_attempts = 1000000;
  opts.retry.backoff.initial_ms = 1.0;
  opts.retry.backoff.max_ms = 2.0;
  opts.degrade = DegradeMode::kLocalRecompute;  // unreachable past expiry
  opts.faults = FaultInjectorOptions{};
  ShardedMeasureService service(opts);
  service.fault_injector()->SetDown(0, true);

  auto ticket =
      service.Submit(MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras,
                                                          0.5, 42)),
                     util::Deadline::After(25.0));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_GT(response.status().context().attempts, 0);
  EXPECT_EQ(service.stats().deadline_expired, 1);
}

// ---- Memo hygiene under faults ---------------------------------------------

TEST(ShardedServiceTest, MidBatchFaultDoesNotPoisonSiblingMemoization) {
  std::vector<MeasureRequest> reqs = ChaosBattery();
  std::vector<MeasureResult> baseline = UnshardedBaseline(reqs);

  ShardedServiceOptions opts;
  opts.num_shards = 2;
  opts.retry.max_attempts = 3;
  opts.retry.backoff.initial_ms = 0.01;
  opts.retry.backoff.max_ms = 0.05;
  opts.faults = FaultInjectorOptions{};  // zero rates: targeted faults only
  ShardedMeasureService service(opts);

  // Two transient failures mid-batch on the busier shard: the affected
  // requests retry and land; every sibling is untouched.
  std::vector<int> per_shard(2, 0);
  for (const MeasureRequest& req : reqs) {
    ++per_shard[static_cast<size_t>(
        service.ShardFor(RequestSignature(*req.formula, req.options)))];
  }
  const int target = per_shard[0] >= per_shard[1] ? 0 : 1;
  ASSERT_GE(per_shard[static_cast<size_t>(target)], 2);
  service.fault_injector()->FailNext(target, 2);
  auto first = service.RunBatch(ChaosBattery());
  for (size_t i = 0; i < first.results.size(); ++i) {
    ASSERT_TRUE(first.results[i].ok()) << first.results[i].status();
    ExpectBitIdentical(first.results[i]->result, baseline[i],
                       "first batch request " + std::to_string(i));
  }
  EXPECT_EQ(first.stats.transient_failures, 2);
  EXPECT_EQ(first.stats.failures, 0);

  // The identical batch again, fault-free: every request was delivered and
  // memoized on its shard during the faulty batch, so the rerun is pure
  // replay — and still bit-identical.
  int64_t hits_before = 0;
  for (int s = 0; s < service.num_shards(); ++s) {
    hits_before += service.shard(s).lifetime_stats().request_cache_hits;
  }
  auto second = service.RunBatch(ChaosBattery());
  for (size_t i = 0; i < second.results.size(); ++i) {
    ASSERT_TRUE(second.results[i].ok()) << second.results[i].status();
    ExpectBitIdentical(second.results[i]->result, baseline[i],
                       "second batch request " + std::to_string(i));
  }
  int64_t hits_after = 0;
  for (int s = 0; s < service.num_shards(); ++s) {
    hits_after += service.shard(s).lifetime_stats().request_cache_hits;
  }
  EXPECT_EQ(hits_after - hits_before,
            static_cast<int64_t>(second.results.size()));
}

TEST(ShardedServiceTest, TerminalErrorsAreNeverMemoized) {
  auto baseline = measure::ComputeNu(Orthant3D(), Opts(Method::kFpras,
                                                       0.5, 43));
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ShardedServiceOptions opts;
  opts.num_shards = 1;
  opts.retry.max_attempts = 2;
  opts.retry.backoff.initial_ms = 0.01;
  opts.retry.backoff.max_ms = 0.05;
  opts.degrade = DegradeMode::kNone;
  opts.faults = FaultInjectorOptions{};
  ShardedMeasureService service(opts);

  // Exhaust the retry budget: the request fails terminally, and nothing is
  // memoized anywhere (the fault struck before the shard ever ran it).
  service.fault_injector()->FailNext(0, opts.retry.max_attempts);
  MeasureRequest failing =
      MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras, 0.5, 43));
  auto failed_ticket = service.Submit(std::move(failing));
  util::StatusOr<ShardedResponse> failed =
      ShardedMeasureService::Wait(failed_ticket);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(service.shard(0).result_cache_stats().entries, 0);

  // The identical request after recovery: a fresh, successful compute with
  // the exact unsharded bits — no poisoned cache entry to collide with.
  auto ticket = service.Submit(
      MeasureRequest::Nu(Orthant3D(), Opts(Method::kFpras, 0.5, 43)));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_TRUE(response.ok()) << response.status();
  ExpectBitIdentical(response->result, *baseline, "post-recovery");
  EXPECT_EQ(service.shard(0).result_cache_stats().entries, 1);
}

// ---- Permanent errors ------------------------------------------------------

TEST(ShardedServiceTest, DegenerateOptionsFailIdenticallyToTheDirectPath) {
  // Validation runs once at the router boundary, before any shard or fault
  // is involved: same code and byte-identical message as the direct API,
  // no retries burned, no shard attribution.
  RealFormula f = Orthant3D();
  MeasureOptions bad = Opts(Method::kFpras, 0.0, 5);
  auto direct = measure::ComputeNu(f, bad);
  ASSERT_FALSE(direct.ok());

  ShardedServiceOptions opts;
  opts.faults = FaultInjectorOptions{};
  ShardedMeasureService service(opts);
  auto ticket = service.Submit(MeasureRequest::Nu(f, bad));
  util::StatusOr<ShardedResponse> served =
      ShardedMeasureService::Wait(ticket);
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), direct.status().code());
  EXPECT_EQ(served.status().message(), direct.status().message());
  EXPECT_FALSE(served.status().IsRetryable());
  EXPECT_EQ(service.stats().attempts, 0);
}

TEST(ShardedServiceTest, MalformedRequestIsAPermanentError) {
  ShardedMeasureService service{ShardedServiceOptions{}};
  MeasureRequest empty;  // neither formula nor (query, db)
  auto ticket = service.Submit(std::move(empty));
  util::StatusOr<ShardedResponse> response =
      ShardedMeasureService::Wait(ticket);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(response.status().IsRetryable());
}

}  // namespace
}  // namespace mudb::service
