#include "src/translate/ground.h"

#include <string>
#include <unordered_map>

namespace mudb::translate {

namespace {

using constraints::CmpOp;
using constraints::RealAtom;
using constraints::RealFormula;
using logic::AtomArg;
using logic::BaseArg;
using logic::Formula;
using logic::Term;
using model::Database;
using model::NullId;
using model::Relation;
using model::Sort;
using model::Tuple;
using model::Value;
using poly::Polynomial;

/// Variable bindings during the active-domain expansion: base variables map
/// to base constants (strings; the database has no base nulls at this point),
/// numeric variables map to polynomials over z (a constant or a z-variable).
struct Env {
  std::unordered_map<std::string, std::string> base;
  std::unordered_map<std::string, Polynomial> num;
};

class Grounder {
 public:
  Grounder(const Database& db, const GroundOptions& options)
      : db_(db), options_(options) {
    for (NullId id : db.CollectNumNullIds()) {
      z_index_.emplace(id, static_cast<int>(null_order_.size()));
      null_order_.push_back(id);
    }
    // Active domains per the paper's semantics: quantifiers range over the
    // elements of the database.
    for (const auto& [name, rel] : db.relations()) {
      for (const Tuple& t : rel.tuples()) {
        for (const Value& v : t) {
          switch (v.kind()) {
            case Value::Kind::kBaseConst:
              if (seen_base_.insert(v.base_const()).second) {
                base_domain_.push_back(v.base_const());
              }
              break;
            case Value::Kind::kNumConst:
              if (seen_num_.insert(v.num_const()).second) {
                num_domain_.push_back(Polynomial::Constant(v.num_const()));
              }
              break;
            case Value::Kind::kNumNull:
              if (seen_num_null_.insert(v.null_id()).second) {
                num_domain_.push_back(NumValueToPoly(v));
              }
              break;
            case Value::Kind::kBaseNull:
              // Unreachable: the caller applies a bijective valuation first.
              break;
          }
        }
      }
    }
  }

  /// Registers a numeric null from the candidate tuple that does not occur
  /// in the database (gets a fresh z variable).
  void EnsureNumNull(NullId id) {
    if (z_index_.emplace(id, static_cast<int>(null_order_.size())).second) {
      null_order_.push_back(id);
    }
  }

  Polynomial NumValueToPoly(const Value& v) {
    if (v.kind() == Value::Kind::kNumConst) {
      return Polynomial::Constant(v.num_const());
    }
    MUDB_CHECK(v.kind() == Value::Kind::kNumNull);
    auto it = z_index_.find(v.null_id());
    MUDB_CHECK(it != z_index_.end());
    return Polynomial::Variable(it->second);
  }

  const std::vector<NullId>& null_order() const { return null_order_; }

  util::StatusOr<RealFormula> Ground(const Formula& f, Env* env) {
    switch (f.kind()) {
      case Formula::Kind::kRelAtom:
        return GroundRelAtom(f, env);
      case Formula::Kind::kBaseEq: {
        MUDB_ASSIGN_OR_RETURN(std::string lhs,
                              ResolveBase(f.base_lhs(), *env));
        MUDB_ASSIGN_OR_RETURN(std::string rhs,
                              ResolveBase(f.base_rhs(), *env));
        return lhs == rhs ? RealFormula::True() : RealFormula::False();
      }
      case Formula::Kind::kCmp: {
        MUDB_RETURN_IF_ERROR(ChargeAtoms(1));
        MUDB_ASSIGN_OR_RETURN(Polynomial lhs, TermToPoly(f.cmp_lhs(), *env));
        MUDB_ASSIGN_OR_RETURN(Polynomial rhs, TermToPoly(f.cmp_rhs(), *env));
        return RealFormula::Cmp(lhs - rhs, f.cmp_op());
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::vector<RealFormula> parts;
        parts.reserve(f.children().size());
        for (const Formula& c : f.children()) {
          MUDB_ASSIGN_OR_RETURN(RealFormula g, Ground(c, env));
          parts.push_back(std::move(g));
        }
        return f.kind() == Formula::Kind::kAnd
                   ? RealFormula::And(std::move(parts))
                   : RealFormula::Or(std::move(parts));
      }
      case Formula::Kind::kNot: {
        MUDB_ASSIGN_OR_RETURN(RealFormula g, Ground(f.children()[0], env));
        return RealFormula::Not(std::move(g));
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall:
        return GroundQuantifier(f, env);
    }
    return util::Status::Internal("unreachable formula kind");
  }

 private:
  util::Status ChargeAtoms(size_t n) {
    atoms_used_ += n;
    if (atoms_used_ > options_.max_atoms) {
      return util::Status::ResourceExhausted(
          "grounding exceeded max_atoms = " +
          std::to_string(options_.max_atoms) +
          "; use the CQ pipeline for large databases");
    }
    return util::Status::OK();
  }

  util::StatusOr<std::string> ResolveBase(const BaseArg& arg, const Env& env) {
    if (!arg.is_var()) return arg.text();
    auto it = env.base.find(arg.text());
    if (it == env.base.end()) {
      return util::Status::InvalidArgument("unbound base variable " +
                                           arg.text());
    }
    return it->second;
  }

  util::StatusOr<Polynomial> TermToPoly(const Term& t, const Env& env) {
    switch (t.kind()) {
      case Term::Kind::kVar: {
        auto it = env.num.find(t.var_name());
        if (it == env.num.end()) {
          return util::Status::InvalidArgument("unbound numeric variable " +
                                               t.var_name());
        }
        return it->second;
      }
      case Term::Kind::kConst:
        return Polynomial::Constant(t.const_value());
      case Term::Kind::kAdd: {
        MUDB_ASSIGN_OR_RETURN(Polynomial a, TermToPoly(t.children()[0], env));
        MUDB_ASSIGN_OR_RETURN(Polynomial b, TermToPoly(t.children()[1], env));
        return a + b;
      }
      case Term::Kind::kMul: {
        MUDB_ASSIGN_OR_RETURN(Polynomial a, TermToPoly(t.children()[0], env));
        MUDB_ASSIGN_OR_RETURN(Polynomial b, TermToPoly(t.children()[1], env));
        return a * b;
      }
      case Term::Kind::kNeg: {
        MUDB_ASSIGN_OR_RETURN(Polynomial a, TermToPoly(t.children()[0], env));
        return -a;
      }
    }
    return util::Status::Internal("unreachable term kind");
  }

  util::StatusOr<RealFormula> GroundRelAtom(const Formula& f, Env* env) {
    MUDB_ASSIGN_OR_RETURN(const Relation* rel, db_.GetRelation(f.relation()));
    // Pre-resolve arguments once.
    std::vector<std::string> base_args(f.args().size());
    std::vector<Polynomial> num_args(f.args().size());
    for (size_t i = 0; i < f.args().size(); ++i) {
      const AtomArg& a = f.args()[i];
      if (a.sort() == Sort::kBase) {
        MUDB_ASSIGN_OR_RETURN(base_args[i], ResolveBase(a.base(), *env));
      } else {
        MUDB_ASSIGN_OR_RETURN(num_args[i], TermToPoly(a.term(), *env));
      }
    }
    std::vector<RealFormula> disjuncts;
    for (const Tuple& t : rel->tuples()) {
      bool base_match = true;
      std::vector<RealFormula> conj;
      for (size_t i = 0; i < t.size() && base_match; ++i) {
        if (t[i].sort() == Sort::kBase) {
          if (t[i].base_const() != base_args[i]) base_match = false;
        } else {
          MUDB_RETURN_IF_ERROR(ChargeAtoms(1));
          Polynomial diff = num_args[i] - NumValueToPoly(t[i]);
          conj.push_back(RealFormula::Cmp(std::move(diff), CmpOp::kEq));
        }
      }
      if (!base_match) continue;
      disjuncts.push_back(RealFormula::And(std::move(conj)));
    }
    return RealFormula::Or(std::move(disjuncts));
  }

  util::StatusOr<RealFormula> GroundQuantifier(const Formula& f, Env* env) {
    const logic::TypedVar& var = f.quantified_var();
    const bool is_exists = f.kind() == Formula::Kind::kExists;
    std::vector<RealFormula> parts;
    if (var.sort == Sort::kBase) {
      // Save/restore any shadowed binding.
      std::optional<std::string> saved;
      if (auto it = env->base.find(var.name); it != env->base.end()) {
        saved = it->second;
      }
      for (const std::string& c : base_domain_) {
        env->base[var.name] = c;
        MUDB_ASSIGN_OR_RETURN(RealFormula g, Ground(f.children()[0], env));
        parts.push_back(std::move(g));
        if (is_exists && parts.back().kind() == RealFormula::Kind::kTrue) break;
        if (!is_exists && parts.back().kind() == RealFormula::Kind::kFalse)
          break;
      }
      if (saved) {
        env->base[var.name] = *saved;
      } else {
        env->base.erase(var.name);
      }
    } else {
      std::optional<Polynomial> saved;
      if (auto it = env->num.find(var.name); it != env->num.end()) {
        saved = it->second;
      }
      for (const Polynomial& p : num_domain_) {
        env->num[var.name] = p;
        MUDB_ASSIGN_OR_RETURN(RealFormula g, Ground(f.children()[0], env));
        parts.push_back(std::move(g));
        if (is_exists && parts.back().kind() == RealFormula::Kind::kTrue) break;
        if (!is_exists && parts.back().kind() == RealFormula::Kind::kFalse)
          break;
      }
      if (saved) {
        env->num[var.name] = *saved;
      } else {
        env->num.erase(var.name);
      }
    }
    return is_exists ? RealFormula::Or(std::move(parts))
                     : RealFormula::And(std::move(parts));
  }

  const Database& db_;
  GroundOptions options_;
  size_t atoms_used_ = 0;
  std::unordered_map<NullId, int> z_index_;
  std::vector<NullId> null_order_;
  std::vector<std::string> base_domain_;
  std::vector<Polynomial> num_domain_;
  std::set<std::string> seen_base_;
  std::set<double> seen_num_;
  std::set<NullId> seen_num_null_;
};

}  // namespace

util::StatusOr<GroundResult> GroundQuery(const logic::Query& q,
                                         const model::Database& db,
                                         const model::Tuple& candidate,
                                         const GroundOptions& options) {
  MUDB_RETURN_IF_ERROR(q.formula.Typecheck(db));
  if (candidate.size() != q.output.size()) {
    return util::Status::InvalidArgument(
        "candidate arity " + std::to_string(candidate.size()) +
        " does not match query output arity " +
        std::to_string(q.output.size()));
  }
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i].sort() != q.output[i].sort) {
      return util::Status::InvalidArgument(
          "candidate position " + std::to_string(i) + " has sort " +
          model::SortToString(candidate[i].sort()) + ", output variable " +
          q.output[i].name + " has sort " +
          model::SortToString(q.output[i].sort));
    }
  }

  // Step 1 (Prop. 5.2): eliminate base nulls with a bijective valuation,
  // applied consistently to the database and the candidate tuple (whose base
  // nulls may be outside the database under the permissive semantics of
  // [28]).
  std::vector<model::NullId> extra_base_ids;
  for (const model::Value& v : candidate) {
    if (v.kind() == model::Value::Kind::kBaseNull) {
      extra_base_ids.push_back(v.null_id());
    }
  }
  model::Valuation vbase =
      model::MakeBijectiveBaseValuation(db, "@null_", extra_base_ids);
  model::Database complete_base = vbase.Apply(db);
  model::Tuple cand;
  cand.reserve(candidate.size());
  for (const model::Value& v : candidate) cand.push_back(vbase.Apply(v));

  Grounder grounder(complete_base, options);
  for (const model::Value& v : cand) {
    if (v.kind() == model::Value::Kind::kNumNull) {
      grounder.EnsureNumNull(v.null_id());
    }
  }

  // Step 2: bind output variables to the candidate tuple.
  Env env;
  for (size_t i = 0; i < cand.size(); ++i) {
    if (q.output[i].sort == model::Sort::kBase) {
      if (cand[i].kind() != model::Value::Kind::kBaseConst) {
        return util::Status::InvalidArgument(
            "candidate base value must be a constant or database null");
      }
      env.base[q.output[i].name] = cand[i].base_const();
    } else {
      env.num[q.output[i].name] = grounder.NumValueToPoly(cand[i]);
    }
  }

  MUDB_ASSIGN_OR_RETURN(constraints::RealFormula formula,
                        grounder.Ground(q.formula, &env));
  return GroundResult{std::move(formula), grounder.null_order()};
}

}  // namespace mudb::translate
