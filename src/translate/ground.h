// Grounding: (query, database, candidate tuple) → quantifier-free formula
// over ⟨R, +, ·, <⟩ (Prop. 5.3 / Thm. 5.4 of the paper).
//
// Steps:
//  1. Base nulls are eliminated with a bijective valuation (Prop. 5.2): each
//     ⊥_i becomes a fresh base constant, so μ is unchanged.
//  2. Every numeric null ⊤_i becomes the real variable z_i (indices assigned
//     in first-appearance order over the database, then the candidate tuple).
//  3. Base quantifiers expand into finite conjunctions/disjunctions over the
//     active base domain; numeric quantifiers over the active numeric domain
//     C_num(D) ∪ N_num(D) (constants and z-variables).
//  4. Relational atoms expand into disjunctions over the relation's tuples;
//     numeric positions contribute equality atoms between polynomials.
//
// The result satisfies μ(q, D, (a,s)) = ν(φ) (Thm. 5.4), which the engines in
// src/measure compute or approximate.

#ifndef MUDB_SRC_TRANSLATE_GROUND_H_
#define MUDB_SRC_TRANSLATE_GROUND_H_

#include <vector>

#include "src/constraints/real_formula.h"
#include "src/logic/formula.h"
#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::translate {

/// Output of grounding: φ(z_0..z_{k-1}) plus the meaning of each variable.
struct GroundResult {
  constraints::RealFormula formula;
  /// null_order[i] is the numeric null id denoted by variable z_i. Variables
  /// cover all numeric nulls of the database (in first-appearance order),
  /// whether or not they occur in the formula.
  std::vector<model::NullId> null_order;
};

/// Options controlling the active-domain expansion.
struct GroundOptions {
  /// Hard cap on the number of atoms produced, guarding against blow-up of
  /// quantifier expansion on large databases. Exceeding it fails with
  /// ResourceExhausted (use the CQ pipeline in src/engine for large inputs).
  /// Per-call dispatch plumbs MeasureOptions::max_ground_atoms here, so a
  /// serving layer (src/service/) can bound the grounding work any single
  /// request may cost before its sampling even starts.
  size_t max_atoms = 2'000'000;
};

/// Grounds query `q` on database `db` for a candidate answer `candidate`
/// (one model::Value per output variable of `q`, of matching sorts; nulls
/// must occur in `db`). For Boolean queries pass an empty candidate.
util::StatusOr<GroundResult> GroundQuery(const logic::Query& q,
                                         const model::Database& db,
                                         const model::Tuple& candidate,
                                         const GroundOptions& options = {});

}  // namespace mudb::translate

#endif  // MUDB_SRC_TRANSLATE_GROUND_H_
