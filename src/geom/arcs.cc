#include "src/geom/arcs.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mudb::geom {

namespace {

constexpr double kPi = M_PI;
constexpr double kTwoPi = 2.0 * M_PI;

// Reduces an angle into [-π, π).
double Reduce(double a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a < 0) a += kTwoPi;
  return a - kPi;
}

}  // namespace

ArcSet ArcSet::FullCircle() {
  ArcSet s;
  s.arcs_.push_back({-kPi, kPi});
  return s;
}

void ArcSet::AddInterval(double lo, double hi) {
  double width = hi - lo;
  if (width <= 0) return;
  if (width >= kTwoPi) {
    arcs_.assign(1, {-kPi, kPi});
    return;
  }
  double rlo = Reduce(lo);
  double rhi = rlo + width;
  if (rhi <= kPi) {
    arcs_.push_back({rlo, rhi});
  } else {
    arcs_.push_back({rlo, kPi});
    arcs_.push_back({-kPi, rhi - kTwoPi});
  }
  Normalize();
}

void ArcSet::Normalize() {
  if (arcs_.empty()) return;
  std::sort(arcs_.begin(), arcs_.end(),
            [](const Arc& a, const Arc& b) { return a.lo < b.lo; });
  std::vector<Arc> merged;
  for (const Arc& a : arcs_) {
    if (a.hi <= a.lo) continue;
    if (!merged.empty() && a.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, a.hi);
    } else {
      merged.push_back(a);
    }
  }
  arcs_ = std::move(merged);
}

ArcSet ArcSet::Union(const ArcSet& other) const {
  ArcSet out = *this;
  out.arcs_.insert(out.arcs_.end(), other.arcs_.begin(), other.arcs_.end());
  out.Normalize();
  return out;
}

ArcSet ArcSet::Intersect(const ArcSet& other) const {
  ArcSet out;
  size_t i = 0, j = 0;
  while (i < arcs_.size() && j < other.arcs_.size()) {
    const Arc& a = arcs_[i];
    const Arc& b = other.arcs_[j];
    double lo = std::max(a.lo, b.lo);
    double hi = std::min(a.hi, b.hi);
    if (lo < hi) out.arcs_.push_back({lo, hi});
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  out.Normalize();
  return out;
}

ArcSet ArcSet::Complement() const {
  ArcSet out;
  double cursor = -kPi;
  for (const Arc& a : arcs_) {
    if (a.lo > cursor) out.arcs_.push_back({cursor, a.lo});
    cursor = std::max(cursor, a.hi);
  }
  if (cursor < kPi) out.arcs_.push_back({cursor, kPi});
  out.Normalize();
  return out;
}

double ArcSet::Measure() const {
  double m = 0.0;
  for (const Arc& a : arcs_) m += a.Length();
  return m;
}

double ArcSet::Fraction() const { return Measure() / kTwoPi; }

std::string ArcSet::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < arcs_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "[" << arcs_[i].lo << ", " << arcs_[i].hi << ")";
  }
  out << "}";
  return out.str();
}

}  // namespace mudb::geom
