// Euclidean geometry substrate: ball volumes, uniform sampling on spheres and
// balls (the sampling primitive of the AFPRAS, cf. [8] Blum–Hopcroft–Kannan),
// and small vector helpers.

#ifndef MUDB_SRC_GEOM_GEOMETRY_H_
#define MUDB_SRC_GEOM_GEOMETRY_H_

#include <vector>

#include "src/util/rng.h"

namespace mudb::geom {

using Vec = std::vector<double>;

/// Euclidean norm.
double Norm(const Vec& v);
/// Dot product (vectors of equal size).
double Dot(const Vec& a, const Vec& b);
/// a + s·b.
Vec AddScaled(const Vec& a, double s, const Vec& b);
/// a += s·b, no allocation (hit-and-run inner loop).
void AddScaledInPlace(Vec& a, double s, const Vec& b);

/// Volume of the n-dimensional ball of radius r (exact closed form
/// π^{n/2} r^n / Γ(n/2 + 1); n = 0 gives 1, matching Vol(R^0) = 1 in §4).
double BallVolume(int n, double r = 1.0);

/// A point uniformly distributed on the unit sphere S^{n-1}: normalized
/// vector of n iid standard Gaussians.
Vec SampleUnitSphere(int n, util::Rng& rng);

/// In-place variant for hot loops: fills `out` (resized to n) with a uniform
/// sphere point. Consumes the RNG identically to the allocating overload.
void SampleUnitSphere(int n, util::Rng& rng, Vec& out);

/// A point uniformly distributed in the unit ball B^n: sphere sample scaled
/// by U^{1/n}.
Vec SampleUnitBall(int n, util::Rng& rng);

}  // namespace mudb::geom

#endif  // MUDB_SRC_GEOM_GEOMETRY_H_
