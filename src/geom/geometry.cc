#include "src/geom/geometry.h"

#include <cmath>

#include "src/util/status.h"

namespace mudb::geom {

double Norm(const Vec& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double Dot(const Vec& a, const Vec& b) {
  MUDB_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vec AddScaled(const Vec& a, double s, const Vec& b) {
  MUDB_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

void AddScaledInPlace(Vec& a, double s, const Vec& b) {
  MUDB_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

namespace {

// Thread-safe lgamma: glibc's lgamma() writes the process-global `signgam`,
// which races when shard workers evaluate volumes concurrently. The
// argument here is always > 0 (n/2 + 1), so the sign is statically +1 and
// the reentrant variant (or any signgam-free implementation) is exact.
double LGammaPositive(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double BallVolume(int n, double r) {
  MUDB_CHECK(n >= 0);
  // log V = (n/2)·log π − lgamma(n/2 + 1) + n·log r.
  double log_v = 0.5 * n * std::log(M_PI) - LGammaPositive(0.5 * n + 1.0) +
                 n * std::log(r);
  return std::exp(log_v);
}

Vec SampleUnitSphere(int n, util::Rng& rng) {
  Vec v;
  SampleUnitSphere(n, rng, v);
  return v;
}

void SampleUnitSphere(int n, util::Rng& rng, Vec& out) {
  MUDB_CHECK(n >= 1);
  out.resize(n);
  double norm = 0.0;
  // Regenerate in the (astronomically unlikely) case of a zero vector.
  do {
    for (int i = 0; i < n; ++i) out[i] = rng.Gaussian();
    norm = Norm(out);
  } while (norm == 0.0);
  double inv = 1.0 / norm;
  for (int i = 0; i < n; ++i) out[i] *= inv;
}

Vec SampleUnitBall(int n, util::Rng& rng) {
  Vec v = SampleUnitSphere(n, rng);
  double scale = std::pow(rng.Uniform01(), 1.0 / n);
  for (double& x : v) x *= scale;
  return v;
}

}  // namespace mudb::geom
