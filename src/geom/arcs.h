// Arc arithmetic on the unit circle: finite unions of angular intervals.
//
// Used by the exact 2-D measure engine: for a formula over two variables, the
// set of directions (cos θ, sin θ) whose asymptotic truth value is 1 is a
// finite union of arcs; ν(φ) is its total length divided by 2π.

#ifndef MUDB_SRC_GEOM_ARCS_H_
#define MUDB_SRC_GEOM_ARCS_H_

#include <string>
#include <vector>

namespace mudb::geom {

/// A half-open angular interval [lo, hi) with -π <= lo < hi <= π.
/// (Arcs crossing the ±π cut are represented as two intervals by ArcSet.)
struct Arc {
  double lo;
  double hi;

  double Length() const { return hi - lo; }
};

/// A normalized finite union of disjoint arcs within [-π, π).
class ArcSet {
 public:
  ArcSet() = default;

  /// The full circle.
  static ArcSet FullCircle();

  /// Adds [lo, hi); angles are reduced modulo 2π into [-π, π) and wrapping
  /// intervals are split. Empty intervals (hi <= lo after reduction of the
  /// *un-reduced* width) are ignored; widths >= 2π give the full circle.
  void AddInterval(double lo, double hi);

  /// Union, intersection and complement (within the circle).
  ArcSet Union(const ArcSet& other) const;
  ArcSet Intersect(const ArcSet& other) const;
  ArcSet Complement() const;

  /// Total angular measure in [0, 2π].
  double Measure() const;
  /// Measure() / 2π.
  double Fraction() const;

  bool IsEmpty() const { return arcs_.empty(); }
  const std::vector<Arc>& arcs() const { return arcs_; }

  std::string ToString() const;

 private:
  void Normalize();

  std::vector<Arc> arcs_;
};

}  // namespace mudb::geom

#endif  // MUDB_SRC_GEOM_ARCS_H_
