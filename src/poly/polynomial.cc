#include "src/poly/polynomial.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "src/util/status.h"

namespace mudb::poly {

void NormalizeMonomial(Monomial* m) {
  while (!m->empty() && m->back() == 0) m->pop_back();
}

uint32_t MonomialDegree(const Monomial& m) {
  uint32_t d = 0;
  for (uint32_t e : m) d += e;
  return d;
}

Polynomial Polynomial::Constant(double c) {
  Polynomial p;
  p.AddTerm({}, c);
  return p;
}

Polynomial Polynomial::Variable(int index) {
  MUDB_CHECK(index >= 0);
  Monomial m(index + 1, 0);
  m[index] = 1;
  Polynomial p;
  p.AddTerm(std::move(m), 1.0);
  return p;
}

Polynomial Polynomial::FromMonomial(Monomial m, double coeff) {
  Polynomial p;
  p.AddTerm(std::move(m), coeff);
  return p;
}

void Polynomial::AddTerm(Monomial m, double coeff) {
  if (coeff == 0.0) return;
  NormalizeMonomial(&m);
  auto [it, inserted] = terms_.emplace(std::move(m), coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second == 0.0) terms_.erase(it);
  }
}

bool Polynomial::IsConstant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.begin()->first.empty());
}

double Polynomial::ConstantTerm() const {
  auto it = terms_.find(Monomial{});
  return it == terms_.end() ? 0.0 : it->second;
}

int Polynomial::Degree() const {
  int d = -1;
  for (const auto& [m, c] : terms_) {
    d = std::max(d, static_cast<int>(MonomialDegree(m)));
  }
  return d;
}

int Polynomial::NumVariables() const {
  int n = 0;
  for (const auto& [m, c] : terms_) {
    n = std::max(n, static_cast<int>(m.size()));
  }
  return n;
}

bool Polynomial::IsLinear() const {
  for (const auto& [m, c] : terms_) {
    if (MonomialDegree(m) > 1) return false;
  }
  return true;
}

double Polynomial::Coefficient(const Monomial& m) const {
  Monomial key = m;
  NormalizeMonomial(&key);
  auto it = terms_.find(key);
  return it == terms_.end() ? 0.0 : it->second;
}

double Polynomial::LinearCoefficient(int index) const {
  Monomial m(index + 1, 0);
  m[index] = 1;
  return Coefficient(m);
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial out = *this;
  for (const auto& [m, c] : other.terms_) out.AddTerm(m, c);
  return out;
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  Polynomial out = *this;
  for (const auto& [m, c] : other.terms_) out.AddTerm(m, -c);
  return out;
}

Polynomial Polynomial::operator-() const {
  Polynomial out;
  for (const auto& [m, c] : terms_) out.AddTerm(m, -c);
  return out;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial out;
  for (const auto& [m1, c1] : terms_) {
    for (const auto& [m2, c2] : other.terms_) {
      Monomial m(std::max(m1.size(), m2.size()), 0);
      for (size_t i = 0; i < m1.size(); ++i) m[i] += m1[i];
      for (size_t i = 0; i < m2.size(); ++i) m[i] += m2[i];
      out.AddTerm(std::move(m), c1 * c2);
    }
  }
  return out;
}

Polynomial Polynomial::Scale(double c) const {
  Polynomial out;
  for (const auto& [m, coeff] : terms_) out.AddTerm(m, coeff * c);
  return out;
}

double Polynomial::Evaluate(const std::vector<double>& point) const {
  double sum = 0.0;
  for (const auto& [m, c] : terms_) {
    double term = c;
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      double x = i < point.size() ? point[i] : 0.0;
      for (uint32_t e = 0; e < m[i]; ++e) term *= x;
    }
    sum += term;
  }
  return sum;
}

Polynomial Polynomial::Substitute(int index, const Polynomial& value) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    Polynomial term = Polynomial::Constant(c);
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      Polynomial factor = (static_cast<int>(i) == index)
                              ? value
                              : Polynomial::Variable(static_cast<int>(i));
      for (uint32_t e = 0; e < m[i]; ++e) term = term * factor;
    }
    out = out + term;
  }
  return out;
}

std::vector<double> Polynomial::RestrictToDirection(
    const std::vector<double>& a) const {
  int deg = Degree();
  if (deg < 0) return {};
  std::vector<double> coeffs(deg + 1, 0.0);
  for (const auto& [m, c] : terms_) {
    double prod = c;
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      double ai = i < a.size() ? a[i] : 0.0;
      for (uint32_t e = 0; e < m[i]; ++e) prod *= ai;
    }
    coeffs[MonomialDegree(m)] += prod;
  }
  return coeffs;
}

void Polynomial::CollectVariableIndices(std::set<int>* out) const {
  for (const auto& [m, c] : terms_) {
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] > 0) out->insert(static_cast<int>(i));
    }
  }
}

Polynomial Polynomial::RemapVariables(const std::vector<int>& new_index) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    Monomial mapped;
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      MUDB_CHECK(i < new_index.size() && new_index[i] >= 0);
      size_t j = static_cast<size_t>(new_index[i]);
      if (mapped.size() <= j) mapped.resize(j + 1, 0);
      mapped[j] += m[i];
    }
    out.AddTerm(std::move(mapped), c);
  }
  return out;
}

std::vector<double> Polynomial::RestrictToDirectionPartial(
    const std::vector<double>& a, const std::vector<bool>& scaled) const {
  int max_deg = 0;
  for (const auto& [m, c] : terms_) {
    int d = 0;
    for (size_t i = 0; i < m.size(); ++i) {
      if (i < scaled.size() && scaled[i]) d += static_cast<int>(m[i]);
    }
    max_deg = std::max(max_deg, d);
  }
  if (terms_.empty()) return {};
  std::vector<double> coeffs(max_deg + 1, 0.0);
  for (const auto& [m, c] : terms_) {
    double prod = c;
    int d = 0;
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      double ai = i < a.size() ? a[i] : 0.0;
      for (uint32_t e = 0; e < m[i]; ++e) prod *= ai;
      if (i < scaled.size() && scaled[i]) d += static_cast<int>(m[i]);
    }
    coeffs[d] += prod;
  }
  return coeffs;
}

Polynomial Polynomial::LeadingForm() const {
  int deg = Degree();
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    if (static_cast<int>(MonomialDegree(m)) == deg) out.AddTerm(m, c);
  }
  return out;
}

Polynomial Polynomial::DropConstant() const {
  Polynomial out = *this;
  out.terms_.erase(Monomial{});
  return out;
}

std::string Polynomial::ToString() const {
  return ToString([](int i) { return "z" + std::to_string(i); });
}

std::string Polynomial::ToString(
    const std::function<std::string(int)>& var_name) const {
  if (terms_.empty()) return "0";
  std::ostringstream out;
  bool first = true;
  // Iterate in reverse so higher-degree monomials tend to print first.
  for (auto it = terms_.rbegin(); it != terms_.rend(); ++it) {
    const auto& [m, c] = *it;
    double coeff = c;
    if (first) {
      if (coeff < 0) {
        out << "-";
        coeff = -coeff;
      }
      first = false;
    } else {
      out << (coeff < 0 ? " - " : " + ");
      coeff = std::fabs(coeff);
    }
    bool printed_coeff = false;
    if (m.empty() || coeff != 1.0) {
      out << coeff;
      printed_coeff = true;
    }
    bool first_var = true;
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      if (!first_var || printed_coeff) out << "*";
      out << var_name(static_cast<int>(i));
      if (m[i] > 1) out << "^" << m[i];
      first_var = false;
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Polynomial& p) {
  return os << p.ToString();
}

}  // namespace mudb::poly
