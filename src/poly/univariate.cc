#include "src/poly/univariate.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace mudb::poly {

UniPoly TrimLeading(const UniPoly& p, double tol) {
  UniPoly out = p;
  while (!out.empty() && std::fabs(out.back()) <= tol) out.pop_back();
  return out;
}

double EvaluateUni(const UniPoly& p, double x) {
  double acc = 0.0;
  for (auto it = p.rbegin(); it != p.rend(); ++it) acc = acc * x + *it;
  return acc;
}

UniPoly DerivativeUni(const UniPoly& p) {
  if (p.size() <= 1) return {};
  UniPoly out(p.size() - 1);
  for (size_t d = 1; d < p.size(); ++d) {
    out[d - 1] = p[d] * static_cast<double>(d);
  }
  return out;
}

int AsymptoticSign(const UniPoly& p, double tol) {
  UniPoly trimmed = TrimLeading(p, tol);
  if (trimmed.empty()) return 0;
  return trimmed.back() > 0 ? 1 : -1;
}

namespace {

// Polynomial remainder of a by b (b non-empty, leading coeff nonzero).
UniPoly Remainder(UniPoly a, const UniPoly& b) {
  MUDB_DCHECK(!b.empty());
  while (a.size() >= b.size()) {
    a = TrimLeading(a, 0.0);
    if (a.size() < b.size()) break;
    double factor = a.back() / b.back();
    size_t shift = a.size() - b.size();
    for (size_t i = 0; i < b.size(); ++i) {
      a[i + shift] -= factor * b[i];
    }
    a.pop_back();  // leading term canceled exactly (up to rounding)
  }
  return TrimLeading(a, 0.0);
}

// Number of sign changes of the Sturm chain at x (zeros skipped).
int SturmSignChanges(const std::vector<UniPoly>& chain, double x) {
  int changes = 0;
  int prev = 0;
  for (const UniPoly& p : chain) {
    double v = EvaluateUni(p, x);
    int s = v > 0 ? 1 : (v < 0 ? -1 : 0);
    if (s != 0) {
      if (prev != 0 && s != prev) ++changes;
      prev = s;
    }
  }
  return changes;
}

}  // namespace

std::vector<double> IsolateRealRoots(const UniPoly& p_in, double lo, double hi,
                                     double eps) {
  UniPoly p = TrimLeading(p_in, 0.0);
  if (p.size() <= 1 || lo >= hi) return {};

  // Build the Sturm chain p, p', -rem(p, p'), ...
  std::vector<UniPoly> chain;
  chain.push_back(p);
  chain.push_back(DerivativeUni(p));
  while (chain.back().size() > 1) {
    UniPoly r = Remainder(chain[chain.size() - 2], chain.back());
    if (r.empty()) break;
    for (double& c : r) c = -c;
    chain.push_back(std::move(r));
  }

  std::vector<double> roots;

  // Recursively bisect intervals with a positive root count. Counts roots in
  // (a, b] as V(a) - V(b).
  struct Interval {
    double a, b;
    int count;
  };
  int total = SturmSignChanges(chain, lo) - SturmSignChanges(chain, hi);
  if (total <= 0) {
    // Sturm counts roots in (lo, hi]; a root exactly at hi is excluded from
    // the open interval by the caller's contract, handled below.
    return {};
  }
  std::vector<Interval> stack{{lo, hi, total}};
  while (!stack.empty()) {
    Interval iv = stack.back();
    stack.pop_back();
    if (iv.count == 0) continue;
    if (iv.count == 1 || iv.b - iv.a < eps) {
      // Refine a single root (or a cluster below resolution) by bisection on
      // the Sturm count, which is robust even without a sign change of p.
      double a = iv.a, b = iv.b;
      int va = SturmSignChanges(chain, a);
      while (b - a > eps) {
        double mid = 0.5 * (a + b);
        int vm = SturmSignChanges(chain, mid);
        if (va - vm >= 1) {
          b = mid;
        } else {
          a = mid;
          va = vm;
        }
      }
      roots.push_back(0.5 * (a + b));
      continue;
    }
    double mid = 0.5 * (iv.a + iv.b);
    int vmid = SturmSignChanges(chain, mid);
    int left = SturmSignChanges(chain, iv.a) - vmid;
    int right = vmid - SturmSignChanges(chain, iv.b);
    stack.push_back({iv.a, mid, left});
    stack.push_back({mid, iv.b, right});
  }

  std::sort(roots.begin(), roots.end());
  // Drop roots that coincide with the interval's right endpoint (open
  // interval contract) and merge duplicates from clustered refinement.
  std::vector<double> out;
  for (double r : roots) {
    if (r >= hi - eps) continue;
    if (r <= lo + eps) continue;
    if (!out.empty() && std::fabs(out.back() - r) <= 2 * eps) continue;
    out.push_back(r);
  }
  return out;
}

}  // namespace mudb::poly
