// Sparse multivariate polynomials over the reals (double coefficients).
//
// Polynomials are the terms of the real-closed-field formulae produced by the
// grounding of Prop. 5.3: every FO(+,·,<) atom becomes `p(z) ◦ 0` for a
// polynomial p over the variables z_1..z_k (one per numeric null).
//
// The key operation for the AFPRAS (Lemma 8.4) is RestrictToDirection: the
// substitution z := k·a turns p into a univariate polynomial in k whose
// degree-d coefficient is Σ_{monomials of total degree d} c · Π a_i^{e_i}.

#ifndef MUDB_SRC_POLY_POLYNOMIAL_H_
#define MUDB_SRC_POLY_POLYNOMIAL_H_

#include <functional>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mudb::poly {

/// Exponent vector of a monomial; index = variable, entry = exponent.
/// Normalized form has no trailing zeros (the constant monomial is {}).
using Monomial = std::vector<uint32_t>;

/// Removes trailing zero exponents in place.
void NormalizeMonomial(Monomial* m);

/// Total degree (sum of exponents).
uint32_t MonomialDegree(const Monomial& m);

/// A sparse multivariate polynomial. Immutable value type; all operations
/// return new polynomials. Coefficients with |c| == 0 are dropped.
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;

  /// The constant polynomial c.
  static Polynomial Constant(double c);
  /// The polynomial z_index.
  static Polynomial Variable(int index);
  /// c · z_0^{e_0} · ... (exponent vector).
  static Polynomial FromMonomial(Monomial m, double coeff);

  bool IsZero() const { return terms_.empty(); }
  /// True if the polynomial is a constant (possibly zero).
  bool IsConstant() const;
  /// The constant term.
  double ConstantTerm() const;
  /// Total degree; the zero polynomial has degree -1 by convention.
  int Degree() const;
  /// 1 + the largest variable index used, i.e. the dimension of the ambient
  /// space; 0 for constants.
  int NumVariables() const;
  /// True if every monomial has total degree <= 1 (affine).
  bool IsLinear() const;

  /// Coefficient of a monomial (0 if absent).
  double Coefficient(const Monomial& m) const;
  /// Coefficient of z_index in a linear polynomial (degree-1 monomial).
  double LinearCoefficient(int index) const;

  const std::map<Monomial, double>& terms() const { return terms_; }

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator-() const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial Scale(double c) const;

  bool operator==(const Polynomial& other) const {
    return terms_ == other.terms_;
  }
  bool operator!=(const Polynomial& other) const { return !(*this == other); }

  /// Evaluates at a point (missing coordinates are 0).
  double Evaluate(const std::vector<double>& point) const;

  /// Substitutes polynomial `value` for variable `index`.
  Polynomial Substitute(int index, const Polynomial& value) const;

  /// Coefficients of p(k·a) as a univariate polynomial in k: entry d is the
  /// coefficient of k^d. Size is Degree()+1 (empty for the zero polynomial).
  std::vector<double> RestrictToDirection(const std::vector<double>& a) const;

  /// Mixed restriction (conditional-measure support, §10): variables with
  /// scaled[i] == true are substituted by k·a_i, the rest by the fixed value
  /// a_i. Entry d of the result is the coefficient of k^d, so the degree now
  /// counts only scaled variables. With all variables scaled this equals
  /// RestrictToDirection; with none it is the point evaluation (degree 0).
  std::vector<double> RestrictToDirectionPartial(
      const std::vector<double>& a, const std::vector<bool>& scaled) const;

  /// Adds the indices of variables actually occurring to `out`.
  void CollectVariableIndices(std::set<int>* out) const;

  /// Renames variables: variable i becomes new_index[i]. Every occurring
  /// variable must have a mapping (new_index[i] >= 0).
  Polynomial RemapVariables(const std::vector<int>& new_index) const;

  /// The homogeneous part of highest total degree (the "leading form").
  Polynomial LeadingForm() const;
  /// Drops the constant term: the homogenization used by Thm. 7.1 for linear
  /// atoms (c·z < c' becomes c·z < 0).
  Polynomial DropConstant() const;

  /// Human-readable form, e.g. "2*z0^2*z1 - z1 + 3".
  std::string ToString() const;
  /// As ToString, with variable names supplied by `var_name` (used to print
  /// constraints in terms of the original nulls, e.g. ⊤7 instead of z0).
  std::string ToString(const std::function<std::string(int)>& var_name) const;

 private:
  void AddTerm(Monomial m, double coeff);

  std::map<Monomial, double> terms_;
};

std::ostream& operator<<(std::ostream& os, const Polynomial& p);

}  // namespace mudb::poly

#endif  // MUDB_SRC_POLY_POLYNOMIAL_H_
