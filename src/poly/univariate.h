// Univariate polynomial utilities: evaluation, asymptotic sign, Sturm
// sequences and real-root isolation.
//
// AsymptoticSign implements the core of Lemma 8.4: the truth of an atom
// p(k·a) ◦ 0 for k → ∞ is decided by the sign of the highest-degree nonzero
// coefficient of the univariate restriction.
//
// Root isolation is used by the exact 2-D measure engine: the critical
// directions of a bivariate leading form h(x, y) are the roots of h(1, t).

#ifndef MUDB_SRC_POLY_UNIVARIATE_H_
#define MUDB_SRC_POLY_UNIVARIATE_H_

#include <vector>

namespace mudb::poly {

/// Coefficient vector; entry d is the coefficient of x^d.
using UniPoly = std::vector<double>;

/// Drops (near-)zero leading coefficients. `tol` guards against coefficients
/// that are zero up to floating-point noise from the grounding arithmetic.
UniPoly TrimLeading(const UniPoly& p, double tol = 0.0);

/// Evaluates by Horner's rule.
double EvaluateUni(const UniPoly& p, double x);

/// Formal derivative.
UniPoly DerivativeUni(const UniPoly& p);

/// Sign (-1, 0, +1) of p(k) for all sufficiently large k > 0: the sign of the
/// leading nonzero coefficient; 0 iff the polynomial is identically zero
/// (coefficients with |c| <= tol are treated as zero).
int AsymptoticSign(const UniPoly& p, double tol = 0.0);

/// All real roots of p in the open interval (lo, hi), each reported once,
/// in increasing order, refined by bisection to absolute precision `eps`.
/// Uses Sturm's theorem for isolation, so multiple roots are found once.
/// Degenerate inputs (zero polynomial) return an empty vector.
std::vector<double> IsolateRealRoots(const UniPoly& p, double lo, double hi,
                                     double eps = 1e-12);

}  // namespace mudb::poly

#endif  // MUDB_SRC_POLY_UNIVARIATE_H_
