// FPRAS for the volume of a union of convex bodies (Thm. 7.1's geometric
// core; the role played by Bringmann–Friedrich [9] in the paper).
//
// Karp–Luby estimator: with per-body volume estimates V_i and uniform
// samplers, sample a body with probability V_i / ΣV, draw x uniformly from
// it, and average 1/m(x) where m(x) = #{j : x ∈ X_j}. Then
//     Vol(∪X_i) = (Σ V_i) · E[1/m(x)],
// and since E[1/m] >= 1/#bodies, O(#bodies / ε²) samples give a relative
// (1 ± ε) estimate with constant probability.
//
// Dedup and caching: input bodies are canonicalized (convex/canonical.h)
// and identical bodies collapse — each *unique* body is estimated and
// walked once, and m(x) counts unique members (the union is a set, so the
// estimate is unchanged while the duplicated sampling and Contains work
// disappears). A single-body union needs no Karp–Luby correction at all.
// Per-unique-body volume estimation draws from an RNG stream derived from
// the body's cache key — canonical content, the raw representation actually
// walked (convex::RawBodyFingerprint), the estimation parameters, and the
// forked call rng's identity — never from a positional index. An estimate
// is therefore a bitwise-pure function of its cache key, which is what
// makes estimates shareable through the optional BodyEstimateCache across
// calls with equal seeds (the serving layer's batches): a cache hit returns
// bit-exactly what recomputation would, for any batch composition, while
// distinct seeds still produce distinct sample paths (see src/service/).
//
// Parallel runtime: the call forks the caller's rng once and the Karp–Luby
// loop is carved into a fixed chunk grid — a function of the sample budget
// and unique-body count only — where chunk c draws everything (body picks
// and walks) from Split(c), and the partial sums are reduced in chunk
// order. Chunks walk their picked bodies K at a time through the vectorized
// lockstep kernel (convex/batch_sampler.h), grouped by
// convex::PartitionChainGrid; chunk c is always lane (c − group first) and
// every lane is bit-identical to a scalar chain on chunk c's substream, so
// estimates are bit-identical for any group width and any pool size.

#ifndef MUDB_SRC_VOLUME_UNION_VOLUME_H_
#define MUDB_SRC_VOLUME_UNION_VOLUME_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/convex/body.h"
#include "src/convex/canonical.h"
#include "src/convex/volume.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace mudb::volume {

/// A body-volume estimate as stored by an external cache.
struct CachedBodyEstimate {
  double volume = 0.0;
  /// Hit-and-run steps the original estimation cost (what a hit saves).
  int64_t steps = 0;
  /// Annealing phases of the original estimation.
  int phases = 0;
};

/// Cross-call cache of per-body volume estimates, keyed by canonical body
/// key × raw representation × estimation tier × seed path (the key passed
/// in is already the combination, see convex::CombineKeyWithParams).
/// Implementations must be safe for concurrent Lookup/Insert; the concrete
/// sharded LRU lives in src/service/estimate_cache.h. Because estimates
/// are pure functions of their key, a Lookup hit is bit-identical to
/// recomputation — a cache can only save work, never change a result.
class BodyEstimateCache {
 public:
  virtual ~BodyEstimateCache() = default;
  virtual std::optional<CachedBodyEstimate> Lookup(
      const convex::CanonicalBodyKey& key) = 0;
  virtual void Insert(const convex::CanonicalBodyKey& key,
                      const CachedBodyEstimate& estimate) = 0;
};

struct UnionVolumeOptions {
  /// Target relative accuracy.
  double epsilon = 0.1;
  /// Hit-and-run steps between Karp–Luby samples; 0 = auto (≈ 4·dim).
  int walk_steps = 0;
  /// Karp–Luby samples; 0 = auto from epsilon and the number of bodies.
  int num_samples = 0;
  /// Options for the per-body volume estimates (set body_volume.pool to the
  /// same pool as `pool` to parallelize them as well).
  convex::VolumeOptions body_volume;
  /// Optional worker pool for the Karp–Luby chunk groups; nullptr runs them
  /// inline. Any pool size yields the identical estimate.
  util::ThreadPool* pool = nullptr;
  /// Optional cross-call estimate cache (not owned). Hits skip a body's
  /// sampling entirely and are bit-identical to recomputation.
  BodyEstimateCache* body_cache = nullptr;
};

struct UnionVolumeResult {
  double volume = 0.0;
  /// Per-input-body volume estimates (duplicates share their unique body's
  /// estimate; 0 for bodies with empty interior).
  std::vector<double> body_volumes;
  /// Total hit-and-run steps actually taken by this call (annealing phases
  /// + Karp–Luby walks; cache hits contribute nothing). The denominator of
  /// the steps/sec throughput metric in bench JSON.
  int64_t steps = 0;
  /// Distinct bodies after canonical dedup.
  int unique_bodies = 0;
  /// Unique-body estimates served by options.body_cache.
  int64_t body_cache_hits = 0;
};

/// A body together with its inner ball (bodies without one have volume 0 and
/// may simply be omitted by the caller).
struct SeededBody {
  convex::ConvexBody body;
  convex::InnerBall inner;
  /// Radius bound: body ⊆ B(inner.center, outer_radius_bound).
  double outer_radius_bound;
};

/// Estimates Vol(X_1 ∪ ... ∪ X_m). Empty input yields 0. Advances `rng` by
/// one draw (Rng::Fork) for the Karp–Luby stage: repeated calls with one Rng
/// see fresh union samples, while a fresh same-seeded Rng reproduces the
/// estimate bit-exactly, independent of the pools and of the cache state.
util::StatusOr<UnionVolumeResult> EstimateUnionVolume(
    const std::vector<SeededBody>& bodies, const UnionVolumeOptions& options,
    util::Rng& rng);

}  // namespace mudb::volume

#endif  // MUDB_SRC_VOLUME_UNION_VOLUME_H_
