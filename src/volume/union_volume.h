// FPRAS for the volume of a union of convex bodies (Thm. 7.1's geometric
// core; the role played by Bringmann–Friedrich [9] in the paper).
//
// Karp–Luby estimator: with per-body volume estimates V_i and uniform
// samplers, sample a body with probability V_i / ΣV, draw x uniformly from
// it, and average 1/m(x) where m(x) = #{j : x ∈ X_j}. Then
//     Vol(∪X_i) = (Σ V_i) · E[1/m(x)],
// and since E[1/m] >= 1/#bodies, O(#bodies / ε²) samples give a relative
// (1 ± ε) estimate with constant probability.
//
// Parallel runtime: the call forks the caller's rng once, body i's volume
// estimate draws from the fork's substream Split(i) (and fans its phases out
// on the pool, see convex/volume.h); the Karp–Luby loop is carved into a
// fixed chunk grid — a function of the sample budget and body count only —
// where chunk c draws everything (body picks and walks) from
// Split(#bodies + c), and the partial sums are reduced in chunk order.
// Estimates are bit-identical for any pool size.

#ifndef MUDB_SRC_VOLUME_UNION_VOLUME_H_
#define MUDB_SRC_VOLUME_UNION_VOLUME_H_

#include <cstdint>
#include <vector>

#include "src/convex/body.h"
#include "src/convex/volume.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace mudb::volume {

struct UnionVolumeOptions {
  /// Target relative accuracy.
  double epsilon = 0.1;
  /// Hit-and-run steps between Karp–Luby samples; 0 = auto (≈ 4·dim).
  int walk_steps = 0;
  /// Karp–Luby samples; 0 = auto from epsilon and the number of bodies.
  int num_samples = 0;
  /// Options for the per-body volume estimates (set body_volume.pool to the
  /// same pool as `pool` to parallelize them as well).
  convex::VolumeOptions body_volume;
  /// Optional worker pool for the Karp–Luby chunks; nullptr runs them
  /// inline. Any pool size yields the identical estimate.
  util::ThreadPool* pool = nullptr;
};

struct UnionVolumeResult {
  double volume = 0.0;
  /// Per-body volume estimates (0 for bodies with empty interior).
  std::vector<double> body_volumes;
  /// Total hit-and-run steps taken (annealing phases + Karp–Luby walks);
  /// the denominator of the steps/sec throughput metric in bench JSON.
  int64_t steps = 0;
};

/// A body together with its inner ball (bodies without one have volume 0 and
/// may simply be omitted by the caller).
struct SeededBody {
  convex::ConvexBody body;
  convex::InnerBall inner;
  /// Radius bound: body ⊆ B(inner.center, outer_radius_bound).
  double outer_radius_bound;
};

/// Estimates Vol(X_1 ∪ ... ∪ X_m). Empty input yields 0. Advances `rng` by
/// one draw (Rng::Fork): repeated calls with one Rng see fresh sample paths,
/// while a fresh same-seeded Rng reproduces the estimate bit-exactly,
/// independent of the pools.
util::StatusOr<UnionVolumeResult> EstimateUnionVolume(
    const std::vector<SeededBody>& bodies, const UnionVolumeOptions& options,
    util::Rng& rng);

}  // namespace mudb::volume

#endif  // MUDB_SRC_VOLUME_UNION_VOLUME_H_
