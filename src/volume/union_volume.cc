#include "src/volume/union_volume.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "src/convex/batch_sampler.h"
#include "src/obs/trace.h"

namespace mudb::volume {

namespace {

// Chunk grid for the Karp–Luby loop: each chunk owns private hit-and-run
// chains (one per body it actually picks, burn-in included), so chunks must
// be large enough to amortize those burn-ins over their samples. A function
// of the budget and body count only — never the thread count.
int NumChunks(int num_samples, int num_bodies) {
  int min_chunk_samples = std::max(256, 20 * num_bodies);
  return std::clamp(num_samples / min_chunk_samples, 1, 64);
}

}  // namespace

util::StatusOr<UnionVolumeResult> EstimateUnionVolume(
    const std::vector<SeededBody>& bodies, const UnionVolumeOptions& options,
    util::Rng& rng) {
  UnionVolumeResult result;
  if (bodies.empty()) return result;
  const int m = static_cast<int>(bodies.size());
  // Forked exactly once, up front, whatever the dedup/cache outcome: the
  // caller-visible rng consumption must not depend on batch composition.
  util::Rng base = rng.Fork();

  // Canonical dedup: identical bodies collapse onto their first occurrence.
  // `uniq` holds first-occurrence input indices in input order, so the
  // deduped body list — and everything derived from it — is independent of
  // how many duplicates follow.
  std::vector<int> uniq;
  std::vector<int> uniq_of(m, -1);  // input index -> index into `uniq`
  std::vector<convex::CanonicalBodyKey> uniq_key;
  {
    std::unordered_map<convex::CanonicalBodyKey, int,
                       convex::CanonicalBodyKey::Hash>
        seen;
    seen.reserve(m);
    for (int i = 0; i < m; ++i) {
      convex::CanonicalBodyKey key = CanonicalizeBody(bodies[i].body);
      auto [it, inserted] =
          seen.emplace(key, static_cast<int>(uniq.size()));
      if (inserted) {
        uniq.push_back(i);
        uniq_key.push_back(key);
      }
      uniq_of[i] = it->second;
    }
  }
  const int u = static_cast<int>(uniq.size());
  result.unique_bodies = u;

  // Per-unique-body volume estimates. Each estimate draws from the RNG
  // stream owned by its (body × tier) key — a pure function of content, so
  // an external cache hit replays exactly what recomputation would produce.
  // The bodies run sequentially — EstimateVolume itself fans each annealing
  // phase out on body_volume.pool, which keeps the parallelism flat (no
  // nested ParallelFor) while saturating the workers even for a single body.
  std::vector<double> uniq_volume(u);
  double total = 0.0;
  for (int s = 0; s < u; ++s) {
    // The cache key pins everything the estimate is bitwise a function of:
    // the canonical content, the raw representation of the body actually
    // walked (row order perturbs LP-seeded inner balls; rescaling perturbs
    // chord arithmetic), the ε tier, and the caller's seed path (base is a
    // pure function of the caller rng — so distinct seeds keep distinct
    // sample paths while same-seed calls, the serving layer's batches,
    // share).
    const SeededBody& rep = bodies[uniq[s]];
    convex::CanonicalBodyKey tier_key = convex::CombineKeyWithParams(
        uniq_key[s],
        convex::RawBodyFingerprint(rep.body, rep.inner.center,
                                   rep.inner.radius, rep.outer_radius_bound),
        options.body_volume.epsilon, options.body_volume.walk_steps,
        options.body_volume.samples_per_phase, base.seed());
    // Phase-level span: one per unique body, annotated with the cache
    // outcome — never inside the sampling loops.
    obs::Span body_span("volume.body_estimate");
    std::optional<CachedBodyEstimate> cached;
    if (options.body_cache != nullptr) {
      cached = options.body_cache->Lookup(tier_key);
    }
    if (cached.has_value()) {
      uniq_volume[s] = cached->volume;
      ++result.body_cache_hits;
      if (body_span.recording()) {
        body_span.Annotate("cache", "hit");
        body_span.Annotate("steps_saved", static_cast<double>(cached->steps));
      }
    } else {
      if (body_span.recording()) body_span.Annotate("cache", "miss");
      util::Rng body_rng = convex::RngForKey(tier_key);
      convex::VolumeEstimate est = convex::EstimateVolume(
          rep.body, rep.inner, rep.outer_radius_bound, options.body_volume,
          body_rng);
      uniq_volume[s] = est.volume;
      result.steps += est.steps;
      if (options.body_cache != nullptr) {
        options.body_cache->Insert(
            tier_key, CachedBodyEstimate{est.volume, est.steps, est.phases});
      }
    }
    total += uniq_volume[s];
  }
  result.body_volumes.resize(m);
  for (int i = 0; i < m; ++i) {
    result.body_volumes[i] = uniq_volume[uniq_of[i]];
  }
  if (total <= 0.0) return result;

  // A one-body union needs no Karp–Luby correction: m(x) = 1 for every
  // sample, so the loop would estimate exactly 1 at full sampling cost.
  if (u == 1) {
    result.volume = uniq_volume[0];
    return result;
  }

  // Cumulative distribution for unique-body selection proportional to
  // volume.
  std::vector<double> cdf(u);
  double acc = 0.0;
  for (int s = 0; s < u; ++s) {
    acc += uniq_volume[s];
    cdf[s] = acc / total;
  }

  int dim = bodies[0].body.dim();
  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * dim;
  int num_samples = options.num_samples;
  if (num_samples <= 0) {
    double s = 12.0 * u / (options.epsilon * options.epsilon);
    num_samples = static_cast<int>(std::clamp(s, 1000.0, 2000000.0));
  }

  const int chunks = NumChunks(num_samples, u);
  // Chunks route through the batched kernel in fixed power-of-two groups:
  // chunk c is always lane (c − first) of its group's per-body kernels and
  // every one of its draws — picks, burn-ins, walks — comes from substream
  // Split(c) in the scalar loop's order, so partial[c] is bit-identical to
  // the scalar chunk at any group width and any thread count.
  const std::vector<convex::ChainGroup> groups =
      convex::PartitionChainGrid(chunks);
  std::vector<double> partial(chunks);
  std::vector<int64_t> chunk_steps(chunks);
  auto run_group = [&](int64_t g) {
    const int first = groups[g].first;
    const int width = groups[g].width;
    std::vector<util::Rng> lane_rng;
    lane_rng.reserve(width);
    std::vector<int> samples(width);
    int max_samples = 0;
    for (int l = 0; l < width; ++l) {
      const int c = first + l;
      lane_rng.emplace_back(base.Split(c));
      samples[l] = num_samples / chunks + (c < num_samples % chunks ? 1 : 0);
      max_samples = std::max(max_samples, samples[l]);
    }
    // One kernel per unique body, created on first pick; its lanes persist
    // (warm) across the group's samples, initialized lazily so a chunk only
    // pays burn-in for bodies it actually picks — exactly the scalar loop's
    // lazily created per-chunk samplers, K chunks at a time.
    std::vector<std::unique_ptr<convex::BatchedHitAndRunSampler>> samplers(u);
    std::vector<double> sum_inv(width, 0.0);
    std::vector<int64_t> steps(width, 0);
    std::vector<int> pick(width);
    std::vector<int> member(width);
    std::vector<util::Rng*> member_rng(width);
    geom::Vec x;
    for (int s = 0; s < max_samples; ++s) {
      for (int l = 0; l < width; ++l) {
        if (s >= samples[l]) {
          pick[l] = -1;  // this chunk's budget is spent; lane sits out
          continue;
        }
        double pick_u = lane_rng[l].Uniform01();
        int p = static_cast<int>(
            std::lower_bound(cdf.begin(), cdf.end(), pick_u) - cdf.begin());
        pick[l] = std::min(p, u - 1);
      }
      // The lanes that picked body b this round walk it in lockstep: the
      // pick partitions the group, so each lane walks exactly once.
      for (int b = 0; b < u; ++b) {
        int count = 0;
        for (int l = 0; l < width; ++l) {
          if (pick[l] == b) {
            member[count] = l;
            member_rng[count] = &lane_rng[l];
            ++count;
          }
        }
        if (count == 0) continue;
        const SeededBody& picked = bodies[uniq[b]];
        if (samplers[b] == nullptr) {
          samplers[b] = std::make_unique<convex::BatchedHitAndRunSampler>(
              &picked.body, width);
        }
        for (int idx = 0; idx < count; ++idx) {
          const int l = member[idx];
          if (!samplers[b]->lane_initialized(l)) {
            samplers[b]->ResetLane(l, picked.inner.center);
            samplers[b]->WalkLanes(10 * walk, &member[idx], 1,
                                   &member_rng[idx]);  // burn-in
            steps[l] += 10 * walk;
          }
        }
        samplers[b]->WalkLanes(walk, member.data(), count, member_rng.data());
        for (int idx = 0; idx < count; ++idx) {
          const int l = member[idx];
          steps[l] += walk;
          samplers[b]->GetCurrent(l, &x);
          // m(x) over *unique* members: the union is a set, so duplicates
          // must not inflate the ownership count (nor cost Contains scans).
          int owners = 0;
          for (int j = 0; j < u; ++j) {
            if (uniq_volume[j] > 0 && bodies[uniq[j]].body.Contains(x)) {
              ++owners;
            }
          }
          // x came from body b, so owners >= 1 (up to numerical tolerance).
          owners = std::max(owners, 1);
          sum_inv[l] += 1.0 / owners;
        }
      }
    }
    for (int l = 0; l < width; ++l) {
      partial[first + l] = sum_inv[l];
      chunk_steps[first + l] = steps[l];
    }
  };
  {
    obs::Span kl_span("volume.karp_luby");
    if (kl_span.recording()) {
      kl_span.Annotate("samples", static_cast<double>(num_samples));
      kl_span.Annotate("chunks", static_cast<double>(chunks));
      kl_span.Annotate("unique_bodies", static_cast<double>(u));
    }
    util::ThreadPool::RunGrid(options.pool, static_cast<int>(groups.size()),
                              run_group);
  }
  // Fixed-order reduction: float addition is not associative, so summing in
  // chunk order is what makes the estimate independent of scheduling.
  double sum_inv = 0.0;
  for (int c = 0; c < chunks; ++c) {
    sum_inv += partial[c];
    result.steps += chunk_steps[c];
  }
  result.volume = total * sum_inv / num_samples;
  return result;
}

}  // namespace mudb::volume
