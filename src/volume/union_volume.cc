#include "src/volume/union_volume.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "src/convex/sampler.h"

namespace mudb::volume {

namespace {

// Chunk grid for the Karp–Luby loop: each chunk owns private hit-and-run
// chains (one per body it actually picks, burn-in included), so chunks must
// be large enough to amortize those burn-ins over their samples. A function
// of the budget and body count only — never the thread count.
int NumChunks(int num_samples, int num_bodies) {
  int min_chunk_samples = std::max(256, 20 * num_bodies);
  return std::clamp(num_samples / min_chunk_samples, 1, 64);
}

}  // namespace

util::StatusOr<UnionVolumeResult> EstimateUnionVolume(
    const std::vector<SeededBody>& bodies, const UnionVolumeOptions& options,
    util::Rng& rng) {
  UnionVolumeResult result;
  if (bodies.empty()) return result;
  const int m = static_cast<int>(bodies.size());
  // Forked exactly once, up front, whatever the dedup/cache outcome: the
  // caller-visible rng consumption must not depend on batch composition.
  util::Rng base = rng.Fork();

  // Canonical dedup: identical bodies collapse onto their first occurrence.
  // `uniq` holds first-occurrence input indices in input order, so the
  // deduped body list — and everything derived from it — is independent of
  // how many duplicates follow.
  std::vector<int> uniq;
  std::vector<int> uniq_of(m, -1);  // input index -> index into `uniq`
  std::vector<convex::CanonicalBodyKey> uniq_key;
  {
    std::unordered_map<convex::CanonicalBodyKey, int,
                       convex::CanonicalBodyKey::Hash>
        seen;
    seen.reserve(m);
    for (int i = 0; i < m; ++i) {
      convex::CanonicalBodyKey key = CanonicalizeBody(bodies[i].body);
      auto [it, inserted] =
          seen.emplace(key, static_cast<int>(uniq.size()));
      if (inserted) {
        uniq.push_back(i);
        uniq_key.push_back(key);
      }
      uniq_of[i] = it->second;
    }
  }
  const int u = static_cast<int>(uniq.size());
  result.unique_bodies = u;

  // Per-unique-body volume estimates. Each estimate draws from the RNG
  // stream owned by its (body × tier) key — a pure function of content, so
  // an external cache hit replays exactly what recomputation would produce.
  // The bodies run sequentially — EstimateVolume itself fans each annealing
  // phase out on body_volume.pool, which keeps the parallelism flat (no
  // nested ParallelFor) while saturating the workers even for a single body.
  std::vector<double> uniq_volume(u);
  double total = 0.0;
  for (int s = 0; s < u; ++s) {
    // The cache key pins everything the estimate is bitwise a function of:
    // the canonical content, the raw representation of the body actually
    // walked (row order perturbs LP-seeded inner balls; rescaling perturbs
    // chord arithmetic), the ε tier, and the caller's seed path (base is a
    // pure function of the caller rng — so distinct seeds keep distinct
    // sample paths while same-seed calls, the serving layer's batches,
    // share).
    const SeededBody& rep = bodies[uniq[s]];
    convex::CanonicalBodyKey tier_key = convex::CombineKeyWithParams(
        uniq_key[s],
        convex::RawBodyFingerprint(rep.body, rep.inner.center,
                                   rep.inner.radius, rep.outer_radius_bound),
        options.body_volume.epsilon, options.body_volume.walk_steps,
        options.body_volume.samples_per_phase, base.seed());
    std::optional<CachedBodyEstimate> cached;
    if (options.body_cache != nullptr) {
      cached = options.body_cache->Lookup(tier_key);
    }
    if (cached.has_value()) {
      uniq_volume[s] = cached->volume;
      ++result.body_cache_hits;
    } else {
      util::Rng body_rng = convex::RngForKey(tier_key);
      convex::VolumeEstimate est = convex::EstimateVolume(
          rep.body, rep.inner, rep.outer_radius_bound, options.body_volume,
          body_rng);
      uniq_volume[s] = est.volume;
      result.steps += est.steps;
      if (options.body_cache != nullptr) {
        options.body_cache->Insert(
            tier_key, CachedBodyEstimate{est.volume, est.steps, est.phases});
      }
    }
    total += uniq_volume[s];
  }
  result.body_volumes.resize(m);
  for (int i = 0; i < m; ++i) {
    result.body_volumes[i] = uniq_volume[uniq_of[i]];
  }
  if (total <= 0.0) return result;

  // A one-body union needs no Karp–Luby correction: m(x) = 1 for every
  // sample, so the loop would estimate exactly 1 at full sampling cost.
  if (u == 1) {
    result.volume = uniq_volume[0];
    return result;
  }

  // Cumulative distribution for unique-body selection proportional to
  // volume.
  std::vector<double> cdf(u);
  double acc = 0.0;
  for (int s = 0; s < u; ++s) {
    acc += uniq_volume[s];
    cdf[s] = acc / total;
  }

  int dim = bodies[0].body.dim();
  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * dim;
  int num_samples = options.num_samples;
  if (num_samples <= 0) {
    double s = 12.0 * u / (options.epsilon * options.epsilon);
    num_samples = static_cast<int>(std::clamp(s, 1000.0, 2000000.0));
  }

  const int chunks = NumChunks(num_samples, u);
  std::vector<double> partial(chunks);
  std::vector<int64_t> chunk_steps(chunks);
  auto run_chunk = [&](int64_t c) {
    int samples = num_samples / chunks + (c < num_samples % chunks ? 1 : 0);
    util::Rng chunk_rng = base.Split(c);
    // Chains are created on first pick and persist (warm) across this
    // chunk's samples; every draw comes from chunk_rng, so the chunk's
    // sample path is a function of its substream alone.
    std::vector<std::unique_ptr<convex::HitAndRunSampler>> samplers(u);
    double sum_inv = 0.0;
    int64_t steps = 0;
    for (int s = 0; s < samples; ++s) {
      double pick_u = chunk_rng.Uniform01();
      int pick = static_cast<int>(
          std::lower_bound(cdf.begin(), cdf.end(), pick_u) - cdf.begin());
      pick = std::min(pick, u - 1);
      const SeededBody& picked = bodies[uniq[pick]];
      if (samplers[pick] == nullptr) {
        samplers[pick] = std::make_unique<convex::HitAndRunSampler>(
            &picked.body, picked.inner.center);
        samplers[pick]->Walk(10 * walk, chunk_rng);  // burn-in
        steps += 10 * walk;
      }
      samplers[pick]->Walk(walk, chunk_rng);
      steps += walk;
      const geom::Vec& x = samplers[pick]->current();
      // m(x) over *unique* members: the union is a set, so duplicates must
      // not inflate the ownership count (nor cost Contains scans).
      int owners = 0;
      for (int j = 0; j < u; ++j) {
        if (uniq_volume[j] > 0 && bodies[uniq[j]].body.Contains(x)) ++owners;
      }
      // x came from body `pick`, so owners >= 1 (up to numerical tolerance).
      owners = std::max(owners, 1);
      sum_inv += 1.0 / owners;
    }
    partial[c] = sum_inv;
    chunk_steps[c] = steps;
  };
  util::ThreadPool::RunGrid(options.pool, chunks, run_chunk);
  // Fixed-order reduction: float addition is not associative, so summing in
  // chunk order is what makes the estimate independent of scheduling.
  double sum_inv = 0.0;
  for (int c = 0; c < chunks; ++c) {
    sum_inv += partial[c];
    result.steps += chunk_steps[c];
  }
  result.volume = total * sum_inv / num_samples;
  return result;
}

}  // namespace mudb::volume
