#include "src/volume/union_volume.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/convex/sampler.h"

namespace mudb::volume {

util::StatusOr<UnionVolumeResult> EstimateUnionVolume(
    const std::vector<SeededBody>& bodies, const UnionVolumeOptions& options,
    util::Rng& rng) {
  UnionVolumeResult result;
  if (bodies.empty()) return result;
  const int m = static_cast<int>(bodies.size());

  // Per-body volume estimates.
  result.body_volumes.resize(m);
  double total = 0.0;
  for (int i = 0; i < m; ++i) {
    convex::VolumeEstimate est = convex::EstimateVolume(
        bodies[i].body, bodies[i].inner, bodies[i].outer_radius_bound,
        options.body_volume, rng);
    result.body_volumes[i] = est.volume;
    total += est.volume;
  }
  if (total <= 0.0) return result;

  // Cumulative distribution for body selection proportional to volume.
  std::vector<double> cdf(m);
  double acc = 0.0;
  for (int i = 0; i < m; ++i) {
    acc += result.body_volumes[i];
    cdf[i] = acc / total;
  }

  // One persistent hit-and-run chain per body (warm across samples).
  std::vector<std::unique_ptr<convex::HitAndRunSampler>> samplers;
  samplers.reserve(m);
  int dim = bodies[0].body.dim();
  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * dim;
  for (int i = 0; i < m; ++i) {
    samplers.push_back(std::make_unique<convex::HitAndRunSampler>(
        &bodies[i].body, bodies[i].inner.center));
    samplers.back()->Walk(10 * walk, rng);
  }

  int num_samples = options.num_samples;
  if (num_samples <= 0) {
    double s = 12.0 * m / (options.epsilon * options.epsilon);
    num_samples = static_cast<int>(std::clamp(s, 1000.0, 2000000.0));
  }

  double sum_inv = 0.0;
  for (int s = 0; s < num_samples; ++s) {
    double u = rng.Uniform01();
    int pick = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    pick = std::min(pick, m - 1);
    samplers[pick]->Walk(walk, rng);
    const geom::Vec& x = samplers[pick]->current();
    int owners = 0;
    for (int j = 0; j < m; ++j) {
      if (result.body_volumes[j] > 0 && bodies[j].body.Contains(x)) ++owners;
    }
    // x came from body `pick`, so owners >= 1 (up to numerical tolerance).
    owners = std::max(owners, 1);
    sum_inv += 1.0 / owners;
  }
  result.volume = total * sum_inv / num_samples;
  return result;
}

}  // namespace mudb::volume
