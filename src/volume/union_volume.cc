#include "src/volume/union_volume.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/convex/sampler.h"

namespace mudb::volume {

namespace {

// Chunk grid for the Karp–Luby loop: each chunk owns private hit-and-run
// chains (one per body it actually picks, burn-in included), so chunks must
// be large enough to amortize those burn-ins over their samples. A function
// of the budget and body count only — never the thread count.
int NumChunks(int num_samples, int num_bodies) {
  int min_chunk_samples = std::max(256, 20 * num_bodies);
  return std::clamp(num_samples / min_chunk_samples, 1, 64);
}

}  // namespace

util::StatusOr<UnionVolumeResult> EstimateUnionVolume(
    const std::vector<SeededBody>& bodies, const UnionVolumeOptions& options,
    util::Rng& rng) {
  UnionVolumeResult result;
  if (bodies.empty()) return result;
  const int m = static_cast<int>(bodies.size());

  // Per-body volume estimates; body i draws from substream i. The bodies run
  // sequentially — EstimateVolume itself fans each annealing phase out on
  // body_volume.pool, which keeps the parallelism flat (no nested
  // ParallelFor) while saturating the workers even for a single body.
  result.body_volumes.resize(m);
  double total = 0.0;
  util::Rng base = rng.Fork();
  for (int i = 0; i < m; ++i) {
    util::Rng body_rng = base.Split(i);
    convex::VolumeEstimate est = convex::EstimateVolume(
        bodies[i].body, bodies[i].inner, bodies[i].outer_radius_bound,
        options.body_volume, body_rng);
    result.body_volumes[i] = est.volume;
    result.steps += est.steps;
    total += est.volume;
  }
  if (total <= 0.0) return result;

  // Cumulative distribution for body selection proportional to volume.
  std::vector<double> cdf(m);
  double acc = 0.0;
  for (int i = 0; i < m; ++i) {
    acc += result.body_volumes[i];
    cdf[i] = acc / total;
  }

  int dim = bodies[0].body.dim();
  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * dim;
  int num_samples = options.num_samples;
  if (num_samples <= 0) {
    double s = 12.0 * m / (options.epsilon * options.epsilon);
    num_samples = static_cast<int>(std::clamp(s, 1000.0, 2000000.0));
  }

  const int chunks = NumChunks(num_samples, m);
  std::vector<double> partial(chunks);
  std::vector<int64_t> chunk_steps(chunks);
  auto run_chunk = [&](int64_t c) {
    int samples = num_samples / chunks + (c < num_samples % chunks ? 1 : 0);
    util::Rng chunk_rng = base.Split(m + c);
    // Chains are created on first pick and persist (warm) across this
    // chunk's samples; every draw comes from chunk_rng, so the chunk's
    // sample path is a function of its substream alone.
    std::vector<std::unique_ptr<convex::HitAndRunSampler>> samplers(m);
    double sum_inv = 0.0;
    int64_t steps = 0;
    for (int s = 0; s < samples; ++s) {
      double u = chunk_rng.Uniform01();
      int pick = static_cast<int>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      pick = std::min(pick, m - 1);
      if (samplers[pick] == nullptr) {
        samplers[pick] = std::make_unique<convex::HitAndRunSampler>(
            &bodies[pick].body, bodies[pick].inner.center);
        samplers[pick]->Walk(10 * walk, chunk_rng);  // burn-in
        steps += 10 * walk;
      }
      samplers[pick]->Walk(walk, chunk_rng);
      steps += walk;
      const geom::Vec& x = samplers[pick]->current();
      int owners = 0;
      for (int j = 0; j < m; ++j) {
        if (result.body_volumes[j] > 0 && bodies[j].body.Contains(x)) ++owners;
      }
      // x came from body `pick`, so owners >= 1 (up to numerical tolerance).
      owners = std::max(owners, 1);
      sum_inv += 1.0 / owners;
    }
    partial[c] = sum_inv;
    chunk_steps[c] = steps;
  };
  util::ThreadPool::RunGrid(options.pool, chunks, run_chunk);
  // Fixed-order reduction: float addition is not associative, so summing in
  // chunk order is what makes the estimate independent of scheduling.
  double sum_inv = 0.0;
  for (int c = 0; c < chunks; ++c) {
    sum_inv += partial[c];
    result.steps += chunk_steps[c];
  }
  result.volume = total * sum_inv / num_samples;
  return result;
}

}  // namespace mudb::volume
