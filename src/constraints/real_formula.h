// Quantifier-free formulae over the real field ⟨R, +, ·, <⟩.
//
// The grounding of Prop. 5.3 turns (query, database, candidate tuple) into a
// boolean combination of polynomial atoms p(z) ◦ 0 over variables z_1..z_k,
// one per numeric null. This module provides:
//   * point evaluation  (used by tests and the engine),
//   * asymptotic evaluation along a direction (Lemmas 8.2/8.4: the inner loop
//     of the AFPRAS),
//   * NNF / DNF conversion and linear homogenization (needed by the FPRAS of
//     Thm. 7.1),
//   * structural simplification.

#ifndef MUDB_SRC_CONSTRAINTS_REAL_FORMULA_H_
#define MUDB_SRC_CONSTRAINTS_REAL_FORMULA_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/poly/polynomial.h"
#include "src/util/status.h"

namespace mudb::constraints {

/// Comparison of a polynomial against zero.
enum class CmpOp { kLt, kLe, kEq, kNeq, kGe, kGt };

const char* CmpOpToString(CmpOp op);
/// The complement comparison: ¬(p < 0) is (p >= 0), etc.
CmpOp NegateCmpOp(CmpOp op);
/// Truth of `sign ◦ 0` where sign ∈ {-1, 0, +1}.
bool CmpTruthFromSign(CmpOp op, int sign);

/// An atomic constraint p(z) ◦ 0.
struct RealAtom {
  poly::Polynomial poly;
  CmpOp op;

  bool EvaluateAt(const std::vector<double>& point) const;

  /// Truth of the atom along direction a for k → ∞ (Lemma 8.4): the sign of
  /// p(k·a) for large k is the sign of the leading nonzero coefficient of the
  /// univariate restriction. Coefficients below `tol` (absolute) are zero.
  bool AsymptoticTruth(const std::vector<double>& a, double tol) const;

  /// Mixed variant for conditional measures: variables with scaled[i] true
  /// are sent to infinity along a_i, the others held at the value a_i.
  bool AsymptoticTruthPartial(const std::vector<double>& a,
                              const std::vector<bool>& scaled,
                              double tol) const;

  /// The same atom with the comparison complemented.
  RealAtom Negated() const { return {poly, NegateCmpOp(op)}; }

  std::string ToString() const;

  bool operator==(const RealAtom& other) const {
    return op == other.op && poly == other.poly;
  }
};

/// A conjunction of atoms: one disjunct of a DNF.
using Conjunction = std::vector<RealAtom>;

/// A quantifier-free formula: boolean tree over RealAtoms. Value type.
class RealFormula {
 public:
  enum class Kind { kTrue, kFalse, kAtom, kAnd, kOr, kNot };

  /// The formula "true".
  static RealFormula True();
  /// The formula "false".
  static RealFormula False();
  static RealFormula Atom(RealAtom atom);
  /// Convenience: p ◦ 0.
  static RealFormula Cmp(poly::Polynomial p, CmpOp op);
  /// n-ary conjunction; empty = true. Constant children are folded.
  static RealFormula And(std::vector<RealFormula> children);
  /// n-ary disjunction; empty = false. Constant children are folded.
  static RealFormula Or(std::vector<RealFormula> children);
  static RealFormula Not(RealFormula child);

  RealFormula() : kind_(Kind::kTrue) {}

  Kind kind() const { return kind_; }
  bool is_constant() const {
    return kind_ == Kind::kTrue || kind_ == Kind::kFalse;
  }
  /// The atom; requires kind() == kAtom.
  const RealAtom& atom() const;
  const std::vector<RealFormula>& children() const { return children_; }

  /// Number of atoms in the tree.
  size_t AtomCount() const;
  /// 1 + the largest variable index mentioned by any atom.
  int NumVariables() const;
  /// True if every atom's polynomial is affine (the CQ(+,<) image).
  bool IsLinear() const;
  /// Collects all atoms (duplicates included, pre-order).
  void CollectAtoms(std::vector<RealAtom>* out) const;
  /// Indices of variables actually occurring in some atom.
  std::set<int> UsedVariables() const;
  /// Renames variables according to new_index (see Polynomial::RemapVariables).
  RealFormula RemapVariables(const std::vector<int>& new_index) const;

  /// Truth at a point.
  bool EvaluateAt(const std::vector<double>& point) const;

  /// lim_{k→∞} f_{φ,a}(k) (Lemma 8.2 guarantees the limit exists; this
  /// computes it via per-atom leading-coefficient analysis, Lemma 8.4).
  /// `tol` is the absolute coefficient tolerance.
  bool AsymptoticTruth(const std::vector<double>& a, double tol = 1e-12) const;

  /// Mixed asymptotic/pointwise truth (see RealAtom::AsymptoticTruthPartial).
  bool AsymptoticTruthPartial(const std::vector<double>& a,
                              const std::vector<bool>& scaled,
                              double tol = 1e-12) const;

  /// Negation-normal form: negations pushed onto atoms (atoms absorb them by
  /// complementing the comparison, so the result is negation-free).
  RealFormula ToNnf() const;

  /// Disjunctive normal form as a list of conjunctions. Fails with
  /// ResourceExhausted if the DNF would exceed `max_disjuncts`.
  util::StatusOr<std::vector<Conjunction>> ToDnf(
      size_t max_disjuncts = 100000) const;

  std::string ToString() const;

 private:
  Kind kind_;
  std::vector<RealAtom> atom_;           // size 1 iff kind == kAtom
  std::vector<RealFormula> children_;    // for kAnd/kOr/kNot
};

/// Homogenizes a conjunction of *linear* atoms: drops the constant term of
/// every atom (c·z ◦ c' becomes c·z ◦ 0). Precondition: all atoms linear.
/// This is the φ → φ̃ step of Thm. 7.1; ν(φ) equals the unit-ball volume
/// fraction of φ̃ (cf. [11]).
Conjunction HomogenizeLinear(const Conjunction& conj);

/// Renders φ with variable names supplied by `var_name` — e.g. the original
/// null marks via a GroundResult/EvalResult null_order:
///   FormatFormula(f, [&](int i) { return "⊤" + std::to_string(order[i]); })
std::string FormatFormula(const RealFormula& formula,
                          const std::function<std::string(int)>& var_name);

std::ostream& operator<<(std::ostream& os, const RealFormula& f);

}  // namespace mudb::constraints

#endif  // MUDB_SRC_CONSTRAINTS_REAL_FORMULA_H_
