#include "src/constraints/real_formula.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "src/poly/univariate.h"

namespace mudb::constraints {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNeq:
      return "!=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
  }
  return "?";
}

CmpOp NegateCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kEq:
      return CmpOp::kNeq;
    case CmpOp::kNeq:
      return CmpOp::kEq;
    case CmpOp::kGe:
      return CmpOp::kLt;
    case CmpOp::kGt:
      return CmpOp::kLe;
  }
  return CmpOp::kEq;
}

bool CmpTruthFromSign(CmpOp op, int sign) {
  switch (op) {
    case CmpOp::kLt:
      return sign < 0;
    case CmpOp::kLe:
      return sign <= 0;
    case CmpOp::kEq:
      return sign == 0;
    case CmpOp::kNeq:
      return sign != 0;
    case CmpOp::kGe:
      return sign >= 0;
    case CmpOp::kGt:
      return sign > 0;
  }
  return false;
}

bool RealAtom::EvaluateAt(const std::vector<double>& point) const {
  double v = poly.Evaluate(point);
  int sign = v > 0 ? 1 : (v < 0 ? -1 : 0);
  return CmpTruthFromSign(op, sign);
}

bool RealAtom::AsymptoticTruth(const std::vector<double>& a,
                               double tol) const {
  std::vector<double> restricted = poly.RestrictToDirection(a);
  int sign = poly::AsymptoticSign(restricted, tol);
  return CmpTruthFromSign(op, sign);
}

bool RealAtom::AsymptoticTruthPartial(const std::vector<double>& a,
                                      const std::vector<bool>& scaled,
                                      double tol) const {
  std::vector<double> restricted = poly.RestrictToDirectionPartial(a, scaled);
  int sign = poly::AsymptoticSign(restricted, tol);
  return CmpTruthFromSign(op, sign);
}

std::string RealAtom::ToString() const {
  return poly.ToString() + " " + CmpOpToString(op) + " 0";
}

RealFormula RealFormula::True() {
  RealFormula f;
  f.kind_ = Kind::kTrue;
  return f;
}

RealFormula RealFormula::False() {
  RealFormula f;
  f.kind_ = Kind::kFalse;
  return f;
}

RealFormula RealFormula::Atom(RealAtom atom) {
  // Fold atoms over constant polynomials immediately.
  if (atom.poly.IsConstant()) {
    double c = atom.poly.ConstantTerm();
    int sign = c > 0 ? 1 : (c < 0 ? -1 : 0);
    return CmpTruthFromSign(atom.op, sign) ? True() : False();
  }
  RealFormula f;
  f.kind_ = Kind::kAtom;
  f.atom_.push_back(std::move(atom));
  return f;
}

RealFormula RealFormula::Cmp(poly::Polynomial p, CmpOp op) {
  return Atom(RealAtom{std::move(p), op});
}

RealFormula RealFormula::And(std::vector<RealFormula> children) {
  std::vector<RealFormula> kept;
  for (RealFormula& c : children) {
    if (c.kind_ == Kind::kFalse) return False();
    if (c.kind_ == Kind::kTrue) continue;
    if (c.kind_ == Kind::kAnd) {
      for (RealFormula& g : c.children_) kept.push_back(std::move(g));
    } else {
      kept.push_back(std::move(c));
    }
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return std::move(kept[0]);
  RealFormula f;
  f.kind_ = Kind::kAnd;
  f.children_ = std::move(kept);
  return f;
}

RealFormula RealFormula::Or(std::vector<RealFormula> children) {
  std::vector<RealFormula> kept;
  for (RealFormula& c : children) {
    if (c.kind_ == Kind::kTrue) return True();
    if (c.kind_ == Kind::kFalse) continue;
    if (c.kind_ == Kind::kOr) {
      for (RealFormula& g : c.children_) kept.push_back(std::move(g));
    } else {
      kept.push_back(std::move(c));
    }
  }
  if (kept.empty()) return False();
  if (kept.size() == 1) return std::move(kept[0]);
  RealFormula f;
  f.kind_ = Kind::kOr;
  f.children_ = std::move(kept);
  return f;
}

RealFormula RealFormula::Not(RealFormula child) {
  switch (child.kind_) {
    case Kind::kTrue:
      return False();
    case Kind::kFalse:
      return True();
    case Kind::kAtom:
      return Atom(child.atom_[0].Negated());
    case Kind::kNot:
      return std::move(child.children_[0]);
    default:
      break;
  }
  RealFormula f;
  f.kind_ = Kind::kNot;
  f.children_.push_back(std::move(child));
  return f;
}

const RealAtom& RealFormula::atom() const {
  MUDB_CHECK(kind_ == Kind::kAtom);
  return atom_[0];
}

size_t RealFormula::AtomCount() const {
  if (kind_ == Kind::kAtom) return 1;
  size_t n = 0;
  for (const RealFormula& c : children_) n += c.AtomCount();
  return n;
}

int RealFormula::NumVariables() const {
  if (kind_ == Kind::kAtom) return atom_[0].poly.NumVariables();
  int n = 0;
  for (const RealFormula& c : children_) n = std::max(n, c.NumVariables());
  return n;
}

bool RealFormula::IsLinear() const {
  if (kind_ == Kind::kAtom) return atom_[0].poly.IsLinear();
  for (const RealFormula& c : children_) {
    if (!c.IsLinear()) return false;
  }
  return true;
}

void RealFormula::CollectAtoms(std::vector<RealAtom>* out) const {
  if (kind_ == Kind::kAtom) {
    out->push_back(atom_[0]);
    return;
  }
  for (const RealFormula& c : children_) c.CollectAtoms(out);
}

std::set<int> RealFormula::UsedVariables() const {
  std::set<int> out;
  std::vector<RealAtom> atoms;
  CollectAtoms(&atoms);
  for (const RealAtom& a : atoms) a.poly.CollectVariableIndices(&out);
  return out;
}

RealFormula RealFormula::RemapVariables(
    const std::vector<int>& new_index) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kAtom:
      return Atom(
          RealAtom{atom_[0].poly.RemapVariables(new_index), atom_[0].op});
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      std::vector<RealFormula> cs;
      cs.reserve(children_.size());
      for (const RealFormula& c : children_) {
        cs.push_back(c.RemapVariables(new_index));
      }
      if (kind_ == Kind::kAnd) return And(std::move(cs));
      if (kind_ == Kind::kOr) return Or(std::move(cs));
      return Not(std::move(cs[0]));
    }
  }
  return *this;
}

bool RealFormula::EvaluateAt(const std::vector<double>& point) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return atom_[0].EvaluateAt(point);
    case Kind::kAnd:
      for (const RealFormula& c : children_) {
        if (!c.EvaluateAt(point)) return false;
      }
      return true;
    case Kind::kOr:
      for (const RealFormula& c : children_) {
        if (c.EvaluateAt(point)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0].EvaluateAt(point);
  }
  return false;
}

bool RealFormula::AsymptoticTruth(const std::vector<double>& a,
                                  double tol) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return atom_[0].AsymptoticTruth(a, tol);
    case Kind::kAnd:
      for (const RealFormula& c : children_) {
        if (!c.AsymptoticTruth(a, tol)) return false;
      }
      return true;
    case Kind::kOr:
      for (const RealFormula& c : children_) {
        if (c.AsymptoticTruth(a, tol)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0].AsymptoticTruth(a, tol);
  }
  return false;
}

bool RealFormula::AsymptoticTruthPartial(const std::vector<double>& a,
                                         const std::vector<bool>& scaled,
                                         double tol) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return atom_[0].AsymptoticTruthPartial(a, scaled, tol);
    case Kind::kAnd:
      for (const RealFormula& c : children_) {
        if (!c.AsymptoticTruthPartial(a, scaled, tol)) return false;
      }
      return true;
    case Kind::kOr:
      for (const RealFormula& c : children_) {
        if (c.AsymptoticTruthPartial(a, scaled, tol)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0].AsymptoticTruthPartial(a, scaled, tol);
  }
  return false;
}

RealFormula RealFormula::ToNnf() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return *this;
    case Kind::kAnd: {
      std::vector<RealFormula> cs;
      cs.reserve(children_.size());
      for (const RealFormula& c : children_) cs.push_back(c.ToNnf());
      return And(std::move(cs));
    }
    case Kind::kOr: {
      std::vector<RealFormula> cs;
      cs.reserve(children_.size());
      for (const RealFormula& c : children_) cs.push_back(c.ToNnf());
      return Or(std::move(cs));
    }
    case Kind::kNot: {
      const RealFormula& g = children_[0];
      switch (g.kind_) {
        case Kind::kTrue:
          return False();
        case Kind::kFalse:
          return True();
        case Kind::kAtom:
          return Atom(g.atom_[0].Negated());
        case Kind::kNot:
          return g.children_[0].ToNnf();
        case Kind::kAnd: {
          std::vector<RealFormula> cs;
          for (const RealFormula& c : g.children_) {
            cs.push_back(Not(c).ToNnf());
          }
          return Or(std::move(cs));
        }
        case Kind::kOr: {
          std::vector<RealFormula> cs;
          for (const RealFormula& c : g.children_) {
            cs.push_back(Not(c).ToNnf());
          }
          return And(std::move(cs));
        }
      }
      break;
    }
  }
  return *this;
}

namespace {

util::Status DnfOfNnf(const RealFormula& f, size_t max_disjuncts,
                      std::vector<Conjunction>* out) {
  switch (f.kind()) {
    case RealFormula::Kind::kTrue:
      out->push_back({});  // empty conjunction = true
      return util::Status::OK();
    case RealFormula::Kind::kFalse:
      return util::Status::OK();
    case RealFormula::Kind::kAtom:
      out->push_back({f.atom()});
      return util::Status::OK();
    case RealFormula::Kind::kOr: {
      for (const RealFormula& c : f.children()) {
        MUDB_RETURN_IF_ERROR(DnfOfNnf(c, max_disjuncts, out));
        if (out->size() > max_disjuncts) {
          return util::Status::ResourceExhausted("DNF too large");
        }
      }
      return util::Status::OK();
    }
    case RealFormula::Kind::kAnd: {
      std::vector<Conjunction> acc{{}};
      for (const RealFormula& c : f.children()) {
        std::vector<Conjunction> child_dnf;
        MUDB_RETURN_IF_ERROR(DnfOfNnf(c, max_disjuncts, &child_dnf));
        std::vector<Conjunction> next;
        next.reserve(acc.size() * child_dnf.size());
        for (const Conjunction& left : acc) {
          for (const Conjunction& right : child_dnf) {
            Conjunction merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (next.size() > max_disjuncts) {
              return util::Status::ResourceExhausted("DNF too large");
            }
          }
        }
        acc = std::move(next);
        if (acc.empty()) break;  // a child was unsatisfiable (empty DNF)
      }
      for (Conjunction& c : acc) out->push_back(std::move(c));
      return util::Status::OK();
    }
    case RealFormula::Kind::kNot:
      return util::Status::Internal("DNF conversion expects NNF input");
  }
  return util::Status::Internal("unreachable");
}

}  // namespace

util::StatusOr<std::vector<Conjunction>> RealFormula::ToDnf(
    size_t max_disjuncts) const {
  std::vector<Conjunction> out;
  MUDB_RETURN_IF_ERROR(DnfOfNnf(ToNnf(), max_disjuncts, &out));
  return out;
}

Conjunction HomogenizeLinear(const Conjunction& conj) {
  Conjunction out;
  out.reserve(conj.size());
  for (const RealAtom& atom : conj) {
    MUDB_CHECK(atom.poly.IsLinear());
    out.push_back(RealAtom{atom.poly.DropConstant(), atom.op});
  }
  return out;
}

std::string RealFormula::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom_[0].ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::ostringstream out;
      out << "(";
      const char* sep = kind_ == Kind::kAnd ? " && " : " || ";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << sep;
        out << children_[i].ToString();
      }
      out << ")";
      return out.str();
    }
    case Kind::kNot:
      return "!(" + children_[0].ToString() + ")";
  }
  return "?";
}

std::string FormatFormula(const RealFormula& formula,
                          const std::function<std::string(int)>& var_name) {
  switch (formula.kind()) {
    case RealFormula::Kind::kTrue:
      return "true";
    case RealFormula::Kind::kFalse:
      return "false";
    case RealFormula::Kind::kAtom:
      return formula.atom().poly.ToString(var_name) + " " +
             CmpOpToString(formula.atom().op) + " 0";
    case RealFormula::Kind::kAnd:
    case RealFormula::Kind::kOr: {
      std::ostringstream out;
      out << "(";
      const char* sep =
          formula.kind() == RealFormula::Kind::kAnd ? " && " : " || ";
      for (size_t i = 0; i < formula.children().size(); ++i) {
        if (i > 0) out << sep;
        out << FormatFormula(formula.children()[i], var_name);
      }
      out << ")";
      return out.str();
    }
    case RealFormula::Kind::kNot:
      return "!(" + FormatFormula(formula.children()[0], var_name) + ")";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const RealFormula& f) {
  return os << f.ToString();
}

}  // namespace mudb::constraints
