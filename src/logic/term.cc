#include "src/logic/term.h"

#include <sstream>

namespace mudb::logic {

Term Term::Var(std::string name) {
  Term t;
  t.kind_ = Kind::kVar;
  t.name_ = std::move(name);
  return t;
}

Term Term::Const(double value) {
  Term t;
  t.kind_ = Kind::kConst;
  t.value_ = value;
  return t;
}

Term Term::Add(Term lhs, Term rhs) {
  Term t;
  t.kind_ = Kind::kAdd;
  t.children_.push_back(std::move(lhs));
  t.children_.push_back(std::move(rhs));
  return t;
}

Term Term::Mul(Term lhs, Term rhs) {
  Term t;
  t.kind_ = Kind::kMul;
  t.children_.push_back(std::move(lhs));
  t.children_.push_back(std::move(rhs));
  return t;
}

Term Term::Neg(Term operand) {
  Term t;
  t.kind_ = Kind::kNeg;
  t.children_.push_back(std::move(operand));
  return t;
}

const std::string& Term::var_name() const {
  MUDB_CHECK(kind_ == Kind::kVar);
  return name_;
}

double Term::const_value() const {
  MUDB_CHECK(kind_ == Kind::kConst);
  return value_;
}

void Term::CollectVariables(std::set<std::string>* out) const {
  if (kind_ == Kind::kVar) {
    out->insert(name_);
    return;
  }
  for (const Term& c : children_) c.CollectVariables(out);
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVar:
      return name_;
    case Kind::kConst: {
      std::ostringstream out;
      out << value_;
      return out.str();
    }
    case Kind::kAdd:
      return "(" + children_[0].ToString() + " + " + children_[1].ToString() +
             ")";
    case Kind::kMul:
      return "(" + children_[0].ToString() + " * " + children_[1].ToString() +
             ")";
    case Kind::kNeg:
      return "-(" + children_[0].ToString() + ")";
  }
  return "?";
}

}  // namespace mudb::logic
