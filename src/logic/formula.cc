#include "src/logic/formula.h"

#include <algorithm>
#include <sstream>

namespace mudb::logic {

Formula Formula::Rel(std::string relation, std::vector<AtomArg> args) {
  Formula f;
  f.kind_ = Kind::kRelAtom;
  f.relation_ = std::move(relation);
  f.args_ = std::move(args);
  return f;
}

Formula Formula::BaseEq(BaseArg lhs, BaseArg rhs) {
  Formula f;
  f.kind_ = Kind::kBaseEq;
  f.base_args_.push_back(std::move(lhs));
  f.base_args_.push_back(std::move(rhs));
  return f;
}

Formula Formula::Cmp(Term lhs, CmpOp op, Term rhs) {
  Formula f;
  f.kind_ = Kind::kCmp;
  f.terms_.push_back(std::move(lhs));
  f.terms_.push_back(std::move(rhs));
  f.cmp_op_ = op;
  return f;
}

Formula Formula::And(std::vector<Formula> children) {
  Formula f;
  f.kind_ = Kind::kAnd;
  f.children_ = std::move(children);
  return f;
}

Formula Formula::Or(std::vector<Formula> children) {
  Formula f;
  f.kind_ = Kind::kOr;
  f.children_ = std::move(children);
  return f;
}

Formula Formula::Not(Formula child) {
  Formula f;
  f.kind_ = Kind::kNot;
  f.children_.push_back(std::move(child));
  return f;
}

Formula Formula::Exists(TypedVar var, Formula child) {
  Formula f;
  f.kind_ = Kind::kExists;
  f.qvar_ = std::move(var);
  f.children_.push_back(std::move(child));
  return f;
}

Formula Formula::Forall(TypedVar var, Formula child) {
  Formula f;
  f.kind_ = Kind::kForall;
  f.qvar_ = std::move(var);
  f.children_.push_back(std::move(child));
  return f;
}

Formula Formula::ExistsMany(std::vector<TypedVar> vars, Formula child) {
  Formula f = std::move(child);
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    f = Exists(*it, std::move(f));
  }
  return f;
}

Formula Formula::ForallMany(std::vector<TypedVar> vars, Formula child) {
  Formula f = std::move(child);
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    f = Forall(*it, std::move(f));
  }
  return f;
}

Formula Formula::Implies(Formula lhs, Formula rhs) {
  std::vector<Formula> children;
  children.push_back(Not(std::move(lhs)));
  children.push_back(std::move(rhs));
  return Or(std::move(children));
}

void Formula::CollectFree(std::set<std::string>* bound,
                          std::map<std::string, model::Sort>* free) const {
  auto add = [&](const std::string& name, model::Sort sort) {
    if (bound->count(name) == 0) free->emplace(name, sort);
  };
  switch (kind_) {
    case Kind::kRelAtom:
      for (const AtomArg& a : args_) {
        if (a.sort() == model::Sort::kBase) {
          if (a.base().is_var()) add(a.base().text(), model::Sort::kBase);
        } else {
          std::set<std::string> vars;
          a.term().CollectVariables(&vars);
          for (const std::string& v : vars) add(v, model::Sort::kNum);
        }
      }
      return;
    case Kind::kBaseEq:
      for (const BaseArg& a : base_args_) {
        if (a.is_var()) add(a.text(), model::Sort::kBase);
      }
      return;
    case Kind::kCmp: {
      std::set<std::string> vars;
      terms_[0].CollectVariables(&vars);
      terms_[1].CollectVariables(&vars);
      for (const std::string& v : vars) add(v, model::Sort::kNum);
      return;
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const Formula& c : children_) c.CollectFree(bound, free);
      return;
    case Kind::kExists:
    case Kind::kForall: {
      bool was_bound = bound->count(qvar_.name) > 0;
      bound->insert(qvar_.name);
      children_[0].CollectFree(bound, free);
      if (!was_bound) bound->erase(qvar_.name);
      return;
    }
  }
}

std::map<std::string, model::Sort> Formula::FreeVariables() const {
  std::set<std::string> bound;
  std::map<std::string, model::Sort> free;
  CollectFree(&bound, &free);
  return free;
}

namespace {

// Records / verifies a single sort per variable name in scope.
util::Status NoteVar(const std::string& name, model::Sort sort,
                     std::map<std::string, model::Sort>* sorts) {
  auto [it, inserted] = sorts->emplace(name, sort);
  if (!inserted && it->second != sort) {
    return util::Status::InvalidArgument(
        "variable " + name + " used with both sorts base and num");
  }
  return util::Status::OK();
}

util::Status TypecheckRec(const Formula& f, const model::Database& db,
                          std::map<std::string, model::Sort>* sorts) {
  using Kind = Formula::Kind;
  switch (f.kind()) {
    case Kind::kRelAtom: {
      MUDB_ASSIGN_OR_RETURN(const model::Relation* rel,
                            db.GetRelation(f.relation()));
      const model::RelationSchema& schema = rel->schema();
      if (f.args().size() != schema.arity()) {
        return util::Status::InvalidArgument(
            "atom " + f.relation() + " has " + std::to_string(f.args().size()) +
            " arguments, schema arity is " + std::to_string(schema.arity()));
      }
      for (size_t i = 0; i < f.args().size(); ++i) {
        const AtomArg& a = f.args()[i];
        if (a.sort() != schema.column(i).sort) {
          return util::Status::InvalidArgument(
              "argument " + std::to_string(i) + " of " + f.relation() +
              " has sort " + model::SortToString(a.sort()) +
              ", column expects " +
              model::SortToString(schema.column(i).sort));
        }
        if (a.sort() == model::Sort::kBase) {
          if (a.base().is_var()) {
            MUDB_RETURN_IF_ERROR(
                NoteVar(a.base().text(), model::Sort::kBase, sorts));
          }
        } else {
          std::set<std::string> vars;
          a.term().CollectVariables(&vars);
          for (const std::string& v : vars) {
            MUDB_RETURN_IF_ERROR(NoteVar(v, model::Sort::kNum, sorts));
          }
        }
      }
      return util::Status::OK();
    }
    case Kind::kBaseEq:
      if (f.base_lhs().is_var()) {
        MUDB_RETURN_IF_ERROR(
            NoteVar(f.base_lhs().text(), model::Sort::kBase, sorts));
      }
      if (f.base_rhs().is_var()) {
        MUDB_RETURN_IF_ERROR(
            NoteVar(f.base_rhs().text(), model::Sort::kBase, sorts));
      }
      return util::Status::OK();
    case Kind::kCmp: {
      std::set<std::string> vars;
      f.cmp_lhs().CollectVariables(&vars);
      f.cmp_rhs().CollectVariables(&vars);
      for (const std::string& v : vars) {
        MUDB_RETURN_IF_ERROR(NoteVar(v, model::Sort::kNum, sorts));
      }
      return util::Status::OK();
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const Formula& c : f.children()) {
        MUDB_RETURN_IF_ERROR(TypecheckRec(c, db, sorts));
      }
      return util::Status::OK();
    case Kind::kExists:
    case Kind::kForall: {
      // The quantified variable shadows any outer use; typecheck the body in
      // a scope where its sort is fixed by the quantifier.
      std::map<std::string, model::Sort> inner = *sorts;
      inner[f.quantified_var().name] = f.quantified_var().sort;
      MUDB_RETURN_IF_ERROR(TypecheckRec(f.children()[0], db, &inner));
      return util::Status::OK();
    }
  }
  return util::Status::Internal("unreachable");
}

}  // namespace

util::Status Formula::Typecheck(const model::Database& db) const {
  std::map<std::string, model::Sort> sorts;
  return TypecheckRec(*this, db, &sorts);
}

bool Formula::IsConjunctive() const {
  switch (kind_) {
    case Kind::kRelAtom:
    case Kind::kBaseEq:
    case Kind::kCmp:
      return true;
    case Kind::kAnd:
    case Kind::kExists:
      return std::all_of(children_.begin(), children_.end(),
                         [](const Formula& c) { return c.IsConjunctive(); });
    case Kind::kOr:
    case Kind::kNot:
    case Kind::kForall:
      return false;
  }
  return false;
}

namespace {

bool TermUses(const Term& t, Term::Kind kind) {
  if (t.kind() == kind) return true;
  for (const Term& c : t.children()) {
    if (TermUses(c, kind)) return true;
  }
  return false;
}

bool FormulaUsesTermKind(const Formula& f, Term::Kind kind) {
  switch (f.kind()) {
    case Formula::Kind::kRelAtom:
      for (const AtomArg& a : f.args()) {
        if (a.sort() == model::Sort::kNum && TermUses(a.term(), kind)) {
          return true;
        }
      }
      return false;
    case Formula::Kind::kCmp:
      return TermUses(f.cmp_lhs(), kind) || TermUses(f.cmp_rhs(), kind);
    case Formula::Kind::kBaseEq:
      return false;
    default:
      for (const Formula& c : f.children()) {
        if (FormulaUsesTermKind(c, kind)) return true;
      }
      return false;
  }
}

}  // namespace

bool Formula::UsesMultiplication() const {
  return FormulaUsesTermKind(*this, Term::Kind::kMul);
}

bool Formula::UsesAddition() const {
  return FormulaUsesTermKind(*this, Term::Kind::kAdd) ||
         FormulaUsesTermKind(*this, Term::Kind::kNeg);
}

std::string Formula::FragmentName() const {
  std::string ops;
  if (UsesMultiplication()) {
    ops = "+,\xC2\xB7,<";  // +,·,<
  } else if (UsesAddition()) {
    ops = "+,<";
  } else {
    ops = "<";
  }
  return (IsConjunctive() ? std::string("CQ(") : std::string("FO(")) + ops +
         ")";
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kRelAtom: {
      std::ostringstream out;
      out << relation_ << "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out << ", ";
        out << args_[i].ToString();
      }
      out << ")";
      return out.str();
    }
    case Kind::kBaseEq:
      return base_args_[0].ToString() + " = " + base_args_[1].ToString();
    case Kind::kCmp:
      return terms_[0].ToString() + " " +
             constraints::CmpOpToString(cmp_op_) + " " + terms_[1].ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      if (children_.empty()) return kind_ == Kind::kAnd ? "true" : "false";
      std::ostringstream out;
      out << "(";
      const char* sep = kind_ == Kind::kAnd ? " && " : " || ";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << sep;
        out << children_[i].ToString();
      }
      out << ")";
      return out.str();
    }
    case Kind::kNot:
      return "!(" + children_[0].ToString() + ")";
    case Kind::kExists:
    case Kind::kForall:
      return std::string(kind_ == Kind::kExists ? "\xE2\x88\x83"
                                                : "\xE2\x88\x80") +
             qvar_.name + ":" + model::SortToString(qvar_.sort) + ". " +
             children_[0].ToString();
  }
  return "?";
}

util::StatusOr<Query> Query::Make(Formula formula, const model::Database& db) {
  MUDB_RETURN_IF_ERROR(formula.Typecheck(db));
  std::vector<TypedVar> output;
  for (const auto& [name, sort] : formula.FreeVariables()) {
    output.push_back(TypedVar{name, sort});
  }
  return Query{std::move(formula), std::move(output)};
}

util::StatusOr<Query> Query::MakeWithOutput(Formula formula,
                                            std::vector<TypedVar> output,
                                            const model::Database& db) {
  MUDB_RETURN_IF_ERROR(formula.Typecheck(db));
  std::map<std::string, model::Sort> free = formula.FreeVariables();
  if (output.size() != free.size()) {
    return util::Status::InvalidArgument(
        "output has " + std::to_string(output.size()) +
        " variables, formula has " + std::to_string(free.size()) +
        " free variables");
  }
  for (const TypedVar& v : output) {
    auto it = free.find(v.name);
    if (it == free.end()) {
      return util::Status::InvalidArgument("output variable " + v.name +
                                           " is not free in the formula");
    }
    if (it->second != v.sort) {
      return util::Status::InvalidArgument("output variable " + v.name +
                                           " has the wrong sort");
    }
  }
  return Query{std::move(formula), std::move(output)};
}

std::string Query::ToString() const {
  std::ostringstream out;
  out << "q(";
  for (size_t i = 0; i < output.size(); ++i) {
    if (i > 0) out << ", ";
    out << output[i].name << ":" << model::SortToString(output[i].sort);
  }
  out << ") = " << formula.ToString();
  return out.str();
}

}  // namespace mudb::logic
