// Numeric terms of FO(+,·,<) (Section 3, "Terms").
//
// A numeric term is built from numeric variables, numeric constants, + and ·
// (with unary minus as derived syntax). Base-type "terms" are just variables
// or constants and are represented directly in atoms (see formula.h).

#ifndef MUDB_SRC_LOGIC_TERM_H_
#define MUDB_SRC_LOGIC_TERM_H_

#include <set>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace mudb::logic {

/// A numeric term: variable, constant, sum, product, or negation. Value type.
class Term {
 public:
  enum class Kind { kVar, kConst, kAdd, kMul, kNeg };

  /// A numeric variable with the given name.
  static Term Var(std::string name);
  /// A numeric constant.
  static Term Const(double value);
  static Term Add(Term lhs, Term rhs);
  static Term Mul(Term lhs, Term rhs);
  static Term Neg(Term operand);
  /// Derived: lhs + (-rhs).
  static Term Sub(Term lhs, Term rhs) {
    return Add(std::move(lhs), Neg(std::move(rhs)));
  }

  Term() : kind_(Kind::kConst), value_(0.0) {}

  Kind kind() const { return kind_; }
  /// Variable name; requires kind() == kVar.
  const std::string& var_name() const;
  /// Constant value; requires kind() == kConst.
  double const_value() const;
  /// Children; non-empty for kAdd/kMul (2) and kNeg (1).
  const std::vector<Term>& children() const { return children_; }

  /// Adds all variable names occurring in the term to `out`.
  void CollectVariables(std::set<std::string>* out) const;

  std::string ToString() const;

 private:
  Kind kind_;
  std::string name_;
  double value_ = 0.0;
  std::vector<Term> children_;
};

/// Convenience operators for building terms in examples and tests.
inline Term operator+(Term a, Term b) {
  return Term::Add(std::move(a), std::move(b));
}
inline Term operator-(Term a, Term b) {
  return Term::Sub(std::move(a), std::move(b));
}
inline Term operator*(Term a, Term b) {
  return Term::Mul(std::move(a), std::move(b));
}
inline Term operator-(Term a) { return Term::Neg(std::move(a)); }

}  // namespace mudb::logic

#endif  // MUDB_SRC_LOGIC_TERM_H_
