// Formulae of two-sorted first-order logic with arithmetic, FO(+,·,<)
// (Section 3 of the paper), and the Query wrapper with named output columns.
//
// Atomic formulae:
//   * R(a_1, ..., a_n)  — relational atom; base positions take base variables
//     or base constants, numeric positions take numeric terms;
//   * x = y             — equality of base variables/constants;
//   * t ◦ t'            — comparison of numeric terms, ◦ ∈ {<, ≤, =, ≠, ≥, >}.
// Formulae close under ∧, ∨, ¬, ∃, ∀. Quantified variables are typed.

#ifndef MUDB_SRC_LOGIC_FORMULA_H_
#define MUDB_SRC_LOGIC_FORMULA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/constraints/real_formula.h"  // for CmpOp
#include "src/logic/term.h"
#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::logic {

using constraints::CmpOp;

/// A base-sorted argument: a variable or a base constant.
class BaseArg {
 public:
  static BaseArg Var(std::string name) {
    BaseArg a;
    a.is_var_ = true;
    a.text_ = std::move(name);
    return a;
  }
  static BaseArg Const(std::string value) {
    BaseArg a;
    a.is_var_ = false;
    a.text_ = std::move(value);
    return a;
  }

  bool is_var() const { return is_var_; }
  /// Variable name or constant text, depending on is_var().
  const std::string& text() const { return text_; }

  std::string ToString() const {
    return is_var_ ? text_ : "'" + text_ + "'";
  }

 private:
  bool is_var_ = true;
  std::string text_;
};

/// One argument of a relational atom: a base argument or a numeric term,
/// matching the sort of the corresponding schema column.
class AtomArg {
 public:
  static AtomArg Base(BaseArg arg) {
    AtomArg a;
    a.sort_ = model::Sort::kBase;
    a.base_ = std::move(arg);
    return a;
  }
  static AtomArg Num(Term term) {
    AtomArg a;
    a.sort_ = model::Sort::kNum;
    a.term_ = std::move(term);
    return a;
  }
  /// Shorthands.
  static AtomArg BaseVar(std::string name) {
    return Base(BaseArg::Var(std::move(name)));
  }
  static AtomArg BaseConst(std::string v) {
    return Base(BaseArg::Const(std::move(v)));
  }
  static AtomArg NumVar(std::string name) {
    return Num(Term::Var(std::move(name)));
  }
  static AtomArg NumConst(double v) { return Num(Term::Const(v)); }

  model::Sort sort() const { return sort_; }
  const BaseArg& base() const { return base_; }
  const Term& term() const { return term_; }

  std::string ToString() const {
    return sort_ == model::Sort::kBase ? base_.ToString() : term_.ToString();
  }

 private:
  model::Sort sort_ = model::Sort::kBase;
  BaseArg base_ = BaseArg::Var("");
  Term term_;
};

/// A typed variable (used by quantifiers and query output columns).
struct TypedVar {
  std::string name;
  model::Sort sort;

  bool operator==(const TypedVar& other) const {
    return name == other.name && sort == other.sort;
  }
};

/// A formula of FO(+,·,<). Value type (tree).
class Formula {
 public:
  enum class Kind {
    kRelAtom,
    kBaseEq,
    kCmp,
    kAnd,
    kOr,
    kNot,
    kExists,
    kForall,
  };

  Formula() : kind_(Kind::kAnd) {}  // empty conjunction = true

  /// R(args...).
  static Formula Rel(std::string relation, std::vector<AtomArg> args);
  /// lhs = rhs over the base sort.
  static Formula BaseEq(BaseArg lhs, BaseArg rhs);
  /// lhs ◦ rhs over numeric terms.
  static Formula Cmp(Term lhs, CmpOp op, Term rhs);
  static Formula And(std::vector<Formula> children);
  static Formula Or(std::vector<Formula> children);
  static Formula Not(Formula child);
  static Formula Exists(TypedVar var, Formula child);
  static Formula Forall(TypedVar var, Formula child);
  /// ∃ chain over several variables.
  static Formula ExistsMany(std::vector<TypedVar> vars, Formula child);
  /// ∀ chain over several variables.
  static Formula ForallMany(std::vector<TypedVar> vars, Formula child);
  /// Implication sugar: ¬lhs ∨ rhs.
  static Formula Implies(Formula lhs, Formula rhs);

  Kind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const std::vector<AtomArg>& args() const { return args_; }
  const BaseArg& base_lhs() const { return base_args_[0]; }
  const BaseArg& base_rhs() const { return base_args_[1]; }
  const Term& cmp_lhs() const { return terms_[0]; }
  const Term& cmp_rhs() const { return terms_[1]; }
  CmpOp cmp_op() const { return cmp_op_; }
  const TypedVar& quantified_var() const { return qvar_; }
  const std::vector<Formula>& children() const { return children_; }

  /// Free variables with their sorts. Requires consistent sorts (checked by
  /// Typecheck; this function assumes them).
  std::map<std::string, model::Sort> FreeVariables() const;

  /// Validates the formula against a database's schemas: relations exist,
  /// arities/sorts match, every variable has a single sort, no variable is
  /// both free and quantified inconsistently.
  util::Status Typecheck(const model::Database& db) const;

  /// True for the ∃,∧-fragment (conjunctive queries): only kRelAtom, kBaseEq,
  /// kCmp, kAnd and kExists nodes.
  bool IsConjunctive() const;
  /// True if some numeric term uses multiplication.
  bool UsesMultiplication() const;
  /// True if some numeric term uses addition/negation.
  bool UsesAddition() const;
  /// Language fragment label: "CQ(<)", "CQ(+,<)", "FO(<)", "FO(+,<)",
  /// "FO(+,·,<)". (Order comparisons are assumed present.)
  std::string FragmentName() const;

  std::string ToString() const;

 private:
  void CollectFree(std::set<std::string>* bound,
                   std::map<std::string, model::Sort>* free) const;

  Kind kind_;
  std::string relation_;
  std::vector<AtomArg> args_;
  std::vector<BaseArg> base_args_;  // size 2 iff kBaseEq
  std::vector<Term> terms_;         // size 2 iff kCmp
  CmpOp cmp_op_ = CmpOp::kEq;
  TypedVar qvar_;
  std::vector<Formula> children_;
};

/// A query: a formula plus an explicit ordering of its free variables, which
/// defines the output columns (x̄; ȳ in the paper's q(x̄, ȳ)).
struct Query {
  Formula formula;
  std::vector<TypedVar> output;

  /// Builds a query whose output order is the formula's free variables in
  /// name order. Fails if typechecking fails.
  static util::StatusOr<Query> Make(Formula formula,
                                    const model::Database& db);
  /// As Make, but with an explicit output order (must match the free vars).
  static util::StatusOr<Query> MakeWithOutput(Formula formula,
                                              std::vector<TypedVar> output,
                                              const model::Database& db);

  bool IsBoolean() const { return output.empty(); }
  std::string ToString() const;
};

}  // namespace mudb::logic

#endif  // MUDB_SRC_LOGIC_FORMULA_H_
