// Synthetic data generation — the DataFiller [10] replacement used by the
// experimental evaluation (Section 9).
//
// Provides a small spec-driven generator plus factories for the two databases
// the paper uses: the sales database of §9 (Products / Orders / Market,
// ~200K tuples, numeric nulls injected at a configurable rate) and the
// campaign database of the introduction (Products / Competition / Excluded
// with the two numeric nulls α, α' and one base null).

#ifndef MUDB_SRC_DATAGEN_DATAGEN_H_
#define MUDB_SRC_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/database.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace mudb::datagen {

/// Specification of one generated column.
struct ColumnSpec {
  std::string name;
  model::Sort sort = model::Sort::kNum;
  /// Numeric columns: uniform in [lo, hi], rounded to `decimals` places.
  double lo = 0.0;
  double hi = 1.0;
  int decimals = 2;
  /// Base columns: values "<prefix><k>" with k uniform in [0, cardinality).
  std::string prefix;
  int64_t cardinality = 1;
  /// Probability that an entry is a fresh marked null (numeric columns get
  /// ⊤-nulls, base columns ⊥-nulls).
  double null_rate = 0.0;
};

/// Creates relation `name` with `rows` rows in `db` according to the specs.
util::Status GenerateRelation(model::Database* db, const std::string& name,
                              const std::vector<ColumnSpec>& columns,
                              int64_t rows, util::Rng& rng);

/// Configuration of the §9 sales database.
struct SalesConfig {
  int64_t num_products = 100'000;
  int64_t num_orders = 60'000;
  int64_t num_segments = 500;
  /// Fraction of numeric entries replaced by fresh nulls.
  double null_rate = 0.05;
  uint64_t seed = 42;
};

/// Builds the sales database:
///   Products(id:base, seg:base, rrp:num, dis:num)
///   Orders(id:base, pr:base, q:num, dis:num)     pr references Products.id
///   Market(seg:base, rrp:num, dis:num)           one row per segment
/// Numeric entries are nulled independently with probability null_rate.
util::StatusOr<model::Database> MakeSalesDatabase(const SalesConfig& config);

/// Builds the introduction's campaign database. Outputs the null ids:
/// alpha = the Competition price ⊤, alpha_prime = the product rrp ⊤'.
struct CampaignDatabase {
  model::Database db;
  model::NullId alpha;        // Competition price null
  model::NullId alpha_prime;  // Products rrp null
};
util::StatusOr<CampaignDatabase> MakeCampaignDatabase();

}  // namespace mudb::datagen

#endif  // MUDB_SRC_DATAGEN_DATAGEN_H_
