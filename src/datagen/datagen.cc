#include "src/datagen/datagen.h"

#include <cmath>

namespace mudb::datagen {

namespace {

using model::ColumnDef;
using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Tuple;
using model::Value;

double RoundTo(double v, int decimals) {
  double scale = std::pow(10.0, decimals);
  return std::round(v * scale) / scale;
}

}  // namespace

util::Status GenerateRelation(Database* db, const std::string& name,
                              const std::vector<ColumnSpec>& columns,
                              int64_t rows, util::Rng& rng) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const ColumnSpec& c : columns) {
    defs.push_back(ColumnDef{c.name, c.sort});
  }
  MUDB_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(name, defs)));
  model::Relation* rel = db->GetMutableRelation(name).value();
  for (int64_t r = 0; r < rows; ++r) {
    Tuple t;
    t.reserve(columns.size());
    for (const ColumnSpec& c : columns) {
      bool make_null = c.null_rate > 0 && rng.Bernoulli(c.null_rate);
      if (c.sort == Sort::kNum) {
        if (make_null) {
          t.push_back(db->MakeNumNull());
        } else {
          t.push_back(Value::NumConst(
              RoundTo(rng.Uniform(c.lo, c.hi), c.decimals)));
        }
      } else {
        if (make_null) {
          t.push_back(db->MakeBaseNull());
        } else {
          t.push_back(Value::BaseConst(
              c.prefix + std::to_string(rng.UniformInt(0, c.cardinality - 1))));
        }
      }
    }
    MUDB_RETURN_IF_ERROR(rel->Insert(std::move(t)));
  }
  return util::Status::OK();
}

util::StatusOr<Database> MakeSalesDatabase(const SalesConfig& config) {
  Database db;
  util::Rng rng(config.seed);

  MUDB_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
      "Products", {{"id", Sort::kBase},
                   {"seg", Sort::kBase},
                   {"rrp", Sort::kNum},
                   {"dis", Sort::kNum}})));
  MUDB_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
      "Orders", {{"id", Sort::kBase},
                 {"pr", Sort::kBase},
                 {"q", Sort::kNum},
                 {"dis", Sort::kNum}})));
  MUDB_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
      "Market", {{"seg", Sort::kBase},
                 {"rrp", Sort::kNum},
                 {"dis", Sort::kNum}})));

  auto num_or_null = [&](double lo, double hi, int decimals) -> Value {
    if (rng.Bernoulli(config.null_rate)) return db.MakeNumNull();
    double scale = std::pow(10.0, decimals);
    return Value::NumConst(std::round(rng.Uniform(lo, hi) * scale) / scale);
  };

  model::Relation* products = db.GetMutableRelation("Products").value();
  for (int64_t i = 0; i < config.num_products; ++i) {
    Tuple t;
    t.push_back(Value::BaseConst("p" + std::to_string(i)));
    t.push_back(Value::BaseConst(
        "seg" + std::to_string(rng.UniformInt(0, config.num_segments - 1))));
    t.push_back(num_or_null(5.0, 500.0, 2));    // recommended retail price
    t.push_back(num_or_null(0.5, 1.0, 2));      // campaign discount multiplier
    MUDB_RETURN_IF_ERROR(products->Insert(std::move(t)));
  }

  model::Relation* orders = db.GetMutableRelation("Orders").value();
  for (int64_t i = 0; i < config.num_orders; ++i) {
    Tuple t;
    t.push_back(Value::BaseConst("o" + std::to_string(i)));
    t.push_back(Value::BaseConst(
        "p" + std::to_string(rng.UniformInt(0, config.num_products - 1))));
    t.push_back(num_or_null(1.0, 20.0, 0));     // quantity
    t.push_back(num_or_null(0.5, 1.5, 2));      // per-order extra discount
    MUDB_RETURN_IF_ERROR(orders->Insert(std::move(t)));
  }

  model::Relation* market = db.GetMutableRelation("Market").value();
  for (int64_t s = 0; s < config.num_segments; ++s) {
    Tuple t;
    t.push_back(Value::BaseConst("seg" + std::to_string(s)));
    t.push_back(num_or_null(5.0, 500.0, 2));    // best competing price
    t.push_back(num_or_null(0.5, 1.0, 2));      // forecast competitor discount
    MUDB_RETURN_IF_ERROR(market->Insert(std::move(t)));
  }
  return db;
}

util::StatusOr<CampaignDatabase> MakeCampaignDatabase() {
  CampaignDatabase out;
  Database& db = out.db;
  MUDB_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
      "Products", {{"id", Sort::kBase},
                   {"seg", Sort::kBase},
                   {"rrp", Sort::kNum},
                   {"dis", Sort::kNum}})));
  MUDB_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
      "Competition", {{"id", Sort::kBase},
                      {"seg", Sort::kBase},
                      {"p", Sort::kNum}})));
  MUDB_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
      "Excluded", {{"id", Sort::kBase}, {"seg", Sort::kBase}})));

  Value alpha = db.MakeNumNull();        // ⊤: the competitor's price
  Value alpha_prime = db.MakeNumNull();  // ⊤': the rrp of product id2
  Value bottom = db.MakeBaseNull();      // ⊥'': the unknown excluded product
  out.alpha = alpha.null_id();
  out.alpha_prime = alpha_prime.null_id();

  MUDB_RETURN_IF_ERROR(db.Insert(
      "Products", {Value::BaseConst("id1"), Value::BaseConst("s"),
                   Value::NumConst(10.0), Value::NumConst(0.8)}));
  MUDB_RETURN_IF_ERROR(db.Insert(
      "Products", {Value::BaseConst("id2"), Value::BaseConst("s"),
                   alpha_prime, Value::NumConst(0.7)}));
  MUDB_RETURN_IF_ERROR(db.Insert(
      "Competition",
      {Value::BaseConst("c"), Value::BaseConst("s"), alpha}));
  MUDB_RETURN_IF_ERROR(
      db.Insert("Excluded", {bottom, Value::BaseConst("s")}));
  return out;
}

}  // namespace mudb::datagen
