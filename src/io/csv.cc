#include "src/io/csv.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace mudb::io {

namespace {

using model::Database;
using model::RelationSchema;
using model::Sort;
using model::Tuple;
using model::Value;

// Splits one CSV record into fields, honouring double-quoted fields with
// doubled-quote escapes.
util::StatusOr<std::vector<std::string>> SplitRecord(const std::string& line,
                                                     char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes) {
    return util::Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

// One physical CSV record (possibly spanning several input lines) and the
// input line it starts on, for error messages.
struct RawRecord {
  std::string text;
  size_t line_no = 0;
};

// Splits the buffer into records at newlines *outside* quoted fields — a
// quoted field may contain embedded newlines (RFC 4180), so splitting with
// getline would tear such a record apart. Doubled quotes toggle the state
// twice, so a plain toggle tracks quotedness correctly at every newline.
std::vector<RawRecord> SplitIntoRecords(const std::string& csv) {
  std::vector<RawRecord> records;
  std::string current;
  size_t line = 1;
  size_t start_line = 1;
  bool in_quotes = false;
  for (char c : csv) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == '\n') {
      ++line;
      if (!in_quotes) {
        records.push_back({std::move(current), start_line});
        current.clear();
        start_line = line;
        continue;
      }
    }
    current += c;
  }
  // A final record without a trailing newline (an unterminated quote also
  // lands here; SplitRecord reports it).
  if (!current.empty()) records.push_back({std::move(current), start_line});
  return records;
}

// Shared-null bookkeeping for tagged null tokens ("NULL:7") so identical
// marks in one load become the same marked null.
class NullRegistry {
 public:
  explicit NullRegistry(Database* db) : db_(db) {}

  util::StatusOr<Value> Resolve(const std::string& tag, Sort sort) {
    auto it = named_.find(tag);
    if (it != named_.end()) {
      if (it->second.sort() != sort) {
        return util::Status::InvalidArgument(
            "null tag " + tag + " used in columns of both sorts");
      }
      return it->second;
    }
    Value v = sort == Sort::kBase ? db_->MakeBaseNull() : db_->MakeNumNull();
    named_.emplace(tag, v);
    return v;
  }

  Value Fresh(Sort sort) {
    return sort == Sort::kBase ? db_->MakeBaseNull() : db_->MakeNumNull();
  }

 private:
  Database* db_;
  std::map<std::string, Value> named_;
};

}  // namespace

util::StatusOr<size_t> LoadCsvRelation(Database* db,
                                       const RelationSchema& schema,
                                       const std::string& csv,
                                       const CsvOptions& options) {
  MUDB_RETURN_IF_ERROR(db->CreateRelation(schema));
  MUDB_ASSIGN_OR_RETURN(model::Relation * rel,
                        db->GetMutableRelation(schema.name()));
  NullRegistry nulls(db);

  size_t rows = 0;
  bool header_pending = options.has_header;
  const std::string tagged_prefix = options.null_token + ":";
  for (RawRecord& record : SplitIntoRecords(csv)) {
    const size_t line_no = record.line_no;
    if (record.text.empty() || record.text == "\r") continue;
    MUDB_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitRecord(record.text, options.delimiter));
    if (header_pending) {
      header_pending = false;
      if (fields.size() != schema.arity()) {
        return util::Status::InvalidArgument(
            "header has " + std::to_string(fields.size()) +
            " columns, schema expects " + std::to_string(schema.arity()));
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i] != schema.column(i).name) {
          return util::Status::InvalidArgument(
              "header column " + std::to_string(i) + " is '" + fields[i] +
              "', schema expects '" + schema.column(i).name + "'");
        }
      }
      continue;
    }
    if (fields.size() != schema.arity()) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, schema expects " +
          std::to_string(schema.arity()));
    }
    Tuple tuple;
    tuple.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const std::string& cell = fields[i];
      Sort sort = schema.column(i).sort;
      if (cell == options.null_token) {
        tuple.push_back(nulls.Fresh(sort));
      } else if (cell.rfind(tagged_prefix, 0) == 0) {
        MUDB_ASSIGN_OR_RETURN(Value v, nulls.Resolve(cell, sort));
        tuple.push_back(v);
      } else if (sort == Sort::kBase) {
        tuple.push_back(Value::BaseConst(cell));
      } else {
        try {
          size_t consumed = 0;
          double d = std::stod(cell, &consumed);
          if (consumed != cell.size()) {
            throw std::invalid_argument(cell);
          }
          tuple.push_back(Value::NumConst(d));
        } catch (...) {
          return util::Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": '" + cell +
              "' is not numeric (column " + schema.column(i).name + ")");
        }
      }
    }
    MUDB_RETURN_IF_ERROR(rel->Insert(std::move(tuple)));
    ++rows;
  }
  return rows;
}

util::StatusOr<size_t> LoadCsvRelationFromFile(Database* db,
                                               const RelationSchema& schema,
                                               const std::string& path,
                                               const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return util::Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return LoadCsvRelation(db, schema, buffer.str(), options);
}

util::Status WriteCsvRelation(const model::Relation& relation,
                              std::ostream& out, const CsvOptions& options) {
  const RelationSchema& schema = relation.schema();
  auto write_cell = [&](const std::string& text) {
    // '\r' is quoted too: the reader strips unquoted carriage returns.
    bool needs_quotes = text.find(options.delimiter) != std::string::npos ||
                        text.find('"') != std::string::npos ||
                        text.find('\n') != std::string::npos ||
                        text.find('\r') != std::string::npos;
    if (!needs_quotes) {
      out << text;
      return;
    }
    out << '"';
    for (char c : text) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) out << options.delimiter;
    write_cell(schema.column(i).name);
  }
  out << "\n";
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << options.delimiter;
      const Value& v = t[i];
      switch (v.kind()) {
        case Value::Kind::kBaseConst:
          write_cell(v.base_const());
          break;
        case Value::Kind::kNumConst: {
          std::ostringstream num;
          num.precision(17);
          num << v.num_const();
          out << num.str();
          break;
        }
        case Value::Kind::kBaseNull:
          // Sort-qualified tags keep ⊥_i and ⊤_i distinct on reload.
          out << options.null_token << ":b" << v.null_id();
          break;
        case Value::Kind::kNumNull:
          out << options.null_token << ":n" << v.null_id();
          break;
      }
    }
    out << "\n";
  }
  if (!out) {
    return util::Status::Internal("stream write failed");
  }
  return util::Status::OK();
}

}  // namespace mudb::io
