// CSV import/export for incomplete relations.
//
// Loading follows the paper's experimental setup (§9): SQL NULLs in the
// source data become fresh *marked* nulls (⊥_i for base columns, ⊤_i for
// numeric ones), so a CSV with the token "NULL" round-trips into the marked
// null model. Supports quoted fields — embedded delimiters, doubled-quote
// escapes, and embedded newlines (a quoted field may span input lines) —
// and WriteCsvRelation emits exactly that dialect, so write → load is an
// identity on relations (io_test.cc round-trip battery).

#ifndef MUDB_SRC_IO_CSV_H_
#define MUDB_SRC_IO_CSV_H_

#include <ostream>
#include <string>

#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::io {

struct CsvOptions {
  char delimiter = ',';
  /// Cell content interpreted as a fresh marked null.
  std::string null_token = "NULL";
  /// Whether the first line is a header naming the columns; when true it is
  /// validated against the schema's column names.
  bool has_header = true;
};

/// Parses `csv` into a new relation with the given schema inside `db` (the
/// relation must not exist yet). Returns the number of rows loaded.
util::StatusOr<size_t> LoadCsvRelation(model::Database* db,
                                       const model::RelationSchema& schema,
                                       const std::string& csv,
                                       const CsvOptions& options = {});

/// Reads a CSV file from disk (thin wrapper around LoadCsvRelation).
util::StatusOr<size_t> LoadCsvRelationFromFile(
    model::Database* db, const model::RelationSchema& schema,
    const std::string& path, const CsvOptions& options = {});

/// Writes a relation as CSV. Nulls are serialized as "<null_token>:<id>" so
/// that marked-null identity survives a round trip (a bare null_token would
/// lose the marks); numeric constants print with full precision.
util::Status WriteCsvRelation(const model::Relation& relation,
                              std::ostream& out,
                              const CsvOptions& options = {});

}  // namespace mudb::io

#endif  // MUDB_SRC_IO_CSV_H_
