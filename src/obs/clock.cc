#include "src/obs/clock.h"

#include <chrono>

namespace mudb::obs {

namespace {

// The installed fake, or null for the real steady clock. Relaxed atomics:
// installation happens before the readers under test start (documented
// contract), so there is no ordering to enforce on the hot path.
std::atomic<ScopedFakeClock*> g_fake_clock{nullptr};

}  // namespace

int64_t Clock::NowNanos() {
  if (ScopedFakeClock* fake = g_fake_clock.load(std::memory_order_acquire);
      fake != nullptr) {
    return fake->now_nanos();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedFakeClock::ScopedFakeClock(int64_t start_nanos) : now_(start_nanos) {
  g_fake_clock.store(this, std::memory_order_release);
}

ScopedFakeClock::~ScopedFakeClock() {
  g_fake_clock.store(nullptr, std::memory_order_release);
}

}  // namespace mudb::obs
