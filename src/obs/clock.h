// The single steady-clock path of the observability layer (mudb::obs).
//
// Every duration the system reports — BatchStats::wall_ms via
// util::WallTimer, span start/end ticks (obs/trace.h), bench harness
// timings — reads this one shim, so there is exactly one timing source to
// reason about: std::chrono::steady_clock, in integer nanoseconds.
// Previously the service layer and the bench harnesses each instantiated
// their own steady_clock readers; one shim means a test can swap in a fake
// clock (ScopedFakeClock) and every derived duration in the process moves
// together, deterministically.
//
// Determinism note: the clock feeds *accounting only*. No estimator, cache
// key, pruning decision, or RNG stream ever reads it (deadlines read it, but
// deadline expiry changes which Status a request resolves to, never the bits
// of a successful result). obs_test locks the fake-clock plumbing in.

#ifndef MUDB_SRC_OBS_CLOCK_H_
#define MUDB_SRC_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mudb::obs {

/// Monotonic tick source. Ticks are nanoseconds on steady_clock (or on the
/// installed fake clock), so arithmetic on them is plain integer math.
class Clock {
 public:
  /// Nanoseconds since an arbitrary fixed origin; never decreases.
  static int64_t NowNanos();

  static double NanosToMillis(int64_t nanos) { return nanos * 1e-6; }
  static double NanosToSeconds(int64_t nanos) { return nanos * 1e-9; }
};

/// Test-only: while alive, Clock::NowNanos() returns this fake's manually
/// advanced time instead of steady_clock. Install at most one at a time,
/// before the timers/spans under test start. Advancing is thread-safe;
/// installation is not (construct before spawning readers).
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(int64_t start_nanos = 0);
  ~ScopedFakeClock();

  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;

  void AdvanceNanos(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void AdvanceMillis(double ms) {
    AdvanceNanos(static_cast<int64_t>(ms * 1e6));
  }
  int64_t now_nanos() const { return now_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace mudb::obs

#endif  // MUDB_SRC_OBS_CLOCK_H_
