// Per-request tracing for the serving stack: RAII spans over thread-local
// append-only buffers, assembled into span trees ("flight recordings") and
// exported as Chrome trace_event JSON.
//
// Model:
//   * A Span covers one timed region. Constructing it reads the thread's
//     current SpanContext as the parent and installs itself as current;
//     destruction stamps the end tick and restores the parent. The first
//     span on a causal chain (no current context) allocates a fresh
//     trace_id — that id names the whole per-request tree.
//   * Context crosses threads explicitly, never ambiently: capture
//     CurrentContext() into the job/request struct at submit time, and
//     adopt it on the worker with ScopedContext. ThreadPool and the
//     ShardTransport seam do this; nothing else needs to.
//   * Annotations are key/value pairs on the active span — cache hit/miss
//     with key prefix, retry attempt + backoff delay, deadline remaining,
//     fault strikes, degradation mode, ε-tier transitions. Numeric values
//     are stored as doubles; everything else as strings.
//
// Hot-path cost: when tracing is disabled (the default), the Span
// constructor is one relaxed atomic load and two pointer-sized stores; no
// clock read, no allocation, no lock. When enabled, finishing a span
// appends one record to a thread-local buffer under that buffer's mutex
// (uncontended except against a concurrent export). Buffers are owned by
// shared_ptr and registered globally, so spans survive thread exit and the
// collector never races a detaching thread.
//
// Determinism contract (hard-asserted by obs_test): spans draw no RNG,
// never feed a work grid, and carry no result data — enabling, disabling,
// or compiling out tracing (MUDB_OBS_DISABLED) leaves every service result
// bit-identical. The buffer cap (kMaxEventsPerThread) drops excess spans
// and counts them; it never blocks the recording thread.

#ifndef MUDB_SRC_OBS_TRACE_H_
#define MUDB_SRC_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace mudb::obs {

/// Identifies a position in a span tree. id 0 means "none".
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

/// One finished span, as exported.
struct SpanRecord {
  std::string name;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
  // Annotation payload. Numeric annotations keep the double; string
  // annotations leave is_numeric false.
  struct Annotation {
    std::string key;
    std::string str_value;
    double num_value = 0.0;
    bool is_numeric = false;
  };
  std::vector<Annotation> annotations;

  double DurationMillis() const { return (end_nanos - start_nanos) * 1e-6; }
};

#ifndef MUDB_OBS_DISABLED

/// Turns span recording on/off process-wide. Off by default; benches turn
/// it on under --trace=, tests toggle it around the region under test.
void EnableTracing();
void DisableTracing();
bool TracingEnabled();

/// Drops all recorded spans (and the dropped-span count). Does not touch
/// enablement or live spans.
void ClearTraces();

/// Spans recorded so far whose end tick has been stamped, in per-thread
/// recording order (stable given the same execution). All traces, or one.
std::vector<SpanRecord> CollectSpans();
std::vector<SpanRecord> CollectTrace(uint64_t trace_id);

/// Spans dropped because a thread buffer hit kMaxEventsPerThread.
int64_t DroppedSpanCount();

/// The calling thread's current context (invalid if no span is active
/// and none was adopted).
SpanContext CurrentContext();

/// Adopts `ctx` as the thread's current context for the scope — the
/// cross-thread propagation primitive. Adopting an invalid context is a
/// no-op (spans then start fresh traces, same as an uninstrumented
/// caller).
class ScopedContext {
 public:
  explicit ScopedContext(const SpanContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  SpanContext saved_;
  bool adopted_ = false;
};

/// RAII timed region. `name` must outlive the span (string literals only —
/// dynamic names belong in annotations, keeping the constructor
/// allocation-free).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void Annotate(const char* key, double value);
  void Annotate(const char* key, const std::string& value);
  void Annotate(const char* key, const char* value);

  /// This span's context — capture it to parent work on another thread.
  SpanContext context() const { return ctx_; }
  bool recording() const { return recording_; }

 private:
  const char* name_;
  SpanContext ctx_;
  SpanContext saved_;  // restored on destruction
  int64_t start_nanos_ = 0;
  std::vector<SpanRecord::Annotation> annotations_;
  bool recording_ = false;
};

/// Chrome trace_event JSON ("ph":"X" complete events; open the file at
/// chrome://tracing or https://ui.perfetto.dev). Spans are grouped by
/// trace_id into pids so one request reads as one process row.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);
bool WriteChromeTrace(const std::string& path);

#else  // MUDB_OBS_DISABLED: the whole API compiles to no-ops.

inline void EnableTracing() {}
inline void DisableTracing() {}
inline bool TracingEnabled() { return false; }
inline void ClearTraces() {}
inline std::vector<SpanRecord> CollectSpans() { return {}; }
inline std::vector<SpanRecord> CollectTrace(uint64_t) { return {}; }
inline int64_t DroppedSpanCount() { return 0; }
inline SpanContext CurrentContext() { return {}; }

class ScopedContext {
 public:
  explicit ScopedContext(const SpanContext&) {}
};

class Span {
 public:
  explicit Span(const char*) {}
  void Annotate(const char*, double) {}
  void Annotate(const char*, const std::string&) {}
  void Annotate(const char*, const char*) {}
  SpanContext context() const { return {}; }
  bool recording() const { return false; }
};

inline std::string ChromeTraceJson(const std::vector<SpanRecord>&) {
  return "{\"traceEvents\": []}\n";
}
// Still honors --trace= in a disabled build: the file appears, empty, so
// pipelines that expect it keep working.
inline bool WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\": []}\n", f);
  return std::fclose(f) == 0;
}

#endif  // MUDB_OBS_DISABLED

}  // namespace mudb::obs

#endif  // MUDB_SRC_OBS_TRACE_H_
