#include "src/obs/trace.h"

#ifndef MUDB_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

#include "src/obs/clock.h"

namespace mudb::obs {

namespace {

/// Cap per thread buffer. At ~200 bytes a span this bounds a runaway
/// recording to a few tens of MB per thread; excess spans are counted,
/// never blocked on.
constexpr size_t kMaxEventsPerThread = 1 << 17;

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<int64_t> g_dropped{0};

struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;  // guarded by mu
};

// Registry of every thread's buffer. shared_ptr keeps a buffer alive after
// its thread exits, so CollectSpans never races thread teardown.
struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // guarded by mu
};

BufferRegistry& Registry() {
  static BufferRegistry* r = new BufferRegistry();
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = Registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// The ambient context: written only by Span ctor/dtor and ScopedContext
// on the owning thread.
thread_local SpanContext t_current;

}  // namespace

void EnableTracing() { g_enabled.store(true, std::memory_order_release); }

void DisableTracing() { g_enabled.store(false, std::memory_order_release); }

bool TracingEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void ClearTraces() {
  BufferRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->spans.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::vector<SpanRecord> CollectSpans() {
  std::vector<SpanRecord> out;
  BufferRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    out.insert(out.end(), b->spans.begin(), b->spans.end());
  }
  return out;
}

std::vector<SpanRecord> CollectTrace(uint64_t trace_id) {
  std::vector<SpanRecord> all = CollectSpans();
  std::vector<SpanRecord> out;
  for (auto& s : all) {
    if (s.trace_id == trace_id) out.push_back(std::move(s));
  }
  return out;
}

int64_t DroppedSpanCount() {
  return g_dropped.load(std::memory_order_relaxed);
}

SpanContext CurrentContext() { return t_current; }

ScopedContext::ScopedContext(const SpanContext& ctx) {
  if (!ctx.valid()) return;
  saved_ = t_current;
  t_current = ctx;
  adopted_ = true;
}

ScopedContext::~ScopedContext() {
  if (adopted_) t_current = saved_;
}

Span::Span(const char* name) : name_(name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  recording_ = true;
  saved_ = t_current;
  ctx_.trace_id = saved_.valid()
                      ? saved_.trace_id
                      : g_next_trace_id.fetch_add(
                            1, std::memory_order_relaxed);
  ctx_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  t_current = ctx_;
  start_nanos_ = Clock::NowNanos();
}

Span::~Span() {
  if (!recording_) return;
  const int64_t end = Clock::NowNanos();
  t_current = saved_;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.spans.size() >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord rec;
  rec.name = name_;
  rec.trace_id = ctx_.trace_id;
  rec.span_id = ctx_.span_id;
  rec.parent_id = saved_.valid() ? saved_.span_id : 0;
  rec.start_nanos = start_nanos_;
  rec.end_nanos = end;
  rec.annotations = std::move(annotations_);
  buffer.spans.push_back(std::move(rec));
}

void Span::Annotate(const char* key, double value) {
  if (!recording_) return;
  SpanRecord::Annotation a;
  a.key = key;
  a.num_value = value;
  a.is_numeric = true;
  annotations_.push_back(std::move(a));
}

void Span::Annotate(const char* key, const std::string& value) {
  if (!recording_) return;
  SpanRecord::Annotation a;
  a.key = key;
  a.str_value = value;
  annotations_.push_back(std::move(a));
}

void Span::Annotate(const char* key, const char* value) {
  Annotate(key, std::string(value));
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void AppendNum(std::string& out, double v) {
  // JSON has no inf/nan literals; a degenerate annotation becomes 0
  // (the bench_json.h convention).
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  // Sort by (trace, start) so the file is stable for a given recording
  // and each request's spans are contiguous.
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const auto& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->trace_id != b->trace_id)
                       return a->trace_id < b->trace_id;
                     return a->start_nanos < b->start_nanos;
                   });

  std::string out;
  out += "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord* s : ordered) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": ";
    AppendEscaped(out, s->name);
    // pid = trace id so one request renders as one process lane; tid =
    // span id so nested spans never collapse onto one row by accident.
    out += ", \"ph\": \"X\", \"pid\": " + std::to_string(s->trace_id);
    out += ", \"tid\": " + std::to_string(s->span_id);
    out += ", \"ts\": ";
    AppendNum(out, s->start_nanos * 1e-3);  // trace_event wants microseconds
    out += ", \"dur\": ";
    AppendNum(out, (s->end_nanos - s->start_nanos) * 1e-3);
    out += ", \"args\": {\"span_id\": " + std::to_string(s->span_id);
    out += ", \"parent_id\": " + std::to_string(s->parent_id);
    for (const auto& a : s->annotations) {
      out += ", ";
      AppendEscaped(out, a.key);
      out += ": ";
      if (a.is_numeric) {
        AppendNum(out, a.num_value);
      } else {
        AppendEscaped(out, a.str_value);
      }
    }
    out += "}}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << ChromeTraceJson(CollectSpans());
  out.flush();
  if (!out) {
    std::fprintf(stderr, "trace: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace mudb::obs

#endif  // !MUDB_OBS_DISABLED
