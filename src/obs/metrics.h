// Process-wide metrics for the serving stack: named counters, gauges, and
// log-bucketed histograms behind one MetricsRegistry.
//
// Design constraints, in order:
//   * Hot paths pay one relaxed atomic add. Every metric stripes its cells
//     across kMetricStripes cache lines (threads round-robin onto stripes at
//     first touch), so concurrent writers do not bounce a shared line. No
//     locks, no allocation, no clock reads on the write path.
//   * Snapshots are deterministic functions of the observed values.
//     Histogram bucket bounds are the fixed powers of sqrt(2) — bucket h
//     holds v with 2^(h/2) <= v < 2^((h+1)/2), computed exactly from the
//     binary exponent of v*v (std::ilogb), never from a log() call whose
//     last bit could vary — so two runs that observe the same multiset of
//     values emit byte-identical bucket arrays.
//   * Snapshot() drains the stripes into per-metric totals (exchange(0)),
//     so a value observed exactly once is counted exactly once, however
//     many snapshots race with the writers. Reported values are cumulative
//     (monotonic across snapshots); Reset() starts a fresh epoch.
//
// Naming convention: stable dotted paths, subsystem first —
// "service.cache.hit", "shard.retry", "ranking.tier_ms". Callers fetch the
// handle once (a function-local static is the usual idiom) and keep it; the
// registry owns the metric for the process lifetime, so handles never
// dangle.
//
// The JSON snapshot (WriteJsonFile / ToJson) follows the bench_json.h
// schema style: schema_version + flat arrays, numbers via %.17g so the
// document round-trips doubles exactly. tools/metrics_summary.py
// pretty-prints it.
//
// Like the spans (obs/trace.h), metrics never touch result bits: no RNG, no
// work-grid input, nothing an estimator reads. MUDB_OBS_DISABLED compiles
// the write paths to no-ops.

#ifndef MUDB_SRC_OBS_METRICS_H_
#define MUDB_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mudb::obs {

/// Stripes per metric. Enough that the handful of concurrent writer threads
/// (shard workers, router workers, pool workers) rarely share a line.
inline constexpr int kMetricStripes = 8;

/// Returns this thread's stripe slot (assigned round-robin at first use).
int ThreadStripe();

/// Histogram geometry: bucket h (h = half-exponent) spans
/// [2^(h/2), 2^((h+1)/2)), i.e. bounds grow by a factor of sqrt(2). The
/// finite range covers v from 2^-30 (~1e-9: a nanosecond in ms units) to
/// 2^40 (~1e12); bucket 0 is the underflow bucket (v below range, v <= 0,
/// NaN), and values above the range clamp into the top bucket.
inline constexpr int kHistogramMinHalfExp = -60;
inline constexpr int kHistogramMaxHalfExp = 79;
inline constexpr int kHistogramBuckets =
    kHistogramMaxHalfExp - kHistogramMinHalfExp + 2;  // + underflow

/// The bucket index for one observation — a pure function of the value's
/// binary exponent, exact on every platform.
inline int HistogramBucketIndex(double v) {
  if (!(v > 0)) return 0;  // non-positive and NaN: underflow bucket
  // v*v has binary exponent 2*log2(v) rounded down, so ilogb(v*v) IS the
  // half-exponent h with 2^(h/2) <= v < 2^((h+1)/2) — no libm rounding
  // involved. v*v overflows to +inf only beyond the clamp range anyway.
  const int h = std::ilogb(v * v);
  // Clamp on h itself: ilogb(+inf) is INT_MAX, so the index arithmetic
  // below would overflow for huge v if the range check came after it.
  if (h > kHistogramMaxHalfExp) return kHistogramBuckets - 1;
  if (h < kHistogramMinHalfExp) return 0;
  return h - kHistogramMinHalfExp + 1;
}

/// Upper bound of bucket `idx` (display only; bucketing never computes it).
double HistogramBucketUpperBound(int idx);

/// A monotonically increasing count.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
#ifndef MUDB_OBS_DISABLED
    cells_[ThreadStripe()].v.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  /// Cumulative value (drained total + live stripes). Exact when writers
  /// are quiescent; a consistent monotonic read otherwise.
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  int64_t Drain();  // moves stripes into total_; registry-serialized
  void Reset();

  std::array<Cell, kMetricStripes> cells_;
  std::atomic<int64_t> total_{0};
};

/// A last-write-wins instantaneous value (cache entry counts, queue depth).
class Gauge {
 public:
  void Set(double value) {
#ifndef MUDB_OBS_DISABLED
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// A log-bucketed distribution (latencies in ms, sizes, step counts).
class Histogram {
 public:
  void Observe(double v) {
#ifndef MUDB_OBS_DISABLED
    Stripe& s = stripes_[ThreadStripe()];
    s.buckets[HistogramBucketIndex(v)].fetch_add(1,
                                                 std::memory_order_relaxed);
    // Relaxed CAS add: the sum is reporting-only, and stripes keep the
    // retry rate near zero.
    double cur = s.sum.load(std::memory_order_relaxed);
    while (!s.sum.compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Stripe {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  void Drain();  // moves stripes into totals; registry-serialized
  void Reset();

  std::array<Stripe, kMetricStripes> stripes_;
  // Drained cumulative state. Written only under the registry mutex.
  std::array<int64_t, kHistogramBuckets> total_buckets_{};
  int64_t total_count_ = 0;
  double total_sum_ = 0.0;
};

/// One histogram's drained state, with quantile extraction.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  /// The upper bound of the bucket containing the p-quantile (nearest-rank
  /// over the bucket counts): an upper estimate within a factor of sqrt(2)
  /// of the true quantile, and a deterministic function of the counts.
  /// p in (0, 1]; returns 0 when the histogram is empty.
  double Quantile(double p) const;
};

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// A drained, name-sorted view of every metric in a registry.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Stable JSON document (schema in the file comment).
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. The pointer is
  /// stable for the registry's lifetime — fetch once, keep forever.
  /// Registering one name as two different kinds is a programming error
  /// (the first kind wins; the mismatched accessor returns nullptr).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Drains every metric's stripes and returns the cumulative state,
  /// sorted by name. Safe to call concurrently with writers: each observed
  /// value lands in exactly one snapshot's delta and every later
  /// snapshot's cumulative view.
  MetricsSnapshot Snapshot();

  /// Snapshot() serialized to JSON / written to `path` (false + stderr
  /// note on IO failure).
  std::string ToJson();
  bool WriteJsonFile(const std::string& path);

  /// Zeroes every registered metric (tests, bench leg isolation). Names
  /// stay registered; handles stay valid.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::mutex mu_;
  // std::map: snapshots come out name-sorted without a per-snapshot sort.
  std::map<std::string, Entry> entries_;  // guarded by mu_
};

}  // namespace mudb::obs

#endif  // MUDB_SRC_OBS_METRICS_H_
