#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace mudb::obs {

int ThreadStripe() {
  static std::atomic<unsigned> next{0};
  thread_local const int stripe = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes);
  return stripe;
}

double HistogramBucketUpperBound(int idx) {
  if (idx <= 0) return std::exp2(kHistogramMinHalfExp * 0.5);
  const int h = idx - 1 + kHistogramMinHalfExp;
  return std::exp2((h + 1) * 0.5);
}

int64_t Counter::Value() const {
  int64_t v = total_.load(std::memory_order_relaxed);
  for (const Cell& c : cells_) v += c.v.load(std::memory_order_relaxed);
  return v;
}

int64_t Counter::Drain() {
  int64_t moved = 0;
  for (Cell& c : cells_) moved += c.v.exchange(0, std::memory_order_relaxed);
  return total_.fetch_add(moved, std::memory_order_relaxed) + moved;
}

void Counter::Reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
}

void Histogram::Drain() {
  for (Stripe& s : stripes_) {
    for (int i = 0; i < kHistogramBuckets; ++i) {
      const int64_t n = s.buckets[i].exchange(0, std::memory_order_relaxed);
      total_buckets_[i] += n;
      total_count_ += n;
    }
    total_sum_ += s.sum.exchange(0.0, std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
  total_buckets_.fill(0);
  total_count_ = 0;
  total_sum_ = 0.0;
}

double HistogramSnapshot::Quantile(double p) const {
  if (count <= 0) return 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank: the smallest rank r with r >= ceil(p * count).
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (static_cast<double>(rank) < p * static_cast<double>(count)) ++rank;
  int64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return HistogramBucketUpperBound(i);
  }
  return HistogramBucketUpperBound(kHistogramBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  }
  return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                           : nullptr;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>();
  }
  return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                             : nullptr;
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.counter->Drain()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, entry.gauge->Value()});
        break;
      case Kind::kHistogram: {
        entry.histogram->Drain();
        HistogramSnapshot h;
        h.name = name;
        h.count = entry.histogram->total_count_;
        h.sum = entry.histogram->total_sum_;
        h.buckets = entry.histogram->total_buckets_;
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

namespace {

// Number formatting matches bench_json.h: %.17g round-trips every double,
// and non-finite values (which JSON cannot carry) become 0.
void AppendNum(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out += "{\n  \"schema_version\": 1,\n  \"counters\": [";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendEscaped(out, counters[i].name);
    out += ", \"value\": " + std::to_string(counters[i].value) + "}";
  }
  out += counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendEscaped(out, gauges[i].name);
    out += ", \"value\": ";
    AppendNum(out, gauges[i].value);
    out += "}";
  }
  out += gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendEscaped(out, h.name);
    out += ", \"count\": " + std::to_string(h.count) + ", \"sum\": ";
    AppendNum(out, h.sum);
    out += ",\n     \"p50\": ";
    AppendNum(out, h.Quantile(0.50));
    out += ", \"p90\": ";
    AppendNum(out, h.Quantile(0.90));
    out += ", \"p99\": ";
    AppendNum(out, h.Quantile(0.99));
    out += ", \"p999\": ";
    AppendNum(out, h.Quantile(0.999));
    // Sparse bucket dump: [half_exponent, count] pairs for non-empty
    // buckets only (the full array is ~140 wide and mostly zero).
    out += ",\n     \"buckets\": [";
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      const int half_exp = b == 0 ? kHistogramMinHalfExp - 1
                                  : b - 1 + kHistogramMinHalfExp;
      out += "[" + std::to_string(half_exp) + ", " +
             std::to_string(h.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::ToJson() { return Snapshot().ToJson(); }

bool MetricsRegistry::WriteJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "metrics: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace mudb::obs
