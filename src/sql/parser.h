// SQL front-end for the experimental pipeline: parses the SELECT–FROM–WHERE–
// LIMIT subset used by the paper's §9 decision-support queries into the CQ IR.
//
// Supported grammar (keywords case-insensitive):
//
//   query    := SELECT colref (',' colref)*
//               FROM table [alias] (',' table [alias])*
//               [WHERE conjunct (AND conjunct)*]
//               [LIMIT integer]
//   conjunct := expr op expr          op ∈ { =, <>, !=, <, <=, >, >= }
//   expr     := term (('+'|'-') term)*
//   term     := factor (('*'|'/') factor)*     -- '/' only by numeric literal
//   factor   := number | colref | 'string' | '(' expr ')' | '-' factor
//   colref   := [alias '.'] column
//
// Base-sorted columns may appear only in equality/disequality conjuncts with
// other base columns or string literals; numeric columns participate in
// arithmetic. Division is supported only by a nonzero numeric literal (the
// parser multiplies it out), matching FO(+,·,<): rewrite other divisions by
// multiplying both sides.

#ifndef MUDB_SRC_SQL_PARSER_H_
#define MUDB_SRC_SQL_PARSER_H_

#include <string>

#include "src/engine/cq.h"
#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::sql {

/// Parses and binds `sql` against the schemas of `db`. Returns a validated
/// ConjunctiveQuery whose variables are named "alias.column".
util::StatusOr<engine::ConjunctiveQuery> ParseSqlQuery(
    const std::string& sql, const model::Database& db);

/// Parses `SELECT ... [UNION SELECT ...]* [LIMIT n]` into a UnionQuery. A
/// LIMIT is only allowed after the final branch and applies to the union.
/// Single-branch inputs are accepted (equivalent to ParseSqlQuery).
util::StatusOr<engine::UnionQuery> ParseSqlUnionQuery(
    const std::string& sql, const model::Database& db);

}  // namespace mudb::sql

#endif  // MUDB_SRC_SQL_PARSER_H_
