#include "src/sql/parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

namespace mudb::sql {

namespace {

using engine::ConjunctiveQuery;
using engine::CqAtom;
using engine::CqBaseEquality;
using engine::CqComparison;
using logic::AtomArg;
using logic::BaseArg;
using logic::CmpOp;
using logic::Term;
using model::Sort;

// ---- Lexer ----------------------------------------------------------------

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // one of = <> != < <= > >= + - * / ( ) , .
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;   // identifier (lowercased for keywords check), symbol
  std::string raw;    // original spelling
  double number = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  util::StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= in_.size()) {
        out.push_back({TokKind::kEnd, "", "", 0, pos_});
        return out;
      }
      char c = in_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
                in_[pos_] == '_')) {
          ++pos_;
        }
        std::string raw = in_.substr(start, pos_ - start);
        std::string lower = raw;
        for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
        out.push_back({TokKind::kIdent, lower, raw, 0, start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
        size_t start = pos_;
        while (pos_ < in_.size() &&
               (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
                in_[pos_] == '.')) {
          ++pos_;
        }
        // Scientific notation: [eE][+-]?digits. Only a well-formed exponent
        // is consumed, so "1 e" keeps lexing as number + identifier.
        if (pos_ < in_.size() && (in_[pos_] == 'e' || in_[pos_] == 'E')) {
          size_t exp = pos_ + 1;
          if (exp < in_.size() && (in_[exp] == '+' || in_[exp] == '-')) ++exp;
          if (exp < in_.size() &&
              std::isdigit(static_cast<unsigned char>(in_[exp]))) {
            pos_ = exp;
            while (pos_ < in_.size() &&
                   std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
              ++pos_;
            }
          }
        }
        std::string raw = in_.substr(start, pos_ - start);
        try {
          size_t consumed = 0;
          double v = std::stod(raw, &consumed);
          // Trailing garbage ("1.2.3" parses as 1.2) must not silently
          // truncate; overflow lands in the catch below.
          if (consumed != raw.size()) {
            return util::Status::InvalidArgument("bad number literal: " + raw);
          }
          out.push_back({TokKind::kNumber, raw, raw, v, start});
        } catch (...) {
          return util::Status::InvalidArgument("bad number literal: " + raw);
        }
        continue;
      }
      if (c == '\'') {
        size_t start = ++pos_;
        while (pos_ < in_.size() && in_[pos_] != '\'') ++pos_;
        if (pos_ >= in_.size()) {
          return util::Status::InvalidArgument("unterminated string literal");
        }
        std::string raw = in_.substr(start, pos_ - start);
        ++pos_;
        out.push_back({TokKind::kString, raw, raw, 0, start});
        continue;
      }
      // Symbols, including two-character comparison operators.
      static const char* kTwo[] = {"<>", "!=", "<=", ">="};
      bool matched = false;
      for (const char* s : kTwo) {
        if (in_.compare(pos_, 2, s) == 0) {
          out.push_back({TokKind::kSymbol, s, s, 0, pos_});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOne = "=<>+-*/(),.";
      if (kOne.find(c) != std::string::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c),
                       std::string(1, c), 0, pos_});
        ++pos_;
        continue;
      }
      return util::Status::InvalidArgument(
          std::string("unexpected character '") + c + "' at offset " +
          std::to_string(pos_));
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
};

// ---- Parser / binder -------------------------------------------------------

// An expression is either a numeric term or a base argument; which one is
// determined by the column sorts during parsing.
struct Expr {
  bool is_base = false;
  Term term;        // valid when !is_base
  BaseArg base = BaseArg::Var("");  // valid when is_base
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const model::Database& db)
      : tokens_(std::move(tokens)), db_(db) {}

  util::StatusOr<ConjunctiveQuery> Parse() {
    MUDB_RETURN_IF_ERROR(ExpectKeyword("select"));
    std::vector<std::pair<std::string, std::string>> select_cols;
    do {
      MUDB_ASSIGN_OR_RETURN(auto col, ParseColRefNames());
      select_cols.push_back(col);
    } while (Accept(","));
    MUDB_RETURN_IF_ERROR(ExpectKeyword("from"));
    do {
      MUDB_RETURN_IF_ERROR(ParseTableRef());
    } while (Accept(","));

    if (AcceptKeyword("where")) {
      do {
        MUDB_RETURN_IF_ERROR(ParseConjunct());
      } while (AcceptKeyword("and"));
    }
    if (AcceptKeyword("limit")) {
      if (Peek().kind != TokKind::kNumber) {
        return Error("expected a number after LIMIT");
      }
      cq_.limit = static_cast<size_t>(Peek().number);
      Advance();
    }
    if (Peek().kind != TokKind::kEnd) {
      return Error("unexpected trailing input: " + Peek().raw);
    }

    // Materialize the FROM atoms, then resolve the SELECT list.
    for (const auto& [alias, table] : from_order_) {
      MUDB_ASSIGN_OR_RETURN(const model::Relation* rel, db_.GetRelation(table));
      CqAtom atom;
      atom.relation = table;
      for (const model::ColumnDef& col : rel->schema().columns()) {
        std::string var = alias + "." + col.name;
        if (col.sort == Sort::kBase) {
          atom.args.push_back(AtomArg::BaseVar(var));
        } else {
          atom.args.push_back(AtomArg::NumVar(var));
        }
      }
      cq_.atoms.push_back(std::move(atom));
    }
    for (const auto& [alias, col] : select_cols) {
      MUDB_ASSIGN_OR_RETURN(auto resolved, ResolveColumn(alias, col));
      cq_.output.push_back(
          logic::TypedVar{resolved.first, resolved.second});
    }
    MUDB_RETURN_IF_ERROR(cq_.Validate(db_));
    return std::move(cq_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() { ++pos_; }
  bool Accept(const std::string& symbol) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  util::Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return util::Status::InvalidArgument("expected " + kw + " near '" +
                                           Peek().raw + "'");
    }
    return util::Status::OK();
  }
  util::Status Error(const std::string& msg) const {
    return util::Status::InvalidArgument(
        msg + " (offset " + std::to_string(Peek().pos) + ")");
  }

  // "alias.column" or bare "column"; returns (alias-or-empty, column).
  util::StatusOr<std::pair<std::string, std::string>> ParseColRefNames() {
    if (Peek().kind != TokKind::kIdent) return Error("expected a column name");
    std::string first = Peek().raw;
    Advance();
    if (Accept(".")) {
      if (Peek().kind != TokKind::kIdent) {
        return Error("expected a column after '.'");
      }
      std::string col = Peek().raw;
      Advance();
      return std::make_pair(first, col);
    }
    return std::make_pair(std::string(), first);
  }

  util::Status ParseTableRef() {
    if (Peek().kind != TokKind::kIdent) return Error("expected a table name");
    std::string table = Peek().raw;
    Advance();
    std::string alias = table;
    if (Peek().kind == TokKind::kIdent &&
        Peek().text != "where" && Peek().text != "limit" &&
        Peek().text != "and") {
      alias = Peek().raw;
      Advance();
    }
    if (aliases_.count(alias) > 0) {
      return util::Status::InvalidArgument("duplicate table alias: " + alias);
    }
    MUDB_ASSIGN_OR_RETURN(const model::Relation* rel, db_.GetRelation(table));
    (void)rel;
    aliases_.emplace(alias, table);
    from_order_.emplace_back(alias, table);
    return util::Status::OK();
  }

  // Resolves (alias, column) to the variable name and sort. An empty alias
  // searches all tables and must be unambiguous.
  util::StatusOr<std::pair<std::string, Sort>> ResolveColumn(
      const std::string& alias, const std::string& column) {
    if (!alias.empty()) {
      auto it = aliases_.find(alias);
      if (it == aliases_.end()) {
        return util::Status::InvalidArgument("unknown table alias: " + alias);
      }
      MUDB_ASSIGN_OR_RETURN(const model::Relation* rel,
                            db_.GetRelation(it->second));
      auto idx = rel->schema().ColumnIndex(column);
      if (!idx) {
        return util::Status::InvalidArgument("no column " + column + " in " +
                                             it->second);
      }
      return std::make_pair(alias + "." + column,
                            rel->schema().column(*idx).sort);
    }
    std::optional<std::pair<std::string, Sort>> found;
    for (const auto& [a, table] : aliases_) {
      MUDB_ASSIGN_OR_RETURN(const model::Relation* rel, db_.GetRelation(table));
      auto idx = rel->schema().ColumnIndex(column);
      if (idx) {
        if (found) {
          return util::Status::InvalidArgument("ambiguous column: " + column);
        }
        found = std::make_pair(a + "." + column,
                               rel->schema().column(*idx).sort);
      }
    }
    if (!found) {
      return util::Status::InvalidArgument("unknown column: " + column);
    }
    return *found;
  }

  util::StatusOr<Expr> ParseFactor() {
    if (Peek().kind == TokKind::kNumber) {
      Expr e;
      e.term = Term::Const(Peek().number);
      Advance();
      return e;
    }
    if (Peek().kind == TokKind::kString) {
      Expr e;
      e.is_base = true;
      e.base = BaseArg::Const(Peek().raw);
      Advance();
      return e;
    }
    if (Accept("-")) {
      MUDB_ASSIGN_OR_RETURN(Expr inner, ParseFactor());
      if (inner.is_base) return Error("cannot negate a base-typed value");
      inner.term = Term::Neg(std::move(inner.term));
      return inner;
    }
    if (Accept("(")) {
      MUDB_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
      if (!Accept(")")) return Error("expected ')'");
      return inner;
    }
    if (Peek().kind == TokKind::kIdent) {
      MUDB_ASSIGN_OR_RETURN(auto names, ParseColRefNames());
      MUDB_ASSIGN_OR_RETURN(auto resolved,
                            ResolveColumn(names.first, names.second));
      Expr e;
      if (resolved.second == Sort::kBase) {
        e.is_base = true;
        e.base = BaseArg::Var(resolved.first);
      } else {
        e.term = Term::Var(resolved.first);
      }
      return e;
    }
    return Error("expected an expression, found '" + Peek().raw + "'");
  }

  util::StatusOr<Expr> ParseTerm() {
    MUDB_ASSIGN_OR_RETURN(Expr lhs, ParseFactor());
    while (true) {
      bool mul = Peek().kind == TokKind::kSymbol && Peek().text == "*";
      bool div = Peek().kind == TokKind::kSymbol && Peek().text == "/";
      if (!mul && !div) return lhs;
      Advance();
      MUDB_ASSIGN_OR_RETURN(Expr rhs, ParseFactor());
      if (lhs.is_base || rhs.is_base) {
        return Error("arithmetic on base-typed values");
      }
      if (mul) {
        lhs.term = Term::Mul(std::move(lhs.term), std::move(rhs.term));
      } else {
        if (rhs.term.kind() != Term::Kind::kConst ||
            rhs.term.const_value() == 0.0) {
          return Error(
              "division is only supported by a nonzero numeric literal; "
              "multiply the comparison out instead");
        }
        lhs.term = Term::Mul(std::move(lhs.term),
                             Term::Const(1.0 / rhs.term.const_value()));
      }
    }
  }

  util::StatusOr<Expr> ParseExpr() {
    MUDB_ASSIGN_OR_RETURN(Expr lhs, ParseTerm());
    while (true) {
      bool add = Peek().kind == TokKind::kSymbol && Peek().text == "+";
      bool sub = Peek().kind == TokKind::kSymbol && Peek().text == "-";
      if (!add && !sub) return lhs;
      Advance();
      MUDB_ASSIGN_OR_RETURN(Expr rhs, ParseTerm());
      if (lhs.is_base || rhs.is_base) {
        return Error("arithmetic on base-typed values");
      }
      lhs.term = add ? Term::Add(std::move(lhs.term), std::move(rhs.term))
                     : Term::Sub(std::move(lhs.term), std::move(rhs.term));
    }
  }

  util::Status ParseConjunct() {
    MUDB_ASSIGN_OR_RETURN(Expr lhs, ParseExpr());
    CmpOp op;
    if (Accept("=")) {
      op = CmpOp::kEq;
    } else if (Accept("<>") || Accept("!=")) {
      op = CmpOp::kNeq;
    } else if (Accept("<=")) {
      op = CmpOp::kLe;
    } else if (Accept(">=")) {
      op = CmpOp::kGe;
    } else if (Accept("<")) {
      op = CmpOp::kLt;
    } else if (Accept(">")) {
      op = CmpOp::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    MUDB_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
    if (lhs.is_base != rhs.is_base) {
      return Error("comparison mixes base and numeric operands");
    }
    if (lhs.is_base) {
      if (op != CmpOp::kEq) {
        return Error(
            "only equality is supported between base-typed operands in the "
            "conjunctive fragment");
      }
      cq_.base_equalities.push_back(CqBaseEquality{lhs.base, rhs.base});
      return util::Status::OK();
    }
    cq_.comparisons.push_back(
        CqComparison{std::move(lhs.term), op, std::move(rhs.term)});
    return util::Status::OK();
  }

  std::vector<Token> tokens_;
  const model::Database& db_;
  size_t pos_ = 0;
  std::map<std::string, std::string> aliases_;  // alias -> table
  std::vector<std::pair<std::string, std::string>> from_order_;
  ConjunctiveQuery cq_;
};

}  // namespace

util::StatusOr<engine::ConjunctiveQuery> ParseSqlQuery(
    const std::string& sql, const model::Database& db) {
  Lexer lexer(sql);
  MUDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), db);
  return parser.Parse();
}

util::StatusOr<engine::UnionQuery> ParseSqlUnionQuery(
    const std::string& sql, const model::Database& db) {
  Lexer lexer(sql);
  MUDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  // Split the token stream on top-level UNION keywords (the grammar has no
  // parenthesized subqueries, so every UNION is top-level).
  std::vector<std::vector<Token>> segments(1);
  const Token end_token = tokens.back();  // the kEnd sentinel
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kIdent && t.text == "union") {
      segments.back().push_back(end_token);
      segments.emplace_back();
      continue;
    }
    segments.back().push_back(t);
  }

  engine::UnionQuery out;
  for (size_t i = 0; i < segments.size(); ++i) {
    Parser parser(std::move(segments[i]), db);
    MUDB_ASSIGN_OR_RETURN(engine::ConjunctiveQuery cq, parser.Parse());
    if (cq.limit) {
      if (i + 1 != segments.size()) {
        return util::Status::InvalidArgument(
            "LIMIT is only allowed after the final UNION branch");
      }
      out.limit = cq.limit;
      cq.limit.reset();
    }
    out.branches.push_back(std::move(cq));
  }
  MUDB_RETURN_IF_ERROR(out.Validate(db));
  return out;
}

}  // namespace mudb::sql
