// Convex bodies given by halfspaces and ball constraints, with the membership
// and chord oracles needed by hit-and-run sampling.
//
// The FPRAS of Thm. 7.1 works on bodies of the form
//     X = {z : C z <= 0} ∩ B(0, 1)
// (a homogeneous cone from one DNF disjunct of the linear constraint formula,
// intersected with the unit ball). The annealing volume estimator additionally
// intersects with shrinking balls around an inner point, so the body type
// supports any number of ball constraints.
//
// Storage is cache-contiguous for the sampling hot path: the halfspace
// normals live in one flat row-major m×n buffer (plus the offset vector b),
// and ball constraints are SoA (flat k×n centers, radii, squared radii).
// A structure-of-pairs mirror is maintained for cold callers of
// halfspaces()/balls(); both views describe the same constraints at all
// times, so there is no finalize step and copies stay cheap value semantics.

#ifndef MUDB_SRC_CONVEX_BODY_H_
#define MUDB_SRC_CONVEX_BODY_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/geom/geometry.h"
#include "src/lp/simplex.h"
#include "src/util/status.h"

namespace mudb::convex {

/// A ball constraint ||x - center|| <= radius.
struct BallConstraint {
  geom::Vec center;
  double radius;
};

/// An intersection of halfspaces {x : a·x <= b} and balls. Dimension is fixed
/// at construction.
class ConvexBody {
 public:
  explicit ConvexBody(int dim) : dim_(dim) {}

  int dim() const { return dim_; }

  /// Adds {x : a·x <= b}; a must have size dim().
  void AddHalfspace(geom::Vec a, double b);
  /// Adds ||x - center|| <= radius.
  void AddBall(geom::Vec center, double radius);
  /// Replaces the radius of ball `index` in place. The annealing volume
  /// estimator reuses one phase body across its radius schedule instead of
  /// copying the whole constraint system per phase.
  void SetBallRadius(int index, double radius);

  const std::vector<std::pair<geom::Vec, double>>& halfspaces() const {
    return halfspaces_;
  }
  const std::vector<BallConstraint>& balls() const { return balls_; }

  /// Flat views for the sampling kernels. Row-major: halfspace i is
  /// halfspace_matrix()[i*dim() .. i*dim()+dim()), ball k's center is
  /// ball_centers()[k*dim() .. k*dim()+dim()). Pointers are invalidated by
  /// AddHalfspace/AddBall (but not by SetBallRadius).
  int num_halfspaces() const { return static_cast<int>(b_.size()); }
  int num_balls() const { return static_cast<int>(ball_radius2_.size()); }
  const double* halfspace_matrix() const { return a_flat_.data(); }
  const double* offsets() const { return b_.data(); }
  const double* ball_centers() const { return ball_centers_flat_.data(); }
  const double* ball_radius2() const { return ball_radius2_.data(); }

  bool Contains(const geom::Vec& x) const;

  /// The parameter interval [lo, hi] of {t : x + t·d ∈ body} for a point x
  /// inside the body and a unit direction d, or nullopt if the chord is
  /// empty/degenerate. (Hit-and-run requires x ∈ body.)
  std::optional<std::pair<double, double>> Chord(const geom::Vec& x,
                                                 const geom::Vec& d) const;

 private:
  int dim_;
  // Hot, flat storage (primary for the kernels).
  std::vector<double> a_flat_;             // m × dim, row-major
  std::vector<double> b_;                  // m
  std::vector<double> ball_centers_flat_;  // k × dim, row-major
  std::vector<double> ball_radius2_;       // k
  // Cold mirror for structured accessors.
  std::vector<std::pair<geom::Vec, double>> halfspaces_;
  std::vector<BallConstraint> balls_;
};

/// An inscribed ball of a body, used to seed the annealing schedule.
struct InnerBall {
  geom::Vec center;
  double radius;
};

/// Finds inner balls of cones {z : C z <= 0} ∩ B(0, outer_radius) via LP
/// (maximize the margin against the normalized halfspaces over a centered
/// box). One finder instance amortizes the LP workspace — the tableau
/// buffers and the fixed box/margin constraint rows, which every cone
/// shares — across the per-cone solves of the FPRAS pipeline. The result
/// for a cone is a function of that cone alone (every solve rebuilds its
/// full tableau in the reused buffers), so reuse order cannot perturb it.
class InnerBallFinder {
 public:
  InnerBallFinder(int dim, double outer_radius);

  /// Returns nullopt when the cone has (numerically) empty interior, in
  /// which case its volume is 0.
  std::optional<InnerBall> Find(
      const std::vector<std::pair<geom::Vec, double>>& halfspaces);

 private:
  int dim_;
  double outer_radius_;
  lp::SimplexSolver solver_;
  std::vector<double> rows_;   // flat (n+1)-wide constraint rows
  std::vector<double> rhs_;
  std::vector<double> fixed_rows_;  // box + margin-cap rows, built once
  std::vector<double> fixed_rhs_;
  std::vector<double> objective_;
};

/// One-shot convenience over InnerBallFinder (cold callers, tests).
std::optional<InnerBall> FindInnerBall(
    const std::vector<std::pair<geom::Vec, double>>& halfspaces, int dim,
    double outer_radius);

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_BODY_H_
