// Convex bodies given by halfspaces and ball constraints, with the membership
// and chord oracles needed by hit-and-run sampling.
//
// The FPRAS of Thm. 7.1 works on bodies of the form
//     X = {z : C z <= 0} ∩ B(0, 1)
// (a homogeneous cone from one DNF disjunct of the linear constraint formula,
// intersected with the unit ball). The annealing volume estimator additionally
// intersects with shrinking balls around an inner point, so the body type
// supports any number of ball constraints.

#ifndef MUDB_SRC_CONVEX_BODY_H_
#define MUDB_SRC_CONVEX_BODY_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/geom/geometry.h"
#include "src/util/status.h"

namespace mudb::convex {

/// A ball constraint ||x - center|| <= radius.
struct BallConstraint {
  geom::Vec center;
  double radius;
};

/// An intersection of halfspaces {x : a·x <= b} and balls. Dimension is fixed
/// at construction.
class ConvexBody {
 public:
  explicit ConvexBody(int dim) : dim_(dim) {}

  int dim() const { return dim_; }

  /// Adds {x : a·x <= b}; a must have size dim().
  void AddHalfspace(geom::Vec a, double b);
  /// Adds ||x - center|| <= radius.
  void AddBall(geom::Vec center, double radius);

  const std::vector<std::pair<geom::Vec, double>>& halfspaces() const {
    return halfspaces_;
  }
  const std::vector<BallConstraint>& balls() const { return balls_; }

  bool Contains(const geom::Vec& x) const;

  /// The parameter interval [lo, hi] of {t : x + t·d ∈ body} for a point x
  /// inside the body and a unit direction d, or nullopt if the chord is
  /// empty/degenerate. (Hit-and-run requires x ∈ body.)
  std::optional<std::pair<double, double>> Chord(const geom::Vec& x,
                                                 const geom::Vec& d) const;

 private:
  int dim_;
  std::vector<std::pair<geom::Vec, double>> halfspaces_;
  std::vector<BallConstraint> balls_;
};

/// An inscribed ball of a body, used to seed the annealing schedule.
struct InnerBall {
  geom::Vec center;
  double radius;
};

/// Finds an inner ball of {z : C z <= 0} ∩ B(0, outer_radius) via LP
/// (maximize the margin against the normalized halfspaces over a centered
/// box). Returns nullopt when the cone has (numerically) empty interior, in
/// which case its volume is 0.
std::optional<InnerBall> FindInnerBall(
    const std::vector<std::pair<geom::Vec, double>>& halfspaces, int dim,
    double outer_radius);

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_BODY_H_
