// Annealed Monte-Carlo volume estimation for convex bodies.
//
// The classic multi-phase scheme (Lovász–Vempala style): given an inner ball
// B(z0, r0) ⊆ K and an outer radius bound, define K_i = K ∩ B(z0, r0·2^{i/n}).
// Then Vol(K_0) = Vol(B(z0, r0)) is known exactly, each consecutive ratio
// Vol(K_{i-1}) / Vol(K_i) lies in [1/2, 1] and is estimated by hit-and-run
// sampling from K_i, and Vol(K) is the telescoping product. This provides the
// per-body volume oracle required by the union FPRAS of Thm. 7.1 (standing in
// for the oracles assumed by Bringmann–Friedrich [9]).
//
// Each phase's sample budget is split across a fixed grid of independent
// hit-and-run chains (grid size a function of the budget alone), chain
// (phase, chunk) drawing from the substream Split(phase).Split(chunk) of the
// forked call rng. The chains walk in power-of-two lane groups through the
// vectorized K-chain kernel (convex/batch_sampler.h, grouped by
// PartitionChainGrid — also a pure function of the grid), and the groups of
// one phase run in parallel on the optional pool. Every lane is
// bit-identical to a scalar sampler walking its substream, so the estimate
// is bit-identical for any group width and any pool size — see
// thread_pool.h.

#ifndef MUDB_SRC_CONVEX_VOLUME_H_
#define MUDB_SRC_CONVEX_VOLUME_H_

#include "src/convex/body.h"
#include "src/convex/sampler.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace mudb::convex {

struct VolumeOptions {
  /// Target relative accuracy of the estimate (drives samples per phase).
  double epsilon = 0.1;
  /// Hit-and-run steps between retained samples; 0 means auto (≈ 4·dim).
  int walk_steps = 0;
  /// Samples per annealing phase; 0 means auto from epsilon and phase count.
  int samples_per_phase = 0;
  /// Optional worker pool for the per-phase chain groups; nullptr runs them
  /// inline. Any pool size yields the identical estimate.
  util::ThreadPool* pool = nullptr;
};

struct VolumeEstimate {
  double volume = 0.0;
  /// Number of annealing phases used.
  int phases = 0;
  /// Total hit-and-run steps taken.
  int64_t steps = 0;
};

/// Estimates Vol(body). `inner` must satisfy B(inner) ⊆ body, and body must
/// be contained in B(inner.center, outer_radius_bound). Advances `rng` by
/// one draw (Rng::Fork) and samples from substreams of the forked child:
/// repeated calls with one Rng see fresh chains, while a fresh same-seeded
/// Rng reproduces the estimate bit-exactly, independent of options.pool.
VolumeEstimate EstimateVolume(const ConvexBody& body, const InnerBall& inner,
                              double outer_radius_bound,
                              const VolumeOptions& options, util::Rng& rng);

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_VOLUME_H_
