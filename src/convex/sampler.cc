#include "src/convex/sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mudb::convex {

HitAndRunSampler::HitAndRunSampler(const ConvexBody* body, geom::Vec start)
    : body_(body), x_(std::move(start)) {
  MUDB_CHECK(body_ != nullptr);
  MUDB_CHECK(static_cast<int>(x_.size()) == body_->dim());
  MUDB_CHECK(body_->Contains(x_));
  d_.resize(body_->dim());
  RefreshProducts();
}

void HitAndRunSampler::set_current(geom::Vec x) {
  MUDB_CHECK(static_cast<int>(x.size()) == body_->dim());
  x_ = std::move(x);
  // Same contract as the constructor: an exterior point would silently
  // freeze the chain (every chord degenerate), so fail fast here instead.
  MUDB_CHECK(body_->Contains(x_));
  RefreshProducts();
}

void HitAndRunSampler::RefreshProducts() {
  const int n = body_->dim();
  const int m = body_->num_halfspaces();
  const int k = body_->num_balls();
  ax_.resize(m);
  ad_.resize(m);
  ball_dist2_.resize(k);
  ball_bq_.resize(k);
  const double* a = body_->halfspace_matrix();
  for (int i = 0; i < m; ++i) {
    const double* row = a + static_cast<size_t>(i) * n;
    double ax = 0.0;
    for (int j = 0; j < n; ++j) ax += row[j] * x_[j];
    ax_[i] = ax;
  }
  const double* centers = body_->ball_centers();
  for (int kk = 0; kk < k; ++kk) {
    const double* c = centers + static_cast<size_t>(kk) * n;
    double d2 = 0.0;
    for (int j = 0; j < n; ++j) {
      double diff = x_[j] - c[j];
      d2 += diff * diff;
    }
    ball_dist2_[kk] = d2;
  }
  steps_since_refresh_ = 0;
}

void HitAndRunSampler::ApplyMove(double t) {
  const int n = body_->dim();
  for (int j = 0; j < n; ++j) x_[j] += t * d_[j];
  const int m = body_->num_halfspaces();
  for (int i = 0; i < m; ++i) ax_[i] += t * ad_[i];
  const int k = body_->num_balls();
  // ||x + t·d − c||² = ||x − c||² + 2t·(x−c)·d + t² for unit d.
  for (int kk = 0; kk < k; ++kk) {
    ball_dist2_[kk] += t * (2.0 * ball_bq_[kk] + t);
  }
}

void HitAndRunSampler::Step(util::Rng& rng) {
  const int n = body_->dim();
  geom::SampleUnitSphere(n, rng, d_);

  // Fused pass: A·d and the chord interval together, against the cached A·x.
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  const int m = body_->num_halfspaces();
  const double* a = body_->halfspace_matrix();
  const double* b = body_->offsets();
  for (int i = 0; i < m; ++i) {
    const double* row = a + static_cast<size_t>(i) * n;
    double ad = 0.0;
    for (int j = 0; j < n; ++j) ad += row[j] * d_[j];
    ad_[i] = ad;
    if (std::fabs(ad) < 1e-14) {
      if (ax_[i] > b[i] + 1e-9) return;  // x outside; no chord
      continue;
    }
    double t = (b[i] - ax_[i]) / ad;
    if (ad > 0) {
      hi = std::min(hi, t);
    } else {
      lo = std::max(lo, t);
    }
  }
  const int k = body_->num_balls();
  const double* centers = body_->ball_centers();
  const double* r2 = body_->ball_radius2();
  for (int kk = 0; kk < k; ++kk) {
    // t² + 2t·(x−c)·d + ||x−c||² − r² <= 0, with ||x−c||² cached.
    const double* c = centers + static_cast<size_t>(kk) * n;
    double bq = 0.0;
    for (int j = 0; j < n; ++j) bq += (x_[j] - c[j]) * d_[j];
    ball_bq_[kk] = bq;
    double disc = bq * bq - (ball_dist2_[kk] - r2[kk]);
    if (disc <= 0) return;  // line misses or grazes the ball; stay in place
    double sq = std::sqrt(disc);
    lo = std::max(lo, -bq - sq);
    hi = std::min(hi, -bq + sq);
  }
  if (!(lo < hi)) return;  // degenerate chord; stay in place
  if (!std::isfinite(lo) || !std::isfinite(hi)) return;

  double t = rng.Uniform(lo, hi);
  ApplyMove(t);
  // Guard against rounding pushing the point marginally outside, comparing
  // the cached products against the offsets — no second constraint scan. If
  // outside, pull back to the chord midpoint, which is interior, and resync
  // the caches exactly (cold path).
  bool inside = true;
  for (int i = 0; i < m; ++i) {
    if (ax_[i] > b[i] + 1e-12) {
      inside = false;
      break;
    }
  }
  if (inside) {
    for (int kk = 0; kk < k; ++kk) {
      if (ball_dist2_[kk] > r2[kk] + 1e-12) {
        inside = false;
        break;
      }
    }
  }
  if (!inside) {
    // Only the position needs the incremental update here: the caches are
    // about to be recomputed exactly from the pulled-back point.
    double back = 0.5 * (lo + hi) - t;
    for (int j = 0; j < n; ++j) x_[j] += back * d_[j];
    RefreshProducts();
    return;
  }
  if (++steps_since_refresh_ >= kSamplerRefreshInterval) RefreshProducts();
}

void HitAndRunSampler::Walk(int n, util::Rng& rng) {
  for (int i = 0; i < n; ++i) Step(rng);
}

}  // namespace mudb::convex
