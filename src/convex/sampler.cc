#include "src/convex/sampler.h"

namespace mudb::convex {

HitAndRunSampler::HitAndRunSampler(const ConvexBody* body, geom::Vec start)
    : body_(body), x_(std::move(start)) {
  MUDB_CHECK(body_ != nullptr);
  MUDB_CHECK(static_cast<int>(x_.size()) == body_->dim());
  MUDB_CHECK(body_->Contains(x_));
}

void HitAndRunSampler::Step(util::Rng& rng) {
  geom::Vec d = geom::SampleUnitSphere(body_->dim(), rng);
  auto chord = body_->Chord(x_, d);
  if (!chord) return;  // degenerate chord; stay in place
  double t = rng.Uniform(chord->first, chord->second);
  x_ = geom::AddScaled(x_, t, d);
  // Guard against rounding pushing the point marginally outside; if so, pull
  // back to the chord midpoint, which is interior.
  if (!body_->Contains(x_)) {
    geom::Vec mid = geom::AddScaled(
        x_, 0.5 * (chord->first + chord->second) - t, d);
    x_ = std::move(mid);
  }
}

void HitAndRunSampler::Walk(int n, util::Rng& rng) {
  for (int i = 0; i < n; ++i) Step(rng);
}

}  // namespace mudb::convex
