#include "src/convex/body.h"

#include <algorithm>
#include <cmath>

#include "src/lp/simplex.h"

namespace mudb::convex {

void ConvexBody::AddHalfspace(geom::Vec a, double b) {
  MUDB_CHECK(static_cast<int>(a.size()) == dim_);
  halfspaces_.emplace_back(std::move(a), b);
}

void ConvexBody::AddBall(geom::Vec center, double radius) {
  MUDB_CHECK(static_cast<int>(center.size()) == dim_);
  MUDB_CHECK(radius > 0);
  balls_.push_back(BallConstraint{std::move(center), radius});
}

bool ConvexBody::Contains(const geom::Vec& x) const {
  for (const auto& [a, b] : halfspaces_) {
    if (geom::Dot(a, x) > b + 1e-12) return false;
  }
  for (const BallConstraint& ball : balls_) {
    double d2 = 0.0;
    for (int i = 0; i < dim_; ++i) {
      double diff = x[i] - ball.center[i];
      d2 += diff * diff;
    }
    if (d2 > ball.radius * ball.radius + 1e-12) return false;
  }
  return true;
}

std::optional<std::pair<double, double>> ConvexBody::Chord(
    const geom::Vec& x, const geom::Vec& d) const {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (const auto& [a, b] : halfspaces_) {
    double ad = geom::Dot(a, d);
    double ax = geom::Dot(a, x);
    if (std::fabs(ad) < 1e-14) {
      if (ax > b + 1e-9) return std::nullopt;  // x outside; no chord
      continue;
    }
    double t = (b - ax) / ad;
    if (ad > 0) {
      hi = std::min(hi, t);
    } else {
      lo = std::max(lo, t);
    }
  }
  for (const BallConstraint& ball : balls_) {
    // ||x + t d - c||^2 <= r^2, with ||d|| = 1:
    // t^2 + 2 t (x-c)·d + ||x-c||^2 - r^2 <= 0.
    geom::Vec xc(dim_);
    for (int i = 0; i < dim_; ++i) xc[i] = x[i] - ball.center[i];
    double bq = geom::Dot(xc, d);
    double cq = geom::Dot(xc, xc) - ball.radius * ball.radius;
    double disc = bq * bq - cq;
    if (disc <= 0) return std::nullopt;  // line misses or grazes the ball
    double sq = std::sqrt(disc);
    lo = std::max(lo, -bq - sq);
    hi = std::min(hi, -bq + sq);
  }
  if (!(lo < hi)) return std::nullopt;
  if (!std::isfinite(lo) || !std::isfinite(hi)) return std::nullopt;
  return std::make_pair(lo, hi);
}

std::optional<InnerBall> FindInnerBall(
    const std::vector<std::pair<geom::Vec, double>>& halfspaces, int dim,
    double outer_radius) {
  MUDB_CHECK(dim >= 1);
  // Variables: z_0..z_{n-1}, t. Maximize t subject to
  //   â_i · z + t <= b̂_i   (normalized halfspaces)
  //   |z_j| <= outer_radius / (2 sqrt(n))   (keeps ||z|| <= outer_radius/2)
  //   t <= outer_radius.
  const int n = dim;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (const auto& [normal, offset] : halfspaces) {
    double norm = geom::Norm(normal);
    if (norm < 1e-14) {
      if (offset < 0) return std::nullopt;  // 0 <= b violated: empty body
      continue;                             // trivial constraint
    }
    std::vector<double> row(n + 1, 0.0);
    for (int j = 0; j < n; ++j) row[j] = normal[j] / norm;
    row[n] = 1.0;
    a.push_back(std::move(row));
    b.push_back(offset / norm);
  }
  double box = outer_radius / (2.0 * std::sqrt(static_cast<double>(n)));
  for (int j = 0; j < n; ++j) {
    std::vector<double> up(n + 1, 0.0), down(n + 1, 0.0);
    up[j] = 1.0;
    down[j] = -1.0;
    a.push_back(up);
    b.push_back(box);
    a.push_back(down);
    b.push_back(box);
  }
  {
    std::vector<double> row(n + 1, 0.0);
    row[n] = 1.0;
    a.push_back(row);
    b.push_back(outer_radius);
  }
  std::vector<double> c(n + 1, 0.0);
  c[n] = 1.0;

  lp::LpResult res = lp::SolveLp(a, b, c);
  if (res.status != lp::LpStatus::kOptimal) return std::nullopt;
  double t = res.x[n];
  if (t < 1e-9) return std::nullopt;  // empty interior (volume 0)
  geom::Vec center(res.x.begin(), res.x.begin() + n);
  double radius = std::min(t, outer_radius - geom::Norm(center));
  if (radius < 1e-9) return std::nullopt;
  return InnerBall{std::move(center), radius};
}

}  // namespace mudb::convex
