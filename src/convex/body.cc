#include "src/convex/body.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace mudb::convex {

void ConvexBody::AddHalfspace(geom::Vec a, double b) {
  MUDB_CHECK(static_cast<int>(a.size()) == dim_);
  a_flat_.insert(a_flat_.end(), a.begin(), a.end());
  b_.push_back(b);
  halfspaces_.emplace_back(std::move(a), b);
}

void ConvexBody::AddBall(geom::Vec center, double radius) {
  MUDB_CHECK(static_cast<int>(center.size()) == dim_);
  MUDB_CHECK(radius > 0);
  ball_centers_flat_.insert(ball_centers_flat_.end(), center.begin(),
                            center.end());
  ball_radius2_.push_back(radius * radius);
  balls_.push_back(BallConstraint{std::move(center), radius});
}

void ConvexBody::SetBallRadius(int index, double radius) {
  MUDB_CHECK(index >= 0 && index < num_balls());
  MUDB_CHECK(radius > 0);
  ball_radius2_[index] = radius * radius;
  balls_[index].radius = radius;
}

bool ConvexBody::Contains(const geom::Vec& x) const {
  const int n = dim_;
  const int m = num_halfspaces();
  const double* a = a_flat_.data();
  for (int i = 0; i < m; ++i) {
    const double* row = a + static_cast<size_t>(i) * n;
    double ax = 0.0;
    for (int j = 0; j < n; ++j) ax += row[j] * x[j];
    if (ax > b_[i] + 1e-12) return false;
  }
  const int k = num_balls();
  const double* centers = ball_centers_flat_.data();
  for (int kk = 0; kk < k; ++kk) {
    const double* c = centers + static_cast<size_t>(kk) * n;
    double d2 = 0.0;
    for (int j = 0; j < n; ++j) {
      double diff = x[j] - c[j];
      d2 += diff * diff;
    }
    if (d2 > ball_radius2_[kk] + 1e-12) return false;
  }
  return true;
}

std::optional<std::pair<double, double>> ConvexBody::Chord(
    const geom::Vec& x, const geom::Vec& d) const {
  const int n = dim_;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  const int m = num_halfspaces();
  const double* a = a_flat_.data();
  for (int i = 0; i < m; ++i) {
    const double* row = a + static_cast<size_t>(i) * n;
    double ad = 0.0;
    double ax = 0.0;
    for (int j = 0; j < n; ++j) {
      ad += row[j] * d[j];
      ax += row[j] * x[j];
    }
    if (std::fabs(ad) < 1e-14) {
      if (ax > b_[i] + 1e-9) return std::nullopt;  // x outside; no chord
      continue;
    }
    double t = (b_[i] - ax) / ad;
    if (ad > 0) {
      hi = std::min(hi, t);
    } else {
      lo = std::max(lo, t);
    }
  }
  const int k = num_balls();
  const double* centers = ball_centers_flat_.data();
  for (int kk = 0; kk < k; ++kk) {
    // ||x + t d - c||^2 <= r^2, with ||d|| = 1:
    // t^2 + 2 t (x-c)·d + ||x-c||^2 - r^2 <= 0.
    const double* c = centers + static_cast<size_t>(kk) * n;
    double bq = 0.0;
    double xc2 = 0.0;
    for (int j = 0; j < n; ++j) {
      double diff = x[j] - c[j];
      bq += diff * d[j];
      xc2 += diff * diff;
    }
    double cq = xc2 - ball_radius2_[kk];
    double disc = bq * bq - cq;
    if (disc <= 0) return std::nullopt;  // line misses or grazes the ball
    double sq = std::sqrt(disc);
    lo = std::max(lo, -bq - sq);
    hi = std::min(hi, -bq + sq);
  }
  if (!(lo < hi)) return std::nullopt;
  if (!std::isfinite(lo) || !std::isfinite(hi)) return std::nullopt;
  return std::make_pair(lo, hi);
}

InnerBallFinder::InnerBallFinder(int dim, double outer_radius)
    : dim_(dim), outer_radius_(outer_radius) {
  MUDB_CHECK(dim >= 1);
  const int n = dim;
  // Variables: z_0..z_{n-1}, t. Maximize t subject to
  //   â_i · z + t <= b̂_i   (normalized cone halfspaces, per Find call)
  //   |z_j| <= outer_radius / (2 sqrt(n))   (keeps ||z|| <= outer_radius/2)
  //   t <= outer_radius.
  // The box and margin-cap rows are identical for every cone; build them
  // once here and splice them after the cone rows on each solve.
  double box = outer_radius / (2.0 * std::sqrt(static_cast<double>(n)));
  fixed_rows_.assign(static_cast<size_t>(2 * n + 1) * (n + 1), 0.0);
  fixed_rhs_.assign(2 * n + 1, box);
  for (int j = 0; j < n; ++j) {
    fixed_rows_[static_cast<size_t>(2 * j) * (n + 1) + j] = 1.0;
    fixed_rows_[static_cast<size_t>(2 * j + 1) * (n + 1) + j] = -1.0;
  }
  fixed_rows_[static_cast<size_t>(2 * n) * (n + 1) + n] = 1.0;
  fixed_rhs_[2 * n] = outer_radius;
  objective_.assign(n + 1, 0.0);
  objective_[n] = 1.0;
}

std::optional<InnerBall> InnerBallFinder::Find(
    const std::vector<std::pair<geom::Vec, double>>& halfspaces) {
  const int n = dim_;
  const int width = n + 1;
  rows_.clear();
  rhs_.clear();
  rows_.reserve((halfspaces.size() + fixed_rhs_.size()) * width);
  rhs_.reserve(halfspaces.size() + fixed_rhs_.size());
  for (const auto& [normal, offset] : halfspaces) {
    double norm = geom::Norm(normal);
    if (norm < 1e-14) {
      if (offset < 0) return std::nullopt;  // 0 <= b violated: empty body
      continue;                             // trivial constraint
    }
    size_t base = rows_.size();
    rows_.resize(base + width, 0.0);
    for (int j = 0; j < n; ++j) rows_[base + j] = normal[j] / norm;
    rows_[base + n] = 1.0;
    rhs_.push_back(offset / norm);
  }
  rows_.insert(rows_.end(), fixed_rows_.begin(), fixed_rows_.end());
  rhs_.insert(rhs_.end(), fixed_rhs_.begin(), fixed_rhs_.end());

  lp::LpResult res = solver_.SolveFlat(rows_.data(), rhs_.data(),
                                       static_cast<int>(rhs_.size()),
                                       objective_);
  if (res.status != lp::LpStatus::kOptimal) return std::nullopt;
  double t = res.x[n];
  if (t < 1e-9) return std::nullopt;  // empty interior (volume 0)
  geom::Vec center(res.x.begin(), res.x.begin() + n);
  double radius = std::min(t, outer_radius_ - geom::Norm(center));
  if (radius < 1e-9) return std::nullopt;
  return InnerBall{std::move(center), radius};
}

std::optional<InnerBall> FindInnerBall(
    const std::vector<std::pair<geom::Vec, double>>& halfspaces, int dim,
    double outer_radius) {
  InnerBallFinder finder(dim, outer_radius);
  return finder.Find(halfspaces);
}

}  // namespace mudb::convex
