// Content-addressed identity for convex bodies: the dedup key of the
// measurement serving layer.
//
// Real workloads evaluate μ(q, D, (a,s)) for many candidate tuples over one
// database, and the grounded constraint systems share almost all of their
// geometry. CanonicalizeBody maps a ConvexBody to a key that is invariant
// under the representation noise such sharing produces:
//
//   * halfspace row order (rows are sorted canonically),
//   * positive rescaling of a row (a, b) → (c·a, c·b): every row is divided
//     by the magnitude of its first nonzero coefficient — one correctly
//     rounded IEEE division per entry, so the key is bit-stable whenever the
//     rescaled inputs are themselves exact (integer and dyadic-rational
//     coefficient systems, the grounding's common case) and within 1 ulp of
//     stable otherwise,
//   * duplicated constraints (equal canonical rows collapse),
//   * ball constraint order (balls are sorted canonically).
//
// Equal keys are treated as equal bodies by every layer built on top (the
// in-call dedup of volume/union_volume.cc and the cross-request
// service/estimate_cache.h): a 128-bit fingerprint collision is a ~2^-64
// birthday event, far below the estimators' failure probability δ.
//
// Canonical keys define the dedup equality class; bitwise caching needs
// more. A volume estimate is a pure function of the *raw* representation
// the sampling kernels walk (row order perturbs LP pivoting, non-dyadic
// rescalings perturb chord arithmetic), so cross-call cache keys combine
// the canonical key with RawBodyFingerprint and the estimation tier
// (CombineKeyWithParams), and RngForKey derives the estimate's RNG stream
// from that combined key. A cached estimate can then be reused across
// requests while staying bit-identical to what recomputation would produce
// — the serving layer's determinism contract rests on it.

#ifndef MUDB_SRC_CONVEX_CANONICAL_H_
#define MUDB_SRC_CONVEX_CANONICAL_H_

#include <cstdint>

#include "src/convex/body.h"
#include "src/util/fingerprint.h"
#include "src/util/rng.h"

namespace mudb::convex {

/// The canonical content key of a convex body (see file comment for the
/// invariances). A value type: compare, order, and hash freely.
struct CanonicalBodyKey {
  util::Fingerprint128 fp;

  friend bool operator==(const CanonicalBodyKey& a, const CanonicalBodyKey& b) {
    return a.fp == b.fp;
  }
  friend bool operator!=(const CanonicalBodyKey& a, const CanonicalBodyKey& b) {
    return !(a == b);
  }
  friend bool operator<(const CanonicalBodyKey& a, const CanonicalBodyKey& b) {
    return a.fp < b.fp;
  }

  struct Hash {
    size_t operator()(const CanonicalBodyKey& k) const {
      return util::Fingerprint128::Hash{}(k.fp);
    }
  };
};

/// Computes the canonical key of `body`. Deterministic and allocation-light:
/// O(m log m) in the constraint count, no sampling, no LP.
CanonicalBodyKey CanonicalizeBody(const ConvexBody& body);

/// Fingerprint of a body's *raw* representation as the sampling kernels
/// consume it — the flat constraint arrays in insertion order, plus the
/// seeding geometry (inner ball, outer radius bound). Canonically equal
/// bodies can still differ here (row order perturbs LP pivoting; non-dyadic
/// rescalings perturb the chord arithmetic), and a volume estimate is a
/// bitwise-pure function of the raw form, not the canonical one — so
/// cross-call caches must key on this in addition to the canonical key.
util::Fingerprint128 RawBodyFingerprint(const ConvexBody& body,
                                        const geom::Vec& inner_center,
                                        double inner_radius,
                                        double outer_radius_bound);

/// Builds the cross-call cache key of a volume estimate: the canonical body
/// key, the raw-representation fingerprint (what the estimate is bitwise a
/// function of), the estimation parameters (the "ε tier"), and the caller's
/// RNG lineage (`rng_salt`, e.g. the forked call rng's seed). Keeping the
/// salt in the key preserves the API's seed sensitivity — distinct seeds
/// give distinct estimates — while requests that share a seed (the serving
/// layer's common case) share estimates. Streams absorbed here are
/// domain-separated from body keys.
CanonicalBodyKey CombineKeyWithParams(const CanonicalBodyKey& key,
                                      const util::Fingerprint128& raw,
                                      double epsilon, int walk_steps,
                                      int samples_per_phase,
                                      uint64_t rng_salt);

/// The RNG stream owned by a (body × tier) key: a pure function of the key,
/// so an estimate computed from it can be cached and replayed bit-exactly by
/// any request that produces the same key.
util::Rng RngForKey(const CanonicalBodyKey& key);

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_CANONICAL_H_
