#include "src/convex/canonical.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mudb::convex {

namespace {

// Domain tags keep the key families (bodies, raw forms, tiers) in disjoint
// codomains.
constexpr uint64_t kBodyDomain = 0xB0D1'E5C0'FFEE'0001ull;
constexpr uint64_t kTierDomain = 0xB0D1'E5C0'FFEE'0002ull;
constexpr uint64_t kRawDomain = 0xB0D1'E5C0'FFEE'0004ull;

// Sentinels absorbed between sections so (rows, balls) splits are unambiguous.
constexpr uint64_t kRowsMarker = 0x51;
constexpr uint64_t kBallsMarker = 0x52;
constexpr uint64_t kInfeasibleMarker = 0x53;

double DropNegZero(double v) { return v == 0.0 ? 0.0 : v; }

}  // namespace

CanonicalBodyKey CanonicalizeBody(const ConvexBody& body) {
  const int n = body.dim();
  const int m = body.num_halfspaces();
  const int k = body.num_balls();
  const double* a = body.halfspace_matrix();
  const double* b = body.offsets();

  // Canonical rows: (a, b) scaled by 1/|a_p| with p the first nonzero
  // column. Positive row rescalings cancel in the (correctly rounded)
  // division; all-zero rows carry no geometry (0 <= b) unless b < 0, which
  // makes the whole body empty.
  bool infeasible = false;
  std::vector<std::vector<double>> rows;
  rows.reserve(m);
  for (int i = 0; i < m; ++i) {
    const double* row = a + static_cast<size_t>(i) * n;
    int pivot = -1;
    for (int j = 0; j < n; ++j) {
      if (row[j] != 0.0) {
        pivot = j;
        break;
      }
    }
    if (pivot < 0) {
      if (b[i] < 0.0) infeasible = true;  // 0 <= b with b < 0: empty body
      continue;                           // trivial row: no geometry
    }
    double scale = std::fabs(row[pivot]);
    std::vector<double> canon(n + 1);
    for (int j = 0; j < n; ++j) canon[j] = DropNegZero(row[j] / scale);
    canon[n] = DropNegZero(b[i] / scale);
    rows.push_back(std::move(canon));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  // Canonical balls: (center, radius²) sorted; duplicates collapse. Balls
  // have no scale freedom, so the stored SoA values are already canonical up
  // to order and signed zeros.
  const double* centers = body.ball_centers();
  const double* radius2 = body.ball_radius2();
  std::vector<std::vector<double>> balls;
  balls.reserve(k);
  for (int i = 0; i < k; ++i) {
    std::vector<double> canon(n + 1);
    for (int j = 0; j < n; ++j) {
      canon[j] = DropNegZero(centers[static_cast<size_t>(i) * n + j]);
    }
    canon[n] = radius2[i];
    balls.push_back(std::move(canon));
  }
  std::sort(balls.begin(), balls.end());
  balls.erase(std::unique(balls.begin(), balls.end()), balls.end());

  util::FingerprintHasher hasher(kBodyDomain);
  hasher.Absorb(static_cast<uint64_t>(n));
  if (infeasible) hasher.Absorb(kInfeasibleMarker);
  hasher.Absorb(kRowsMarker);
  hasher.Absorb(rows.size());
  for (const auto& row : rows) {
    for (double v : row) hasher.AbsorbDouble(v);
  }
  hasher.Absorb(kBallsMarker);
  hasher.Absorb(balls.size());
  for (const auto& ball : balls) {
    for (double v : ball) hasher.AbsorbDouble(v);
  }
  return CanonicalBodyKey{hasher.Digest()};
}

util::Fingerprint128 RawBodyFingerprint(const ConvexBody& body,
                                        const geom::Vec& inner_center,
                                        double inner_radius,
                                        double outer_radius_bound) {
  const int n = body.dim();
  const int m = body.num_halfspaces();
  const int k = body.num_balls();
  util::FingerprintHasher hasher(kRawDomain);
  hasher.Absorb(static_cast<uint64_t>(n));
  hasher.Absorb(static_cast<uint64_t>(m));
  const double* a = body.halfspace_matrix();
  for (int i = 0; i < m * n; ++i) hasher.AbsorbDouble(a[i]);
  const double* b = body.offsets();
  for (int i = 0; i < m; ++i) hasher.AbsorbDouble(b[i]);
  hasher.Absorb(static_cast<uint64_t>(k));
  const double* centers = body.ball_centers();
  for (int i = 0; i < k * n; ++i) hasher.AbsorbDouble(centers[i]);
  const double* radius2 = body.ball_radius2();
  for (int i = 0; i < k; ++i) hasher.AbsorbDouble(radius2[i]);
  for (double c : inner_center) hasher.AbsorbDouble(c);
  hasher.AbsorbDouble(inner_radius);
  hasher.AbsorbDouble(outer_radius_bound);
  return hasher.Digest();
}

CanonicalBodyKey CombineKeyWithParams(const CanonicalBodyKey& key,
                                      const util::Fingerprint128& raw,
                                      double epsilon, int walk_steps,
                                      int samples_per_phase,
                                      uint64_t rng_salt) {
  util::FingerprintHasher hasher(kTierDomain);
  hasher.Absorb(key.fp.hi);
  hasher.Absorb(key.fp.lo);
  hasher.Absorb(raw.hi);
  hasher.Absorb(raw.lo);
  hasher.AbsorbDouble(epsilon);
  hasher.Absorb(static_cast<uint64_t>(static_cast<int64_t>(walk_steps)));
  hasher.Absorb(
      static_cast<uint64_t>(static_cast<int64_t>(samples_per_phase)));
  hasher.Absorb(rng_salt);
  return CanonicalBodyKey{hasher.Digest()};
}

util::Rng RngForKey(const CanonicalBodyKey& key) {
  // Split is a pure function of (seed, stream), so this is a pure function
  // of the key — the property the cross-request cache relies on.
  return util::Rng(key.fp.hi).Split(key.fp.lo);
}

}  // namespace mudb::convex
