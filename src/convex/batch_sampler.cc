#include "src/convex/batch_sampler.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "src/convex/sampler.h"

namespace mudb::convex {

std::vector<ChainGroup> PartitionChainGrid(int chains) {
  std::vector<ChainGroup> groups;
  for (int first = 0; first < chains;) {
    int width = kBatchMaxLanes;
    while (width > chains - first) width >>= 1;
    groups.push_back({first, width});
    first += width;
  }
  return groups;
}

BatchedHitAndRunSampler::BatchedHitAndRunSampler(const ConvexBody* body,
                                                 int lanes)
    : body_(body), lanes_(lanes) {
  MUDB_CHECK(body_ != nullptr);
  MUDB_CHECK(lanes_ >= 1);
  const size_t k_lanes = static_cast<size_t>(lanes_);
  x_.assign(k_lanes * body_->dim(), 0.0);
  d_.assign(k_lanes * body_->dim(), 0.0);
  ax_.assign(k_lanes * body_->num_halfspaces(), 0.0);
  ad_.assign(k_lanes * body_->num_halfspaces(), 0.0);
  ball_bq_.assign(k_lanes * body_->num_balls(), 0.0);
  ball_dist2_.assign(k_lanes * body_->num_balls(), 0.0);
  lo_.resize(k_lanes);
  hi_.resize(k_lanes);
  t_.resize(k_lanes);
  alive_.assign(k_lanes, 0);
  bad_.assign(k_lanes, 0);
  initialized_.assign(k_lanes, 0);
  steps_since_refresh_.assign(k_lanes, 0);
  rng_ptrs_.resize(k_lanes);
  dense_lanes_.resize(k_lanes);
  for (int l = 0; l < lanes_; ++l) dense_lanes_[l] = l;
}

void BatchedHitAndRunSampler::ResetLane(int lane, const geom::Vec& start) {
  MUDB_CHECK(lane >= 0 && lane < lanes_);
  MUDB_CHECK(static_cast<int>(start.size()) == body_->dim());
  // Same contract as the scalar constructor/set_current: an exterior point
  // would silently freeze the chain, so fail fast here instead.
  MUDB_CHECK(body_->Contains(start));
  const int n = body_->dim();
  const size_t stride = static_cast<size_t>(lanes_);
  for (int j = 0; j < n; ++j) x_[static_cast<size_t>(j) * stride + lane] = start[j];
  initialized_[lane] = 1;
  RefreshLane(lane);
}

void BatchedHitAndRunSampler::GetCurrent(int lane, geom::Vec* out) const {
  MUDB_DCHECK(lane >= 0 && lane < lanes_);
  MUDB_DCHECK(initialized_[lane]);
  const int n = body_->dim();
  const size_t stride = static_cast<size_t>(lanes_);
  out->resize(n);
  for (int j = 0; j < n; ++j) {
    (*out)[j] = x_[static_cast<size_t>(j) * stride + lane];
  }
}

void BatchedHitAndRunSampler::RefreshLane(int lane) {
  const int n = body_->dim();
  const int m = body_->num_halfspaces();
  const int k = body_->num_balls();
  const size_t stride = static_cast<size_t>(lanes_);
  const double* a = body_->halfspace_matrix();
  for (int i = 0; i < m; ++i) {
    const double* row = a + static_cast<size_t>(i) * n;
    double ax = 0.0;
    for (int j = 0; j < n; ++j) {
      ax += row[j] * x_[static_cast<size_t>(j) * stride + lane];
    }
    ax_[static_cast<size_t>(i) * stride + lane] = ax;
  }
  const double* centers = body_->ball_centers();
  for (int kk = 0; kk < k; ++kk) {
    const double* c = centers + static_cast<size_t>(kk) * n;
    double d2 = 0.0;
    for (int j = 0; j < n; ++j) {
      double diff = x_[static_cast<size_t>(j) * stride + lane] - c[j];
      d2 += diff * diff;
    }
    ball_dist2_[static_cast<size_t>(kk) * stride + lane] = d2;
  }
  steps_since_refresh_[lane] = 0;
}

// Dense lockstep walk with a compile-time lane count. Same per-lane
// floating-point sequence as the scalar HitAndRunSampler::Step (same
// operations, same order, same tolerances — the bit-identity contract), but
// structured as K-wide panel operations: the lane loops have constant trip
// count K so they unroll completely, the per-row A·d and (x−c)·d dot
// products accumulate in K registers, and the post-draw move is fused with
// the containment guard into a single pass over the cached products. The
// step loop lives inside this function so panel pointers are hoisted once.
template <int K>
void BatchedHitAndRunSampler::WalkDense(int steps, util::Rng* const* rngs) {
  const int n = body_->dim();
  const int m = body_->num_halfspaces();
  const int k = body_->num_balls();
  const double* __restrict a = body_->halfspace_matrix();
  const double* __restrict b = body_->offsets();
  const double* __restrict centers = body_->ball_centers();
  const double* __restrict r2 = body_->ball_radius2();
  double* __restrict x = x_.data();
  double* __restrict d = d_.data();
  double* __restrict ax = ax_.data();
  double* __restrict ad = ad_.data();
  double* __restrict bq = ball_bq_.data();
  double* __restrict dist2 = ball_dist2_.data();
  const double kInf = std::numeric_limits<double>::infinity();
  double lo[K], hi[K], t[K];
  // 64-bit lane masks: a uint8_t mask mixes 1- and 8-byte elements in the
  // K-wide chord loops, which the vectorizer rejects without AVX-512BW;
  // word-sized masks keep every lane loop a uniform 8-byte-element block.
  uint64_t alive[K], bad[K];

  for (int step = 0; step < steps; ++step) {
    // Directions: per lane, the exact SampleUnitSphere sequence (n
    // Gaussians, norm accumulated in draw order, zero-norm redraw, scale by
    // 1/norm). The draws are inherently lane-serial (each lane's own
    // engine), but the normalization is not: the sqrt, reciprocal, and
    // scale run K lanes wide, instead of paying each lane the full
    // sqrt+divide latency chain back to back.
    double nrm[K];
    for (int l = 0; l < K; ++l) {
      nrm[l] = rngs[l]->GaussianFillSq(n, d + l, K);
    }
    for (int l = 0; l < K; ++l) nrm[l] = std::sqrt(nrm[l]);
    for (int l = 0; l < K; ++l) {
      // Cold path: an exactly-zero draw redraws this lane, as the scalar
      // do-while does (same per-engine draw order).
      while (nrm[l] == 0.0) {
        nrm[l] = std::sqrt(rngs[l]->GaussianFillSq(n, d + l, K));
      }
    }
    double inv[K];
    for (int l = 0; l < K; ++l) inv[l] = 1.0 / nrm[l];
    for (int j = 0; j < n; ++j) {
      double* __restrict dj = d + j * K;
      for (int l = 0; l < K; ++l) dj[l] *= inv[l];
    }
    for (int l = 0; l < K; ++l) {
      lo[l] = -kInf;
      hi[l] = kInf;
      alive[l] = 1;
    }

    // Halfspace panel: A·D fused with the chord interval, row by row. Each
    // lane's dot product accumulates in the scalar kernel's j order, in a
    // register, while the row entry a[i][j] is loaded once for all lanes.
    for (int i = 0; i < m; ++i) {
      const double* __restrict row = a + i * n;
      double acc[K];
      for (int l = 0; l < K; ++l) acc[l] = 0.0;
      for (int j = 0; j < n; ++j) {
        const double aij = row[j];
        const double* __restrict dj = d + j * K;
        for (int l = 0; l < K; ++l) acc[l] += aij * dj[l];
      }
      double* __restrict ad_row = ad + i * K;
      const double* __restrict ax_row = ax + i * K;
      const double bi = b[i];
      // Spill the accumulators before the chord update: the unrolled
      // accumulation promotes acc[] to SSA registers, which the loop
      // vectorizer cannot type — reloading from the panel row keeps the
      // chord loop one K-wide vector block.
      for (int l = 0; l < K; ++l) ad_row[l] = acc[l];
      for (int l = 0; l < K; ++l) {
        const double adv = ad_row[l];
        const bool grazing = std::fabs(adv) < 1e-14;
        // Guarded denominator keeps the lockstep divide well-defined on
        // grazing lanes; the quotient is only consumed when !grazing, where
        // it is exactly the scalar (b − ax)/ad.
        const double ti = (bi - ax_row[l]) / (grazing ? 1.0 : adv);
        hi[l] = (!grazing && adv > 0) ? std::min(hi[l], ti) : hi[l];
        lo[l] = (!grazing && adv < 0) ? std::max(lo[l], ti) : lo[l];
        alive[l] = (grazing && ax_row[l] > bi + 1e-9) ? uint64_t{0} : alive[l];
      }
    }

    // Ball panel: (x−c)·d per lane, then the quadratic chord cut against
    // the cached ||x−c||². A non-positive discriminant kills the lane for
    // this step, exactly like the scalar early return; the guarded sqrt
    // operand keeps dead-lane arithmetic defined.
    for (int kk = 0; kk < k; ++kk) {
      const double* __restrict c = centers + kk * n;
      double acc[K];
      for (int l = 0; l < K; ++l) acc[l] = 0.0;
      for (int j = 0; j < n; ++j) {
        const double cj = c[j];
        const double* __restrict xj = x + j * K;
        const double* __restrict dj = d + j * K;
        for (int l = 0; l < K; ++l) acc[l] += (xj[l] - cj) * dj[l];
      }
      double* __restrict bq_row = bq + kk * K;
      const double* __restrict d2_row = dist2 + kk * K;
      const double rr = r2[kk];
      for (int l = 0; l < K; ++l) bq_row[l] = acc[l];
      for (int l = 0; l < K; ++l) {
        const double bqv = bq_row[l];
        const double disc = bqv * bqv - (d2_row[l] - rr);
        alive[l] = (disc <= 0) ? uint64_t{0} : alive[l];
        const double sq = std::sqrt(disc > 0 ? disc : 0.0);
        lo[l] = std::max(lo[l], -bqv - sq);
        hi[l] = std::min(hi[l], -bqv + sq);
      }
    }

    // Chord validity, then one uniform draw per surviving lane. Dead lanes
    // draw nothing (their rng streams stay in lockstep with the scalar
    // sampler's early returns) and move by exactly t = 0.
    for (int l = 0; l < K; ++l) {
      if (!(lo[l] < hi[l]) || !std::isfinite(lo[l]) || !std::isfinite(hi[l])) {
        alive[l] = 0;
      }
      t[l] = alive[l] ? rngs[l]->Uniform(lo[l], hi[l]) : 0.0;
    }

    // Move panels fused with the containment guard: x += t·d, then the
    // O(m + k) incremental cache update computes each updated product and
    // compares it against its tolerance in the same pass (same values and
    // comparisons as the scalar guard — only the bad-flag aggregation order
    // differs, which no floating-point result depends on). A dead lane's
    // t = 0 makes every update an exact no-op.
    for (int j = 0; j < n; ++j) {
      double* __restrict xj = x + j * K;
      const double* __restrict dj = d + j * K;
      for (int l = 0; l < K; ++l) xj[l] += t[l] * dj[l];
    }
    for (int l = 0; l < K; ++l) bad[l] = 0;
    for (int i = 0; i < m; ++i) {
      double* __restrict ax_row = ax + i * K;
      const double* __restrict ad_row = ad + i * K;
      const double bi = b[i] + 1e-12;
      for (int l = 0; l < K; ++l) {
        const double v = ax_row[l] + t[l] * ad_row[l];
        ax_row[l] = v;
        bad[l] |= static_cast<uint64_t>(v > bi);
      }
    }
    // ||x + t·d − c||² = ||x − c||² + t·(2·(x−c)·d + t) for unit d.
    for (int kk = 0; kk < k; ++kk) {
      double* __restrict d2_row = dist2 + kk * K;
      const double* __restrict bq_row = bq + kk * K;
      const double rr = r2[kk] + 1e-12;
      for (int l = 0; l < K; ++l) {
        const double v = d2_row[l] + t[l] * (2.0 * bq_row[l] + t[l]);
        d2_row[l] = v;
        bad[l] |= static_cast<uint64_t>(v > rr);
      }
    }
    for (int l = 0; l < K; ++l) {
      if (!alive[l]) continue;  // the scalar path returns before its guard
      if (bad[l]) {
        // Rounding pushed the point marginally outside: pull back to the
        // chord midpoint, which is interior, and resync the lane exactly
        // (cold path, same as the scalar sampler).
        const double back = 0.5 * (lo[l] + hi[l]) - t[l];
        for (int j = 0; j < n; ++j) x[j * K + l] += back * d[j * K + l];
        RefreshLane(l);
        continue;
      }
      if (++steps_since_refresh_[l] >= kSamplerRefreshInterval) RefreshLane(l);
    }
  }
}

// One lockstep step over an arbitrary listed lane subset (the Karp–Luby
// loop's access pattern). Identical per-lane floating-point sequence to
// WalkDense — both are verbatim transcriptions of the scalar Step — with
// lanes addressed indirectly through lane_list.
void BatchedHitAndRunSampler::StepSubset(const int* lane_list, int count,
                                         util::Rng* const* rngs) {
  const int n = body_->dim();
  const int m = body_->num_halfspaces();
  const int k = body_->num_balls();
  const size_t stride = static_cast<size_t>(lanes_);
  const double* __restrict a = body_->halfspace_matrix();
  const double* __restrict b = body_->offsets();
  const double* __restrict centers = body_->ball_centers();
  const double* __restrict r2 = body_->ball_radius2();
  double* __restrict x = x_.data();
  double* __restrict d = d_.data();
  double* __restrict ax = ax_.data();
  double* __restrict ad = ad_.data();
  double* __restrict bq = ball_bq_.data();
  double* __restrict dist2 = ball_dist2_.data();
  double* __restrict lo = lo_.data();
  double* __restrict hi = hi_.data();
  double* __restrict t = t_.data();
  uint8_t* __restrict alive = alive_.data();
  const double kInf = std::numeric_limits<double>::infinity();

  // Directions: per lane, the exact SampleUnitSphere sequence (n Gaussians,
  // norm accumulated in index order, zero-norm redraw, scale by 1/norm),
  // each lane drawing from its own engine straight into its panel column.
  for (int idx = 0; idx < count; ++idx) {
    const int l = lane_list[idx];
    util::Rng& rng = *rngs[idx];
    double norm;
    do {
      rng.GaussianFill(n, d + l, lanes_);
      double s = 0.0;
      for (int j = 0; j < n; ++j) {
        const double v = d[static_cast<size_t>(j) * stride + l];
        s += v * v;
      }
      norm = std::sqrt(s);
    } while (norm == 0.0);
    const double inv = 1.0 / norm;
    for (int j = 0; j < n; ++j) d[static_cast<size_t>(j) * stride + l] *= inv;
    lo[l] = -kInf;
    hi[l] = kInf;
    alive[l] = 1;
  }

  // Halfspace rows: A·d fused with the chord interval, each listed lane
  // accumulating its dot product in the scalar kernel's j order.
  for (int i = 0; i < m; ++i) {
    const double* __restrict row = a + static_cast<size_t>(i) * n;
    double* __restrict ad_row = ad + static_cast<size_t>(i) * stride;
    for (int idx = 0; idx < count; ++idx) ad_row[lane_list[idx]] = 0.0;
    for (int j = 0; j < n; ++j) {
      const double aij = row[j];
      const double* __restrict dj = d + static_cast<size_t>(j) * stride;
      for (int idx = 0; idx < count; ++idx) {
        const int l = lane_list[idx];
        ad_row[l] += aij * dj[l];
      }
    }
    const double bi = b[i];
    const double* __restrict ax_row = ax + static_cast<size_t>(i) * stride;
    for (int idx = 0; idx < count; ++idx) {
      const int l = lane_list[idx];
      const double adv = ad_row[l];
      const bool grazing = std::fabs(adv) < 1e-14;
      // Guarded denominator keeps the lockstep divide well-defined on
      // grazing lanes; the quotient is only consumed when !grazing, where it
      // is exactly the scalar (b − ax)/ad.
      const double ti = (bi - ax_row[l]) / (grazing ? 1.0 : adv);
      if (!grazing && adv > 0) hi[l] = std::min(hi[l], ti);
      if (!grazing && adv < 0) lo[l] = std::max(lo[l], ti);
      if (grazing && ax_row[l] > bi + 1e-9) alive[l] = 0;  // outside; no chord
    }
  }

  // Balls: (x−c)·d per lane, then the quadratic chord cut against the
  // cached ||x−c||². A non-positive discriminant kills the lane for this
  // step (line misses or grazes the ball), exactly like the scalar early
  // return; the guarded sqrt operand keeps dead-lane arithmetic defined.
  for (int kk = 0; kk < k; ++kk) {
    const double* __restrict c = centers + static_cast<size_t>(kk) * n;
    double* __restrict bq_row = bq + static_cast<size_t>(kk) * stride;
    for (int idx = 0; idx < count; ++idx) bq_row[lane_list[idx]] = 0.0;
    for (int j = 0; j < n; ++j) {
      const double cj = c[j];
      const double* __restrict xj = x + static_cast<size_t>(j) * stride;
      const double* __restrict dj = d + static_cast<size_t>(j) * stride;
      for (int idx = 0; idx < count; ++idx) {
        const int l = lane_list[idx];
        bq_row[l] += (xj[l] - cj) * dj[l];
      }
    }
    const double rr = r2[kk];
    const double* __restrict d2_row = dist2 + static_cast<size_t>(kk) * stride;
    for (int idx = 0; idx < count; ++idx) {
      const int l = lane_list[idx];
      const double bqv = bq_row[l];
      const double disc = bqv * bqv - (d2_row[l] - rr);
      if (disc <= 0) alive[l] = 0;
      const double sq = std::sqrt(disc > 0 ? disc : 0.0);
      lo[l] = std::max(lo[l], -bqv - sq);
      hi[l] = std::min(hi[l], -bqv + sq);
    }
  }

  // Chord validity, then one uniform draw per surviving lane. Dead lanes
  // draw nothing (their rng streams stay in lockstep with the scalar
  // sampler's early returns) and move by exactly t = 0.
  for (int idx = 0; idx < count; ++idx) {
    const int l = lane_list[idx];
    if (!(lo[l] < hi[l]) || !std::isfinite(lo[l]) || !std::isfinite(hi[l])) {
      alive[l] = 0;
    }
    t[l] = alive[l] ? rngs[idx]->Uniform(lo[l], hi[l]) : 0.0;
  }

  // Move fused with the containment guard: x += t·d, then the O(m + k)
  // incremental cache update computes each updated product and compares it
  // against its tolerance in the same pass. A dead lane's t = 0 makes every
  // update an exact no-op, so its state stays value-identical to the scalar
  // sampler's untouched state.
  for (int j = 0; j < n; ++j) {
    double* __restrict xj = x + static_cast<size_t>(j) * stride;
    const double* __restrict dj = d + static_cast<size_t>(j) * stride;
    for (int idx = 0; idx < count; ++idx) {
      const int l = lane_list[idx];
      xj[l] += t[l] * dj[l];
    }
  }
  uint8_t* __restrict bad = bad_.data();
  for (int idx = 0; idx < count; ++idx) bad[lane_list[idx]] = 0;
  for (int i = 0; i < m; ++i) {
    double* __restrict ax_row = ax + static_cast<size_t>(i) * stride;
    const double* __restrict ad_row = ad + static_cast<size_t>(i) * stride;
    const double bi = b[i] + 1e-12;
    for (int idx = 0; idx < count; ++idx) {
      const int l = lane_list[idx];
      const double v = ax_row[l] + t[l] * ad_row[l];
      ax_row[l] = v;
      bad[l] |= static_cast<uint8_t>(v > bi);
    }
  }
  // ||x + t·d − c||² = ||x − c||² + t·(2·(x−c)·d + t) for unit d.
  for (int kk = 0; kk < k; ++kk) {
    double* __restrict d2_row = dist2 + static_cast<size_t>(kk) * stride;
    const double* __restrict bq_row = bq + static_cast<size_t>(kk) * stride;
    const double rr = r2[kk] + 1e-12;
    for (int idx = 0; idx < count; ++idx) {
      const int l = lane_list[idx];
      const double v = d2_row[l] + t[l] * (2.0 * bq_row[l] + t[l]);
      d2_row[l] = v;
      bad[l] |= static_cast<uint8_t>(v > rr);
    }
  }
  for (int idx = 0; idx < count; ++idx) {
    const int l = lane_list[idx];
    if (!alive[l]) continue;  // the scalar path returns before its guard
    if (bad[l]) {
      // Rounding pushed the point marginally outside: pull back to the
      // chord midpoint, which is interior, and resync the lane exactly
      // (cold path, same as the scalar sampler).
      const double back = 0.5 * (lo[l] + hi[l]) - t[l];
      for (int j = 0; j < n; ++j) {
        x[static_cast<size_t>(j) * stride + l] +=
            back * d[static_cast<size_t>(j) * stride + l];
      }
      RefreshLane(l);
      continue;
    }
    if (++steps_since_refresh_[l] >= kSamplerRefreshInterval) RefreshLane(l);
  }
}

void BatchedHitAndRunSampler::WalkLanes(int steps, const int* lane_list,
                                        int count, util::Rng* const* rngs) {
  if (count <= 0 || steps <= 0) return;
  bool dense = count == lanes_;
  for (int idx = 0; dense && idx < count; ++idx) dense = lane_list[idx] == idx;
  for (int idx = 0; idx < count; ++idx) {
    MUDB_DCHECK(lane_list[idx] >= 0 && lane_list[idx] < lanes_);
    MUDB_DCHECK(initialized_[lane_list[idx]]);
  }
  if (dense) {
    switch (lanes_) {
      case 1: WalkDense<1>(steps, rngs); return;
      case 2: WalkDense<2>(steps, rngs); return;
      case 4: WalkDense<4>(steps, rngs); return;
      case 8: WalkDense<8>(steps, rngs); return;
      case 16: WalkDense<16>(steps, rngs); return;
      default: break;  // uncommon lane count: generic path below
    }
  }
  for (int s = 0; s < steps; ++s) StepSubset(lane_list, count, rngs);
}

void BatchedHitAndRunSampler::WalkAll(int steps, util::Rng* rngs) {
  for (int l = 0; l < lanes_; ++l) rng_ptrs_[l] = &rngs[l];
  WalkLanes(steps, dense_lanes_.data(), lanes_, rng_ptrs_.data());
}

}  // namespace mudb::convex
