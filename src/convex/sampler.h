// Hit-and-run: a Markov chain whose stationary distribution is uniform over a
// convex body — the sampling oracle of the volume estimators. This is the
// scalar reference kernel: the estimator chain grids themselves route
// through the vectorized K-chain twin (convex/batch_sampler.h), whose lanes
// must stay bit-identical to this sampler step for step; single chains and
// the equivalence tests walk this one.
//
// The step kernel is allocation-free and touches each constraint once. The
// sampler maintains ax = A·x (one entry per halfspace) and ||x − c_k||² (one
// per ball) incrementally: a step computes A·d fused with the chord interval,
// the move is ax += t·(A·d) in O(m), and the post-step containment guard
// compares the cached products against b instead of re-scanning the
// constraint matrix. Caches are recomputed from scratch on a fixed step
// schedule to keep incremental rounding drift below the containment
// tolerances; the schedule depends only on the step count, so chains remain
// a pure function of (body, start, rng stream) — the thread-count
// bit-invariance contract of the estimators is unaffected.

#ifndef MUDB_SRC_CONVEX_SAMPLER_H_
#define MUDB_SRC_CONVEX_SAMPLER_H_

#include <vector>

#include "src/convex/body.h"
#include "src/geom/geometry.h"
#include "src/util/rng.h"

namespace mudb::convex {

/// Exact-recompute cadence of the incremental caches, shared by the scalar
/// sampler and the batched K-chain kernel. Per-step drift is a few ulps, so
/// over an interval the accumulated error stays orders of magnitude below
/// the 1e-12 containment tolerance, while the amortized cost of the O(m·n)
/// refresh is negligible. The schedule depends only on each chain's own step
/// count — part of the determinism contract (chains stay pure functions of
/// (body, start, rng stream)) and of the batched kernel's lane ≡ scalar
/// bit-identity.
inline constexpr int kSamplerRefreshInterval = 1024;

/// Hit-and-run sampler over a ConvexBody. The chain must start at an interior
/// point (e.g. the center of an inner ball). The body must not gain
/// constraints while a sampler walks on it (SetBallRadius between walks is
/// fine: call set_current to resync, or construct samplers after the radius
/// is set, as the annealing estimator does).
class HitAndRunSampler {
 public:
  /// `body` must outlive the sampler; `start` must lie inside the body.
  HitAndRunSampler(const ConvexBody* body, geom::Vec start);

  /// One hit-and-run step: picks a uniform direction, intersects the chord,
  /// moves to a uniform point on it.
  void Step(util::Rng& rng);

  /// Runs `n` steps.
  void Walk(int n, util::Rng& rng);

  const geom::Vec& current() const { return x_; }
  void set_current(geom::Vec x);

 private:
  /// Recomputes the cached constraint products from x_ exactly.
  void RefreshProducts();
  /// x += t·d and the O(m + k) cache update that goes with it.
  void ApplyMove(double t);

  const ConvexBody* body_;
  geom::Vec x_;
  // Preallocated step scratch: direction, A·d, (x−c_k)·d.
  geom::Vec d_;
  std::vector<double> ad_;
  std::vector<double> ball_bq_;
  // Incrementally maintained products: A·x and ||x − c_k||².
  std::vector<double> ax_;
  std::vector<double> ball_dist2_;
  int steps_since_refresh_ = 0;
};

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_SAMPLER_H_
