// Hit-and-run: a Markov chain whose stationary distribution is uniform over a
// convex body. Used as the sampling oracle of the volume estimators.

#ifndef MUDB_SRC_CONVEX_SAMPLER_H_
#define MUDB_SRC_CONVEX_SAMPLER_H_

#include "src/convex/body.h"
#include "src/geom/geometry.h"
#include "src/util/rng.h"

namespace mudb::convex {

/// Hit-and-run sampler over a ConvexBody. The chain must start at an interior
/// point (e.g. the center of an inner ball).
class HitAndRunSampler {
 public:
  /// `body` must outlive the sampler; `start` must lie inside the body.
  HitAndRunSampler(const ConvexBody* body, geom::Vec start);

  /// One hit-and-run step: picks a uniform direction, intersects the chord,
  /// moves to a uniform point on it.
  void Step(util::Rng& rng);

  /// Runs `n` steps.
  void Walk(int n, util::Rng& rng);

  const geom::Vec& current() const { return x_; }
  void set_current(geom::Vec x) { x_ = std::move(x); }

 private:
  const ConvexBody* body_;
  geom::Vec x_;
};

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_SAMPLER_H_
