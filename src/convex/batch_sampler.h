// K-chain hit-and-run in SoA lockstep: the vectorized multi-chain kernel.
//
// Every volume estimate runs many independent hit-and-run chains over the
// *same* flat constraint matrix A, so one lockstep step over K chains turns
// the per-step A·d products and chord min/max reductions into m×K
// matrix–panel operations: the row of A is loaded once and applied to K
// contiguous direction entries (lane-minor layout, auto-vectorizable), with
// far better cache reuse of A than K scalar chains walking it one at a time.
//
// Determinism is the hard constraint, not a side effect. Lane l is a fixed
// chain slot: it draws every deviate from its own rng (the chain's
// substream), carries its own incremental A·x / ball-distance caches with
// the same fixed 1024-step exact-refresh schedule as the scalar sampler, and
// performs per step exactly the floating-point operations, in exactly the
// order, that `HitAndRunSampler::Step` performs — so every lane's trajectory
// is bit-identical to a scalar sampler walking (body, start, substream),
// for any K and any lane→chain mapping. The estimator chain grids —
// the annealed phases of convex/volume.cc and the Karp–Luby loop of
// volume/union_volume.cc — route through this kernel via
// PartitionChainGrid without perturbing any estimate
// (`sampler_kernel_test` / `batch_sampler_test` prove lane ≡ scalar at
// every dense-specialized K ∈ {1, 2, 4, 8, 16}).

#ifndef MUDB_SRC_CONVEX_BATCH_SAMPLER_H_
#define MUDB_SRC_CONVEX_BATCH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/convex/body.h"
#include "src/geom/geometry.h"
#include "src/util/rng.h"

namespace mudb::convex {

/// Widest dense lane count the kernel specializes (WalkDense<16> is the
/// 512-bit sweet spot on AVX-512 hosts; wider panels spill registers).
inline constexpr int kBatchMaxLanes = 16;

/// One contiguous slice of a chain grid: chains [first, first + width).
struct ChainGroup {
  int first;
  int width;
};

/// Slices the chain grid [0, chains) into contiguous groups whose widths are
/// the greedy power-of-two decomposition capped at kBatchMaxLanes (e.g. 7
/// chains → widths 4, 2, 1), so every group hits a dense WalkDense<K>
/// dispatch when all its lanes walk together. A pure function of `chains`:
/// estimator grids built on it — and the estimates reduced over them — are
/// independent of thread count, like the chunk grids they partition.
std::vector<ChainGroup> PartitionChainGrid(int chains);

/// K independent hit-and-run chains over one shared body, stepped in
/// lockstep. State is lane-minor SoA: positions, directions, and the cached
/// constraint products are n×K / m×K panels with lane l at column l. The
/// body must outlive the sampler and must not gain constraints while any
/// lane walks on it (SetBallRadius between walks is fine: ResetLane resyncs,
/// as with the scalar sampler's set_current).
class BatchedHitAndRunSampler {
 public:
  /// A kernel with `lanes` chain slots, all uninitialized. ResetLane each
  /// slot (at an interior point) before walking it.
  BatchedHitAndRunSampler(const ConvexBody* body, int lanes);

  int lanes() const { return lanes_; }
  const ConvexBody* body() const { return body_; }

  /// (Re)starts lane `lane` at `start`, which must lie inside the body, and
  /// recomputes that lane's caches exactly — the batched analogue of
  /// constructing a scalar sampler / calling set_current.
  void ResetLane(int lane, const geom::Vec& start);

  /// Whether ResetLane has been called on `lane` (lazy per-lane init: the
  /// Karp–Luby loop only pays burn-in for chains a chunk actually picks).
  bool lane_initialized(int lane) const { return initialized_[lane] != 0; }

  /// Copies lane `lane`'s current position into `out` (resized to dim).
  void GetCurrent(int lane, geom::Vec* out) const;

  /// Lockstep walk: every listed lane takes `steps` steps, the idx-th listed
  /// lane drawing from rngs[idx]. Lanes must be initialized and listed at
  /// most once; unlisted lanes are untouched (no state, no rng). The dense
  /// case (lane_list = 0..lanes-1 in order) dispatches to the vectorized
  /// panel kernel; sparse subsets take an indexed path with identical
  /// per-lane arithmetic.
  void WalkLanes(int steps, const int* lane_list, int count,
                 util::Rng* const* rngs);

  /// Dense convenience: all lanes walk `steps` steps, lane l drawing from
  /// rngs[l] (a contiguous array of `lanes()` engines).
  void WalkAll(int steps, util::Rng* rngs);

 private:
  /// Dense lockstep walk specialized on a compile-time lane count: the inner
  /// lane loops fully unroll into K-wide panel operations with register
  /// accumulators (the vectorized fast path, dispatched for K ∈ {1,2,4,8,16}).
  template <int K>
  void WalkDense(int steps, util::Rng* const* rngs);
  /// Generic indexed step for lane subsets (and dense lane counts outside
  /// the specialized set): identical per-lane arithmetic, indirect lanes.
  void StepSubset(const int* lane_list, int count, util::Rng* const* rngs);
  /// Exact per-lane cache recompute (the scalar RefreshProducts, one column).
  void RefreshLane(int lane);

  const ConvexBody* body_;
  int lanes_;
  // Lane-minor SoA panels: entry (row j, lane l) lives at [j*lanes_ + l].
  std::vector<double> x_;           // n×K positions
  std::vector<double> d_;           // n×K directions
  std::vector<double> ax_;          // m×K cached A·x
  std::vector<double> ad_;          // m×K per-step A·d
  std::vector<double> ball_bq_;     // k×K per-step (x−c)·d
  std::vector<double> ball_dist2_;  // k×K cached ||x−c||²
  // Per-lane step scratch.
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<double> t_;
  std::vector<uint8_t> alive_;  // this step still has a valid chord
  std::vector<uint8_t> bad_;    // post-move guard: outside by > tolerance
  std::vector<uint8_t> initialized_;
  std::vector<int> steps_since_refresh_;
  std::vector<util::Rng*> rng_ptrs_;  // WalkAll scratch
  std::vector<int> dense_lanes_;      // identity lane list
};

}  // namespace mudb::convex

#endif  // MUDB_SRC_CONVEX_BATCH_SAMPLER_H_
