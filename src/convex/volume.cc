#include "src/convex/volume.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mudb::convex {

VolumeEstimate EstimateVolume(const ConvexBody& body, const InnerBall& inner,
                              double outer_radius_bound,
                              const VolumeOptions& options, util::Rng& rng) {
  const int n = body.dim();
  MUDB_CHECK(n >= 1);
  MUDB_CHECK(inner.radius > 0);
  MUDB_CHECK(outer_radius_bound > inner.radius);

  // Annealing radii r_i = r0 · 2^{i/n} until the ball covers the body.
  std::vector<double> radii{inner.radius};
  double growth = std::pow(2.0, 1.0 / n);
  while (radii.back() < outer_radius_bound) {
    radii.push_back(radii.back() * growth);
  }
  const int phases = static_cast<int>(radii.size()) - 1;

  VolumeEstimate est;
  est.phases = phases;
  est.volume = geom::BallVolume(n, inner.radius);
  if (phases == 0) return est;

  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * n;
  int per_phase = options.samples_per_phase;
  if (per_phase <= 0) {
    // Relative variance of the product of `phases` ratio estimates, each a
    // Bernoulli mean >= 1/2 from m samples, is about phases/m; pick
    // m ≈ 8·phases/ε² and clamp to sane bounds.
    double m = 8.0 * phases / (options.epsilon * options.epsilon);
    per_phase = static_cast<int>(std::clamp(m, 200.0, 200000.0));
  }

  // Sample from the largest body first is not required; we go small→large so
  // each phase can warm-start from the previous chain state.
  geom::Vec point = inner.center;
  for (int i = 1; i <= phases; ++i) {
    ConvexBody phase_body = body;
    phase_body.AddBall(inner.center, radii[i]);
    HitAndRunSampler sampler(&phase_body, point);
    // Burn-in.
    sampler.Walk(10 * walk, rng);
    est.steps += 10 * walk;
    int inside = 0;
    double prev_r2 = radii[i - 1] * radii[i - 1];
    for (int s = 0; s < per_phase; ++s) {
      sampler.Walk(walk, rng);
      est.steps += walk;
      const geom::Vec& x = sampler.current();
      double d2 = 0.0;
      for (int j = 0; j < n; ++j) {
        double diff = x[j] - inner.center[j];
        d2 += diff * diff;
      }
      if (d2 <= prev_r2) ++inside;
    }
    double ratio = static_cast<double>(inside) / per_phase;
    // The true ratio is >= 2^{-1} by construction; guard the estimate away
    // from 0 so a pathological chain cannot blow up the product.
    ratio = std::max(ratio, 1e-3);
    est.volume /= ratio;
    point = sampler.current();
  }
  return est;
}

}  // namespace mudb::convex
