#include "src/convex/volume.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mudb::convex {

namespace {

// Chunk grid for one phase's sample budget: enough chunks to occupy a few
// workers, each large enough that the 10·walk burn-in of its chain stays a
// small fraction of its sampling work. A function of the budget only, so the
// grid — and with it the estimate — is independent of the thread count.
int NumChunks(int per_phase) {
  return std::clamp(per_phase / 256, 1, 64);
}

}  // namespace

VolumeEstimate EstimateVolume(const ConvexBody& body, const InnerBall& inner,
                              double outer_radius_bound,
                              const VolumeOptions& options, util::Rng& rng) {
  const int n = body.dim();
  MUDB_CHECK(n >= 1);
  MUDB_CHECK(inner.radius > 0);
  MUDB_CHECK(outer_radius_bound > inner.radius);

  // Annealing radii r_i = r0 · 2^{i/n} until the ball covers the body.
  std::vector<double> radii{inner.radius};
  double growth = std::pow(2.0, 1.0 / n);
  while (radii.back() < outer_radius_bound) {
    radii.push_back(radii.back() * growth);
  }
  const int phases = static_cast<int>(radii.size()) - 1;

  VolumeEstimate est;
  est.phases = phases;
  est.volume = geom::BallVolume(n, inner.radius);
  if (phases == 0) return est;

  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * n;
  int per_phase = options.samples_per_phase;
  if (per_phase <= 0) {
    // Relative variance of the product of `phases` ratio estimates, each a
    // Bernoulli mean >= 1/2 from m samples, is about phases/m; pick
    // m ≈ 8·phases/ε² and clamp to sane bounds.
    double m = 8.0 * phases / (options.epsilon * options.epsilon);
    per_phase = static_cast<int>(std::clamp(m, 200.0, 200000.0));
  }

  const int chunks = NumChunks(per_phase);
  std::vector<int> inside(chunks);
  util::Rng base = rng.Fork();
  // One phase body for the whole schedule: only the annealing ball's radius
  // changes between phases, so copying the constraint system per phase is
  // pure overhead.
  ConvexBody phase_body = body;
  phase_body.AddBall(inner.center, radii[phases]);
  const int anneal_ball = phase_body.num_balls() - 1;
  for (int i = 1; i <= phases; ++i) {
    phase_body.SetBallRadius(anneal_ball, radii[i]);
    double prev_r2 = radii[i - 1] * radii[i - 1];
    util::Rng phase_rng = base.Split(i);
    auto run_chunk = [&](int64_t c) {
      // Chunk c samples its share of the phase budget with its own chain,
      // started at the inner-ball center (interior of every phase body).
      int samples = per_phase / chunks + (c < per_phase % chunks ? 1 : 0);
      util::Rng chunk_rng = phase_rng.Split(c);
      HitAndRunSampler sampler(&phase_body, inner.center);
      sampler.Walk(10 * walk, chunk_rng);  // burn-in
      int hits = 0;
      for (int s = 0; s < samples; ++s) {
        sampler.Walk(walk, chunk_rng);
        const geom::Vec& x = sampler.current();
        double d2 = 0.0;
        for (int j = 0; j < n; ++j) {
          double diff = x[j] - inner.center[j];
          d2 += diff * diff;
        }
        if (d2 <= prev_r2) ++hits;
      }
      inside[c] = hits;
    };
    util::ThreadPool::RunGrid(options.pool, chunks, run_chunk);
    est.steps += static_cast<int64_t>(chunks) * 10 * walk +
                 static_cast<int64_t>(per_phase) * walk;
    int total_inside = 0;
    for (int c = 0; c < chunks; ++c) total_inside += inside[c];
    double ratio = static_cast<double>(total_inside) / per_phase;
    // The true ratio is >= 2^{-1} by construction; guard the estimate away
    // from 0 so a pathological chain cannot blow up the product.
    ratio = std::max(ratio, 1e-3);
    est.volume /= ratio;
  }
  return est;
}

}  // namespace mudb::convex
