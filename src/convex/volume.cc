#include "src/convex/volume.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/convex/batch_sampler.h"
#include "src/obs/trace.h"

namespace mudb::convex {

namespace {

// Chunk grid for one phase's sample budget: enough chunks to occupy a few
// workers, each large enough that the 10·walk burn-in of its chain stays a
// small fraction of its sampling work. A function of the budget only, so the
// grid — and with it the estimate — is independent of the thread count.
int NumChunks(int per_phase) {
  return std::clamp(per_phase / 256, 1, 64);
}

}  // namespace

VolumeEstimate EstimateVolume(const ConvexBody& body, const InnerBall& inner,
                              double outer_radius_bound,
                              const VolumeOptions& options, util::Rng& rng) {
  const int n = body.dim();
  MUDB_CHECK(n >= 1);
  MUDB_CHECK(inner.radius > 0);
  MUDB_CHECK(outer_radius_bound > inner.radius);

  // Annealing radii r_i = r0 · 2^{i/n} until the ball covers the body.
  std::vector<double> radii{inner.radius};
  double growth = std::pow(2.0, 1.0 / n);
  while (radii.back() < outer_radius_bound) {
    radii.push_back(radii.back() * growth);
  }
  const int phases = static_cast<int>(radii.size()) - 1;

  VolumeEstimate est;
  est.phases = phases;
  est.volume = geom::BallVolume(n, inner.radius);
  if (phases == 0) return est;

  int walk = options.walk_steps > 0 ? options.walk_steps : 4 * n;
  int per_phase = options.samples_per_phase;
  if (per_phase <= 0) {
    // Relative variance of the product of `phases` ratio estimates, each a
    // Bernoulli mean >= 1/2 from m samples, is about phases/m; pick
    // m ≈ 8·phases/ε² and clamp to sane bounds.
    double m = 8.0 * phases / (options.epsilon * options.epsilon);
    per_phase = static_cast<int>(std::clamp(m, 200.0, 200000.0));
  }

  const int chunks = NumChunks(per_phase);
  // Chunks route through the batched kernel in fixed power-of-two groups:
  // chunk c is always lane (c − first) of its group's kernel and draws only
  // from substream Split(c), so inside[c] — and the phase ratio — is
  // bit-identical to a scalar sampler walking chunk c alone, at any group
  // width and any thread count.
  const std::vector<ChainGroup> groups = PartitionChainGrid(chunks);
  std::vector<int> inside(chunks);
  util::Rng base = rng.Fork();
  // One phase body for the whole schedule: only the annealing ball's radius
  // changes between phases, so copying the constraint system per phase is
  // pure overhead.
  ConvexBody phase_body = body;
  phase_body.AddBall(inner.center, radii[phases]);
  const int anneal_ball = phase_body.num_balls() - 1;
  for (int i = 1; i <= phases; ++i) {
    // One span per annealing phase (phase-level only — never inside the
    // chain walks).
    obs::Span phase_span("volume.anneal_phase");
    if (phase_span.recording()) {
      phase_span.Annotate("phase", static_cast<double>(i));
      phase_span.Annotate("samples", static_cast<double>(per_phase));
    }
    phase_body.SetBallRadius(anneal_ball, radii[i]);
    double prev_r2 = radii[i - 1] * radii[i - 1];
    util::Rng phase_rng = base.Split(i);
    auto run_group = [&](int64_t g) {
      const int first = groups[g].first;
      const int width = groups[g].width;
      // Every chunk in the group samples its share of the phase budget with
      // its own chain lane, started at the inner-ball center (interior of
      // every phase body). All lanes share one burn-in/walk schedule —
      // except that the first (per_phase % chunks) chunks take one extra
      // sample, a prefix of the lanes, walked as a subset at the end.
      BatchedHitAndRunSampler sampler(&phase_body, width);
      std::vector<util::Rng> lane_rng;
      lane_rng.reserve(width);
      std::vector<util::Rng*> rngs(width);
      std::vector<int> lanes(width);
      for (int l = 0; l < width; ++l) {
        lane_rng.emplace_back(phase_rng.Split(first + l));
        rngs[l] = &lane_rng[l];
        lanes[l] = l;
        sampler.ResetLane(l, inner.center);
      }
      sampler.WalkLanes(10 * walk, lanes.data(), width, rngs.data());  // burn-in
      std::vector<int> hits(width, 0);
      geom::Vec x;
      auto tally = [&](int l) {
        sampler.GetCurrent(l, &x);
        double d2 = 0.0;
        for (int j = 0; j < n; ++j) {
          double diff = x[j] - inner.center[j];
          d2 += diff * diff;
        }
        if (d2 <= prev_r2) ++hits[l];
      };
      const int base_samples = per_phase / chunks;
      const int extra = std::clamp(per_phase % chunks - first, 0, width);
      for (int s = 0; s < base_samples; ++s) {
        sampler.WalkLanes(walk, lanes.data(), width, rngs.data());
        for (int l = 0; l < width; ++l) tally(l);
      }
      if (extra > 0) {
        sampler.WalkLanes(walk, lanes.data(), extra, rngs.data());
        for (int l = 0; l < extra; ++l) tally(l);
      }
      for (int l = 0; l < width; ++l) inside[first + l] = hits[l];
    };
    util::ThreadPool::RunGrid(options.pool, static_cast<int>(groups.size()),
                              run_group);
    est.steps += static_cast<int64_t>(chunks) * 10 * walk +
                 static_cast<int64_t>(per_phase) * walk;
    int total_inside = 0;
    for (int c = 0; c < chunks; ++c) total_inside += inside[c];
    double ratio = static_cast<double>(total_inside) / per_phase;
    // The true ratio is >= 2^{-1} by construction; guard the estimate away
    // from 0 so a pathological chain cannot blow up the product.
    ratio = std::max(ratio, 1e-3);
    est.volume /= ratio;
  }
  return est;
}

}  // namespace mudb::convex
