#include "src/measure/probabilistic.h"

#include <cmath>
#include <sstream>

namespace mudb::measure {

Distribution Distribution::Uniform(double lo, double hi) {
  MUDB_CHECK(lo <= hi);
  return Distribution(Kind::kUniform, lo, hi);
}

Distribution Distribution::Gaussian(double mean, double sd) {
  MUDB_CHECK(sd > 0);
  return Distribution(Kind::kGaussian, mean, sd);
}

Distribution Distribution::Exponential(double rate) {
  MUDB_CHECK(rate > 0);
  return Distribution(Kind::kExponential, rate, 0);
}

Distribution Distribution::Point(double value) {
  return Distribution(Kind::kPoint, value, 0);
}

double Distribution::Sample(util::Rng& rng) const {
  switch (kind_) {
    case Kind::kUniform:
      return rng.Uniform(a_, b_);
    case Kind::kGaussian:
      return a_ + b_ * rng.Gaussian();
    case Kind::kExponential: {
      // Inverse CDF; guard against log(0).
      double u = rng.Uniform01();
      if (u <= 0) u = 1e-300;
      return -std::log(u) / a_;
    }
    case Kind::kPoint:
      return a_;
  }
  return 0.0;
}

std::string Distribution::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kUniform:
      out << "Uniform[" << a_ << ", " << b_ << "]";
      break;
    case Kind::kGaussian:
      out << "N(" << a_ << ", " << b_ << "\xC2\xB2)";
      break;
    case Kind::kExponential:
      out << "Exp(" << a_ << ")";
      break;
    case Kind::kPoint:
      out << "Point(" << a_ << ")";
      break;
  }
  return out.str();
}

util::StatusOr<AfprasResult> ProbabilisticMeasure(
    const constraints::RealFormula& formula,
    const std::vector<Distribution>& dists, const AfprasOptions& options,
    util::Rng& rng) {
  if (options.epsilon <= 0 || options.epsilon > 1) {
    return util::Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(options.delta > 0) || !(options.delta < 1)) {
    return util::Status::InvalidArgument("delta must be in (0, 1)");
  }
  AfprasResult result;
  if (formula.is_constant()) {
    result.estimate =
        formula.kind() == constraints::RealFormula::Kind::kTrue ? 1.0 : 0.0;
    result.exact = true;
    FillAdditiveInterval(&result, options.epsilon);
    return result;
  }
  std::set<int> used = formula.UsedVariables();
  for (int v : used) {
    if (static_cast<size_t>(v) >= dists.size()) {
      return util::Status::InvalidArgument(
          "no distribution for variable z" + std::to_string(v));
    }
  }
  const int dim = static_cast<int>(dists.size());
  result.sampled_dimension = static_cast<int>(used.size());

  int64_t m = options.num_samples > 0
                  ? options.num_samples
                  : AfprasSampleCount(options.epsilon, options.delta);
  std::vector<double> z(dim, 0.0);
  int64_t hits = 0;
  for (int64_t s = 0; s < m; ++s) {
    // Only the used coordinates influence φ; sampling just those implements
    // the §9 optimization for the probabilistic semantics.
    for (int v : used) z[v] = dists[v].Sample(rng);
    if (formula.EvaluateAt(z)) ++hits;
  }
  result.samples = m;
  result.estimate = static_cast<double>(hits) / static_cast<double>(m);
  FillAdditiveInterval(&result, options.epsilon);
  return result;
}

}  // namespace mudb::measure
