#include "src/measure/afpras.h"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "src/geom/geometry.h"

namespace mudb::measure {

int64_t AfprasSampleCount(double epsilon, double delta) {
  MUDB_CHECK(epsilon > 0 && epsilon <= 1);
  MUDB_CHECK(delta > 0 && delta < 1);
  double m = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<int64_t>(std::ceil(m));
}

util::StatusOr<AfprasResult> Afpras(const constraints::RealFormula& formula,
                                    const AfprasOptions& options,
                                    util::Rng& rng) {
  if (options.epsilon <= 0 || options.epsilon > 1) {
    return util::Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  AfprasResult result;
  if (formula.is_constant()) {
    result.estimate =
        formula.kind() == constraints::RealFormula::Kind::kTrue ? 1.0 : 0.0;
    return result;
  }

  constraints::RealFormula working = formula;
  int dim = formula.NumVariables();
  if (options.restrict_to_used_vars) {
    std::set<int> used = formula.UsedVariables();
    MUDB_CHECK(!used.empty());  // non-constant formula must use a variable
    std::vector<int> remap(*used.rbegin() + 1, -1);
    int next = 0;
    for (int v : used) remap[v] = next++;
    working = formula.RemapVariables(remap);
    dim = next;
  }
  result.sampled_dimension = dim;

  int64_t m = options.num_samples > 0
                  ? options.num_samples
                  : AfprasSampleCount(options.epsilon, options.delta);

  // Directions only matter, so sampling the unit sphere is equivalent to
  // sampling the ball (Lemma 8.3 integrates over directions).
  auto count_hits = [&](int64_t samples, util::Rng& local_rng) {
    int64_t hits = 0;
    for (int64_t s = 0; s < samples; ++s) {
      geom::Vec a = geom::SampleUnitSphere(dim, local_rng);
      if (working.AsymptoticTruth(a, options.coefficient_tolerance)) ++hits;
    }
    return hits;
  };

  int64_t hits = 0;
  int threads = std::max(1, options.num_threads);
  if (threads == 1 || m < 2 * threads) {
    hits = count_hits(m, rng);
  } else {
    // Deterministic substreams: worker seeds come from the caller's Rng in a
    // fixed order, so the result depends only on (seed, num_threads).
    std::vector<uint64_t> seeds(threads);
    for (uint64_t& s : seeds) {
      s = static_cast<uint64_t>(
          rng.UniformInt(0, std::numeric_limits<int64_t>::max()));
    }
    std::vector<int64_t> partial(threads, 0);
    std::vector<std::thread> workers;
    int64_t chunk = m / threads;
    for (int t = 0; t < threads; ++t) {
      int64_t samples = t == threads - 1 ? m - chunk * (threads - 1) : chunk;
      workers.emplace_back([&, t, samples] {
        util::Rng local_rng(seeds[t]);
        partial[t] = count_hits(samples, local_rng);
      });
    }
    for (std::thread& w : workers) w.join();
    for (int64_t p : partial) hits += p;
  }
  result.samples = m;
  result.estimate = static_cast<double>(hits) / static_cast<double>(m);
  return result;
}

}  // namespace mudb::measure
