#include "src/measure/afpras.h"

#include <algorithm>
#include <cmath>

#include "src/geom/geometry.h"
#include "src/obs/trace.h"
#include "src/util/parallel.h"

namespace mudb::measure {

void FillAdditiveInterval(AfprasResult* result, double epsilon) {
  if (result->exact) {
    result->ci_lo = result->estimate;
    result->ci_hi = result->estimate;
    return;
  }
  result->ci_lo = std::max(0.0, result->estimate - epsilon);
  result->ci_hi = std::min(1.0, result->estimate + epsilon);
}

int64_t AfprasSampleCount(double epsilon, double delta) {
  MUDB_CHECK(epsilon > 0 && epsilon <= 1);
  MUDB_CHECK(delta > 0 && delta < 1);
  double m = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<int64_t>(std::ceil(m));
}

util::StatusOr<AfprasResult> Afpras(const constraints::RealFormula& formula,
                                    const AfprasOptions& options,
                                    util::Rng& rng) {
  if (options.epsilon <= 0 || options.epsilon > 1) {
    return util::Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(options.delta > 0) || !(options.delta < 1)) {
    return util::Status::InvalidArgument("delta must be in (0, 1)");
  }
  AfprasResult result;
  if (formula.is_constant()) {
    result.estimate =
        formula.kind() == constraints::RealFormula::Kind::kTrue ? 1.0 : 0.0;
    result.exact = true;
    FillAdditiveInterval(&result, options.epsilon);
    return result;
  }

  constraints::RealFormula working = formula;
  int dim = formula.NumVariables();
  std::set<int> used = formula.UsedVariables();
  if (used.empty()) {
    // Variable-free but not structurally constant (a constant-polynomial
    // atom the simplifier did not fold, e.g. "1 < 2"): no direction can
    // change its truth, so ν is decided by one asymptotic evaluation. This
    // is the input class the kAuto exact engines reject — the dispatch
    // fallback (measure.cc) lands here and must not trip the non-empty
    // check below.
    result.estimate =
        formula.AsymptoticTruth({}, options.coefficient_tolerance) ? 1.0
                                                                   : 0.0;
    result.exact = true;
    FillAdditiveInterval(&result, options.epsilon);
    return result;
  }
  if (options.restrict_to_used_vars) {
    std::vector<int> remap(*used.rbegin() + 1, -1);
    int next = 0;
    for (int v : used) remap[v] = next++;
    working = formula.RemapVariables(remap);
    dim = next;
  }
  result.sampled_dimension = dim;

  int64_t m = options.num_samples > 0
                  ? options.num_samples
                  : AfprasSampleCount(options.epsilon, options.delta);

  // Phase-level span over the whole direction-sampling sweep — never inside
  // the per-sample loop.
  obs::Span span("afpras.estimate");
  if (span.recording()) {
    span.Annotate("samples", static_cast<double>(m));
    span.Annotate("dim", static_cast<double>(dim));
  }

  // Directions only matter, so sampling the unit sphere is equivalent to
  // sampling the ball (Lemma 8.3 integrates over directions).
  auto count_hits = [&](int64_t samples, util::Rng& local_rng) {
    int64_t hits = 0;
    for (int64_t s = 0; s < samples; ++s) {
      geom::Vec a = geom::SampleUnitSphere(dim, local_rng);
      if (working.AsymptoticTruth(a, options.coefficient_tolerance)) ++hits;
    }
    return hits;
  };

  // Fixed-size chunks on substreams of the forked child (util/parallel.h):
  // the chunk grid depends on m alone, so the hit count — and the estimate —
  // is bit-identical for every thread count given the same seed. The chunk
  // size balances engine-setup overhead against exposing parallelism even at
  // the few-thousand-sample budgets of loose (ε, δ) settings.
  const int64_t kChunkSamples = 1024;
  util::Rng base = rng.Fork();
  int64_t hits = util::ReduceSampleChunks<int64_t>(
      options.pool, options.num_threads, m, kChunkSamples, base,
      /*init=*/0, count_hits);
  result.samples = m;
  result.estimate = static_cast<double>(hits) / static_cast<double>(m);
  FillAdditiveInterval(&result, options.epsilon);
  return result;
}

}  // namespace mudb::measure
