// Conditional measures: the paper's first future-work item (§10).
//
// The agnostic semantics lets every numeric null take any real value. In
// practice columns carry range constraints — "price is positive", "discount
// lies in [0, 1]". Following §10, such constraints C are added to both the
// numerator and denominator of the ratio defining the measure:
//
//     μ_C(φ) = lim_{r→∞} Vol(φ ∧ C ∩ B_r) / Vol(C ∩ B_r).
//
// With per-variable interval constraints, C factors into bounded coordinates
// (finite intervals [lo, hi]), half-lines, and free coordinates, and the
// limit decomposes:
//   * bounded coordinates stay finite as r grows: they integrate uniformly
//     over their interval;
//   * half-line and free coordinates behave directionally as in Lemma 8.3,
//     with half-lines restricting the direction's sign;
//   * the truth of φ in the limit is decided by the mixed restriction
//     p(fixed values, k·direction) and its leading coefficient in k
//     (RealFormula::AsymptoticTruthPartial).
//
// The estimator is the natural extension of the AFPRAS: sample bounded
// coordinates uniformly, sample a direction for the unbounded ones (sign-
// restricted for half-lines), average the mixed asymptotic truth. The same
// Hoeffding bound gives |estimate − μ_C| < ε with probability 1 − δ.

#ifndef MUDB_SRC_MEASURE_CONDITIONAL_H_
#define MUDB_SRC_MEASURE_CONDITIONAL_H_

#include <optional>
#include <vector>

#include "src/constraints/real_formula.h"
#include "src/measure/afpras.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace mudb::measure {

/// An interval constraint on one variable. Unset bounds are infinite:
/// both set → bounded; one set → half-line; none → free (agnostic default).
struct VarRange {
  std::optional<double> lo;
  std::optional<double> hi;

  static VarRange Free() { return {}; }
  static VarRange AtLeast(double lo) { return {lo, std::nullopt}; }
  static VarRange AtMost(double hi) { return {std::nullopt, hi}; }
  static VarRange Between(double lo, double hi) { return {lo, hi}; }

  bool bounded() const { return lo && hi; }
  bool half_line() const { return lo.has_value() != hi.has_value(); }
  bool free() const { return !lo && !hi; }
};

/// Ranges indexed by variable (z_i); variables beyond the vector are free.
using VarRanges = std::vector<VarRange>;

/// Estimates μ_C(φ) for per-variable interval constraints C. Empty ranges
/// reproduce the unconditional AFPRAS. Fails with InvalidArgument on an
/// empty interval (lo > hi). Same Rng contract as Afpras: one Fork draw,
/// sampling from substreams, bit-identical for any num_threads.
util::StatusOr<AfprasResult> ConditionalAfpras(
    const constraints::RealFormula& formula, const VarRanges& ranges,
    const AfprasOptions& options, util::Rng& rng);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_CONDITIONAL_H_
