// Optional Z3-backed exactness oracle for real-closed-field formulae.
//
// The measure engines use two decision problems over ⟨R, +, ·, <⟩:
//   * IsSatisfiable(φ): does φ hold for some z ∈ R^n?  (¬sat ⇒ μ = 0)
//   * IsValid(φ): does φ hold for every z ∈ R^n?       (valid ⇒ μ = 1)
// Both are decidable (Tarski); we delegate to Z3's nonlinear real arithmetic
// (QF_NRA). When mudb is built without Z3, the functions return
// Unimplemented and callers fall back to sampling.
//
// Note these are *shortcut certificates*: μ = 0 or μ = 1 can also hold for
// formulae that are satisfiable/invalid on measure-zero / asymptotically
// negligible sets, which the oracle does not detect.

#ifndef MUDB_SRC_MEASURE_ORACLE_H_
#define MUDB_SRC_MEASURE_ORACLE_H_

#include "src/constraints/real_formula.h"
#include "src/util/status.h"

namespace mudb::measure {

/// True if the library was built with Z3 support.
bool OracleAvailable();

/// Whether φ is satisfiable over R^n. Unimplemented without Z3; Internal if
/// the solver answers "unknown" within the timeout.
util::StatusOr<bool> OracleIsSatisfiable(
    const constraints::RealFormula& formula, unsigned timeout_ms = 2000);

/// Whether φ holds on all of R^n (i.e. ¬φ is unsatisfiable).
util::StatusOr<bool> OracleIsValid(const constraints::RealFormula& formula,
                                   unsigned timeout_ms = 2000);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_ORACLE_H_
