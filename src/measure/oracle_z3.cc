// Z3 implementation of the exactness oracle (compiled only when MUDB_HAVE_Z3).

#include "src/measure/oracle.h"

#include <z3++.h>

#include <vector>

namespace mudb::measure {

namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using poly::Polynomial;

z3::expr PolyToZ3(z3::context& ctx, const std::vector<z3::expr>& vars,
                  const Polynomial& p) {
  z3::expr sum = ctx.real_val(0);
  bool first = true;
  for (const auto& [mono, coeff] : p.terms()) {
    // Represent the double coefficient exactly as a dyadic rational.
    z3::expr term = ctx.real_val(std::to_string(coeff).c_str());
    for (size_t i = 0; i < mono.size(); ++i) {
      for (uint32_t e = 0; e < mono[i]; ++e) term = term * vars[i];
    }
    if (first) {
      sum = term;
      first = false;
    } else {
      sum = sum + term;
    }
  }
  return sum;
}

z3::expr AtomToZ3(z3::context& ctx, const std::vector<z3::expr>& vars,
                  const constraints::RealAtom& atom) {
  z3::expr lhs = PolyToZ3(ctx, vars, atom.poly);
  z3::expr zero = ctx.real_val(0);
  switch (atom.op) {
    case CmpOp::kLt:
      return lhs < zero;
    case CmpOp::kLe:
      return lhs <= zero;
    case CmpOp::kEq:
      return lhs == zero;
    case CmpOp::kNeq:
      return lhs != zero;
    case CmpOp::kGe:
      return lhs >= zero;
    case CmpOp::kGt:
      return lhs > zero;
  }
  return ctx.bool_val(false);
}

z3::expr FormulaToZ3(z3::context& ctx, const std::vector<z3::expr>& vars,
                     const RealFormula& f) {
  switch (f.kind()) {
    case RealFormula::Kind::kTrue:
      return ctx.bool_val(true);
    case RealFormula::Kind::kFalse:
      return ctx.bool_val(false);
    case RealFormula::Kind::kAtom:
      return AtomToZ3(ctx, vars, f.atom());
    case RealFormula::Kind::kAnd: {
      z3::expr_vector parts(ctx);
      for (const RealFormula& c : f.children()) {
        parts.push_back(FormulaToZ3(ctx, vars, c));
      }
      return z3::mk_and(parts);
    }
    case RealFormula::Kind::kOr: {
      z3::expr_vector parts(ctx);
      for (const RealFormula& c : f.children()) {
        parts.push_back(FormulaToZ3(ctx, vars, c));
      }
      return z3::mk_or(parts);
    }
    case RealFormula::Kind::kNot:
      return !FormulaToZ3(ctx, vars, f.children()[0]);
  }
  return ctx.bool_val(false);
}

util::StatusOr<bool> CheckSat(const RealFormula& formula, bool negate,
                              unsigned timeout_ms) {
  try {
    z3::context ctx;
    std::vector<z3::expr> vars;
    int n = formula.NumVariables();
    vars.reserve(n);
    for (int i = 0; i < n; ++i) {
      vars.push_back(ctx.real_const(("z" + std::to_string(i)).c_str()));
    }
    z3::expr e = FormulaToZ3(ctx, vars, formula);
    if (negate) e = !e;
    z3::solver solver(ctx);
    z3::params params(ctx);
    params.set("timeout", timeout_ms);
    solver.set(params);
    solver.add(e);
    switch (solver.check()) {
      case z3::sat:
        return true;
      case z3::unsat:
        return false;
      case z3::unknown:
        return util::Status::Internal("Z3 returned unknown");
    }
    return util::Status::Internal("unreachable Z3 result");
  } catch (const z3::exception& ex) {
    return util::Status::Internal(std::string("Z3 error: ") + ex.msg());
  }
}

}  // namespace

bool OracleAvailable() { return true; }

util::StatusOr<bool> OracleIsSatisfiable(const RealFormula& formula,
                                         unsigned timeout_ms) {
  return CheckSat(formula, /*negate=*/false, timeout_ms);
}

util::StatusOr<bool> OracleIsValid(const RealFormula& formula,
                                   unsigned timeout_ms) {
  MUDB_ASSIGN_OR_RETURN(bool neg_sat,
                        CheckSat(formula, /*negate=*/true, timeout_ms));
  return !neg_sat;
}

}  // namespace mudb::measure
