#include "src/measure/conditional.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/parallel.h"

namespace mudb::measure {

util::StatusOr<AfprasResult> ConditionalAfpras(
    const constraints::RealFormula& formula, const VarRanges& ranges,
    const AfprasOptions& options, util::Rng& rng) {
  if (options.epsilon <= 0 || options.epsilon > 1) {
    return util::Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(options.delta > 0) || !(options.delta < 1)) {
    return util::Status::InvalidArgument("delta must be in (0, 1)");
  }
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].bounded() && *ranges[i].lo > *ranges[i].hi) {
      return util::Status::InvalidArgument(
          "empty range on variable z" + std::to_string(i));
    }
  }
  AfprasResult result;
  if (formula.is_constant()) {
    result.estimate =
        formula.kind() == constraints::RealFormula::Kind::kTrue ? 1.0 : 0.0;
    result.exact = true;
    FillAdditiveInterval(&result, options.epsilon);
    return result;
  }

  // Restrict to the variables occurring in the formula; constraints on
  // unused variables marginalize out (their interval factor cancels in the
  // numerator/denominator ratio).
  constraints::RealFormula working = formula;
  std::vector<VarRange> var_ranges;
  if (options.restrict_to_used_vars) {
    std::set<int> used = formula.UsedVariables();
    MUDB_CHECK(!used.empty());
    std::vector<int> remap(*used.rbegin() + 1, -1);
    int next = 0;
    for (int v : used) {
      remap[v] = next++;
      var_ranges.push_back(static_cast<size_t>(v) < ranges.size()
                               ? ranges[v]
                               : VarRange::Free());
    }
    working = formula.RemapVariables(remap);
  } else {
    int n = std::max(formula.NumVariables(),
                     static_cast<int>(ranges.size()));
    for (int v = 0; v < n; ++v) {
      var_ranges.push_back(static_cast<size_t>(v) < ranges.size()
                               ? ranges[v]
                               : VarRange::Free());
    }
  }
  const int dim = static_cast<int>(var_ranges.size());
  result.sampled_dimension = dim;

  std::vector<bool> scaled(dim);
  for (int i = 0; i < dim; ++i) scaled[i] = !var_ranges[i].bounded();

  int64_t m = options.num_samples > 0
                  ? options.num_samples
                  : AfprasSampleCount(options.epsilon, options.delta);
  // Same parallel contract as the unconditional AFPRAS: fixed-size chunks on
  // substreams of the forked child, so the estimate only depends on the seed.
  auto count_hits = [&](int64_t samples, util::Rng& local_rng) {
    std::vector<double> a(dim);
    int64_t hits = 0;
    for (int64_t s = 0; s < samples; ++s) {
      for (int i = 0; i < dim; ++i) {
        const VarRange& r = var_ranges[i];
        if (r.bounded()) {
          a[i] = local_rng.Uniform(*r.lo, *r.hi);
        } else if (r.lo) {
          a[i] = std::fabs(local_rng.Gaussian());   // direction into [lo, ∞)
        } else if (r.hi) {
          a[i] = -std::fabs(local_rng.Gaussian());  // direction into (-∞, hi]
        } else {
          a[i] = local_rng.Gaussian();
        }
      }
      if (working.AsymptoticTruthPartial(a, scaled,
                                         options.coefficient_tolerance)) {
        ++hits;
      }
    }
    return hits;
  };
  const int64_t kChunkSamples = 1024;
  util::Rng base = rng.Fork();
  int64_t hits = util::ReduceSampleChunks<int64_t>(
      options.pool, options.num_threads, m, kChunkSamples, base,
      /*init=*/0, count_hits);
  result.samples = m;
  result.estimate = static_cast<double>(hits) / static_cast<double>(m);
  FillAdditiveInterval(&result, options.epsilon);
  return result;
}

}  // namespace mudb::measure
