// Fallback exactness oracle used when mudb is built without Z3.

#if !defined(MUDB_HAVE_Z3)

#include "src/measure/oracle.h"

namespace mudb::measure {

bool OracleAvailable() { return false; }

util::StatusOr<bool> OracleIsSatisfiable(
    const constraints::RealFormula& formula, unsigned timeout_ms) {
  (void)formula;
  (void)timeout_ms;
  return util::Status::Unimplemented("mudb was built without Z3");
}

util::StatusOr<bool> OracleIsValid(const constraints::RealFormula& formula,
                                   unsigned timeout_ms) {
  (void)formula;
  (void)timeout_ms;
  return util::Status::Unimplemented("mudb was built without Z3");
}

}  // namespace mudb::measure

#endif  // !MUDB_HAVE_Z3
