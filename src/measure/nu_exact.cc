#include "src/measure/nu_exact.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numeric>
#include <vector>

#include "src/geom/arcs.h"
#include "src/poly/univariate.h"

namespace mudb::measure {

namespace {

using constraints::CmpOp;
using constraints::RealAtom;
using constraints::RealFormula;
using poly::Polynomial;
using util::Rational;

// A normalized order atom: sign-of-variable or comparison of two variables.
struct OrderAtom {
  bool is_pair;  // true: z_i - z_j ◦ 0; false: z_i ◦ 0
  int i;
  int j;
  CmpOp op;
};

// Extracts (coeff per variable) of the homogenized linear atom. Returns true
// and fills `out` if the atom is an order constraint.
bool NormalizeOrderAtom(const RealAtom& atom, OrderAtom* out) {
  if (!atom.poly.IsLinear()) return false;
  Polynomial hom = atom.poly.DropConstant();
  std::set<int> vars;
  hom.CollectVariableIndices(&vars);
  if (vars.empty() || vars.size() > 2) return false;
  std::vector<int> vlist(vars.begin(), vars.end());
  if (vars.size() == 1) {
    double c = hom.LinearCoefficient(vlist[0]);
    if (c == 0.0) return false;
    out->is_pair = false;
    out->i = vlist[0];
    out->j = -1;
    // c·z ◦ 0 with c < 0 mirrors the comparison (z > 0 etc.); =/≠ unchanged.
    out->op = atom.op;
    if (c < 0) {
      switch (atom.op) {
        case CmpOp::kLt:
          out->op = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          out->op = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          out->op = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          out->op = CmpOp::kLe;
          break;
        default:
          out->op = atom.op;
          break;
      }
    }
    return true;
  }
  double c1 = hom.LinearCoefficient(vlist[0]);
  double c2 = hom.LinearCoefficient(vlist[1]);
  if (c1 == 0.0 || c2 == 0.0) return false;
  // Must be a scaled difference c·(z_i − z_j).
  if (std::fabs(c1 + c2) > 1e-12 * (std::fabs(c1) + std::fabs(c2))) {
    return false;
  }
  out->is_pair = true;
  // c1·z_a + c2·z_b with c2 = −c1 is c·(z_i − z_j) where i is the variable
  // carrying the positive coefficient; dividing by c > 0 keeps the operator.
  if (c1 > 0) {
    out->i = vlist[0];
    out->j = vlist[1];
  } else {
    out->i = vlist[1];
    out->j = vlist[0];
  }
  out->op = atom.op;
  return true;
}

// Evaluates the boolean structure of `f` with atom truth given by `truth`
// (parallel to CollectAtoms pre-order).
bool EvalWithAtomTruth(const RealFormula& f, const std::vector<bool>& truth,
                       size_t* cursor) {
  switch (f.kind()) {
    case RealFormula::Kind::kTrue:
      return true;
    case RealFormula::Kind::kFalse:
      return false;
    case RealFormula::Kind::kAtom:
      return truth[(*cursor)++];
    case RealFormula::Kind::kAnd: {
      bool all = true;
      for (const RealFormula& c : f.children()) {
        all = EvalWithAtomTruth(c, truth, cursor) && all;
      }
      return all;
    }
    case RealFormula::Kind::kOr: {
      bool any = false;
      for (const RealFormula& c : f.children()) {
        any = EvalWithAtomTruth(c, truth, cursor) || any;
      }
      return any;
    }
    case RealFormula::Kind::kNot:
      return !EvalWithAtomTruth(f.children()[0], truth, cursor);
  }
  return false;
}

}  // namespace

bool IsOrderFormula(const constraints::RealFormula& formula) {
  std::vector<RealAtom> atoms;
  formula.CollectAtoms(&atoms);
  OrderAtom dummy;
  for (const RealAtom& a : atoms) {
    if (!NormalizeOrderAtom(a, &dummy)) return false;
  }
  return true;
}

util::StatusOr<util::Rational> NuExactOrder(
    const constraints::RealFormula& formula, int max_vars) {
  if (formula.kind() == RealFormula::Kind::kTrue) return Rational(1);
  if (formula.kind() == RealFormula::Kind::kFalse) return Rational(0);

  // Compact the variable indices.
  std::set<int> used = formula.UsedVariables();
  const int k = static_cast<int>(used.size());
  if (k == 0) {
    // No variables but not a constant formula: cannot happen, atoms over
    // constant polynomials are folded at construction.
    return util::Status::Internal("variable-free non-constant formula");
  }
  if (k > max_vars) {
    return util::Status::ResourceExhausted(
        "order-exact enumeration over " + std::to_string(k) +
        " variables exceeds max_vars = " + std::to_string(max_vars));
  }
  std::vector<int> remap;
  {
    int max_idx = *used.rbegin();
    remap.assign(max_idx + 1, -1);
    int next = 0;
    for (int v : used) remap[v] = next++;
  }
  RealFormula compact = formula.RemapVariables(remap);

  std::vector<RealAtom> atoms;
  compact.CollectAtoms(&atoms);
  std::vector<OrderAtom> order_atoms(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (!NormalizeOrderAtom(atoms[i], &order_atoms[i])) {
      return util::Status::InvalidArgument(
          "not an order formula; atom: " + atoms[i].ToString());
    }
  }

  // Enumerate ascending orders (permutations) and split points j: variables
  // perm[0..j-1] are negative (in ascending order), perm[j..k-1] positive.
  std::vector<int> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<int> position(k);
  std::vector<bool> truth(atoms.size());
  Rational total(0);
  const Rational inv_2k = Rational(1, int64_t{1} << k);
  do {
    for (int p = 0; p < k; ++p) position[perm[p]] = p;
    for (int j = 0; j <= k; ++j) {
      // Evaluate each atom under this signed interleaving.
      for (size_t a = 0; a < order_atoms.size(); ++a) {
        const OrderAtom& oa = order_atoms[a];
        int sign;
        if (oa.is_pair) {
          sign = position[oa.i] < position[oa.j] ? -1 : 1;
        } else {
          sign = position[oa.i] < j ? -1 : 1;
        }
        truth[a] = constraints::CmpTruthFromSign(oa.op, sign);
      }
      size_t cursor = 0;
      if (EvalWithAtomTruth(compact, truth, &cursor)) {
        Rational prob = inv_2k / (Rational::Factorial(j) *
                                  Rational::Factorial(k - j));
        total += prob;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return total;
}

util::StatusOr<double> NuExact2D(const constraints::RealFormula& formula) {
  if (formula.kind() == RealFormula::Kind::kTrue) return 1.0;
  if (formula.kind() == RealFormula::Kind::kFalse) return 0.0;

  std::set<int> used = formula.UsedVariables();
  if (used.size() > 2) {
    return util::Status::InvalidArgument(
        "NuExact2D requires at most 2 variables, got " +
        std::to_string(used.size()));
  }
  std::vector<int> remap;
  {
    int max_idx = used.empty() ? -1 : *used.rbegin();
    remap.assign(max_idx + 1, -1);
    int next = 0;
    for (int v : used) remap[v] = next++;
  }
  RealFormula compact = formula.RemapVariables(remap);

  if (used.empty()) {
    return util::Status::Internal("variable-free non-constant formula");
  }
  if (used.size() == 1) {
    double pos = compact.AsymptoticTruth({1.0}) ? 1.0 : 0.0;
    double neg = compact.AsymptoticTruth({-1.0}) ? 1.0 : 0.0;
    return 0.5 * (pos + neg);
  }

  // Two variables: the asymptotic truth along direction (cos θ, sin θ) can
  // change only where some homogeneous component of some atom vanishes.
  std::vector<RealAtom> atoms;
  compact.CollectAtoms(&atoms);
  std::vector<double> angles{-M_PI, -M_PI / 2, 0.0, M_PI / 2};
  for (const RealAtom& atom : atoms) {
    int deg = atom.poly.Degree();
    for (int d = 1; d <= deg; ++d) {
      // h_d(1, t): coefficient of t^e is the coefficient of x^{d-e} y^e.
      poly::UniPoly h(d + 1, 0.0);
      bool nonzero = false;
      for (int e = 0; e <= d; ++e) {
        poly::Monomial m;
        if (d - e > 0) m.push_back(static_cast<uint32_t>(d - e));
        if (e > 0) {
          m.resize(2, 0);
          m[1] = static_cast<uint32_t>(e);
        }
        h[e] = atom.poly.Coefficient(m);
        if (h[e] != 0.0) nonzero = true;
      }
      if (!nonzero) continue;
      poly::UniPoly trimmed = poly::TrimLeading(h, 0.0);
      if (trimmed.size() <= 1) continue;  // constant in t: no roots
      // Cauchy root bound: all real roots lie in [-B, B].
      double lead = std::fabs(trimmed.back());
      double maxc = 0.0;
      for (size_t i = 0; i + 1 < trimmed.size(); ++i) {
        maxc = std::max(maxc, std::fabs(trimmed[i]));
      }
      double bound = 1.0 + maxc / lead;
      for (double t : poly::IsolateRealRoots(trimmed, -bound, bound)) {
        double theta = std::atan(t);
        angles.push_back(theta);
        angles.push_back(theta > 0 ? theta - M_PI : theta + M_PI);
      }
    }
  }
  std::sort(angles.begin(), angles.end());
  angles.erase(std::unique(angles.begin(), angles.end(),
                           [](double a, double b) {
                             return std::fabs(a - b) < 1e-13;
                           }),
               angles.end());

  geom::ArcSet satisfied;
  const size_t n = angles.size();
  for (size_t i = 0; i < n; ++i) {
    double lo = angles[i];
    double hi = (i + 1 < n) ? angles[i + 1] : angles[0] + 2 * M_PI;
    if (hi - lo < 1e-15) continue;
    double mid = 0.5 * (lo + hi);
    std::vector<double> dir{std::cos(mid), std::sin(mid)};
    if (compact.AsymptoticTruth(dir, 1e-12)) {
      satisfied.AddInterval(lo, hi);
    }
  }
  return satisfied.Fraction();
}

}  // namespace mudb::measure
