#include "src/measure/measure.h"

#include "src/measure/nu_exact.h"
#include "src/measure/oracle.h"
#include "src/obs/trace.h"
#include "src/translate/ground.h"

namespace mudb::measure {

const char* MethodToString(Method method) {
  switch (method) {
    case Method::kAuto:
      return "auto";
    case Method::kExactOrder:
      return "exact-order";
    case Method::kExact2D:
      return "exact-2d";
    case Method::kAfpras:
      return "afpras";
    case Method::kFpras:
      return "fpras";
  }
  return "?";
}

namespace {

using constraints::RealFormula;

MeasureResult ExactConstantResult(double value, Method method) {
  MeasureResult r;
  r.value = value;
  r.ci_lo = value;
  r.ci_hi = value;
  r.is_exact = true;
  r.exact_rational = util::Rational(value == 1.0 ? 1 : 0);
  r.method_used = method;
  return r;
}

util::StatusOr<MeasureResult> RunAfpras(const RealFormula& formula,
                                        const MeasureOptions& options) {
  AfprasOptions aopts;
  aopts.epsilon = options.epsilon;
  aopts.delta = options.delta;
  aopts.restrict_to_used_vars = options.restrict_to_used_vars;
  aopts.num_threads = options.num_threads;
  aopts.pool = options.pool;
  util::Rng rng(options.seed);
  MUDB_ASSIGN_OR_RETURN(AfprasResult ar, Afpras(formula, aopts, rng));
  MeasureResult r;
  r.value = ar.estimate;
  r.ci_lo = ar.ci_lo;
  r.ci_hi = ar.ci_hi;
  r.is_exact = ar.exact;
  r.epsilon_used = ar.exact ? 0.0 : options.epsilon;
  r.method_used = Method::kAfpras;
  r.samples = ar.samples;
  r.sampled_dimension = ar.sampled_dimension;
  return r;
}

util::StatusOr<MeasureResult> RunFpras(const RealFormula& formula,
                                       const MeasureOptions& options) {
  FprasOptions fopts;
  fopts.epsilon = options.epsilon;
  fopts.max_disjuncts = options.max_dnf_disjuncts;
  fopts.restrict_to_used_vars = options.restrict_to_used_vars;
  fopts.num_threads = options.num_threads;
  fopts.pool = options.pool;
  fopts.body_cache = options.body_cache;
  util::Rng rng(options.seed);
  MUDB_ASSIGN_OR_RETURN(FprasResult fr, FprasConjunctive(formula, fopts, rng));
  MeasureResult r;
  r.value = fr.estimate;
  r.ci_lo = fr.ci_lo;
  r.ci_hi = fr.ci_hi;
  r.is_exact = fr.trivial;
  r.epsilon_used = fr.trivial ? 0.0 : options.epsilon;
  r.method_used = Method::kFpras;
  r.sampled_dimension = fr.sampled_dimension;
  r.sampling_steps = fr.sampling_steps;
  r.bodies = fr.active_disjuncts;
  r.unique_bodies = fr.unique_bodies;
  r.body_cache_hits = fr.body_cache_hits;
  return r;
}

util::StatusOr<MeasureResult> RunExactOrder(const RealFormula& formula,
                                            const MeasureOptions& options) {
  MUDB_ASSIGN_OR_RETURN(
      util::Rational v,
      NuExactOrder(formula, options.exact_order_max_vars));
  MeasureResult r;
  r.value = v.ToDouble();
  r.ci_lo = r.value;
  r.ci_hi = r.value;
  r.exact_rational = v;
  r.is_exact = true;
  r.method_used = Method::kExactOrder;
  return r;
}

util::StatusOr<MeasureResult> RunExact2D(const RealFormula& formula) {
  MUDB_ASSIGN_OR_RETURN(double v, NuExact2D(formula));
  MeasureResult r;
  r.value = v;
  r.ci_lo = v;
  r.ci_hi = v;
  r.is_exact = true;
  r.method_used = Method::kExact2D;
  return r;
}

}  // namespace

util::Status ValidateMeasureOptions(const MeasureOptions& options) {
  // Negated comparisons so NaN fails too.
  if (!(options.epsilon > 0) || !(options.epsilon <= 1)) {
    return util::Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(options.delta > 0) || !(options.delta < 1)) {
    return util::Status::InvalidArgument("delta must be in (0, 1)");
  }
  return util::Status::OK();
}

util::StatusOr<MeasureResult> ComputeNu(const RealFormula& formula,
                                        const MeasureOptions& options) {
  MUDB_RETURN_IF_ERROR(ValidateMeasureOptions(options));
  // Phase-level span over the whole dispatch (shortcut, exact, or sampled).
  obs::Span span("measure.compute");
  if (span.recording()) {
    span.Annotate("method", MethodToString(options.method));
    span.Annotate("epsilon", options.epsilon);
  }
  if (formula.kind() == RealFormula::Kind::kTrue) {
    return ExactConstantResult(1.0, options.method);
  }
  if (formula.kind() == RealFormula::Kind::kFalse) {
    return ExactConstantResult(0.0, options.method);
  }

  if (options.use_z3_shortcuts && OracleAvailable()) {
    // Certificates: unsat ⇒ ν = 0; valid ⇒ ν = 1. Solver failures and
    // timeouts fall through to the numeric engines.
    util::StatusOr<bool> sat = OracleIsSatisfiable(formula);
    if (sat.ok() && !*sat) return ExactConstantResult(0.0, options.method);
    util::StatusOr<bool> valid = OracleIsValid(formula);
    if (valid.ok() && *valid) return ExactConstantResult(1.0, options.method);
  }

  switch (options.method) {
    case Method::kExactOrder:
      return RunExactOrder(formula, options);
    case Method::kExact2D:
      return RunExact2D(formula);
    case Method::kAfpras:
      return RunAfpras(formula, options);
    case Method::kFpras:
      return RunFpras(formula, options);
    case Method::kAuto:
      break;
  }

  // kAuto: prefer exact engines when they are cheap and applicable, but an
  // exact-engine failure (degenerate inputs the enumeration rejects, e.g. a
  // constant-polynomial atom the simplifier did not fold) degrades to the
  // AFPRAS rather than surfacing an error. The fallback passes the caller's
  // options through whole, so a supplied `pool` (and `body_cache`,
  // `num_threads`, ...) is honored exactly as on the direct kAfpras path —
  // the serving layer relies on this when it routes kAuto requests.
  size_t used_vars = formula.UsedVariables().size();
  if (used_vars <= 2) {
    util::StatusOr<MeasureResult> exact = RunExact2D(formula);
    if (exact.ok()) return exact;
    return RunAfpras(formula, options);
  }
  if (IsOrderFormula(formula) &&
      used_vars <= static_cast<size_t>(options.exact_order_max_vars)) {
    util::StatusOr<MeasureResult> exact = RunExactOrder(formula, options);
    if (exact.ok()) return exact;
    return RunAfpras(formula, options);
  }
  return RunAfpras(formula, options);
}

util::StatusOr<MeasureResult> ComputeMeasure(const logic::Query& q,
                                             const model::Database& db,
                                             const model::Tuple& candidate,
                                             const MeasureOptions& options) {
  MUDB_RETURN_IF_ERROR(ValidateMeasureOptions(options));
  translate::GroundOptions gopts;
  gopts.max_atoms = options.max_ground_atoms;
  MUDB_ASSIGN_OR_RETURN(translate::GroundResult ground,
                        translate::GroundQuery(q, db, candidate, gopts));
  return ComputeNu(ground.formula, options);
}

util::StatusOr<MeasureResult> ComputeConditionalMeasure(
    const logic::Query& q, const model::Database& db,
    const model::Tuple& candidate, const NullRanges& ranges,
    const MeasureOptions& options) {
  MUDB_RETURN_IF_ERROR(ValidateMeasureOptions(options));
  translate::GroundOptions gopts;
  gopts.max_atoms = options.max_ground_atoms;
  MUDB_ASSIGN_OR_RETURN(translate::GroundResult ground,
                        translate::GroundQuery(q, db, candidate, gopts));
  // Variable z_i denotes null null_order[i]; align the ranges accordingly.
  VarRanges var_ranges(ground.null_order.size());
  for (size_t i = 0; i < ground.null_order.size(); ++i) {
    auto it = ranges.find(ground.null_order[i]);
    var_ranges[i] = it != ranges.end() ? it->second : VarRange::Free();
  }
  AfprasOptions aopts;
  aopts.epsilon = options.epsilon;
  aopts.delta = options.delta;
  aopts.restrict_to_used_vars = options.restrict_to_used_vars;
  aopts.num_threads = options.num_threads;
  aopts.pool = options.pool;
  util::Rng rng(options.seed);
  MUDB_ASSIGN_OR_RETURN(
      AfprasResult ar,
      ConditionalAfpras(ground.formula, var_ranges, aopts, rng));
  MeasureResult result;
  result.value = ar.estimate;
  result.ci_lo = ar.ci_lo;
  result.ci_hi = ar.ci_hi;
  result.is_exact = ground.formula.is_constant();
  result.epsilon_used = result.is_exact ? 0.0 : options.epsilon;
  result.method_used = Method::kAfpras;
  result.samples = ar.samples;
  result.sampled_dimension = ar.sampled_dimension;
  return result;
}

util::StatusOr<bool> IsCertainAnswer(const logic::Query& q,
                                     const model::Database& db,
                                     const model::Tuple& candidate) {
  MUDB_ASSIGN_OR_RETURN(translate::GroundResult ground,
                        translate::GroundQuery(q, db, candidate));
  return OracleIsValid(ground.formula);
}

util::StatusOr<bool> IsPossibleAnswer(const logic::Query& q,
                                      const model::Database& db,
                                      const model::Tuple& candidate) {
  MUDB_ASSIGN_OR_RETURN(translate::GroundResult ground,
                        translate::GroundQuery(q, db, candidate));
  return OracleIsSatisfiable(ground.formula);
}

}  // namespace mudb::measure
