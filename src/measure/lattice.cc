#include "src/measure/lattice.h"

#include <cmath>

namespace mudb::measure {

namespace {

// Recursive enumeration of integer points with |z| <= radius.
void Enumerate(const constraints::RealFormula& formula, int radius, int dim,
               int index, double norm2_so_far, std::vector<double>* point,
               LatticeRatio* out) {
  if (index == dim) {
    ++out->total;
    if (formula.EvaluateAt(*point)) ++out->satisfying;
    return;
  }
  double budget = static_cast<double>(radius) * radius - norm2_so_far;
  int extent = static_cast<int>(std::floor(std::sqrt(std::max(0.0, budget))));
  for (int v = -extent; v <= extent; ++v) {
    (*point)[index] = v;
    Enumerate(formula, radius, dim, index + 1,
              norm2_so_far + static_cast<double>(v) * v, point, out);
  }
}

}  // namespace

util::StatusOr<LatticeRatio> NuLatticeRatio(
    const constraints::RealFormula& formula, int radius) {
  if (radius <= 0) {
    return util::Status::InvalidArgument("radius must be positive");
  }
  std::set<int> used = formula.UsedVariables();
  if (used.size() > 3) {
    return util::Status::InvalidArgument(
        "lattice enumeration supports at most 3 variables, got " +
        std::to_string(used.size()));
  }
  const int dim = std::max<size_t>(used.size(), 1);
  // Budget guard: (2r+1)^dim points.
  double points = std::pow(2.0 * radius + 1.0, dim);
  if (points > 5e8) {
    return util::Status::ResourceExhausted(
        "lattice enumeration too large; reduce the radius");
  }
  constraints::RealFormula working = formula;
  if (!used.empty()) {
    std::vector<int> remap(*used.rbegin() + 1, -1);
    int next = 0;
    for (int v : used) remap[v] = next++;
    working = formula.RemapVariables(remap);
  }
  LatticeRatio out;
  out.radius = radius;
  std::vector<double> point(dim, 0.0);
  Enumerate(working, radius, dim, 0, 0.0, &point, &out);
  return out;
}

util::StatusOr<std::vector<LatticeRatio>> LatticeSweep(
    const constraints::RealFormula& formula, const std::vector<int>& radii) {
  std::vector<LatticeRatio> out;
  out.reserve(radii.size());
  for (int r : radii) {
    MUDB_ASSIGN_OR_RETURN(LatticeRatio ratio, NuLatticeRatio(formula, r));
    out.push_back(ratio);
  }
  return out;
}

}  // namespace mudb::measure
