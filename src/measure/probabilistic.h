// Probabilistic measures: the paper's second §10 extension — "adding
// probability distributions associated with particular columns, which can
// simply replace uniform distributions over the n-dimensional ball".
//
// When every numeric null carries a (proper) probability distribution, no
// asymptotic construction is needed: the measure of certainty of a tuple is
// simply P_z~D(φ(z)), estimated by direct Monte-Carlo with the same
// Hoeffding sample bound as the AFPRAS.

#ifndef MUDB_SRC_MEASURE_PROBABILISTIC_H_
#define MUDB_SRC_MEASURE_PROBABILISTIC_H_

#include <string>
#include <vector>

#include "src/constraints/real_formula.h"
#include "src/measure/afpras.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace mudb::measure {

/// A one-dimensional sampling distribution for a numeric null.
class Distribution {
 public:
  enum class Kind { kUniform, kGaussian, kExponential, kPoint };

  /// Uniform on [lo, hi].
  static Distribution Uniform(double lo, double hi);
  /// Normal with the given mean and standard deviation (sd > 0).
  static Distribution Gaussian(double mean, double sd);
  /// Exponential with the given rate (> 0), supported on [0, ∞).
  static Distribution Exponential(double rate);
  /// The constant `value` (a degenerate distribution; useful for imputation
  /// comparisons).
  static Distribution Point(double value);

  Kind kind() const { return kind_; }
  double Sample(util::Rng& rng) const;
  std::string ToString() const;

 private:
  Distribution(Kind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}

  Kind kind_;
  double a_;
  double b_;
};

/// Estimates P(φ(z)) when z_i ~ dists[i] independently. Every variable used
/// by φ must have a distribution (InvalidArgument otherwise).
util::StatusOr<AfprasResult> ProbabilisticMeasure(
    const constraints::RealFormula& formula,
    const std::vector<Distribution>& dists, const AfprasOptions& options,
    util::Rng& rng);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_PROBABILISTIC_H_
