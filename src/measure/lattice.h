// Integer lattice measure: the paper's third §10 extension.
//
// For integer-typed columns, §10 proposes replacing volumes by counts of
// integer lattice points: μ_Z(φ) = lim_r #{z ∈ Z^k : |z| ≤ r, φ(z)} /
// #{z ∈ Z^k : |z| ≤ r}. The n-dimensional Gauss circle problem says the
// number of lattice points in B_r^n approximates Vol(B_r^n) up to
// o(Vol(B_r^n)), so the integer and real measures agree in the limit; this
// module computes the finite-r ratios exactly (small dimensions) so the
// convergence can be observed and tested.

#ifndef MUDB_SRC_MEASURE_LATTICE_H_
#define MUDB_SRC_MEASURE_LATTICE_H_

#include <cstdint>
#include <vector>

#include "src/constraints/real_formula.h"
#include "src/util/status.h"

namespace mudb::measure {

struct LatticeRatio {
  int radius = 0;
  int64_t satisfying = 0;
  int64_t total = 0;

  double ratio() const {
    return total == 0 ? 0.0
                      : static_cast<double>(satisfying) /
                            static_cast<double>(total);
  }
};

/// Exact count of lattice points of B_r^k satisfying φ (k = used variables
/// of φ after compaction; k <= 3 supported — the enumeration is (2r+1)^k).
/// InvalidArgument beyond 3 variables; ResourceExhausted for oversized
/// radius/dimension combinations.
util::StatusOr<LatticeRatio> NuLatticeRatio(
    const constraints::RealFormula& formula, int radius);

/// Ratios for a sweep of radii (convergence series; bench_lattice prints it).
util::StatusOr<std::vector<LatticeRatio>> LatticeSweep(
    const constraints::RealFormula& formula, const std::vector<int>& radii);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_LATTICE_H_
