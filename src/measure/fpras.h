// FPRAS (Thm. 7.1): multiplicative approximation of ν(φ) for the image of
// CQ(+,<) — formulae whose DNF disjuncts are conjunctions of *linear* atoms.
//
// Pipeline: DNF → homogenize every disjunct (drop constant terms; by [11]
// ν(φ) is the unit-ball volume fraction of the homogenized formula) → each
// disjunct is a convex cone ∩ B_1 with a membership oracle → per-cone inner
// ball via LP → annealed hit-and-run volume per cone → Karp–Luby union
// estimator → divide by Vol(B_1^n).
//
// Disjuncts containing a nontrivial equality atom span a measure-zero set and
// are dropped; ≠ atoms only remove measure-zero sets and are ignored.

#ifndef MUDB_SRC_MEASURE_FPRAS_H_
#define MUDB_SRC_MEASURE_FPRAS_H_

#include <cstdint>

#include "src/constraints/real_formula.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace mudb::measure {

struct FprasOptions {
  /// Target relative error ε ∈ (0, 1].
  double epsilon = 0.1;
  /// Cap on the number of DNF disjuncts.
  size_t max_disjuncts = 4096;
  /// As in AfprasOptions: compact away unused variables first.
  bool restrict_to_used_vars = true;
};

struct FprasResult {
  double estimate = 0.0;
  /// Number of cone bodies with nonempty interior that entered the union
  /// estimate.
  int active_disjuncts = 0;
  /// Dimension after variable restriction.
  int sampled_dimension = 0;
  /// True when the formula collapsed to a trivial 0/1 without sampling.
  bool trivial = false;
};

/// Runs the FPRAS. Fails with InvalidArgument if some atom is nonlinear and
/// ResourceExhausted if the DNF exceeds max_disjuncts.
util::StatusOr<FprasResult> FprasConjunctive(
    const constraints::RealFormula& formula, const FprasOptions& options,
    util::Rng& rng);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_FPRAS_H_
