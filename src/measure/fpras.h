// FPRAS (Thm. 7.1): multiplicative approximation of ν(φ) for the image of
// CQ(+,<) — formulae whose DNF disjuncts are conjunctions of *linear* atoms.
//
// Pipeline: DNF → homogenize every disjunct (drop constant terms; by [11]
// ν(φ) is the unit-ball volume fraction of the homogenized formula) → each
// disjunct is a convex cone ∩ B_1 with a membership oracle → per-cone inner
// ball via LP → annealed hit-and-run volume per cone → Karp–Luby union
// estimator → divide by Vol(B_1^n).
//
// Disjuncts containing a nontrivial equality atom span a measure-zero set and
// are dropped; ≠ atoms only remove measure-zero sets and are ignored.
//
// The pipeline is split in two: BuildFprasBodies is the deterministic,
// randomness-free front half (DNF, cones, inner-ball LPs) that exposes a
// request's convex bodies, and FprasFromBodies is the sampling back half;
// FprasConjunctive composes them. The runtime dedup itself happens inside
// volume/union_volume.cc (canonical keys) and the serving layer's caches —
// the exposed split is what lets tests and planning code inspect a
// request's geometry (e.g. verify that two requests really share a body,
// see service_test.cc) without paying for sampling.
//
// The expensive stages — per-cone inner-ball LPs, the annealing phases, the
// Karp–Luby loop — run on a shared util::ThreadPool, with the sampling work
// carved into RNG substreams by the workload so the estimate is bit-identical
// for any num_threads (see util/thread_pool.h). Per-body volume estimates
// draw from streams derived from each body's canonical content key, so an
// external FprasOptions::body_cache can replay them bit-exactly across
// requests (see volume/union_volume.h).

#ifndef MUDB_SRC_MEASURE_FPRAS_H_
#define MUDB_SRC_MEASURE_FPRAS_H_

#include <cstdint>
#include <vector>

#include "src/constraints/real_formula.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/volume/union_volume.h"

namespace mudb::measure {

struct FprasOptions {
  /// Target relative error ε ∈ (0, 1].
  double epsilon = 0.1;
  /// Cap on the number of DNF disjuncts.
  size_t max_disjuncts = 4096;
  /// As in AfprasOptions: compact away unused variables first.
  bool restrict_to_used_vars = true;
  /// Worker threads for the sampling pipeline (per-cone LPs, annealing
  /// phases, the Karp–Luby loop); 0 or negative = all hardware threads.
  /// The estimate is bit-identical for any value given the same seed: work
  /// is carved into a grid of RNG substreams independent of the thread
  /// count (see util/thread_pool.h).
  int num_threads = 1;
  /// Optional long-lived pool; when set it is used as-is (num_threads only
  /// sizes per-call pools) so hot loops over many estimates skip the
  /// per-call worker spawn. Not owned; one submitter at a time.
  util::ThreadPool* pool = nullptr;
  /// Optional cross-request cache of per-body volume estimates (not owned,
  /// must be thread-safe). Hits skip a body's sampling entirely and are
  /// bit-identical to recomputation — see volume/union_volume.h.
  volume::BodyEstimateCache* body_cache = nullptr;
};

struct FprasResult {
  double estimate = 0.0;
  /// Multiplicative confidence interval [estimate/(1+ε), estimate/(1−ε)]
  /// clamped to [0, 1] (a point on the trivial/exact paths): inverting
  /// est ∈ [(1−ε)ν, (1+ε)ν], the true ν lies inside whenever the FPRAS
  /// succeeds (its constant success probability — ε controls the width,
  /// not the failure rate). The ranking ladder (service/ranking_service.h)
  /// prunes candidates by these bounds.
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  /// Number of cone bodies with nonempty interior that entered the union
  /// estimate (before canonical dedup).
  int active_disjuncts = 0;
  /// Distinct bodies after canonical dedup (0 on trivial paths).
  int unique_bodies = 0;
  /// Dimension after variable restriction.
  int sampled_dimension = 0;
  /// Total hit-and-run steps taken by the sampling pipeline (0 on trivial
  /// paths; cache hits contribute nothing); steps / wall-time is the
  /// throughput the bench JSON records.
  int64_t sampling_steps = 0;
  /// Unique-body volume estimates served by options.body_cache.
  int64_t body_cache_hits = 0;
  /// True when the formula collapsed to a trivial 0/1 without sampling.
  bool trivial = false;
};

/// The deterministic front half of the FPRAS: the request's convex bodies
/// (one per DNF disjunct with nonempty interior), ready for volume
/// estimation — or the trivial outcome when no sampling is needed.
struct FprasBodySet {
  /// When true, `trivial_value` is the exact answer and `bodies` is empty.
  bool trivial = false;
  double trivial_value = 0.0;
  /// Dimension after variable restriction.
  int sampled_dimension = 0;
  /// Cone bodies with nonempty interior, in DNF disjunct order.
  std::vector<volume::SeededBody> bodies;
};

/// Runs the DNF → cones → inner-ball stages. Deterministic, consumes no
/// randomness. Fails with InvalidArgument if some atom is nonlinear and
/// ResourceExhausted if the DNF exceeds max_disjuncts.
util::StatusOr<FprasBodySet> BuildFprasBodies(
    const constraints::RealFormula& formula, const FprasOptions& options);

/// Runs the sampling back half on a prepared body set. Consumes randomness
/// from `rng` (one Rng::Fork draw inside the union estimate).
util::StatusOr<FprasResult> FprasFromBodies(const FprasBodySet& body_set,
                                            const FprasOptions& options,
                                            util::Rng& rng);

/// Runs the FPRAS end to end (BuildFprasBodies + FprasFromBodies). Fails
/// with InvalidArgument if some atom is nonlinear and ResourceExhausted if
/// the DNF exceeds max_disjuncts. Consumes randomness from `rng` (one
/// Rng::Fork draw inside the union estimate), so repeated calls with one
/// Rng see fresh sample paths.
util::StatusOr<FprasResult> FprasConjunctive(
    const constraints::RealFormula& formula, const FprasOptions& options,
    util::Rng& rng);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_FPRAS_H_
