#include "src/measure/fpras.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "src/geom/geometry.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"
#include "src/volume/union_volume.h"

namespace mudb::measure {

namespace {

using constraints::CmpOp;
using constraints::Conjunction;
using constraints::RealAtom;
using constraints::RealFormula;

// Translates one homogenized disjunct into cone halfspaces. Returns false if
// the disjunct has measure zero (contains a nontrivial equality or an
// unsatisfiable trivial atom).
bool DisjunctToHalfspaces(const Conjunction& conj, int dim,
                          std::vector<std::pair<geom::Vec, double>>* out) {
  for (const RealAtom& atom : conj) {
    geom::Vec a(dim, 0.0);
    bool any = false;
    for (int j = 0; j < dim; ++j) {
      a[j] = atom.poly.LinearCoefficient(j);
      if (a[j] != 0.0) any = true;
    }
    if (!any) {
      // 0 ◦ 0 after homogenization: true for ≤, =, ≥; false otherwise.
      if (atom.op == CmpOp::kLt || atom.op == CmpOp::kGt ||
          atom.op == CmpOp::kNeq) {
        return false;
      }
      continue;
    }
    switch (atom.op) {
      case CmpOp::kLt:
      case CmpOp::kLe:
        out->emplace_back(a, 0.0);
        break;
      case CmpOp::kGt:
      case CmpOp::kGe: {
        for (double& v : a) v = -v;
        out->emplace_back(a, 0.0);
        break;
      }
      case CmpOp::kEq:
        return false;  // a nontrivial hyperplane: measure zero
      case CmpOp::kNeq:
        break;  // removes a measure-zero set; ignore
    }
  }
  return true;
}

// The caller's long-lived pool when provided, else a per-call pool parked in
// `local` (ThreadPool(1) is free, so this is cheap on the default path).
util::ThreadPool* EnsurePool(const FprasOptions& options,
                             std::optional<util::ThreadPool>* local) {
  if (options.pool != nullptr) return options.pool;
  local->emplace(util::ThreadPool::ResolveThreadCount(options.num_threads));
  return &**local;
}

}  // namespace

util::StatusOr<FprasBodySet> BuildFprasBodies(
    const constraints::RealFormula& formula, const FprasOptions& options) {
  // Phase-level span: DNF, cone translation, and the inner-ball LPs.
  obs::Span span("fpras.build_bodies");
  FprasBodySet set;
  if (formula.is_constant()) {
    set.trivial = true;
    set.trivial_value = formula.kind() == RealFormula::Kind::kTrue ? 1.0 : 0.0;
    return set;
  }
  if (!formula.IsLinear()) {
    return util::Status::InvalidArgument(
        "FPRAS requires linear constraints (CQ(+,<) image); "
        "use the AFPRAS for FO(+,\xC2\xB7,<)");
  }

  RealFormula working = formula;
  int dim = formula.NumVariables();
  std::set<int> used = formula.UsedVariables();
  if (used.empty()) {
    // Variable-free but not structurally constant (constant-polynomial
    // atoms): truth is direction-independent, so ν is 0/1 exactly.
    set.trivial = true;
    set.trivial_value = formula.AsymptoticTruth({}) ? 1.0 : 0.0;
    return set;
  }
  if (options.restrict_to_used_vars) {
    std::vector<int> remap(*used.rbegin() + 1, -1);
    int next = 0;
    for (int v : used) remap[v] = next++;
    working = formula.RemapVariables(remap);
    dim = next;
  }
  set.sampled_dimension = dim;

  MUDB_ASSIGN_OR_RETURN(std::vector<Conjunction> dnf,
                        working.ToDnf(options.max_disjuncts));

  // Translate every disjunct to cone halfspaces (cheap, serial), ...
  std::vector<std::vector<std::pair<geom::Vec, double>>> cones;
  for (const Conjunction& conj : dnf) {
    Conjunction hom = constraints::HomogenizeLinear(conj);
    std::vector<std::pair<geom::Vec, double>> halfspaces;
    if (!DisjunctToHalfspaces(hom, dim, &halfspaces)) continue;
    if (halfspaces.empty()) {
      // The disjunct covers the whole space: ν = 1 exactly.
      set.trivial = true;
      set.trivial_value = 1.0;
      set.bodies.clear();
      return set;
    }
    cones.push_back(std::move(halfspaces));
  }

  // ... then dispatch the inner-ball LPs as independent tasks and assemble
  // the surviving bodies in cone order.
  std::optional<util::ThreadPool> local_pool;
  util::ThreadPool* pool = EnsurePool(options, &local_pool);
  // Chunked so each task reuses one InnerBallFinder (LP tableau scratch and
  // the shared box/margin rows) across its cones. The grid is a function of
  // the cone count alone and each cone's result depends only on that cone,
  // so the outcome is identical for any thread count.
  std::vector<std::optional<convex::InnerBall>> inners(cones.size());
  const int num_cones = static_cast<int>(cones.size());
  const int lp_chunks = std::min(num_cones, 64);
  if (lp_chunks > 0) {
    pool->ParallelFor(lp_chunks, [&](int64_t c) {
      convex::InnerBallFinder finder(dim, 1.0);
      for (int i = static_cast<int>(c); i < num_cones; i += lp_chunks) {
        inners[i] = finder.Find(cones[i]);
      }
    });
  }
  for (size_t i = 0; i < cones.size(); ++i) {
    if (!inners[i]) continue;  // empty interior: volume 0
    convex::ConvexBody body(dim);
    for (auto& [a, b] : cones[i]) body.AddHalfspace(std::move(a), b);
    body.AddBall(geom::Vec(dim, 0.0), 1.0);
    double outer_bound = 1.0 + geom::Norm(inners[i]->center) + 1e-9;
    set.bodies.push_back(
        volume::SeededBody{std::move(body), *inners[i], outer_bound});
  }
  if (span.recording()) {
    span.Annotate("cones", static_cast<double>(cones.size()));
    span.Annotate("bodies", static_cast<double>(set.bodies.size()));
  }
  return set;
}

util::StatusOr<FprasResult> FprasFromBodies(const FprasBodySet& body_set,
                                            const FprasOptions& options,
                                            util::Rng& rng) {
  FprasResult result;
  result.sampled_dimension = body_set.sampled_dimension;
  if (body_set.trivial) {
    result.trivial = true;
    result.estimate = body_set.trivial_value;
    result.ci_lo = result.estimate;
    result.ci_hi = result.estimate;
    return result;
  }
  result.active_disjuncts = static_cast<int>(body_set.bodies.size());
  if (body_set.bodies.empty()) {
    // Every disjunct has measure zero (or empty interior): ν = 0 exactly,
    // without sampling — report it as trivial so downstream consumers (the
    // ranking scheduler's tier freeze, is_exact) treat it like the other
    // exact paths.
    result.trivial = true;
    result.estimate = 0.0;
    return result;
  }

  // Phase-level span over the union-volume estimate (the sampling expense).
  obs::Span span("fpras.union_estimate");
  if (span.recording()) {
    span.Annotate("bodies", static_cast<double>(body_set.bodies.size()));
    span.Annotate("epsilon", options.epsilon);
  }
  std::optional<util::ThreadPool> local_pool;
  util::ThreadPool* pool = EnsurePool(options, &local_pool);
  volume::UnionVolumeOptions uopts;
  uopts.epsilon = options.epsilon;
  uopts.body_volume.epsilon = options.epsilon;
  uopts.pool = pool;
  uopts.body_volume.pool = pool;
  uopts.body_cache = options.body_cache;
  MUDB_ASSIGN_OR_RETURN(
      volume::UnionVolumeResult uv,
      volume::EstimateUnionVolume(body_set.bodies, uopts, rng));
  result.estimate =
      uv.volume / geom::BallVolume(body_set.sampled_dimension, 1.0);
  // est ∈ [(1−ε)ν, (1+ε)ν] inverts to ν ∈ [est/(1+ε), est/(1−ε)]; at
  // ε = 1 the upper bound is vacuous (and est/0 would be NaN for est = 0).
  result.ci_lo = result.estimate / (1.0 + options.epsilon);
  result.ci_hi =
      options.epsilon >= 1.0
          ? 1.0
          : std::min(1.0, result.estimate / (1.0 - options.epsilon));
  result.sampling_steps = uv.steps;
  result.unique_bodies = uv.unique_bodies;
  result.body_cache_hits = uv.body_cache_hits;
  if (span.recording()) {
    span.Annotate("sampling_steps", static_cast<double>(uv.steps));
    span.Annotate("body_cache_hits", static_cast<double>(uv.body_cache_hits));
  }
  return result;
}

util::StatusOr<FprasResult> FprasConjunctive(
    const constraints::RealFormula& formula, const FprasOptions& options,
    util::Rng& rng) {
  // One pool serves both halves (the halves each spawn their own only when
  // called standalone without one).
  std::optional<util::ThreadPool> local_pool;
  FprasOptions opts = options;
  opts.pool = EnsurePool(options, &local_pool);
  MUDB_ASSIGN_OR_RETURN(FprasBodySet set, BuildFprasBodies(formula, opts));
  return FprasFromBodies(set, opts, rng);
}

}  // namespace mudb::measure
