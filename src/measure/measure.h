// Public API: the measure of certainty μ(q, D, (a,s)) of the paper, and the
// underlying asymptotic volume functional ν(φ).
//
// Typical use:
//
//   model::Database db = ...;                 // may contain ⊥/⊤ nulls
//   logic::Query q = ...;                     // FO(+,·,<)
//   model::Tuple candidate = ...;             // one value per output column
//   measure::MeasureOptions opts;
//   opts.num_threads = 0;                     // 0 = all hardware threads
//   auto result = measure::ComputeMeasure(q, db, candidate, opts);
//   // result->value ∈ [0, 1]; result->is_exact tells whether it is exact.
//
// Method selection (kAuto): exact engines when applicable (order formulae
// with few variables; ≤ 2 numeric nulls in the constraints), otherwise the
// AFPRAS of Thm. 8.1. The FPRAS of Thm. 7.1 must be requested explicitly
// (its multiplicative guarantee is stronger but its constants are larger).
//
// The randomized engines run on the shared parallel sampling runtime
// (util/thread_pool.h): given the same seed, any num_threads value returns
// bit-identical results, because sampling work is carved into RNG substreams
// by the workload, never by the thread count.
//
// Evaluating many candidates over one database? Use the serving layer
// (src/service/measure_service.h): it batches ComputeMeasure-equivalent
// requests, deduplicates identical convex bodies within and across requests
// via canonical content keys, and caches estimates — bit-identical to the
// sequential calls, at a fraction of the sampling cost. Per-call reuse knobs
// (`pool`, `body_cache` below) are what the service plugs into. Ranking
// candidates ("which k tuples are most certain?") should go through
// MeasureService::RunTopK (service/ranking_service.h): its ε-ladder prunes
// hopeless candidates at coarse precision instead of paying the final ε for
// all of them.

#ifndef MUDB_SRC_MEASURE_MEASURE_H_
#define MUDB_SRC_MEASURE_MEASURE_H_

#include <cstdint>
#include <optional>
#include <string>

#include <map>

#include "src/constraints/real_formula.h"
#include "src/logic/formula.h"
#include "src/measure/afpras.h"
#include "src/measure/conditional.h"
#include "src/measure/fpras.h"
#include "src/model/database.h"
#include "src/util/rational.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/volume/union_volume.h"

namespace mudb::measure {

enum class Method {
  kAuto,        ///< exact when cheap, else AFPRAS
  kExactOrder,  ///< signed-interleaving enumeration (order formulae only)
  kExact2D,     ///< arc measure (≤ 2 variables only)
  kAfpras,      ///< additive approximation, any FO(+,·,<) grounding
  kFpras,       ///< multiplicative approximation, linear groundings only
};

const char* MethodToString(Method method);

struct MeasureOptions {
  Method method = Method::kAuto;
  /// Error bound: additive for the AFPRAS, relative for the FPRAS.
  double epsilon = 0.01;
  /// Failure probability of the randomized engines.
  double delta = 0.25;
  /// RNG seed for the randomized engines.
  uint64_t seed = 0xC0FFEE;
  /// Query Z3 (when available) for μ=0 / μ=1 certificates before sampling.
  bool use_z3_shortcuts = false;
  /// Sample only nulls that occur in the constraints (§9 optimization).
  bool restrict_to_used_vars = true;
  /// kAuto: maximum variables for the exact order engine.
  int exact_order_max_vars = 8;
  /// Passed to the FPRAS DNF conversion.
  size_t max_dnf_disjuncts = 4096;
  /// Cap on grounding (translate::GroundOptions::max_atoms) for the
  /// query-level entry points: bounds the work a single request can cost
  /// before sampling starts. Exceeding it fails with ResourceExhausted.
  size_t max_ground_atoms = 2'000'000;
  /// Worker threads for the randomized engines (AFPRAS, conditional AFPRAS,
  /// FPRAS); 0 or negative = all hardware threads. Estimates are
  /// bit-identical for any value given the same seed.
  int num_threads = 1;
  /// Optional long-lived pool for per-candidate loops: when set, the
  /// engines use it as-is instead of spawning workers per call. Not owned;
  /// one submitter at a time (share across sequential calls only).
  util::ThreadPool* pool = nullptr;
  /// Optional cross-call cache of per-body volume estimates for the FPRAS
  /// path (not owned, must be thread-safe; see volume/union_volume.h and
  /// service/estimate_cache.h). Hits skip a body's sampling entirely and
  /// are bit-identical to recomputation, so sharing one cache across calls
  /// never changes any result.
  volume::BodyEstimateCache* body_cache = nullptr;
};

struct MeasureResult {
  /// The (estimated or exact) value of μ / ν in [0, 1].
  double value = 0.0;
  /// Confidence interval on the true measure, clamped to [0, 1]: with
  /// probability >= 1 − δ it lies in [ci_lo, ci_hi]. Multiplicative
  /// [value/(1+ε), value/(1−ε)] for the FPRAS, additive value ± ε for the
  /// AFPRAS family, a point for exact paths. The ranking scheduler
  /// (service/ranking_service.h) prunes candidates by these bounds.
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  /// ε-ladder tier this evaluation ran at: 0 on the direct API (one
  /// evaluation = one tier); the ranking scheduler stamps the ladder tier
  /// on each RankedCandidate::result (service/ranking_service.h).
  int tier = 0;
  /// The ε this evaluation actually ran at: options.epsilon for the
  /// randomized engines, 0 for exact paths (a point interval needs no
  /// budget). The ranking layers thread it through tier results so a
  /// session can tell how sharp a retained interval is without re-deriving
  /// the tier schedule (service/ranking_session.h).
  double epsilon_used = 0.0;
  /// Set when the value is exact and rational (order engine).
  std::optional<util::Rational> exact_rational;
  /// True when the value is exact (0/1 shortcuts, exact engines).
  bool is_exact = false;
  /// The engine that produced the value.
  Method method_used = Method::kAuto;
  /// Samples drawn by randomized engines (0 for exact paths).
  int64_t samples = 0;
  /// Hit-and-run steps taken by the FPRAS sampling pipeline (0 for the
  /// other engines; cache hits contribute nothing). Feeds the serving
  /// layer's per-batch accounting.
  int64_t sampling_steps = 0;
  /// Convex bodies that entered the FPRAS union estimate, before and after
  /// canonical dedup (0 for the other engines).
  int bodies = 0;
  int unique_bodies = 0;
  /// Unique-body volume estimates served by MeasureOptions::body_cache.
  int64_t body_cache_hits = 0;
  /// Dimension sampled after variable restriction.
  int sampled_dimension = 0;
};

/// Validates the error-model knobs once at the API boundary: ε must lie in
/// (0, 1] and δ in (0, 1). Every public entry point (ComputeNu /
/// ComputeMeasure / ComputeConditionalMeasure and the serving layer) calls
/// this before doing any work — the ranking ladder's δ-splitting divides δ
/// into per-tier budgets, so a degenerate δ must fail up front instead of
/// flowing into AfprasSampleCount.
util::Status ValidateMeasureOptions(const MeasureOptions& options);

/// Computes ν(φ) for a grounded formula.
util::StatusOr<MeasureResult> ComputeNu(
    const constraints::RealFormula& formula, const MeasureOptions& options);

/// Computes μ(q, D, candidate): grounds via Prop. 5.3 and evaluates ν.
util::StatusOr<MeasureResult> ComputeMeasure(const logic::Query& q,
                                             const model::Database& db,
                                             const model::Tuple& candidate,
                                             const MeasureOptions& options);

/// Interval constraints on numeric nulls, keyed by null id (§10 extension:
/// "price is positive", "discount lies in [0, 1]").
using NullRanges = std::map<model::NullId, VarRange>;

/// Conditional measure μ_C(q, D, candidate): grounds the query, maps the
/// null-id ranges onto the grounded variables, and runs the conditional
/// AFPRAS (always randomized; exact engines do not apply).
util::StatusOr<MeasureResult> ComputeConditionalMeasure(
    const logic::Query& q, const model::Database& db,
    const model::Tuple& candidate, const NullRanges& ranges,
    const MeasureOptions& options);

/// True certain answer (μ = 1 via validity of φ over R^k). Requires Z3.
util::StatusOr<bool> IsCertainAnswer(const logic::Query& q,
                                     const model::Database& db,
                                     const model::Tuple& candidate);

/// Possibility (φ satisfiable, i.e. some valuation makes the tuple an
/// answer). Requires Z3.
util::StatusOr<bool> IsPossibleAnswer(const logic::Query& q,
                                      const model::Database& db,
                                      const model::Tuple& candidate);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_MEASURE_H_
