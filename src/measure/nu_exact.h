// Exact evaluation of ν(φ) for special classes of formulae.
//
//   * NuExactOrder — order-constraint formulae (the image of FO(<) queries):
//     every atom compares a variable with a variable or a constant. ν is then
//     rational (Prop. 6.2); we enumerate "signed interleaving" patterns — for
//     a uniform direction, the probability that a given sign vector and a
//     given relative order of the coordinates occurs is
//     2^{-k} / (j! (k-j)!) with j the number of negative coordinates —
//     yielding the exact rational value in exponential time, which is
//     consistent with the FP^{#P}-hardness of the problem.
//
//   * NuExact2D — formulae over at most 2 variables (any degree). The set of
//     asymptotically-true directions is a finite union of arcs whose
//     endpoints are zeros of the homogeneous components of the atoms; we
//     isolate them with Sturm sequences and measure the union of arcs. This
//     covers the paper's introduction example ((π/2 − arctan(10/7))/2π) and
//     the irrationality example of Prop. 6.1 (arctan(α)/2π + 1/2).

#ifndef MUDB_SRC_MEASURE_NU_EXACT_H_
#define MUDB_SRC_MEASURE_NU_EXACT_H_

#include "src/constraints/real_formula.h"
#include "src/util/rational.h"
#include "src/util/status.h"

namespace mudb::measure {

/// True if every atom of φ is an order constraint: a linear polynomial whose
/// non-constant part is c·z_i or c·(z_i − z_j).
bool IsOrderFormula(const constraints::RealFormula& formula);

/// Exact rational ν(φ) for order formulae. InvalidArgument if φ is not an
/// order formula; ResourceExhausted if it uses more than `max_vars` variables
/// (the enumeration is (k+1)! patterns).
util::StatusOr<util::Rational> NuExactOrder(
    const constraints::RealFormula& formula, int max_vars = 9);

/// Exact (up to root-isolation precision ~1e-12) ν(φ) for formulae over at
/// most 2 variables. InvalidArgument if more variables occur.
util::StatusOr<double> NuExact2D(const constraints::RealFormula& formula);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_NU_EXACT_H_
