// AFPRAS (Thm. 8.1): additive fully polynomial-time randomized approximation
// of ν(φ) for arbitrary FO(+,·,<) groundings.
//
// By Lemma 8.3, ν(φ) equals the fraction of directions a in the unit ball
// with lim_{k→∞} f_{φ,a}(k) = 1; the limit is decided per direction in
// polynomial time by leading-coefficient analysis (Lemma 8.4, implemented in
// RealFormula::AsymptoticTruth). Sampling m >= ln(2/δ)/(2ε²) directions gives
// |estimate − ν| < ε with probability >= 1 − δ (Hoeffding; the paper quotes
// m >= ε^{-2} for δ = 1/4).

#ifndef MUDB_SRC_MEASURE_AFPRAS_H_
#define MUDB_SRC_MEASURE_AFPRAS_H_

#include <cstdint>

#include "src/constraints/real_formula.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace mudb::measure {

struct AfprasOptions {
  /// Additive error bound ε ∈ (0, 1].
  double epsilon = 0.01;
  /// Failure probability δ ∈ (0, 1).
  double delta = 0.25;
  /// Overrides the sample count computed from (ε, δ) when > 0.
  int64_t num_samples = 0;
  /// The §9 optimization: sample only the coordinates of nulls that occur in
  /// the formula (the remaining coordinates cannot affect the truth value,
  /// and dropping them does not change the directional distribution).
  bool restrict_to_used_vars = true;
  /// Absolute tolerance when deciding whether a restricted coefficient is 0.
  double coefficient_tolerance = 1e-12;
  /// Worker threads for the sampling loop; 0 or negative = all hardware
  /// threads. The estimate is bit-identical for any value given the same
  /// seed: samples are carved into fixed-size chunks, chunk c drawing from
  /// the substream Rng::Split(c) (see util/parallel.h).
  int num_threads = 1;
  /// Optional long-lived pool; when set it is used as-is (num_threads only
  /// sizes per-call pools) so hot loops over many estimates skip the
  /// per-call worker spawn. Not owned; one submitter at a time.
  util::ThreadPool* pool = nullptr;
};

struct AfprasResult {
  double estimate = 0.0;
  /// Additive confidence interval [estimate − ε, estimate + ε] clamped to
  /// [0, 1] (a point when `exact`): the true ν lies inside with
  /// probability >= 1 − δ (Hoeffding).
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  int64_t samples = 0;
  /// Dimension actually sampled (after restriction to used variables).
  int sampled_dimension = 0;
  /// True when the estimate is exactly ν — constant and variable-free
  /// formulae are decided without sampling.
  bool exact = false;
};

/// Number of samples required for additive error ε with confidence 1 − δ.
int64_t AfprasSampleCount(double epsilon, double delta);

/// Fills ci_lo/ci_hi from the estimate: the additive Hoeffding interval
/// estimate ± ε clamped to [0, 1], collapsing to a point when `exact`.
/// Shared by every AFPRAS-family engine (unconditional, conditional,
/// probabilistic) so the interval the ranking scheduler prunes by cannot
/// drift between them.
void FillAdditiveInterval(AfprasResult* result, double epsilon);

/// Runs the AFPRAS on φ. Constant formulae return exactly 0 or 1. Advances
/// `rng` by one draw (Rng::Fork) and samples from substreams of the forked
/// child, so repeated calls with one Rng see fresh randomness while a fresh
/// same-seeded Rng reproduces the estimate bit-exactly.
util::StatusOr<AfprasResult> Afpras(const constraints::RealFormula& formula,
                                    const AfprasOptions& options,
                                    util::Rng& rng);

}  // namespace mudb::measure

#endif  // MUDB_SRC_MEASURE_AFPRAS_H_
