// Exact rational arithmetic on 64-bit numerator/denominator.
//
// Used by the exact measure engines (FO(<) order patterns are always rational,
// Prop. 6.2 of the paper). Operations check for overflow via __int128 and
// abort on overflow: the exact engines only run on small instances where
// overflow indicates a bug, not a data condition.

#ifndef MUDB_SRC_UTIL_RATIONAL_H_
#define MUDB_SRC_UTIL_RATIONAL_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/util/status.h"

namespace mudb::util {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// An integer value.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT: implicit
  /// num/den; den may be negative or non-reduced, normalization is applied.
  /// Aborts if den == 0.
  Rational(int64_t num, int64_t den);

  int64_t numerator() const { return num_; }
  int64_t denominator() const { return den_; }

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  /// "n/d", or just "n" when the denominator is 1.
  std::string ToString() const;

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }

  Rational operator-() const { return Rational(-num_, den_); }
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Aborts on division by zero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const {
    return *this < other || *this == other;
  }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return other <= *this; }

  /// n! as a rational; aborts on overflow (n <= 20 is safe).
  static Rational Factorial(int n);
  /// 2^n as a rational; n in [-62, 62].
  static Rational PowerOfTwo(int n);

 private:
  static Rational FromInt128(__int128 num, __int128 den);

  int64_t num_;
  int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_RATIONAL_H_
