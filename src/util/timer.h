// Wall-clock timing used by the benchmark harnesses that regenerate the
// paper's Figure 1 series.

#ifndef MUDB_SRC_UTIL_TIMER_H_
#define MUDB_SRC_UTIL_TIMER_H_

#include <chrono>

namespace mudb::util {

/// Measures elapsed wall time since construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_TIMER_H_
