// Wall-clock timing for the bench harnesses and service accounting.
//
// Backed by obs::Clock — the process's single steady-clock path — so every
// reported duration (BatchStats::wall_ms, span ticks, bench timings) moves
// together, and tests can swap in obs::ScopedFakeClock to make duration
// assertions deterministic.

#ifndef MUDB_SRC_UTIL_TIMER_H_
#define MUDB_SRC_UTIL_TIMER_H_

#include <cstdint>

#include "src/obs/clock.h"

namespace mudb::util {

/// Measures elapsed wall time since construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(obs::Clock::NowNanos()) {}

  void Restart() { start_ = obs::Clock::NowNanos(); }

  /// Seconds elapsed since construction/Restart.
  double ElapsedSeconds() const {
    return obs::Clock::NanosToSeconds(obs::Clock::NowNanos() - start_);
  }

  /// Milliseconds elapsed since construction/Restart.
  double ElapsedMillis() const {
    return obs::Clock::NanosToMillis(obs::Clock::NowNanos() - start_);
  }

 private:
  int64_t start_;
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_TIMER_H_
