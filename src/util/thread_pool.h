// A small persistent worker pool for the data-parallel sampling loops of the
// randomized estimators (FPRAS, AFPRAS, annealed volume estimation).
//
// The determinism contract: ParallelFor executes a fixed grid of tasks
// [0, n). Callers derive the grid from the workload (sample budget, number of
// cones) — never from the thread count — give task i the RNG substream
// Rng::Split(i), write each task's output into slot i, and reduce the slots
// in index order after ParallelFor returns. Scheduling then only decides
// *which thread* runs a task, not *what* the task computes, so estimates are
// bit-identical for any pool size, including the inline single-thread path.

#ifndef MUDB_SRC_UTIL_THREAD_POOL_H_
#define MUDB_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/trace.h"

namespace mudb::util {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the calling thread participates in
  /// every ParallelFor. Values < 1 are clamped to 1 (no workers, inline
  /// execution), so a ThreadPool(1) is free to construct.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn(i) for every i in [0, n) and returns once all calls are
  /// done. Tasks are claimed dynamically from a shared counter, so fn must
  /// be safe to call concurrently and must not depend on execution order:
  /// write results into per-index slots and do any order-sensitive reduction
  /// after the call returns. fn must not throw and must not call back into
  /// this pool (tasks needing inner parallelism take the pool and issue a
  /// flat grid instead). One submitter at a time: sharing a pool across
  /// *sequential* estimator calls is fine, but concurrent ParallelFor calls
  /// on one pool are not supported — give concurrent submitters their own
  /// pools.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Runs the grid on `pool` when non-null, inline on the calling thread
  /// otherwise — the shared shape of every "parallel if we have workers"
  /// sampling loop, with identical results either way.
  static void RunGrid(ThreadPool* pool, int64_t n,
                      const std::function<void(int64_t)>& fn);

  /// Maps a requested thread count to an actual one: values >= 1 are taken
  /// as-is; 0 and negatives mean "all hardware threads".
  static int ResolveThreadCount(int requested);

 private:
  // One ParallelFor invocation. Workers hold a shared_ptr while draining it,
  // so a straggler that re-checks an already-finished job only sees its
  // exhausted counter and goes back to sleep — it can never claim indices
  // from a job submitted later.
  struct Job {
    const std::function<void(int64_t)>* fn;
    int64_t n;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> completed{0};
    /// Submitter's span context: workers adopt it for the job's duration,
    /// so spans opened inside tasks parent under the submitting span.
    /// Scheduling-only, like everything else here — never read by fn.
    obs::SpanContext ctx;
  };

  void WorkerLoop();
  void RunTasks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // guarded by mu_; non-null while a job runs
  uint64_t epoch_ = 0;        // guarded by mu_; bumped per job
  bool stop_ = false;         // guarded by mu_
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_THREAD_POOL_H_
