// Stable 128-bit content fingerprints for the dedup/caching layers.
//
// The serving layer addresses grounded constraint systems, convex bodies, and
// whole measurement requests by content: two inputs with the same canonical
// byte stream must map to the same key on every platform and in every run, so
// the hash is a fixed function with no per-process seed. Two independent
// SplitMix64-mixed lanes give 128 bits of state; this is a content-address,
// not a cryptographic hash — collisions are a ~2^-64 birthday event for
// realistic corpus sizes, and key equality is treated as object equality by
// the caches built on top (see convex/canonical.h, service/estimate_cache.h).

#ifndef MUDB_SRC_UTIL_FINGERPRINT_H_
#define MUDB_SRC_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <functional>

namespace mudb::util {

struct Fingerprint128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Fingerprint128& a, const Fingerprint128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint128& a, const Fingerprint128& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint128& a, const Fingerprint128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// For unordered containers. The lanes are already avalanche-mixed, so
  /// folding them is enough.
  struct Hash {
    size_t operator()(const Fingerprint128& f) const {
      return static_cast<size_t>(f.hi ^ (f.lo * 0x9E3779B97F4A7C15ull));
    }
  };
};

/// Order-sensitive streaming hasher. Absorb the canonical representation one
/// 64-bit word at a time; Digest() folds in the word count so streams that
/// are prefixes of each other cannot collide trivially.
class FingerprintHasher {
 public:
  FingerprintHasher() = default;
  /// Domain-separated hasher: streams absorbed under distinct tags live in
  /// disjoint codomains (e.g. body keys vs. request keys).
  explicit FingerprintHasher(uint64_t domain_tag) { Absorb(domain_tag); }

  void Absorb(uint64_t v) {
    h1_ = Mix(h1_ ^ (v * 0x9E3779B97F4A7C15ull));
    h2_ = Mix(h2_ + (v ^ 0xC2B2AE3D27D4EB4Full));
    ++len_;
  }

  /// Canonicalizes -0.0 to +0.0 so numerically equal coefficients absorb
  /// identically. NaNs are not expected in canonical streams.
  void AbsorbDouble(double v) {
    if (v == 0.0) v = 0.0;  // drop the sign of zero
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Absorb(bits);
  }

  Fingerprint128 Digest() const {
    Fingerprint128 fp;
    fp.hi = Mix(h1_ ^ Mix(len_));
    fp.lo = Mix(h2_ + Mix(len_ ^ 0xD6E8FEB86659FD93ull));
    return fp;
  }

 private:
  /// The SplitMix64 finalizer (also used by Rng::SplitMix64; duplicated here
  /// so the header stays dependency-free).
  static uint64_t Mix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t h1_ = 0x243F6A8885A308D3ull;  // pi digits: arbitrary fixed IVs
  uint64_t h2_ = 0x13198A2E03707344ull;
  uint64_t len_ = 0;
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_FINGERPRINT_H_
