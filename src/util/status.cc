#include "src/util/status.h"

namespace mudb::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

bool IsRetryableStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  if (!context_.empty()) {
    out += " [";
    if (context_.shard_id >= 0) {
      out += "shard ";
      out += std::to_string(context_.shard_id);
      if (context_.attempts > 0) out += ", ";
    }
    if (context_.attempts > 0) {
      out += "attempt ";
      out += std::to_string(context_.attempts);
    }
    out += "]";
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mudb::util
