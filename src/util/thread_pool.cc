#include "src/util/thread_pool.h"

#include <algorithm>

namespace mudb::util {

ThreadPool::ThreadPool(int num_threads) {
  int workers = std::max(1, num_threads) - 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (epoch_ != seen && job_ != nullptr);
      });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    RunTasks(*job);
  }
}

void ThreadPool::RunTasks(Job& job) {
  // No-op unless the submitter had an active span (one thread_local write
  // per *job*, not per task).
  obs::ScopedContext adopt(job.ctx);
  for (;;) {
    int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    (*job.fn)(i);
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      // Take the lock so the notify cannot slip between the waiter's
      // predicate check and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->ctx = obs::CurrentContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunTasks(*job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) >= job->n;
    });
    job_ = nullptr;
  }
}

void ThreadPool::RunGrid(ThreadPool* pool, int64_t n,
                         const std::function<void(int64_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (int64_t i = 0; i < n; ++i) fn(i);
  }
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace mudb::util
