#include "src/util/rational.h"

#include <cstdlib>
#include <limits>
#include <numeric>

namespace mudb::util {

namespace {

__int128 Gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool FitsInt64(__int128 v) {
  return v >= std::numeric_limits<int64_t>::min() &&
         v <= std::numeric_limits<int64_t>::max();
}

}  // namespace

Rational Rational::FromInt128(__int128 num, __int128 den) {
  MUDB_CHECK(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  __int128 g = Gcd128(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  MUDB_CHECK(FitsInt64(num) && FitsInt64(den));
  Rational r;
  r.num_ = static_cast<int64_t>(num);
  r.den_ = static_cast<int64_t>(den);
  return r;
}

Rational::Rational(int64_t num, int64_t den) {
  *this = FromInt128(num, den);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator+(const Rational& other) const {
  return FromInt128(static_cast<__int128>(num_) * other.den_ +
                        static_cast<__int128>(other.num_) * den_,
                    static_cast<__int128>(den_) * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  return FromInt128(static_cast<__int128>(num_) * other.num_,
                    static_cast<__int128>(den_) * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  MUDB_CHECK(other.num_ != 0);
  return FromInt128(static_cast<__int128>(num_) * other.den_,
                    static_cast<__int128>(den_) * other.num_);
}

bool Rational::operator<(const Rational& other) const {
  return static_cast<__int128>(num_) * other.den_ <
         static_cast<__int128>(other.num_) * den_;
}

Rational Rational::Factorial(int n) {
  MUDB_CHECK(n >= 0 && n <= 20);
  int64_t value = 1;
  for (int i = 2; i <= n; ++i) value *= i;
  return Rational(value);
}

Rational Rational::PowerOfTwo(int n) {
  MUDB_CHECK(n >= -62 && n <= 62);
  int64_t p = int64_t{1} << (n < 0 ? -n : n);
  return n >= 0 ? Rational(p) : Rational(1, p);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace mudb::util
