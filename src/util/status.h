// Status and StatusOr: the error model used across the mudb public API.
//
// mudb follows the Arrow/RocksDB convention of not throwing exceptions across
// library boundaries. Fallible operations return util::Status (or
// util::StatusOr<T> when they also produce a value). Programming errors
// (broken invariants) abort via MUDB_CHECK.

#ifndef MUDB_SRC_UTIL_STATUS_H_
#define MUDB_SRC_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mudb::util {

/// Canonical error codes, a small subset of the absl/gRPC code space.
///
/// The serving layer splits these into two classes (the layered
/// retryable-vs-permanent taxonomy of SNIPPETS.md §3): *transient* codes
/// describe a condition that can clear on its own — retry with backoff, a
/// fresh deadline, or a different shard may succeed — while *permanent*
/// codes describe the request itself (malformed input, missing entity,
/// broken invariant) and retrying verbatim can never help. IsRetryable()
/// below is the classification clients and the sharded router key off.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kUnimplemented = 4,
  kInternal = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
  /// Transient: the target (a shard, a backend) cannot serve right now.
  kUnavailable = 8,
  /// The per-request deadline expired before a result was produced.
  /// Retryable — but only with a fresh deadline; the sharded router never
  /// retries it within the same request.
  kDeadlineExceeded = 9,
  /// The operation was cut short (typically by a concurrent conflict or an
  /// injected fault) without completing; safe to retry.
  kAborted = 10,
};

/// One past the largest StatusCode value. Lets tests iterate the enum so a
/// newly added code cannot silently print as "Unknown".
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kAborted) + 1;

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// True for the transient codes (kUnavailable, kDeadlineExceeded, kAborted,
/// kResourceExhausted): the same request may succeed on retry. Everything
/// else — including kOk — is not retryable.
bool IsRetryableStatusCode(StatusCode code);

/// Structured context carried by serving-layer errors so batch failures are
/// attributable: which shard failed, after how many delivery attempts.
/// Default-constructed = "no context" (shard_id < 0, attempts == 0).
struct StatusContext {
  /// Shard that produced (or was targeted by) the failure; -1 = unsharded.
  int shard_id = -1;
  /// Transport attempts consumed when the status was produced (0 = unset).
  int attempts = 0;

  bool empty() const { return shard_id < 0 && attempts == 0; }
};

/// The result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when a retry of the same operation may succeed (see StatusCode).
  bool IsRetryable() const { return IsRetryableStatusCode(code_); }

  /// Attaches/reads the structured serving-layer context. The setters
  /// return *this so call sites can annotate in one expression:
  ///   return Status::Unavailable("...").WithShard(2).WithAttempts(3);
  Status& WithShard(int shard_id) & {
    context_.shard_id = shard_id;
    return *this;
  }
  Status&& WithShard(int shard_id) && {
    context_.shard_id = shard_id;
    return std::move(*this);
  }
  Status& WithAttempts(int attempts) & {
    context_.attempts = attempts;
    return *this;
  }
  Status&& WithAttempts(int attempts) && {
    context_.attempts = attempts;
    return std::move(*this);
  }
  const StatusContext& context() const { return context_; }

  /// "OK" or "<CodeName>: <message>", with a " [shard N, attempt M]" suffix
  /// when context is attached.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  StatusContext context_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Access to the value of a
/// non-OK StatusOr aborts the process, so callers must test ok() first (or
/// use the MUDB_ASSIGN_OR_RETURN macro).
template <typename T>
class StatusOr {
 public:
  /// Intentionally implicit, so functions can `return value;` or
  /// `return Status::...;` interchangeably.
  StatusOr(T value) : value_(std::move(value)) {}             // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace mudb::util

/// Propagates a non-OK Status from an expression evaluating to Status.
#define MUDB_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::mudb::util::Status _mudb_status = (expr);           \
    if (!_mudb_status.ok()) return _mudb_status;          \
  } while (false)

#define MUDB_CONCAT_IMPL(a, b) a##b
#define MUDB_CONCAT(a, b) MUDB_CONCAT_IMPL(a, b)

/// Evaluates an expression yielding StatusOr<T>; on error returns the status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define MUDB_ASSIGN_OR_RETURN(lhs, expr)                              \
  MUDB_ASSIGN_OR_RETURN_IMPL(MUDB_CONCAT(_mudb_statusor_, __LINE__), \
                             lhs, expr)

#define MUDB_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

/// Aborts the process with a message when `cond` is false. Used for internal
/// invariants that indicate programming errors, never for user input.
#define MUDB_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MUDB_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define MUDB_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define MUDB_DCHECK(cond) MUDB_CHECK(cond)
#endif

#endif  // MUDB_SRC_UTIL_STATUS_H_
