// Status and StatusOr: the error model used across the mudb public API.
//
// mudb follows the Arrow/RocksDB convention of not throwing exceptions across
// library boundaries. Fallible operations return util::Status (or
// util::StatusOr<T> when they also produce a value). Programming errors
// (broken invariants) abort via MUDB_CHECK.

#ifndef MUDB_SRC_UTIL_STATUS_H_
#define MUDB_SRC_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mudb::util {

/// Canonical error codes, a small subset of the absl/gRPC code space.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kUnimplemented = 4,
  kInternal = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Access to the value of a
/// non-OK StatusOr aborts the process, so callers must test ok() first (or
/// use the MUDB_ASSIGN_OR_RETURN macro).
template <typename T>
class StatusOr {
 public:
  /// Intentionally implicit, so functions can `return value;` or
  /// `return Status::...;` interchangeably.
  StatusOr(T value) : value_(std::move(value)) {}             // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace mudb::util

/// Propagates a non-OK Status from an expression evaluating to Status.
#define MUDB_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::mudb::util::Status _mudb_status = (expr);           \
    if (!_mudb_status.ok()) return _mudb_status;          \
  } while (false)

#define MUDB_CONCAT_IMPL(a, b) a##b
#define MUDB_CONCAT(a, b) MUDB_CONCAT_IMPL(a, b)

/// Evaluates an expression yielding StatusOr<T>; on error returns the status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define MUDB_ASSIGN_OR_RETURN(lhs, expr)                              \
  MUDB_ASSIGN_OR_RETURN_IMPL(MUDB_CONCAT(_mudb_statusor_, __LINE__), \
                             lhs, expr)

#define MUDB_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

/// Aborts the process with a message when `cond` is false. Used for internal
/// invariants that indicate programming errors, never for user input.
#define MUDB_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MUDB_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define MUDB_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define MUDB_DCHECK(cond) MUDB_CHECK(cond)
#endif

#endif  // MUDB_SRC_UTIL_STATUS_H_
