// Per-request deadlines for the serving layer.
//
// A Deadline is an absolute point on the steady clock (never the wall
// clock: a host time adjustment must not expire in-flight requests). The
// sharded router checks it between delivery attempts and converts expiry
// into Status::DeadlineExceeded — in-process transports always complete, so
// the deadline bounds *retrying*, not a single computation.

#ifndef MUDB_SRC_UTIL_DEADLINE_H_
#define MUDB_SRC_UTIL_DEADLINE_H_

#include <chrono>
#include <limits>

namespace mudb::util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed: never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now. Nonpositive values produce an
  /// already-expired deadline (useful for "fail fast" probes and tests).
  static Deadline After(double ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  /// The never-expiring deadline (same as default construction).
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; negative once expired, +infinity for the
  /// infinite deadline.
  double remaining_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_DEADLINE_H_
