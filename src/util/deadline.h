// Per-request deadlines for the serving layer.
//
// A Deadline is an absolute tick on the process's single steady-clock path
// (obs::Clock — never the wall clock: a host time adjustment must not
// expire in-flight requests). The sharded router checks it between delivery
// attempts and converts expiry into Status::DeadlineExceeded — in-process
// transports always complete, so the deadline bounds *retrying*, not a
// single computation. Under obs::ScopedFakeClock, expiry becomes a
// deterministic function of AdvanceMillis calls.

#ifndef MUDB_SRC_UTIL_DEADLINE_H_
#define MUDB_SRC_UTIL_DEADLINE_H_

#include <cstdint>
#include <limits>

#include "src/obs/clock.h"

namespace mudb::util {

class Deadline {
 public:
  /// Default-constructed: never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now. Nonpositive values produce an
  /// already-expired deadline (useful for "fail fast" probes and tests).
  static Deadline After(double ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_nanos_ = obs::Clock::NowNanos() + static_cast<int64_t>(ms * 1e6);
    return d;
  }

  /// The never-expiring deadline (same as default construction).
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return infinite_; }

  bool expired() const {
    return !infinite_ && obs::Clock::NowNanos() >= at_nanos_;
  }

  /// Milliseconds until expiry; negative once expired, +infinity for the
  /// infinite deadline.
  double remaining_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return obs::Clock::NanosToMillis(at_nanos_ - obs::Clock::NowNanos());
  }

 private:
  bool infinite_ = true;
  int64_t at_nanos_ = 0;
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_DEADLINE_H_
