#include "src/util/rng.h"

#include <cmath>

namespace mudb::util {

namespace internal {

namespace {

// Rightmost layer edge of the 256-layer standard-normal ziggurat and its
// reciprocal (Marsaglia–Tsang; the x_1 for which the 256-rectangle
// construction closes).
constexpr double kZigR = 3.6541528853610088;
constexpr double kZigInvR = 1.0 / kZigR;
constexpr double kM52 = 4503599627370496.0;  // 2^52

}  // namespace

ZigguratTables::ZigguratTables() {
  double dn = kZigR;
  double tn = kZigR;
  double f = std::exp(-0.5 * dn * dn);
  // Common layer area: rightmost rectangle plus the unnormalized Gaussian
  // tail mass beyond it.
  double v = dn * f + std::sqrt(M_PI / 2.0) * std::erfc(dn / std::sqrt(2.0));
  double q = v / f;
  ki[0] = static_cast<uint64_t>((dn / q) * kM52);
  ki[1] = 0;
  wi[0] = q / kM52;
  wi[255] = dn / kM52;
  fi[0] = 1.0;
  fi[255] = f;
  for (int i = 254; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(v / dn + std::exp(-0.5 * dn * dn)));
    ki[i + 1] = static_cast<uint64_t>((dn / tn) * kM52);
    tn = dn;
    fi[i] = std::exp(-0.5 * dn * dn);
    wi[i] = dn / kM52;
  }
}

const ZigguratTables& Ziggurat() {
  static const ZigguratTables tables;
  return tables;
}

void BufferedMt19937_64::Refill() {
  // The MT19937-64 twist (Matsumoto–Nishimura constants, as in
  // std::mt19937_64), written as three wrap-free segments with the
  // conditional xor in branchless form so the loops auto-vectorize.
  constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
  constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
  constexpr uint64_t kLowerMask = 0x000000007FFFFFFFull;
  uint64_t* __restrict s = state_;
  for (int i = 0; i < kN - kM; ++i) {
    const uint64_t y = (s[i] & kUpperMask) | (s[i + 1] & kLowerMask);
    s[i] = s[i + kM] ^ (y >> 1) ^ ((0ull - (y & 1ull)) & kMatrixA);
  }
  for (int i = kN - kM; i < kN - 1; ++i) {
    const uint64_t y = (s[i] & kUpperMask) | (s[i + 1] & kLowerMask);
    s[i] = s[i + kM - kN] ^ (y >> 1) ^ ((0ull - (y & 1ull)) & kMatrixA);
  }
  const uint64_t y = (s[kN - 1] & kUpperMask) | (s[0] & kLowerMask);
  s[kN - 1] = s[kM - 1] ^ (y >> 1) ^ ((0ull - (y & 1ull)) & kMatrixA);
  // Temper the whole block into the output buffer in one vectorizable pass
  // (std::mt19937_64 pays this per draw).
  uint64_t* __restrict b = buffer_;
  for (int i = 0; i < kN; ++i) {
    uint64_t z = s[i];
    z ^= (z >> 29) & 0x5555555555555555ull;
    z ^= (z << 17) & 0x71D67FFFEDA60000ull;
    z ^= (z << 37) & 0xFFF7EEE000000000ull;
    z ^= z >> 43;
    b[i] = z;
  }
  next_ = 0;
}

}  // namespace internal

bool Rng::GaussianSlow(int idx, bool neg, double x, double* out) {
  const internal::ZigguratTables& zig = internal::Ziggurat();
  if (idx == 0) {
    // Tail layer: sample x > R from the Gaussian tail via the standard
    // double-exponential rejection (Marsaglia 1964).
    double xx;
    double yy;
    do {
      // log1p(-u) = log(1 - u) with 1 - u in (0, 1]: never -inf for
      // u ∈ [0, 1).
      xx = -internal::kZigInvR * std::log1p(-Uniform01());
      yy = -std::log1p(-Uniform01());
    } while (yy + yy < xx * xx);
    double r = internal::kZigR + xx;
    *out = neg ? -r : r;
    return true;
  }
  // Wedge between the layer rectangles: accept against the true density.
  double f_hi = zig.fi[idx - 1];
  double f_lo = zig.fi[idx];
  if (f_lo + Uniform01() * (f_hi - f_lo) < std::exp(-0.5 * x * x)) {
    *out = neg ? -x : x;
    return true;
  }
  return false;  // rejected: redraw a fresh layer
}

void GaussianFillLanes(Rng* rngs, int num_lanes, int n, double* out) {
  for (int l = 0; l < num_lanes; ++l) {
    rngs[l].GaussianFill(n, out + l, num_lanes);
  }
}

}  // namespace mudb::util
