#include "src/util/rng.h"

#include <cmath>

namespace mudb::util {

namespace internal {

namespace {

// Rightmost layer edge of the 256-layer standard-normal ziggurat and its
// reciprocal (Marsaglia–Tsang; the x_1 for which the 256-rectangle
// construction closes).
constexpr double kZigR = 3.6541528853610088;
constexpr double kZigInvR = 1.0 / kZigR;
constexpr double kM52 = 4503599627370496.0;  // 2^52

}  // namespace

ZigguratTables::ZigguratTables() {
  double dn = kZigR;
  double tn = kZigR;
  double f = std::exp(-0.5 * dn * dn);
  // Common layer area: rightmost rectangle plus the unnormalized Gaussian
  // tail mass beyond it.
  double v = dn * f + std::sqrt(M_PI / 2.0) * std::erfc(dn / std::sqrt(2.0));
  double q = v / f;
  ki[0] = static_cast<uint64_t>((dn / q) * kM52);
  ki[1] = 0;
  wi[0] = q / kM52;
  wi[255] = dn / kM52;
  fi[0] = 1.0;
  fi[255] = f;
  for (int i = 254; i >= 1; --i) {
    dn = std::sqrt(-2.0 * std::log(v / dn + std::exp(-0.5 * dn * dn)));
    ki[i + 1] = static_cast<uint64_t>((dn / tn) * kM52);
    tn = dn;
    fi[i] = std::exp(-0.5 * dn * dn);
    wi[i] = dn / kM52;
  }
}

const ZigguratTables& Ziggurat() {
  static const ZigguratTables tables;
  return tables;
}

}  // namespace internal

bool Rng::GaussianSlow(int idx, bool neg, double x, double* out) {
  const internal::ZigguratTables& zig = internal::Ziggurat();
  if (idx == 0) {
    // Tail layer: sample x > R from the Gaussian tail via the standard
    // double-exponential rejection (Marsaglia 1964).
    double xx;
    double yy;
    do {
      // log1p(-u) = log(1 - u) with 1 - u in (0, 1]: never -inf for
      // u ∈ [0, 1).
      xx = -internal::kZigInvR * std::log1p(-Uniform01());
      yy = -std::log1p(-Uniform01());
    } while (yy + yy < xx * xx);
    double r = internal::kZigR + xx;
    *out = neg ? -r : r;
    return true;
  }
  // Wedge between the layer rectangles: accept against the true density.
  double f_hi = zig.fi[idx - 1];
  double f_lo = zig.fi[idx];
  if (f_lo + Uniform01() * (f_hi - f_lo) < std::exp(-0.5 * x * x)) {
    *out = neg ? -x : x;
    return true;
  }
  return false;  // rejected: redraw a fresh layer
}

}  // namespace mudb::util
