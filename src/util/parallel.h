// The chunked-substream map-reduce shared by the sampling estimators.
//
// This header is where the determinism contract lives in code: the chunk
// grid is derived from (total, chunk_size) alone — never from the thread
// count — chunk c draws from base.Split(c), and the per-chunk results are
// reduced in chunk order. Estimators that keep their own loop shapes
// (annealing phases, Karp–Luby) follow the same rules by hand on top of
// ThreadPool::RunGrid.

#ifndef MUDB_SRC_UTIL_PARALLEL_H_
#define MUDB_SRC_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace mudb::util {

/// Carves [0, total) into fixed-size chunks and returns
///     init + Σ_c fn(count_c, base.Split(c))
/// reduced in chunk order. Runs on `pool` when non-null; otherwise spawns a
/// per-call pool of ResolveThreadCount(num_threads) workers when that buys
/// parallelism, inline when it does not. The result is bit-identical for
/// every (pool, num_threads) combination. fn is T(int64_t count, Rng&) and
/// must be safe to call concurrently.
template <typename T, typename Fn>
T ReduceSampleChunks(ThreadPool* pool, int num_threads, int64_t total,
                     int64_t chunk_size, const Rng& base, T init, Fn&& fn) {
  const int64_t chunks = (total + chunk_size - 1) / chunk_size;
  std::vector<T> partial(static_cast<size_t>(chunks));
  auto run_chunk = [&](int64_t c) {
    Rng chunk_rng = base.Split(static_cast<uint64_t>(c));
    int64_t count = std::min(chunk_size, total - c * chunk_size);
    partial[c] = fn(count, chunk_rng);
  };
  std::optional<ThreadPool> local;
  if (pool == nullptr && chunks > 1) {
    int threads = ThreadPool::ResolveThreadCount(num_threads);
    if (threads > 1) {
      local.emplace(threads);
      pool = &*local;
    }
  }
  ThreadPool::RunGrid(pool, chunks, run_chunk);
  T acc = init;
  for (int64_t c = 0; c < chunks; ++c) acc += partial[c];
  return acc;
}

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_PARALLEL_H_
