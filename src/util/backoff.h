// Capped exponential backoff with deterministic jitter.
//
// The sharded router sleeps between delivery attempts so a transiently
// overloaded shard is not hammered in a tight loop. The jitter that
// de-synchronizes competing retriers is drawn from an Rng substream derived
// from the *request* (its seed), never from wall-clock or a global engine —
// so the full delay schedule of a request is a pure function of
// (request seed, attempt index), reproducible in tests and irrelevant to
// result bits (delays change timing only, and results are pure functions of
// their cache keys).

#ifndef MUDB_SRC_UTIL_BACKOFF_H_
#define MUDB_SRC_UTIL_BACKOFF_H_

#include <algorithm>

#include "src/util/rng.h"

namespace mudb::util {

/// Delay schedule knobs. Defaults are sized for in-process shard hops
/// (sub-millisecond), not network RPCs — tune up for real transports.
struct BackoffPolicy {
  /// Delay before the first retry (attempt index 0).
  double initial_ms = 0.05;
  /// Growth factor per attempt (>= 1).
  double multiplier = 2.0;
  /// Upper bound applied before jitter.
  double max_ms = 2.0;
  /// Fraction of the delay randomized: the delay is scaled by a factor
  /// drawn uniformly from [1 - jitter, 1]. 0 disables jitter; must lie in
  /// [0, 1].
  double jitter = 0.5;

  /// The delay (ms) before retry number `attempt` (0-based), jittered by
  /// the next draw from `rng`. Deterministic given the rng stream: callers
  /// derive `rng` from the request seed (see BackoffRng below) so the
  /// schedule is a pure function of the request.
  double DelayMs(int attempt, Rng& rng) const {
    double delay = initial_ms;
    for (int i = 0; i < attempt; ++i) {
      delay *= multiplier;
      if (delay >= max_ms) break;
    }
    delay = std::min(delay, max_ms);
    if (jitter > 0) delay *= 1.0 - jitter * rng.Uniform01();
    return delay;
  }
};

/// The dedicated substream tag for backoff jitter. Far outside the small
/// positional stream indices the estimators use, so a request's jitter
/// stream never collides with its sampling substreams.
inline constexpr uint64_t kBackoffStreamTag = 0xBACC'0FF0'0000'0001ull;

/// The jitter stream of a request with RNG seed `seed`: a pure function of
/// the seed, independent of the estimator's own substream tree.
inline Rng BackoffRng(uint64_t seed) {
  return Rng(seed).Split(kBackoffStreamTag);
}

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_BACKOFF_H_
