// Seedable random number generation used by all randomized algorithms.
//
// A thin wrapper over std::mt19937_64 so that every sampler in the library
// takes an explicit `Rng&`: benchmarks and tests are reproducible, and no
// component touches global random state.
//
// Parallel estimators never share one engine across workers. Instead they
// carve the workload into a task grid derived from the sample budget (never
// from the thread count) and give task i the substream Split(i). Because
// Split is a pure function of (construction seed, stream index), the set of
// substreams — and therefore every estimate reduced from them in fixed task
// order — is bit-identical for any thread count.

#ifndef MUDB_SRC_UTIL_RNG_H_
#define MUDB_SRC_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace mudb::util {

namespace internal {

/// Precomputed ziggurat layers for the standard normal: layer edges scaled
/// to 52-bit integers (ki), per-layer width factors (wi), and density values
/// (fi). Built on first use in rng.cc.
struct ZigguratTables {
  ZigguratTables();
  uint64_t ki[256];
  double wi[256];
  double fi[256];
};

/// Meyers singleton: safe for Gaussian draws during static initialization
/// of other translation units (a namespace-scope table object would be
/// silently all-zeros there).
const ZigguratTables& Ziggurat();

}  // namespace internal

/// Deterministic pseudo-random source. Not thread-safe; parallel code gives
/// each task its own engine via Split().
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform01() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal deviate. 256-layer ziggurat (Marsaglia–Tsang over
  /// 52-bit mantissas): one engine draw and one table compare on the ~99%
  /// fast path — the direction-sampling workhorse of every estimator, so
  /// it must not cost a log/sqrt per deviate like the polar method does.
  double Gaussian() {
    const internal::ZigguratTables& zig = *zig_;
    for (;;) {
      uint64_t u = engine_();
      int idx = static_cast<int>(u & 0xff);
      bool neg = (u & 0x100) != 0;
      uint64_t rabs = (u >> 12) & ((uint64_t{1} << 52) - 1);
      double x = static_cast<double>(rabs) * zig.wi[idx];
      if (rabs < zig.ki[idx]) return neg ? -x : x;
      double out;
      if (GaussianSlow(idx, neg, x, &out)) return out;  // tail / wedge hit
    }
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// The seed this Rng was constructed with (the identity of its stream).
  uint64_t seed() const { return seed_; }

  /// Child engine for substream `stream`, seeded by the SplitMix64 finalizer
  /// over (seed, stream). A pure function of the construction seed — drawing
  /// from the parent does not perturb its substreams — so a fixed task grid
  /// receives the same substreams no matter how tasks are scheduled.
  /// Splitting composes: rng.Split(i).Split(j) is a grandchild stream, and
  /// distinct (seed, stream) pairs yield statistically independent engines.
  Rng Split(uint64_t stream) const {
    return Rng(SplitMix64(seed_ + 0x9E3779B97F4A7C15ull * (stream + 1)));
  }

  /// Draws one value from this engine and returns the child stream rooted at
  /// it. Estimators call Fork() once on entry (on the calling thread, before
  /// any parallelism): the draw advances the parent, so repeated calls with
  /// one Rng object see fresh substreams — the estimator consumes randomness
  /// like any other sampler — while a fresh same-seeded Rng reproduces the
  /// call exactly.
  Rng Fork() { return Split(engine_()); }

  /// The SplitMix64 finalizer (Steele–Lea–Flood): a bijective avalanche mix
  /// mapping structured inputs (seed + stream·golden) to well-spread seeds.
  static uint64_t SplitMix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  /// Ziggurat slow path (rng.cc): handles the tail layer and the wedge
  /// rejection test. Returns false when the candidate is rejected and the
  /// caller must redraw.
  bool GaussianSlow(int idx, bool neg, double x, double* out);

  uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  /// Resolved through the Meyers accessor at construction (even during
  /// static init of other TUs), then guard-free on every deviate.
  const internal::ZigguratTables* zig_ = &internal::Ziggurat();
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_RNG_H_
