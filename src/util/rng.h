// Seedable random number generation used by all randomized algorithms.
//
// A thin wrapper over an MT19937-64 engine so that every sampler in the
// library takes an explicit `Rng&`: benchmarks and tests are reproducible,
// and no component touches global random state. The engine produces the
// exact std::mt19937_64 output sequence (checked by util_test) but
// regenerates it block-wise — see BufferedMt19937_64 below.
//
// Parallel estimators never share one engine across workers. Instead they
// carve the workload into a task grid derived from the sample budget (never
// from the thread count) and give task i the substream Split(i). Because
// Split is a pure function of (construction seed, stream index), the set of
// substreams — and therefore every estimate reduced from them in fixed task
// order — is bit-identical for any thread count.

#ifndef MUDB_SRC_UTIL_RNG_H_
#define MUDB_SRC_UTIL_RNG_H_

#include <cstdint>
#include <cstring>
#include <random>

namespace mudb::util {

namespace internal {

/// Precomputed ziggurat layers for the standard normal: layer edges scaled
/// to 52-bit integers (ki), per-layer width factors (wi), and density values
/// (fi). Built on first use in rng.cc.
struct ZigguratTables {
  ZigguratTables();
  uint64_t ki[256];
  double wi[256];
  double fi[256];
};

/// Meyers singleton: safe for Gaussian draws during static initialization
/// of other translation units (a namespace-scope table object would be
/// silently all-zeros there).
const ZigguratTables& Ziggurat();

/// MT19937-64 with block-buffered generation, bit-identical in output to
/// std::mt19937_64 with the same seed (util_test locks the equivalence).
///
/// std::mt19937_64 pays the twist bookkeeping and the 4-step tempering on
/// every draw (~7 ns/draw here). Since the twist already regenerates all
/// 312 state words at once, this engine tempers the whole block into an
/// output buffer in the same pass — both loops are branchless and
/// auto-vectorize — so a draw on the hot path is a buffered load
/// (~2 ns/draw). Every estimator draws millions of deviates through this
/// engine, so the per-draw cost is a measurable slice of end-to-end
/// sampling throughput (see BENCH_sampling.json).
class BufferedMt19937_64 {
 public:
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Standard MT19937-64 seeding (Knuth multiplicative expansion), the same
  /// state std::mt19937_64(seed) starts from.
  explicit BufferedMt19937_64(uint64_t seed) {
    state_[0] = seed;
    for (int i = 1; i < kN; ++i) {
      state_[i] = 6364136223846793005ull *
                      (state_[i - 1] ^ (state_[i - 1] >> 62)) +
                  static_cast<uint64_t>(i);
    }
    next_ = kN;
  }

  result_type operator()() {
    if (next_ >= kN) Refill();
    return buffer_[next_++];
  }

 private:
  static constexpr int kN = 312;   // state words
  static constexpr int kM = 156;   // twist offset

  /// Twists the state and tempers all kN outputs into buffer_ (rng.cc).
  void Refill();

  uint64_t state_[kN];
  uint64_t buffer_[kN];
  int next_;
};

}  // namespace internal

/// Deterministic pseudo-random source. Not thread-safe; parallel code gives
/// each task its own engine via Split().
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1). Hand-inlined std::generate_canonical<double,
  /// 53> over a full-range 64-bit engine, bit-identical to routing
  /// std::uniform_real_distribution<double>(0, 1) over std::mt19937_64
  /// (util_test locks the equivalence): one draw, scaled by the exact
  /// power of two 2⁻⁶⁴ (libstdc++ divides by 2⁶⁴ — the same operation),
  /// with the same clamp when the 53-bit rounding lands on 1.0.
  double Uniform01() {
    const double u = static_cast<double>(engine_()) * 0x1p-64;
    return u < 1.0 ? u : 0x1.fffffffffffffp-1;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal deviate. 256-layer ziggurat (Marsaglia–Tsang over
  /// 52-bit mantissas): one engine draw and one table compare on the ~99%
  /// fast path — the direction-sampling workhorse of every estimator, so
  /// it must not cost a log/sqrt per deviate like the polar method does.
  double Gaussian() {
    const internal::ZigguratTables& zig = *zig_;
    for (;;) {
      uint64_t u = engine_();
      int idx = static_cast<int>(u & 0xff);
      uint64_t rabs = (u >> 12) & ((uint64_t{1} << 52) - 1);
      double x = static_cast<double>(rabs) * zig.wi[idx];
      if (rabs < zig.ki[idx]) {
        // Sign from bit 8, applied by flipping the sign bit directly: x is
        // nonnegative here, so the xor is exactly `neg ? -x : x` — but
        // branchless, where a 50/50 data branch would mispredict every
        // other deviate (measured ~2x on the whole fast path).
        uint64_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        bits ^= (u & 0x100) << 55;
        std::memcpy(&x, &bits, sizeof(x));
        return x;
      }
      double out;
      if (GaussianSlow(idx, (u & 0x100) != 0, x, &out)) return out;  // tail / wedge
    }
  }

  /// Strided Gaussian fill: writes n deviates to out[0], out[stride], ...,
  /// out[(n-1)·stride], bit-identical to n successive Gaussian() calls. The
  /// strided form writes one lane column of the batched sampler's lane-minor
  /// direction panel without a transpose pass.
  void GaussianFill(int n, double* out, int stride = 1) {
    for (int i = 0; i < n; ++i) {
      out[static_cast<size_t>(i) * stride] = Gaussian();
    }
  }

  /// GaussianFill plus the sum of squares of the deviates, accumulated in
  /// draw order — the norm accumulation every direction sampler needs,
  /// computed while each deviate is still in a register instead of reloading
  /// the (possibly strided) output.
  double GaussianFillSq(int n, double* out, int stride = 1) {
    double s = 0.0;
    for (int i = 0; i < n; ++i) {
      const double v = Gaussian();
      out[static_cast<size_t>(i) * stride] = v;
      s += v * v;
    }
    return s;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// The seed this Rng was constructed with (the identity of its stream).
  uint64_t seed() const { return seed_; }

  /// Child engine for substream `stream`, seeded by the SplitMix64 finalizer
  /// over (seed, stream). A pure function of the construction seed — drawing
  /// from the parent does not perturb its substreams — so a fixed task grid
  /// receives the same substreams no matter how tasks are scheduled.
  /// Splitting composes: rng.Split(i).Split(j) is a grandchild stream, and
  /// distinct (seed, stream) pairs yield statistically independent engines.
  Rng Split(uint64_t stream) const {
    return Rng(SplitMix64(seed_ + 0x9E3779B97F4A7C15ull * (stream + 1)));
  }

  /// Draws one value from this engine and returns the child stream rooted at
  /// it. Estimators call Fork() once on entry (on the calling thread, before
  /// any parallelism): the draw advances the parent, so repeated calls with
  /// one Rng object see fresh substreams — the estimator consumes randomness
  /// like any other sampler — while a fresh same-seeded Rng reproduces the
  /// call exactly.
  Rng Fork() { return Split(engine_()); }

  /// The SplitMix64 finalizer (Steele–Lea–Flood): a bijective avalanche mix
  /// mapping structured inputs (seed + stream·golden) to well-spread seeds.
  static uint64_t SplitMix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Access to the underlying engine for std distributions (a drop-in
  /// uniform random bit generator emitting the std::mt19937_64 sequence).
  internal::BufferedMt19937_64& engine() { return engine_; }

 private:
  /// Ziggurat slow path (rng.cc): handles the tail layer and the wedge
  /// rejection test. Returns false when the candidate is rejected and the
  /// caller must redraw.
  bool GaussianSlow(int idx, bool neg, double x, double* out);

  uint64_t seed_;
  internal::BufferedMt19937_64 engine_;
  /// Resolved through the Meyers accessor at construction (even during
  /// static init of other TUs), then guard-free on every deviate.
  const internal::ZigguratTables* zig_ = &internal::Ziggurat();
};

/// K-lane Gaussian panel fill for the batched sampling kernel: writes n
/// deviates per lane into the lane-minor n×K panel `out` (out[j·num_lanes+l]
/// is lane l's j-th deviate, drawn from rngs[l]). Lane l's column is
/// bit-identical to n scalar Gaussian() calls on rngs[l] — each lane is its
/// own engine, so this batches the memory layout (deviates land directly in
/// panel order for the vectorized consumers), not the engine stepping, which
/// is what keeps every lane's stream exactly the scalar sampler's stream.
void GaussianFillLanes(Rng* rngs, int num_lanes, int n, double* out);

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_RNG_H_
