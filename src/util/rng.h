// Seedable random number generation used by all randomized algorithms.
//
// A thin wrapper over std::mt19937_64 so that every sampler in the library
// takes an explicit `Rng&`: benchmarks and tests are reproducible, and no
// component touches global random state.

#ifndef MUDB_SRC_UTIL_RNG_H_
#define MUDB_SRC_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace mudb::util {

/// Deterministic pseudo-random source. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform01() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal deviate.
  double Gaussian() { return normal_(engine_); }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace mudb::util

#endif  // MUDB_SRC_UTIL_RNG_H_
