// A dense two-phase simplex solver for small linear programs.
//
//   maximize    c·x
//   subject to  A x <= b,   x free
//
// Free variables are handled by the x = x⁺ − x⁻ split; infeasibility is
// detected with a phase-1 artificial objective; Bland's rule prevents
// cycling. Problem sizes in mudb are tiny (n, m in the tens): the FPRAS of
// Thm. 7.1 uses the LP to (a) discard empty cone disjuncts and (b) find an
// inner ball seeding the annealed volume estimator.

#ifndef MUDB_SRC_LP_SIMPLEX_H_
#define MUDB_SRC_LP_SIMPLEX_H_

#include <vector>

namespace mudb::lp {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// Optimal point (valid iff status == kOptimal).
  std::vector<double> x;
  /// Optimal objective value (valid iff status == kOptimal).
  double objective = 0.0;
};

/// Solves max c·x s.t. A x <= b over free x. `a` has one row per constraint;
/// all rows must have size == c.size().
LpResult SolveLp(const std::vector<std::vector<double>>& a,
                 const std::vector<double>& b, const std::vector<double>& c);

/// Convenience: feasibility of A x <= b (maximizes the zero objective).
bool IsFeasible(const std::vector<std::vector<double>>& a,
                const std::vector<double>& b, int num_vars);

}  // namespace mudb::lp

#endif  // MUDB_SRC_LP_SIMPLEX_H_
