// A dense two-phase simplex solver for small linear programs.
//
//   maximize    c·x
//   subject to  A x <= b,   x free
//
// Free variables are handled by the x = x⁺ − x⁻ split; infeasibility is
// detected with a phase-1 artificial objective; Bland's rule prevents
// cycling. Problem sizes in mudb are tiny (n, m in the tens): the FPRAS of
// Thm. 7.1 uses the LP to (a) discard empty cone disjuncts and (b) find an
// inner ball seeding the annealed volume estimator.
//
// SimplexSolver is the allocation-conscious entry point: one instance owns
// the tableau/basis buffers and reuses them across solves, which matters in
// the FPRAS per-cone inner-ball loop where hundreds of near-identical LPs
// are solved back to back. Each solve fully reinitializes the buffers it
// reads, so a solver is a pure function of its inputs — reuse order cannot
// change any result. SolveLp/IsFeasible remain as one-shot conveniences.

#ifndef MUDB_SRC_LP_SIMPLEX_H_
#define MUDB_SRC_LP_SIMPLEX_H_

#include <cstddef>
#include <vector>

namespace mudb::lp {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// Optimal point (valid iff status == kOptimal).
  std::vector<double> x;
  /// Optimal objective value (valid iff status == kOptimal).
  double objective = 0.0;
};

/// Reusable dense-simplex workspace. Not thread-safe; give each worker its
/// own instance.
class SimplexSolver {
 public:
  /// Solves max c·x s.t. A x <= b over free x, where `a` is row-major flat
  /// with m rows of n = c.size() entries.
  LpResult SolveFlat(const double* a, const double* b, int m,
                     const std::vector<double>& c);

  /// Structured-input convenience; rows of `a` must all have size c.size().
  LpResult Solve(const std::vector<std::vector<double>>& a,
                 const std::vector<double>& b, const std::vector<double>& c);

 private:
  double* Row(int r) { return tab_.data() + static_cast<size_t>(r) * stride_; }
  void Pivot(int r, int c);
  void PriceOut();
  bool Run(int allowed_cols);  // false if unbounded

  int m_ = 0;
  int n_cols_ = 0;
  int stride_ = 0;                  // n_cols_ + 1 (rhs in the last column)
  std::vector<double> tab_;         // m_ × stride_, reused across solves
  std::vector<int> basis_;          // basic variable per row
  std::vector<double> obj_;         // stride_ (last = objective value)
  std::vector<double> a_scratch_;   // flattening buffer for Solve()
};

/// One-shot solve of max c·x s.t. A x <= b. `a` has one row per constraint;
/// all rows must have size == c.size().
LpResult SolveLp(const std::vector<std::vector<double>>& a,
                 const std::vector<double>& b, const std::vector<double>& c);

/// Convenience: feasibility of A x <= b (maximizes the zero objective).
bool IsFeasible(const std::vector<std::vector<double>>& a,
                const std::vector<double>& b, int num_vars);

}  // namespace mudb::lp

#endif  // MUDB_SRC_LP_SIMPLEX_H_
