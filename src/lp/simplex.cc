#include "src/lp/simplex.h"

#include <cmath>
#include <limits>

#include "src/util/status.h"

namespace mudb::lp {

namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau. Columns: structural variables (already split and
// slacked by the caller), then the rhs. The objective row holds reduced
// costs for maximization; a column with positive reduced cost can improve.
struct Tableau {
  std::vector<std::vector<double>> rows;  // m x (n_cols + 1)
  std::vector<int> basis;                 // basic variable per row
  std::vector<double> obj;                // n_cols + 1 (last = objective value)
  int n_cols = 0;

  void Pivot(int r, int c) {
    double piv = rows[r][c];
    MUDB_DCHECK(std::fabs(piv) > kEps);
    for (double& v : rows[r]) v /= piv;
    for (int i = 0; i < static_cast<int>(rows.size()); ++i) {
      if (i == r) continue;
      double f = rows[i][c];
      if (std::fabs(f) < kEps) continue;
      for (int j = 0; j <= n_cols; ++j) rows[i][j] -= f * rows[r][j];
    }
    double f = obj[c];
    if (std::fabs(f) > kEps) {
      for (int j = 0; j <= n_cols; ++j) obj[j] -= f * rows[r][j];
    }
    basis[r] = c;
  }

  // Makes the reduced cost of every basic variable zero.
  void PriceOut() {
    for (size_t r = 0; r < rows.size(); ++r) {
      double f = obj[basis[r]];
      if (std::fabs(f) > kEps) {
        for (int j = 0; j <= n_cols; ++j) obj[j] -= f * rows[r][j];
      }
    }
  }

  // Runs the simplex loop with Bland's rule over columns < allowed_cols.
  // Returns false if unbounded.
  bool Run(int allowed_cols) {
    for (;;) {
      int enter = -1;
      for (int j = 0; j < allowed_cols; ++j) {
        if (obj[j] > kEps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < static_cast<int>(rows.size()); ++r) {
        double coeff = rows[r][enter];
        if (coeff > kEps) {
          double ratio = rows[r][n_cols] / coeff;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave < 0 || basis[r] < basis[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave < 0) return false;  // unbounded
      Pivot(leave, enter);
    }
  }
};

}  // namespace

LpResult SolveLp(const std::vector<std::vector<double>>& a,
                 const std::vector<double>& b, const std::vector<double>& c) {
  const int n = static_cast<int>(c.size());
  const int m = static_cast<int>(a.size());
  MUDB_CHECK(static_cast<int>(b.size()) == m);
  for (const auto& row : a) MUDB_CHECK(static_cast<int>(row.size()) == n);

  // Columns: x+ (n), x- (n), slack (m), artificial (up to m).
  int num_artificial = 0;
  for (double bi : b) {
    if (bi < 0) ++num_artificial;
  }
  const int slack0 = 2 * n;
  const int art0 = slack0 + m;
  const int n_cols = art0 + num_artificial;

  Tableau t;
  t.n_cols = n_cols;
  t.rows.assign(m, std::vector<double>(n_cols + 1, 0.0));
  t.basis.assign(m, -1);
  int art = art0;
  for (int i = 0; i < m; ++i) {
    double sign = b[i] < 0 ? -1.0 : 1.0;
    for (int j = 0; j < n; ++j) {
      t.rows[i][j] = sign * a[i][j];
      t.rows[i][n + j] = -sign * a[i][j];
    }
    t.rows[i][slack0 + i] = sign;  // slack keeps coefficient ±1
    t.rows[i][n_cols] = sign * b[i];
    if (b[i] < 0) {
      t.rows[i][art] = 1.0;
      t.basis[i] = art;
      ++art;
    } else {
      t.basis[i] = slack0 + i;
    }
  }

  // Phase 1: maximize -(sum of artificials).
  if (num_artificial > 0) {
    t.obj.assign(n_cols + 1, 0.0);
    for (int j = art0; j < n_cols; ++j) t.obj[j] = -1.0;
    t.PriceOut();
    bool bounded = t.Run(n_cols);
    MUDB_CHECK(bounded);  // phase-1 objective is bounded above by 0
    // The objective cell holds −(current value); phase-1 optimum < 0 means
    // some artificial variable cannot be driven to zero: infeasible.
    if (t.obj[n_cols] > 1e-7) {
      LpResult res;
      res.status = LpStatus::kInfeasible;
      return res;
    }
    // Drive remaining artificials out of the basis where possible.
    for (int r = 0; r < m; ++r) {
      if (t.basis[r] >= art0) {
        int pivot_col = -1;
        for (int j = 0; j < art0; ++j) {
          if (std::fabs(t.rows[r][j]) > kEps) {
            pivot_col = j;
            break;
          }
        }
        if (pivot_col >= 0) t.Pivot(r, pivot_col);
        // Otherwise the row is redundant (all-zero over real columns); its
        // artificial stays basic at value 0, which is harmless because
        // phase 2 never lets artificial columns enter.
      }
    }
  }

  // Phase 2: maximize c·(x+ − x−).
  t.obj.assign(n_cols + 1, 0.0);
  for (int j = 0; j < n; ++j) {
    t.obj[j] = c[j];
    t.obj[n + j] = -c[j];
  }
  t.PriceOut();
  if (!t.Run(art0)) {
    LpResult res;
    res.status = LpStatus::kUnbounded;
    return res;
  }

  LpResult res;
  res.status = LpStatus::kOptimal;
  res.x.assign(n, 0.0);
  for (int r = 0; r < m; ++r) {
    int v = t.basis[r];
    double val = t.rows[r][n_cols];
    if (v < n) {
      res.x[v] += val;
    } else if (v < 2 * n) {
      res.x[v - n] -= val;
    }
  }
  double value = 0.0;
  for (int j = 0; j < n; ++j) value += c[j] * res.x[j];
  res.objective = value;
  return res;
}

bool IsFeasible(const std::vector<std::vector<double>>& a,
                const std::vector<double>& b, int num_vars) {
  std::vector<double> c(num_vars, 0.0);
  return SolveLp(a, b, c).status == LpStatus::kOptimal;
}

}  // namespace mudb::lp
