#include "src/lp/simplex.h"

#include <cmath>
#include <limits>

#include "src/util/status.h"

namespace mudb::lp {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

// Tableau layout: columns are the structural variables (x⁺, x⁻, slack,
// artificial), then the rhs; the objective row holds reduced costs for
// maximization, so a column with positive reduced cost can improve.

void SimplexSolver::Pivot(int r, int c) {
  double* row_r = Row(r);
  double piv = row_r[c];
  MUDB_DCHECK(std::fabs(piv) > kEps);
  for (int j = 0; j <= n_cols_; ++j) row_r[j] /= piv;
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    double* row_i = Row(i);
    double f = row_i[c];
    if (std::fabs(f) < kEps) continue;
    for (int j = 0; j <= n_cols_; ++j) row_i[j] -= f * row_r[j];
  }
  double f = obj_[c];
  if (std::fabs(f) > kEps) {
    for (int j = 0; j <= n_cols_; ++j) obj_[j] -= f * row_r[j];
  }
  basis_[r] = c;
}

// Makes the reduced cost of every basic variable zero.
void SimplexSolver::PriceOut() {
  for (int r = 0; r < m_; ++r) {
    double f = obj_[basis_[r]];
    if (std::fabs(f) > kEps) {
      const double* row_r = Row(r);
      for (int j = 0; j <= n_cols_; ++j) obj_[j] -= f * row_r[j];
    }
  }
}

// Runs the simplex loop with Bland's rule over columns < allowed_cols.
// Returns false if unbounded.
bool SimplexSolver::Run(int allowed_cols) {
  for (;;) {
    int enter = -1;
    for (int j = 0; j < allowed_cols; ++j) {
      if (obj_[j] > kEps) {
        enter = j;
        break;
      }
    }
    if (enter < 0) return true;  // optimal
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m_; ++r) {
      double coeff = Row(r)[enter];
      if (coeff > kEps) {
        double ratio = Row(r)[n_cols_] / coeff;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave < 0 || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) return false;  // unbounded
    Pivot(leave, enter);
  }
}

LpResult SimplexSolver::SolveFlat(const double* a, const double* b, int m,
                                  const std::vector<double>& c) {
  const int n = static_cast<int>(c.size());

  // Columns: x+ (n), x- (n), slack (m), artificial (up to m).
  int num_artificial = 0;
  for (int i = 0; i < m; ++i) {
    if (b[i] < 0) ++num_artificial;
  }
  const int slack0 = 2 * n;
  const int art0 = slack0 + m;
  m_ = m;
  n_cols_ = art0 + num_artificial;
  stride_ = n_cols_ + 1;

  // assign() (not resize) so every cell a solve reads is rewritten: the
  // solver stays a pure function of (a, b, c) across buffer reuse.
  tab_.assign(static_cast<size_t>(m_) * stride_, 0.0);
  basis_.assign(m_, -1);
  int art = art0;
  for (int i = 0; i < m; ++i) {
    double* row = Row(i);
    const double* a_row = a + static_cast<size_t>(i) * n;
    double sign = b[i] < 0 ? -1.0 : 1.0;
    for (int j = 0; j < n; ++j) {
      row[j] = sign * a_row[j];
      row[n + j] = -sign * a_row[j];
    }
    row[slack0 + i] = sign;  // slack keeps coefficient ±1
    row[n_cols_] = sign * b[i];
    if (b[i] < 0) {
      row[art] = 1.0;
      basis_[i] = art;
      ++art;
    } else {
      basis_[i] = slack0 + i;
    }
  }

  // Phase 1: maximize -(sum of artificials).
  if (num_artificial > 0) {
    obj_.assign(stride_, 0.0);
    for (int j = art0; j < n_cols_; ++j) obj_[j] = -1.0;
    PriceOut();
    bool bounded = Run(n_cols_);
    MUDB_CHECK(bounded);  // phase-1 objective is bounded above by 0
    // The objective cell holds −(current value); phase-1 optimum < 0 means
    // some artificial variable cannot be driven to zero: infeasible.
    if (obj_[n_cols_] > 1e-7) {
      LpResult res;
      res.status = LpStatus::kInfeasible;
      return res;
    }
    // Drive remaining artificials out of the basis where possible.
    for (int r = 0; r < m; ++r) {
      if (basis_[r] >= art0) {
        int pivot_col = -1;
        const double* row = Row(r);
        for (int j = 0; j < art0; ++j) {
          if (std::fabs(row[j]) > kEps) {
            pivot_col = j;
            break;
          }
        }
        if (pivot_col >= 0) Pivot(r, pivot_col);
        // Otherwise the row is redundant (all-zero over real columns); its
        // artificial stays basic at value 0, which is harmless because
        // phase 2 never lets artificial columns enter.
      }
    }
  }

  // Phase 2: maximize c·(x+ − x−).
  obj_.assign(stride_, 0.0);
  for (int j = 0; j < n; ++j) {
    obj_[j] = c[j];
    obj_[n + j] = -c[j];
  }
  PriceOut();
  if (!Run(art0)) {
    LpResult res;
    res.status = LpStatus::kUnbounded;
    return res;
  }

  LpResult res;
  res.status = LpStatus::kOptimal;
  res.x.assign(n, 0.0);
  for (int r = 0; r < m; ++r) {
    int v = basis_[r];
    double val = Row(r)[n_cols_];
    if (v < n) {
      res.x[v] += val;
    } else if (v < 2 * n) {
      res.x[v - n] -= val;
    }
  }
  double value = 0.0;
  for (int j = 0; j < n; ++j) value += c[j] * res.x[j];
  res.objective = value;
  return res;
}

LpResult SimplexSolver::Solve(const std::vector<std::vector<double>>& a,
                              const std::vector<double>& b,
                              const std::vector<double>& c) {
  const int n = static_cast<int>(c.size());
  const int m = static_cast<int>(a.size());
  MUDB_CHECK(static_cast<int>(b.size()) == m);
  a_scratch_.resize(static_cast<size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    MUDB_CHECK(static_cast<int>(a[i].size()) == n);
    double* row = a_scratch_.data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) row[j] = a[i][j];
  }
  return SolveFlat(a_scratch_.data(), b.data(), m, c);
}

LpResult SolveLp(const std::vector<std::vector<double>>& a,
                 const std::vector<double>& b, const std::vector<double>& c) {
  SimplexSolver solver;
  return solver.Solve(a, b, c);
}

bool IsFeasible(const std::vector<std::vector<double>>& a,
                const std::vector<double>& b, int num_vars) {
  std::vector<double> c(num_vars, 0.0);
  return SolveLp(a, b, c).status == LpStatus::kOptimal;
}

}  // namespace mudb::lp
