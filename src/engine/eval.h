// Candidate-answer enumeration for conjunctive queries over incomplete
// databases — the paper's §9 pipeline (what Postgres + the "compact
// representation of φ_{q,D,a,s}" did in the authors' prototype).
//
// Semantics: base nulls behave naively (a null joins only with itself,
// Prop. 5.2's bijective valuation); numeric nulls flow through joins and
// comparisons symbolically. Every join witness of an output tuple
// contributes one DNF disjunct: the conjunction of the arithmetic atoms the
// witness requires, with numeric nulls replaced by z-variables. The measure
// of the candidate is then ν of the disjunction (Thm. 5.4), evaluated by the
// engines in src/measure.
//
// Witnesses whose constraints force a numeric null to equal a point value
// (z = c, z = z') span measure-zero sets; with prune_measure_zero (default)
// they are dropped, which does not change μ.

#ifndef MUDB_SRC_ENGINE_EVAL_H_
#define MUDB_SRC_ENGINE_EVAL_H_

#include <cstdint>
#include <vector>

#include "src/constraints/real_formula.h"
#include "src/engine/cq.h"
#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::engine {

/// One candidate answer: an output tuple (which may contain nulls) and the
/// grounded constraint formula whose ν is its measure of certainty.
struct Candidate {
  model::Tuple output;
  constraints::RealFormula constraint;
  /// Number of join witnesses contributing to this tuple (after pruning).
  size_t witnesses = 0;
  /// True when some fully-constant witness satisfied all conditions, i.e.
  /// the tuple is an answer regardless of the nulls (μ = 1).
  bool certain = false;
};

struct EvalOptions {
  /// Drop measure-zero witnesses (pointwise numeric equalities on nulls).
  bool prune_measure_zero = true;
  /// Abort with ResourceExhausted beyond this many enumerated witnesses.
  size_t max_witnesses = 50'000'000;
};

struct EvalResult {
  /// Candidates in enumeration order (at most cq.limit if set).
  std::vector<Candidate> candidates;
  /// Meaning of constraint variables: z_i is numeric null null_order[i].
  std::vector<model::NullId> null_order;
  /// Total witnesses enumerated (including pruned ones).
  size_t witnesses_enumerated = 0;
};

/// Evaluates a conjunctive query, producing candidates with constraints.
util::StatusOr<EvalResult> EvaluateCq(const model::Database& db,
                                      const ConjunctiveQuery& cq,
                                      const EvalOptions& options = {});

/// Evaluates a union of conjunctive queries: branch results are merged by
/// output tuple (first-appearance order across branches, branch order first)
/// with constraints OR-ed; a tuple certain in any branch is certain. Branch
/// LIMITs are ignored — the union's `limit` applies to the merged result.
util::StatusOr<EvalResult> EvaluateUnion(const model::Database& db,
                                         const UnionQuery& query,
                                         const EvalOptions& options = {});

}  // namespace mudb::engine

#endif  // MUDB_SRC_ENGINE_EVAL_H_
