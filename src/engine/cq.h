// Conjunctive queries with arithmetic: the execution-friendly IR for the
// ∃,∧-fragment CQ(+,·,<) used by the experimental pipeline of Section 9.
//
// A ConjunctiveQuery is a join of relational atoms, a set of arithmetic
// comparisons, an output (projection) list, and an optional LIMIT — exactly
// the shape of the paper's three decision-support SQL queries. The SQL
// front-end (src/sql) parses into this IR; ToQuery() converts to a general
// logic::Query so results can be cross-checked against the active-domain
// grounding.

#ifndef MUDB_SRC_ENGINE_CQ_H_
#define MUDB_SRC_ENGINE_CQ_H_

#include <optional>
#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::engine {

/// A relational atom R(a_1, ..., a_n). Numeric arguments must be variables
/// or constants (compound terms belong in comparisons).
struct CqAtom {
  std::string relation;
  std::vector<logic::AtomArg> args;
};

/// An arithmetic comparison between numeric terms.
struct CqComparison {
  logic::Term lhs;
  logic::CmpOp op;
  logic::Term rhs;
};

/// An equality between base arguments (e.g. a join condition P.seg = M.seg
/// that the planner did not absorb into variable sharing).
struct CqBaseEquality {
  logic::BaseArg lhs;
  logic::BaseArg rhs;
};

struct ConjunctiveQuery {
  std::vector<CqAtom> atoms;
  std::vector<CqComparison> comparisons;
  std::vector<CqBaseEquality> base_equalities;
  /// Output columns; each must be a variable bound by some atom.
  std::vector<logic::TypedVar> output;
  /// Keep only the first `limit` distinct output tuples (enumeration order).
  std::optional<size_t> limit;

  /// Structural and schema validation.
  util::Status Validate(const model::Database& db) const;

  /// The equivalent logic::Query (existentially closing non-output
  /// variables). Used for differential testing against GroundQuery.
  util::StatusOr<logic::Query> ToQuery(const model::Database& db) const;

  std::string ToString() const;
};

/// A union of conjunctive queries (UCQ): the paper's other tractable
/// fragment ("conjunctive queries and their unions"). All branches must have
/// the same output arity and sorts; the result is the set union of the
/// branch results, with candidate constraints OR-ed across branches.
struct UnionQuery {
  std::vector<ConjunctiveQuery> branches;
  /// Keep only the first `limit` distinct output tuples of the union.
  std::optional<size_t> limit;

  util::Status Validate(const model::Database& db) const;
  std::string ToString() const;
};

}  // namespace mudb::engine

#endif  // MUDB_SRC_ENGINE_CQ_H_
