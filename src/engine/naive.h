// Reference FO(+,·,<) evaluation over *complete* databases (no nulls), with
// active-domain quantifier semantics (Section 3: quantifiers range over the
// elements of the database).
//
// This is the semantic ground truth used in tests: for a complete database,
// μ(q, D, a) ∈ {0, 1} and equals membership of `a` in the naive evaluation
// result, so the grounding + measure pipeline can be differentially checked
// against this evaluator.

#ifndef MUDB_SRC_ENGINE_NAIVE_H_
#define MUDB_SRC_ENGINE_NAIVE_H_

#include <set>

#include "src/logic/formula.h"
#include "src/model/database.h"
#include "src/util/status.h"

namespace mudb::engine {

/// Evaluates a Boolean combination / quantified formula with all free
/// variables bound by `candidate` (parallel to q.output). The database must
/// be complete (InvalidArgument otherwise).
util::StatusOr<bool> NaiveHolds(const logic::Query& q,
                                const model::Database& db,
                                const model::Tuple& candidate);

/// All answers of q over the complete database (active-domain enumeration of
/// the output variables). Exponential in the output arity; testing use only.
util::StatusOr<std::set<model::Tuple>> NaiveEvaluate(
    const logic::Query& q, const model::Database& db);

}  // namespace mudb::engine

#endif  // MUDB_SRC_ENGINE_NAIVE_H_
