#include "src/engine/eval.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace mudb::engine {

namespace {

using constraints::CmpOp;
using constraints::RealFormula;
using logic::AtomArg;
using logic::Term;
using model::Database;
using model::NullId;
using model::Relation;
using model::Sort;
using model::Tuple;
using model::Value;
using poly::Polynomial;

constexpr char kKeySep = '\x1f';

struct PlannedAtom {
  const CqAtom* atom;
  const Relation* relation;
  /// Base positions whose value is known when this atom is processed
  /// (constants, or variables bound by earlier atoms).
  std::vector<size_t> probe_positions;
  /// Hash index from probe-key to tuple indices (empty if no probe columns).
  std::unordered_multimap<std::string, size_t> index;
  /// Comparisons fully bound once this atom is processed.
  std::vector<const CqComparison*> ready_comparisons;
  /// Base equalities fully bound once this atom is processed.
  std::vector<const CqBaseEquality*> ready_base_equalities;
};

class Evaluator {
 public:
  Evaluator(const Database& db, const ConjunctiveQuery& cq,
            const EvalOptions& options)
      : cq_(cq), options_(options) {
    vbase_ = model::MakeBijectiveBaseValuation(db);
    vdb_ = vbase_.Apply(db);
    // mudb-lint: allow(no-unordered-iteration-in-results) -- fills the
    // std::map null_names_; the valuation is bijective, so keys are
    // unique and the map is independent of hash iteration order.
    for (const auto& [id, name] : vbase_.base_map()) {
      null_names_.emplace(name, Value::BaseNull(id));
    }
    for (NullId id : db.CollectNumNullIds()) {
      z_index_.emplace(id, static_cast<int>(null_order_.size()));
      null_order_.push_back(id);
    }
  }

  util::StatusOr<EvalResult> Run() {
    MUDB_RETURN_IF_ERROR(cq_.Validate(vdb_));
    RewriteBaseEqualities();
    EvalResult empty;
    empty.null_order = null_order_;
    if (impossible_) return empty;  // contradictory constant equalities
    MUDB_RETURN_IF_ERROR(Plan());
    MUDB_RETURN_IF_ERROR(Enumerate(0));
    EvalResult result;
    result.null_order = null_order_;
    result.witnesses_enumerated = witnesses_enumerated_;
    for (const Tuple& key : candidate_order_) {
      CandidateState& state = candidates_.at(key);
      Candidate c;
      c.output = key;
      c.witnesses = state.disjuncts.size();
      c.certain = state.certain;
      c.constraint = state.certain
                         ? RealFormula::True()
                         : RealFormula::Or(std::move(state.disjuncts));
      result.candidates.push_back(std::move(c));
    }
    return result;
  }

 private:
  struct CandidateState {
    std::vector<RealFormula> disjuncts;
    bool certain = false;
  };

  // ---- Base-equality absorption -------------------------------------------
  //
  // Conditions like P.seg = M.seg arrive as CqBaseEquality conjuncts (the SQL
  // front-end gives every table its own column variables). Treating them as
  // post-filters would force cross-products, so before planning we unify
  // variables connected by var-var equalities (union-find) and substitute
  // constants for var-const equalities; joins then flow through the hash
  // indexes on shared variables.

  std::string Canon(const std::string& var) {
    auto it = parent_.find(var);
    if (it == parent_.end() || it->second == var) return var;
    std::string root = Canon(it->second);
    parent_[var] = root;
    return root;
  }

  void RewriteBaseEqualities() {
    rewritten_ = cq_;
    // Pass 1: union var-var equalities.
    for (const CqBaseEquality& eq : rewritten_.base_equalities) {
      if (eq.lhs.is_var() && eq.rhs.is_var()) {
        std::string a = Canon(eq.lhs.text());
        std::string b = Canon(eq.rhs.text());
        if (a != b) parent_[a] = b;
      }
    }
    // Pass 2: bind var-const equalities; detect const-const contradictions.
    for (const CqBaseEquality& eq : rewritten_.base_equalities) {
      if (eq.lhs.is_var() && eq.rhs.is_var()) continue;
      if (!eq.lhs.is_var() && !eq.rhs.is_var()) {
        if (eq.lhs.text() != eq.rhs.text()) impossible_ = true;
        continue;
      }
      const logic::BaseArg& var = eq.lhs.is_var() ? eq.lhs : eq.rhs;
      const logic::BaseArg& cst = eq.lhs.is_var() ? eq.rhs : eq.lhs;
      std::string root = Canon(var.text());
      auto [it, inserted] = const_binding_.emplace(root, cst.text());
      if (!inserted && it->second != cst.text()) impossible_ = true;
    }
    rewritten_.base_equalities.clear();
    // Pass 3: rewrite atom arguments to canonical variables / constants.
    for (CqAtom& atom : rewritten_.atoms) {
      for (AtomArg& arg : atom.args) {
        if (arg.sort() != Sort::kBase || !arg.base().is_var()) continue;
        std::string root = Canon(arg.base().text());
        auto it = const_binding_.find(root);
        if (it != const_binding_.end()) {
          arg = AtomArg::BaseConst(it->second);
        } else if (root != arg.base().text()) {
          arg = AtomArg::BaseVar(root);
        }
      }
    }
  }

  // ---- Planning ----------------------------------------------------------

  util::Status Plan() {
    const size_t n = rewritten_.atoms.size();
    if (n == 0) {
      return util::Status::InvalidArgument("query has no relational atoms");
    }
    std::vector<bool> placed(n, false);
    std::set<std::string> bound_vars;

    auto bound_base_positions = [&](const CqAtom& atom) {
      std::vector<size_t> cols;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const AtomArg& a = atom.args[i];
        if (a.sort() != Sort::kBase) continue;
        if (!a.base().is_var() || bound_vars.count(a.base().text()) > 0) {
          cols.push_back(i);
        }
      }
      return cols;
    };

    for (size_t step = 0; step < n; ++step) {
      // Greedy: maximize the number of probe-able base positions, then
      // prefer smaller relations.
      int best = -1;
      size_t best_probe = 0, best_size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        MUDB_ASSIGN_OR_RETURN(const Relation* rel,
                              vdb_.GetRelation(rewritten_.atoms[i].relation));
        size_t probe = bound_base_positions(rewritten_.atoms[i]).size();
        size_t size = rel->size();
        if (best < 0 || probe > best_probe ||
            (probe == best_probe && size < best_size)) {
          best = static_cast<int>(i);
          best_probe = probe;
          best_size = size;
        }
      }
      const CqAtom& atom = rewritten_.atoms[best];
      MUDB_ASSIGN_OR_RETURN(const Relation* rel,
                            vdb_.GetRelation(atom.relation));
      PlannedAtom planned;
      planned.atom = &atom;
      planned.relation = rel;
      planned.probe_positions = bound_base_positions(atom);
      placed[best] = true;
      // Newly bound variables (base and numeric).
      for (const AtomArg& a : atom.args) {
        if (a.sort() == Sort::kBase) {
          if (a.base().is_var()) bound_vars.insert(a.base().text());
        } else if (a.term().kind() == Term::Kind::kVar) {
          bound_vars.insert(a.term().var_name());
        }
      }
      plan_.push_back(std::move(planned));

      // Schedule comparisons / base equalities at the earliest step where
      // all their variables are bound.
      auto all_bound = [&](const std::set<std::string>& vars) {
        for (const std::string& v : vars) {
          if (bound_vars.count(v) == 0) return false;
        }
        return true;
      };
      for (const CqComparison& cmp : rewritten_.comparisons) {
        if (scheduled_cmp_.count(&cmp)) continue;
        std::set<std::string> vars;
        cmp.lhs.CollectVariables(&vars);
        cmp.rhs.CollectVariables(&vars);
        if (all_bound(vars)) {
          plan_.back().ready_comparisons.push_back(&cmp);
          scheduled_cmp_.insert(&cmp);
        }
      }
      for (const CqBaseEquality& eq : rewritten_.base_equalities) {
        if (scheduled_eq_.count(&eq)) continue;
        std::set<std::string> vars;
        if (eq.lhs.is_var()) vars.insert(eq.lhs.text());
        if (eq.rhs.is_var()) vars.insert(eq.rhs.text());
        if (all_bound(vars)) {
          plan_.back().ready_base_equalities.push_back(&eq);
          scheduled_eq_.insert(&eq);
        }
      }
    }
    if (scheduled_cmp_.size() != rewritten_.comparisons.size() ||
        scheduled_eq_.size() != rewritten_.base_equalities.size()) {
      return util::Status::Internal("unschedulable comparison (unbound vars)");
    }

    // Build hash indexes over the probe positions.
    for (PlannedAtom& p : plan_) {
      if (p.probe_positions.empty()) continue;
      const auto& tuples = p.relation->tuples();
      p.index.reserve(tuples.size());
      for (size_t t = 0; t < tuples.size(); ++t) {
        p.index.emplace(TupleKey(tuples[t], p.probe_positions), t);
      }
    }
    return util::Status::OK();
  }

  static std::string TupleKey(const Tuple& t,
                              const std::vector<size_t>& positions) {
    std::string key;
    for (size_t i : positions) {
      key += t[i].base_const();
      key += kKeySep;
    }
    return key;
  }

  // ---- Enumeration -------------------------------------------------------

  Polynomial ValueToPoly(const Value& v) const {
    if (v.kind() == Value::Kind::kNumConst) {
      return Polynomial::Constant(v.num_const());
    }
    MUDB_CHECK(v.kind() == Value::Kind::kNumNull);
    return Polynomial::Variable(z_index_.at(v.null_id()));
  }

  util::StatusOr<Polynomial> TermToPoly(const Term& t) const {
    switch (t.kind()) {
      case Term::Kind::kVar: {
        auto it = num_env_.find(t.var_name());
        MUDB_CHECK(it != num_env_.end());
        return ValueToPoly(it->second);
      }
      case Term::Kind::kConst:
        return Polynomial::Constant(t.const_value());
      case Term::Kind::kAdd: {
        MUDB_ASSIGN_OR_RETURN(Polynomial a, TermToPoly(t.children()[0]));
        MUDB_ASSIGN_OR_RETURN(Polynomial b, TermToPoly(t.children()[1]));
        return a + b;
      }
      case Term::Kind::kMul: {
        MUDB_ASSIGN_OR_RETURN(Polynomial a, TermToPoly(t.children()[0]));
        MUDB_ASSIGN_OR_RETURN(Polynomial b, TermToPoly(t.children()[1]));
        return a * b;
      }
      case Term::Kind::kNeg: {
        MUDB_ASSIGN_OR_RETURN(Polynomial a, TermToPoly(t.children()[0]));
        return -a;
      }
    }
    return util::Status::Internal("unreachable term kind");
  }

  // Outcome of trying to add a constraint along the current branch.
  enum class Add { kOk, kDead };

  // Adds `poly op 0`; folds constants, prunes measure-zero equalities.
  Add AddConstraint(Polynomial poly, CmpOp op) {
    if (poly.IsConstant()) {
      double c = poly.ConstantTerm();
      int sign = c > 0 ? 1 : (c < 0 ? -1 : 0);
      return constraints::CmpTruthFromSign(op, sign) ? Add::kOk : Add::kDead;
    }
    if (op == CmpOp::kEq && options_.prune_measure_zero) {
      return Add::kDead;  // nontrivial equality on nulls: measure zero
    }
    branch_atoms_.push_back(
        RealFormula::Cmp(std::move(poly), op));
    return Add::kOk;
  }

  util::Status Enumerate(size_t depth) {
    if (depth == plan_.size()) {
      return FinishWitness();
    }
    PlannedAtom& p = plan_[depth];
    const auto& tuples = p.relation->tuples();

    auto try_tuple = [&](size_t row) -> util::Status {
      const Tuple& t = tuples[row];
      size_t base_trail = base_trail_.size();
      size_t num_trail = num_trail_.size();
      size_t atom_trail = branch_atoms_.size();
      bool ok = BindTuple(*p.atom, t);
      if (ok) {
        for (const CqComparison* cmp : p.ready_comparisons) {
          util::StatusOr<Polynomial> lhs = TermToPoly(cmp->lhs);
          if (!lhs.ok()) return lhs.status();
          util::StatusOr<Polynomial> rhs = TermToPoly(cmp->rhs);
          if (!rhs.ok()) return rhs.status();
          if (AddConstraint(*lhs - *rhs, cmp->op) == Add::kDead) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        for (const CqBaseEquality* eq : p.ready_base_equalities) {
          if (ResolveBase(eq->lhs) != ResolveBase(eq->rhs)) {
            ok = false;
            break;
          }
        }
      }
      util::Status status = util::Status::OK();
      if (ok) status = Enumerate(depth + 1);
      // Undo bindings and constraints.
      while (base_trail_.size() > base_trail) {
        base_env_.erase(base_trail_.back());
        base_trail_.pop_back();
      }
      while (num_trail_.size() > num_trail) {
        num_env_.erase(num_trail_.back());
        num_trail_.pop_back();
      }
      branch_atoms_.resize(atom_trail);
      return status;
    };

    if (!p.probe_positions.empty()) {
      std::string key = ProbeKey(p);
      auto [lo, hi] = p.index.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        MUDB_RETURN_IF_ERROR(try_tuple(it->second));
      }
    } else {
      for (size_t row = 0; row < tuples.size(); ++row) {
        MUDB_RETURN_IF_ERROR(try_tuple(row));
      }
    }
    return util::Status::OK();
  }

  std::string ProbeKey(const PlannedAtom& p) const {
    std::string key;
    for (size_t i : p.probe_positions) {
      const AtomArg& a = p.atom->args[i];
      if (a.base().is_var()) {
        key += base_env_.at(a.base().text());
      } else {
        key += a.base().text();
      }
      key += kKeySep;
    }
    return key;
  }

  std::string ResolveBase(const logic::BaseArg& arg) const {
    return arg.is_var() ? base_env_.at(arg.text()) : arg.text();
  }

  // Binds one tuple to an atom; returns false if the branch dies. Leaves the
  // trails holding whatever was pushed (caller rolls back).
  bool BindTuple(const CqAtom& atom, const Tuple& t) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const AtomArg& a = atom.args[i];
      if (a.sort() == Sort::kBase) {
        const std::string& val = t[i].base_const();
        if (a.base().is_var()) {
          auto [it, inserted] = base_env_.try_emplace(a.base().text(), val);
          if (inserted) {
            base_trail_.push_back(a.base().text());
          } else if (it->second != val) {
            return false;
          }
        } else if (a.base().text() != val) {
          return false;
        }
      } else {
        const Term& term = a.term();
        if (term.kind() == Term::Kind::kConst) {
          if (AddConstraint(ValueToPoly(t[i]) -
                                Polynomial::Constant(term.const_value()),
                            CmpOp::kEq) == Add::kDead) {
            return false;
          }
        } else {
          const std::string& name = term.var_name();
          auto [it, inserted] = num_env_.try_emplace(name, t[i]);
          if (inserted) {
            num_trail_.push_back(name);
          } else if (!(it->second == t[i])) {
            // Rebinding to a different value: requires pointwise equality.
            if (AddConstraint(ValueToPoly(it->second) - ValueToPoly(t[i]),
                              CmpOp::kEq) == Add::kDead) {
              return false;
            }
          }
        }
      }
    }
    return true;
  }

  util::Status FinishWitness() {
    ++witnesses_enumerated_;
    if (witnesses_enumerated_ > options_.max_witnesses) {
      return util::Status::ResourceExhausted(
          "witness enumeration exceeded max_witnesses");
    }
    // Build the output tuple.
    Tuple out;
    out.reserve(cq_.output.size());
    for (const logic::TypedVar& v : cq_.output) {
      if (v.sort == Sort::kBase) {
        std::string root = Canon(v.name);
        auto cit = const_binding_.find(root);
        const std::string& s =
            cit != const_binding_.end() ? cit->second : base_env_.at(root);
        auto it = null_names_.find(s);
        out.push_back(it != null_names_.end() ? it->second
                                              : Value::BaseConst(s));
      } else {
        out.push_back(num_env_.at(v.name));
      }
    }
    auto it = candidates_.find(out);
    if (it == candidates_.end()) {
      if (cq_.limit && candidate_order_.size() >= *cq_.limit) {
        return util::Status::OK();  // LIMIT reached; ignore new tuples
      }
      it = candidates_.emplace(out, CandidateState{}).first;
      candidate_order_.push_back(out);
    }
    CandidateState& state = it->second;
    if (state.certain) return util::Status::OK();
    if (branch_atoms_.empty()) {
      state.certain = true;
      state.disjuncts.clear();
      return util::Status::OK();
    }
    state.disjuncts.push_back(RealFormula::And(branch_atoms_));
    return util::Status::OK();
  }

  const ConjunctiveQuery& cq_;
  ConjunctiveQuery rewritten_;
  bool impossible_ = false;
  std::unordered_map<std::string, std::string> parent_;       // union-find
  std::unordered_map<std::string, std::string> const_binding_;  // root -> const
  EvalOptions options_;
  model::Valuation vbase_;
  Database vdb_;
  std::map<std::string, Value> null_names_;  // valuated name -> original ⊥
  std::unordered_map<NullId, int> z_index_;
  std::vector<NullId> null_order_;

  std::vector<PlannedAtom> plan_;
  std::set<const CqComparison*> scheduled_cmp_;
  std::set<const CqBaseEquality*> scheduled_eq_;

  std::unordered_map<std::string, std::string> base_env_;
  std::unordered_map<std::string, Value> num_env_;
  std::vector<std::string> base_trail_;
  std::vector<std::string> num_trail_;
  std::vector<RealFormula> branch_atoms_;

  std::map<Tuple, CandidateState> candidates_;
  std::vector<Tuple> candidate_order_;
  size_t witnesses_enumerated_ = 0;
};

}  // namespace

util::StatusOr<EvalResult> EvaluateCq(const model::Database& db,
                                      const ConjunctiveQuery& cq,
                                      const EvalOptions& options) {
  Evaluator evaluator(db, cq, options);
  return evaluator.Run();
}

util::StatusOr<EvalResult> EvaluateUnion(const model::Database& db,
                                         const UnionQuery& query,
                                         const EvalOptions& options) {
  MUDB_RETURN_IF_ERROR(query.Validate(db));
  EvalResult merged;
  std::map<Tuple, size_t> index;  // output tuple -> position in candidates
  for (const ConjunctiveQuery& branch : query.branches) {
    ConjunctiveQuery unlimited = branch;
    unlimited.limit.reset();  // the union's limit applies after merging
    MUDB_ASSIGN_OR_RETURN(EvalResult r, EvaluateCq(db, unlimited, options));
    if (merged.null_order.empty()) merged.null_order = r.null_order;
    merged.witnesses_enumerated += r.witnesses_enumerated;
    for (Candidate& c : r.candidates) {
      auto [it, inserted] = index.emplace(c.output, merged.candidates.size());
      if (inserted) {
        merged.candidates.push_back(std::move(c));
        continue;
      }
      Candidate& existing = merged.candidates[it->second];
      existing.witnesses += c.witnesses;
      if (existing.certain) continue;
      if (c.certain) {
        existing.certain = true;
        existing.constraint = constraints::RealFormula::True();
      } else {
        std::vector<constraints::RealFormula> both;
        both.push_back(std::move(existing.constraint));
        both.push_back(std::move(c.constraint));
        existing.constraint = constraints::RealFormula::Or(std::move(both));
      }
    }
  }
  if (query.limit && merged.candidates.size() > *query.limit) {
    merged.candidates.resize(*query.limit);
  }
  return merged;
}

}  // namespace mudb::engine
