#include "src/engine/naive.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mudb::engine {

namespace {

using logic::AtomArg;
using logic::Formula;
using logic::Term;
using model::Database;
using model::Sort;
using model::Tuple;
using model::Value;

struct Domains {
  std::vector<std::string> base;
  std::vector<double> num;
};

Domains CollectDomains(const Database& db) {
  Domains d;
  std::set<std::string> sb;
  std::set<double> sn;
  for (const auto& [name, rel] : db.relations()) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) {
        if (v.kind() == Value::Kind::kBaseConst) {
          sb.insert(v.base_const());
        } else if (v.kind() == Value::Kind::kNumConst) {
          sn.insert(v.num_const());
        }
      }
    }
  }
  d.base.assign(sb.begin(), sb.end());
  d.num.assign(sn.begin(), sn.end());
  return d;
}

struct Env {
  std::map<std::string, std::string> base;
  std::map<std::string, double> num;
};

util::StatusOr<double> EvalTerm(const Term& t, const Env& env) {
  switch (t.kind()) {
    case Term::Kind::kVar: {
      auto it = env.num.find(t.var_name());
      if (it == env.num.end()) {
        return util::Status::InvalidArgument("unbound variable " +
                                             t.var_name());
      }
      return it->second;
    }
    case Term::Kind::kConst:
      return t.const_value();
    case Term::Kind::kAdd: {
      MUDB_ASSIGN_OR_RETURN(double a, EvalTerm(t.children()[0], env));
      MUDB_ASSIGN_OR_RETURN(double b, EvalTerm(t.children()[1], env));
      return a + b;
    }
    case Term::Kind::kMul: {
      MUDB_ASSIGN_OR_RETURN(double a, EvalTerm(t.children()[0], env));
      MUDB_ASSIGN_OR_RETURN(double b, EvalTerm(t.children()[1], env));
      return a * b;
    }
    case Term::Kind::kNeg: {
      MUDB_ASSIGN_OR_RETURN(double a, EvalTerm(t.children()[0], env));
      return -a;
    }
  }
  return util::Status::Internal("unreachable");
}

util::StatusOr<std::string> EvalBase(const logic::BaseArg& a, const Env& env) {
  if (!a.is_var()) return a.text();
  auto it = env.base.find(a.text());
  if (it == env.base.end()) {
    return util::Status::InvalidArgument("unbound variable " + a.text());
  }
  return it->second;
}

util::StatusOr<bool> Eval(const Formula& f, const Database& db,
                          const Domains& domains, Env* env) {
  switch (f.kind()) {
    case Formula::Kind::kRelAtom: {
      MUDB_ASSIGN_OR_RETURN(const model::Relation* rel,
                            db.GetRelation(f.relation()));
      std::vector<std::string> base_args(f.args().size());
      std::vector<double> num_args(f.args().size());
      for (size_t i = 0; i < f.args().size(); ++i) {
        const AtomArg& a = f.args()[i];
        if (a.sort() == Sort::kBase) {
          MUDB_ASSIGN_OR_RETURN(base_args[i], EvalBase(a.base(), *env));
        } else {
          MUDB_ASSIGN_OR_RETURN(num_args[i], EvalTerm(a.term(), *env));
        }
      }
      for (const Tuple& t : rel->tuples()) {
        bool match = true;
        for (size_t i = 0; i < t.size() && match; ++i) {
          if (t[i].sort() == Sort::kBase) {
            match = t[i].base_const() == base_args[i];
          } else {
            match = t[i].num_const() == num_args[i];
          }
        }
        if (match) return true;
      }
      return false;
    }
    case Formula::Kind::kBaseEq: {
      MUDB_ASSIGN_OR_RETURN(std::string lhs, EvalBase(f.base_lhs(), *env));
      MUDB_ASSIGN_OR_RETURN(std::string rhs, EvalBase(f.base_rhs(), *env));
      return lhs == rhs;
    }
    case Formula::Kind::kCmp: {
      MUDB_ASSIGN_OR_RETURN(double lhs, EvalTerm(f.cmp_lhs(), *env));
      MUDB_ASSIGN_OR_RETURN(double rhs, EvalTerm(f.cmp_rhs(), *env));
      double diff = lhs - rhs;
      int sign = diff > 0 ? 1 : (diff < 0 ? -1 : 0);
      return constraints::CmpTruthFromSign(f.cmp_op(), sign);
    }
    case Formula::Kind::kAnd: {
      for (const Formula& c : f.children()) {
        MUDB_ASSIGN_OR_RETURN(bool v, Eval(c, db, domains, env));
        if (!v) return false;
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const Formula& c : f.children()) {
        MUDB_ASSIGN_OR_RETURN(bool v, Eval(c, db, domains, env));
        if (v) return true;
      }
      return false;
    }
    case Formula::Kind::kNot: {
      MUDB_ASSIGN_OR_RETURN(bool v, Eval(f.children()[0], db, domains, env));
      return !v;
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      const bool is_exists = f.kind() == Formula::Kind::kExists;
      const logic::TypedVar& var = f.quantified_var();
      if (var.sort == Sort::kBase) {
        std::optional<std::string> saved;
        if (auto it = env->base.find(var.name); it != env->base.end()) {
          saved = it->second;
        }
        for (const std::string& c : domains.base) {
          env->base[var.name] = c;
          MUDB_ASSIGN_OR_RETURN(bool v,
                                Eval(f.children()[0], db, domains, env));
          if (v == is_exists) {
            if (saved) {
              env->base[var.name] = *saved;
            } else {
              env->base.erase(var.name);
            }
            return is_exists;
          }
        }
        if (saved) {
          env->base[var.name] = *saved;
        } else {
          env->base.erase(var.name);
        }
        return !is_exists;
      }
      std::optional<double> saved;
      if (auto it = env->num.find(var.name); it != env->num.end()) {
        saved = it->second;
      }
      for (double c : domains.num) {
        env->num[var.name] = c;
        MUDB_ASSIGN_OR_RETURN(bool v, Eval(f.children()[0], db, domains, env));
        if (v == is_exists) {
          if (saved) {
            env->num[var.name] = *saved;
          } else {
            env->num.erase(var.name);
          }
          return is_exists;
        }
      }
      if (saved) {
        env->num[var.name] = *saved;
      } else {
        env->num.erase(var.name);
      }
      return !is_exists;
    }
  }
  return util::Status::Internal("unreachable");
}

util::Status CheckComplete(const Database& db) {
  for (const auto& [name, rel] : db.relations()) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) {
        if (v.is_null()) {
          return util::Status::InvalidArgument(
              "naive evaluation requires a complete database; found " +
              v.ToString() + " in " + name);
        }
      }
    }
  }
  return util::Status::OK();
}

}  // namespace

util::StatusOr<bool> NaiveHolds(const logic::Query& q, const Database& db,
                                const Tuple& candidate) {
  MUDB_RETURN_IF_ERROR(CheckComplete(db));
  MUDB_RETURN_IF_ERROR(q.formula.Typecheck(db));
  if (candidate.size() != q.output.size()) {
    return util::Status::InvalidArgument("candidate arity mismatch");
  }
  Domains domains = CollectDomains(db);
  Env env;
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (q.output[i].sort == Sort::kBase) {
      env.base[q.output[i].name] = candidate[i].base_const();
    } else {
      env.num[q.output[i].name] = candidate[i].num_const();
    }
  }
  return Eval(q.formula, db, domains, &env);
}

util::StatusOr<std::set<Tuple>> NaiveEvaluate(const logic::Query& q,
                                              const Database& db) {
  MUDB_RETURN_IF_ERROR(CheckComplete(db));
  Domains domains = CollectDomains(db);
  std::set<Tuple> out;
  // Enumerate assignments of output variables over the active domains.
  std::vector<Value> current(q.output.size());
  std::function<util::Status(size_t)> rec =
      [&](size_t i) -> util::Status {
    if (i == q.output.size()) {
      MUDB_ASSIGN_OR_RETURN(bool holds, NaiveHolds(q, db, current));
      if (holds) out.insert(current);
      return util::Status::OK();
    }
    if (q.output[i].sort == Sort::kBase) {
      for (const std::string& c : domains.base) {
        current[i] = Value::BaseConst(c);
        MUDB_RETURN_IF_ERROR(rec(i + 1));
      }
    } else {
      for (double c : domains.num) {
        current[i] = Value::NumConst(c);
        MUDB_RETURN_IF_ERROR(rec(i + 1));
      }
    }
    return util::Status::OK();
  };
  MUDB_RETURN_IF_ERROR(rec(0));
  return out;
}

}  // namespace mudb::engine
