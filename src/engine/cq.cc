#include "src/engine/cq.h"

#include <set>
#include <sstream>

namespace mudb::engine {

namespace {

using logic::AtomArg;
using logic::Term;

bool IsSimpleNumArg(const Term& t) {
  return t.kind() == Term::Kind::kVar || t.kind() == Term::Kind::kConst;
}

}  // namespace

util::Status ConjunctiveQuery::Validate(const model::Database& db) const {
  std::map<std::string, model::Sort> var_sorts;
  for (const CqAtom& atom : atoms) {
    MUDB_ASSIGN_OR_RETURN(const model::Relation* rel,
                          db.GetRelation(atom.relation));
    const model::RelationSchema& schema = rel->schema();
    if (atom.args.size() != schema.arity()) {
      return util::Status::InvalidArgument(
          "atom " + atom.relation + " arity mismatch");
    }
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const AtomArg& a = atom.args[i];
      if (a.sort() != schema.column(i).sort) {
        return util::Status::InvalidArgument(
            "atom " + atom.relation + " argument " + std::to_string(i) +
            " sort mismatch");
      }
      if (a.sort() == model::Sort::kNum && !IsSimpleNumArg(a.term())) {
        return util::Status::InvalidArgument(
            "numeric atom arguments must be variables or constants; move '" +
            a.term().ToString() + "' into a comparison");
      }
      if (a.sort() == model::Sort::kBase && a.base().is_var()) {
        auto [it, ok] = var_sorts.emplace(a.base().text(), model::Sort::kBase);
        if (!ok && it->second != model::Sort::kBase) {
          return util::Status::InvalidArgument("variable " + a.base().text() +
                                               " used with two sorts");
        }
      }
      if (a.sort() == model::Sort::kNum &&
          a.term().kind() == Term::Kind::kVar) {
        auto [it, ok] =
            var_sorts.emplace(a.term().var_name(), model::Sort::kNum);
        if (!ok && it->second != model::Sort::kNum) {
          return util::Status::InvalidArgument(
              "variable " + a.term().var_name() + " used with two sorts");
        }
      }
    }
  }
  // Comparisons and base equalities may only mention bound variables.
  for (const CqComparison& cmp : comparisons) {
    std::set<std::string> vars;
    cmp.lhs.CollectVariables(&vars);
    cmp.rhs.CollectVariables(&vars);
    for (const std::string& v : vars) {
      auto it = var_sorts.find(v);
      if (it == var_sorts.end() || it->second != model::Sort::kNum) {
        return util::Status::InvalidArgument(
            "comparison uses variable " + v + " not bound by a numeric atom "
            "position");
      }
    }
  }
  for (const CqBaseEquality& eq : base_equalities) {
    for (const logic::BaseArg* a : {&eq.lhs, &eq.rhs}) {
      if (a->is_var()) {
        auto it = var_sorts.find(a->text());
        if (it == var_sorts.end() || it->second != model::Sort::kBase) {
          return util::Status::InvalidArgument(
              "base equality uses unbound variable " + a->text());
        }
      }
    }
  }
  for (const logic::TypedVar& v : output) {
    auto it = var_sorts.find(v.name);
    if (it == var_sorts.end()) {
      return util::Status::InvalidArgument("output variable " + v.name +
                                           " is not bound by any atom");
    }
    if (it->second != v.sort) {
      return util::Status::InvalidArgument("output variable " + v.name +
                                           " has the wrong sort");
    }
  }
  return util::Status::OK();
}

util::StatusOr<logic::Query> ConjunctiveQuery::ToQuery(
    const model::Database& db) const {
  MUDB_RETURN_IF_ERROR(Validate(db));
  std::vector<logic::Formula> parts;
  for (const CqAtom& atom : atoms) {
    parts.push_back(logic::Formula::Rel(atom.relation, atom.args));
  }
  for (const CqBaseEquality& eq : base_equalities) {
    parts.push_back(logic::Formula::BaseEq(eq.lhs, eq.rhs));
  }
  for (const CqComparison& cmp : comparisons) {
    parts.push_back(logic::Formula::Cmp(cmp.lhs, cmp.op, cmp.rhs));
  }
  logic::Formula body = logic::Formula::And(std::move(parts));

  // Existentially close everything that is not an output variable.
  std::set<std::string> out_names;
  for (const logic::TypedVar& v : output) out_names.insert(v.name);
  std::vector<logic::TypedVar> to_close;
  for (const auto& [name, sort] : body.FreeVariables()) {
    if (out_names.count(name) == 0) {
      to_close.push_back(logic::TypedVar{name, sort});
    }
  }
  logic::Formula closed = logic::Formula::ExistsMany(std::move(to_close),
                                                     std::move(body));
  return logic::Query::MakeWithOutput(std::move(closed), output, db);
}

util::Status UnionQuery::Validate(const model::Database& db) const {
  if (branches.empty()) {
    return util::Status::InvalidArgument("union query has no branches");
  }
  for (const ConjunctiveQuery& cq : branches) {
    MUDB_RETURN_IF_ERROR(cq.Validate(db));
  }
  const std::vector<logic::TypedVar>& first = branches[0].output;
  for (size_t b = 1; b < branches.size(); ++b) {
    const std::vector<logic::TypedVar>& out = branches[b].output;
    if (out.size() != first.size()) {
      return util::Status::InvalidArgument(
          "union branches have different output arities");
    }
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i].sort != first[i].sort) {
        return util::Status::InvalidArgument(
            "union branches disagree on the sort of output column " +
            std::to_string(i));
      }
    }
  }
  return util::Status::OK();
}

std::string UnionQuery::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < branches.size(); ++i) {
    if (i > 0) out << " UNION ";
    out << branches[i].ToString();
  }
  if (limit) out << " LIMIT " << *limit;
  return out.str();
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  out << "SELECT ";
  for (size_t i = 0; i < output.size(); ++i) {
    if (i > 0) out << ", ";
    out << output[i].name;
  }
  out << " WHERE ";
  bool first = true;
  for (const CqAtom& a : atoms) {
    if (!first) out << " AND ";
    first = false;
    out << a.relation << "(";
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (i > 0) out << ", ";
      out << a.args[i].ToString();
    }
    out << ")";
  }
  for (const CqBaseEquality& eq : base_equalities) {
    out << " AND " << eq.lhs.ToString() << " = " << eq.rhs.ToString();
  }
  for (const CqComparison& c : comparisons) {
    out << " AND " << c.lhs.ToString() << " "
        << constraints::CmpOpToString(c.op) << " " << c.rhs.ToString();
  }
  if (limit) out << " LIMIT " << *limit;
  return out.str();
}

}  // namespace mudb::engine
